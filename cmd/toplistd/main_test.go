package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/listserv"
	"repro/internal/toplist"
)

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}, nil); err == nil {
		t.Fatal("bogus scale should fail")
	}
	if err := run([]string{"-addr", "256.0.0.1:http:nope"}, nil); err == nil {
		t.Fatal("bad address should fail")
	}
	if err := run([]string{"-notaflag"}, nil); err == nil {
		t.Fatal("unknown flag should fail")
	}
	if err := run([]string{"-archive", "x", "-serve-pack", "y"}, nil); err == nil {
		t.Fatal("-archive with -serve-pack should fail")
	}
	if err := run([]string{"-serve-pack", "y", "-live"}, nil); err == nil {
		t.Fatal("-serve-pack with -live should fail")
	}
	if err := run([]string{"-serve-pack", "/does/not/exist.pack", "-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("missing pack file should fail")
	}
}

func TestLiveSinkStreamsAndPublishes(t *testing.T) {
	arch := toplist.NewArchive(0, 3)
	arch.Expect("alexa")
	gk := listserv.NewGatekeeper(arch, -1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sink := newLiveSink(ctx, gk, time.Millisecond)
	defer sink.stop()
	for d := toplist.Day(0); d <= 3; d++ {
		if err := sink.Put("alexa", d, toplist.New([]string{"a.com"})); err != nil {
			t.Fatal(err)
		}
		// The snapshot is stored but not yet visible to readers.
		if got := gk.LastVisible(); got >= d {
			t.Fatalf("day %v visible before EndDay (LastVisible=%v)", d, got)
		}
		if err := sink.EndDay(d); err != nil {
			t.Fatal(err)
		}
		if got := gk.LastVisible(); got != d {
			t.Fatalf("LastVisible = %v after EndDay(%v)", got, d)
		}
	}
	if !arch.Complete() {
		t.Fatal("streamed archive incomplete")
	}
}

func TestLiveSinkStopsOnCancel(t *testing.T) {
	arch := toplist.NewArchive(0, 1000)
	gk := listserv.NewGatekeeper(arch, -1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := newLiveSink(ctx, gk, time.Hour)
	defer sink.stop()
	done := make(chan error, 1)
	go func() { done <- sink.EndDay(0) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("EndDay on cancelled context should error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("EndDay ignored cancellation")
	}
}

// TestArchiveAPIMountsBesideCSVRoutes: with -serve-archive both
// surfaces share one daemon — the provider-style CSV routes keep
// working and the wire API serves the same source to OpenRemote.
func TestArchiveAPIMountsBesideCSVRoutes(t *testing.T) {
	arch := toplist.NewArchive(0, 1)
	for d := toplist.Day(0); d <= 1; d++ {
		if err := arch.Put("alexa", d, toplist.New([]string{"a.com", "b.org"})); err != nil {
			t.Fatal(err)
		}
	}
	root := withArchiveAPI(listserv.NewServer(arch), arch)
	ts := httptest.NewServer(root)
	defer ts.Close()

	// Provider-style route still answers.
	idx, err := listserv.NewClient(ts.URL).Index(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if idx.Days != 2 {
		t.Fatalf("CSV index days = %d, want 2", idx.Days)
	}

	// Wire API answers on the same listener.
	remote, err := toplist.OpenRemote(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Days() != 2 {
		t.Fatalf("remote days = %d, want 2", remote.Days())
	}
	got := remote.Get("alexa", 1)
	want := arch.Get("alexa", 1)
	if got == nil || got.Len() != want.Len() || got.Name(1) != want.Name(1) {
		t.Fatalf("remote snapshot = %v, want %v", got, want)
	}
}
