package archived

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/listserv"
	"repro/internal/toplist"
)

// testStore builds a 2-provider x 4-day DiskStore with one gap
// (umbrella day 2) and one corrupt snapshot (alexa day 3, garbage
// bytes written behind the store's back).
func testStore(t *testing.T) *toplist.DiskStore {
	t.Helper()
	dir := t.TempDir()
	ds, err := toplist.CreateDiskStore(dir, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetScale("unit"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"alexa", "umbrella"} {
		for d := toplist.Day(0); d <= 3; d++ {
			if p == "umbrella" && d == 2 {
				continue // gap
			}
			names := []string{
				fmt.Sprintf("%s-top-%d.com", p, d),
				fmt.Sprintf("%s-second-%d.org", p, d),
				"shared.net",
			}
			if err := ds.Put(p, d, toplist.New(names)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Corrupt alexa day 3 on disk; the store still believes it present.
	path := filepath.Join(dir, "alexa", toplist.Day(3).String()+".csv.gz")
	if err := os.WriteFile(path, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Reopen cold so the corrupt bytes are what Get decodes.
	reopened, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	return reopened
}

// countingHandler wraps a handler counting requests per URL path.
type countingHandler struct {
	h http.Handler

	mu   sync.Mutex
	hits map[string]int
}

func newCounting(h http.Handler) *countingHandler {
	return &countingHandler{h: h, hits: make(map[string]int)}
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.hits[r.URL.Path]++
	c.mu.Unlock()
	c.h.ServeHTTP(w, r)
}

func (c *countingHandler) count(path string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits[path]
}

func serve(t *testing.T, src toplist.Source) (*httptest.Server, *countingHandler) {
	t.Helper()
	ch := newCounting(NewServer(src))
	ts := httptest.NewServer(ch)
	t.Cleanup(ts.Close)
	return ts, ch
}

func csvBytes(t *testing.T, l *toplist.List) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := toplist.WriteCSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRemoteSourceEquivalence is the wire round trip: every Source
// observation over OpenRemote — range, providers, snapshot bytes, the
// absent slot, the corrupt slot — matches the DiskStore it serves.
func TestRemoteSourceEquivalence(t *testing.T) {
	ds := testStore(t)
	ts, _ := serve(t, ds)
	remote, err := toplist.OpenRemote(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if remote.First() != ds.First() || remote.Last() != ds.Last() || remote.Days() != ds.Days() {
		t.Fatalf("range mismatch: remote [%v,%v] %d days, store [%v,%v] %d days",
			remote.First(), remote.Last(), remote.Days(), ds.First(), ds.Last(), ds.Days())
	}
	if got, want := remote.Providers(), ds.Providers(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("providers = %v, want %v", got, want)
	}
	if got, want := remote.Scale(), ds.Scale(); got != want {
		t.Fatalf("scale = %q, want %q", got, want)
	}
	for _, p := range ds.Providers() {
		for d := ds.First(); d <= ds.Last(); d++ {
			want := ds.Get(p, d)
			got := remote.Get(p, d)
			switch {
			case want == nil && got == nil:
				// gap or corrupt: both sides agree on nil
			case want == nil || got == nil:
				t.Fatalf("%s day %v: remote %v, store %v", p, d, got != nil, want != nil)
			default:
				if !bytes.Equal(csvBytes(t, got), csvBytes(t, want)) {
					t.Fatalf("%s day %v: snapshot bytes differ over the wire", p, d)
				}
			}
		}
	}
	// The store distinguishes absent from corrupt; the remote's
	// advisory listing stays empty either way. On the raw fast path the
	// server refuses the corrupt slot with a 500 — a final, non-retried
	// error the client reports as nil without ever receiving (let alone
	// decoding) a payload, so the slot is not remote-corrupt; it is
	// simply unreadable over the wire until the server's store repairs.
	if c := ds.Corrupt(); len(c) != 1 || c[0].Provider != "alexa" || c[0].Day != 3 {
		t.Fatalf("store Corrupt() = %v, want [alexa 3]", c)
	}
	if c := remote.Corrupt(); len(c) != 0 {
		t.Fatalf("remote Corrupt() = %v, want none (server refuses its corrupt slot)", c)
	}
	// Unknown provider and out-of-range day are nil without a request.
	if remote.Get("majestic", 0) != nil || remote.Get("alexa", 99) != nil {
		t.Fatal("unknown provider / out-of-range day not nil")
	}
}

// TestRemoteMemoizesAbsentAndCaches: repeated Gets of the same present
// snapshot hit the server once (LRU cache), and repeated Gets of an
// absent snapshot also hit it once (memoized nil) — the DiskStore
// decode-once contract over HTTP.
func TestRemoteMemoizesAbsentAndCaches(t *testing.T) {
	ds := testStore(t)
	ts, ch := serve(t, ds)
	remote, err := toplist.OpenRemote(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	presentPath := toplist.RemoteSnapshotPath("alexa", 0)
	gapPath := toplist.RemoteSnapshotPath("umbrella", 2)
	for i := 0; i < 3; i++ {
		if remote.Get("alexa", 0) == nil {
			t.Fatal("present snapshot nil")
		}
		if remote.Get("umbrella", 2) != nil {
			t.Fatal("gap snapshot not nil")
		}
	}
	if n := ch.count(presentPath); n != 1 {
		t.Fatalf("present snapshot fetched %d times, want 1", n)
	}
	if n := ch.count(gapPath); n != 1 {
		t.Fatalf("absent snapshot fetched %d times, want 1 (memoized)", n)
	}
}

// TestRemoteCorruptPayloadMemoized: a payload that transfers as 200
// but does not decode is memoized as nil and listed by Corrupt — one
// fetch, not one per call.
func TestRemoteCorruptPayloadMemoized(t *testing.T) {
	ds := testStore(t)
	inner := NewServer(ds)
	corruptPath := toplist.RemoteSnapshotPath("alexa", 1)
	var hits atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == corruptPath {
			hits.Add(1)
			w.Header().Set("Content-Type", "application/gzip")
			w.Write([]byte("definitely not gzip")) //nolint:errcheck
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	remote, err := toplist.OpenRemote(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		l, err := remote.GetContext(context.Background(), "alexa", 1)
		if err != nil {
			t.Fatal(err)
		}
		if l != nil {
			t.Fatal("corrupt payload decoded")
		}
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("corrupt payload fetched %d times, want 1 (memoized)", n)
	}
	if c := remote.Corrupt(); len(c) != 1 || c[0].Provider != "alexa" || c[0].Day != 1 {
		t.Fatalf("Corrupt() = %v, want [alexa 1]", c)
	}
	// A healthy slot fetched afterwards is not polluted.
	if remote.Get("alexa", 0) == nil {
		t.Fatal("healthy snapshot nil after corrupt fetch")
	}
}

// TestRemoteGetSingleFlight: concurrent readers of one uncached
// snapshot share a single fetch. Run under -race this also proves the
// entry publication is properly synchronised.
func TestRemoteGetSingleFlight(t *testing.T) {
	ds := testStore(t)
	inner := NewServer(ds)
	path := toplist.RemoteSnapshotPath("alexa", 0)
	var hits atomic.Int32
	gate := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == path {
			hits.Add(1)
			<-gate // hold every fetch until all readers queued
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	remote, err := toplist.OpenRemote(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	const readers = 16
	var wg sync.WaitGroup
	results := make([]*toplist.List, readers)
	wg.Add(readers)
	var started sync.WaitGroup
	started.Add(readers)
	for i := 0; i < readers; i++ {
		go func(i int) {
			defer wg.Done()
			started.Done()
			results[i] = remote.Get("alexa", 0)
		}(i)
	}
	started.Wait()
	close(gate)
	wg.Wait()
	if n := hits.Load(); n != 1 {
		t.Fatalf("%d concurrent readers made %d fetches, want 1", readers, n)
	}
	for i, l := range results {
		if l == nil {
			t.Fatalf("reader %d got nil", i)
		}
		if l != results[0] {
			t.Fatalf("reader %d got a different decoded list (no shared cache entry)", i)
		}
	}
}

// TestRemoteCancellationMidFetch: cancelling a GetContext mid-transfer
// returns ctx.Err() promptly and does NOT poison the slot — the next
// reader fetches fresh and succeeds.
func TestRemoteCancellationMidFetch(t *testing.T) {
	ds := testStore(t)
	inner := NewServer(ds)
	path := toplist.RemoteSnapshotPath("alexa", 0)
	var block atomic.Bool
	block.Store(true)
	reached := make(chan struct{}, 8)
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == path && block.Load() {
			reached <- struct{}{}
			select {
			case <-release:
			case <-r.Context().Done():
				return
			}
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	t.Cleanup(func() { close(release); ts.Close() })
	remote, err := toplist.OpenRemote(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := remote.GetContext(ctx, "alexa", 0)
		done <- err
	}()
	<-reached // fetch is in flight
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled fetch returned nil error")
	}
	// The failed fetch must not be memoized: a fresh context succeeds.
	block.Store(false)
	l, err := remote.GetContext(context.Background(), "alexa", 0)
	if err != nil {
		t.Fatal(err)
	}
	if l == nil {
		t.Fatal("snapshot nil after recovered fetch")
	}
}

// TestRemoteLRUEviction: the decoded-snapshot cache is bounded; the
// least recently used slot is refetched after eviction.
func TestRemoteLRUEviction(t *testing.T) {
	ds := testStore(t)
	ts, ch := serve(t, ds)
	remote, err := toplist.OpenRemote(context.Background(), ts.URL,
		toplist.WithRemoteCacheSize(2))
	if err != nil {
		t.Fatal(err)
	}
	day0 := toplist.RemoteSnapshotPath("alexa", 0)
	remote.Get("alexa", 0) // cache: {0}
	remote.Get("alexa", 1) // cache: {0,1}
	remote.Get("alexa", 2) // cache: {1,2} — 0 evicted
	if remote.Get("alexa", 0) == nil {
		t.Fatal("evicted snapshot nil on refetch")
	}
	if n := ch.count(day0); n != 2 {
		t.Fatalf("evicted snapshot fetched %d times, want 2", n)
	}
}

// TestRemoteRefreshFollowsGrowth: a Remote following a still-growing
// archive picks up new days and providers via Refresh, and its range
// never shrinks.
func TestRemoteRefreshFollowsGrowth(t *testing.T) {
	dir := t.TempDir()
	ds, err := toplist.CreateDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 0, toplist.New([]string{"a.com"})); err != nil {
		t.Fatal(err)
	}
	ts, _ := serve(t, ds)
	ctx := context.Background()
	remote, err := toplist.OpenRemote(ctx, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Days() != 1 || len(remote.Providers()) != 1 {
		t.Fatalf("initial: %d days, providers %v", remote.Days(), remote.Providers())
	}
	if err := ds.ExtendTo(2); err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("umbrella", 1, toplist.New([]string{"u.com"})); err != nil {
		t.Fatal(err)
	}
	if err := remote.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if remote.Last() != 2 || remote.Days() != 3 {
		t.Fatalf("after refresh: last %v, %d days", remote.Last(), remote.Days())
	}
	if got := remote.Providers(); len(got) != 2 || got[1] != "umbrella" {
		t.Fatalf("after refresh: providers %v", got)
	}
	if remote.Get("umbrella", 1) == nil {
		t.Fatal("new provider's snapshot nil after refresh")
	}
	// A slot probed while absent is memoized nil — until a Refresh
	// declares the archive may have changed, after which the server's
	// later fill becomes visible (the client-side analog of Put
	// invalidating a DiskStore's memoized decode failure).
	if remote.Get("alexa", 2) != nil {
		t.Fatal("unfilled day not nil")
	}
	if err := ds.Put("alexa", 2, toplist.New([]string{"a2.com"})); err != nil {
		t.Fatal(err)
	}
	if remote.Get("alexa", 2) != nil {
		t.Fatal("memoized-absent day served without a refresh")
	}
	if err := remote.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if remote.Get("alexa", 2) == nil {
		t.Fatal("filled day still nil after refresh")
	}
}

// TestRemoteRejectsUnknownProtocolVersion mirrors OpenArchive's
// manifest check: a server speaking a different protocol version must
// fail loudly at open, not half-work.
func TestRemoteRejectsUnknownProtocolVersion(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(toplist.RemoteManifest{ //nolint:errcheck
			Version:  99,
			FirstDay: "2017-06-06", LastDay: "2017-06-06", Days: 1,
			Providers: []string{"alexa"},
		})
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	if _, err := toplist.OpenRemote(context.Background(), ts.URL); err == nil {
		t.Fatal("unknown protocol version accepted")
	}
}

// TestListingEndpoints pins the days/providers listings of the wire
// API.
func TestListingEndpoints(t *testing.T) {
	ds := testStore(t)
	ts, _ := serve(t, ds)
	var days []string
	resp, err := http.Get(ts.URL + toplist.RemoteDaysPath())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&days); err != nil {
		t.Fatal(err)
	}
	if len(days) != 4 || days[0] != toplist.Day(0).String() || days[3] != toplist.Day(3).String() {
		t.Fatalf("days listing = %v", days)
	}
	var provs []string
	resp2, err := http.Get(ts.URL + toplist.RemoteProvidersPath())
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&provs); err != nil {
		t.Fatal(err)
	}
	if len(provs) != 2 || provs[0] != "alexa" {
		t.Fatalf("providers listing = %v", provs)
	}
}

// TestGatekeeperViewOverWireAPI: serving a gatekept live collection
// over the wire API honours day-by-day visibility — the manifest and
// the snapshots advance together, and a Remote follows via Refresh.
func TestGatekeeperViewOverWireAPI(t *testing.T) {
	arch := toplist.NewArchive(0, 2)
	for d := toplist.Day(0); d <= 2; d++ {
		if err := arch.Put("alexa", d, toplist.New([]string{fmt.Sprintf("d%d.com", d)})); err != nil {
			t.Fatal(err)
		}
	}
	gk := listserv.NewGatekeeper(arch, 0)
	ts, _ := serve(t, gk.View())
	ctx := context.Background()
	remote, err := toplist.OpenRemote(ctx, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Days() != 1 {
		t.Fatalf("visible days = %d, want 1", remote.Days())
	}
	if remote.Get("alexa", 0) == nil {
		t.Fatal("published day nil")
	}
	if remote.Get("alexa", 1) != nil {
		t.Fatal("unpublished day served")
	}
	gk.Advance(2)
	if err := remote.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if remote.Days() != 3 {
		t.Fatalf("after advance: %d days, want 3", remote.Days())
	}
	if remote.Get("alexa", 2) == nil {
		t.Fatal("newly published day nil after refresh")
	}
	// Day 1 was never fetched while unpublished (it sat outside the
	// manifest's range, so the range check answered nil locally); after
	// Refresh it is in range and serves.
	if remote.Get("alexa", 1) == nil {
		t.Fatal("day inside refreshed range nil")
	}
}

// TestRemoteRetriesTransientFailures: a transient server failure (5xx)
// does not degrade a read into a spurious nil — the fetch retries with
// backoff and succeeds, so an analysis over a remote source survives a
// blip instead of silently treating the day as a gap.
func TestRemoteRetriesTransientFailures(t *testing.T) {
	ds := testStore(t)
	inner := NewServer(ds)
	path := toplist.RemoteSnapshotPath("alexa", 0)
	var hits atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == path && hits.Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	remote, err := toplist.OpenRemote(context.Background(), ts.URL,
		toplist.WithRemoteBaseBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	l, err := remote.GetContext(context.Background(), "alexa", 0)
	if err != nil {
		t.Fatal(err)
	}
	if l == nil {
		t.Fatal("snapshot nil despite eventual success")
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server hit %d times, want 3 (two transient failures + success)", n)
	}
}

// TestRemoteGivesUpAfterRetryBudget: persistent server failure
// surfaces as an error from GetContext (never memoized — a later call
// against a recovered server succeeds).
func TestRemoteGivesUpAfterRetryBudget(t *testing.T) {
	ds := testStore(t)
	inner := NewServer(ds)
	path := toplist.RemoteSnapshotPath("alexa", 0)
	var failing atomic.Bool
	failing.Store(true)
	var hits atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == path && failing.Load() {
			hits.Add(1)
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	remote, err := toplist.OpenRemote(context.Background(), ts.URL,
		toplist.WithRemoteBaseBackoff(time.Millisecond),
		toplist.WithRemoteMaxAttempts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := remote.GetContext(context.Background(), "alexa", 0); err == nil {
		t.Fatal("persistent failure returned nil error")
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("server hit %d times, want 2 (retry budget)", n)
	}
	// The failure was not memoized: the recovered server serves.
	failing.Store(false)
	l, err := remote.GetContext(context.Background(), "alexa", 0)
	if err != nil || l == nil {
		t.Fatalf("recovered fetch: list=%v err=%v", l != nil, err)
	}
}

// serveOpts is serve with server options (raw fast path off, cache
// sizing) for the paired-path tests.
func serveOpts(t *testing.T, src toplist.Source, opts ...Option) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(src, opts...))
	t.Cleanup(ts.Close)
	return ts
}

// fetchStored GETs a path requesting the stored encoding (what
// toplist.Remote sends), optionally conditional on an ETag, and
// returns the response with its body drained.
func fetchStored(t *testing.T, ts *httptest.Server, path, ifNoneMatch string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// cleanStore builds a small corruption-free archive and returns the
// cold-reopened store plus its directory for on-disk comparisons.
func cleanStore(t *testing.T) (*toplist.DiskStore, string) {
	t.Helper()
	dir := t.TempDir()
	ds, err := toplist.CreateDiskStore(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for d := toplist.Day(0); d <= 1; d++ {
		l := toplist.New([]string{fmt.Sprintf("day%d-a.com", d), fmt.Sprintf("day%d-b.org", d)})
		if err := ds.Put("alexa", d, l); err != nil {
			t.Fatal(err)
		}
	}
	reopened, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	return reopened, dir
}

// TestRawAndEncodePathsByteIdentical is the fast-path equivalence
// acceptance check: for the same slot, the raw path and the encode
// fallback produce byte-identical compressed bodies and equal ETags,
// and the raw body is exactly the on-disk file — gzip determinism is
// what makes the paths interchangeable.
func TestRawAndEncodePathsByteIdentical(t *testing.T) {
	ds, dir := cleanStore(t)
	rawTS := serveOpts(t, ds)
	encTS := serveOpts(t, ds, WithoutRawFastPath())
	for d := toplist.Day(0); d <= 1; d++ {
		path := toplist.RemoteSnapshotPath("alexa", d)
		rawResp, rawBody := fetchStored(t, rawTS, path, "")
		encResp, encBody := fetchStored(t, encTS, path, "")
		if rawResp.StatusCode != http.StatusOK || encResp.StatusCode != http.StatusOK {
			t.Fatalf("day %v: status raw %d, encode %d", d, rawResp.StatusCode, encResp.StatusCode)
		}
		for _, r := range []*http.Response{rawResp, encResp} {
			if ce := r.Header.Get("Content-Encoding"); ce != "gzip" {
				t.Fatalf("day %v: Content-Encoding %q, want gzip", d, ce)
			}
		}
		if !bytes.Equal(rawBody, encBody) {
			t.Fatalf("day %v: raw and encode bodies differ (%d vs %d bytes)", d, len(rawBody), len(encBody))
		}
		rawETag, encETag := rawResp.Header.Get("ETag"), encResp.Header.Get("ETag")
		if rawETag == "" || rawETag != encETag {
			t.Fatalf("day %v: ETag raw %q vs encode %q", d, rawETag, encETag)
		}
		disk, err := os.ReadFile(filepath.Join(dir, "alexa", d.String()+".csv.gz"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rawBody, disk) {
			t.Fatalf("day %v: raw body is not the on-disk file", d)
		}
	}
}

// TestConditionalRequests pins If-None-Match handling: a matching ETag
// turns both snapshot paths and the manifest route into an empty 304.
func TestConditionalRequests(t *testing.T) {
	ds, _ := cleanStore(t)
	for name, ts := range map[string]*httptest.Server{
		"raw":    serveOpts(t, ds),
		"encode": serveOpts(t, ds, WithoutRawFastPath()),
	} {
		for _, path := range []string{
			toplist.RemoteSnapshotPath("alexa", 0),
			toplist.RemoteManifestPath(),
		} {
			first, body := fetchStored(t, ts, path, "")
			if first.StatusCode != http.StatusOK || len(body) == 0 {
				t.Fatalf("%s %s: first GET status %d, %d bytes", name, path, first.StatusCode, len(body))
			}
			etag := first.Header.Get("ETag")
			if etag == "" {
				t.Fatalf("%s %s: no ETag", name, path)
			}
			second, body := fetchStored(t, ts, path, etag)
			if second.StatusCode != http.StatusNotModified {
				t.Fatalf("%s %s: conditional GET status %d, want 304", name, path, second.StatusCode)
			}
			if len(body) != 0 {
				t.Fatalf("%s %s: 304 carried %d body bytes", name, path, len(body))
			}
			// A stale validator still gets the full representation.
			third, body := fetchStored(t, ts, path, `"different"`)
			if third.StatusCode != http.StatusOK || len(body) == 0 {
				t.Fatalf("%s %s: mismatched If-None-Match status %d, %d bytes", name, path, third.StatusCode, len(body))
			}
		}
	}
}

// TestETagStableAcrossRestarts: the snapshot ETag comes from the hash
// persisted in the manifest, so a cold store reopen plus a brand-new
// server yields the same validator — clients' cached 304s survive
// server restarts.
func TestETagStableAcrossRestarts(t *testing.T) {
	ds, dir := cleanStore(t)
	path := toplist.RemoteSnapshotPath("alexa", 0)
	first, _ := fetchStored(t, serveOpts(t, ds), path, "")
	etag := first.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on first serve")
	}
	reopened, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, _ := fetchStored(t, serveOpts(t, reopened), path, "")
	if got := second.Header.Get("ETag"); got != etag {
		t.Fatalf("ETag changed across restart: %q -> %q", etag, got)
	}
	// And the restarted server honours a validator minted before it
	// existed.
	cond, _ := fetchStored(t, serveOpts(t, reopened), path, etag)
	if cond.StatusCode != http.StatusNotModified {
		t.Fatalf("pre-restart ETag got status %d, want 304", cond.StatusCode)
	}
}

// TestCorruptSlotRefusal is the integrity acceptance flow: Verify()
// flags the tampered slot before any reader request, and the raw path
// then refuses it with a 5xx — never a 200 over bytes that fail their
// hash — while the encode fallback (which cannot distinguish corrupt
// from undecodable) keeps its historical 404.
func TestCorruptSlotRefusal(t *testing.T) {
	ds := testStore(t) // alexa day 3 corrupted behind the store's back
	if c := ds.Verify(); len(c) != 1 || c[0].Provider != "alexa" || c[0].Day != 3 {
		t.Fatalf("Verify() = %v, want [alexa 3]", c)
	}
	path := toplist.RemoteSnapshotPath("alexa", 3)
	resp, _ := fetchStored(t, serveOpts(t, ds), path, "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("raw path served corrupt slot with status %d, want 500", resp.StatusCode)
	}
	encResp, _ := fetchStored(t, serveOpts(t, ds, WithoutRawFastPath()), path, "")
	if encResp.StatusCode != http.StatusNotFound {
		t.Fatalf("encode path status %d, want 404", encResp.StatusCode)
	}
	// Healthy slots on the same server still serve.
	ok, _ := fetchStored(t, serveOpts(t, ds), toplist.RemoteSnapshotPath("alexa", 0), "")
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("healthy slot status %d after corrupt refusal", ok.StatusCode)
	}
}

// TestManifestRevalidation pins the replication hook: the manifest
// carries a content fingerprint over every stored slot, so its ETag —
// and therefore Remote.Revalidate's changed verdict — reacts to slot
// fills and repairs inside an unchanged day range, not just to range
// growth. Steady state is a 304 and changed == false.
func TestManifestRevalidation(t *testing.T) {
	ds, _ := cleanStore(t)
	ts, _ := serve(t, ds)
	ctx := context.Background()
	rem, err := toplist.OpenRemote(ctx, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if rem.Snapshots() != 2 {
		t.Fatalf("manifest reports %d snapshots, want 2", rem.Snapshots())
	}
	fp := rem.ContentFingerprint()
	if fp == "" {
		t.Fatal("manifest reports no content fingerprint over a DiskStore")
	}

	// Nothing changed: revalidation is a 304 and reports unchanged.
	for i := 0; i < 2; i++ {
		changed, err := rem.Revalidate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			t.Fatalf("revalidate %d over an unchanged archive reported changed", i)
		}
	}

	// A new provider's slot fills INSIDE the existing day range: first
	// and last days are untouched, yet the manifest must change.
	if err := ds.Put("umbrella", 0, toplist.New([]string{"filled.com"})); err != nil {
		t.Fatal(err)
	}
	changed, err := rem.Revalidate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("mid-range slot fill did not change the manifest")
	}
	if rem.Snapshots() != 3 {
		t.Fatalf("manifest reports %d snapshots after fill, want 3", rem.Snapshots())
	}
	fp2 := rem.ContentFingerprint()
	if fp2 == fp {
		t.Fatal("content fingerprint unchanged by a slot fill")
	}

	// A repair that rewrites a slot to different bytes: same count,
	// same range, different fingerprint.
	if err := ds.Put("alexa", 0, toplist.New([]string{"repaired.net"})); err != nil {
		t.Fatal(err)
	}
	if changed, err = rem.Revalidate(ctx); err != nil || !changed {
		t.Fatalf("slot repair: changed=%v err=%v, want true nil", changed, err)
	}
	if rem.Snapshots() != 3 {
		t.Fatalf("manifest reports %d snapshots after repair, want 3", rem.Snapshots())
	}
	if rem.ContentFingerprint() == fp2 {
		t.Fatal("content fingerprint unchanged by a slot repair")
	}

	// And the steady state re-establishes.
	if changed, err = rem.Revalidate(ctx); err != nil || changed {
		t.Fatalf("post-repair steady state: changed=%v err=%v, want false nil", changed, err)
	}
}

// TestCacheControlHeaders pins the caching contract mirrors depend on:
// the manifest must always revalidate (no-cache — a pinned manifest
// would blind a mirror to every change), while snapshot documents are
// immutable-cacheable (their bytes are deterministic and
// content-hash-validated).
func TestCacheControlHeaders(t *testing.T) {
	ds, _ := cleanStore(t)
	ts := serveOpts(t, ds)
	for _, tc := range []struct {
		path string
		want string
	}{
		{toplist.RemoteManifestPath(), "no-cache"},
		{toplist.RemoteDaysPath(), "no-cache"},
		{toplist.RemoteProvidersPath(), "no-cache"},
		{toplist.RemoteSnapshotPath("alexa", 0), "public, max-age=31536000, immutable"},
	} {
		resp, _ := fetchStored(t, ts, tc.path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Cache-Control"); got != tc.want {
			t.Fatalf("%s: Cache-Control %q, want %q", tc.path, got, tc.want)
		}
	}
	// The encode fallback serves the same snapshot caching contract.
	resp, _ := fetchStored(t, serveOpts(t, ds, WithoutRawFastPath()),
		toplist.RemoteSnapshotPath("alexa", 0), "")
	if got := resp.Header.Get("Cache-Control"); got != "public, max-age=31536000, immutable" {
		t.Fatalf("encode path snapshot Cache-Control %q", got)
	}
}
