// Survey: run the paper's §3 literature survey pipeline over the
// embedded 687-paper corpus — keyword scan, false-positive filtering,
// manual-review confirmation — and print Table 1.
package main

import (
	"fmt"

	"repro/internal/survey"
)

func main() {
	corpus := survey.BuildCorpus()
	used, scanned, filtered := survey.Pipeline(corpus)

	fmt.Printf("corpus: %d papers at %d venues\n", len(corpus), len(survey.Venues()))
	fmt.Printf("keyword scan: %d candidates\n", scanned)
	fmt.Printf("false-positive filter: %d remain (dropped e.g. 'Amazon Alexa', 'Alexander et al.')\n", filtered)
	fmt.Printf("manual review: %d papers confirmed using a top list (%.1f%%)\n\n",
		len(used), 100*float64(len(used))/float64(len(corpus)))

	fmt.Printf("%-16s %-13s %7s %6s %6s  %2s %2s %2s  %9s %9s\n",
		"venue", "area", "papers", "using", "%", "Y", "V", "N", "list-date", "meas-date")
	for _, r := range survey.Table1(corpus, used) {
		fmt.Printf("%-16s %-13s %7d %6d %5.1f%%  %2d %2d %2d  %9d %9d\n",
			r.Venue, r.Area, r.Total, r.Using, r.UsingPercent,
			r.Y, r.V, r.N, r.ListDate, r.MeasDate)
	}

	fmt.Println("\nlist subsets used (right panel):")
	for _, c := range survey.UsageCounts(corpus, used) {
		fmt.Printf("  %-9s %-9s %3d\n", c.Source, c.Subset, c.Count)
	}

	listDate, measDate, both := survey.ReplicabilityCounts(corpus, used)
	fmt.Printf("\nreplicability: %d papers state the list date, %d the measurement date, %d both\n",
		listDate, measDate, both)
	fmt.Printf("%d papers use Alexa exclusively\n", survey.ExclusiveAlexaCount(corpus, used))
}
