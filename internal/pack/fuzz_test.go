package pack

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/toplist"
)

// FuzzOpenPack throws arbitrary bytes at the pack reader: Open must
// either succeed or fail with a clean error — no panics, no
// directory-length-driven over-allocation — and a pack that does open
// must survive a full read sweep with every slot either serving or
// reporting corruption, because fuzzed bytes that pass the directory
// hash are still untrusted until each blob's hash checks out.
func FuzzOpenPack(f *testing.F) {
	// Seed with a real pack and a few structured corruptions so the
	// fuzzer starts at the format's cliff edges instead of random noise.
	store := seedStore(f, f.TempDir())
	path := packStore(f, store)
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])   // truncated footer
	f.Add(valid[:headerSize])     // header only
	f.Add(valid[1:])              // misaligned
	f.Add([]byte{})               // empty
	f.Add(bytes.Repeat(valid, 2)) // doubled
	f.Add(packMagic[:])           // bare magic
	flipped := bytes.Clone(valid)
	flipped[len(flipped)-20] ^= 0xff // directory offset bytes
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Open(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return // a clean refusal is the expected outcome
		}
		// The pack opened: walk everything. Reads may fail (corrupt
		// blobs) but must never panic, and GetRaw errors must be the
		// corruption sentinel, not something structural.
		for _, prov := range p.Providers() {
			for d := p.First(); d <= p.Last(); d++ {
				p.Get(prov, d)
				if _, err := p.GetRaw(prov, d); err != nil {
					if !errorsIsCorrupt(err) {
						t.Fatalf("GetRaw(%s, %v): non-corruption error from in-memory pack: %v", prov, d, err)
					}
				}
			}
		}
		if _, err := p.Verify(); err != nil {
			t.Fatalf("Verify on in-memory pack returned a read error: %v", err)
		}
	})
}

func errorsIsCorrupt(err error) bool {
	for e := err; e != nil; e = unwrap(e) {
		if e == toplist.ErrCorruptSnapshot {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}
