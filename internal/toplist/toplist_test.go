package toplist

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestDayCalendar(t *testing.T) {
	if Day(0).String() != "2017-06-06" {
		t.Fatalf("epoch %v", Day(0))
	}
	if Day(0).Weekday() != time.Tuesday {
		t.Fatalf("2017-06-06 must be a Tuesday, got %v", Day(0).Weekday())
	}
	if Day(0).IsWeekend() {
		t.Fatal("Tuesday is not a weekend")
	}
	// 2017-06-10 is a Saturday (day 4).
	if !Day(4).IsWeekend() || !Day(5).IsWeekend() || Day(6).IsWeekend() {
		t.Fatal("weekend detection wrong")
	}
}

func TestDayWeekendCycleProperty(t *testing.T) {
	f := func(d uint16) bool {
		day := Day(d)
		return day.IsWeekend() == Day(int(d)+7).IsWeekend()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestListBasics(t *testing.T) {
	l := New([]string{"a.com", "b.com", "c.com"})
	if l.Len() != 3 {
		t.Fatal("len")
	}
	if l.Name(1) != "a.com" || l.Name(3) != "c.com" {
		t.Fatal("name by rank")
	}
	if l.RankOf("b.com") != 2 || l.RankOf("zzz") != 0 {
		t.Fatal("rank of")
	}
	if !l.Contains("a.com") || l.Contains("d.com") {
		t.Fatal("contains")
	}
	top := l.Top(2)
	if top.Len() != 2 || top.Name(2) != "b.com" {
		t.Fatal("top")
	}
	if l.Top(99).Len() != 3 {
		t.Fatal("top clamp")
	}
	e := l.Entries()
	if e[1].Rank != 2 || e[1].Name != "b.com" {
		t.Fatal("entries")
	}
}

func TestListDuplicateKeepsBestRank(t *testing.T) {
	l := New([]string{"a.com", "b.com", "a.com"})
	if l.RankOf("a.com") != 1 {
		t.Fatal("duplicate should keep rank 1")
	}
}

func TestListNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New([]string{"a.com"}).Name(2)
}

func TestListWithIDs(t *testing.T) {
	l := NewWithIDs([]string{"a.com", "b.com"}, []uint32{10, 20})
	ids := l.IDs()
	if len(ids) != 2 || ids[1] != 20 {
		t.Fatal("ids")
	}
	if got := l.Top(1).IDs(); len(got) != 1 || got[0] != 10 {
		t.Fatal("top ids")
	}
	if New([]string{"x"}).IDs() != nil {
		t.Fatal("ids should be nil when unset")
	}
}

func TestBaseDomains(t *testing.T) {
	l := New([]string{
		"www.example.com", "example.com", "mail.example.com",
		"other.org", "a.b.other.org",
	})
	b := l.BaseDomains()
	if b.Len() != 2 {
		t.Fatalf("base domains: %v", b.Names())
	}
	if b.Name(1) != "example.com" || b.Name(2) != "other.org" {
		t.Fatalf("order: %v", b.Names())
	}
}

func TestStructure(t *testing.T) {
	l := New([]string{
		"example.com",         // base, valid
		"www.example.com",     // depth 1
		"a.b.example.com",     // depth 2
		"a.b.c.example.com",   // depth 3
		"a.b.c.d.example.com", // depth 4 -> bucket >3
		"google.com",          // base
		"google.de",           // alias of google
		"printer.localdomain", // invalid TLD; PSL-wise a base domain (depth 0)
		"orphan.unlisted.org", // depth 1 whose base is absent
	})
	st := l.Structure()
	if st.InvalidTLDs != 1 || st.InvalidNames != 1 {
		t.Fatalf("invalid: %+v", st)
	}
	if st.MaxDepth != 4 {
		t.Fatalf("max depth %d", st.MaxDepth)
	}
	if st.ValidTLDs != 3 { // com, de, org
		t.Fatalf("valid TLDs %d", st.ValidTLDs)
	}
	if st.AliasSLDCount != 2 { // google.com + google.de
		t.Fatalf("alias count %d", st.AliasSLDCount)
	}
	// www.example.com's base is present; the only orphan subdomain is
	// orphan.unlisted.org (printer.localdomain is itself a base domain).
	if st.OrphanSubs != 1 {
		t.Fatalf("orphans %d", st.OrphanSubs)
	}
	wantD1 := 2.0 / 9.0 // www.example.com, orphan.unlisted.org
	if diff := st.DepthShare[0] - wantD1; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("depth1 share %v want %v", st.DepthShare[0], wantD1)
	}
}

func TestTopAliasSLDs(t *testing.T) {
	l := New([]string{"google.com", "google.de", "google.fr", "x.com", "x.net", "solo.org"})
	top := l.TopAliasSLDs(5)
	if len(top) != 2 {
		t.Fatalf("alias groups %v", top)
	}
	if top[0].SLD != "google" || top[0].Count != 3 {
		t.Fatalf("top alias %v", top[0])
	}
	if top[1].SLD != "x" || top[1].Count != 2 {
		t.Fatalf("second alias %v", top[1])
	}
}

func TestArchive(t *testing.T) {
	a := NewArchive(0, 2)
	if a.Days() != 3 {
		t.Fatal("days")
	}
	l := New([]string{"a.com"})
	if err := a.Put("alexa", 1, l); err != nil {
		t.Fatal(err)
	}
	if a.Get("alexa", 1) != l {
		t.Fatal("get")
	}
	if a.Get("alexa", 0) != nil || a.Get("umbrella", 1) != nil {
		t.Fatal("absent gets should be nil")
	}
	if a.Complete() {
		t.Fatal("incomplete archive reported complete")
	}
	for d := Day(0); d <= 2; d++ {
		_ = a.Put("alexa", d, l)
	}
	if !a.Complete() {
		t.Fatal("complete archive reported incomplete")
	}
	if err := a.Put("alexa", 5, l); err == nil {
		t.Fatal("out-of-range put should fail")
	}
	if err := a.Put("alexa", 1, nil); err == nil {
		t.Fatal("nil list put should fail")
	}
	count := 0
	a.EachDay(func(Day) { count++ })
	if count != 3 {
		t.Fatal("each day")
	}
	if got := a.Providers(); len(got) != 1 || got[0] != "alexa" {
		t.Fatalf("providers %v", got)
	}
}

func TestArchiveExpectAndMissing(t *testing.T) {
	a := NewArchive(0, 1)
	l := New([]string{"a.com"})

	// Without Expect, an empty archive is incomplete but reports no
	// concrete gaps (nothing is known to be owed).
	if a.Complete() {
		t.Fatal("empty archive reported complete")
	}
	if m := a.Missing(); len(m) != 0 {
		t.Fatalf("empty archive without expectations missing %v", m)
	}

	a.Expect("alexa", "umbrella")
	if got := a.Expected(); len(got) != 2 || got[0] != "alexa" || got[1] != "umbrella" {
		t.Fatalf("expected %v", got)
	}
	// All four (provider, day) slots are owed, expected order first.
	m := a.Missing()
	if len(m) != 4 {
		t.Fatalf("missing %v", m)
	}
	if m[0].Provider != "alexa" || m[0].Day != 0 || m[3].Provider != "umbrella" || m[3].Day != 1 {
		t.Fatalf("missing order %v", m)
	}

	_ = a.Put("alexa", 0, l)
	_ = a.Put("alexa", 1, l)
	_ = a.Put("umbrella", 0, l)
	// Pre-fix Complete() would have been fooled by a fully absent
	// provider; with Expect a single missing day is still caught.
	if a.Complete() {
		t.Fatal("archive missing umbrella day 1 reported complete")
	}
	m = a.Missing()
	if len(m) != 1 || m[0].Provider != "umbrella" || m[0].Day != 1 || m[0].List != nil {
		t.Fatalf("missing %v", m)
	}

	_ = a.Put("umbrella", 1, l)
	if !a.Complete() || len(a.Missing()) != 0 {
		t.Fatal("full archive reported incomplete")
	}

	// Un-expected providers that were inserted still count.
	_ = a.Put("majestic", 0, l)
	if a.Complete() {
		t.Fatal("gappy extra provider reported complete")
	}
	m = a.Missing()
	if len(m) != 1 || m[0].Provider != "majestic" || m[0].Day != 1 {
		t.Fatalf("missing %v", m)
	}
}

func TestArchiveExpectAbsentProvider(t *testing.T) {
	a := NewArchive(0, 0)
	l := New([]string{"a.com"})
	_ = a.Put("alexa", 0, l)
	if !a.Complete() {
		t.Fatal("gap-free archive without expectations should be complete")
	}
	a.Expect("alexa", "majestic")
	if a.Complete() {
		t.Fatal("archive lacking an expected provider reported complete")
	}
	m := a.Missing()
	if len(m) != 1 || m[0].Provider != "majestic" || m[0].Day != 0 {
		t.Fatalf("missing %v", m)
	}
}

func TestArchiveIsSnapshotSink(t *testing.T) {
	var sink SnapshotSink = NewArchive(0, 0)
	if err := sink.Put("alexa", 0, New([]string{"a.com"})); err != nil {
		t.Fatal(err)
	}
}

func TestArchiveSortedProviders(t *testing.T) {
	a := NewArchive(0, 0)
	l := New([]string{"a.com"})
	_ = a.Put("umbrella", 0, l)
	_ = a.Put("alexa", 0, l)
	sorted := a.SortedProviders()
	if sorted[0] != "alexa" || sorted[1] != "umbrella" {
		t.Fatalf("sorted %v", sorted)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l := New([]string{"a.com", "b.net", "c.org"})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	want := "1,a.com\n2,b.net\n3,c.org\n"
	if buf.String() != want {
		t.Fatalf("csv %q", buf.String())
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got.Name(2) != "b.net" {
		t.Fatal("round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, bad := range []string{
		"1 a.com\n",      // no comma
		"x,a.com\n",      // bad rank
		"2,a.com\n",      // rank not starting at 1
		"1,a.com\n3,b\n", // gap
		"1,\n",           // empty domain
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Fatalf("ReadCSV(%q) should fail", bad)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	l, err := ReadCSV(strings.NewReader("1,a.com\n\n2,b.com\n"))
	if err != nil || l.Len() != 2 {
		t.Fatalf("blank lines: %v %v", l, err)
	}
}
