package toplist

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/domainname"
)

// Entry is one row of a top list.
type Entry struct {
	Rank int    // 1-based
	Name string // FQDN
}

// List is an ordered top list: names[0] has rank 1. Lists are immutable
// after construction; all derived views copy.
type List struct {
	names []string
	ids   []uint32 // optional compact IDs parallel to names (0 if unset)

	// rank is built lazily on the first RankOf/Contains: lists that
	// stream straight from the engine into a gzip sink are never
	// queried by name, and eagerly building a map per snapshot was the
	// single largest steady-state allocation of the day loop.
	rankOnce sync.Once
	rank     map[string]int
}

// New builds a list from names in rank order. Duplicate names keep their
// best (lowest) rank.
func New(names []string) *List {
	return &List{names: append([]string(nil), names...)}
}

// rankMap returns the name→rank index, building it on first use.
// Concurrent readers share one build via rankOnce; the list itself is
// immutable, so the map never changes afterwards.
func (l *List) rankMap() map[string]int {
	l.rankOnce.Do(func() {
		m := make(map[string]int, len(l.names))
		for i, n := range l.names {
			if _, ok := m[n]; !ok {
				m[n] = i + 1
			}
		}
		l.rank = m
	})
	return l.rank
}

// NewWithIDs builds a list from parallel name/ID slices in rank order.
// IDs let hot-path analyses avoid string hashing.
func NewWithIDs(names []string, ids []uint32) *List {
	if len(names) != len(ids) {
		panic("toplist: names/ids length mismatch")
	}
	l := New(names)
	l.ids = append([]uint32(nil), ids...)
	return l
}

// Len reports the list size.
func (l *List) Len() int { return len(l.names) }

// Name returns the name at rank r (1-based). It panics if r is out of
// range.
func (l *List) Name(r int) string {
	if r < 1 || r > len(l.names) {
		panic(fmt.Sprintf("toplist: rank %d out of range [1,%d]", r, len(l.names)))
	}
	return l.names[r-1]
}

// Names returns the names in rank order (copy).
func (l *List) Names() []string { return append([]string(nil), l.names...) }

// IDs returns the compact IDs in rank order (copy; nil if unset).
func (l *List) IDs() []uint32 {
	if l.ids == nil {
		return nil
	}
	return append([]uint32(nil), l.ids...)
}

// RankOf returns the 1-based rank of name, or 0 if absent.
func (l *List) RankOf(name string) int { return l.rankMap()[name] }

// Contains reports whether name is in the list.
func (l *List) Contains(name string) bool {
	_, ok := l.rankMap()[name]
	return ok
}

// Top returns a new list containing the first n entries (or all of them
// if n exceeds the size).
func (l *List) Top(n int) *List {
	if n > len(l.names) {
		n = len(l.names)
	}
	if n < 0 {
		n = 0
	}
	if l.ids != nil {
		return NewWithIDs(l.names[:n], l.ids[:n])
	}
	return New(l.names[:n])
}

// Entries returns the list rows.
func (l *List) Entries() []Entry {
	out := make([]Entry, len(l.names))
	for i, n := range l.names {
		out[i] = Entry{Rank: i + 1, Name: n}
	}
	return out
}

// NameSet returns the set of names as a map.
func (l *List) NameSet() map[string]struct{} {
	s := make(map[string]struct{}, len(l.names))
	for _, n := range l.names {
		s[n] = struct{}{}
	}
	return s
}

// BaseDomains returns the list normalised to unique base domains,
// preserving best-rank order — the paper's §5.2 normalisation used
// before computing list intersections ("reducing e.g. Umbrella to 273k
// base domains").
func (l *List) BaseDomains() *List {
	seen := make(map[string]struct{}, len(l.names))
	var out []string
	for _, n := range l.names {
		b := domainname.BaseOf(n)
		if _, ok := seen[b]; ok {
			continue
		}
		seen[b] = struct{}{}
		out = append(out, b)
	}
	return New(out)
}

// StructureStats summarises the per-snapshot structural metrics of
// Table 2.
type StructureStats struct {
	ValidTLDs     int        // distinct valid TLDs covered
	InvalidTLDs   int        // distinct invalid TLDs present
	InvalidNames  int        // names under invalid TLDs
	BaseDomains   int        // unique base domains
	BaseShare     float64    // names that are base domains / list size
	DepthShare    [4]float64 // share at depth 1, 2, 3, and >3
	MaxDepth      int        // deepest subdomain level present
	AliasSLDCount int        // DUP_SLD: names whose (SLD, suffix) duplicates another TLD variant
	OrphanSubs    int        // subdomains whose base domain is not in the list
}

// Structure computes the Table 2 structural metrics for the list.
func (l *List) Structure() StructureStats {
	var st StructureStats
	validTLD := make(map[string]struct{})
	invalidTLD := make(map[string]struct{})
	baseSeen := make(map[string]struct{})
	bySLD := make(map[string][]string) // SLD -> distinct base domains
	present := l.NameSet()
	baseCount := 0
	for _, raw := range l.names {
		n, err := domainname.Parse(raw)
		if err != nil {
			continue
		}
		if n.ValidTLD {
			validTLD[n.TLD] = struct{}{}
		} else {
			invalidTLD[n.TLD] = struct{}{}
			st.InvalidNames++
		}
		base := n.Base
		if base == "" {
			base = n.FQDN
		}
		if _, ok := baseSeen[base]; !ok {
			baseSeen[base] = struct{}{}
			if n.SLD != "" {
				bySLD[n.SLD] = append(bySLD[n.SLD], base)
			}
		}
		switch {
		case n.Depth == 0:
			baseCount++
		case n.Depth >= 1 && n.Depth <= 3:
			st.DepthShare[n.Depth-1]++
		default:
			st.DepthShare[3]++
		}
		if n.Depth > st.MaxDepth {
			st.MaxDepth = n.Depth
		}
		if n.Depth > 0 {
			if _, ok := present[base]; !ok {
				st.OrphanSubs++
			}
		}
	}
	size := float64(len(l.names))
	if size > 0 {
		st.BaseShare = float64(baseCount) / size
		for i := range st.DepthShare {
			st.DepthShare[i] /= size
		}
	}
	st.ValidTLDs = len(validTLD)
	st.InvalidTLDs = len(invalidTLD)
	st.BaseDomains = len(baseSeen)
	for _, bases := range bySLD {
		if len(bases) > 1 {
			st.AliasSLDCount += len(bases) // domain aliases: same SLD, different TLD
		}
	}
	return st
}

// TopAliasSLDs returns the n SLDs with the most base-domain aliases in
// the list (the paper notes google at ≈200 occurrences).
func (l *List) TopAliasSLDs(n int) []struct {
	SLD   string
	Count int
} {
	bySLD := make(map[string]map[string]struct{})
	for _, raw := range l.names {
		dn, err := domainname.Parse(raw)
		if err != nil || dn.SLD == "" {
			continue
		}
		base := dn.Base
		if bySLD[dn.SLD] == nil {
			bySLD[dn.SLD] = make(map[string]struct{})
		}
		bySLD[dn.SLD][base] = struct{}{}
	}
	type sc struct {
		SLD   string
		Count int
	}
	var all []sc
	for sld, bases := range bySLD {
		if len(bases) > 1 {
			all = append(all, sc{sld, len(bases)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].SLD < all[j].SLD
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		SLD   string
		Count int
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			SLD   string
			Count int
		}{all[i].SLD, all[i].Count}
	}
	return out
}
