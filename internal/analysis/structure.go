package analysis

import (
	"repro/internal/stats"
	"repro/internal/toplist"
)

// Table2Row holds the paper's Table 2 metrics for one (provider,
// subset) pair over the archive: mean valid-TLD coverage, mean base
// domains, subdomain-depth shares, domain aliases, mean daily change,
// and mean first-appearance count.
type Table2Row struct {
	Provider string
	Top      int // subset size; 0 = full list

	TLDMean, TLDStd float64 // distinct valid TLDs covered
	InvalidTLDMean  float64 // distinct invalid TLDs present
	InvalidNameMean float64 // names under invalid TLDs
	BDMean, BDStd   float64 // unique base domains
	SD1, SD2, SD3   float64 // mean share at subdomain depth 1, 2, 3
	SDM             int     // maximum subdomain depth observed
	DupMean, DupStd float64 // domain aliases (DUP_SLD)
	Delta           float64 // µ∆: mean daily removed-domain count
	New             float64 // µNEW: mean daily first-appearance count
}

// Table2 computes the row for provider at the given subset size
// (0 = full list).
func (c *Context) Table2(provider string, top int) Table2Row {
	row := Table2Row{Provider: provider, Top: top}
	var tlds, bds, dups, invT, invN []float64

	prevSet := stats.IDSet(nil)
	union := make(map[uint32]struct{})
	var deltas, news []float64
	day := 0

	toplist.EachDay(c.Arch, func(d toplist.Day) {
		l := c.subset(provider, d, top)
		if l == nil {
			return
		}
		ids := c.worldIDs(l)

		validTLD := make(map[string]struct{})
		invalidTLD := make(map[string]struct{})
		baseSet := make(map[uint32]struct{})
		sldBases := make(map[string]map[uint32]struct{})
		var d1, d2, d3 float64
		invalidNames := 0
		for _, id := range ids {
			in := &c.info[id]
			if in.validTLD {
				validTLD[in.tld] = struct{}{}
			} else {
				invalidTLD[in.tld] = struct{}{}
				invalidNames++
			}
			baseSet[in.baseKey] = struct{}{}
			if in.sldGroup != "" {
				m := sldBases[in.sldGroup]
				if m == nil {
					m = make(map[uint32]struct{})
					sldBases[in.sldGroup] = m
				}
				m[in.baseKey] = struct{}{}
			}
			switch in.depth {
			case 0:
			case 1:
				d1++
			case 2:
				d2++
			case 3:
				d3++
			}
			if int(in.depth) > row.SDM {
				row.SDM = int(in.depth)
			}
		}
		size := float64(l.Len())
		if size == 0 {
			return
		}
		tlds = append(tlds, float64(len(validTLD)))
		invT = append(invT, float64(len(invalidTLD)))
		invN = append(invN, float64(invalidNames))
		bds = append(bds, float64(len(baseSet)))
		row.SD1 += d1 / size
		row.SD2 += d2 / size
		row.SD3 += d3 / size
		dup := 0
		for _, bases := range sldBases {
			if len(bases) > 1 {
				dup += len(bases)
			}
		}
		dups = append(dups, float64(dup))

		cur := stats.NewIDSet(ids)
		if prevSet != nil {
			deltas = append(deltas, float64(prevSet.RemovedCount(cur)))
		}
		if day >= 8 { // skip the startup transient for first-appearances
			newCount := 0
			for _, id := range ids {
				if _, seen := union[id]; !seen {
					newCount++
				}
			}
			news = append(news, float64(newCount))
		}
		for _, id := range ids {
			union[id] = struct{}{}
		}
		prevSet = cur
		day++
	})

	days := float64(len(tlds))
	if days == 0 {
		return row
	}
	row.TLDMean, row.TLDStd = stats.MeanStd(tlds)
	row.InvalidTLDMean = stats.Mean(invT)
	row.InvalidNameMean = stats.Mean(invN)
	row.BDMean, row.BDStd = stats.MeanStd(bds)
	row.SD1 /= days
	row.SD2 /= days
	row.SD3 /= days
	row.DupMean, row.DupStd = stats.MeanStd(dups)
	row.Delta = stats.Mean(deltas)
	row.New = stats.Mean(news)
	return row
}
