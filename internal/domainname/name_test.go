package domainname

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePaperExample(t *testing.T) {
	// §5 of the paper: for www.net.in.tum.de, .de is the public suffix,
	// tum.de the base domain, and the name is a third-level subdomain.
	n := MustParse("www.net.in.tum.de")
	if n.PublicSuffix != "de" {
		t.Fatalf("public suffix %q", n.PublicSuffix)
	}
	if n.Base != "tum.de" {
		t.Fatalf("base %q", n.Base)
	}
	if n.Depth != 3 {
		t.Fatalf("depth %d", n.Depth)
	}
	if n.SLD != "tum" {
		t.Fatalf("sld %q", n.SLD)
	}
	if !n.ValidTLD {
		t.Fatal("de must be a valid TLD")
	}
}

func TestParseBaseDomain(t *testing.T) {
	n := MustParse("example.com")
	if n.Base != "example.com" || n.Depth != 0 || n.SLD != "example" {
		t.Fatalf("got %+v", n)
	}
}

func TestParseMultiLabelSuffix(t *testing.T) {
	n := MustParse("shop.example.co.uk")
	if n.PublicSuffix != "co.uk" {
		t.Fatalf("public suffix %q", n.PublicSuffix)
	}
	if n.Base != "example.co.uk" {
		t.Fatalf("base %q", n.Base)
	}
	if n.Depth != 1 {
		t.Fatalf("depth %d", n.Depth)
	}
}

func TestParseNormalisation(t *testing.T) {
	n := MustParse("  WWW.Example.COM. ")
	if n.FQDN != "www.example.com" {
		t.Fatalf("fqdn %q", n.FQDN)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", ".", "a..b", "-leading.com", "trailing-.com",
		"exa mple.com", "exa*mple.com",
		strings.Repeat("a", 64) + ".com",
		strings.Repeat("abcdefgh.", 32) + "com", // > 253 octets
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseUnderscoreAllowed(t *testing.T) {
	if _, err := Parse("_dmarc.example.com"); err != nil {
		t.Fatalf("underscore label rejected: %v", err)
	}
}

func TestWildcardAndException(t *testing.T) {
	// *.ck is a public suffix; www.ck is an exception.
	if !IsPublicSuffix("anything.ck") {
		t.Fatal("anything.ck should be a public suffix under *.ck")
	}
	n := MustParse("www.ck")
	if n.Base != "www.ck" || n.Depth != 0 {
		t.Fatalf("exception rule: %+v", n)
	}
	n = MustParse("foo.www.ck")
	if n.Base != "www.ck" || n.Depth != 1 {
		t.Fatalf("under exception rule: %+v", n)
	}
	n = MustParse("site.whatever.ck")
	if n.PublicSuffix != "whatever.ck" || n.Base != "site.whatever.ck" {
		t.Fatalf("wildcard rule: %+v", n)
	}
}

func TestPrivateSuffixBlogspot(t *testing.T) {
	n := MustParse("cooking.blogspot.com")
	if n.PublicSuffix != "blogspot.com" {
		t.Fatalf("public suffix %q", n.PublicSuffix)
	}
	if n.Base != "cooking.blogspot.com" || n.Depth != 0 {
		t.Fatalf("%+v", n)
	}
	if g := SLDGroup("cooking.blogspot.com"); g != "blogspot" {
		t.Fatalf("blogspot group %q", g)
	}
	if g := SLDGroup("foo.blogspot.de"); g != "blogspot" {
		t.Fatalf("blogspot.de group %q", g)
	}
}

func TestSLDGroup(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"docs.sharepoint.com", "sharepoint"},
		// tumblr.com is deliberately NOT a private suffix here, so user
		// blogs group under "tumblr" — matching the paper's Fig. 3b,
		// which shows a tumblr.com group.
		{"someblog.tumblr.com", "tumblr"},
		{"nessus.org", "nessus"},
		{"cdn.ampproject.org", "ampproject"},
		{"com", ""},
	} {
		if got := SLDGroup(tc.in); got != tc.want {
			t.Fatalf("SLDGroup(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestBaseOfAndDepthOf(t *testing.T) {
	if BaseOf("a.b.c.example.org") != "example.org" {
		t.Fatal("BaseOf")
	}
	if BaseOf("com") != "com" {
		t.Fatal("BaseOf of a public suffix should return the input")
	}
	if DepthOf("a.b.c.example.org") != 3 {
		t.Fatal("DepthOf")
	}
	if DepthOf("!!!") != 0 {
		t.Fatal("DepthOf unparseable")
	}
}

func TestTLDValidity(t *testing.T) {
	if !IsValidTLD("com") || !IsValidTLD("de") || !IsValidTLD("xyz") {
		t.Fatal("expected valid TLDs")
	}
	for _, bad := range []string{"localdomain", "cpe", "0", "server"} {
		if IsValidTLD(bad) {
			t.Fatalf("%q must be invalid", bad)
		}
	}
	n := MustParse("printer.localdomain")
	if n.ValidTLD {
		t.Fatal("localdomain marked valid")
	}
}

func TestInvalidTLDSamplesAreInvalid(t *testing.T) {
	samples := InvalidTLDSamples()
	if len(samples) == 0 {
		t.Fatal("no invalid TLD samples")
	}
	for _, s := range samples {
		if IsValidTLD(s) {
			t.Fatalf("sample %q is in the valid registry", s)
		}
	}
}

func TestRegistryCounts(t *testing.T) {
	if TLDCount() < 100 {
		t.Fatalf("TLD registry too small: %d", TLDCount())
	}
	if PublicSuffixRuleCount() < 80 {
		t.Fatalf("PSL too small: %d", PublicSuffixRuleCount())
	}
}

func TestParseIdempotentProperty(t *testing.T) {
	// Property: re-parsing a parsed FQDN yields the same structure.
	f := func(seed uint64) bool {
		names := []string{
			"example.com", "www.example.com", "a.b.c.d.example.co.uk",
			"x.blogspot.com", "deep.www.ck", "host.localdomain",
		}
		n1 := MustParse(names[int(seed%uint64(len(names)))])
		n2 := MustParse(n1.FQDN)
		return n1.FQDN == n2.FQDN && n1.Base == n2.Base &&
			n1.Depth == n2.Depth && n1.PublicSuffix == n2.PublicSuffix
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBaseIsSuffixProperty(t *testing.T) {
	// Property: for any parsed name with a base, FQDN ends with Base and
	// Base ends with PublicSuffix.
	for _, s := range []string{
		"example.com", "www.example.com", "a.b.c.example.co.uk",
		"x.y.blogspot.de", "cdn.fastly.net", "svc.internal",
	} {
		n := MustParse(s)
		if n.Base == "" {
			continue
		}
		if !strings.HasSuffix(n.FQDN, n.Base) {
			t.Fatalf("%q: FQDN not suffixed by base %q", s, n.Base)
		}
		if !strings.HasSuffix(n.Base, n.PublicSuffix) {
			t.Fatalf("%q: base %q not suffixed by suffix %q", s, n.Base, n.PublicSuffix)
		}
	}
}
