package main

import (
	"context"
	"testing"
	"time"

	"repro/internal/listserv"
	"repro/internal/toplist"
)

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}, nil); err == nil {
		t.Fatal("bogus scale should fail")
	}
	if err := run([]string{"-addr", "256.0.0.1:http:nope"}, nil); err == nil {
		t.Fatal("bad address should fail")
	}
	if err := run([]string{"-notaflag"}, nil); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestPublishDailyAdvancesToEnd(t *testing.T) {
	arch := toplist.NewArchive(0, 3)
	for d := toplist.Day(0); d <= 3; d++ {
		if err := arch.Put("alexa", d, toplist.New([]string{"a.com"})); err != nil {
			t.Fatal(err)
		}
	}
	gk := listserv.NewGatekeeper(arch, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		publishDaily(ctx, gk, arch.Last(), time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		t.Fatal("publishDaily did not finish")
	}
	if gk.LastVisible() != 3 {
		t.Fatalf("LastVisible = %v, want 3", gk.LastVisible())
	}
}

func TestPublishDailyStopsOnCancel(t *testing.T) {
	arch := toplist.NewArchive(0, 1000)
	if err := arch.Put("alexa", 0, toplist.New([]string{"a.com"})); err != nil {
		t.Fatal(err)
	}
	gk := listserv.NewGatekeeper(arch, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() {
		publishDaily(ctx, gk, arch.Last(), time.Hour)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publishDaily ignored cancellation")
	}
}
