package dnsd

import (
	"testing"

	"repro/internal/simnet"
)

// FuzzServerAnswer drives the server's query handler with arbitrary
// datagrams: it must never panic, never answer with a query (QR
// unset), and answer well-formed queries consistently over UDP and
// TCP framing.
func FuzzServerAnswer(f *testing.F) {
	q := &simnet.Message{
		ID:        7,
		Recursion: true,
		Question:  simnet.Question{Name: "plain.example.com", Type: simnet.TypeA, Class: simnet.ClassIN},
	}
	wire, err := q.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire, true)
	f.Add(wire, false)
	f.Add([]byte{}, true)
	f.Add([]byte{0xAB}, true)
	f.Add(make([]byte, 12), true)
	f.Add(make([]byte, 600), false)

	zone := testZone()
	s := &Server{zone: zone}

	f.Fuzz(func(t *testing.T, data []byte, udp bool) {
		resp, counted := s.answer(data, udp)
		if resp == nil {
			return
		}
		if udp && len(resp) > MaxUDPPayload {
			t.Fatalf("UDP answer %d bytes exceeds payload limit", len(resp))
		}
		m, err := simnet.DecodeMessage(resp)
		if err != nil {
			t.Fatalf("server emitted undecodable answer: %v", err)
		}
		if !m.Response {
			t.Fatal("server answered with QR unset")
		}
		if counted {
			// Well-formed query: the answer must echo ID and question.
			in, err := simnet.DecodeMessage(data)
			if err != nil {
				t.Fatalf("counted a query the decoder rejects: %v", err)
			}
			if m.ID != in.ID {
				t.Fatalf("ID not echoed: %d vs %d", m.ID, in.ID)
			}
		} else if m.RCode != simnet.RCodeFormErr {
			t.Fatalf("malformed input answered with %v, want FORMERR", m.RCode)
		}
	})
}
