// Package experiments maps every table and figure of the paper's
// evaluation to a driver that regenerates it from a simulated study,
// and renders the outcome as a text table. The registry is the backend
// of `cmd/toplists experiment <id>` and of the root-level benchmark
// harness.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Result is a regenerated table or figure.
type Result struct {
	ID    string
	Title string
	// Paper summarises what the original reports, for side-by-side
	// reading in EXPERIMENTS.md.
	Paper  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Elapsed is the driver's wall time, recorded by Run. RunAll's
	// worker pool feeds it back into its longest-job-first ordering;
	// it is not rendered (it would make output non-deterministic).
	Elapsed time.Duration
}

// Render formats the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = runeLen(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && runeLen(cell) > widths[i] {
				widths[i] = runeLen(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for p := runeLen(cell); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func runeLen(s string) int { return len([]rune(s)) }

// Formatting helpers shared by the drivers.

func pct(v float64) string  { return fmt.Sprintf("%.2f%%", 100*v) }
func pct1(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func d(v int) string        { return fmt.Sprintf("%d", v) }

// meanStdCell renders "µ ± σ" in a unit given by format.
func meanStdCell(mean, std float64, asPercent bool) string {
	if asPercent {
		return fmt.Sprintf("%.2f%% ± %.2f", 100*mean, 100*std)
	}
	return fmt.Sprintf("%.1f ± %.1f", mean, std)
}
