package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/toplist"
)

// timingStore is the durable side-channel for observed experiment wall
// times: toplist.DiskStore implements it in the archive manifest. An
// Env whose source or tee implements it preloads the recorded times —
// so a fresh process's first RunAllWorkers round is already scheduled
// longest-job-first from real data — and records every new observation
// back, best-effort.
type timingStore interface {
	RecordTiming(id string, d time.Duration) error
	Timings() map[string]time.Duration
}

// Env lazily materialises the study shared by the experiment drivers.
type Env struct {
	Scale core.Scale

	// source, when set, short-circuits simulation: the study is rebuilt
	// around this already-generated archive (core.RunFrom) and the
	// engine is never invoked.
	source toplist.Source
	// tee, when set, additionally streams every generated snapshot into
	// it (ignored when source is set — nothing is generated).
	tee toplist.SnapshotSink
	// timing, when set, persists observed wall times across processes.
	timing timingStore

	mu      sync.Mutex
	runCtx  context.Context // ctx governing the (single) materialisation
	study   *core.Study
	err     error
	done    bool
	elapsed map[string]time.Duration // observed per-experiment wall time
}

// NewEnv builds an environment at the given scale; the study runs on
// first use.
func NewEnv(scale core.Scale) *Env { return &Env{Scale: scale} }

// NewEnvFrom builds an environment whose study serves from an
// already-generated archive source instead of simulating: scale must
// match the scale that produced the source (it rebuilds the world and
// analysis layers deterministically), and the engine is never invoked.
// A source that records timings (a reopened toplist.DiskStore) seeds
// the pool's longest-job-first schedule with the wall times observed
// by whatever process ran experiments against the archive before.
func NewEnvFrom(scale core.Scale, src toplist.Source) *Env {
	e := &Env{Scale: scale, source: src}
	e.adoptTimings(src)
	return e
}

// adoptTimings wires a timing-recording store (if v is one) into the
// Env: recorded wall times are preloaded into the scheduling state,
// and future observations are persisted back.
func (e *Env) adoptTimings(v any) {
	ts, ok := v.(timingStore)
	if !ok {
		return
	}
	e.timing = ts
	if saved := ts.Timings(); len(saved) > 0 {
		e.mu.Lock()
		if e.elapsed == nil {
			e.elapsed = make(map[string]time.Duration, len(saved))
		}
		for id, d := range saved {
			e.elapsed[id] = d
		}
		e.mu.Unlock()
	}
}

// NewEnvError builds an environment that reports err from every
// materialisation — how a constructor without an error return (the
// public NewLab) defers a configuration failure to first use without
// losing it.
func NewEnvError(scale core.Scale, err error) *Env {
	return &Env{Scale: scale, err: err, done: true}
}

// SetTee streams every snapshot the (future) simulation generates into
// sink as well — e.g. a toplist.DiskStore persisting the run. It must
// be called before the study materialises; it has no effect on an Env
// built from a source (nothing is generated, and timing persistence
// stays with the source). A sink that records timings additionally
// persists observed experiment wall times into the archive.
func (e *Env) SetTee(sink toplist.SnapshotSink) {
	if e.source != nil {
		return
	}
	e.tee = sink
	e.adoptTimings(sink)
}

// Study returns the materialised study, running the simulation once
// (or, for a source-backed Env, rebuilding the study around the source
// once). The context bound by the first Run/RunAll caller governs the
// materialisation; direct Study callers get context.Background. A
// materialisation aborted by context cancellation is not cached: the
// cancelled caller gets ctx's error, and a later call with a live
// context retries — only deterministic failures poison the Env.
func (e *Env) Study() (*core.Study, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done {
		ctx := e.runCtx
		if ctx == nil {
			ctx = context.Background()
		}
		if e.source != nil {
			e.study, e.err = core.RunFrom(e.Scale, e.source)
		} else {
			e.study, e.err = core.RunContext(ctx, e.Scale, e.tee)
		}
		if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
			err := e.err
			e.study, e.err, e.runCtx = nil, nil, nil
			return nil, err
		}
		e.done = true
	}
	return e.study, e.err
}

// bind records the context that will govern the study materialisation;
// only the first bind before materialisation wins.
func (e *Env) bind(ctx context.Context) {
	e.mu.Lock()
	if e.runCtx == nil && !e.done {
		e.runCtx = ctx
	}
	e.mu.Unlock()
}

// noteElapsed records an observed experiment wall time; subsequent
// RunAll calls on the same Env use it for longest-job-first ordering,
// and a timing-recording archive persists it for future processes.
func (e *Env) noteElapsed(id string, d time.Duration) {
	e.mu.Lock()
	if e.elapsed == nil {
		e.elapsed = make(map[string]time.Duration)
	}
	e.elapsed[id] = d
	e.mu.Unlock()
	if e.timing != nil {
		// Best-effort: a full disk must not fail the experiment whose
		// result is already in hand.
		_ = e.timing.RecordTiming(id, d)
	}
}

// observedElapsed returns the recorded wall time for id (0 if never
// run on this Env).
func (e *Env) observedElapsed(id string) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.elapsed[id]
}

// Driver regenerates one table or figure.
type Driver func(*Env) (*Result, error)

type registration struct {
	id     string
	title  string
	driver Driver
}

var registry = map[string]registration{}

func register(id, title string, driver Driver) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = registration{id: id, title: title, driver: driver}
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the registered title for id ("" when unknown).
func Title(id string) string { return registry[id].title }

// Run executes one experiment against the environment. The context
// governs the shared study's (single) materialisation and is checked
// before the driver starts; drivers themselves are CPU-bound and run
// to completion once started. The result records its wall time in
// Elapsed.
func Run(ctx context.Context, e *Env, id string) (*Result, error) {
	reg, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.bind(ctx)
	start := time.Now()
	res, err := reg.driver(e)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = reg.id
	if res.Title == "" {
		res.Title = reg.title
	}
	res.Elapsed = time.Since(start)
	e.noteElapsed(id, res.Elapsed)
	return res, nil
}

// RunAll executes every experiment on a bounded worker pool sized to
// GOMAXPROCS and returns the results in ID order. The drivers share
// the environment's immutable study (each builds its own generators
// and injectors for what-if runs), so they are safe to run
// concurrently; the first failure in ID order is returned.
func RunAll(ctx context.Context, e *Env) ([]*Result, error) {
	return RunAllWorkers(ctx, e, 0)
}

// RunAllWorkers is RunAll with an explicit pool size (< 1 means
// GOMAXPROCS, 1 runs strictly serially in ID order). The pool claims
// experiments longest-job-first (see schedule), so the grid-heavy
// drivers that dominate the critical path start before the cheap
// table lookups; results still come back in ID order. Cancelling ctx
// stops workers from claiming further experiments.
func RunAllWorkers(ctx context.Context, e *Env, workers int) ([]*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ids := IDs()
	index := make(map[string]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	results := make([]*Result, len(ids))
	errs := make([]error, len(ids))
	workers = parallel.Workers(workers)
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		for i, id := range ids {
			if results[i], errs[i] = Run(ctx, e, id); errs[i] != nil {
				return nil, errs[i]
			}
		}
		return results, nil
	}
	// The study materialises inside the first Run call; forcing it
	// here keeps the per-experiment elapsed times (which drive the
	// scheduling of later RunAll rounds) free of the shared setup cost.
	e.bind(ctx)
	if _, err := e.Study(); err != nil {
		return nil, err
	}
	queue := schedule(e, ids)
	var (
		mu     sync.Mutex
		next   int
		failed bool
		wg     sync.WaitGroup
	)
	claim := func() (string, int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if failed || next >= len(queue) {
			return "", 0, false
		}
		id := queue[next]
		next++
		return id, index[id], true
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				id, i, ok := claim()
				if !ok {
					return
				}
				results[i], errs[i] = Run(ctx, e, id)
				if errs[i] != nil {
					// Stop claiming new experiments; in-flight ones
					// finish, matching the serial path's fail-fast
					// behavior closely enough without cancellation
					// plumbing through every driver.
					mu.Lock()
					failed = true
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
