package survey

import "fmt"

// venueData reproduces Table 1's left panel: per-venue paper totals,
// list-using paper counts, the dependence split (Y/V/N), and how many
// of the using papers state list-download and measurement dates.
var venueData = []struct {
	Venue              Venue
	Using              int
	Y, V, N            int
	ListDate, MeasDate int
}{
	{Venue{"ACM IMC", "Measurements", 42}, 11, 8, 2, 1, 1, 3},
	{Venue{"PAM", "Measurements", 20}, 4, 3, 1, 0, 0, 0},
	{Venue{"TMA", "Measurements", 19}, 3, 1, 1, 1, 0, 0},
	{Venue{"USENIX Security", "Security", 85}, 12, 8, 4, 0, 2, 0},
	{Venue{"IEEE S&P", "Security", 60}, 5, 3, 2, 0, 1, 1},
	{Venue{"ACM CCS", "Security", 151}, 11, 4, 5, 2, 1, 1},
	{Venue{"NDSS", "Security", 68}, 3, 2, 0, 1, 0, 0},
	{Venue{"ACM CoNEXT", "Systems", 40}, 4, 2, 1, 1, 0, 1},
	{Venue{"ACM SIGCOMM", "Systems", 38}, 3, 3, 0, 0, 0, 0},
	{Venue{"WWW", "Web Tech.", 164}, 13, 11, 1, 1, 2, 3},
}

// usagePool reproduces Table 1's right panel: how many of the 69 papers
// use each list subset (multiple counts for papers using multiple
// lists).
var usagePool = []struct {
	Use   ListUse
	Count int
}{
	{ListUse{"alexa", "1M"}, 29},
	{ListUse{"alexa", "100k"}, 2},
	{ListUse{"alexa", "75k"}, 1},
	{ListUse{"alexa", "50k"}, 2},
	{ListUse{"alexa", "25k"}, 2},
	{ListUse{"alexa", "20k"}, 1},
	{ListUse{"alexa", "16k"}, 1},
	{ListUse{"alexa", "10k"}, 11},
	{ListUse{"alexa", "8k"}, 1},
	{ListUse{"alexa", "5k"}, 2},
	{ListUse{"alexa", "1k"}, 5},
	{ListUse{"alexa", "500"}, 8},
	{ListUse{"alexa", "400"}, 1},
	{ListUse{"alexa", "300"}, 1},
	{ListUse{"alexa", "200"}, 1},
	{ListUse{"alexa", "100"}, 8},
	{ListUse{"alexa", "50"}, 3},
	{ListUse{"alexa", "10"}, 1},
	{ListUse{"alexa", "country"}, 2},
	{ListUse{"alexa", "category"}, 2},
	{ListUse{"umbrella", "1M"}, 3},
	{ListUse{"umbrella", "1k"}, 1},
}

// decoys are synthetic false-positive texts the scanner must reject:
// the paper's examples were Amazon's Alexa home assistant and an author
// named Alexander, plus keyword collisions from other fields.
var decoys = []string{
	"We evaluate voice interfaces on the Amazon Alexa home assistant and measure wake-word latency.",
	"The method of Alexander et al. is extended to multi-path topologies.",
	"We apply umbrella sampling to estimate the free-energy landscape of the protocol state machine.",
	"Measurements were taken at the Majestic Hotel testbed during the conference.",
	"Alexandria's library metaphor guides our cache hierarchy design.",
}

// usageSentences give the using-papers realistic method text, with and
// without dates.
func usageSentence(use ListUse, listDate, measDate bool) string {
	name := map[string]string{
		"alexa":    "Alexa",
		"umbrella": "Cisco Umbrella",
		"majestic": "Majestic Million",
	}[use.Source]
	s := fmt.Sprintf("We resolve the %s Top %s list and measure each domain. ", name, use.Subset)
	if listDate {
		s += "The list was downloaded on 2017-03-15. "
	}
	if measDate {
		s += "Measurements were conducted on 2017-04-02. "
	}
	return s
}

// BuildCorpus constructs the 687-paper corpus deterministically.
func BuildCorpus() []Paper {
	var papers []Paper
	id := 0
	// Distribute the usage pool: one use per using-paper first, then
	// the remainder round-robin (matching the paper's observation that
	// ten papers use lists from more than one origin or multiple
	// subsets).
	var pool []ListUse
	for _, u := range usagePool {
		for i := 0; i < u.Count; i++ {
			pool = append(pool, u.Use)
		}
	}
	totalUsing := 0
	for _, v := range venueData {
		totalUsing += v.Using
	}
	perPaper := make([][]ListUse, totalUsing)
	for i := 0; i < totalUsing && i < len(pool); i++ {
		perPaper[i] = append(perPaper[i], pool[i])
	}
	for i := totalUsing; i < len(pool); i++ {
		perPaper[i%totalUsing] = append(perPaper[i%totalUsing], pool[i])
	}

	usingIdx := 0
	decoyIdx := 0
	for _, v := range venueData {
		// Dependence and date flags are assigned positionally within
		// the venue's using papers so the per-venue counts match.
		deps := make([]Dependence, 0, v.Using)
		for i := 0; i < v.Y; i++ {
			deps = append(deps, DependenceYes)
		}
		for i := 0; i < v.V; i++ {
			deps = append(deps, DependenceVerify)
		}
		for i := 0; i < v.N; i++ {
			deps = append(deps, DependenceNone)
		}
		for i := 0; i < v.Using; i++ {
			p := Paper{
				ID:            id,
				Venue:         v.Venue.Name,
				Title:         fmt.Sprintf("%s 2017 study %d on Internet infrastructure", v.Venue.Name, i+1),
				UsesTopList:   true,
				Lists:         perPaper[usingIdx],
				Dependence:    deps[i],
				ListDateGiven: i < v.ListDate,
				MeasDateGiven: i < v.MeasDate,
			}
			for _, u := range p.Lists {
				p.Body += usageSentence(u, p.ListDateGiven, p.MeasDateGiven)
			}
			papers = append(papers, p)
			usingIdx++
			id++
		}
		for i := v.Using; i < v.Venue.Total; i++ {
			p := Paper{
				ID:    id,
				Venue: v.Venue.Name,
				Title: fmt.Sprintf("%s 2017 study %d on networked systems", v.Venue.Name, i+1),
				Body:  "We design and evaluate a networked system on a university testbed. ",
			}
			// Sprinkle decoys through the non-using papers.
			if i%29 == 7 {
				p.Body += decoys[decoyIdx%len(decoys)]
				decoyIdx++
			}
			papers = append(papers, p)
			id++
		}
	}
	return papers
}

// Venues returns the surveyed venues in Table 1 order.
func Venues() []Venue {
	out := make([]Venue, len(venueData))
	for i, v := range venueData {
		out[i] = v.Venue
	}
	return out
}
