package analysis

import (
	"sort"

	"repro/internal/toplist"
)

// RankSeries returns name's 1-based rank in provider's full list for
// every archive day, 0 where the name is absent — the raw series
// behind Table 4 and behind ad-hoc domain tracking (`toplists rank`).
func (c *Context) RankSeries(provider, name string) []int {
	out := make([]int, 0, c.Arch.Days())
	toplist.EachDay(c.Arch, func(d toplist.Day) {
		l := c.Arch.Get(provider, d)
		if l == nil {
			out = append(out, 0)
			return
		}
		out = append(out, l.RankOf(name))
	})
	return out
}

// RankSummary condenses a rank series the way Table 4 reports domains.
type RankSummary struct {
	Highest  int     // best (lowest-numbered) rank attained; 0 if never listed
	Median   int     // median rank over listed days; 0 if never listed
	Lowest   int     // worst (highest-numbered) rank attained; 0 if never listed
	Presence float64 // share of days listed
}

// SummariseRanks computes Table 4's highest/median/lowest statistics
// over the listed days of a series.
func SummariseRanks(series []int) RankSummary {
	var listed []int
	for _, r := range series {
		if r > 0 {
			listed = append(listed, r)
		}
	}
	var s RankSummary
	if len(series) > 0 {
		s.Presence = float64(len(listed)) / float64(len(series))
	}
	if len(listed) == 0 {
		return s
	}
	sort.Ints(listed)
	s.Highest = listed[0]
	s.Lowest = listed[len(listed)-1]
	s.Median = listed[len(listed)/2]
	return s
}

// sparkRunes index from shallow (good rank) to deep.
var sparkRunes = []rune("█▇▆▅▄▃▂▁")

// Sparkline renders a rank series as a compact unicode strip: tall
// bars are good (near rank 1), short bars are deep ranks, and '·'
// marks days off the list. listSize anchors the scale.
func Sparkline(series []int, listSize int) string {
	if listSize < 1 {
		listSize = 1
	}
	out := make([]rune, len(series))
	for i, r := range series {
		if r <= 0 {
			out[i] = '·'
			continue
		}
		// Log-ish bucketing: rank 1 → tallest, listSize → shortest.
		frac := float64(r-1) / float64(listSize)
		idx := int(frac * float64(len(sparkRunes)))
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}
