// Package survey reproduces the paper's §3 literature survey: a corpus
// of 687 papers from ten 2017 networking venues, a keyword scanner with
// false-positive filtering (the paper's "Amazon Alexa home assistant"
// and "author named Alexander" cases), and the Table 1 aggregation of
// which lists are used, whether results depend on them, and whether
// dates are documented.
//
// The corpus itself is the substitution for the 687 PDFs: the 69
// list-using papers carry the attributes the paper's manual review
// assigned (venue, lists and subsets used, dependence class, date
// documentation), reconstructed from Table 1's published counts; the
// remaining papers are synthetic non-users, including keyword decoys.
package survey

// Dependence classifies how a study's results relate to the list used
// (the paper's Y/V/N column).
type Dependence uint8

// Dependence classes.
const (
	// DependenceNone: the study cites/uses a list but results do not
	// rely on the specific list (N).
	DependenceNone Dependence = iota
	// DependenceVerify: a list is used only to verify results (V).
	DependenceVerify
	// DependenceYes: results depend on the chosen list (Y).
	DependenceYes
)

// String renders the Table 1 letter.
func (d Dependence) String() string {
	switch d {
	case DependenceYes:
		return "Y"
	case DependenceVerify:
		return "V"
	default:
		return "N"
	}
}

// ListUse identifies one list (sub)set used by a paper.
type ListUse struct {
	// Source is "alexa", "umbrella", or "majestic".
	Source string
	// Subset describes the portion: "1M", "10k", "100", "country",
	// "category", "1k", ...
	Subset string
}

// Paper is one corpus entry.
type Paper struct {
	ID    int
	Venue string
	Title string
	// Body is the searchable text (abstract + methodology excerpt).
	Body string
	// UsesTopList is the ground-truth annotation (what the manual
	// review established).
	UsesTopList bool
	Lists       []ListUse
	Dependence  Dependence
	// ListDateGiven/MeasDateGiven report whether the paper states the
	// list download date / the measurement date with day precision.
	ListDateGiven, MeasDateGiven bool
}

// Venue describes one surveyed venue.
type Venue struct {
	Name  string
	Area  string
	Total int // papers published in 2017
}
