package dnsd

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/simnet"
)

func TestRRLBucketVerdicts(t *testing.T) {
	r := newRRL(RRLConfig{RatePerSecond: 10, Burst: 3, Slip: 2})
	clock := time.Unix(1000, 0)
	r.now = func() time.Time { return clock }
	src := net.ParseIP("192.0.2.1")

	// Burst of 3 passes, then the slip pattern: drop, TC, drop, TC...
	for i := 0; i < 3; i++ {
		if v := r.check(src); v != sendFull {
			t.Fatalf("query %d: verdict %v, want full", i, v)
		}
	}
	got := []verdict{r.check(src), r.check(src), r.check(src), r.check(src)}
	want := []verdict{dropAnswer, sendTruncated, dropAnswer, sendTruncated}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("overflow %d: verdict %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	dropped, slipped := r.counters()
	if dropped != 2 || slipped != 2 {
		t.Errorf("counters = %d/%d, want 2/2", dropped, slipped)
	}

	// Tokens refill with time.
	clock = clock.Add(time.Second)
	if v := r.check(src); v != sendFull {
		t.Errorf("after refill: verdict %v, want full", v)
	}
}

func TestRRLIsPerSource(t *testing.T) {
	r := newRRL(RRLConfig{RatePerSecond: 1, Burst: 1, Slip: 0})
	clock := time.Unix(0, 0)
	r.now = func() time.Time { return clock }
	a, b := net.ParseIP("10.0.0.1"), net.ParseIP("10.0.0.2")
	if r.check(a) != sendFull || r.check(b) != sendFull {
		t.Fatal("first query per source must pass")
	}
	if r.check(a) != dropAnswer {
		t.Fatal("second query from exhausted source must drop (slip 0)")
	}
	if r.check(b) != dropAnswer {
		t.Fatal("sources must not share buckets")
	}
}

func TestRRLFloodFromOneSourceIsLimited(t *testing.T) {
	s := startServer(t, testZone(), WithRRL(RRLConfig{RatePerSecond: 5, Burst: 5, Slip: 2}))

	// One connected socket = one source address flooding queries.
	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := &simnet.Message{
		ID:        9,
		Recursion: true,
		Question:  simnet.Question{Name: "plain.example.com", Type: simnet.TypeA, Class: simnet.ClassIN},
	}
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	const flood = 100
	for i := 0; i < flood; i++ {
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
	}
	// Read whatever comes back until a quiet period.
	conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond)) //nolint:errcheck
	full, tc := 0, 0
	buf := make([]byte, 512)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			break
		}
		m, err := simnet.DecodeMessage(buf[:n])
		if err != nil {
			continue
		}
		if m.Truncated {
			tc++
		} else {
			full++
		}
	}
	if full+tc >= flood {
		t.Fatalf("flood fully answered (%d full + %d tc); RRL inactive", full, tc)
	}
	if tc == 0 {
		t.Error("no slipped (TC) answers; legitimate clients have no TCP signal")
	}
	st := s.Stats()
	if st.RRLDropped == 0 || st.RRLSlipped == 0 {
		t.Errorf("stats = %+v, want RRL activity", st)
	}
	t.Logf("flood of %d: %d full, %d truncated, dropped %d", flood, full, tc, st.RRLDropped)
}

func TestRRLSlippedAnswerTriggersTCPFallback(t *testing.T) {
	// A stub resolver hitting the rate limit eventually receives a TC
	// answer and retries over TCP, which is unlimited — the designed
	// escape hatch.
	s := startServer(t, testZone(), WithRRL(RRLConfig{RatePerSecond: 1, Burst: 1, Slip: 1}))
	r := NewResolver(s.Addr(), WithSeed(99), WithTimeout(2*time.Second), WithUDPTries(3))
	ctx := context.Background()
	okFull, okTCP := 0, 0
	for i := 0; i < 6; i++ {
		if _, err := r.Exchange(ctx, "plain.example.com", simnet.TypeA); err != nil {
			t.Fatalf("query %d failed despite slip+TCP fallback: %v", i, err)
		}
		if r.TCPUpgrades() > uint64(okTCP) {
			okTCP = int(r.TCPUpgrades())
		} else {
			okFull++
		}
	}
	if okTCP == 0 {
		t.Error("resolver never upgraded to TCP under rate limiting")
	}
	if st := s.Stats(); st.TCPQueries == 0 {
		t.Errorf("stats = %+v, want TCP traffic", st)
	}
}

func TestRRLDisabledByDefault(t *testing.T) {
	s := startServer(t, testZone())
	if s.limiter != nil {
		t.Fatal("limiter active without WithRRL")
	}
	if st := s.Stats(); st.RRLDropped != 0 || st.RRLSlipped != 0 {
		t.Errorf("stats = %+v", st)
	}
}
