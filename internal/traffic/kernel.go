package traffic

import (
	"math"
	"sync/atomic"

	"repro/internal/population"
)

// kernelParams is the fingerprint of every Model scalar the signal
// computation reads. The cached kernel is keyed on it: a caller that
// tweaks a sigma after NewModel (ablations do) gets a transparent
// rebuild on the next SignalRange instead of stale invariants.
type kernelParams struct {
	sigmaWeb, sigmaDNS, sigmaLinkWeekly, sigmaLinkDaily float64
	weekendExpWeb, weekendExpDNS                        float64
	deadDNSFactor                                       float64
	webCountScale, dnsCountScale, linkCountScale        float64
	countSigma                                          float64
}

func (m *Model) params() kernelParams {
	return kernelParams{
		sigmaWeb:        m.SigmaWeb,
		sigmaDNS:        m.SigmaDNS,
		sigmaLinkWeekly: m.SigmaLinkWeekly,
		sigmaLinkDaily:  m.SigmaLinkDaily,
		weekendExpWeb:   m.WeekendExpWeb,
		weekendExpDNS:   m.WeekendExpDNS,
		deadDNSFactor:   m.DeadDNSFactor,
		webCountScale:   m.WebCountScale,
		dnsCountScale:   m.DNSCountScale,
		linkCountScale:  m.LinkCountScale,
		countSigma:      m.CountSigma,
	}
}

// kernel is the precomputed hot-path signal table: a structure-of-arrays
// snapshot of every per-domain quantity that is invariant across days,
// so the day loop touches flat float64/int32 arrays instead of chasing
// Domain structs and recomputing math.Pow per domain per day.
//
// Determinism contract: every floating-point operation the per-axis
// loops perform is argument-for-argument identical to the retained
// reference implementation (Model.domainSignal) — hoisting only moves
// *when* an operation runs, never which operands it sees or in which
// order results combine. The equivalence tests in traffic and engine
// pin this bitwise.
type kernel struct {
	params kernelParams
	n      int

	birth, death []int32
	seed         []uint64

	// Per-axis base populations with the category gating resolved:
	// webBase is zero for never-resolving categories (a dead ghost
	// "site" never loads); dnsDead is the residual base after death
	// (DNSPop * DeadDNSFactor, except never-resolvers which keep their
	// full base — they were never "alive" to begin with).
	webBase, linkBase []float64
	dnsBase, dnsDead  []float64

	// Hoisted weekend-season powers: Pow(WeekendFactor, WeekendExp*).
	powWeb, powDNS []float64

	// Per-axis daily log-noise scales: Sigma* × VolMul.
	sigWeb, sigDNS, sigLinkDaily []float64

	trendBoost, trendTau []float64
}

func buildKernel(w *population.World, p kernelParams) *kernel {
	n := w.Len()
	k := &kernel{
		params:       p,
		n:            n,
		birth:        make([]int32, n),
		death:        make([]int32, n),
		seed:         make([]uint64, n),
		webBase:      make([]float64, n),
		linkBase:     make([]float64, n),
		dnsBase:      make([]float64, n),
		dnsDead:      make([]float64, n),
		powWeb:       make([]float64, n),
		powDNS:       make([]float64, n),
		sigWeb:       make([]float64, n),
		sigDNS:       make([]float64, n),
		sigLinkDaily: make([]float64, n),
		trendBoost:   make([]float64, n),
		trendTau:     make([]float64, n),
	}
	for i := range w.Domains {
		d := &w.Domains[i]
		k.birth[i] = d.BirthDay
		k.death[i] = d.DeathDay
		k.seed[i] = d.Seed
		if d.Category.NeverResolves() {
			// Web: junk fails the liveness gate, ghosts the
			// never-resolves gate — either way, zero.
			k.webBase[i] = 0
			// DNS: never-resolvers skip the dead-traffic attenuation.
			k.dnsDead[i] = d.DNSPop
		} else {
			k.webBase[i] = d.WebPop
			k.dnsDead[i] = d.DNSPop * p.deadDNSFactor
		}
		k.dnsBase[i] = d.DNSPop
		k.linkBase[i] = d.LinkPop
		k.powWeb[i] = math.Pow(d.WeekendFactor, p.weekendExpWeb)
		k.powDNS[i] = math.Pow(d.WeekendFactor, p.weekendExpDNS)
		k.sigWeb[i] = p.sigmaWeb * d.VolMul
		k.sigDNS[i] = p.sigmaDNS * d.VolMul
		k.sigLinkDaily[i] = p.sigmaLinkDaily * d.VolMul
		k.trendBoost[i] = d.TrendBoost
		k.trendTau[i] = d.TrendTau
	}
	return k
}

// kernelFor returns the cached kernel, rebuilding it when the model's
// scalar parameters (or the world) changed since it was built. The
// cache is an atomic pointer so concurrent shard fills share one table
// without locking; a rare parameter-change race builds twice and keeps
// the last, which is harmless — both are correct for their params.
func (m *Model) kernelFor() *kernel {
	p := m.params()
	if k := m.kern.Load(); k != nil && k.params == p && k.n == m.W.Len() {
		return k
	}
	k := buildKernel(m.W, p)
	m.kern.Store(k)
	return k
}

// kernelCache is the Model-embedded cache slot (kept in its own type so
// Model's field list stays readable).
type kernelCache = atomic.Pointer[kernel]

// countNoise mirrors Model.countNoise over the kernel's copied scalar.
func (k *kernel) countNoise(count float64) float64 {
	if count < 0 {
		count = 0
	}
	return k.params.countSigma / math.Sqrt(1+count)
}

// alive reports date-based liveness: born and not yet dead. Category
// gating is already folded into the per-axis base arrays, so the loops
// below never touch Category.
func (k *kernel) alive(i, day int) bool {
	return k.death[i] < 0 || int32(day) < k.death[i]
}

// signalRange fills dst[lo:hi] for one axis on one day — the branch-
// light flat-array replacement for the per-domain domainSignal calls.
func (k *kernel) signalRange(axis Axis, day int, weekend bool, dst []float64, lo, hi int) {
	switch axis {
	case AxisWeb:
		k.webRange(day, weekend, dst, lo, hi)
	case AxisDNS:
		k.dnsRange(day, weekend, dst, lo, hi)
	case AxisLink:
		k.linkRange(day, dst, lo, hi)
	}
}

func (k *kernel) trend(i, day int, link bool) float64 {
	trend := 1.0
	if k.trendBoost[i] > 0 {
		boost := k.trendBoost[i] * math.Exp(-float64(day-int(k.birth[i]))/k.trendTau[i])
		if link {
			// Backlinks accumulate far more slowly than visits or
			// queries; a trending domain barely moves the link graph.
			boost *= 0.3
		}
		trend += boost
	}
	return trend
}

func (k *kernel) webRange(day int, weekend bool, dst []float64, lo, hi int) {
	d32 := int32(day)
	for i := lo; i < hi; i++ {
		if d32 < k.birth[i] {
			dst[i] = 0
			continue
		}
		var base float64
		if k.alive(i, day) {
			base = k.webBase[i]
		}
		if base == 0 {
			dst[i] = 0
			continue
		}
		season := 1.0
		if weekend {
			season = k.powWeb[i]
		}
		mu := base * season * k.trend(i, day, false)
		sigma := k.sigWeb[i] + k.countNoise(mu*k.params.webCountScale)
		dst[i] = mu * math.Exp(sigma*hashNorm(k.seed[i], uint64(day), 0))
	}
}

func (k *kernel) dnsRange(day int, weekend bool, dst []float64, lo, hi int) {
	d32 := int32(day)
	for i := lo; i < hi; i++ {
		if d32 < k.birth[i] {
			dst[i] = 0
			continue
		}
		base := k.dnsBase[i]
		if !k.alive(i, day) {
			base = k.dnsDead[i]
		}
		if base == 0 {
			dst[i] = 0
			continue
		}
		season := 1.0
		if weekend {
			season = k.powDNS[i]
		}
		mu := base * season * k.trend(i, day, false)
		sigma := k.sigDNS[i] + k.countNoise(mu*k.params.dnsCountScale)
		dst[i] = mu * math.Exp(sigma*hashNorm(k.seed[i], uint64(day), 1))
	}
}

func (k *kernel) linkRange(day int, dst []float64, lo, hi int) {
	d32 := int32(day)
	weekStep := uint64(day / 7)
	for i := lo; i < hi; i++ {
		if d32 < k.birth[i] {
			dst[i] = 0
			continue
		}
		base := k.linkBase[i]
		if base == 0 {
			dst[i] = 0
			continue
		}
		mu := base * k.trend(i, day, true)
		z := k.params.sigmaLinkWeekly*hashNorm(k.seed[i], weekStep, 2) +
			(k.sigLinkDaily[i]+k.countNoise(mu*k.params.linkCountScale))*
				hashNorm(k.seed[i], uint64(day), 3)
		dst[i] = mu * math.Exp(z)
	}
}
