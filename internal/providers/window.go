package providers

// dualEMA is double-buffered per-domain EMA window state, the
// mechanism behind the engine's pipelined day overlap: each step reads
// the front buffer (yesterday's state) and writes the back buffer,
// then flips. The previous front therefore survives one further step
// untouched, so a frozen rank view of day d (Generator.Freeze) stays
// valid while day d+1 steps — and is reclaimed as scratch only when
// day d+2 steps, which the engine's pipeline orders after day d's
// top-K selection has finished.
type dualEMA struct {
	buf [2][]float64
	cur int // index of the front buffer
}

func newDualEMA(n int) *dualEMA {
	return &dualEMA{buf: [2][]float64{make([]float64, n), make([]float64, n)}}
}

// Front returns the buffer holding the most recently stepped state —
// the rank view of the current day.
func (w *dualEMA) Front() []float64 { return w.buf[w.cur] }

// Back returns the buffer the next step writes; it still holds the
// state of two days ago, which the caller must be done ranking.
func (w *dualEMA) Back() []float64 { return w.buf[1-w.cur] }

// Flip promotes the back buffer to front after a step has filled it.
func (w *dualEMA) Flip() { w.cur = 1 - w.cur }

// SlidingWindow maintains exact N-day sliding sums per domain with a
// ring buffer — the reference implementation the EMA approximation is
// validated against (DESIGN.md ablation). Memory is O(domains × days),
// which is why the production rankers use EMAs instead.
type SlidingWindow struct {
	days  int
	ring  [][]float64
	sum   []float64
	head  int
	count int
}

// NewSlidingWindow builds a window over n domains and the given number
// of days.
func NewSlidingWindow(domains, days int) *SlidingWindow {
	w := &SlidingWindow{
		days: days,
		ring: make([][]float64, days),
		sum:  make([]float64, domains),
	}
	for i := range w.ring {
		w.ring[i] = make([]float64, domains)
	}
	return w
}

// Push adds one day of signal and evicts the oldest day once the
// window is full.
func (w *SlidingWindow) Push(signal []float64) {
	slot := w.ring[w.head]
	if w.count == w.days {
		for i, old := range slot {
			w.sum[i] -= old
		}
	}
	copy(slot, signal)
	for i, v := range slot {
		w.sum[i] += v
	}
	w.head = (w.head + 1) % w.days
	if w.count < w.days {
		w.count++
	}
}

// Sums returns the current per-domain window sums (shared slice; do not
// modify).
func (w *SlidingWindow) Sums() []float64 { return w.sum }

// Filled reports whether the window has seen at least `days` pushes.
func (w *SlidingWindow) Filled() bool { return w.count == w.days }
