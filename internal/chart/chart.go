// Package chart renders experiment results as SVG line charts, so the
// reproduction emits actual figures next to the paper's: every fig*
// experiment table becomes one SVG with a series per list, the way
// Figs. 1, 2, 6, and 8 are drawn.
//
// The renderer is deliberately small and dependency-free: a fixed
// canvas, linear axes with rounded ticks, one polyline per series, and
// a legend. Values may arrive as plain numbers, percentages ("12.3%"),
// or "µ ± σ" cells (the mean is plotted).
package chart

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name   string
	Points []float64 // NaN marks a gap
}

// Line is a complete line chart.
type Line struct {
	Title  string
	YLabel string
	XTicks []string // one label per x position; thinned at render time
	Series []Series
}

// FromTable converts a rendered experiment table into a chart: column
// 0 supplies the x tick labels, and every column that parses as
// numeric on all rows becomes a series named by its header. It fails
// when fewer than two rows or no numeric column exist.
func FromTable(header []string, rows [][]string) (*Line, error) {
	if len(rows) < 2 {
		return nil, fmt.Errorf("chart: need at least 2 rows, got %d", len(rows))
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("chart: need at least 2 columns")
	}
	l := &Line{}
	for _, row := range rows {
		if len(row) == 0 {
			return nil, fmt.Errorf("chart: empty row")
		}
		l.XTicks = append(l.XTicks, row[0])
	}
	percent := false
	for col := 1; col < len(header); col++ {
		pts := make([]float64, 0, len(rows))
		ok := true
		for _, row := range rows {
			if col >= len(row) {
				ok = false
				break
			}
			v, isPct, err := parseCell(row[col])
			if err != nil {
				ok = false
				break
			}
			percent = percent || isPct
			pts = append(pts, v)
		}
		if ok {
			l.Series = append(l.Series, Series{Name: header[col], Points: pts})
		}
	}
	if len(l.Series) == 0 {
		return nil, fmt.Errorf("chart: no fully numeric column")
	}
	if percent {
		l.YLabel = "%"
	}
	return l, nil
}

// parseCell extracts a numeric value from a table cell: plain numbers,
// "12.3%", "µ ± σ" (mean used), thousands of plain integers, or "-" /
// "n/a" (NaN gap).
func parseCell(cell string) (v float64, percent bool, err error) {
	s := strings.TrimSpace(cell)
	if s == "" || s == "-" || s == "n/a" || s == "NaN" {
		return math.NaN(), false, nil
	}
	if i := strings.Index(s, "±"); i >= 0 {
		s = strings.TrimSpace(s[:i])
	}
	if strings.HasSuffix(s, "%") {
		s = strings.TrimSuffix(s, "%")
		percent = true
	}
	if strings.HasSuffix(s, "x") { // "1.38x" amplification cells
		s = strings.TrimSuffix(s, "x")
	}
	s = strings.ReplaceAll(s, ",", "")
	v, err = strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false, fmt.Errorf("chart: unparseable cell %q", cell)
	}
	return v, percent, nil
}

// Canvas geometry (viewBox units).
const (
	width      = 840
	height     = 480
	marginL    = 70
	marginR    = 170 // room for the legend
	marginT    = 44
	marginB    = 56
	plotW      = width - marginL - marginR
	plotH      = height - marginT - marginB
	maxXLabels = 13
)

// palette holds distinguishable series colors (Okabe-Ito).
var palette = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7",
	"#E69F00", "#56B4E9", "#F0E442", "#000000",
}

// SVG renders the chart.
func (l *Line) SVG() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if l.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`+"\n",
			marginL, escape(l.Title))
	}

	lo, hi := l.yRange()
	ticks := niceTicks(lo, hi, 6)
	if len(ticks) > 1 {
		lo, hi = math.Min(lo, ticks[0]), math.Max(hi, ticks[len(ticks)-1])
	}
	y := func(v float64) float64 {
		if hi == lo {
			return marginT + plotH/2
		}
		return marginT + plotH*(1-(v-lo)/(hi-lo))
	}
	n := l.npoints()
	x := func(i int) float64 {
		if n <= 1 {
			return marginL + plotW/2
		}
		return marginL + plotW*float64(i)/float64(n-1)
	}

	// Gridlines + y tick labels.
	for _, tv := range ticks {
		ty := y(tv)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, ty, marginL+plotW, ty)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginL-8, ty, formatTick(tv))
	}
	if l.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, escape(l.YLabel))
	}

	// X tick labels, thinned.
	step := 1
	if len(l.XTicks) > maxXLabels {
		step = (len(l.XTicks) + maxXLabels - 1) / maxXLabels
	}
	for i := 0; i < len(l.XTicks); i += step {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x(i), marginT+plotH+20, escape(shorten(l.XTicks[i], 12)))
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)

	// Series.
	for si, s := range l.Series {
		color := palette[si%len(palette)]
		var pts []string
		flush := func() {
			if len(pts) >= 2 {
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
					strings.Join(pts, " "), color)
			} else if len(pts) == 1 {
				// Isolated point: draw a dot so it is not lost.
				xy := strings.Split(pts[0], ",")
				fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n", xy[0], xy[1], color)
			}
			pts = pts[:0]
		}
		for i, v := range s.Points {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				flush()
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(i), y(v)))
		}
		flush()
		// Legend.
		ly := marginT + 18*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			marginL+plotW+12, ly, marginL+plotW+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" dominant-baseline="middle">%s</text>`+"\n",
			marginL+plotW+40, ly, escape(shorten(s.Name, 18)))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// npoints is the longest series length.
func (l *Line) npoints() int {
	n := 0
	for _, s := range l.Series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	return n
}

// yRange scans all finite points.
func (l *Line) yRange() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range l.Series {
		for _, v := range s.Points {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	if lo == hi {
		return lo - 1, hi + 1
	}
	// Anchor at zero when the data is non-negative and close to it —
	// adoption/churn shares read better from a zero baseline.
	if lo > 0 && lo < hi/3 {
		lo = 0
	}
	return lo, hi
}

// niceTicks returns ~n rounded tick values spanning [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo, hi}
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch r := raw / mag; {
	case r < 1.5:
		step = mag
	case r < 3:
		step = 2 * mag
	case r < 7:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	start := math.Floor(lo/step) * step
	var out []float64
	for v := start; v <= hi+step/2; v += step {
		if v >= lo-step/2 {
			out = append(out, v)
		}
	}
	return out
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
}

func shorten(s string, max int) string {
	r := []rune(s)
	if len(r) <= max {
		return s
	}
	return string(r[:max-1]) + "…"
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
