package experiments

import (
	"fmt"

	"repro/internal/aggregate"
	"repro/internal/atlas"
	"repro/internal/providers"
	"repro/internal/toplist"
)

func init() {
	register("manipulation",
		"Extension: minimal manipulation cost per provider, and aggregate resistance (§7 / Le Pochat)",
		runManipulation)
}

// runManipulation extends §7 from "rank manipulation is possible" to
// "at what minimal cost": a binary search over end-to-end generator
// runs finds the smallest sustained daily signal that enters each
// provider's list, and the Dowdall-aggregate analysis shows how
// combining providers raises the bar (the Tranco design goal).
func runManipulation(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper:  "§7: 10k probes x 1 q/day reach Umbrella rank 38k while 1k probes x 100 q/day only reach 199k (unique sources dominate); Alexa/Majestic manipulable per Le Pochat et al. Cost search and aggregation resistance are the extension.",
		Header: []string{"attack", "unit", "cost", "entry day", "final rank"},
	}

	// Part 1: per-provider minimal entry cost. The attack window is
	// short (3 weeks) so Majestic's slow window shows up as cost, not
	// just delay.
	const attackDays = 21
	opts := providers.DefaultOptions(attackDays, st.Scale.ListSize)
	opts.BurnInDays = 30
	opts.AlexaChangeDay = -1
	units := map[string]string{
		providers.Alexa:    "panel visitors/day",
		providers.Umbrella: "unique clients/day",
		providers.Majestic: "/24 subnets/day",
	}
	for _, prov := range st.Providers() {
		cost, err := atlas.MinimalClients(st.Model, atlas.CostConfig{
			Provider:   prov,
			TargetRank: st.Scale.ListSize,
			Days:       attackDays,
			MaxClients: 1e9,
			Tolerance:  0.2,
			Opts:       opts,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			"enter " + prov + " top list", units[prov],
			fmt.Sprintf("%.0f", cost.Clients), d(cost.EntryDay), d(cost.FinalRank),
		})
	}

	// Part 2: rank needed in k lists to crack the aggregate. Uses the
	// study's real archive; last day, 7-day window.
	day := toplist.Day(st.Days() - 1)
	cfg := aggregate.Config{Window: 7, Size: st.Scale.ListSize, BaseDomains: true}
	for _, k := range []int{1, 2, 3} {
		needHead, err := aggregate.RequiredListRank(st.Archive, day, cfg, st.Scale.HeadSize, k)
		if err != nil {
			return nil, err
		}
		needAny, err := aggregate.RequiredListRank(st.Archive, day, cfg, st.Scale.ListSize, k)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("enter 7d-aggregate head via %d list(s)", k), "list rank needed",
			rankCell(needHead), "-", "-",
		})
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("enter 7d-aggregate list via %d list(s)", k), "list rank needed",
			rankCell(needAny), "-", "-",
		})
	}
	res.Notes = append(res.Notes,
		"cost = minimal sustained daily signal (binary search, ±20%) to be listed on day 21",
		"aggregate rows: the attacker must hold the given rank in k providers on every window day",
		"holding a deep rank in one list no longer suffices once providers are combined — the Tranco rationale",
	)
	return res, nil
}

// rankCell renders a required-rank value ("unreachable" when 0, "any"
// for the under-full sentinel).
func rankCell(rank int) string {
	switch {
	case rank == 0:
		return "unreachable"
	case rank >= 1<<29:
		return "any"
	default:
		return d(rank)
	}
}
