package simnet

import (
	"bytes"
	"strings"
	"testing"
)

func TestZoneRoundTrip(t *testing.T) {
	domains := []string{"bravo.com", "alpha.com", "charlie.com"}
	var buf bytes.Buffer
	if err := WriteZone(&buf, "com", domains, []string{"ns1.reg.example.", "ns2.reg.example."}); err != nil {
		t.Fatal(err)
	}
	origin, got, err := ParseZone(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if origin != "com" {
		t.Fatalf("origin %q", origin)
	}
	want := []string{"alpha.com", "bravo.com", "charlie.com"}
	if len(got) != len(want) {
		t.Fatalf("domains %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("domains %v, want %v", got, want)
		}
	}
}

func TestWriteZoneRejectsForeignDomains(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteZone(&buf, "com", []string{"x.org"}, nil); err == nil {
		t.Fatal("foreign domain should fail")
	}
}

func TestParseZoneSyntax(t *testing.T) {
	zone := `
$ORIGIN net.
; a comment line
$TTL 86400
example	IN	NS	ns1.host.  ; trailing comment
absolute.net.	IN	NS	ns2.host.
@	IN	NS	ns-root.host.
example	IN	NS	ns2.host.
withttl	300	IN	NS	ns1.host.
other	IN	A	1.2.3.4
`
	origin, domains, err := ParseZone(strings.NewReader(zone))
	if err != nil {
		t.Fatal(err)
	}
	if origin != "net" {
		t.Fatalf("origin %q", origin)
	}
	// example (deduped), absolute.net, withttl; the apex (@) and the
	// A record are excluded.
	want := []string{"absolute.net", "example.net", "withttl.net"}
	if len(domains) != len(want) {
		t.Fatalf("domains %v", domains)
	}
	for i := range want {
		if domains[i] != want[i] {
			t.Fatalf("domains %v, want %v", domains, want)
		}
	}
}

func TestParseZoneErrors(t *testing.T) {
	if _, _, err := ParseZone(strings.NewReader("rel IN NS ns1.\n")); err == nil {
		t.Fatal("relative owner before $ORIGIN should fail")
	}
	if _, _, err := ParseZone(strings.NewReader("$ORIGIN\n")); err == nil {
		t.Fatal("bare $ORIGIN should fail")
	}
}

func TestParseZoneEmpty(t *testing.T) {
	origin, domains, err := ParseZone(strings.NewReader("; nothing\n\n"))
	if err != nil || origin != "" || len(domains) != 0 {
		t.Fatalf("%q %v %v", origin, domains, err)
	}
}
