package experiments

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/parallel"
)

// Env lazily materialises the study shared by the experiment drivers.
type Env struct {
	Scale core.Scale

	once  sync.Once
	study *core.Study
	err   error
}

// NewEnv builds an environment at the given scale; the study runs on
// first use.
func NewEnv(scale core.Scale) *Env { return &Env{Scale: scale} }

// Study returns the materialised study, running the simulation once.
func (e *Env) Study() (*core.Study, error) {
	e.once.Do(func() {
		e.study, e.err = core.Run(e.Scale)
	})
	return e.study, e.err
}

// Driver regenerates one table or figure.
type Driver func(*Env) (*Result, error)

type registration struct {
	id     string
	title  string
	driver Driver
}

var registry = map[string]registration{}

func register(id, title string, driver Driver) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = registration{id: id, title: title, driver: driver}
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the registered title for id ("" when unknown).
func Title(id string) string { return registry[id].title }

// Run executes one experiment against the environment.
func Run(e *Env, id string) (*Result, error) {
	reg, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	res, err := reg.driver(e)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = reg.id
	if res.Title == "" {
		res.Title = reg.title
	}
	return res, nil
}

// RunAll executes every experiment on a bounded worker pool sized to
// GOMAXPROCS and returns the results in ID order. The drivers share
// the environment's immutable study (each builds its own generators
// and injectors for what-if runs), so they are safe to run
// concurrently; the first failure in ID order is returned.
func RunAll(e *Env) ([]*Result, error) { return RunAllWorkers(e, 0) }

// RunAllWorkers is RunAll with an explicit pool size (< 1 means
// GOMAXPROCS, 1 runs strictly serially in ID order).
func RunAllWorkers(e *Env, workers int) ([]*Result, error) {
	ids := IDs()
	results := make([]*Result, len(ids))
	errs := make([]error, len(ids))
	workers = parallel.Workers(workers)
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		for i, id := range ids {
			if results[i], errs[i] = Run(e, id); errs[i] != nil {
				return nil, errs[i]
			}
		}
		return results, nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) || failed.Load() {
					return
				}
				results[i], errs[i] = Run(e, ids[i])
				if errs[i] != nil {
					// Stop claiming new experiments; in-flight ones
					// finish, matching the serial path's fail-fast
					// behavior closely enough without cancellation
					// plumbing through every driver.
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
