// Package traffic turns the static population into daily activity
// signals along the three axes the list providers measure: web visits
// (Alexa's panel), DNS resolutions by unique clients (Umbrella's
// OpenDNS view), and crawler-visible backlinks (Majestic). It also
// hosts the query-injection hook used by the §7 rank-manipulation
// experiments.
package traffic

import (
	"math"

	"repro/internal/population"
	"repro/internal/toplist"
)

// Axis selects a signal axis.
type Axis int

// Signal axes.
const (
	AxisWeb Axis = iota
	AxisDNS
	AxisLink
)

// String names the axis.
func (a Axis) String() string {
	switch a {
	case AxisWeb:
		return "web"
	case AxisDNS:
		return "dns"
	case AxisLink:
		return "link"
	default:
		return "unknown"
	}
}

// Model computes daily activity. The zero value is not usable; use
// NewModel.
type Model struct {
	W *population.World
	// Per-axis daily log-noise scale (multiplied by each domain's
	// VolMul). The link axis evolves on a weekly clock with only a tiny
	// daily component — crawl-derived link counts barely move day to
	// day, which is what makes Majestic stable.
	SigmaWeb, SigmaDNS, SigmaLinkWeekly, SigmaLinkDaily float64
	// Weekend exponent per axis: how strongly the weekend factor
	// modulates the axis (links don't care about weekends).
	WeekendExpWeb, WeekendExpDNS float64
	// DeadDNSFactor is the residual DNS traffic to a domain after it
	// stops existing (legacy clients keep querying).
	DeadDNSFactor float64
	// UniqueClientScale maps DNS signal to an estimated unique-client
	// count (Umbrella's rank driver): clients = scale * signal^0.75.
	UniqueClientScale float64
	// CountScale converts a mean signal into an expected daily
	// observation count per axis (panel visits, resolver clients,
	// crawled /24 subnets). Small counts at the list tail add sampling
	// noise — the paper's reason why "the ranking of domains in the
	// long tail [is] based on significantly smaller and hence less
	// reliable numbers" (§6.1, Fig. 1c).
	WebCountScale, DNSCountScale, LinkCountScale float64
	// CountSigma scales the small-count sampling noise term
	// countSigma/sqrt(1+count).
	CountSigma float64
	// PanelVisitorScale maps web signal to daily panel visitors — the
	// unit of Alexa-side injections (§7.1 toolbar manipulation).
	PanelVisitorScale float64
	// BacklinkSubnetScale maps link signal to referring /24 subnets —
	// the unit of Majestic-side injections (§7.3 purchased backlinks).
	BacklinkSubnetScale float64

	// DisableKernel forces SignalRange through the retained per-domain
	// reference implementation (domainSignal) instead of the
	// precomputed signal kernel. The two are bitwise identical — the
	// equivalence tests run both and compare archives — so this exists
	// only for those tests and for debugging suspected kernel drift.
	DisableKernel bool

	// kern caches the precomputed day-invariant signal table, keyed by
	// the scalar parameters above (see kernelFor).
	kern kernelCache
}

// NewModel returns a model with the calibrated defaults.
func NewModel(w *population.World) *Model {
	return &Model{
		W:                 w,
		SigmaWeb:          0.05,
		SigmaDNS:          0.02,
		SigmaLinkWeekly:   0.30,
		SigmaLinkDaily:    0.03,
		WeekendExpWeb:     1.0,
		WeekendExpDNS:     0.8,
		DeadDNSFactor:     0.3,
		UniqueClientScale: 1e5,
		WebCountScale:     1e5,
		DNSCountScale:     5e4,
		LinkCountScale:    2e7,
		CountSigma:        1.1,

		PanelVisitorScale:   1e5,
		BacklinkSubnetScale: 1e5,
	}
}

// WebSignalFor converts a count of daily panel visitors into web-axis
// signal units, for injecting synthetic Alexa panel activity.
func (m *Model) WebSignalFor(visitors float64) float64 {
	return visitors / m.PanelVisitorScale
}

// LinkSignalFor converts a count of referring /24 subnets into
// link-axis signal units, for injecting synthetic Majestic backlinks.
func (m *Model) LinkSignalFor(subnets float64) float64 {
	return subnets / m.BacklinkSubnetScale
}

// Signal fills dst with the per-domain activity for the axis on day and
// returns it; dst is allocated when nil or too small. A zero value
// means "no activity" (unborn, or axis-invisible).
func (m *Model) Signal(axis Axis, day int, dst []float64) []float64 {
	n := m.W.Len()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	m.SignalRange(axis, day, dst, 0, n)
	return dst
}

// SignalRange fills dst[lo:hi] with the per-domain activity for the
// axis on day. Each element is a pure function of (domain, axis, day),
// so disjoint ranges may be filled concurrently; the concurrent engine
// shards the full range across workers this way.
//
// The fill runs through the precomputed signal kernel — flat arrays of
// the per-domain day-invariant factors — whose floating-point
// operations are argument-for-argument identical to the reference
// per-domain path (domainSignal), so archives stay bitwise identical
// either way.
func (m *Model) SignalRange(axis Axis, day int, dst []float64, lo, hi int) {
	weekend := toplist.Day(day).IsWeekend()
	if !m.DisableKernel {
		m.kernelFor().signalRange(axis, day, weekend, dst, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		dst[i] = m.domainSignal(&m.W.Domains[i], axis, day, weekend)
	}
}

// DomainSignal returns the activity of a single domain.
func (m *Model) DomainSignal(id uint32, axis Axis, day int) float64 {
	d := &m.W.Domains[id]
	return m.domainSignal(d, axis, day, toplist.Day(day).IsWeekend())
}

// domainSignal is the retained reference implementation of the signal
// computation: one domain, straight off the Domain struct, no
// precomputation. The hot path (SignalRange) runs the kernel instead;
// the equivalence tests pin the two bitwise, which is what licenses
// every hoist the kernel performs.
func (m *Model) domainSignal(d *population.Domain, axis Axis, day int, weekend bool) float64 {
	if !d.Born(day) {
		return 0
	}
	var base float64
	alive := d.Exists(day)
	switch axis {
	case AxisWeb:
		// The Alexa toolbar only reports a visit if the site actually
		// loaded, so dead domains generate no web signal.
		if !alive && d.Category != population.CatGhost {
			return 0
		}
		if d.Category.NeverResolves() {
			// Ghost/junk have (almost) no web activity via axis factors
			// already; a dead ghost "site" never loads either.
			return 0
		}
		base = d.WebPop
	case AxisDNS:
		base = d.DNSPop
		if !alive && !d.Category.NeverResolves() {
			// Residual queries from stale references.
			base *= m.DeadDNSFactor
		}
	case AxisLink:
		// Links persist regardless of liveness (Majestic's slow
		// reaction to domain closure, §8.1.1).
		base = d.LinkPop
	}
	if base == 0 {
		return 0
	}
	season := 1.0
	if weekend {
		switch axis {
		case AxisWeb:
			season = math.Pow(d.WeekendFactor, m.WeekendExpWeb)
		case AxisDNS:
			season = math.Pow(d.WeekendFactor, m.WeekendExpDNS)
		}
	}
	trend := 1.0
	if d.TrendBoost > 0 {
		boost := d.TrendBoost * math.Exp(-float64(day-int(d.BirthDay))/d.TrendTau)
		if axis == AxisLink {
			// Backlinks accumulate far more slowly than visits or
			// queries; a trending domain barely moves the link graph.
			boost *= 0.3
		}
		trend += boost
	}
	mu := base * season * trend
	var noise float64
	switch axis {
	case AxisWeb:
		sigma := m.SigmaWeb*d.VolMul + m.countNoise(mu*m.WebCountScale)
		noise = math.Exp(sigma * hashNorm(d.Seed, uint64(day), 0))
	case AxisDNS:
		sigma := m.SigmaDNS*d.VolMul + m.countNoise(mu*m.DNSCountScale)
		noise = math.Exp(sigma * hashNorm(d.Seed, uint64(day), 1))
	case AxisLink:
		z := m.SigmaLinkWeekly*hashNorm(d.Seed, uint64(day/7), 2) +
			(m.SigmaLinkDaily*d.VolMul+m.countNoise(mu*m.LinkCountScale))*
				hashNorm(d.Seed, uint64(day), 3)
		noise = math.Exp(z)
	}
	return mu * noise
}

// countNoise is the extra log-noise from observing a small expected
// count: negligible for head domains, dominant at the list tail.
func (m *Model) countNoise(count float64) float64 {
	if count < 0 {
		count = 0
	}
	return m.CountSigma / math.Sqrt(1+count)
}

// UniqueClients converts a DNS-axis signal value into an estimated
// count of distinct clients resolving the name per day — the quantity
// Umbrella's ranking is primarily based on (§7.2).
func (m *Model) UniqueClients(signal float64) float64 {
	if signal <= 0 {
		return 0
	}
	return m.UniqueClientScale * math.Pow(signal, 0.75)
}

// --- Deterministic per-(domain, day) noise ---------------------------

// hashNorm produces a standard-normal variate as a pure function of
// (seed, step, stream) using SplitMix64 hashing and the
// Beasley-Springer-Moro inverse normal CDF. This avoids constructing an
// RNG per domain per day on the hot path.
func hashNorm(seed, step, stream uint64) float64 {
	x := seed ^ step*0x9e3779b97f4a7c15 ^ stream*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := (float64(x>>11) + 0.5) * (1.0 / (1 << 53))
	return invNorm(u)
}

// invNorm is the Beasley-Springer-Moro approximation to the standard
// normal quantile function; absolute error < 3e-9 over (0,1).
func invNorm(u float64) float64 {
	const (
		a0 = 2.50662823884
		a1 = -18.61500062529
		a2 = 41.39119773534
		a3 = -25.44106049637
		b0 = -8.47351093090
		b1 = 23.08336743743
		b2 = -21.06224101826
		b3 = 3.13082909833
	)
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := u - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		return y * (((a3*r+a2)*r+a1)*r + a0) /
			((((b3*r+b2)*r+b1)*r+b0)*r + 1)
	}
	r := u
	if y > 0 {
		r = 1 - u
	}
	r = math.Log(-math.Log(r))
	x := c[0] + r*(c[1]+r*(c[2]+r*(c[3]+r*(c[4]+r*(c[5]+r*(c[6]+r*(c[7]+r*c[8])))))))
	if y < 0 {
		return -x
	}
	return x
}
