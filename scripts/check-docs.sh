#!/bin/sh
# check-docs.sh — docs-staleness guard, run in CI.
#
# The README's Layout section claims to describe the directory tree;
# this script makes that claim checkable: it fails if any package
# directory under internal/ or any command under cmd/ is absent from
# the Layout section, so adding a package without documenting it (or
# renaming one and leaving the stale row) breaks the build instead of
# silently rotting the docs.
#
# Usage: scripts/check-docs.sh [repo-root]
set -eu

root="${1:-.}"
readme="$root/README.md"

if [ ! -f "$readme" ]; then
    echo "check-docs: $readme not found" >&2
    exit 1
fi

# Extract the Layout section (from the '## Layout' heading to the next
# '## ' heading or EOF).
layout=$(awk '/^## Layout$/{in_sec=1; next} /^## /{in_sec=0} in_sec' "$readme")
if [ -z "$layout" ]; then
    echo "check-docs: README has no '## Layout' section" >&2
    exit 1
fi

status=0
for dir in "$root"/internal/*/ "$root"/cmd/*/; do
    [ -d "$dir" ] || continue
    # Only directories that actually hold Go code are packages.
    if ! ls "$dir"*.go >/dev/null 2>&1; then
        continue
    fi
    rel=${dir#"$root"/}
    rel=${rel%/}
    if ! printf '%s\n' "$layout" | grep -qF "\`$rel\`"; then
        echo "check-docs: $rel is missing from README's Layout section" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "check-docs: add the missing packages to the Layout table in README.md" >&2
fi
exit "$status"
