package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/archived"
	"repro/internal/toplist"
)

// seedStore creates an archive at a temp dir with providers × days
// filled snapshots.
func seedStore(t *testing.T, providers []string, days int) *toplist.DiskStore {
	t.Helper()
	ds, err := toplist.CreateDiskStore(t.TempDir(), 0, toplist.Day(days-1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetScale("test"); err != nil {
		t.Fatal(err)
	}
	if err := ds.Expect(providers...); err != nil {
		t.Fatal(err)
	}
	for _, p := range providers {
		for d := 0; d < days; d++ {
			l := toplist.New([]string{fmt.Sprintf("%s-day%d.com", p, d), "shared.org"})
			if err := ds.Put(p, toplist.Day(d), l); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ds
}

// emptyStore creates an empty archive covering [0, days).
func emptyStore(t *testing.T, days int) *toplist.DiskStore {
	t.Helper()
	ds, err := toplist.CreateDiskStore(t.TempDir(), 0, toplist.Day(days-1))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// serveArchive mounts src on a test server speaking the wire API.
func serveArchive(t *testing.T, src toplist.Source) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(archived.NewServer(src))
	t.Cleanup(ts.Close)
	return ts
}

// testPeerSet builds a set with deterministic clock/jitter hooks.
func testPeerSet(t *testing.T, urls ...string) *PeerSet {
	t.Helper()
	ps, err := NewPeerSet(urls, WithPeerBackoff(time.Second, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ps.jitter = func() float64 { return 0.5 } // backoff = exactly base<<n
	return ps
}

// corruptSlot overwrites one snapshot file on disk with garbage,
// simulating bit rot under a live store.
func corruptSlot(t *testing.T, ds *toplist.DiskStore, provider string, day toplist.Day) {
	t.Helper()
	path := filepath.Join(ds.Dir(), provider, day.String()+".csv.gz")
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("rotten bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPeerSetBackoffAndFailover(t *testing.T) {
	ps := testPeerSet(t, "http://a:1/", "http://a:1", "http://b:2")
	if len(ps.Peers()) != 2 {
		t.Fatalf("duplicate URL not collapsed: %d peers", len(ps.Peers()))
	}
	now := time.Unix(1000, 0)
	ps.now = func() time.Time { return now }

	a, b := ps.peers[0], ps.peers[1]
	if a.URL() != "http://a:1" {
		t.Fatalf("trailing slash not normalised: %q", a.URL())
	}
	if got := ps.Available(); len(got) != 2 || got[0] != a {
		t.Fatalf("fresh set should list both peers in order, got %v", got)
	}

	// One failure backs a off; the set fails over to b alone.
	a.fail()
	if got := ps.Available(); len(got) != 1 || got[0] != b {
		t.Fatalf("failed peer should be in backoff, got %d peers", len(got))
	}
	// Backoff expires → a is available again but ranked after healthy b.
	now = now.Add(time.Second + time.Millisecond)
	if got := ps.Available(); len(got) != 2 || got[0] != b || got[1] != a {
		t.Fatal("healthiest-first order should rank the failing peer last")
	}
	// Consecutive failures double the backoff (jitter pinned to 1×).
	a.fail()
	if got := a.Failures(); got != 2 {
		t.Fatalf("failures = %d, want 2", got)
	}
	now = now.Add(time.Second + time.Millisecond) // base<<1 = 2s: still backed off
	if got := ps.Available(); len(got) != 1 {
		t.Fatalf("doubled backoff should still hold, got %d peers", len(got))
	}
	now = now.Add(time.Second)
	if got := ps.Available(); len(got) != 2 {
		t.Fatal("expired doubled backoff should release the peer")
	}
	// Success resets health entirely.
	a.ok()
	if a.Failures() != 0 {
		t.Fatal("ok() should reset the failure count")
	}
}

func TestMirrorSyncSteadyState(t *testing.T) {
	// Source archive with a mid-range gap: umbrella day 1 is missing.
	src := emptyStore(t, 3)
	for _, p := range []string{"alexa", "umbrella"} {
		for d := toplist.Day(0); d <= 2; d++ {
			if p == "umbrella" && d == 1 {
				continue
			}
			if err := src.Put(p, d, toplist.New([]string{fmt.Sprintf("%s-day%d.com", p, d)})); err != nil {
				t.Fatal(err)
			}
		}
	}
	ts := serveArchive(t, src)
	local := emptyStore(t, 3)
	ps := testPeerSet(t, ts.URL)
	m := NewMirror(local, ps)

	ctx := context.Background()
	m.SyncOnce(ctx)
	if got, want := m.Copied(), int64(5); got != want {
		t.Fatalf("copied = %d, want %d", got, want)
	}
	for _, p := range src.Providers() {
		for d := src.First(); d <= src.Last(); d++ {
			want := src.RawHash(p, d)
			if got := local.RawHash(p, d); got != want {
				t.Fatalf("slot %s %s: hash %q, want %q", p, d, got, want)
			}
		}
	}

	// Steady state: further rounds are pure 304s, nothing copied.
	before304 := m.NotModified()
	m.SyncOnce(ctx)
	m.SyncOnce(ctx)
	if got := m.Copied(); got != 5 {
		t.Fatalf("steady-state round copied %d extra slots", got-5)
	}
	if got := m.NotModified(); got != before304+2 {
		t.Fatalf("304s = %d, want %d", got, before304+2)
	}

	// A mid-range fill on the source changes the manifest fingerprint
	// (the day range does NOT move): the next conditional revalidation
	// sees it and copies exactly the filled slot.
	if err := src.Put("umbrella", 1, toplist.New([]string{"refilled.example"})); err != nil {
		t.Fatal(err)
	}
	m.SyncOnce(ctx)
	if got := m.Copied(); got != 6 {
		t.Fatalf("filled slot not copied: copied = %d, want 6", got)
	}
	if got, want := local.RawHash("umbrella", 1), src.RawHash("umbrella", 1); got != want {
		t.Fatalf("filled slot hash %q, want %q", got, want)
	}
	if m.Rounds() < 4 {
		t.Fatalf("rounds = %d", m.Rounds())
	}
}

func TestMirrorRepairPropagation(t *testing.T) {
	// A repair that changes slot CONTENT mid-range must propagate: the
	// fingerprint manifest extension is what makes the mirror notice.
	src := seedStore(t, []string{"alexa"}, 2)
	ts := serveArchive(t, src)
	local := emptyStore(t, 2)
	m := NewMirror(local, testPeerSet(t, ts.URL))
	ctx := context.Background()
	m.SyncOnce(ctx)
	if err := src.Put("alexa", 0, toplist.New([]string{"rewritten.example"})); err != nil {
		t.Fatal(err)
	}
	m.SyncOnce(ctx)
	// The local store still holds the OLD bytes for day 0: drain skips
	// slots it Has. That is by design — replicas are append-only unless
	// locally corrupt; divergence is healed by VerifySweep, not by
	// trusting a peer over intact local bytes. What must not happen is
	// the mirror failing to notice new days or providers after the
	// rewrite.
	if got := local.RawHash("alexa", 1); got != src.RawHash("alexa", 1) {
		t.Fatal("day 1 should have replicated")
	}
}

func TestMirrorHealsCorruption(t *testing.T) {
	src := seedStore(t, []string{"alexa", "umbrella"}, 3)
	ts := serveArchive(t, src)
	local := emptyStore(t, 3)
	ps := testPeerSet(t, ts.URL)
	m := NewMirror(local, ps)
	ctx := context.Background()
	m.SyncOnce(ctx)

	wantHash := local.RawHash("umbrella", 1)
	corruptSlot(t, local, "umbrella", 1)
	if n := m.VerifySweep(); n != 1 {
		t.Fatalf("sweep found %d corrupt slots, want 1", n)
	}
	if m.Healing() != 1 {
		t.Fatal("corrupt slot not queued for healing")
	}
	m.SyncOnce(ctx)
	if got := m.Healed(); got != 1 {
		t.Fatalf("healed = %d, want 1", got)
	}
	if m.Healing() != 0 {
		t.Fatal("heal queue not drained")
	}
	if got := local.RawHash("umbrella", 1); got != wantHash {
		t.Fatalf("healed slot hash %q, want %q", got, wantHash)
	}
	if raw, err := local.GetRaw("umbrella", 1); err != nil || raw == nil {
		t.Fatalf("healed slot unreadable: %v", err)
	}
	// Clean sweep afterwards.
	if n := m.VerifySweep(); n != 0 {
		t.Fatalf("post-heal sweep found %d corrupt slots", n)
	}
}

func TestFetchRawPrefersMatchingHash(t *testing.T) {
	// Two peers hold DIFFERENT documents for the same slot; the heal
	// path must pick the one whose hash matches the local manifest.
	good := seedStore(t, []string{"alexa"}, 1)
	other := emptyStore(t, 1)
	if err := other.Put("alexa", 0, toplist.New([]string{"divergent.example"})); err != nil {
		t.Fatal(err)
	}
	tsOther := serveArchive(t, other)
	tsGood := serveArchive(t, good)
	// The divergent peer is listed first, so hash preference — not
	// ordering luck — must select the good copy.
	ps := testPeerSet(t, tsOther.URL, tsGood.URL)
	want := good.RawHash("alexa", 0)

	raw, p, err := ps.FetchRaw(context.Background(), "alexa", 0, want)
	if err != nil || raw == nil {
		t.Fatalf("FetchRaw: %v, raw=%v", err, raw)
	}
	if raw.Hash != want {
		t.Fatalf("fetched hash %q, want %q", raw.Hash, want)
	}
	if p.URL() != tsGood.URL {
		t.Fatalf("fetched from %s, want %s", p.URL(), tsGood.URL)
	}

	// With no matching peer, any decodable copy is better than none.
	tsGood.Close()
	ps2 := testPeerSet(t, tsOther.URL)
	raw, _, err = ps2.FetchRaw(context.Background(), "alexa", 0, want)
	if err != nil || raw == nil {
		t.Fatalf("fallback FetchRaw: %v, raw=%v", err, raw)
	}
	if raw.Hash == want {
		t.Fatal("fallback should be the divergent copy")
	}
}

func TestFetchRawSkipsCorruptPeerCopy(t *testing.T) {
	// A peer refusing a corrupt slot (plain 500) is slot-level trouble:
	// the fetch fails over without counting a peer failure.
	bad := seedStore(t, []string{"alexa"}, 1)
	corruptSlot(t, bad, "alexa", 0)
	bad.Verify() // settle the corruption so the server refuses it
	good := seedStore(t, []string{"alexa"}, 1)
	tsBad, tsGood := serveArchive(t, bad), serveArchive(t, good)
	ps := testPeerSet(t, tsBad.URL, tsGood.URL)

	raw, p, err := ps.FetchRaw(context.Background(), "alexa", 0, "")
	if err != nil || raw == nil {
		t.Fatalf("FetchRaw: %v, raw=%v", err, raw)
	}
	if p.URL() != tsGood.URL {
		t.Fatalf("fetched from %s, want failover to %s", p.URL(), tsGood.URL)
	}
	if ps.peers[0].Failures() != 0 {
		t.Fatal("corrupt refusal must not count as a peer failure")
	}
}

func TestMirrorSurvivesDeadPeer(t *testing.T) {
	src := seedStore(t, []string{"alexa"}, 2)
	tsLive := serveArchive(t, src)
	tsDead := httptest.NewServer(http.NotFoundHandler())
	deadURL := tsDead.URL
	tsDead.Close() // connection refused from the start

	local := emptyStore(t, 2)
	ps := testPeerSet(t, deadURL, tsLive.URL)
	// Fast retries so the dead peer's open fails quickly.
	ps.remoteOpts = append(ps.remoteOpts, toplist.WithRemoteMaxAttempts(1))
	m := NewMirror(local, ps)
	ctx := context.Background()
	m.SyncOnce(ctx)
	if got := m.Copied(); got != 2 {
		t.Fatalf("live peer should have been drained despite dead peer: copied=%d", got)
	}
	if m.PeerFailures() == 0 {
		t.Fatal("dead peer conversation should have been counted")
	}
	if ps.peers[0].Failures() == 0 {
		t.Fatal("dead peer should be unhealthy")
	}
	if ps.peers[1].Failures() != 0 {
		t.Fatal("live peer should be healthy")
	}
}

func TestBootstrap(t *testing.T) {
	src := seedStore(t, []string{"alexa", "umbrella"}, 4)
	ts := serveArchive(t, src)
	ps := testPeerSet(t, ts.URL)
	dir := filepath.Join(t.TempDir(), "node")

	store, err := Bootstrap(context.Background(), dir, ps)
	if err != nil {
		t.Fatal(err)
	}
	if store.First() != src.First() || store.Last() != src.Last() {
		t.Fatalf("bootstrap range [%s,%s], want [%s,%s]", store.First(), store.Last(), src.First(), src.Last())
	}
	if got := store.Scale(); got != "test" {
		t.Fatalf("bootstrap scale %q, want test", got)
	}
	if got := len(store.Missing()); got != 8 {
		t.Fatalf("fresh bootstrap should expect 8 slots missing, got %d", got)
	}

	// Reopening an existing archive never consults peers.
	ts.Close()
	again, err := Bootstrap(context.Background(), dir, testPeerSet(t, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if again.First() != store.First() || again.Last() != store.Last() {
		t.Fatal("reopen changed the archive range")
	}
}

func TestLoopsRunAndStop(t *testing.T) {
	src := seedStore(t, []string{"alexa"}, 2)
	ts := serveArchive(t, src)
	local := emptyStore(t, 2)
	m := NewMirror(local, testPeerSet(t, ts.URL))

	ctx, cancel := context.WithCancel(context.Background())
	loops := m.Loops(5*time.Millisecond, 5*time.Millisecond)
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	done := make(chan struct{})
	for _, loop := range loops {
		loop := loop
		go func() { loop(ctx); done <- struct{}{} }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Rounds() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	<-done
	<-done
	if m.Rounds() < 3 {
		t.Fatalf("sync loop made %d rounds", m.Rounds())
	}
	if got := m.Copied(); got != 2 {
		t.Fatalf("copied = %d, want 2", got)
	}
}
