package pack

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts makes retry backoff negligible for tests.
func fastOpts(extra ...Option) []Option {
	return append([]Option{WithBaseBackoff(time.Nanosecond)}, extra...)
}

// servePackFile returns an httptest server serving the pack bytes with
// full, correct Range support (http.ServeContent), plus a counter of
// ranged requests.
func servePackFile(t *testing.T, path string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ranged atomic.Int64
	modtime := time.Unix(1700000000, 0)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Range") != "" {
			ranged.Add(1)
		}
		w.Header().Set("ETag", `"pack-v1"`)
		http.ServeContent(w, r, "joint.pack", modtime, bytes.NewReader(data))
	}))
	t.Cleanup(ts.Close)
	return ts, &ranged
}

// TestOpenURLReadsEqualLocal: a pack opened over HTTP Range requests
// serves the same decoded lists and raw bytes as the same file opened
// locally, and actually used ranged requests to do it.
func TestOpenURLReadsEqualLocal(t *testing.T) {
	store := seedStore(t, t.TempDir())
	path := packStore(t, store)
	local, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	ts, ranged := servePackFile(t, path)
	remote, err := OpenURL(context.Background(), ts.URL, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Size() != local.Size() {
		t.Fatalf("size %d, want %d", remote.Size(), local.Size())
	}
	for _, prov := range local.Providers() {
		for d := local.First(); d <= local.Last(); d++ {
			want, got := local.Get(prov, d), remote.Get(prov, d)
			if (want == nil) != (got == nil) {
				t.Fatalf("%s %v: presence mismatch", prov, d)
			}
			if want != nil && !reflect.DeepEqual(got.Names(), want.Names()) {
				t.Fatalf("%s %v: lists differ over HTTP", prov, d)
			}
		}
	}
	if ranged.Load() == 0 {
		t.Fatal("no Range requests were issued")
	}
	if corrupt, err := remote.Verify(); err != nil || len(corrupt) != 0 {
		t.Fatalf("remote verify: %v, %v", corrupt, err)
	}
}

// flakyHandler wraps correct Range serving with programmable faults
// consumed one per request.
type flakyHandler struct {
	data    []byte
	etag    string
	faults  chan string // each value is one fault mode for one request
	touched atomic.Int64
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.touched.Add(1)
	var fault string
	select {
	case fault = <-h.faults:
	default:
	}
	switch fault {
	case "503":
		http.Error(w, "down", http.StatusServiceUnavailable)
		return
	case "short":
		// Promise the requested range but send half of it, then cut
		// the connection: a mid-read drop.
		start, end := parseRange(r.Header.Get("Range"), int64(len(h.data)))
		n := end - start + 1
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, end, len(h.data)))
		w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
		w.WriteHeader(http.StatusPartialContent)
		w.Write(h.data[start : start+n/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Hijack-free connection cut: panic with ErrAbortHandler drops
		// the connection without a normal end-of-body.
		panic(http.ErrAbortHandler)
	case "200":
		w.Header().Set("ETag", h.etag)
		w.Header().Set("Content-Length", strconv.Itoa(len(h.data)))
		w.WriteHeader(http.StatusOK)
		w.Write(h.data)
		return
	case "416":
		http.Error(w, "bad range", http.StatusRequestedRangeNotSatisfiable)
		return
	case "newetag":
		w.Header().Set("ETag", `"replaced"`)
		w.Header().Set("Content-Length", strconv.Itoa(len(h.data)))
		w.WriteHeader(http.StatusOK)
		w.Write(h.data)
		return
	}
	w.Header().Set("ETag", h.etag)
	http.ServeContent(w, r, "joint.pack", time.Unix(1700000000, 0), bytes.NewReader(h.data))
}

func parseRange(v string, size int64) (int64, int64) {
	v = strings.TrimPrefix(v, "bytes=")
	a, b, _ := strings.Cut(v, "-")
	start, _ := strconv.ParseInt(a, 10, 64)
	end := size - 1
	if b != "" {
		end, _ = strconv.ParseInt(b, 10, 64)
	}
	if end > size-1 {
		end = size - 1
	}
	return start, end
}

func flakyServer(t *testing.T, nFaults int) (*httptest.Server, *flakyHandler, *HTTPRangeReaderAt) {
	t.Helper()
	store := seedStore(t, t.TempDir())
	path := packStore(t, store)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	h := &flakyHandler{data: data, etag: `"pack-v1"`, faults: make(chan string, nFaults)}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	// A tiny chunk size so a small test pack spans many chunks — the
	// faults below must hit the network, not the chunk cache.
	ra, err := NewHTTPRangeReaderAt(context.Background(), ts.URL, fastOpts(WithChunkSize(64))...)
	if err != nil {
		t.Fatal(err)
	}
	return ts, h, ra
}

// TestHTTPRangeRetriesTransient: 503s and mid-read connection drops
// are retried and the read still completes with the right bytes.
func TestHTTPRangeRetriesTransient(t *testing.T) {
	_, h, ra := flakyServer(t, 4)
	h.faults <- "503"
	h.faults <- "short"
	h.faults <- "503"
	buf := make([]byte, 64)
	if _, err := ra.ReadAt(buf, 100); err != nil {
		t.Fatalf("read through transient faults: %v", err)
	}
	if !bytes.Equal(buf, h.data[100:164]) {
		t.Fatal("retried read returned wrong bytes")
	}
}

// TestHTTPRangeExhaustsRetries: a server that stays down fails the
// read with the final transient error rather than hanging.
func TestHTTPRangeExhaustsRetries(t *testing.T) {
	_, h, ra := flakyServer(t, 16)
	for i := 0; i < 16; i++ {
		h.faults <- "503"
	}
	if _, err := ra.ReadAt(make([]byte, 8), 0); err == nil {
		t.Fatal("read succeeded against a dead server")
	}
	if h.touched.Load() < 4 {
		t.Fatalf("only %d attempts observed, want the retry budget", h.touched.Load())
	}
}

// TestHTTPRangeIgnored200: a server ignoring Range is tolerated
// exactly once (full-body fallback), then refused.
func TestHTTPRangeIgnored200(t *testing.T) {
	_, h, ra := flakyServer(t, 2)
	h.faults <- "200"
	buf := make([]byte, 32)
	if _, err := ra.ReadAt(buf, 50); err != nil {
		t.Fatalf("first full-body fallback should succeed: %v", err)
	}
	if !bytes.Equal(buf, h.data[50:82]) {
		t.Fatal("full-body fallback returned wrong bytes")
	}
	h.faults <- "200"
	// A different, uncached range so the chunk cache cannot answer.
	far := int64(len(h.data)) - 40
	if _, err := ra.ReadAt(make([]byte, 8), far); !errors.Is(err, errRangeIgnored) {
		t.Fatalf("second Range-ignoring 200: %v, want errRangeIgnored", err)
	}
}

// TestHTTPRange416: a 416 for an in-bounds range means the file
// changed (shrank) under us and must refuse, not retry.
func TestHTTPRange416(t *testing.T) {
	_, h, ra := flakyServer(t, 1)
	h.faults <- "416"
	if _, err := ra.ReadAt(make([]byte, 8), 10); !errors.Is(err, ErrChangedMidRead) {
		t.Fatalf("416: %v, want ErrChangedMidRead", err)
	}
	if h.touched.Load() != 2 { // probe + the refused read: no retries
		t.Fatalf("%d requests, want 2 (416 must not be retried)", h.touched.Load())
	}
}

// TestHTTPRangeETagChangeRefused: a response carrying a different
// validator than the one captured at open is refused — the file
// changed mid-read, and stitching ranges of two versions together
// would be garbage.
func TestHTTPRangeETagChangeRefused(t *testing.T) {
	_, h, ra := flakyServer(t, 1)
	h.faults <- "newetag"
	if _, err := ra.ReadAt(make([]byte, 8), 10); !errors.Is(err, ErrChangedMidRead) {
		t.Fatalf("changed ETag: %v, want ErrChangedMidRead", err)
	}
}

// TestHTTPRangeCoalescing: many small adjacent reads served out of one
// chunk cost one ranged request.
func TestHTTPRangeCoalescing(t *testing.T) {
	store := seedStore(t, t.TempDir())
	path := packStore(t, store)
	ts, ranged := servePackFile(t, path)
	ra, err := NewHTTPRangeReaderAt(context.Background(), ts.URL, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	before := ranged.Load()
	buf := make([]byte, 16)
	for off := int64(0); off < 512; off += 16 {
		if _, err := ra.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if got := ranged.Load() - before; got != 1 {
		t.Fatalf("32 adjacent small reads issued %d ranged requests, want 1", got)
	}
}

// TestHTTPRangeReadAtEOFContract: ReadAt past the end honours the
// io.ReaderAt contract (partial read + io.EOF, or 0+io.EOF at/after
// the end).
func TestHTTPRangeReadAtEOFContract(t *testing.T) {
	_, h, ra := flakyServer(t, 0)
	size := int64(len(h.data))
	buf := make([]byte, 16)
	n, err := ra.ReadAt(buf, size-4)
	if n != 4 || err != io.EOF {
		t.Fatalf("tail read: n=%d err=%v, want 4, io.EOF", n, err)
	}
	if !bytes.Equal(buf[:4], h.data[size-4:]) {
		t.Fatal("tail bytes wrong")
	}
	if n, err := ra.ReadAt(buf, size+10); n != 0 || err != io.EOF {
		t.Fatalf("past-end read: n=%d err=%v, want 0, io.EOF", n, err)
	}
}

// TestOpenURLProbeFallsBackWithoutHEAD: servers that reject HEAD are
// probed with a one-byte range GET instead.
func TestOpenURLProbeFallsBackWithoutHEAD(t *testing.T) {
	store := seedStore(t, t.TempDir())
	path := packStore(t, store)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodHead {
			http.Error(w, "no HEAD here", http.StatusMethodNotAllowed)
			return
		}
		http.ServeContent(w, r, "joint.pack", time.Unix(1700000000, 0), bytes.NewReader(data))
	}))
	defer ts.Close()
	p, err := OpenURL(context.Background(), ts.URL, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if p.Get("alexa", 0) == nil {
		t.Fatal("read through range-probed reader failed")
	}
}
