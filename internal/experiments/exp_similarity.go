package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/providers"
	"repro/internal/stats"
)

func init() {
	register("similarity",
		"Ablation: rank-similarity metric choice (tau vs rho vs footrule vs RBO)",
		runSimilarity)
}

// runSimilarity re-reads the paper's §6.3 order-stability question
// under four metrics. Kendall's τ (the paper's choice) only sees
// domains common to both lists and weights all ranks equally;
// Rank-Biased Overlap sees the churn too (non-conjoint lists) and
// weights the head. The ablation shows how the metric choice changes
// the stability picture: under τ the head looks almost perfectly
// stable, while RBO also charges for entries leaving the list.
func runSimilarity(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	head := st.Scale.HeadSize
	// Persistence chosen so the evaluated head carries the bulk of the
	// RBO weight.
	p := 1 - 1/float64(head)

	res := &Result{
		Paper:  "§6.3/Fig. 4 use τ only: day-to-day very-strong (τ>0.95) share Majestic 99%, Alexa 72%, Umbrella 40%. RBO/footrule/ρ are the extension; the Tranco follow-up work adopted RBO for exactly this comparison.",
		Header: []string{"comparison", "τ (mean)", "ρ (mean)", "footrule (mean)", "RBO (mean)", "common (mean)"},
	}
	row := func(label string, s analysis.Similarity) {
		res.Rows = append(res.Rows, []string{
			label, f3(s.Tau), f3(s.Rho), f3(s.Footrule), f3(s.RBO), d(s.Common),
		})
	}

	for _, prov := range st.Providers() {
		s := analysis.SimilaritySummary(st.Analysis.SimilarityDayToDay(prov, head, p))
		row(prov+" day-to-day (head)", s)
	}
	pairs := [][2]string{
		{providers.Alexa, providers.Umbrella},
		{providers.Alexa, providers.Majestic},
		{providers.Umbrella, providers.Majestic},
	}
	for _, pair := range pairs {
		s := analysis.SimilaritySummary(st.Analysis.SimilarityAcrossProviders(pair[0], pair[1], head, p))
		row(pair[0]+" vs "+pair[1]+" (head)", s)
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("RBO persistence p=%.4f (top %d ranks carry ~%.0f%% of the weight)",
			p, head, 100*stats.RBOTopWeight(p, head)),
		"day-to-day τ within a provider is high even when RBO is much lower: τ is blind to churned entries",
		"cross-provider RBO ≪ within-provider RBO: the paper's low-intersection finding (§5.2) restated order-sensitively",
	)
	return res, nil
}
