// Package engine owns the simulation loop: burn the provider windows
// in, step each simulated day, and stream the day's snapshots into a
// SnapshotSink. It is the concurrent spine of the system — the loop
// that used to be hardcoded in core.Run and providers.Generator.Run —
// and is concurrent at three levels:
//
//  1. the hot per-domain loops (signal synthesis, per-base score
//     aggregation, EMA updates) are sharded across workers inside
//     providers.Generator.StepDay;
//  2. the three providers step and rank concurrently per day (their
//     window states are fully independent);
//  3. the days themselves are pipelined through three stages — step,
//     rank, emit — so while day d+1's signals and EMAs step, day d's
//     top-K selection runs on a frozen rank view
//     (providers.Generator.Freeze) and day d-1 streams to the sink.
//
// The pipeline depth is bounded at one day per stage by the providers'
// double-buffered EMA state: stepping day d+2 reclaims the buffer day
// d's rank view reads, so the step stage hands views over an
// unbuffered channel — a completed handoff proves the rank stage has
// retired the view from two days ago.
//
// Workers = 1 selects the legacy serial path, kept as the reference
// implementation; every concurrent level is constructed to be bitwise
// identical to it (fixed shard boundaries, per-accumulator addition
// order preserved, fixed provider emit order), which the equivalence
// tests assert.
//
// Runs are context-aware: cancellation is observed at day boundaries,
// so a cancelled run stops within one simulated day and the sink never
// sees a partial day beyond the one in flight. Errors propagate
// promptly: a sink failure cancels the internal pipeline context, so
// the step stage stops at its next stage boundary instead of stepping
// days that will never be emitted.
package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/providers"
	"repro/internal/toplist"
)

// Config tunes the engine.
type Config struct {
	// Workers is the parallelism level: 1 runs the legacy serial
	// reference path, anything < 1 means GOMAXPROCS.
	Workers int
	// Remote, when set, replaces the in-process Generator.StepDay with a
	// distributed stepper (shard.Coordinator): each day's per-domain
	// stepping runs on shard workers and is merged back before the rank
	// stage freezes the day. The rank/emit pipeline is unchanged — a
	// remote day merges into exactly the state a local step would have
	// produced — so Remote composes with any Workers setting.
	Remote RemoteStepper
}

// RemoteStepper steps the engine's generator to a day through external
// workers, leaving the generator in the same state Generator.StepDay
// would. Implemented by shard.Coordinator; defined here so the engine
// does not import the shard transport.
type RemoteStepper interface {
	StepDay(ctx context.Context, day int) error
}

// SnapshotSink is re-exported from toplist for callers wiring sinks to
// the engine; toplist.Archive is the materialising implementation and
// toplist.DiskStore the durable one.
type SnapshotSink = toplist.SnapshotSink

// DaySink is an optional SnapshotSink extension: after all of a day's
// snapshots have been Put, the engine calls EndDay once. Sinks use it
// as a day barrier — e.g. to publish the finished day to readers, or
// to pace a live collection.
type DaySink interface {
	SnapshotSink
	EndDay(day toplist.Day) error
}

// SinkFunc adapts a function to a SnapshotSink.
type SinkFunc func(provider string, day toplist.Day, l *toplist.List) error

// Put calls f.
func (f SinkFunc) Put(provider string, day toplist.Day, l *toplist.List) error {
	return f(provider, day, l)
}

// teeSink fans every snapshot (and day barrier) out to several sinks
// in order — how a generation run is archived in memory and persisted
// to disk at the same time.
type teeSink []toplist.SnapshotSink

func (t teeSink) Put(provider string, day toplist.Day, l *toplist.List) error {
	for _, s := range t {
		if err := s.Put(provider, day, l); err != nil {
			return err
		}
	}
	return nil
}

func (t teeSink) EndDay(day toplist.Day) error {
	for _, s := range t {
		if ds, ok := s.(DaySink); ok {
			if err := ds.EndDay(day); err != nil {
				return err
			}
		}
	}
	return nil
}

// Tee returns a sink that forwards every Put to each sink in order;
// EndDay is forwarded to the sinks that implement DaySink. Nil sinks
// are dropped, and a single remaining sink is returned unwrapped.
func Tee(sinks ...toplist.SnapshotSink) SnapshotSink {
	t := make(teeSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			t = append(t, s)
		}
	}
	if len(t) == 1 {
		return t[0]
	}
	return t
}

// runCount counts engine runs in-process (see RunCount).
var runCount atomic.Int64

// RunCount reports how many engine runs have started in this process.
// Resume-from-disk paths assert on it staying flat: a study served
// from a reopened archive must never invoke the engine.
func RunCount() int64 { return runCount.Load() }

// Stats reports the stage timings and worker split of an engine run —
// the observability behind the adaptive rank/step split. StepTime and
// RankTime are cumulative wall time the step and rank phases spent over
// the archive days (burn-in excluded); on serial runs both are measured
// the same way and the split fields stay 1/1. StepWorkers/RankWorkers
// are the split in effect when the run finished.
type Stats struct {
	StepTime, RankTime       time.Duration
	StepWorkers, RankWorkers int
}

// Engine drives one generator through the simulated calendar.
type Engine struct {
	g     *providers.Generator
	cfg   Config
	stats Stats // last completed Run's stage report (see Stats)
}

// Stats returns the stage timings and worker split observed by the most
// recent Run. It must not be called concurrently with Run.
func (e *Engine) Stats() Stats { return e.stats }

// New builds an engine around a generator.
func New(g *providers.Generator, cfg Config) *Engine {
	return &Engine{g: g, cfg: cfg}
}

// stepDay advances the generator to day d — in process, or through the
// configured RemoteStepper. Either way the generator ends the call in
// the identical state, which is what lets the distributed mode ride the
// serial and pipelined day loops unchanged.
func (e *Engine) stepDay(ctx context.Context, d, workers int) error {
	if e.cfg.Remote != nil {
		return e.cfg.Remote.StepDay(ctx, d)
	}
	e.g.StepDay(d, workers)
	return nil
}

// Providers returns the provider names the engine emits, in the fixed
// output order — what an archive sink should Expect.
func (e *Engine) Providers() []string { return e.g.EnabledProviders() }

// Run generates days [0, days), burn-in included, streaming every
// snapshot into sink in deterministic order: days ascending, and
// within a day the fixed provider order (Alexa, Umbrella, Majestic).
// The first sink error stops the run and is returned.
//
// Cancelling ctx stops the run at the next day boundary — the sink
// receives no snapshot for any day after the one being emitted when
// cancellation lands — and returns ctx.Err().
func (e *Engine) Run(ctx context.Context, days int, sink SnapshotSink) error {
	if days < 1 {
		return fmt.Errorf("engine: days must be >= 1, got %d", days)
	}
	if sink == nil {
		return fmt.Errorf("engine: nil sink")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	runCount.Add(1)
	workers := e.cfg.Workers
	if workers < 1 {
		workers = parallel.Workers(workers)
	}
	g := e.g
	// Burn-in warms the windows with the step stage's worker share (the
	// full budget minus the rank stage's initial slice): burn-in days
	// are dominated by loop overhead, not math — most domains are
	// unborn before day 0 — so fanning wider than the day loop's step
	// stage buys nothing and costs a spawn barrier per day.
	burnW := workers
	if workers > 1 {
		burnW, _ = parallel.Split(workers, len(g.EnabledProviders()), 0, 0)
	}
	for d := -g.Opts.BurnInDays; d < 0; d++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := e.stepDay(ctx, d, burnW); err != nil {
			return err
		}
	}
	emit := func(day toplist.Day, batch []toplist.Snapshot) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, s := range batch {
			if err := sink.Put(s.Provider, s.Day, s.List); err != nil {
				return err
			}
		}
		if ds, ok := sink.(DaySink); ok {
			return ds.EndDay(day)
		}
		return nil
	}
	if workers <= 1 {
		st := Stats{StepWorkers: 1, RankWorkers: 1}
		for d := 0; d < days; d++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			t0 := time.Now()
			if err := e.stepDay(ctx, d, 1); err != nil {
				return err
			}
			t1 := time.Now()
			snaps := g.Snapshots(toplist.Day(d), 1)
			st.StepTime += t1.Sub(t0)
			st.RankTime += time.Since(t1)
			if err := emit(toplist.Day(d), snaps); err != nil {
				return err
			}
		}
		e.stats = st
		return nil
	}

	// Concurrent path: a bounded three-stage day pipeline.
	//
	//	step(d+1) ─views→ rank(d) ─batches→ emit(d-1)
	//
	// The step stage (this goroutine) advances the providers' signals
	// and EMAs; the rank stage runs top-K selection over the frozen
	// view of the previous day; the emit stage streams the day before
	// that into the sink in deterministic order.
	//
	// views is deliberately unbuffered: a completed send proves the
	// rank stage has retired the view from two days ago, which is
	// exactly when the providers' double-buffered EMA state lets the
	// next StepDay reclaim that view's buffer. batches holds one day so
	// ranking day d overlaps emitting day d-1.
	//
	// Error and cancel propagation is prompt: the first emit error (or
	// the parent ctx's cancellation surfacing through emit) cancels
	// pctx, and every stage selects on pctx at its next boundary — the
	// step stage finishes at most the StepDay in flight, instead of
	// running whole days for snapshots that will never be delivered.
	type dayBatch struct {
		day   toplist.Day
		snaps []toplist.Snapshot
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	views := make(chan *providers.RankView)
	batches := make(chan dayBatch, 1)
	grp := parallel.NewGroup(cancel)

	// Adaptive rank/step worker split. The step and rank stages run
	// concurrently, so handing each the full worker count — what the
	// pipeline did before — oversubscribes small machines: every
	// fan-out barrier inside StepDay then waits on a core the rank
	// stage holds, which is exactly how the 2-core pipelined run
	// benchmarked slower than serial. Instead the budget is divided
	// proportionally to the measured per-day stage costs (EWMA over
	// recent days, cost = wall × workers): the step stage recomputes
	// the split before each day and publishes the rank stage's share
	// through rankShare. Worker counts never affect archive bytes —
	// only shard boundaries move — so adapting day by day is free of
	// determinism hazards.
	nprov := len(g.EnabledProviders())
	var stepCost, rankCost atomic.Int64 // EWMA per-day stage cost, ns
	var stepWall, rankWall atomic.Int64 // cumulative stage wall, ns
	var rankShare atomic.Int32
	stepW, rankW := parallel.Split(workers, nprov, 0, 0)
	rankShare.Store(int32(rankW))
	ewma := func(a *atomic.Int64, sample int64) {
		// Single-writer EWMA (weight 1/4): the step stage owns
		// stepCost, the rank stage owns rankCost.
		if old := a.Load(); old != 0 {
			sample = old + (sample-old)/4
		}
		a.Store(sample)
	}

	// Rank stage: top-K selection over frozen views. Shutdown paths
	// return nil — the emit stage owns the run's error, and the final
	// ctx.Err() check below owns parent cancellation.
	grp.Go(func() error {
		defer close(batches)
		for v := range views {
			rw := int(rankShare.Load())
			t0 := time.Now()
			b := dayBatch{v.Day(), v.Snapshots(rw)}
			dur := time.Since(t0)
			rankWall.Add(int64(dur))
			ewma(&rankCost, int64(dur)*int64(min(rw, nprov)))
			select {
			case batches <- b:
			case <-pctx.Done():
				return nil
			}
		}
		return nil
	})

	// Emit stage: the only stage that touches the sink, preserving the
	// serial path's delivery order exactly. emitted counts delivered
	// days; it is read after Wait (which orders it) to tell a complete
	// run from a cancelled one.
	emitted := 0
	grp.Go(func() error {
		for b := range batches {
			if err := emit(b.day, b.snaps); err != nil {
				return err
			}
			emitted++
		}
		return nil
	})

	// Step stage, inline on the caller's goroutine.
	grp.Do(func() error {
		defer close(views)
		for d := 0; d < days; d++ {
			if pctx.Err() != nil {
				return nil
			}
			stepW, rankW = parallel.Split(workers, nprov,
				float64(stepCost.Load()), float64(rankCost.Load()))
			rankShare.Store(int32(rankW))
			t0 := time.Now()
			if err := e.stepDay(pctx, d, stepW); err != nil {
				if pctx.Err() != nil {
					// Another stage already failed (or the parent was
					// cancelled); let that error own the run.
					return nil
				}
				return err
			}
			dur := time.Since(t0)
			stepWall.Add(int64(dur))
			ewma(&stepCost, int64(dur)*int64(stepW))
			select {
			case views <- g.Freeze(toplist.Day(d)):
			case <-pctx.Done():
				return nil
			}
		}
		return nil
	})

	if err := grp.Wait(); err != nil {
		return err
	}
	e.stats = Stats{
		StepTime:    time.Duration(stepWall.Load()),
		RankTime:    time.Duration(rankWall.Load()),
		StepWorkers: stepW,
		RankWorkers: rankW,
	}
	if emitted == days {
		// Every day was delivered: the run is complete, and — like the
		// serial reference path — a cancellation racing the very last
		// delivery does not retroactively fail it.
		return nil
	}
	// No stage errored but days are missing: the parent ctx was
	// cancelled mid-run (internal cancellation only ever follows a
	// stage error, which Wait would have returned).
	return ctx.Err()
}

// Run builds the archive for days [0, days) with a fresh generator
// drive — the drop-in replacement for providers.Generator.Run with a
// concurrency knob. The archive's expected provider set is declared,
// so Complete/Missing report absent providers too.
func Run(ctx context.Context, g *providers.Generator, days int, cfg Config) (*toplist.Archive, error) {
	if days < 1 {
		return nil, fmt.Errorf("engine: days must be >= 1, got %d", days)
	}
	arch := toplist.NewArchive(0, toplist.Day(days-1))
	arch.Expect(g.EnabledProviders()...)
	if err := New(g, cfg).Run(ctx, days, arch); err != nil {
		return nil, err
	}
	return arch, nil
}
