package providers

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/traffic"
)

// This file is the provider-side half of distributed generation
// (internal/shard): ShardStepper advances one contiguous shard of the
// per-domain EMA state on a worker process, and Generator.MergeDay
// folds the shards' partial results back into a coordinator-side
// generator — producing, by construction, the same floating-point bits
// as Generator.StepDay.
//
// The split leans on three invariants the in-process engine already
// pins:
//
//   - signals are pure: traffic.Model.SignalRange(axis, day, ...) is an
//     elementwise function of the immutable world, so disjoint shards
//     recompute their slices independently and identically on any
//     machine that builds the same world;
//   - base-slot space is record space: a base domain's slot index IS
//     its record index, so the web/link rankers' per-slot aggregation
//     and the DNS ranker's per-record update shard over the same
//     [lo, hi) boundaries (parallel.Shard of the same n);
//   - injections never touch the per-record arrays: injectors feed only
//     the small per-name extra maps, which stay coordinator-owned in
//     MergeDay — a worker needs no injector at all.
//
// Every arithmetic expression below mirrors webRanker.step /
// dnsRanker.stepRange token for token; the equivalence test compares
// the two paths with math.Float64bits.

// ShardStepper advances one contiguous shard [lo, hi) of the per-domain
// EMA state, day by sequential day. It is the worker-side compute unit
// of distributed generation: construct it from the same (world, options)
// the coordinator's generator was built from, Seed it (or start cold for
// a fresh run), then Step each day in order and ship Partial slices
// back. It is not safe for concurrent use; the shard worker serialises
// access per session.
type ShardStepper struct {
	m    *traffic.Model
	opts Options
	lo   int
	hi   int

	buckets *baseBuckets
	// runs are the maximal contiguous record-index ranges covering every
	// member (base + subdomains) of the shard's slots — the index set the
	// web/link signal fills must touch. Precomputed once; signal fills
	// walk runs instead of scattered member indices.
	runs [][2]int
	// sig is a full-length signal scratch so member indices address it
	// directly; only the shard's runs (and [lo, hi) for DNS) are filled.
	sig []float64

	web  *shardState // Alexa (nil when disabled)
	link *shardState // Majestic
	dns  *shardState // Umbrella

	started bool
	day     int // last stepped day; meaningful once started
}

// shardState is one provider's double-buffered EMA state restricted to
// the shard: cur holds the last stepped day, next is scratch.
type shardState struct {
	cur, next []float64
}

func (s *shardState) flip() { s.cur, s.next = s.next, s.cur }

// NewShardStepper builds a stepper for shard [lo, hi) of the world
// behind m. Injectors in opts are ignored (extras are coordinator
// state); everything else must match the coordinator's options exactly
// or the merged archive will not be byte-identical — the shard wire
// protocol's job fingerprint enforces that.
func NewShardStepper(m *traffic.Model, opts Options, lo, hi int) (*ShardStepper, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := m.W.Len()
	if lo < 0 || hi < lo || hi > n {
		return nil, fmt.Errorf("providers: shard [%d, %d) outside [0, %d)", lo, hi, n)
	}
	s := &ShardStepper{m: m, opts: opts, lo: lo, hi: hi, sig: make([]float64, n)}
	size := hi - lo
	if opts.enabled(Alexa) {
		s.web = &shardState{make([]float64, size), make([]float64, size)}
	}
	if opts.enabled(Majestic) {
		s.link = &shardState{make([]float64, size), make([]float64, size)}
	}
	if opts.enabled(Umbrella) {
		s.dns = &shardState{make([]float64, size), make([]float64, size)}
	}
	if s.web != nil || s.link != nil {
		s.buckets = newBaseBuckets(m.W)
		s.runs = memberRuns(s.buckets, lo, hi)
	}
	return s, nil
}

// memberRuns coalesces the record indices of every member of slots
// [lo, hi) into maximal contiguous [start, end) runs, ascending.
func memberRuns(b *baseBuckets, lo, hi int) [][2]int {
	// Members of consecutive slots are contiguous in the CSR array, but
	// only ascending within each slot — sort a copy to coalesce globally.
	members := slices.Clone(b.members[b.start[lo]:b.start[hi]])
	slices.Sort(members)
	var runs [][2]int
	for i := 0; i < len(members); {
		j := i + 1
		for j < len(members) && members[j] == members[j-1]+1 {
			j++
		}
		runs = append(runs, [2]int{int(members[i]), int(members[j-1]) + 1})
		i = j
	}
	return runs
}

// Bounds returns the shard's record range [lo, hi).
func (s *ShardStepper) Bounds() (lo, hi int) { return s.lo, s.hi }

// Started reports whether the stepper holds any stepped (or seeded)
// state; a cold stepper's first Step copies scores instead of blending.
func (s *ShardStepper) Started() bool { return s.started }

// Day returns the last stepped (or seeded) day; meaningful only once
// Started.
func (s *ShardStepper) Day() int { return s.day }

// Providers returns the provider names the stepper maintains state for,
// in the fixed output order.
func (s *ShardStepper) Providers() []string { return s.opts.EnabledProviders() }

// Partial returns provider's current shard state (length hi-lo), the
// EMA values of the last stepped day. The slice is the stepper's live
// buffer: read (or copy) it before the next Step, and do not modify it.
func (s *ShardStepper) Partial(provider string) []float64 {
	if st := s.state(provider); st != nil {
		return st.cur
	}
	return nil
}

// Seed overwrites provider's shard state with vals — how a reassigned
// shard resumes on a fresh worker from the coordinator's merged state.
// Callers seed every enabled provider and then SetDay/SetStarted to
// position the stepper.
func (s *ShardStepper) Seed(provider string, vals []float64) error {
	st := s.state(provider)
	if st == nil {
		return fmt.Errorf("providers: seed for disabled provider %q", provider)
	}
	if len(vals) != s.hi-s.lo {
		return fmt.Errorf("providers: seed for %q has %d values, shard holds %d", provider, len(vals), s.hi-s.lo)
	}
	copy(st.cur, vals)
	return nil
}

// SetState positions the stepper after seeding: day is the day the
// seeded values represent (the next Step must be day+1), started is
// false only when the seed is the pre-simulation zero state.
func (s *ShardStepper) SetState(day int, started bool) {
	s.day = day
	s.started = started
}

func (s *ShardStepper) state(provider string) *shardState {
	switch provider {
	case Alexa:
		return s.web
	case Umbrella:
		return s.dns
	case Majestic:
		return s.link
	}
	return nil
}

// Step advances every enabled provider's shard state to day. Days must
// be stepped in the same sequence the serial generator would (burn-in
// included); the Alexa alpha regime is derived from the day itself, so
// a stepper seeded past the change day lands in the post-change regime
// automatically.
func (s *ShardStepper) Step(day int) {
	if s.web != nil {
		a := s.opts.AlexaAlphaPre
		if s.opts.AlexaChangeDay >= 0 && day >= s.opts.AlexaChangeDay {
			a = s.opts.AlexaAlphaPost
		}
		s.stepBase(s.web, traffic.AxisWeb, a, day)
	}
	if s.link != nil {
		s.stepBase(s.link, traffic.AxisLink, s.opts.MajesticAlpha, day)
	}
	if s.dns != nil {
		s.stepDNS(day)
	}
	s.started = true
	s.day = day
}

// stepBase is the shard-local body of webRanker.step: per-slot member
// sums in ascending record order, then the fused EMA advance — the
// identical expressions, so the floating-point bits match.
func (s *ShardStepper) stepBase(st *shardState, axis traffic.Axis, a float64, day int) {
	for _, run := range s.runs {
		s.m.SignalRange(axis, day, s.sig, run[0], run[1])
	}
	started := s.started
	prev, next := st.cur, st.next
	for b := s.lo; b < s.hi; b++ {
		var sum float64
		for _, i := range s.buckets.members[s.buckets.start[b]:s.buckets.start[b+1]] {
			sum += s.sig[i]
		}
		j := b - s.lo
		if !started {
			next[j] = sum
		} else {
			next[j] = (1-a)*prev[j] + a*sum
		}
	}
	st.flip()
}

// stepDNS is the shard-local body of dnsRanker.stepRange.
func (s *ShardStepper) stepDNS(day int) {
	st := s.dns
	a := s.opts.UmbrellaAlpha
	started := s.started
	prev, next := st.cur, st.next
	s.m.SignalRange(traffic.AxisDNS, day, s.sig, s.lo, s.hi)
	for i := s.lo; i < s.hi; i++ {
		clients := s.m.UniqueClients(s.sig[i])
		score := clients
		if s.opts.UmbrellaVolumeRanking {
			score = clients * queriesPerClient
		}
		j := i - s.lo
		if !started {
			next[j] = score
		} else {
			next[j] = (1-a)*prev[j] + a*score
		}
	}
	st.flip()
}

// --- coordinator-side merge -------------------------------------------

// FrontValues returns provider's current full-length EMA state (the
// front buffer) — the coordinator reads it to seed reassigned shards.
// The slice is live generator state: valid until the next StepDay or
// MergeDay, and must not be modified. Returns nil for disabled or
// unknown providers.
func (g *Generator) FrontValues(provider string) []float64 {
	if !g.Opts.enabled(provider) {
		return nil
	}
	switch provider {
	case Alexa:
		return g.alexa.ema.Front()
	case Umbrella:
		return g.umbrella.ema.Front()
	case Majestic:
		return g.majestic.ema.Front()
	}
	return nil
}

// MergeDay advances the generator to day d from externally computed
// per-domain EMA state instead of stepping signals locally — the
// coordinator half of a distributed StepDay. fill is called once per
// enabled provider (in the fixed output order) with the provider's back
// buffer to populate; MergeDay then flips the buffers and steps the
// injected-name extras exactly as StepDay would, so Freeze/Snapshots
// behave identically afterwards.
//
// Because merging is a positional copy of values that were produced by
// the very expressions StepDay runs, no floating-point operation is
// reordered: an archive generated through MergeDay is byte-identical to
// the serial reference. Days must be merged in StepDay's sequence. A
// fill error is returned immediately and leaves the generator state
// inconsistent; the run must be abandoned, not resumed.
func (g *Generator) MergeDay(d int, fill func(provider string, dst []float64) error) error {
	if g.Opts.AlexaChangeDay >= 0 && d == g.Opts.AlexaChangeDay {
		g.alexa.alpha = g.Opts.AlexaAlphaPost
	}
	if g.Opts.enabled(Alexa) {
		if err := g.alexa.merge(Alexa, d, fill); err != nil {
			return err
		}
	}
	if g.Opts.enabled(Umbrella) {
		if err := g.umbrella.merge(Umbrella, d, fill); err != nil {
			return err
		}
	}
	if g.Opts.enabled(Majestic) {
		if err := g.majestic.merge(Majestic, d, fill); err != nil {
			return err
		}
	}
	return nil
}

func (r *webRanker) merge(name string, day int, fill func(string, []float64) error) error {
	if err := fill(name, r.ema.Back()); err != nil {
		return err
	}
	r.ema.Flip()
	r.started = true
	stepExtras(r.extra, r.injectionsFor(day), r.alpha, r.convert)
	return nil
}

func (r *dnsRanker) merge(name string, day int, fill func(string, []float64) error) error {
	if err := fill(name, r.ema.Back()); err != nil {
		return err
	}
	r.ema.Flip()
	r.stepExtras(day)
	r.started = true
	return nil
}

// SameBits reports whether two float slices are bitwise identical — the
// equality the distributed-equivalence tests assert (plain == would
// conflate distinct NaN payloads and +0/-0).
func SameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
