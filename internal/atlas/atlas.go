// Package atlas implements the paper's §7 controlled rank-manipulation
// experiments against the Umbrella generator: a RIPE-Atlas-style probe
// fleet issuing DNS queries for test domains (Fig. 5's probe-count ×
// query-frequency grid) and the TTL-influence experiment run through a
// TTL-aware caching resolver.
package atlas

import (
	"fmt"

	"repro/internal/providers"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

// Measurement describes one Atlas-style measurement: Probes distinct
// vantage points, each issuing QueriesPerProbe DNS queries per day for
// Target, on days [Start, End).
type Measurement struct {
	Target          string
	Probes          int
	QueriesPerProbe int
	Start, End      int
}

// Schedule injects the measurement's traffic into inj. Each probe is a
// distinct client, so the unique-client contribution equals the probe
// count; the query contribution is probes × frequency.
func Schedule(inj *traffic.Injector, m Measurement) {
	for d := m.Start; d < m.End; d++ {
		inj.Add(m.Target, d, float64(m.Probes), float64(m.Probes*m.QueriesPerProbe))
	}
}

// GridCell is one cell of Fig. 5: the stabilised Umbrella rank achieved
// by a (probe count, query frequency) combination, read on a Friday and
// on a Sunday (the paper's left/right columns). Rank 0 means the
// domain did not make the list.
type GridCell struct {
	Probes     int
	Frequency  int
	Target     string
	FridayRank int
	SundayRank int
}

// GridConfig parameterises the Fig. 5 experiment.
type GridConfig struct {
	Probes      []int // paper: 100, 1k, 5k, 10k
	Frequencies []int // paper: 1, 10, 50, 100 queries/probe/day
	Days        int   // measurement duration (stabilises in a few days)
	Opts        providers.Options
}

// RunGrid injects one test domain per grid cell into a single Umbrella
// generation run and reports the achieved ranks. All cells share the
// run, as the paper's seven concurrent RIPE Atlas measurements did.
func RunGrid(model *traffic.Model, cfg GridConfig) ([]GridCell, error) {
	if cfg.Days < 10 {
		return nil, fmt.Errorf("atlas: need at least 10 days to stabilise, got %d", cfg.Days)
	}
	inj := traffic.NewInjector()
	cells := make([]GridCell, 0, len(cfg.Probes)*len(cfg.Frequencies))
	for _, p := range cfg.Probes {
		for _, f := range cfg.Frequencies {
			target := fmt.Sprintf("probe%d-freq%d.atlas-exp.net", p, f)
			Schedule(inj, Measurement{
				Target: target, Probes: p, QueriesPerProbe: f,
				Start: 0, End: cfg.Days,
			})
			cells = append(cells, GridCell{Probes: p, Frequency: f, Target: target})
		}
	}
	opts := cfg.Opts
	opts.Injector = inj
	opts.Enabled = []string{providers.Umbrella}
	g, err := providers.NewGenerator(model, opts)
	if err != nil {
		return nil, err
	}
	arch, err := g.Run(cfg.Days)
	if err != nil {
		return nil, err
	}
	friday, sunday := lastWeekendPair(cfg.Days)
	fl := arch.Get(providers.Umbrella, toplist.Day(friday))
	sl := arch.Get(providers.Umbrella, toplist.Day(sunday))
	for i := range cells {
		cells[i].FridayRank = fl.RankOf(cells[i].Target)
		cells[i].SundayRank = sl.RankOf(cells[i].Target)
	}
	return cells, nil
}

// lastWeekendPair returns the last Friday and the following Sunday
// before day limit.
func lastWeekendPair(limit int) (friday, sunday int) {
	for d := limit - 1; d >= 0; d-- {
		if toplist.Day(d).Weekday().String() == "Sunday" && d >= 2 {
			return d - 2, d
		}
	}
	return limit - 3, limit - 1
}

// Disappearance measures how quickly a test domain leaves the list
// after its measurement stops (the paper: within 1–2 days). It returns
// the number of days the domain stays listed after the injection ends.
func Disappearance(model *traffic.Model, opts providers.Options, probes, days, stopDay int) (int, error) {
	inj := traffic.NewInjector()
	const target = "disappearance-test.atlas-exp.net"
	Schedule(inj, Measurement{Target: target, Probes: probes, QueriesPerProbe: 1, Start: 0, End: stopDay})
	opts.Injector = inj
	opts.Enabled = []string{providers.Umbrella}
	g, err := providers.NewGenerator(model, opts)
	if err != nil {
		return 0, err
	}
	arch, err := g.Run(days)
	if err != nil {
		return 0, err
	}
	if arch.Get(providers.Umbrella, toplist.Day(stopDay-1)).RankOf(target) == 0 {
		return 0, fmt.Errorf("atlas: test domain never entered the list")
	}
	for d := stopDay; d < days; d++ {
		if arch.Get(providers.Umbrella, toplist.Day(d)).RankOf(target) == 0 {
			return d - stopDay, nil
		}
	}
	return days - stopDay, nil
}
