package listserv

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/simnet"
	"repro/internal/toplist"
)

// Zone publication. The paper's §8 "general population" baseline is
// the set of all com/net/org domains, obtained from the registries'
// TLD zone files — researchers download these the way they download
// top lists. WithZones teaches a Server to publish zone files at
//
//	GET /v1/zones/{tld}.zone
//
// and Client.FetchZone downloads and parses one back.

// ZoneSource supplies zone contents per TLD.
type ZoneSource interface {
	// ZoneTLDs lists the published TLDs.
	ZoneTLDs() []string
	// ZoneDomains returns the registered base domains under tld.
	ZoneDomains(tld string) []string
}

// StaticZones is a map-backed ZoneSource.
type StaticZones map[string][]string

// ZoneTLDs implements ZoneSource.
func (s StaticZones) ZoneTLDs() []string {
	out := make([]string, 0, len(s))
	for tld := range s {
		out = append(out, tld)
	}
	sort.Strings(out)
	return out
}

// ZoneDomains implements ZoneSource.
func (s StaticZones) ZoneDomains(tld string) []string { return s[tld] }

// zoneHost holds the server-side zone state.
type zoneHost struct {
	source ZoneSource

	mu    sync.Mutex
	cache map[string]blob
}

// WithZones enables zone publication on the server. It must be called
// before the server starts handling requests (i.e. right after
// NewServer/NewServerAt).
func (s *Server) WithZones(source ZoneSource) *Server {
	zh := &zoneHost{source: source, cache: make(map[string]blob)}
	s.mux.HandleFunc("GET /v1/zones/{file}", zh.handle)
	return s
}

func (zh *zoneHost) handle(w http.ResponseWriter, r *http.Request) {
	file := r.PathValue("file")
	const suffix = ".zone"
	if len(file) <= len(suffix) || file[len(file)-len(suffix):] != suffix {
		http.NotFound(w, r)
		return
	}
	tld := file[:len(file)-len(suffix)]
	if !zh.published(tld) {
		http.NotFound(w, r)
		return
	}
	b, err := zh.blobFor(tld)
	if err != nil {
		http.Error(w, "zone encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/dns; charset=utf-8")
	w.Header().Set("ETag", b.etag)
	http.ServeContent(w, r, file, toplist.Epoch, bytes.NewReader(b.data))
}

func (zh *zoneHost) published(tld string) bool {
	for _, t := range zh.source.ZoneTLDs() {
		if t == tld {
			return true
		}
	}
	return false
}

func (zh *zoneHost) blobFor(tld string) (blob, error) {
	zh.mu.Lock()
	defer zh.mu.Unlock()
	if b, ok := zh.cache[tld]; ok {
		return b, nil
	}
	var buf bytes.Buffer
	if err := simnet.WriteZone(&buf, tld, zh.source.ZoneDomains(tld), nil); err != nil {
		return blob{}, err
	}
	sum := sha256.Sum256(buf.Bytes())
	b := blob{data: buf.Bytes(), etag: `"` + hex.EncodeToString(sum[:16]) + `"`}
	zh.cache[tld] = b
	return b, nil
}

// ZonePath returns the server-relative path of a TLD zone file.
func ZonePath(tld string) string { return "/v1/zones/" + tld + ".zone" }

// FetchZone downloads and parses one TLD zone file, returning the
// registered domains. It retries transient failures like the snapshot
// fetches.
func (c *Client) FetchZone(ctx context.Context, tld string) ([]string, error) {
	url := c.baseURL + ZonePath(tld)
	var domains []string
	err := c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			return &transientError{err}
		}
		defer drain(resp.Body)
		if err := classifyStatus(url, resp.StatusCode); err != nil {
			return err
		}
		origin, ds, err := simnet.ParseZone(io.LimitReader(resp.Body, c.maxBody))
		if err != nil {
			return &transientError{err}
		}
		if origin != tld {
			return fmt.Errorf("listserv: zone origin %q, requested %q", origin, tld)
		}
		domains = ds
		return nil
	})
	if err != nil {
		return nil, err
	}
	return domains, nil
}
