package traffic

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint returns a stable hash of the model's scalar parameters —
// everything that, together with the world, determines every signal
// value SignalRange can produce. Distributed generation pins it in the
// shard job spec: a worker rebuilds the model from the same world
// config and refuses the job if its parameter fingerprint differs,
// turning silent calibration skew between coordinator and worker
// builds into an explicit protocol error.
//
// DisableKernel is deliberately excluded: the kernel and the reference
// path are bitwise identical (the equivalence tests pin that), so the
// flag changes wall-clock, never bytes.
func (m *Model) Fingerprint() string {
	params := []float64{
		m.SigmaWeb, m.SigmaDNS, m.SigmaLinkWeekly, m.SigmaLinkDaily,
		m.WeekendExpWeb, m.WeekendExpDNS,
		m.DeadDNSFactor, m.UniqueClientScale,
		m.WebCountScale, m.DNSCountScale, m.LinkCountScale, m.CountSigma,
		m.PanelVisitorScale, m.BacklinkSubnetScale,
	}
	h := sha256.New()
	var buf [8]byte
	for _, v := range params {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}
