package simnet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeNameRoundTrip(t *testing.T) {
	for _, name := range []string{
		"example.com", "www.example.com", "a.b.c.d.e.f.example.co.uk", "",
	} {
		enc, err := encodeName(name)
		if err != nil {
			t.Fatal(err)
		}
		got, next, err := decodeName(enc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != name {
			t.Fatalf("round trip %q -> %q", name, got)
		}
		if next != len(enc) {
			t.Fatalf("offset %d want %d", next, len(enc))
		}
	}
}

func TestEncodeNameErrors(t *testing.T) {
	if _, err := encodeName("a..b"); err == nil {
		t.Fatal("empty label should fail")
	}
	long := make([]byte, 64)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := encodeName(string(long) + ".com"); err == nil {
		t.Fatal("long label should fail")
	}
	var big bytes.Buffer
	for i := 0; i < 40; i++ {
		big.WriteString("abcdefg.")
	}
	big.WriteString("com")
	if _, err := encodeName(big.String()); err == nil {
		t.Fatal("long name should fail")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		ID:        0xBEEF,
		Response:  true,
		Recursion: true,
		RCode:     RCodeNoError,
		Question:  Question{Name: "www.example.com", Type: TypeA, Class: ClassIN},
		Answers: []ResourceRecord{
			{Name: "www.example.com", Type: TypeCNAME, Class: ClassIN, TTL: 300,
				Data: mustEncodeName(t, "edge.example-com.edgekey.net")},
			{Name: "edge.example-com.edgekey.net", Type: TypeA, Class: ClassIN, TTL: 30,
				Data: []byte{1, 2, 3, 4}},
		},
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || !got.Response || got.RCode != RCodeNoError {
		t.Fatalf("header %+v", got)
	}
	if got.Question != m.Question {
		t.Fatalf("question %+v", got.Question)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers %d", len(got.Answers))
	}
	// The first answer's owner was emitted as a compression pointer and
	// must decode back to the question name.
	if got.Answers[0].Name != "www.example.com" {
		t.Fatalf("compressed owner %q", got.Answers[0].Name)
	}
	if got.Answers[1].TTL != 30 || got.Answers[1].Data[3] != 4 {
		t.Fatalf("answer 2 %+v", got.Answers[1])
	}
}

func mustEncodeName(t *testing.T, name string) []byte {
	t.Helper()
	b, err := encodeName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCompressionSavesBytes(t *testing.T) {
	build := func(compress bool) int {
		owner := "some.fairly-long-name.example.com"
		rrName := owner
		if !compress {
			rrName = "other.fairly-long-name.example.org"
		}
		m := &Message{
			ID: 1, Response: true,
			Question: Question{Name: owner, Type: TypeA, Class: ClassIN},
			Answers: []ResourceRecord{
				{Name: rrName, Type: TypeA, Class: ClassIN, TTL: 60, Data: []byte{1, 2, 3, 4}},
			},
		}
		wire, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return len(wire)
	}
	if build(true) >= build(false) {
		t.Fatal("compression pointer did not shrink the message")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeMessage([]byte{1, 2, 3}); err != ErrShortMessage {
		t.Fatalf("short: %v", err)
	}
	// Pointer loop: name at offset 12 pointing to itself.
	m := &Message{ID: 1, Question: Question{Name: "a.com", Type: TypeA, Class: ClassIN}}
	wire, _ := m.Encode()
	wire[12] = 0xC0
	wire[13] = 12
	if _, err := DecodeMessage(wire); err != ErrPointerLoop {
		t.Fatalf("loop: %v", err)
	}
	// Trailing junk.
	wire2, _ := m.Encode()
	wire2 = append(wire2, 0xFF)
	if _, err := DecodeMessage(wire2); err != ErrTrailingJunk {
		t.Fatalf("junk: %v", err)
	}
}

func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = DecodeMessage(raw) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAnswerFromResponse(t *testing.T) {
	resp := Response{
		RCode: RCodeNoError,
		Chain: []string{"x-com.fastly.net"},
		A:     0x01020304,
		AAAA:  true,
		CAA:   true,
		TTL:   300,
	}
	// A query: CNAME + terminal A record.
	m := BuildAnswer(7, "x.com", TypeA, resp)
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers %d", len(got.Answers))
	}
	if got.Answers[0].Type != TypeCNAME || got.Answers[1].Type != TypeA {
		t.Fatalf("types %v %v", got.Answers[0].Type, got.Answers[1].Type)
	}
	target, _, err := decodeName(got.Answers[0].Data, 0)
	if err != nil || target != "x-com.fastly.net" {
		t.Fatalf("cname target %q %v", target, err)
	}
	// AAAA query.
	m6 := BuildAnswer(8, "x.com", TypeAAAA, resp)
	if m6.Answers[len(m6.Answers)-1].Type != TypeAAAA {
		t.Fatal("AAAA missing")
	}
	// CAA query.
	mc := BuildAnswer(9, "x.com", TypeCAA, resp)
	last := mc.Answers[len(mc.Answers)-1]
	if last.Type != TypeCAA {
		t.Fatal("CAA missing")
	}
	flags, tag, value, err := DecodeCAA(last.Data)
	if err != nil || flags != 0 || tag != "issue" || value != "ca.example" {
		t.Fatalf("caa %v %q %q %v", flags, tag, value, err)
	}
	// NXDOMAIN: no answers.
	nx := BuildAnswer(10, "gone.com", TypeA, Response{RCode: RCodeNXDomain})
	if len(nx.Answers) != 0 || nx.RCode != RCodeNXDomain {
		t.Fatalf("nx %+v", nx)
	}
}

func TestCAAEncodeDecode(t *testing.T) {
	data := EncodeCAA(128, "issuewild", "pki.example; policy=ev")
	flags, tag, value, err := DecodeCAA(data)
	if err != nil {
		t.Fatal(err)
	}
	if flags != 128 || tag != "issuewild" || value != "pki.example; policy=ev" {
		t.Fatalf("%v %q %q", flags, tag, value)
	}
	if _, _, _, err := DecodeCAA([]byte{1}); err == nil {
		t.Fatal("short CAA should fail")
	}
	if _, _, _, err := DecodeCAA([]byte{0, 10, 'a'}); err == nil {
		t.Fatal("truncated tag should fail")
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[uint16]string{
		TypeA: "A", TypeAAAA: "AAAA", TypeCNAME: "CNAME", TypeCAA: "CAA", 99: "TYPE99",
	} {
		if got := TypeString(ty); got != want {
			t.Fatalf("TypeString(%d) = %q", ty, got)
		}
	}
}

func BenchmarkMessageEncode(b *testing.B) {
	m := BuildAnswer(1, "www.example.com", TypeA, Response{
		RCode: RCodeNoError, Chain: []string{"x.edgekey.net"}, A: 0x01020304, TTL: 300,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMessageDecode(b *testing.B) {
	m := BuildAnswer(1, "www.example.com", TypeA, Response{
		RCode: RCodeNoError, Chain: []string{"x.edgekey.net"}, A: 0x01020304, TTL: 300,
	})
	wire, err := m.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMessage(wire); err != nil {
			b.Fatal(err)
		}
	}
}
