package population

import (
	"fmt"

	"repro/internal/simnet"
)

// dayZone adapts the world to simnet.Zone for a fixed measurement day.
type dayZone struct {
	w   *World
	day int
}

// ZoneAt returns the authoritative DNS view of the world on the given
// day (domain birth/death is day-dependent).
func (w *World) ZoneAt(day int) simnet.Zone { return dayZone{w: w, day: day} }

// Lookup implements simnet.Zone: NXDOMAIN for unknown, unborn, dead,
// junk, and ghost names; otherwise the domain's records, with a CNAME
// chain when the domain is CDN-fronted or alias-hosted.
func (z dayZone) Lookup(name string) simnet.Response {
	id, ok := z.w.byName[name]
	if !ok {
		return simnet.Response{RCode: simnet.RCodeNXDomain}
	}
	d := &z.w.Domains[id]
	if !d.Exists(z.day) {
		return simnet.Response{RCode: simnet.RCodeNXDomain}
	}
	resp := simnet.Response{
		RCode: simnet.RCodeNoError,
		A:     d.IPv4,
		AAAA:  d.Flags.Has(FlagIPv6),
		TTL:   d.TTL,
	}
	// CAA is measured at the base domain (the paper counts base domains
	// with an issue/issuewild set).
	base := &z.w.Domains[d.BaseID]
	resp.CAA = base.Flags.Has(FlagCAA)
	if d.Flags.Has(FlagCNAME) {
		if d.CDN != 0 {
			resp.Chain = []string{z.w.CDNs.CNAMETarget(d.Base, d.CDN)}
		} else {
			resp.Chain = []string{aliasTarget(d)}
		}
	}
	return resp
}

// aliasTarget synthesises a non-CDN hosting CNAME target.
func aliasTarget(d *Domain) string {
	return fmt.Sprintf("web%d.hosting-%d.net", d.Seed%8, d.ASN)
}

// dayProber adapts the world to simnet.WebProber for a fixed day.
type dayProber struct {
	w   *World
	day int
}

// ProberAt returns the HTTPS/HTTP2 probing view of the world on day.
func (w *World) ProberAt(day int) simnet.WebProber { return dayProber{w: w, day: day} }

// Probe implements simnet.WebProber from the domain's capability flags.
func (p dayProber) Probe(name string) simnet.ProbeResult {
	id, ok := p.w.byName[name]
	if !ok {
		return simnet.ProbeResult{}
	}
	d := &p.w.Domains[id]
	if !d.Exists(p.day) {
		return simnet.ProbeResult{}
	}
	res := simnet.ProbeResult{
		Reachable: true,
		TLS:       d.Flags.Has(FlagTLS),
		HTTP2:     d.Flags.Has(FlagHTTP2),
		Redirects: int(d.Seed % 4),
	}
	if d.Flags.Has(FlagHSTS) {
		res.HSTSMaxAge = 31536000
		// Emit a realistic raw header; half the deployments also set
		// includeSubDomains, as large crawls observe.
		res.HSTSHeader = "max-age=31536000"
		if d.Seed%2 == 0 {
			res.HSTSHeader += "; includeSubDomains"
		}
	}
	if res.Redirects > simnet.MaxRedirects {
		res.HTTP2 = false
	}
	return res
}

// ResolveWWW reports whether a www-prefixed variant of name exists in
// the world; the paper's campaigns query domains both raw and
// www-prefixed.
func (w *World) ResolveWWW(name string) (string, bool) {
	www := "www." + name
	_, ok := w.byName[www]
	return www, ok
}
