package toplist

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// randomList builds a small list with names derived deterministically
// from the rng.
func randomList(rng *rand.Rand) *List {
	n := 1 + rng.Intn(20)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("d%04d-%02d.example.com", rng.Intn(5000), i)
	}
	return New(names)
}

// TestDiskStoreRoundTripProperty is the round-trip property pinning
// DiskStore to Archive: for random day ranges, provider subsets, and
// gap patterns, Put into both stores, reopen the disk store cold, and
// require bitwise-equal Get results plus Missing()/Complete() parity
// via the manifest.
func TestDiskStoreRoundTripProperty(t *testing.T) {
	providers := []string{"alexa", "umbrella", "majestic", "quantcast"}
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		first := Day(rng.Intn(40) - 20)
		days := 1 + rng.Intn(12)
		last := first + Day(days-1)

		dir := t.TempDir()
		disk, err := CreateDiskStore(dir, first, last)
		if err != nil {
			t.Fatal(err)
		}
		mem := NewArchive(first, last)

		nProviders := 1 + rng.Intn(len(providers))
		expected := providers[:1+rng.Intn(nProviders)]
		if err := disk.Expect(expected...); err != nil {
			t.Fatal(err)
		}
		mem.Expect(expected...)

		for _, p := range providers[:nProviders] {
			for d := first; d <= last; d++ {
				if rng.Float64() < 0.25 {
					continue // leave a gap
				}
				l := randomList(rng)
				if err := disk.Put(p, d, l); err != nil {
					t.Fatalf("trial %d: disk put: %v", trial, err)
				}
				if err := mem.Put(p, d, l); err != nil {
					t.Fatalf("trial %d: mem put: %v", trial, err)
				}
			}
		}

		// Reopen cold so every read decodes from disk, not the write
		// cache.
		reopened, err := OpenArchive(dir)
		if err != nil {
			t.Fatalf("trial %d: reopen: %v", trial, err)
		}
		for _, src := range []Source{disk, reopened} {
			if src.First() != mem.First() || src.Last() != mem.Last() || src.Days() != mem.Days() {
				t.Fatalf("trial %d: range (%v,%v,%d) vs (%v,%v,%d)", trial,
					src.First(), src.Last(), src.Days(), mem.First(), mem.Last(), mem.Days())
			}
			if !reflect.DeepEqual(src.Providers(), mem.Providers()) {
				t.Fatalf("trial %d: providers %v vs %v", trial, src.Providers(), mem.Providers())
			}
			for _, p := range providers {
				for d := first - 2; d <= last+2; d++ {
					want, got := mem.Get(p, d), src.Get(p, d)
					if (want == nil) != (got == nil) {
						t.Fatalf("trial %d: %s %v: nil mismatch (mem %v, disk %v)", trial, p, d, want != nil, got != nil)
					}
					if want != nil && !reflect.DeepEqual(want.Names(), got.Names()) {
						t.Fatalf("trial %d: %s %v: names differ", trial, p, d)
					}
				}
			}
		}
		if !reflect.DeepEqual(reopened.Expected(), mem.Expected()) {
			t.Fatalf("trial %d: expected set %v vs %v after reopen", trial, reopened.Expected(), mem.Expected())
		}
		if !reflect.DeepEqual(reopened.Missing(), mem.Missing()) {
			t.Fatalf("trial %d: Missing differs after reopen:\n disk %v\n mem  %v", trial, reopened.Missing(), mem.Missing())
		}
		if reopened.Complete() != mem.Complete() {
			t.Fatalf("trial %d: Complete %v vs %v", trial, reopened.Complete(), mem.Complete())
		}
	}
}

func TestDiskStoreRejectsBadPuts(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 4, New([]string{"a.com"})); err == nil {
		t.Fatal("day beyond range accepted")
	}
	if err := ds.Put("alexa", -1, New([]string{"a.com"})); err == nil {
		t.Fatal("day before range accepted")
	}
	if err := ds.Put("alexa", 0, nil); err == nil {
		t.Fatal("nil list accepted")
	}
}

func TestDiskStoreCreateOverExistingFails(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateDiskStore(dir, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateDiskStore(dir, 0, 1); err == nil {
		t.Fatal("second create over the same dir should fail")
	}
	if _, err := OpenArchive(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("open of a dir without a manifest should fail")
	}
}

func TestDiskStoreExtendTo(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 0, New([]string{"a.com"})); err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 2, New([]string{"late.com"})); err == nil {
		t.Fatal("day 2 accepted before extend")
	}
	if err := ds.ExtendTo(4); err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 2, New([]string{"late.com"})); err != nil {
		t.Fatal(err)
	}
	// Extending never shrinks.
	if err := ds.ExtendTo(1); err != nil {
		t.Fatal(err)
	}
	if ds.Last() != 4 || ds.Days() != 5 {
		t.Fatalf("range after extend: last %v, days %d", ds.Last(), ds.Days())
	}
	reopened, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Days() != 5 || reopened.Get("alexa", 2) == nil {
		t.Fatal("extension not durable")
	}
	if !reopened.Has("alexa", 0) || reopened.Has("alexa", 1) {
		t.Fatal("Has disagrees with stored set")
	}
}

// TestDiskStoreAtomicity: a leftover temp file (simulating a crash
// mid-write) is neither served nor counted as present after reopen.
func TestDiskStoreCrashLeftoversIgnored(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 0, New([]string{"a.com"})); err != nil {
		t.Fatal(err)
	}
	// Fake an interrupted write of day 1.
	tmp := filepath.Join(dir, "alexa", Day(1).String()+snapshotExt+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Has("alexa", 1) || reopened.Get("alexa", 1) != nil {
		t.Fatal("partial temp file served as a snapshot")
	}
	if len(reopened.Missing()) != 1 {
		t.Fatalf("Missing = %v, want exactly day 1", reopened.Missing())
	}
}

// TestDiskStoreConcurrentGet exercises the read cache under parallel
// readers (the experiment pool fans out over one Source).
func TestDiskStoreConcurrentGet(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[Day][]string)
	for d := Day(0); d <= 9; d++ {
		l := New([]string{fmt.Sprintf("rank1-%d.com", d), fmt.Sprintf("rank2-%d.com", d)})
		if err := ds.Put("alexa", d, l); err != nil {
			t.Fatal(err)
		}
		want[d] = l.Names()
	}
	reopened, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 4; pass++ {
				for d := Day(0); d <= 9; d++ {
					l := reopened.Get("alexa", d)
					if l == nil || !reflect.DeepEqual(l.Names(), want[d]) {
						errs <- fmt.Errorf("day %v: wrong snapshot", d)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
