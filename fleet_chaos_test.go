package toplists

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/toplist"
)

// chaosGate fronts an archive server so a test can kill the node at a
// chosen moment: arm(n) lets n more snapshot downloads through, after
// which every request — manifest included — is answered 503 until the
// listener itself is torn down. That is the closest an httptest server
// gets to `kill -9` at a deterministic point mid-replication.
type chaosGate struct {
	h http.Handler

	mu     sync.Mutex
	budget int // <0: unlimited; 0: dead; >0: snapshot downloads left
}

func (g *chaosGate) arm(n int) {
	g.mu.Lock()
	g.budget = n
	g.mu.Unlock()
}

func (g *chaosGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	if g.budget == 0 {
		g.mu.Unlock()
		http.Error(w, "node down", http.StatusServiceUnavailable)
		return
	}
	if g.budget > 0 && strings.Contains(r.URL.Path, "/snapshots/") {
		g.budget--
	}
	g.mu.Unlock()
	g.h.ServeHTTP(w, r)
}

// fastPeerOpts keeps chaos-test failover snappy: one attempt per wire
// call (the PeerSet's own failover replaces the client's retry loop)
// and a benched peer stays benched for the whole test.
func fastPeerOpts() []PeerOption {
	return []PeerOption{
		WithPeerBackoff(time.Hour, time.Hour),
		WithPeerRemoteOptions(
			toplist.WithRemoteMaxAttempts(1),
			toplist.WithRemoteBaseBackoff(time.Millisecond),
		),
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFleetChaosConvergence is the acceptance scenario for the
// self-healing fleet: node A simulates once and serves its archive;
// node C replicates fully; then A is killed after handing node B only
// a handful of snapshots, and a slot on B's disk is corrupted behind
// its back. The survivors must converge — B finishes replication from
// C, the verify sweep quarantines the corrupt slot and heals it with a
// hash-matching copy — and both render table5 byte-identically to the
// original without the simulation engine ever running again.
func TestFleetChaosConvergence(t *testing.T) {
	scale := smallScale()
	ctx := context.Background()
	base := t.TempDir()

	// Node A: simulate once, persisting, and render the reference.
	dirA := filepath.Join(base, "a")
	labA := NewLab(WithScale(scale), WithArchiveDir(dirA))
	refRes, err := labA.Run(ctx, "table5")
	if err != nil {
		t.Fatal(err)
	}
	srcA, err := OpenArchive(dirA)
	if err != nil {
		t.Fatal(err)
	}
	gate := &chaosGate{h: ArchiveHandler(srcA), budget: -1}
	srvA := httptest.NewServer(gate)
	defer srvA.Close()

	// From here on the engine must never run again: replication and
	// healing are archive-to-archive byte copies.
	runsBefore := engine.RunCount()

	// Node C: bootstrap from A and replicate fully while A is healthy.
	dirC := filepath.Join(base, "c")
	peersC, err := NewPeerSet([]string{srvA.URL}, fastPeerOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	storeC, err := BootstrapArchive(ctx, dirC, peersC)
	if err != nil {
		t.Fatal(err)
	}
	mirrorC := NewMirror(storeC, peersC)
	mirrorC.SyncOnce(ctx)
	if !storeC.Complete() {
		t.Fatalf("node C incomplete after sync: %d missing", len(storeC.Missing()))
	}
	srvC := httptest.NewServer(ArchiveHandler(storeC))
	defer srvC.Close()

	// Node B bootstraps against [A, C], then A dies five snapshots into
	// B's replication. B's mirror loops must fail over to C and finish.
	dirB := filepath.Join(base, "b")
	peersB, err := NewPeerSet([]string{srvA.URL, srvC.URL}, fastPeerOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	storeB, err := BootstrapArchive(ctx, dirB, peersB)
	if err != nil {
		t.Fatal(err)
	}
	mirrorB := NewMirror(storeB, peersB)
	gate.arm(5)

	loopCtx, stopLoops := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for _, loop := range mirrorB.Loops(2*time.Millisecond, 0) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			loop(loopCtx)
		}()
	}
	waitFor(t, "node B to finish replicating", storeB.Complete)
	stopLoops()
	wg.Wait()

	if mirrorB.PeerFailures() == 0 {
		t.Fatal("node A died mid-replication but no peer failure was recorded")
	}
	if got := peersB.Peers()[0].Failures(); got == 0 {
		t.Fatal("dead node A shows zero consecutive failures")
	}

	// Now A is gone for good.
	srvA.Close()

	// Chaos, part two: corrupt a slot on B's disk behind its back. Has
	// stays true (the slot is present, just rotten), the verify sweep
	// flags it, and the heal pass re-fetches a copy whose content hash
	// matches the locally persisted one — from C, since A is dead.
	day := storeB.First()
	wantHash := storeB.RawHash(Alexa, day)
	if wantHash == "" {
		t.Fatal("no persisted hash for the slot about to be corrupted")
	}
	path := filepath.Join(dirB, Alexa, day.String()+".csv.gz")
	if err := os.WriteFile(path, []byte("rotten bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := mirrorB.VerifySweep(); n != 1 {
		t.Fatalf("verify sweep flagged %d slots, want 1", n)
	}
	mirrorB.SyncOnce(ctx)
	if got := mirrorB.Healed(); got != 1 {
		t.Fatalf("healed = %d, want 1", got)
	}
	if got := storeB.RawHash(Alexa, day); got != wantHash {
		t.Fatalf("healed slot hash = %q, want the original %q", got, wantHash)
	}
	if _, err := storeB.GetRaw(Alexa, day); err != nil {
		t.Fatalf("healed slot unreadable: %v", err)
	}

	// Convergence: every surviving node holds byte-identical snapshots
	// (same persisted content hash for every slot as the original).
	for _, p := range srcA.Providers() {
		for d := srcA.First(); d <= srcA.Last(); d++ {
			want := srcA.RawHash(p, d)
			for name, ds := range map[string]*DiskStore{"B": storeB, "C": storeC} {
				if got := ds.RawHash(p, d); got != want {
					t.Fatalf("node %s: %s day %d hash %q, want %q", name, p, d, got, want)
				}
			}
		}
	}

	// Steady state: one more round is a conditional manifest check per
	// peer — 304s, zero copies.
	copied, notModified := mirrorB.Copied(), mirrorB.NotModified()
	mirrorB.SyncOnce(ctx)
	if got := mirrorB.Copied(); got != copied {
		t.Fatalf("steady-state round copied %d snapshots", got-copied)
	}
	if got := mirrorB.NotModified(); got <= notModified {
		t.Fatal("steady-state round recorded no 304")
	}

	// The punchline: both survivors regenerate table5 byte-identically
	// to the pre-chaos original, and the engine never ran again.
	for name, ds := range map[string]*DiskStore{"B": storeB, "C": storeC} {
		res, err := NewLab(WithScale(scale), WithSource(ds)).Run(ctx, "table5")
		if err != nil {
			t.Fatalf("node %s: %v", name, err)
		}
		if res.Render() != refRes.Render() {
			t.Fatalf("node %s renders a different table5:\n--- original ---\n%s\n--- node %s ---\n%s",
				name, refRes.Render(), name, res.Render())
		}
	}
	if got := engine.RunCount(); got != runsBefore {
		t.Fatalf("engine invoked %d times during replication/healing", got-runsBefore)
	}
}
