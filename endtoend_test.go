package toplists

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/hygiene"
	"repro/internal/listserv"
	"repro/internal/toplist"
)

// TestEndToEndCollectionPipeline exercises the full §4→§6→§9 pipeline
// the way a researcher would run it against real providers: simulate
// the ecosystem, publish the archive over HTTP in the providers'
// publication format, collect it back with a Mirror, verify the
// mirrored archive is identical, and then run the stability analysis
// and the hygiene recommendations on the *collected* data.
func TestEndToEndCollectionPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end network pipeline")
	}
	scale := TestScale()
	scale.Population.Days = 21
	study, err := Simulate(context.Background(), WithScale(scale))
	if err != nil {
		t.Fatal(err)
	}

	// Publish (with the general-population zone files) and collect.
	zones := listserv.StaticZones{
		"com": study.World.ZoneDomains(0, "com"),
		"net": study.World.ZoneDomains(0, "net"),
		"org": study.World.ZoneDomains(0, "org"),
	}
	ts := httptest.NewServer(listserv.NewServer(study.Archive).WithZones(zones))
	defer ts.Close()
	client := listserv.NewClient(ts.URL)
	mirror := listserv.NewMirror(client, study.Archive.Providers())
	ctx := context.Background()
	collected, err := mirror.Collect(ctx, study.Archive.First(), study.Archive.Last())
	if err != nil {
		t.Fatal(err)
	}
	if !collected.Complete() {
		t.Fatal("collected archive incomplete")
	}

	// Byte-identical snapshots.
	for _, p := range study.Archive.Providers() {
		toplist.EachDay(study.Archive, func(d toplist.Day) {
			want := study.Archive.Get(p, d).Names()
			got := collected.Get(p, d).Names()
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s %v: mirrored snapshot differs", p, d)
			}
		})
	}

	// The zone download matches the world's population source.
	com, err := client.FetchZone(ctx, "com")
	if err != nil {
		t.Fatal(err)
	}
	if len(com) == 0 || len(com) != len(zones["com"]) {
		t.Fatalf("com zone = %d domains, want %d", len(com), len(zones["com"]))
	}

	// Analyses on collected data agree with analyses on the original.
	origCtx := study.Analysis
	collCtx := analysis.NewContext(study.World, collected)
	origTau := origCtx.KendallDayToDay(Alexa, scale.HeadSize)
	collTau := collCtx.KendallDayToDay(Alexa, scale.HeadSize)
	if !reflect.DeepEqual(origTau, collTau) {
		t.Fatal("stability analysis differs between original and mirrored archive")
	}

	// The §9 recommendations run end to end on the collected archive.
	zone := study.World.ZoneAt(int(study.Archive.Last()))
	imp := hygiene.StabilityImpact(collected, Umbrella, hygiene.Recommended(zone), 0)
	if imp.Days != collected.Days() {
		t.Fatalf("hygiene saw %d days, want %d", imp.Days, collected.Days())
	}
	if imp.MeanDrop <= 0 {
		t.Error("umbrella cleaning dropped nothing — junk generation broken?")
	}
	t.Logf("pipeline ok: %d days mirrored, umbrella drop %.1f%%, raw churn %.2f%%",
		collected.Days(), 100*imp.MeanDrop, 100*imp.RawChurn)
}
