package fleet

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/toplist"
)

// Mirror continuously replicates a local DiskStore from a PeerSet over
// the archive wire API. One SyncOnce round costs, per reachable peer,
// a single conditional manifest GET — answered 304 in steady state —
// and, when the peer's manifest changed (its ETag covers the content
// fingerprint, so any filled or repaired slot changes it), a walk that
// byte-copies every snapshot the local store lacks (GetRaw → PutRaw;
// the one decode is PutRaw's write validation). The engine and the CSV
// codecs are never involved beyond that: replication moves compressed
// documents.
//
// Healing: VerifySweep integrity-checks the local store; slots that
// fail are removed from the mirror's has-view and re-fetched on the
// next round from the healthiest peer holding a copy with the locally
// persisted content hash (which survives on-disk byte corruption — it
// lives in the manifest, the corrupted file does not change it).
//
// All methods are safe for concurrent use; the sync and verify loops
// (Loops) run as independent Daemon background tasks.
type Mirror struct {
	store  *toplist.DiskStore
	peers  *PeerSet
	logger *log.Logger

	metrics      *serve.Metrics
	rounds       *serve.Counter
	syncs        *serve.Counter
	notModified  *serve.Counter
	copied       *serve.Counter
	healed       *serve.Counter
	peerFailures *serve.Counter
	sweeps       *serve.Counter

	mu      sync.Mutex
	drained map[string]bool // peer URL → fully copied at its last-seen manifest
	heal    map[slot]bool   // locally corrupt slots awaiting re-fetch
}

// slot is one (provider, day) key.
type slot struct {
	provider string
	day      toplist.Day
}

// MirrorOption configures NewMirror.
type MirrorOption func(*Mirror)

// WithMirrorLogger sets the mirror's logger (default: silent).
func WithMirrorLogger(l *log.Logger) MirrorOption {
	return func(m *Mirror) { m.logger = l }
}

// WithMirrorMetrics registers the mirror's counters and per-peer lag
// gauges on reg instead of a private registry, so cmd/mirrord exposes
// them on its /metrics beside the HTTP series.
func WithMirrorMetrics(reg *serve.Metrics) MirrorOption {
	return func(m *Mirror) { m.metrics = reg }
}

// NewMirror builds a mirror replicating store from peers. The peer
// set's failure accounting feeds the mirror's
// fleet_peer_failures_total counter.
func NewMirror(store *toplist.DiskStore, peers *PeerSet, opts ...MirrorOption) *Mirror {
	m := &Mirror{
		store:   store,
		peers:   peers,
		drained: make(map[string]bool),
		heal:    make(map[slot]bool),
	}
	for _, o := range opts {
		o(m)
	}
	if m.metrics == nil {
		m.metrics = serve.NewMetrics()
	}
	m.rounds = m.metrics.Counter("fleet_rounds_total", "Sync rounds completed.")
	m.syncs = m.metrics.Counter("fleet_manifest_syncs_total", "Peer manifests that changed and were folded in.")
	m.notModified = m.metrics.Counter("fleet_manifest_304_total", "Conditional manifest revalidations answered 304 (steady state).")
	m.copied = m.metrics.Counter("fleet_slots_copied_total", "Snapshot documents byte-copied from peers.")
	m.healed = m.metrics.Counter("fleet_corrupt_healed_total", "Locally corrupt slots re-fetched from a peer.")
	m.peerFailures = m.metrics.Counter("fleet_peer_failures_total", "Failed peer conversations (open, revalidate, fetch).")
	m.sweeps = m.metrics.Counter("fleet_verify_sweeps_total", "Local integrity sweeps completed.")
	peers.onFail = func(string) { m.peerFailures.Add(1) }
	return m
}

// Store returns the local store the mirror replicates into.
func (m *Mirror) Store() *toplist.DiskStore { return m.store }

// Counter accessors for tests and status logging.

// Rounds returns completed sync rounds.
func (m *Mirror) Rounds() int64 { return m.rounds.Value() }

// Copied returns snapshot documents byte-copied from peers.
func (m *Mirror) Copied() int64 { return m.copied.Value() }

// NotModified returns manifest revalidations answered 304.
func (m *Mirror) NotModified() int64 { return m.notModified.Value() }

// Healed returns locally corrupt slots repaired from a peer.
func (m *Mirror) Healed() int64 { return m.healed.Value() }

// PeerFailures returns failed peer conversations.
func (m *Mirror) PeerFailures() int64 { return m.peerFailures.Value() }

// Healing returns how many locally corrupt slots still await repair.
func (m *Mirror) Healing() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.heal)
}

func (m *Mirror) logf(format string, args ...any) {
	if m.logger != nil {
		m.logger.Printf(format, args...)
	}
}

// SyncOnce runs one replication round: revalidate each available
// peer's manifest (healthiest first), drain whatever a changed peer
// holds that the local store lacks, then attempt to heal any slots a
// VerifySweep flagged. Per-peer trouble is recorded against that peer
// and the round moves on — a dead peer costs one failed conversation,
// never a stalled round.
func (m *Mirror) SyncOnce(ctx context.Context) {
	for _, p := range m.peers.Available() {
		if ctx.Err() != nil {
			return
		}
		m.syncPeer(ctx, p)
	}
	m.healPass(ctx)
	m.rounds.Add(1)
}

// syncPeer revalidates one peer and drains it if anything changed.
func (m *Mirror) syncPeer(ctx context.Context, p *Peer) {
	rem, err := p.Remote(ctx)
	if err != nil {
		m.logf("peer %s: open: %v", p.URL(), err)
		return
	}
	changed, err := rem.Revalidate(ctx)
	if err != nil {
		p.fail()
		m.logf("peer %s: revalidate: %v", p.URL(), err)
		return
	}
	m.peerLag(p).Set(lagDays(m.store.Last(), rem.Last()))
	m.mu.Lock()
	if changed {
		m.drained[p.URL()] = false
	}
	drained := m.drained[p.URL()]
	m.mu.Unlock()
	if changed {
		m.syncs.Add(1)
	} else {
		m.notModified.Add(1)
		if drained {
			return // steady state: one conditional GET, nothing else
		}
	}
	if err := m.drainPeer(ctx, p, rem); err != nil {
		if ctx.Err() == nil {
			p.fail()
			m.logf("peer %s: drain: %v", p.URL(), err)
		}
		return
	}
	p.ok()
	m.mu.Lock()
	m.drained[p.URL()] = true
	m.mu.Unlock()
}

// drainPeer byte-copies every snapshot the peer holds and the local
// store lacks. The local range extends to cover the peer's (forward
// only — a DiskStore range never shrinks and cannot grow backwards),
// the expected-provider set is merged, and slots awaiting heal are
// left to healPass, which fetches them hash-aware.
func (m *Mirror) drainPeer(ctx context.Context, p *Peer, rem *toplist.Remote) error {
	if last := rem.Last(); last > m.store.Last() {
		if err := m.store.ExtendTo(last); err != nil {
			return err
		}
	}
	if provs := rem.Providers(); len(provs) > 0 {
		if err := m.store.Expect(provs...); err != nil {
			return err
		}
	}
	first, last := rem.First(), rem.Last()
	if f := m.store.First(); first < f {
		first = f
	}
	if l := m.store.Last(); last > l {
		last = l
	}
	for _, provider := range rem.Providers() {
		for d := first; d <= last; d++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if m.healPending(provider, d) || m.store.Has(provider, d) {
				continue
			}
			raw, err := rem.GetRawContext(ctx, provider, d)
			if err != nil {
				if isCorruptRefusal(err) {
					continue // the peer's own copy is corrupt; try elsewhere later
				}
				return err
			}
			if raw == nil {
				continue // the peer has the same gap
			}
			if err := m.store.PutRaw(provider, d, raw.Data); err != nil {
				// The document failed write validation — the peer served
				// bytes that do not decode. Skip the slot, keep draining.
				m.logf("peer %s: refusing %s %s: %v", p.URL(), provider, d, err)
				continue
			}
			m.copied.Add(1)
		}
	}
	return nil
}

// VerifySweep integrity-checks every present local snapshot
// (DiskStore.Verify: persisted hash, then full decode) and marks the
// failures for healing: they leave the mirror's has-view immediately
// and the next sync round re-fetches each from the healthiest peer
// holding a hash-matching copy. Returns how many corrupt slots the
// sweep found.
func (m *Mirror) VerifySweep() int {
	corrupt := m.store.Verify()
	m.mu.Lock()
	for _, s := range corrupt {
		m.heal[slot{s.Provider, s.Day}] = true
	}
	m.mu.Unlock()
	m.sweeps.Add(1)
	if len(corrupt) > 0 {
		m.logf("verify: %d corrupt slots queued for healing", len(corrupt))
	}
	return len(corrupt)
}

// healPending reports whether a slot is queued for healing.
func (m *Mirror) healPending(provider string, day toplist.Day) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.heal[slot{provider, day}]
}

// healPass re-fetches every queued corrupt slot. The locally persisted
// content hash — which an on-disk corruption does not touch — is the
// wanted hash, so a peer still holding the byte-identical document is
// preferred; any decodable copy heals the slot as a fallback (PutRaw
// refuses anything that does not decode). Slots no peer currently
// holds stay queued and are retried next round.
func (m *Mirror) healPass(ctx context.Context) {
	m.mu.Lock()
	pending := make([]slot, 0, len(m.heal))
	for s := range m.heal {
		pending = append(pending, s)
	}
	m.mu.Unlock()
	for _, s := range pending {
		if ctx.Err() != nil {
			return
		}
		raw, p, err := m.peers.FetchRaw(ctx, s.provider, s.day, m.store.RawHash(s.provider, s.day))
		if err != nil || raw == nil {
			continue
		}
		if err := m.store.PutRaw(s.provider, s.day, raw.Data); err != nil {
			m.logf("heal %s %s from %s: %v", s.provider, s.day, p.URL(), err)
			continue
		}
		m.mu.Lock()
		delete(m.heal, s)
		m.mu.Unlock()
		m.healed.Add(1)
		m.logf("healed %s %s from %s", s.provider, s.day, p.URL())
	}
}

// peerLag returns (registering lazily) the peer's lag gauge.
func (m *Mirror) peerLag(p *Peer) *serve.Gauge {
	return m.metrics.Gauge(
		fmt.Sprintf("fleet_peer_lag_days{peer=%q}", p.URL()),
		"Days the peer's archive trails the local one (0 = caught up or ahead).")
}

// lagDays is how many days peerLast trails localLast, clamped at 0.
func lagDays(localLast, peerLast toplist.Day) int64 {
	if peerLast >= localLast {
		return 0
	}
	return int64(localLast - peerLast)
}

// Loops returns the mirror's background tasks for serve.Daemon: the
// sync loop (one immediate round, then one per syncEvery) and — when
// verifyEvery > 0 — the periodic local integrity sweep.
func (m *Mirror) Loops(syncEvery, verifyEvery time.Duration) []func(context.Context) {
	loops := []func(context.Context){
		func(ctx context.Context) {
			m.SyncOnce(ctx)
			serve.Poll(ctx, syncEvery, m.SyncOnce)
		},
	}
	if verifyEvery > 0 {
		loops = append(loops, func(ctx context.Context) {
			serve.Poll(ctx, verifyEvery, func(context.Context) { m.VerifySweep() })
		})
	}
	return loops
}

// Bootstrap opens the local archive at dir, creating it from the first
// reachable peer's manifest when none exists yet: the new store adopts
// the peer's day range, scale, and expected-provider set, ready for
// the first SyncOnce to fill it. A directory already holding an
// archive is simply reopened (peers are not consulted).
func Bootstrap(ctx context.Context, dir string, peers *PeerSet) (*toplist.DiskStore, error) {
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err == nil {
		return toplist.OpenArchive(dir)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	var lastErr error
	for _, p := range peers.Available() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rem, err := p.Remote(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		store, err := toplist.CreateDiskStore(dir, rem.First(), rem.Last())
		if err != nil {
			return nil, err
		}
		if s := rem.Scale(); s != "" {
			if err := store.SetScale(s); err != nil {
				return nil, err
			}
		}
		if provs := rem.Providers(); len(provs) > 0 {
			if err := store.Expect(provs...); err != nil {
				return nil, err
			}
		}
		return store, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no peer available")
	}
	return nil, fmt.Errorf("fleet: bootstrap %s: %w", dir, lastErr)
}
