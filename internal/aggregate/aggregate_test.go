package aggregate

import (
	"testing"

	"repro/internal/population"
	"repro/internal/providers"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

func smallArchive(t *testing.T) *toplist.Archive {
	t.Helper()
	a := toplist.NewArchive(0, 3)
	put := func(p string, d toplist.Day, names ...string) {
		if err := a.Put(p, d, toplist.New(names)); err != nil {
			t.Fatal(err)
		}
	}
	put("x", 0, "a.com", "b.com", "c.com")
	put("x", 1, "a.com", "c.com", "d.com")
	put("x", 2, "a.com", "b.com", "c.com")
	put("x", 3, "a.com", "c.com", "b.com")
	put("y", 0, "b.com", "a.com", "e.com")
	put("y", 1, "b.com", "a.com", "e.com")
	put("y", 2, "b.com", "e.com", "a.com")
	put("y", 3, "b.com", "a.com", "e.com")
	return a
}

func TestValidate(t *testing.T) {
	if (Config{Window: 0, Size: 5}).Validate() == nil {
		t.Fatal("zero window")
	}
	if (Config{Window: 1, Size: 0}).Validate() == nil {
		t.Fatal("zero size")
	}
}

func TestBuildDowdall(t *testing.T) {
	a := smallArchive(t)
	l, err := Build(a, 0, Config{Window: 1, Size: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Day 0 scores: a: 1 + 1/2 = 1.5; b: 1/2 + 1 = 1.5; c: 1/3;
	// e: 1/3. Ties break lexically: a, b, then c, e.
	got := l.Names()
	want := []string{"a.com", "b.com", "c.com", "e.com"}
	if len(got) != len(want) {
		t.Fatalf("names %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %s want %s", i+1, got[i], want[i])
		}
	}
}

func TestBuildWindowAccumulates(t *testing.T) {
	a := smallArchive(t)
	l1, err := Build(a, 1, Config{Window: 1, Size: 10, Providers: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Build(a, 1, Config{Window: 2, Size: 10, Providers: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	// Window 1 on day 1 has no b.com; window 2 includes day 0's b.com.
	if l1.Contains("b.com") {
		t.Fatal("window-1 day-1 list should not contain b.com")
	}
	if !l2.Contains("b.com") {
		t.Fatal("window-2 list should contain b.com")
	}
}

func TestBuildErrors(t *testing.T) {
	a := smallArchive(t)
	if _, err := Build(a, 99, Config{Window: 1, Size: 5}); err == nil {
		t.Fatal("day beyond archive")
	}
	if _, err := Build(a, 0, Config{Window: 1, Size: 5, Providers: []string{"nope"}}); err == nil {
		t.Fatal("unknown provider yields no snapshots")
	}
	empty := toplist.NewArchive(0, 1)
	if _, err := Build(empty, 0, Config{Window: 1, Size: 5}); err == nil {
		t.Fatal("empty archive")
	}
}

func TestSeriesAndChurn(t *testing.T) {
	a := smallArchive(t)
	series, err := Series(a, 0, 3, Config{Window: 2, Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series %d", len(series))
	}
	churn := MeanChurn(series)
	if churn < 0 || churn > 1 {
		t.Fatalf("churn %v", churn)
	}
	if MeanChurn(series[:1]) != 0 {
		t.Fatal("single-list churn should be 0")
	}
}

// TestAggregationStabilises is the headline property: a multi-day,
// multi-provider aggregate churns less than any single source list —
// the paper's §9 "Consider Stability" recommendation, and the Tranco
// design goal.
func TestAggregationStabilises(t *testing.T) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewModel(w)
	opts := providers.DefaultOptions(w.Cfg.Days, 2000)
	opts.BurnInDays = 40
	g, err := providers.NewGenerator(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := g.Run(w.Cfg.Days)
	if err != nil {
		t.Fatal(err)
	}
	from := toplist.Day(14)
	to := toplist.Day(w.Cfg.Days - 1)

	agg, err := Series(arch, from, to, Config{Window: 14, Size: 2000, BaseDomains: true})
	if err != nil {
		t.Fatal(err)
	}
	aggChurn := MeanChurn(agg)

	single := func(p string) float64 {
		var lists []*toplist.List
		for d := from; d <= to; d++ {
			lists = append(lists, arch.Get(p, d).BaseDomains())
		}
		return MeanChurn(lists)
	}
	for _, p := range []string{providers.Alexa, providers.Umbrella} {
		if s := single(p); aggChurn >= s {
			t.Fatalf("aggregate churn %.4f not below %s churn %.4f", aggChurn, p, s)
		}
	}
	if aggChurn > 0.05 {
		t.Fatalf("aggregate churn %.4f unexpectedly high", aggChurn)
	}
}

// TestSliderMatchesBuild: the incremental slider must produce exactly
// the list a from-scratch Build produces for the same window.
func TestSliderMatchesBuild(t *testing.T) {
	a := smallArchive(t)
	slider, err := NewSlider(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for d := toplist.Day(0); d <= 3; d++ {
		slider.Push(a.Get("x", d), a.Get("y", d))
		if d == 0 {
			if slider.Filled() {
				t.Fatal("window cannot be full after one push")
			}
			continue
		}
		want, err := Build(a, d, Config{Window: 2, Size: 10})
		if err != nil {
			t.Fatal(err)
		}
		got := slider.List()
		if got.Len() != want.Len() {
			t.Fatalf("day %d: len %d vs %d", d, got.Len(), want.Len())
		}
		for r := 1; r <= want.Len(); r++ {
			if got.Name(r) != want.Name(r) {
				t.Fatalf("day %d rank %d: %q vs %q", d, r, got.Name(r), want.Name(r))
			}
		}
	}
	if !slider.Filled() {
		t.Fatal("window should be full")
	}
}

func TestSliderValidates(t *testing.T) {
	if _, err := NewSlider(0, 5); err == nil {
		t.Fatal("zero window")
	}
	if _, err := NewSlider(2, 0); err == nil {
		t.Fatal("zero size")
	}
}

func BenchmarkBuild(b *testing.B) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := traffic.NewModel(w)
	opts := providers.DefaultOptions(20, 2000)
	opts.BurnInDays = 20
	g, err := providers.NewGenerator(m, opts)
	if err != nil {
		b.Fatal(err)
	}
	arch, err := g.Run(20)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Window: 14, Size: 2000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(arch, 19, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
