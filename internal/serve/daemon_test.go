package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestDaemonDrainsInFlight is the graceful-shutdown contract: when the
// context is cancelled, a request already being served completes with
// its full body, new connections are refused, background tasks are
// cancelled and awaited, and Run returns nil.
func TestDaemonDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var bgStopped atomic.Bool
	d := &Daemon{
		Addr: "127.0.0.1:0",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/slow" {
				io.WriteString(w, "ok")
				return
			}
			close(entered)
			<-release
			io.WriteString(w, "drained-ok")
		}),
		ShutdownTimeout: 5 * time.Second,
		Background: []func(context.Context){
			func(ctx context.Context) { <-ctx.Done(); bgStopped.Store(true) },
		},
	}
	addr, err := d.Listen()
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()

	type result struct {
		body []byte
		err  error
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			reqDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		reqDone <- result{body: body, err: err}
	}()

	<-entered // the request is in the handler
	cancel()  // begin shutdown while it is in flight

	// Give Shutdown a moment to close the listener, then verify new
	// connections are refused while the old request still drains.
	var refused bool
	for i := 0; i < 100; i++ {
		_, err := http.Get(base + "/new")
		if err != nil {
			refused = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Error("new connections still accepted during drain")
	}

	close(release)
	res := <-reqDone
	if res.err != nil {
		t.Fatalf("in-flight request dropped during shutdown: %v", res.err)
	}
	if string(res.body) != "drained-ok" {
		t.Fatalf("in-flight body = %q, want %q", res.body, "drained-ok")
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("clean drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after drain")
	}
	if !bgStopped.Load() {
		t.Fatal("background task was not cancelled and awaited")
	}
}

func TestDaemonDrainDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	entered := make(chan struct{})
	d := &Daemon{
		Addr: "127.0.0.1:0",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			close(entered)
			<-release
		}),
		ShutdownTimeout: 50 * time.Millisecond,
	}
	addr, err := d.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()
	go http.Get("http://" + addr.String() + "/stuck")
	<-entered
	cancel()
	select {
	case err := <-runDone:
		if err == nil {
			t.Fatal("exceeding the drain deadline must report an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run hung past the drain deadline")
	}
}

func TestPollPacesAndStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ticks atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		Poll(ctx, time.Millisecond, func(context.Context) {
			if ticks.Add(1) == 3 {
				cancel()
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Poll did not stop on cancellation")
	}
	if ticks.Load() < 3 {
		t.Fatalf("ticks = %d, want >= 3", ticks.Load())
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestReloaderSIGHUP(t *testing.T) {
	var reloads atomic.Int64
	task := Reloader(0, nil, func() error { reloads.Add(1); return nil }, nil)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); task(ctx) }()

	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return reloads.Load() == 1 }, "SIGHUP did not trigger a reload")

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Reloader did not stop on cancellation")
	}
}

// TestReloaderSIGHUPBeforeRun: the signal is armed at construction, so
// a HUP delivered before the task starts is neither fatal nor lost.
func TestReloaderSIGHUPBeforeRun(t *testing.T) {
	var reloads atomic.Int64
	task := Reloader(0, nil, func() error { reloads.Add(1); return nil }, nil)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // would kill the process if unarmed

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go task(ctx)
	waitFor(t, 5*time.Second, func() bool { return reloads.Load() == 1 }, "pre-run SIGHUP was lost")
}

func TestReloaderPollsStamp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}

	var reloads atomic.Int64
	failNext := atomic.Bool{}
	task := Reloader(2*time.Millisecond, FileStamp(path), func() error {
		if failNext.Load() {
			return fmt.Errorf("transient")
		}
		reloads.Add(1)
		return nil
	}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go task(ctx)

	// Unchanged file: no reloads.
	time.Sleep(30 * time.Millisecond)
	if reloads.Load() != 0 {
		t.Fatalf("reloaded %d times with an unchanged stamp", reloads.Load())
	}

	// Change the file: one reload (the stamp is remembered after success).
	if err := os.WriteFile(path, []byte("v2-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return reloads.Load() >= 1 }, "stamp change did not trigger a reload")

	// A failing reload is retried on subsequent ticks until it succeeds:
	// the stamp only advances on success.
	failNext.Store(true)
	if err := os.WriteFile(path, []byte("v3-even-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	before := reloads.Load()
	failNext.Store(false)
	waitFor(t, 5*time.Second, func() bool { return reloads.Load() > before }, "failed reload was not retried")
}

func TestFileStamp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if _, err := FileStamp(path)(); err == nil {
		t.Fatal("stamp of a missing file should error")
	}
	if err := os.WriteFile(path, []byte("aa"), 0o644); err != nil {
		t.Fatal(err)
	}
	s1, err := FileStamp(path)()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("bbb"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := FileStamp(path)()
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatalf("stamp did not change with the file: %q", s1)
	}
}

// TestReloaderFileVanishesMidPoll pins the disappearing-backend
// contract: while the watched file is gone the stamp probe errors on
// every tick — no reload may fire and the remembered stamp must not
// advance — and once the file reappears (with a different fingerprint)
// the very next tick reloads. An operator mv-ing a new archive into
// place (a brief window with no file at the path) must cost at most a
// skipped tick, never a wedged reloader.
func TestReloaderFileVanishesMidPoll(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "archive.pack")
	if err := os.WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}

	var reloads atomic.Int64
	task := Reloader(2*time.Millisecond, FileStamp(path), func() error {
		reloads.Add(1)
		return nil
	}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go task(ctx)

	// The file disappears mid-poll: every stamp probe errors. Nothing
	// may reload, and — critically — the remembered stamp stays at the
	// pre-removal value instead of advancing to an error sentinel.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if n := reloads.Load(); n != 0 {
		t.Fatalf("reloaded %d times while the watched file was absent", n)
	}

	// It reappears with new content: the stamp differs from the
	// remembered pre-removal value, so the next tick reloads.
	if err := os.WriteFile(path, []byte("v2-reappeared"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return reloads.Load() >= 1 },
		"reload did not fire after the watched file reappeared")
}
