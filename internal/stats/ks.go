package stats

import (
	"math"
	"sort"
)

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F_a(x) - F_b(x)| between the empirical distributions of a
// and b. The paper uses this to compare a domain's weekday vs. weekend
// rank distributions (§6.2): D = 1 means the two samples have disjoint
// supports.
//
// It returns NaN if either sample is empty.
func KSDistance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	sa := make([]float64, len(a))
	copy(sa, a)
	sort.Float64s(sa)
	sb := make([]float64, len(b))
	copy(sb, b)
	sort.Float64s(sb)

	na, nb := float64(len(sa)), float64(len(sb))
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d
}
