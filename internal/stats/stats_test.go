package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if s := Std(xs); !almostEq(s, 2, 1e-12) {
		t.Fatalf("std %v", s)
	}
	if med := Median(xs); !almostEq(med, 4.5, 1e-12) {
		t.Fatalf("median %v", med)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty summaries should be 0")
	}
	min, max := MinMax(nil)
	if min != 0 || max != 0 {
		t.Fatal("empty MinMax")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 %v", q)
	}
	if q := Quantile(xs, 0.1); !almostEq(q, 1.4, 1e-12) {
		t.Fatalf("q10 %v", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Fatalf("minmax %v %v", min, max)
	}
}

func TestECDFEval(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	for _, tc := range []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	} {
		if got := e.Eval(tc.x); !almostEq(got, tc.want, 1e-12) {
			t.Fatalf("Eval(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestECDFPointsAndFractions(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	xs, ys := e.Points()
	if len(xs) != 3 || xs[1] != 2 || !almostEq(ys[1], 0.75, 1e-12) {
		t.Fatalf("points %v %v", xs, ys)
	}
	if f := e.FractionAtLeast(2); !almostEq(f, 0.75, 1e-12) {
		t.Fatalf("at least %v", f)
	}
	if e.Len() != 4 {
		t.Fatal("len")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		e := NewECDF(xs)
		prev := -1.0
		for x := -3.0; x <= 3.0; x += 0.1 {
			v := e.Eval(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KSDistance(a, a); d != 0 {
		t.Fatalf("identical KS = %v", d)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSDistance(a, b); d != 1 {
		t.Fatalf("disjoint KS = %v, want 1 (paper: disjoint weekday/weekend ranks)", d)
	}
}

func TestKSHalfShift(t *testing.T) {
	// a uniform on {1..4}, b uniform on {3..6}: D = 0.5.
	a := []float64{1, 2, 3, 4}
	b := []float64{3, 4, 5, 6}
	if d := KSDistance(a, b); !almostEq(d, 0.5, 1e-12) {
		t.Fatalf("KS = %v, want 0.5", d)
	}
}

func TestKSEmpty(t *testing.T) {
	if !math.IsNaN(KSDistance(nil, []float64{1})) {
		t.Fatal("empty sample should yield NaN")
	}
}

func TestKSSymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := make([]float64, 30)
		b := make([]float64, 45)
		for i := range a {
			a[i] = r.Float64()
		}
		for i := range b {
			b[i] = r.Float64() + 0.2
		}
		d1, d2 := KSDistance(a, b), KSDistance(b, a)
		return almostEq(d1, d2, 1e-12) && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKendallPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if tau := KendallTau(x, x); !almostEq(tau, 1, 1e-12) {
		t.Fatalf("tau %v", tau)
	}
	y := []float64{5, 4, 3, 2, 1}
	if tau := KendallTau(x, y); !almostEq(tau, -1, 1e-12) {
		t.Fatalf("reversed tau %v", tau)
	}
}

func TestKendallKnownValue(t *testing.T) {
	// Hand-computed: x=1..5, y={1,3,2,5,4}: 8 concordant, 2 discordant
	// of 10 pairs, tau = 0.6.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 3, 2, 5, 4}
	if tau := KendallTau(x, y); !almostEq(tau, 0.6, 1e-12) {
		t.Fatalf("tau %v, want 0.6", tau)
	}
}

func TestKendallWithTies(t *testing.T) {
	// τ-b with ties; verified against scipy.stats.kendalltau:
	// x = [1,2,2,3], y = [1,2,3,4] → tau-b ≈ 0.9128709291752769.
	x := []float64{1, 2, 2, 3}
	y := []float64{1, 2, 3, 4}
	want := 5.0 / math.Sqrt(30)
	if tau := KendallTau(x, y); !almostEq(tau, want, 1e-12) {
		t.Fatalf("tau-b %v, want %v", tau, want)
	}
}

func TestKendallConstantInput(t *testing.T) {
	x := []float64{1, 1, 1}
	y := []float64{1, 2, 3}
	if !math.IsNaN(KendallTau(x, y)) {
		t.Fatal("constant x should yield NaN")
	}
}

func TestKendallMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KendallTau([]float64{1}, []float64{1, 2})
}

func TestKendallMatchesBruteForceProperty(t *testing.T) {
	brute := func(x, y []float64) float64 {
		n := len(x)
		var c, d, tx, ty float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := x[i] - x[j]
				dy := y[i] - y[j]
				switch {
				case dx == 0 && dy == 0:
				case dx == 0:
					tx++
				case dy == 0:
					ty++
				case dx*dy > 0:
					c++
				default:
					d++
				}
			}
		}
		total := float64(n*(n-1)) / 2
		// Count pairs tied in x (incl. joint) and in y (incl. joint).
		var n1, n2 float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if x[i] == x[j] {
					n1++
				}
				if y[i] == y[j] {
					n2++
				}
			}
		}
		denom := math.Sqrt((total - n1) * (total - n2))
		if denom == 0 {
			return math.NaN()
		}
		return (c - d) / denom
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(r.Intn(10)) // force ties
			y[i] = float64(r.Intn(10))
		}
		want := brute(x, y)
		got := KendallTau(x, y)
		if math.IsNaN(want) {
			return math.IsNaN(got)
		}
		return almostEq(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountInversionsSorted(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if inv := countInversions(xs); inv != 0 {
		t.Fatalf("inversions %d", inv)
	}
	if !sort.Float64sAreSorted(xs) {
		t.Fatal("not sorted after count")
	}
	ys := []float64{4, 3, 2, 1}
	if inv := countInversions(ys); inv != 6 {
		t.Fatalf("inversions %d, want 6", inv)
	}
}

func TestKendallTauRanks(t *testing.T) {
	if tau := KendallTauRanks([]int{1, 2, 3}, []int{1, 2, 3}); !almostEq(tau, 1, 1e-12) {
		t.Fatalf("tau %v", tau)
	}
}

func TestStringSetOps(t *testing.T) {
	a := NewStringSet([]string{"x", "y", "z"})
	b := NewStringSet([]string{"y", "z", "w"})
	if a.IntersectionCount(b) != 2 {
		t.Fatal("intersection")
	}
	if a.DifferenceCount(b) != 1 {
		t.Fatal("difference count")
	}
	if d := a.Difference(b); len(d) != 1 || d[0] != "x" {
		t.Fatalf("difference %v", d)
	}
	if j := a.Jaccard(b); !almostEq(j, 0.5, 1e-12) {
		t.Fatalf("jaccard %v", j)
	}
	if !a.Has("x") || a.Has("w") {
		t.Fatal("membership")
	}
	a.Add("w")
	if !a.Has("w") || a.Len() != 4 {
		t.Fatal("add")
	}
}

func TestIntersection3(t *testing.T) {
	a := NewStringSet([]string{"1", "2", "3", "4"})
	b := NewStringSet([]string{"2", "3", "4", "5"})
	c := NewStringSet([]string{"3", "4", "5", "6"})
	if n := IntersectionCount3(a, b, c); n != 2 {
		t.Fatalf("triple intersection %d", n)
	}
}

func TestJaccardEmpty(t *testing.T) {
	if NewStringSet(nil).Jaccard(NewStringSet(nil)) != 0 {
		t.Fatal("empty jaccard")
	}
}

func TestIDSetOps(t *testing.T) {
	a := NewIDSet([]uint32{1, 2, 3})
	b := NewIDSet([]uint32{2, 3, 4})
	if a.IntersectionCount(b) != 2 {
		t.Fatal("id intersection")
	}
	if a.RemovedCount(b) != 1 {
		t.Fatal("removed count")
	}
	a.Add(9)
	if !a.Has(9) || a.Has(8) {
		t.Fatal("id membership")
	}
}

func TestSetSymmetryProperty(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a, b := NewIDSet(xs), NewIDSet(ys)
		return a.IntersectionCount(b) == b.IntersectionCount(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKendallTau(b *testing.B) {
	r := rng.New(1)
	n := 1000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()
		y[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KendallTau(x, y)
	}
}

func BenchmarkKSDistance(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 1000)
	y := make([]float64, 1000)
	for i := range x {
		x[i] = r.Float64()
		y[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KSDistance(x, y)
	}
}
