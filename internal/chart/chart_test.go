package chart

import (
	"encoding/xml"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestFromTableBasic(t *testing.T) {
	header := []string{"day", "alexa", "umbrella"}
	rows := [][]string{
		{"2017-06-06", "10.5%", "20.1%"},
		{"2017-06-07", "11.0%", "19.9%"},
		{"2017-06-08", "12.5%", "18.0%"},
	}
	l, err := FromTable(header, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(l.Series))
	}
	if l.Series[0].Name != "alexa" || l.Series[0].Points[2] != 12.5 {
		t.Errorf("series[0] = %+v", l.Series[0])
	}
	if l.YLabel != "%" {
		t.Errorf("ylabel = %q, want %%", l.YLabel)
	}
	if len(l.XTicks) != 3 || l.XTicks[0] != "2017-06-06" {
		t.Errorf("xticks = %v", l.XTicks)
	}
}

func TestFromTableSkipsTextColumns(t *testing.T) {
	header := []string{"day", "count", "comment"}
	rows := [][]string{
		{"d0", "5", "stable"},
		{"d1", "7", "rising"},
	}
	l, err := FromTable(header, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Series) != 1 || l.Series[0].Name != "count" {
		t.Fatalf("series = %+v", l.Series)
	}
}

func TestFromTableMeanStdCells(t *testing.T) {
	header := []string{"x", "value"}
	rows := [][]string{
		{"a", "12.3 ± 4.5"},
		{"b", "14.0 ± 0.1"},
	}
	l, err := FromTable(header, rows)
	if err != nil {
		t.Fatal(err)
	}
	if l.Series[0].Points[0] != 12.3 || l.Series[0].Points[1] != 14.0 {
		t.Errorf("points = %v", l.Series[0].Points)
	}
}

func TestFromTableGapsBecomeNaN(t *testing.T) {
	header := []string{"x", "v"}
	rows := [][]string{{"a", "1"}, {"b", "-"}, {"c", "3"}}
	l, err := FromTable(header, rows)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(l.Series[0].Points[1]) {
		t.Errorf("gap cell = %v, want NaN", l.Series[0].Points[1])
	}
}

func TestFromTableErrors(t *testing.T) {
	if _, err := FromTable([]string{"x", "v"}, [][]string{{"a", "1"}}); err == nil {
		t.Error("single row accepted")
	}
	if _, err := FromTable([]string{"x"}, [][]string{{"a"}, {"b"}}); err == nil {
		t.Error("single column accepted")
	}
	rows := [][]string{{"a", "text"}, {"b", "more"}}
	if _, err := FromTable([]string{"x", "v"}, rows); err == nil {
		t.Error("all-text table accepted")
	}
}

func TestParseCell(t *testing.T) {
	cases := []struct {
		in      string
		want    float64
		percent bool
	}{
		{"42", 42, false},
		{"3.14", 3.14, false},
		{"12.5%", 12.5, true},
		{"1.38x", 1.38, false},
		{"1,234", 1234, false},
		{"9.1 ± 0.3", 9.1, false},
		{"22.9% ± 0.6", 22.9, true},
	}
	for _, c := range cases {
		v, pct, err := parseCell(c.in)
		if err != nil || v != c.want || pct != c.percent {
			t.Errorf("parseCell(%q) = (%v,%v,%v), want (%v,%v)", c.in, v, pct, err, c.want, c.percent)
		}
	}
	for _, gap := range []string{"-", "", "n/a", "NaN"} {
		if v, _, err := parseCell(gap); err != nil || !math.IsNaN(v) {
			t.Errorf("parseCell(%q) = (%v,%v), want NaN", gap, v, err)
		}
	}
	if _, _, err := parseCell("12->13"); err == nil {
		t.Error("arrow cell accepted")
	}
}

func TestSVGIsWellFormedXML(t *testing.T) {
	l := &Line{
		Title:  "Daily changes <test> & friends",
		YLabel: "%",
		XTicks: []string{"d0", "d1", "d2", "d3"},
		Series: []Series{
			{Name: "alexa", Points: []float64{1, 2, math.NaN(), 4}},
			{Name: "umbrella", Points: []float64{4, 3, 2, 1}},
		},
	}
	svg := l.SVG()
	var doc struct {
		XMLName xml.Name `xml:"svg"`
	}
	if err := xml.Unmarshal([]byte(svg), &doc); err != nil {
		t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg)
	}
	if !strings.Contains(svg, "polyline") {
		t.Error("no polyline in SVG")
	}
	if !strings.Contains(svg, "&lt;test&gt;") {
		t.Error("title not escaped")
	}
}

func TestSVGHandlesSinglePointRuns(t *testing.T) {
	// A series with isolated points (gaps around them) must render
	// dots, not vanish.
	l := &Line{
		XTicks: []string{"a", "b", "c"},
		Series: []Series{{Name: "dots", Points: []float64{math.NaN(), 5, math.NaN()}}},
	}
	svg := l.SVG()
	if !strings.Contains(svg, "<circle") {
		t.Error("isolated point not rendered as a dot")
	}
}

func TestSVGConstantSeries(t *testing.T) {
	l := &Line{
		XTicks: []string{"a", "b"},
		Series: []Series{{Name: "flat", Points: []float64{7, 7}}},
	}
	svg := l.SVG()
	if !strings.Contains(svg, "polyline") {
		t.Fatalf("constant series missing polyline:\n%s", svg)
	}
}

func TestSVGThinsManyXLabels(t *testing.T) {
	ticks := make([]string, 100)
	pts := make([]float64, 100)
	for i := range ticks {
		ticks[i] = "day" + string(rune('A'+i%26))
		pts[i] = float64(i)
	}
	l := &Line{XTicks: ticks, Series: []Series{{Name: "s", Points: pts}}}
	svg := l.SVG()
	labels := strings.Count(svg, `y="`+strconv.Itoa(marginT+plotH+20)+`"`)
	if labels > maxXLabels+1 {
		t.Errorf("x labels = %d, want <= %d", labels, maxXLabels+1)
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 6)
	if len(ticks) < 4 || ticks[0] > 0 {
		t.Errorf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	small := niceTicks(0.001, 0.009, 5)
	if len(small) < 3 {
		t.Errorf("small-range ticks = %v", small)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		2_500_000: "2.5M",
		25_000:    "25k",
		1_500:     "1.5k",
		42:        "42",
		0.05:      "0.05",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestShorten(t *testing.T) {
	if got := shorten("abcdefghij", 5); got != "abcd…" {
		t.Errorf("shorten = %q", got)
	}
	if got := shorten("ok", 5); got != "ok" {
		t.Errorf("shorten = %q", got)
	}
}
