// Resume: simulate the ecosystem once while persisting every snapshot
// to a durable on-disk archive, then reopen that archive in a second
// lab and rerun an experiment from disk — no resimulation, identical
// output. This is the paper's own workflow: the JOINT dataset is
// collected once and re-read by every analysis.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()
	scale := toplists.TestScale()
	scale.Population.Days = 21
	scale.BurnInDays = 30

	dir := filepath.Join(os.TempDir(), fmt.Sprintf("toplists-resume-%d", os.Getpid()))
	defer os.RemoveAll(dir)

	// Pass 1: simulate, teeing every snapshot into the durable store.
	start := time.Now()
	simLab := toplists.NewLab(
		toplists.WithScale(scale),
		toplists.WithArchiveDir(dir))
	want, err := simLab.Run(ctx, "table5")
	if err != nil {
		log.Fatal(err)
	}
	simTime := time.Since(start)
	fmt.Printf("simulated and persisted to %s in %v\n\n", dir, simTime.Round(time.Millisecond))

	// Pass 2 (any later process): reopen the archive and rerun the
	// experiment straight from disk.
	start = time.Now()
	src, err := toplists.OpenArchive(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened archive: scale %q, %d providers x %d days, complete=%v\n",
		src.Scale(), len(src.Providers()), src.Days(), src.Complete())
	resumeLab := toplists.NewLab(
		toplists.WithScale(scale),
		toplists.WithSource(src))
	got, err := resumeLab.Run(ctx, "table5")
	if err != nil {
		log.Fatal(err)
	}
	resumeTime := time.Since(start)

	fmt.Print(got.Render())
	fmt.Printf("\nresumed run took %v (simulate pass took %v)\n",
		resumeTime.Round(time.Millisecond), simTime.Round(time.Millisecond))
	if want.Render() == got.Render() {
		fmt.Println("outputs are byte-identical: the archive replaces resimulation.")
	} else {
		log.Fatal("outputs differ — resume is broken")
	}
}
