package simnet

// ProbeResult is the outcome of the simulated HTTPS/HTTP2 probe of a
// domain — the stand-in for the paper's zgrab TLS scans and nghttp2
// HTTP/2 fetches (§8.2, §8.3).
type ProbeResult struct {
	// Reachable is false when the domain does not resolve (NXDOMAIN) or
	// serves nothing.
	Reachable bool
	// TLS reports a successful TLS handshake on :443.
	TLS bool
	// HSTSMaxAge is the max-age of a Strict-Transport-Security header
	// (0 = header absent). The paper counts a domain HSTS-enabled when
	// the header is valid with max-age > 0.
	HSTSMaxAge int
	// HSTSHeader is the raw Strict-Transport-Security header value, when
	// the endpoint sent one; HSTSEnabled parses it (RFC 6797) when set.
	HSTSHeader string
	// HTTP2 reports that the landing page was actually transferred over
	// HTTP/2 (after up to 10 redirects, per the paper's method).
	HTTP2 bool
	// Redirects is the number of redirects followed before the landing
	// page.
	Redirects int
}

// HSTSEnabled applies the paper's HSTS definition: a valid header with
// max-age > 0 on a TLS-enabled domain. When the raw header is present
// it is parsed per RFC 6797; otherwise the pre-parsed max-age is used.
func (p ProbeResult) HSTSEnabled() bool {
	if !p.TLS {
		return false
	}
	if p.HSTSHeader != "" {
		return ParseHSTS(p.HSTSHeader).Enabled()
	}
	return p.HSTSMaxAge > 0
}

// WebProber probes domains; the population's World implements it.
type WebProber interface {
	Probe(name string) ProbeResult
}

// MaxRedirects is the redirect-following limit used by the HTTP/2
// campaign, matching the paper's method ("we follow up to 10
// redirects").
const MaxRedirects = 10
