package providers

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/parallel"
	"repro/internal/population"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

// shardTestOptions exercises every code path the distributed split must
// reproduce: all three providers, the Alexa alpha change mid-run, and
// injectors on each provider (extras stay coordinator-owned in
// MergeDay, so this proves workers really don't need them).
func shardTestOptions(days int) Options {
	opts := DefaultOptions(days, 400)
	opts.BurnInDays = 15
	opts.AlexaChangeDay = days / 2
	inj := traffic.NewInjector()
	webInj := traffic.NewInjector()
	linkInj := traffic.NewInjector()
	for d := 0; d < days; d++ {
		inj.Add("injected-dns.example", d, 5000, 90000)
		webInj.Add("injected-web.example", d, 20000, 60000)
		linkInj.Add("injected-link.example", d, 3000, 0)
	}
	opts.Injector = inj
	opts.AlexaInjector = webInj
	opts.MajesticInjector = linkInj
	return opts
}

// stepDistributed advances gen to day d through K shard steppers and
// MergeDay — the in-process skeleton of what Coordinator/Worker do over
// HTTP.
func stepDistributed(t *testing.T, g *Generator, steppers []*ShardStepper, d int) {
	t.Helper()
	for _, s := range steppers {
		s.Step(d)
	}
	err := g.MergeDay(d, func(provider string, dst []float64) error {
		for _, s := range steppers {
			lo, hi := s.Bounds()
			part := s.Partial(provider)
			if part == nil {
				return fmt.Errorf("no partial for %s", provider)
			}
			copy(dst[lo:hi], part)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func checkFronts(t *testing.T, ref, dist *Generator, d int) {
	t.Helper()
	for _, p := range ref.EnabledProviders() {
		if !SameBits(ref.FrontValues(p), dist.FrontValues(p)) {
			t.Fatalf("day %d: %s front values diverge from serial reference", d, p)
		}
	}
}

// TestShardStepperEquivalence proves the provider-layer distributed
// contract: K shard steppers merged through MergeDay produce, day by
// day, exactly the floating-point bits of the serial Generator.StepDay
// — through burn-in, the Alexa regime change, and injections — and the
// published lists match entry for entry.
func TestShardStepperEquivalence(t *testing.T) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewModel(w)
	days := 8
	opts := shardTestOptions(days)
	n := w.Len()

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			ref, err := NewGenerator(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			dist, err := NewGenerator(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			var steppers []*ShardStepper
			for _, b := range parallel.Shards(k, n) {
				s, err := NewShardStepper(m, opts, b[0], b[1])
				if err != nil {
					t.Fatal(err)
				}
				steppers = append(steppers, s)
			}
			for d := -opts.BurnInDays; d < days; d++ {
				ref.StepDay(d, 1)
				stepDistributed(t, dist, steppers, d)
				checkFronts(t, ref, dist, d)
				if d >= 0 {
					rs := ref.Snapshots(toplist.Day(d), 1)
					ds := dist.Snapshots(toplist.Day(d), 1)
					for i := range rs {
						rn, dn := rs[i].List.Names(), ds[i].List.Names()
						if len(rn) != len(dn) {
							t.Fatalf("day %d %s: list lengths differ", d, rs[i].Provider)
						}
						for j := range rn {
							if rn[j] != dn[j] {
								t.Fatalf("day %d %s rank %d: %q vs %q", d, rs[i].Provider, j, rn[j], dn[j])
							}
						}
					}
				}
			}
		})
	}
}

// TestShardStepperSeedResume proves reassignment-resume: killing a
// stepper mid-run and rebuilding its replacement from the coordinator's
// merged front state (Seed + SetState) continues bit-identically — the
// property the Coordinator's mid-day worker failover rests on.
func TestShardStepperSeedResume(t *testing.T) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewModel(w)
	days := 8
	opts := shardTestOptions(days)
	n := w.Len()

	ref, err := NewGenerator(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := NewGenerator(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	bounds := parallel.Shards(2, n)
	steppers := make([]*ShardStepper, len(bounds))
	for i, b := range bounds {
		s, err := NewShardStepper(m, opts, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		steppers[i] = s
	}
	killAt := 3 // a post-burn-in day, mid-run
	merged := 0
	for d := -opts.BurnInDays; d < days; d++ {
		if d == killAt {
			// "Worker 1 died": rebuild its shard from coordinator state,
			// exactly as Coordinator.seedFrame does over the wire.
			lo, hi := bounds[1][0], bounds[1][1]
			repl, err := NewShardStepper(m, opts, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range opts.EnabledProviders() {
				if err := repl.Seed(p, dist.FrontValues(p)[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			repl.SetState(d-1, merged > 0)
			steppers[1] = repl
		}
		ref.StepDay(d, 1)
		stepDistributed(t, dist, steppers, d)
		merged++
		checkFronts(t, ref, dist, d)
	}
}

func TestShardStepperValidation(t *testing.T) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewModel(w)
	opts := DefaultOptions(10, 400)
	n := w.Len()
	if _, err := NewShardStepper(m, opts, -1, 5); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := NewShardStepper(m, opts, 0, n+1); err == nil {
		t.Fatal("hi beyond world accepted")
	}
	if _, err := NewShardStepper(m, opts, 5, 4); err == nil {
		t.Fatal("inverted range accepted")
	}
	s, err := NewShardStepper(m, opts, 0, n/2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seed(Alexa, make([]float64, 3)); err == nil {
		t.Fatal("wrong-length seed accepted")
	}
	if err := s.Seed("nosuch", make([]float64, n/2)); err == nil {
		t.Fatal("unknown provider seed accepted")
	}
	if got := s.Partial("nosuch"); got != nil {
		t.Fatal("partial for unknown provider")
	}
	lo, hi := s.Bounds()
	if lo != 0 || hi != n/2 {
		t.Fatalf("bounds (%d, %d)", lo, hi)
	}
}

func TestSameBits(t *testing.T) {
	if !SameBits([]float64{1, 0}, []float64{1, 0}) {
		t.Fatal("identical slices differ")
	}
	if SameBits([]float64{1}, []float64{1, 2}) {
		t.Fatal("length mismatch equal")
	}
	if SameBits([]float64{0}, []float64{math.Copysign(0, -1)}) {
		t.Fatal("+0 and -0 should differ bitwise")
	}
}

func TestShardsHelper(t *testing.T) {
	got := parallel.Shards(3, 10)
	want := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	if len(got) != len(want) {
		t.Fatalf("shards: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard %d: got %v want %v", i, got[i], want[i])
		}
	}
	if s := parallel.Shards(8, 3); len(s) != 3 {
		t.Fatalf("over-sharded: %v", s)
	}
	if s := parallel.Shards(2, 0); len(s) != 0 {
		t.Fatalf("empty range: %v", s)
	}
}
