// Package listserv distributes top-list snapshots over HTTP and
// collects them back into archives.
//
// The paper's §4 dataset is assembled by downloading each provider's
// daily CSV publication (e.g. Alexa's top-1m.csv.zip from S3) over
// many months. This package reproduces that pipeline end to end: a
// Server publishes any toplist.Source the way providers publish their
// lists (dated CSV documents, also gzip- and zip-wrapped, with strong
// validators for caching), a Client downloads and decodes snapshots
// with retries and conditional requests, and a Mirror drives a Client
// once per simulated day to rebuild an Archive — including the gap
// handling a real longitudinal collection needs.
//
// These are the provider-shaped routes (one CSV per day, formats per
// provider); the structured archive-to-archive wire API lives in
// internal/archived and serves the same sources.
package listserv

import (
	"archive/zip"
	"bytes"
	"compress/gzip"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/toplist"
)

// Format selects the on-the-wire encoding of a snapshot.
type Format int

const (
	// FormatCSV is the bare "rank,domain" file.
	FormatCSV Format = iota
	// FormatGzip is the CSV file gzip-compressed (Majestic style).
	FormatGzip
	// FormatZip is a zip archive holding one member, top-1m.csv
	// (Alexa/Umbrella style).
	FormatZip
)

// String returns the file-name suffix associated with the format.
func (f Format) String() string {
	switch f {
	case FormatCSV:
		return "top-1m.csv"
	case FormatGzip:
		return "top-1m.csv.gz"
	case FormatZip:
		return "top-1m.csv.zip"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

func (f Format) contentType() string {
	switch f {
	case FormatCSV:
		return "text/csv; charset=utf-8"
	case FormatGzip:
		return "application/gzip"
	case FormatZip:
		return "application/zip"
	default:
		return "application/octet-stream"
	}
}

// Index is the JSON document served at /v1/index describing what the
// server publishes.
type Index struct {
	Providers []string `json:"providers"`
	FirstDay  string   `json:"first_day"` // ISO date
	LastDay   string   `json:"last_day"`  // ISO date
	Days      int      `json:"days"`
}

// Server publishes an archive source over HTTP. It implements
// http.Handler.
//
// Routes (all GET/HEAD):
//
//	/v1/index                           JSON Index document
//	/v1/{provider}/latest/top-1m.csv    latest snapshot, bare CSV
//	/v1/{provider}/{date}/top-1m.csv    dated snapshot, bare CSV
//
// plus .csv.gz and .csv.zip variants of both snapshot routes. Snapshot
// responses carry a strong ETag (content hash) and a Last-Modified of
// the snapshot's publication instant, so conditional requests and
// range requests behave like a static-file host — which is what the
// real providers use.
//
// Encoded snapshot documents are kept in a bounded single-flight LRU
// (WithBlobCache) keyed by (provider, day, format) and validated by
// the identity of the immutable list they encode — so a hot-swapped
// Source (serve.SwappableSource) or a repairing DiskStore Put yields a
// different list pointer, misses, and is re-encoded instead of served
// stale.
type Server struct {
	archive *Gatekeeper
	mux     *http.ServeMux

	mu       sync.Mutex
	cache    map[blobKey]*blobEntry
	order    *list.List // LRU: front = most recent; values are blobKey
	capacity int
}

// Gatekeeper mediates read access to an archive source, so a Server
// can also publish a still-growing collection: visibility limits which
// days readers see, mimicking a provider that publishes one file per
// day. The source may be any toplist.Source — an in-memory Archive, a
// DiskStore reopened from a previous run, a store still being written,
// or a serve.SwappableSource so the served archive can be hot-swapped;
// every read resolves a per-call snapshot of the source, so a swap
// never tears a read.
type Gatekeeper struct {
	mu      sync.RWMutex
	archive toplist.Source
	visible toplist.Day // last visible day
}

// NewGatekeeper exposes archive up to (and including) lastVisible.
func NewGatekeeper(archive toplist.Source, lastVisible toplist.Day) *Gatekeeper {
	return &Gatekeeper{archive: archive, visible: lastVisible}
}

// Put stores a snapshot in the underlying archive under the
// gatekeeper's write lock, making the Gatekeeper a streaming
// toplist.SnapshotSink: the simulation engine can publish days into a
// live-served archive while HTTP readers keep going. It requires the
// gatekept source to also be a sink (a toplist.Store); gatekeeping a
// read-only source makes Put fail. Visibility does not advance
// automatically; pair Put with Advance (typically from an engine
// DaySink's EndDay) once a day is complete.
func (g *Gatekeeper) Put(provider string, day toplist.Day, l *toplist.List) error {
	sink, ok := g.archive.(toplist.SnapshotSink)
	if !ok {
		return fmt.Errorf("listserv: gatekept source %T is read-only", g.archive)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return sink.Put(provider, day, l)
}

// Advance makes days up to d visible. It never retracts visibility.
func (g *Gatekeeper) Advance(d toplist.Day) {
	g.mu.Lock()
	if d > g.visible {
		g.visible = d
	}
	g.mu.Unlock()
}

// LastVisible returns the newest published day.
func (g *Gatekeeper) LastVisible() toplist.Day {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.visible
}

// View returns a read-side toplist.Source bounded by the gatekeeper's
// visibility: Get serves only published days, and Last/Days track the
// publication frontier instead of the backing archive's full range.
// It is what lets the archive wire API (internal/archived, mounted by
// toplistd -serve-archive) publish a still-growing live collection
// with the same day-by-day visibility the provider-style routes have.
func (g *Gatekeeper) View() toplist.Source { return gateView{g} }

// gateView adapts a Gatekeeper to toplist.Source.
type gateView struct{ g *Gatekeeper }

func (v gateView) Get(provider string, day toplist.Day) *toplist.List {
	return v.g.get(provider, day)
}

func (v gateView) First() toplist.Day { return serve.Snapshot(v.g.archive).First() }

// Last returns the newest published day, clamped to the backing
// archive's range. Before the first Advance it sits below First —
// callers observe an empty (zero-day) source, and toplist.Remote
// handles that range explicitly.
func (v gateView) Last() toplist.Day {
	src := serve.Snapshot(v.g.archive)
	v.g.mu.RLock()
	defer v.g.mu.RUnlock()
	last := v.g.visible
	if last > src.Last() {
		last = src.Last()
	}
	return last
}

func (v gateView) Days() int { return toplist.DayCount(v.First(), v.Last()) }

func (v gateView) Providers() []string { return serve.Snapshot(v.g.archive).Providers() }

func (g *Gatekeeper) get(provider string, day toplist.Day) *toplist.List {
	src := serve.Snapshot(g.archive)
	g.mu.RLock()
	defer g.mu.RUnlock()
	if day > g.visible {
		return nil
	}
	return src.Get(provider, day)
}

func (g *Gatekeeper) index() Index {
	src := serve.Snapshot(g.archive)
	g.mu.RLock()
	defer g.mu.RUnlock()
	last := g.visible
	if last > src.Last() {
		last = src.Last()
	}
	return Index{
		Providers: toplist.SortedProviders(src),
		FirstDay:  src.First().String(),
		LastDay:   last.String(),
		Days:      int(last-src.First()) + 1,
	}
}

type blobKey struct {
	provider string
	day      toplist.Day
	format   Format
}

type blob struct {
	data []byte
	etag string
}

// blobEntry is one encoded snapshot document slot: filled once outside
// the lock, waited on by concurrent requests for the same document
// (single-flight), validated against the immutable list it encodes so
// a swapped or repaired slot misses instead of serving stale bytes.
type blobEntry struct {
	list  *toplist.List // the list these bytes encode — the cache validator
	ready chan struct{} // closed once data/etag (or err) are final
	data  []byte
	etag  string
	err   error
	elem  *list.Element
}

// Option configures a Server.
type Option func(*Server)

// WithMux registers the server's routes on an injected mux instead of
// a private one, so a daemon can compose the CSV publication routes,
// the archive wire API, and /metrics on one mux behind one middleware
// chain. The server still implements http.Handler (serving the same
// mux) either way.
func WithMux(mux *http.ServeMux) Option {
	return func(s *Server) { s.mux = mux }
}

// WithBlobCache bounds the encoded-document LRU to n entries (default
// 256). Each entry holds one encoded snapshot document; the bound is
// what keeps a long-running publisher's memory at the readers' working
// set rather than every document it ever served.
func WithBlobCache(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.capacity = n
		}
	}
}

// NewServer publishes every day of the archive source immediately —
// hand it an in-memory Archive, a toplist.DiskStore reopened from
// disk, or a serve.SwappableSource holding either; the HTTP surface is
// identical either way.
func NewServer(archive toplist.Source, opts ...Option) *Server {
	return NewServerAt(NewGatekeeper(archive, archive.Last()), opts...)
}

// NewServerAt publishes through a Gatekeeper, letting the caller
// control day-by-day visibility (see Mirror tests for the live-
// collection scenario).
func NewServerAt(g *Gatekeeper, opts ...Option) *Server {
	s := &Server{
		archive:  g,
		cache:    make(map[blobKey]*blobEntry),
		order:    list.New(),
		capacity: 256,
	}
	for _, o := range opts {
		o(s)
	}
	if s.mux == nil {
		s.mux = http.NewServeMux()
	}
	s.mux.HandleFunc("GET /v1/index", s.handleIndex)
	s.mux.HandleFunc("GET /v1/{provider}/{day}/{file}", s.handleSnapshot)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-cache")
	if err := json.NewEncoder(w).Encode(s.archive.index()); err != nil {
		// Headers are gone; nothing to do beyond dropping the conn.
		return
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	provider := r.PathValue("provider")
	format, ok := parseFileName(r.PathValue("file"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	var day toplist.Day
	if ds := r.PathValue("day"); ds == "latest" {
		day = s.archive.LastVisible()
	} else {
		var err error
		day, err = toplist.ParseDay(ds)
		if err != nil {
			http.Error(w, "bad date: "+ds, http.StatusBadRequest)
			return
		}
	}
	list := s.archive.get(provider, day)
	if list == nil {
		http.NotFound(w, r)
		return
	}
	b, err := s.blobFor(provider, day, format, list)
	if err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", format.contentType())
	w.Header().Set("ETag", b.etag)
	w.Header().Set("X-Toplist-Day", day.String())
	// Published at 00:00 UTC of the day after the data day, like the
	// real providers' overnight publication runs.
	published := day.Date().Add(24 * time.Hour)
	http.ServeContent(w, r, format.String(), published, bytes.NewReader(b.data))
}

func parseFileName(name string) (Format, bool) {
	switch name {
	case "top-1m.csv":
		return FormatCSV, true
	case "top-1m.csv.gz":
		return FormatGzip, true
	case "top-1m.csv.zip":
		return FormatZip, true
	default:
		return 0, false
	}
}

// blobFor returns the encoded document for l, reusing the cached
// encoding only while the source still serves the same immutable list
// for the slot — a hot swap or repairing Put yields a new list, so the
// stale entry is replaced, never served. Encodes are single-flight:
// concurrent cold requests for one document share one Encode pass.
func (s *Server) blobFor(provider string, day toplist.Day, format Format, l *toplist.List) (*blobEntry, error) {
	key := blobKey{provider, day, format}
	s.mu.Lock()
	if e, ok := s.cache[key]; ok && e.list == l {
		s.order.MoveToFront(e.elem)
		s.mu.Unlock()
		<-e.ready
		// Encode failures are not memoized: the failing entry was
		// dropped and the next request retries.
		return e, e.err
	}
	e := &blobEntry{list: l, ready: make(chan struct{})}
	if old, ok := s.cache[key]; ok {
		s.order.Remove(old.elem)
	}
	e.elem = s.order.PushFront(key)
	s.cache[key] = e
	for len(s.cache) > s.capacity {
		back := s.order.Back()
		if back == nil {
			break
		}
		evict := back.Value.(blobKey)
		s.order.Remove(back)
		delete(s.cache, evict)
	}
	s.mu.Unlock()

	data, err := Encode(l, format)
	if err != nil {
		e.err = err
		s.dropEntry(key, e)
		close(e.ready)
		return nil, err
	}
	sum := sha256.Sum256(data)
	e.data, e.etag = data, `"`+hex.EncodeToString(sum[:16])+`"`
	close(e.ready)
	return e, nil
}

// dropEntry removes e from the cache after a failed fill, if it is
// still the entry for key (eviction or replacement may have raced).
func (s *Server) dropEntry(key blobKey, e *blobEntry) {
	s.mu.Lock()
	if cur, ok := s.cache[key]; ok && cur == e {
		delete(s.cache, key)
		s.order.Remove(e.elem)
	}
	s.mu.Unlock()
}

// Encode serialises a list in the given publication format.
func Encode(list *toplist.List, format Format) ([]byte, error) {
	var csvBuf bytes.Buffer
	if err := toplist.WriteCSV(&csvBuf, list); err != nil {
		return nil, err
	}
	switch format {
	case FormatCSV:
		return csvBuf.Bytes(), nil
	case FormatGzip:
		var out bytes.Buffer
		zw := gzip.NewWriter(&out)
		if _, err := zw.Write(csvBuf.Bytes()); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		return out.Bytes(), nil
	case FormatZip:
		var out bytes.Buffer
		zw := zip.NewWriter(&out)
		f, err := zw.Create("top-1m.csv")
		if err != nil {
			return nil, err
		}
		if _, err := f.Write(csvBuf.Bytes()); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		return out.Bytes(), nil
	default:
		return nil, fmt.Errorf("listserv: unknown format %v", format)
	}
}

// Decode parses a snapshot document in the given publication format.
func Decode(data []byte, format Format) (*toplist.List, error) {
	switch format {
	case FormatCSV:
		return toplist.ReadCSV(bytes.NewReader(data))
	case FormatGzip:
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("listserv: gzip: %w", err)
		}
		defer zr.Close()
		return toplist.ReadCSV(zr)
	case FormatZip:
		zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return nil, fmt.Errorf("listserv: zip: %w", err)
		}
		for _, f := range zr.File {
			if !strings.HasSuffix(f.Name, ".csv") {
				continue
			}
			rc, err := f.Open()
			if err != nil {
				return nil, fmt.Errorf("listserv: zip member %s: %w", f.Name, err)
			}
			defer rc.Close()
			return toplist.ReadCSV(rc)
		}
		return nil, fmt.Errorf("listserv: zip holds no .csv member")
	default:
		return nil, fmt.Errorf("listserv: unknown format %v", format)
	}
}

// SnapshotPath returns the server-relative path of a dated snapshot.
func SnapshotPath(provider string, day toplist.Day, format Format) string {
	return "/v1/" + provider + "/" + day.String() + "/" + format.String()
}

// LatestPath returns the server-relative path of the newest snapshot.
func LatestPath(provider string, format Format) string {
	return "/v1/" + provider + "/latest/" + format.String()
}

// sortedFormats is used by tests iterating all formats deterministically.
func sortedFormats() []Format {
	out := []Format{FormatCSV, FormatGzip, FormatZip}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
