package webd

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/simnet"
)

// Prober runs the paper's HTTPS/HTTP2 probe method against a webd
// Server over the network: TLS handshake on the domain (SNI), follow
// up to simnet.MaxRedirects redirects, and classify the landing page.
// All domains dial the same server address — the probing analog of
// pointing a scanner's resolver at a testbed.
type Prober struct {
	client  *http.Client
	timeout time.Duration
}

// NewProber builds a prober that dials serverAddr for every domain and
// trusts pool (use Server.CertPool).
func NewProber(serverAddr string, pool *x509.CertPool) *Prober {
	dialer := &net.Dialer{Timeout: 5 * time.Second}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			// Every simulated domain lives on the one listener.
			return dialer.DialContext(ctx, network, serverAddr)
		},
		TLSClientConfig:     &tls.Config{RootCAs: pool},
		ForceAttemptHTTP2:   true,
		MaxIdleConnsPerHost: 4,
		// Each domain negotiates its own ALPN; do not share conns
		// across hosts.
		DisableKeepAlives: false,
	}
	client := &http.Client{
		Transport: transport,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			if len(via) > simnet.MaxRedirects {
				return fmt.Errorf("webd: more than %d redirects", simnet.MaxRedirects)
			}
			return nil
		},
	}
	return &Prober{client: client, timeout: 10 * time.Second}
}

// Probe implements the §8.2/§8.3 method for one domain. A failed TLS
// handshake yields Reachable=true, TLS=false (the paper's "no TLS
// support"); transport-level inability to even connect yields an
// error.
func (p *Prober) Probe(ctx context.Context, name string) (simnet.ProbeResult, error) {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "https://"+name+"/", nil)
	if err != nil {
		return simnet.ProbeResult{}, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		if isHandshakeRefusal(err) {
			return simnet.ProbeResult{Reachable: true}, nil
		}
		if strings.Contains(err.Error(), "redirects") {
			// Redirect limit exceeded: reachable, TLS fine, but no
			// landing page — the paper counts these as not
			// HTTP/2-enabled.
			return simnet.ProbeResult{Reachable: true, TLS: true}, nil
		}
		return simnet.ProbeResult{}, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck
		resp.Body.Close()
	}()

	res := simnet.ProbeResult{
		Reachable: resp.StatusCode < 500,
		TLS:       resp.TLS != nil,
		HTTP2:     resp.ProtoMajor == 2,
	}
	if hsts := resp.Header.Get("Strict-Transport-Security"); hsts != "" {
		res.HSTSHeader = hsts
		res.HSTSMaxAge = simnet.ParseHSTS(hsts).MaxAge
	}
	// Count the redirects actually followed from the final request
	// chain (the landing URL encodes the last hop index).
	if path := resp.Request.URL.Path; strings.HasPrefix(path, "/hop/") {
		fmt.Sscanf(path, "/hop/%d", &res.Redirects) //nolint:errcheck
	}
	return res, nil
}

// isHandshakeRefusal classifies errors that mean "the server will not
// speak TLS for this name" rather than "the network is broken".
func isHandshakeRefusal(err error) bool {
	var recordErr tls.RecordHeaderError
	if errors.As(err, &recordErr) {
		return true
	}
	var certErr *tls.CertificateVerificationError
	if errors.As(err, &certErr) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "handshake failure") ||
		strings.Contains(msg, "no application protocol") ||
		strings.Contains(msg, "connection reset") ||
		strings.Contains(msg, "remote error") ||
		strings.Contains(msg, "EOF")
}

// ProbeAll probes names through a bounded worker pool, preserving
// order. The first transport error cancels the remainder.
func ProbeAll(ctx context.Context, p *Prober, names []string, workers int) ([]simnet.ProbeResult, error) {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]simnet.ProbeResult, len(names))
	errs := make(chan error, workers)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := p.Probe(ctx, names[i])
				if err != nil {
					select {
					case errs <- fmt.Errorf("webd: probe %s: %w", names[i], err):
						cancel()
					default:
					}
					return
				}
				results[i] = res
			}
		}()
	}
	go func() {
		defer close(idx)
		for i := range names {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return results, nil
}
