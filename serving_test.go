package toplists

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/toplist"
)

// TestFacadeServingCore pins the serving-core facade: a SwappableSource
// behind ArchiveHandler and the full middleware chain serves the
// archive wire API, /metrics counts the traffic, and a Swap changes
// what subsequent requests read without rebuilding the handler.
func TestFacadeServingCore(t *testing.T) {
	build := func(name string) Source {
		arch := toplist.NewArchive(0, 0)
		if err := arch.Put("alexa", 0, toplist.New([]string{name, "b.org"})); err != nil {
			t.Fatal(err)
		}
		return arch
	}

	swap := NewSwappableSource(build("first.com"))
	m := NewMetrics()
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", m.Handler())
	mux.Handle("/", ArchiveHandler(swap))
	handler := ChainMiddleware(mux,
		m.Instrument(RouteLabel),
		AccessLog(nil),
		LimitRequests(16, m),
		RecoverPanics(nil, m),
	)
	ts := httptest.NewServer(handler)
	defer ts.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	path := toplist.RemoteSnapshotPath("alexa", 0)
	if body := get(path); !strings.Contains(body, "first.com") {
		t.Fatalf("pre-swap snapshot missing first.com: %q", body)
	}
	swap.Swap(build("second.com"))
	if body := get(path); !strings.Contains(body, "second.com") {
		t.Fatalf("post-swap snapshot still serving the old generation: %q", body)
	}
	exposition := get("/metrics")
	if !strings.Contains(exposition, "http_requests_total") {
		t.Fatalf("metrics exposition missing request counter:\n%s", exposition)
	}
}
