// Command benchjson converts `go test -bench` text output on stdin
// into a machine-readable JSON document on stdout — the format of the
// BENCH_engine.json perf-trajectory artifact CI uploads per run — and
// compares two such artifacts for regressions.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkEngine$' . | go run ./cmd/benchjson > BENCH_engine.json
//	go run ./cmd/benchjson -diff [-max-regress 0.30] old.json new.json
//
// In convert mode, every benchmark result line becomes one entry
// preserving input order; the ns/op figure plus any custom metrics
// (days/sec, req/sec, B/op, allocs/op) are parsed into numeric fields,
// so a trajectory of artifacts diffs cleanly.
//
// In -diff mode the two artifacts are joined on benchmark name with
// GOMAXPROCS and worker-count suffixes stripped (so "serial-2" on a
// 2-core runner matches "serial-4" on a 4-core one), days/sec,
// req/sec, B/op, and allocs/op are compared, and the exit status is
// nonzero if any metric regressed by more than -max-regress (a
// fraction; default 0.30, generous enough to absorb shared-runner
// noise). Improvements never fail the diff.
//
// -rename from=to (with -diff) renames the new artifact's benchmark
// `from` to `to` before joining, dropping any entry already named
// `to`. That turns the diff into a same-run A/B gate: comparing an
// artifact against itself with "wrapped-variant=baseline" pins the
// wrapped variant's overhead against the baseline measured in the same
// run, immune to cross-machine noise. Names are matched after suffix
// normalisation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// document is the artifact root.
type document struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Package string   `json:"pkg,omitempty"`
	Results []result `json:"results"`
}

func main() {
	diffMode := flag.Bool("diff", false, "compare two benchmark artifacts instead of converting")
	maxRegress := flag.Float64("max-regress", 0.30, "fractional regression tolerated per metric in -diff mode")
	rename := flag.String("rename", "", "from=to: rename a benchmark in the new artifact before joining (-diff mode)")
	metric := flag.String("metric", "", "compare only this metric, e.g. req/sec (-diff mode; default all)")
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two artifact paths")
			os.Exit(2)
		}
		old, err := loadDoc(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		cur, err := loadDoc(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if *rename != "" {
			from, to, ok := strings.Cut(*rename, "=")
			if !ok || from == "" || to == "" {
				fmt.Fprintln(os.Stderr, "benchjson: -rename wants from=to")
				os.Exit(2)
			}
			if !renameResults(cur, from, to) {
				fmt.Fprintf(os.Stderr, "benchjson: -rename: no benchmark %q in new artifact\n", from)
				os.Exit(2)
			}
		}
		regressions := diff(os.Stdout, old, cur, *maxRegress, *metric)
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d metric(s) regressed beyond %.0f%%\n", regressions, *maxRegress*100)
			os.Exit(1)
		}
		return
	}

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// loadDoc reads a previously written artifact.
func loadDoc(path string) (*document, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// procSuffix strips trailing "-N" worker/GOMAXPROCS decorations, so
// artifacts from runners with different core counts join on the same
// logical benchmark ("BenchmarkEngine/pipelined-2-2" → ".../pipelined").
var procSuffix = regexp.MustCompile(`(-\d+)+$`)

func normalize(name string) string {
	return procSuffix.ReplaceAllString(name, "")
}

// renameResults renames benchmarks matching from (normalised) to `to`
// in doc, dropping entries already carrying the target name so the
// renamed ones join cleanly. Reports whether anything matched.
func renameResults(doc *document, from, to string) bool {
	kept := doc.Results[:0]
	renamed := false
	for _, r := range doc.Results {
		switch normalize(r.Name) {
		case to:
			continue // displaced by the renamed entry
		case from:
			r.Name = to
			renamed = true
		}
		kept = append(kept, r)
	}
	doc.Results = kept
	return renamed
}

// diffMetric describes one compared metric: its key in the Metrics map
// and whether larger values are better.
var diffMetrics = []struct {
	key          string
	higherBetter bool
}{
	{"days/sec", true},
	{"req/sec", true},
	{"B/op", false},
	{"allocs/op", false},
}

// diff compares the common benchmarks of two artifacts and returns the
// number of metrics regressed beyond maxRegress. Benchmarks or metrics
// present on only one side are reported but never fail the diff — a
// renamed variant should not brick CI. A non-empty only restricts the
// comparison to that one metric (the -metric flag): an A/B gate like
// the middleware-overhead check cares about req/sec alone, where the
// variants legitimately differ on allocation behavior.
func diff(w io.Writer, old, cur *document, maxRegress float64, only string) int {
	newByName := make(map[string]result, len(cur.Results))
	for _, r := range cur.Results {
		newByName[normalize(r.Name)] = r
	}
	oldSeen := make(map[string]bool, len(old.Results))
	regressions := 0
	for _, o := range old.Results {
		key := normalize(o.Name)
		oldSeen[key] = true
		n, ok := newByName[key]
		if !ok {
			fmt.Fprintf(w, "%-40s only in old artifact, skipped\n", key)
			continue
		}
		for _, m := range diffMetrics {
			if only != "" && m.key != only {
				continue
			}
			ov, oOK := o.Metrics[m.key]
			nv, nOK := n.Metrics[m.key]
			if oOK != nOK {
				// A metric present on only one side means the gate no
				// longer covers it — say so instead of silently
				// disarming (a dropped ReportAllocs would otherwise
				// uncheck B/op and allocs/op with CI staying green).
				side := "new"
				if nOK {
					side = "old"
				}
				fmt.Fprintf(w, "%-40s %-10s missing from %s artifact, skipped\n", key, m.key, side)
				continue
			}
			if !oOK || ov == 0 {
				continue
			}
			ratio := nv / ov
			change := ratio - 1
			bad := false
			if m.higherBetter {
				bad = ratio < 1-maxRegress
			} else {
				bad = ratio > 1+maxRegress
			}
			status := "ok"
			if bad {
				status = "REGRESSED"
				regressions++
			}
			fmt.Fprintf(w, "%-40s %-10s %14.1f -> %14.1f  (%+6.1f%%)  %s\n",
				key, m.key, ov, nv, change*100, status)
		}
	}
	for _, r := range cur.Results {
		if key := normalize(r.Name); !oldSeen[key] {
			fmt.Fprintf(w, "%-40s only in new artifact, skipped\n", key)
		}
	}
	return regressions
}

func parse(sc *bufio.Scanner) (*document, error) {
	doc := &document{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult parses one result line of the form
//
//	BenchmarkName-8   12   93111 ns/op   42.1 days/sec   16 B/op   3 allocs/op
func parseResult(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
