// Command toplists drives the reproduction: it simulates the top-list
// ecosystem (or reopens a previously saved archive), regenerates the
// paper's tables and figures, and exports daily snapshots as CSV
// files.
//
// Usage:
//
//	toplists list                         # show experiment IDs
//	toplists experiment <id>... [flags]   # print one or more tables/figures
//	toplists all [flags]                  # print every table/figure
//	toplists figures -out DIR [flags]     # render experiments as SVG charts
//	toplists rank <domain>... [flags]     # track domains' ranks (Table 4 style)
//	toplists gen -out DIR [flags]         # write rank,domain CSVs
//	toplists verify -archive DIR          # integrity-sweep a saved archive
//	toplists verify -pack FILE            # integrity-sweep a packed archive
//	toplists pack -archive DIR -out FILE  # pack a saved archive into one file
//	toplists unpack -in FILE -archive DIR # restore a packed archive to a directory
//
// Flags:
//
//	-scale test|default   simulation scale (default "test")
//	-seed N               root seed (default 1)
//	-days N               override the simulated JOINT window length
//	-save DIR             persist the simulated archive to DIR while running
//	-archive DIR          serve from the archive saved at DIR (no resimulation;
//	                      -scale/-seed/-days must match the saving run)
//	-remote URL           serve from an archive server's wire API (toplistd
//	                      -serve-archive, mirrord; same matching rules)
//
// Exit status: 0 on success, 2 for unknown commands or bad flags (with
// the failing subcommand's usage on stderr), 1 for operational
// failures (corrupt archives, I/O errors, failed experiments).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro"
	"repro/internal/analysis"
	"repro/internal/chart"
	"repro/internal/simnet"
	"repro/internal/toplist"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "toplists:", err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usages maps each subcommand to its one-line synopsis, printed when
// that subcommand's invocation is malformed.
var usages = map[string]string{
	"list":       "toplists list",
	"experiment": "toplists experiment <id>... [flags]",
	"all":        "toplists all [flags]",
	"figures":    "toplists figures -out DIR [flags]",
	"rank":       "toplists rank <domain>... [flags]",
	"gen":        "toplists gen -out DIR [flags]",
	"verify":     "toplists verify -archive DIR | -pack FILE",
	"pack":       "toplists pack -archive DIR -out FILE",
	"unpack":     "toplists unpack -in FILE -archive DIR",
}

// usageError is an invocation mistake — unknown command, bad flags,
// missing arguments — as opposed to an operational failure. main
// prints it and exits 2; everything else exits 1, so scripts can tell
// "you called it wrong" from "it ran and failed".
type usageError struct {
	msg   string // what was wrong, "" for a bare synopsis
	usage string // the failing subcommand's synopsis
}

func (e *usageError) Error() string {
	if e.msg == "" {
		return "usage: " + e.usage
	}
	return e.msg + "\nusage: " + e.usage
}

// badUsage builds the usageError for cmd, with an optional reason.
func badUsage(cmd, format string, a ...any) *usageError {
	u, ok := usages[cmd]
	if !ok {
		u = "toplists <list|experiment|all|figures|rank|gen|verify|pack|unpack> [flags]"
	}
	return &usageError{msg: fmt.Sprintf(format, a...), usage: u}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return badUsage("", "")
	}
	cmd, rest := args[0], args[1:]
	if _, ok := usages[cmd]; !ok {
		return badUsage("", "unknown command %q", cmd)
	}

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are reported through usageError
	scaleName := fs.String("scale", "test", "simulation scale: test or default")
	seed := fs.Uint64("seed", 1, "root seed")
	days := fs.Int("days", 0, "override the simulated window length (days)")
	outDir := fs.String("out", "", "output directory (gen, figures) or file (pack)")
	saveDir := fs.String("save", "", "persist the simulated archive to this directory")
	archiveDir := fs.String("archive", "", "serve from a saved archive instead of simulating")
	remoteURL := fs.String("remote", "", "serve from an archive server's wire API instead of simulating")
	inFile := fs.String("in", "", "packed archive file to unpack")
	packFile := fs.String("pack", "", "packed archive file to verify")

	// For `experiment` and `rank`, positional arguments come before
	// the flags; they share a single simulation.
	var positional []string
	if cmd == "experiment" || cmd == "rank" {
		for len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
			positional = append(positional, rest[0])
			rest = rest[1:]
		}
		if len(positional) == 0 {
			if cmd == "rank" {
				return badUsage(cmd, "at least one domain is required")
			}
			return badUsage(cmd, "at least one experiment ID is required; IDs: %v", toplists.ExperimentIDs())
		}
	}
	if err := fs.Parse(rest); err != nil {
		return badUsage(cmd, "%v", err)
	}

	// The archive-maintenance commands need no lab (and must not: the
	// point is to inspect or repackage the archive as it is on disk,
	// not to require matching -scale flags).
	switch cmd {
	case "verify":
		if (*archiveDir == "") == (*packFile == "") {
			return badUsage(cmd, "exactly one of -archive or -pack is required")
		}
		if *packFile != "" {
			return verifyPack(*packFile)
		}
		return verifyArchive(*archiveDir)
	case "pack":
		if *archiveDir == "" || *outDir == "" {
			return badUsage(cmd, "-archive and -out are required")
		}
		return packArchive(*archiveDir, *outDir)
	case "unpack":
		if *inFile == "" || *archiveDir == "" {
			return badUsage(cmd, "-in and -archive are required")
		}
		return unpackArchive(*inFile, *archiveDir)
	}
	if *outDir == "" {
		*outDir = "snapshots"
	}

	scale, err := pickScale(*scaleName, *seed, *days)
	if err != nil {
		return err
	}
	lab, err := newLab(ctx, scale, *archiveDir, *remoteURL, *saveDir)
	if err != nil {
		return err
	}

	switch cmd {
	case "list":
		for _, id := range toplists.ExperimentIDs() {
			fmt.Printf("%-16s %s\n", id, toplists.ExperimentTitle(id))
		}
		return nil
	case "experiment":
		for i, id := range positional {
			res, err := lab.Run(ctx, id)
			if err != nil {
				return err
			}
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(res.Render())
		}
		return nil
	case "rank":
		return trackRanks(lab, positional)
	case "all":
		results, err := lab.RunAll(ctx)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Print(r.Render())
			fmt.Println()
		}
		return nil
	case "figures":
		return figures(ctx, lab, *outDir)
	case "gen":
		return generate(lab, *outDir)
	default:
		// Unreachable: cmd was validated against usages above.
		return badUsage("", "unknown command %q", cmd)
	}
}

// verifyArchive is the operator entry point for DiskStore.Verify: an
// eager integrity sweep that reads back every stored snapshot (hash
// check, then full decode) and prints the slots that fail, before any
// reader — or any raw-serving daemon — trips over them. It exits
// non-zero when corruption is found, so it slots into cron and CI.
func verifyArchive(dir string) error {
	store, err := toplists.OpenArchive(dir)
	if err != nil {
		return err
	}
	rep := store.VerifyReport()
	for _, s := range rep.Corrupt {
		fmt.Printf("corrupt: %s %s\n", s.Provider, s.Day)
	}
	if missing := store.Missing(); len(missing) > 0 {
		fmt.Printf("note: %d snapshots missing (never written)\n", len(missing))
	}
	if rep.DecodeOnly > 0 {
		fmt.Printf("note: %d snapshots have no persisted hash (pre-hash store; decode check only — rewrite to upgrade)\n", rep.DecodeOnly)
	}
	if len(rep.Corrupt) > 0 {
		return fmt.Errorf("%d corrupt snapshots in %s", len(rep.Corrupt), dir)
	}
	fmt.Printf("%s: %d providers, %d days, %d hash-verified, %d decode-only snapshots\n",
		dir, len(store.Providers()), store.Days(), rep.HashVerified, rep.DecodeOnly)
	return nil
}

// verifyPack is verifyArchive for packed single-file archives: every
// blob is read back through its directory entry and checked (hash
// first, then a full decode). Packed slots always carry per-slot
// hashes — Write refuses anything else — so the decode-only count is
// structurally zero and is reported as such for symmetry with the
// -archive report.
func verifyPack(file string) error {
	p, err := toplists.OpenPack(file)
	if err != nil {
		return err
	}
	defer p.Close()
	corrupt, err := p.Verify()
	if err != nil {
		return err
	}
	for _, s := range corrupt {
		fmt.Printf("corrupt: %s %s\n", s.Provider, s.Day)
	}
	if len(corrupt) > 0 {
		return fmt.Errorf("%d corrupt snapshots in %s", len(corrupt), file)
	}
	fmt.Printf("%s: %d providers, %d days, %d hash-verified, 0 decode-only snapshots\n",
		file, len(p.Providers()), p.Days(), p.Snapshots())
	return nil
}

// packArchive packs the saved archive at dir into the single file at
// out — the portable, range-servable form of the same snapshots.
func packArchive(dir, out string) error {
	store, err := toplists.OpenArchive(dir)
	if err != nil {
		return err
	}
	if err := toplists.WritePack(out, store); err != nil {
		return err
	}
	info, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("packed %s: %d providers, %d days -> %s (%d bytes)\n",
		dir, len(store.Providers()), store.Days(), out, info.Size())
	return nil
}

// unpackArchive restores a packed archive into a DiskStore directory.
// Snapshots are copied as raw documents (PutRaw), so the restored
// per-slot files and manifest hashes are byte-identical to the store
// the pack was written from.
func unpackArchive(in, dir string) error {
	p, err := toplists.OpenPack(in)
	if err != nil {
		return err
	}
	defer p.Close()
	store, err := toplists.CreateArchive(dir, p.First(), p.Last())
	if err != nil {
		return err
	}
	if name := p.Scale(); name != "" {
		if err := store.SetScale(name); err != nil {
			return err
		}
	}
	if expected := p.Expected(); len(expected) > 0 {
		if err := store.Expect(expected...); err != nil {
			return err
		}
	}
	count := 0
	for _, prov := range p.Providers() {
		for d := p.First(); d <= p.Last(); d++ {
			raw, err := p.GetRaw(prov, d)
			if err != nil {
				return fmt.Errorf("unpack %s %s: %w", prov, d, err)
			}
			if raw == nil {
				continue
			}
			if err := store.PutRaw(prov, d, raw.Data); err != nil {
				return fmt.Errorf("unpack %s %s: %w", prov, d, err)
			}
			count++
		}
	}
	fmt.Printf("unpacked %s: %d snapshots -> %s\n", in, count, dir)
	return nil
}

// newLab assembles the lab from the flag set: archive (resume from
// disk, no resimulation), remote (resume from an archive server's wire
// API, no resimulation), save (simulate and persist), or plain
// in-memory simulation.
func newLab(ctx context.Context, scale toplists.Scale, archiveDir, remoteURL, saveDir string) (*toplists.Lab, error) {
	sources := 0
	for _, s := range []string{archiveDir, remoteURL, saveDir} {
		if s != "" {
			sources++
		}
	}
	if sources > 1 {
		return nil, fmt.Errorf("-archive, -remote, and -save are mutually exclusive")
	}
	opts := []toplists.Option{toplists.WithScale(scale)}
	switch {
	case archiveDir != "":
		src, err := toplists.OpenArchive(archiveDir)
		if err != nil {
			return nil, err
		}
		if name := src.Scale(); name != "" && name != scale.Name {
			return nil, fmt.Errorf("archive %s was saved at scale %q, flags select %q", archiveDir, name, scale.Name)
		}
		opts = append(opts, toplists.WithSource(src))
	case remoteURL != "":
		src, err := toplists.OpenRemote(ctx, remoteURL)
		if err != nil {
			return nil, err
		}
		// Remote manifests may predate scale stamping; only a non-empty
		// advertised scale can contradict the flags.
		if name := src.Scale(); name != "" && name != scale.Name {
			return nil, fmt.Errorf("archive at %s was saved at scale %q, flags select %q", remoteURL, name, scale.Name)
		}
		opts = append(opts, toplists.WithSource(src))
	case saveDir != "":
		opts = append(opts, toplists.WithArchiveDir(saveDir))
	}
	return toplists.NewLab(opts...), nil
}

// trackRanks prints each domain's per-provider rank variation over
// the simulated window, Table 4 style, with a sparkline (tall bar =
// near rank 1, '·' = not listed). Unknown domains report zero
// presence rather than failing, mirroring a real tracker.
func trackRanks(lab *toplists.Lab, domains []string) error {
	st, err := lab.Study()
	if err != nil {
		return err
	}
	fmt.Printf("window %s..%s, list size %d\n\n",
		st.Archive.First(), st.Archive.Last(), st.Scale.ListSize)
	for _, domain := range domains {
		fmt.Println(domain)
		for _, p := range st.Providers() {
			series := st.Analysis.RankSeries(p, domain)
			s := analysis.SummariseRanks(series)
			if s.Presence == 0 {
				fmt.Printf("  %-10s never listed\n", p)
				continue
			}
			fmt.Printf("  %-10s best %-6d median %-6d worst %-6d listed %5.1f%%  %s\n",
				p, s.Highest, s.Median, s.Lowest, 100*s.Presence,
				analysis.Sparkline(series, st.Scale.ListSize))
		}
	}
	return nil
}

// figures renders every chartable experiment as an SVG line chart —
// the reproduction's actual figures. Experiments whose tables are
// categorical (e.g. the survey) are skipped with a notice.
func figures(ctx context.Context, lab *toplists.Lab, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	written, skipped := 0, 0
	for _, id := range toplists.ExperimentIDs() {
		if !chartable(id) {
			skipped++
			continue
		}
		res, err := lab.Run(ctx, id)
		if err != nil {
			return err
		}
		line, err := chart.FromTable(res.Header, res.Rows)
		if err != nil {
			skipped++
			continue
		}
		line.Title = fmt.Sprintf("%s — %s", res.ID, res.Title)
		path := filepath.Join(outDir, res.ID+".svg")
		if err := os.WriteFile(path, []byte(line.SVG()), 0o644); err != nil {
			return err
		}
		written++
	}
	fmt.Printf("wrote %d figures to %s (%d experiments not chartable)\n", written, outDir, skipped)
	return nil
}

// chartable reports whether an experiment's table is a series over an
// ordered x axis (figures and sweep-style ablations). The categorical
// tables (survey, structure, measurement matrices) stay text-only.
func chartable(id string) bool {
	if len(id) >= 3 && id[:3] == "fig" {
		return true
	}
	switch id {
	case "ablation-horizon", "aggregation":
		return true
	}
	return false
}

func pickScale(name string, seed uint64, days int) (toplists.Scale, error) {
	var s toplists.Scale
	switch name {
	case "test":
		s = toplists.TestScale()
	case "default":
		s = toplists.DefaultScale()
	default:
		return s, fmt.Errorf("unknown scale %q (want test or default)", name)
	}
	s.Population.Seed = seed
	if days > 0 {
		s.Population.Days = days
	}
	return s, nil
}

// generate writes one CSV per provider per day, in the providers'
// publication format, plus day-0 com/net/org zone files (the general
// population source, like the TLD zones the paper consumed).
func generate(lab *toplists.Lab, outDir string) error {
	st, err := lab.Study()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, tld := range []string{"com", "net", "org"} {
		f, err := os.Create(filepath.Join(outDir, tld+".zone"))
		if err != nil {
			return err
		}
		err = simnet.WriteZone(f, tld, st.World.ZoneDomains(0, tld), nil)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	count := 0
	for _, p := range st.Providers() {
		for day := 0; day < st.Days(); day++ {
			l := st.Archive.Get(p, toplist.Day(day))
			name := fmt.Sprintf("%s-%s.csv", p, toplist.Day(day))
			f, err := os.Create(filepath.Join(outDir, name))
			if err != nil {
				return err
			}
			if err := toplist.WriteCSV(f, l); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			count++
		}
	}
	fmt.Printf("wrote %d snapshots to %s\n", count, outDir)
	return nil
}
