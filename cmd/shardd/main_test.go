package main

import (
	"errors"
	"testing"
)

func TestFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad max-worlds", []string{"-max-worlds", "0"}},
		{"bad limit", []string{"-limit", "-1"}},
		{"positional", []string{"extra"}},
		{"unknown flag", []string{"-nope"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args)
			var ue *usageError
			if !errors.As(err, &ue) {
				t.Fatalf("want usageError, got %v", err)
			}
		})
	}
}

func TestFlagDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8090" || cfg.maxWorlds != 4 || cfg.limit != 1024 || !cfg.accessLog {
		t.Fatalf("defaults: %+v", cfg)
	}
}
