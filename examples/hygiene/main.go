// Command hygiene demonstrates the §9.1 recommendations as code: it
// simulates the ecosystem, applies the recommended cleaning pipeline
// (well-formed names, valid TLDs, no local junk, DNS-resolvable) to
// each provider's latest snapshot, and shows how cleaning plus a
// presence requirement changes list volume and day-to-day churn.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/hygiene"

	toplists "repro"
)

func main() {
	study, err := toplists.Simulate(context.Background(),
		toplists.WithScale(toplists.TestScale()))
	if err != nil {
		log.Fatal(err)
	}
	day := study.Archive.Last()
	zone := study.World.ZoneAt(int(day))

	fmt.Println("=== cleaning one snapshot per provider ===")
	for _, provider := range []string{toplists.Alexa, toplists.Umbrella, toplists.Majestic} {
		list := study.Archive.Get(provider, day)
		_, report := hygiene.Recommended(zone).Apply(list)
		fmt.Printf("%-10s %s\n", provider, report)
	}

	fmt.Println("\n=== churn impact of cleaning + 50% presence ===")
	fmt.Printf("%-10s %12s %12s %10s\n", "provider", "raw churn", "clean churn", "reduction")
	for _, provider := range []string{toplists.Alexa, toplists.Umbrella, toplists.Majestic} {
		pipeline := hygiene.NewPipeline(
			hygiene.WellFormed(),
			hygiene.ValidTLD(),
			hygiene.NoLocalhost(),
			hygiene.Resolvable(zone),
			hygiene.Presence(study.Archive, provider, 0.5),
		)
		imp := hygiene.StabilityImpact(study.Archive, provider, pipeline, 0)
		cut := 0.0
		if imp.RawChurn > 0 {
			cut = 1 - imp.CleanChurn/imp.RawChurn
		}
		fmt.Printf("%-10s %11.2f%% %11.2f%% %9.1f%%\n",
			provider, 100*imp.RawChurn, 100*imp.CleanChurn, 100*cut)
	}
	fmt.Println("\nthe dirtier the list (Umbrella), the more §9.1's advice buys")
}
