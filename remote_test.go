package toplists

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/engine"
)

// TestRemoteAnalysisIsByteIdenticalToDiskStore is the remote-archive
// acceptance scenario: simulate once persisting to disk, serve that
// archive over the versioned wire API, reopen it with OpenRemote, and
// run the same analysis against the remote Source and the local
// DiskStore — the rendered outputs must be byte-identical and the
// engine must never run on either read path. This is the proof of the
// ROADMAP's interface claim: an HTTP-backed source slots in behind
// toplist.Source without touching analyses, servers, or experiments.
func TestRemoteAnalysisIsByteIdenticalToDiskStore(t *testing.T) {
	scale := smallScale()
	dir := filepath.Join(t.TempDir(), "joint")
	ctx := context.Background()

	// Simulate once, teeing to disk.
	simLab := NewLab(WithScale(scale), WithArchiveDir(dir))
	if _, err := simLab.Run(ctx, "table5"); err != nil {
		t.Fatal(err)
	}

	// Read path 1: the DiskStore directly.
	store, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	runsBefore := engine.RunCount()
	diskLab := NewLab(WithScale(scale), WithSource(store))
	diskRes, err := diskLab.Run(ctx, "table5")
	if err != nil {
		t.Fatal(err)
	}

	// Read path 2: the same DiskStore served over HTTP, reopened as a
	// remote Source.
	ts := httptest.NewServer(ArchiveHandler(store))
	defer ts.Close()
	remote, err := OpenRemote(ctx, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Scale() != store.Scale() {
		t.Fatalf("remote scale %q, store scale %q", remote.Scale(), store.Scale())
	}
	remoteLab := NewLab(WithScale(scale), WithSource(remote))
	remoteRes, err := remoteLab.Run(ctx, "table5")
	if err != nil {
		t.Fatal(err)
	}

	if got := engine.RunCount(); got != runsBefore {
		t.Fatalf("engine invoked %d times on the read paths", got-runsBefore)
	}
	if diskRes.Render() != remoteRes.Render() {
		t.Fatalf("remote output differs:\n--- from disk ---\n%s\n--- over HTTP ---\n%s",
			diskRes.Render(), remoteRes.Render())
	}
}
