package experiments

import (
	"sort"
	"time"
)

// costClass is the static expected-cost ranking used by the worker
// pool before any wall times have been observed. Higher runs earlier.
// The classes come from the benchmark harness (bench_test.go at the
// module root): the Atlas probe grids (fig5, ttl) and the drivers that
// resimulate whole generator runs (manipulation, ablation-horizon,
// ablation-volume) dominate RunAll's critical path, so a pool that
// starts them last finishes one long job alone at the end.
var costClass = map[string]int{
	"fig5":             100, // probe-count × frequency grid, per-cell generator runs
	"ttl":              95,  // TTL grid over the same Atlas machinery
	"manipulation":     90,  // binary search over full generator runs
	"ablation-horizon": 85,  // four full Alexa-mechanism regenerations
	"ablation-volume":  80,  // full Umbrella regeneration under volume ranking
	"aggregation":      60,  // Dowdall series over every day × provider
	"similarity":       55,  // four rank-similarity metrics over all days
	"hygiene":          50,  // pipeline applied to every provider × day
	"table5":           40,  // full measurement campaign over four name sets
}

// cost returns the scheduling weight for id in microseconds: the wall
// time observed on this Env earlier when available — so a Lab that
// runs RunAll repeatedly converges on true longest-job-first — and
// otherwise the static class read as a (deliberately generous)
// expected runtime in seconds. The generosity is what keeps the
// ordering safe under partial information: a never-observed grid
// driver outranks any observed cheap table, so a single lab.Run of a
// trivial experiment before RunAll cannot push the critical-path jobs
// to the back of the queue.
func cost(e *Env, id string) int64 {
	if d := e.observedElapsed(id); d > 0 {
		return int64(d / time.Microsecond)
	}
	return int64(costClass[id]) * int64(time.Second/time.Microsecond)
}

// schedule returns ids reordered longest-job-first for the worker
// pool, with the ID order as a deterministic tie-break for the
// unranked cheap majority.
func schedule(e *Env, ids []string) []string {
	out := append([]string(nil), ids...)
	sort.SliceStable(out, func(i, j int) bool {
		ci, cj := cost(e, out[i]), cost(e, out[j])
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}
