package shard

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// FuzzShardWireFormat drives arbitrary bytes through the partial-sum
// frame decoder. The contract under fuzzing:
//
//   - never panic, never over-allocate beyond what the input length
//     implies (the decoder validates every length against the buffer
//     before allocating);
//   - every rejection is a typed error wrapping ErrBadFrame or
//     ErrFrameHash;
//   - every accepted frame is canonical: re-encoding it reproduces the
//     input bytes exactly (so there are no two wire spellings of the
//     same partial result, and a replayed frame hashes identically).
func FuzzShardWireFormat(f *testing.F) {
	// Valid frames of a few shapes.
	for _, fr := range []*Frame{
		{Day: 0, Lo: 0, Hi: 1, Fields: []Field{{Provider: "alexa", Values: []float64{1}}}},
		{Day: -120, Lo: 3, Hi: 6, Started: true, Fields: []Field{
			{Provider: "alexa", Values: []float64{1, 2, 3}},
			{Provider: "umbrella", Values: []float64{math.Inf(-1), 0, 5e-324}},
			{Provider: "majestic", Values: []float64{-0.0, math.MaxFloat64, 1}},
		}},
		{Day: 9, Lo: 5, Hi: 5, Started: true, Fields: []Field{{Provider: "x", Values: nil}}},
	} {
		b, err := fr.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// Structural corruption seeds: bad magic, truncated header, huge
	// counts, trailing garbage.
	valid, _ := testFrameFuzz().Encode()
	f.Add([]byte{})
	f.Add([]byte(frameMagic))
	f.Add(bytes.Repeat([]byte{0xff}, headerLen+hashLen))
	f.Add(valid[:len(valid)-1])
	f.Add(append(bytes.Clone(valid), 0xaa))
	mut := bytes.Clone(valid)
	mut[9] ^= 0xff // flags
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrFrameHash) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		re, err := frame.Encode()
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted frame is not canonical: %d in, %d out", len(data), len(re))
		}
	})
}

func testFrameFuzz() *Frame {
	return &Frame{Day: 3, Lo: 0, Hi: 2, Started: true, Fields: []Field{
		{Provider: "alexa", Values: []float64{1, 2}},
	}}
}
