package atlas

import (
	"fmt"
	"testing"

	"repro/internal/providers"
	"repro/internal/toolbar"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

// TestToolbarAttackEntersAlexa runs the Le Pochat-style toolbar attack
// end to end through the §7.1 model: a farm of fake extension installs
// reports daily visits to the attacker's domain, the collector
// aggregates them into panel statistics, FeedInjector forwards those
// into the Alexa generator, and the domain enters the published list.
func TestToolbarAttackEntersAlexa(t *testing.T) {
	m := model(t)
	const (
		attacker = "attacker-blog.com"
		bots     = 400
		days     = 21
	)
	collector := toolbar.NewCollector()
	clients := make([]*toolbar.Client, bots)
	for i := range clients {
		clients[i] = collector.Install(toolbar.Demographics{
			Age: 30, Gender: "x", InstallLocation: "home",
		})
	}
	for day := 0; day < days; day++ {
		for i, cl := range clients {
			// Each bot loads the attacker's page a few times per day.
			for v := 0; v < 3; v++ {
				url := fmt.Sprintf("https://%s/p/%d?bot=%d", attacker, v, i)
				if _, sent := cl.Visit(day, url, "https://google.com/?q=x", true); !sent {
					t.Fatal("loaded visit not transmitted")
				}
			}
		}
	}

	inj := traffic.NewInjector()
	toolbar.FeedInjector(collector, inj, attacker, 0, days-1)

	opts := costOpts()
	opts.AlexaInjector = inj
	opts.Enabled = []string{providers.Alexa}
	g, err := providers.NewGenerator(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := g.Run(days)
	if err != nil {
		t.Fatal(err)
	}
	rank := arch.Get(providers.Alexa, toplist.Day(days-1)).RankOf(attacker)
	if rank == 0 {
		t.Fatal("toolbar attack failed: attacker not listed")
	}
	t.Logf("attacker reached Alexa rank %d with %d bots x 3 views/day for %d days", rank, bots, days)

	// A visits-never-loaded farm must achieve nothing: the §7.1
	// "loaded-page gating" stops reports from non-existent pages.
	ghostCollector := toolbar.NewCollector()
	ghost := ghostCollector.Install(toolbar.Demographics{})
	for day := 0; day < days; day++ {
		if _, sent := ghost.Visit(day, "https://ghost-attacker.com/", "", false); sent {
			t.Fatal("unloaded visit was transmitted")
		}
	}
	if ghostCollector.Stats(0, "ghost-attacker.com") != nil {
		t.Fatal("unloaded visits aggregated")
	}
}

// TestToolbarAttackScalesWithBots confirms the panel mechanism's
// documented behaviour: more distinct visitors beat more page views
// from few visitors (the same unique-source principle §7.2 finds for
// Umbrella).
func TestToolbarAttackScalesWithBots(t *testing.T) {
	m := model(t)
	const days = 14
	rankFor := func(bots, viewsPerBot int) int {
		collector := toolbar.NewCollector()
		const domain = "scaling-test.com"
		for i := 0; i < bots; i++ {
			cl := collector.Install(toolbar.Demographics{})
			for day := 0; day < days; day++ {
				for v := 0; v < viewsPerBot; v++ {
					cl.Visit(day, "https://"+domain+"/", "", true) //nolint:errcheck
				}
			}
		}
		inj := traffic.NewInjector()
		toolbar.FeedInjector(collector, inj, domain, 0, days-1)
		opts := costOpts()
		opts.AlexaInjector = inj
		opts.Enabled = []string{providers.Alexa}
		g, err := providers.NewGenerator(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		arch, err := g.Run(days)
		if err != nil {
			t.Fatal(err)
		}
		return arch.Get(providers.Alexa, toplist.Day(days-1)).RankOf(domain)
	}
	manyBots := rankFor(600, 1) // 600 views/day total
	fewBots := rankFor(6, 100)  // 600 views/day total
	if manyBots == 0 {
		t.Fatal("many-bots attack did not enter the list")
	}
	if fewBots != 0 && fewBots <= manyBots {
		t.Errorf("6 bots x 100 views (rank %d) should not beat 600 bots x 1 view (rank %d)",
			fewBots, manyBots)
	}
	t.Logf("600x1 -> rank %d; 6x100 -> rank %d", manyBots, fewBots)
}
