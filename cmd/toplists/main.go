// Command toplists drives the reproduction: it simulates the top-list
// ecosystem (or reopens a previously saved archive), regenerates the
// paper's tables and figures, and exports daily snapshots as CSV
// files.
//
// Usage:
//
//	toplists list                         # show experiment IDs
//	toplists experiment <id>... [flags]   # print one or more tables/figures
//	toplists all [flags]                  # print every table/figure
//	toplists figures -out DIR [flags]     # render experiments as SVG charts
//	toplists rank <domain>... [flags]     # track domains' ranks (Table 4 style)
//	toplists gen -out DIR [flags]         # write rank,domain CSVs
//	toplists verify -archive DIR          # integrity-sweep a saved archive
//
// Flags:
//
//	-scale test|default   simulation scale (default "test")
//	-seed N               root seed (default 1)
//	-days N               override the simulated JOINT window length
//	-save DIR             persist the simulated archive to DIR while running
//	-archive DIR          serve from the archive saved at DIR (no resimulation;
//	                      -scale/-seed/-days must match the saving run)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro"
	"repro/internal/analysis"
	"repro/internal/chart"
	"repro/internal/simnet"
	"repro/internal/toplist"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "toplists:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: toplists <list|experiment|all|figures|rank|gen|verify> [flags]")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	scaleName := fs.String("scale", "test", "simulation scale: test or default")
	seed := fs.Uint64("seed", 1, "root seed")
	days := fs.Int("days", 0, "override the simulated window length (days)")
	outDir := fs.String("out", "snapshots", "output directory for gen")
	saveDir := fs.String("save", "", "persist the simulated archive to this directory")
	archiveDir := fs.String("archive", "", "serve from a saved archive instead of simulating")

	// For `experiment` and `rank`, positional arguments come before
	// the flags; they share a single simulation.
	var positional []string
	if cmd == "experiment" || cmd == "rank" {
		for len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
			positional = append(positional, rest[0])
			rest = rest[1:]
		}
		if len(positional) == 0 {
			if cmd == "rank" {
				return fmt.Errorf("usage: toplists rank <domain>... [flags]")
			}
			return fmt.Errorf("usage: toplists experiment <id>... [flags]; IDs: %v", toplists.ExperimentIDs())
		}
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}

	// verify needs no lab (and must not: the point is to inspect the
	// archive as it is on disk, not to require matching -scale flags).
	if cmd == "verify" {
		if *archiveDir == "" {
			return fmt.Errorf("usage: toplists verify -archive DIR")
		}
		return verifyArchive(*archiveDir)
	}

	scale, err := pickScale(*scaleName, *seed, *days)
	if err != nil {
		return err
	}
	lab, err := newLab(scale, *archiveDir, *saveDir)
	if err != nil {
		return err
	}

	switch cmd {
	case "list":
		for _, id := range toplists.ExperimentIDs() {
			fmt.Printf("%-16s %s\n", id, toplists.ExperimentTitle(id))
		}
		return nil
	case "experiment":
		for i, id := range positional {
			res, err := lab.Run(ctx, id)
			if err != nil {
				return err
			}
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(res.Render())
		}
		return nil
	case "rank":
		return trackRanks(lab, positional)
	case "all":
		results, err := lab.RunAll(ctx)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Print(r.Render())
			fmt.Println()
		}
		return nil
	case "figures":
		return figures(ctx, lab, *outDir)
	case "gen":
		return generate(lab, *outDir)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// verifyArchive is the operator entry point for DiskStore.Verify: an
// eager integrity sweep that reads back every stored snapshot (hash
// check, then full decode) and prints the slots that fail, before any
// reader — or any raw-serving daemon — trips over them. It exits
// non-zero when corruption is found, so it slots into cron and CI.
func verifyArchive(dir string) error {
	store, err := toplists.OpenArchive(dir)
	if err != nil {
		return err
	}
	corrupt := store.Verify()
	for _, s := range corrupt {
		fmt.Printf("corrupt: %s %s\n", s.Provider, s.Day)
	}
	if missing := store.Missing(); len(missing) > 0 {
		fmt.Printf("note: %d snapshots missing (never written)\n", len(missing))
	}
	if len(corrupt) > 0 {
		return fmt.Errorf("%d corrupt snapshots in %s", len(corrupt), dir)
	}
	fmt.Printf("%s: %d providers, %d days, all stored snapshots verified\n",
		dir, len(store.Providers()), store.Days())
	return nil
}

// newLab assembles the lab from the flag triple: archive (resume from
// disk, no resimulation), save (simulate and persist), or plain
// in-memory simulation.
func newLab(scale toplists.Scale, archiveDir, saveDir string) (*toplists.Lab, error) {
	if archiveDir != "" && saveDir != "" {
		return nil, fmt.Errorf("-archive and -save are mutually exclusive")
	}
	opts := []toplists.Option{toplists.WithScale(scale)}
	switch {
	case archiveDir != "":
		src, err := toplists.OpenArchive(archiveDir)
		if err != nil {
			return nil, err
		}
		if name := src.Scale(); name != "" && name != scale.Name {
			return nil, fmt.Errorf("archive %s was saved at scale %q, flags select %q", archiveDir, name, scale.Name)
		}
		opts = append(opts, toplists.WithSource(src))
	case saveDir != "":
		opts = append(opts, toplists.WithArchiveDir(saveDir))
	}
	return toplists.NewLab(opts...), nil
}

// trackRanks prints each domain's per-provider rank variation over
// the simulated window, Table 4 style, with a sparkline (tall bar =
// near rank 1, '·' = not listed). Unknown domains report zero
// presence rather than failing, mirroring a real tracker.
func trackRanks(lab *toplists.Lab, domains []string) error {
	st, err := lab.Study()
	if err != nil {
		return err
	}
	fmt.Printf("window %s..%s, list size %d\n\n",
		st.Archive.First(), st.Archive.Last(), st.Scale.ListSize)
	for _, domain := range domains {
		fmt.Println(domain)
		for _, p := range st.Providers() {
			series := st.Analysis.RankSeries(p, domain)
			s := analysis.SummariseRanks(series)
			if s.Presence == 0 {
				fmt.Printf("  %-10s never listed\n", p)
				continue
			}
			fmt.Printf("  %-10s best %-6d median %-6d worst %-6d listed %5.1f%%  %s\n",
				p, s.Highest, s.Median, s.Lowest, 100*s.Presence,
				analysis.Sparkline(series, st.Scale.ListSize))
		}
	}
	return nil
}

// figures renders every chartable experiment as an SVG line chart —
// the reproduction's actual figures. Experiments whose tables are
// categorical (e.g. the survey) are skipped with a notice.
func figures(ctx context.Context, lab *toplists.Lab, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	written, skipped := 0, 0
	for _, id := range toplists.ExperimentIDs() {
		if !chartable(id) {
			skipped++
			continue
		}
		res, err := lab.Run(ctx, id)
		if err != nil {
			return err
		}
		line, err := chart.FromTable(res.Header, res.Rows)
		if err != nil {
			skipped++
			continue
		}
		line.Title = fmt.Sprintf("%s — %s", res.ID, res.Title)
		path := filepath.Join(outDir, res.ID+".svg")
		if err := os.WriteFile(path, []byte(line.SVG()), 0o644); err != nil {
			return err
		}
		written++
	}
	fmt.Printf("wrote %d figures to %s (%d experiments not chartable)\n", written, outDir, skipped)
	return nil
}

// chartable reports whether an experiment's table is a series over an
// ordered x axis (figures and sweep-style ablations). The categorical
// tables (survey, structure, measurement matrices) stay text-only.
func chartable(id string) bool {
	if len(id) >= 3 && id[:3] == "fig" {
		return true
	}
	switch id {
	case "ablation-horizon", "aggregation":
		return true
	}
	return false
}

func pickScale(name string, seed uint64, days int) (toplists.Scale, error) {
	var s toplists.Scale
	switch name {
	case "test":
		s = toplists.TestScale()
	case "default":
		s = toplists.DefaultScale()
	default:
		return s, fmt.Errorf("unknown scale %q (want test or default)", name)
	}
	s.Population.Seed = seed
	if days > 0 {
		s.Population.Days = days
	}
	return s, nil
}

// generate writes one CSV per provider per day, in the providers'
// publication format, plus day-0 com/net/org zone files (the general
// population source, like the TLD zones the paper consumed).
func generate(lab *toplists.Lab, outDir string) error {
	st, err := lab.Study()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, tld := range []string{"com", "net", "org"} {
		f, err := os.Create(filepath.Join(outDir, tld+".zone"))
		if err != nil {
			return err
		}
		err = simnet.WriteZone(f, tld, st.World.ZoneDomains(0, tld), nil)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	count := 0
	for _, p := range st.Providers() {
		for day := 0; day < st.Days(); day++ {
			l := st.Archive.Get(p, toplist.Day(day))
			name := fmt.Sprintf("%s-%s.csv", p, toplist.Day(day))
			f, err := os.Create(filepath.Join(outDir, name))
			if err != nil {
				return err
			}
			if err := toplist.WriteCSV(f, l); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			count++
		}
	}
	fmt.Printf("wrote %d snapshots to %s\n", count, outDir)
	return nil
}
