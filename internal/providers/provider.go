// Package providers implements the three list-generation mechanisms the
// paper studies (§2, §7): Alexa (panel-observed web visits over a
// sliding window, with the January-2018 regime change), Cisco Umbrella
// (FQDNs ranked by unique DNS client counts), and Majestic (base
// domains ranked by slowly-evolving backlink counts over 90 days).
//
// Sliding windows are modelled as exponential moving averages with
// matching effective length (see DESIGN.md; BenchmarkAblationWindow
// compares against an exact ring-buffer window).
package providers

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/parallel"
	"repro/internal/population"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

// Options configures archive generation.
type Options struct {
	// ListSize is the published list length (the paper's "Top 1M"
	// analog).
	ListSize int
	// BurnInDays warms the provider windows before day 0 so the archive
	// starts in steady state.
	BurnInDays int
	// AlexaChangeDay is the day the Alexa list switches to its short
	// window (the paper's late-January-2018 change); -1 disables it.
	AlexaChangeDay int
	// EMA smoothing factors. Alpha = 2/(window+1): 2/91 corresponds to
	// the documented 90-day windows.
	AlexaAlphaPre, AlexaAlphaPost float64
	UmbrellaAlpha                 float64
	MajesticAlpha                 float64
	// UmbrellaVolumeRanking switches Umbrella to raw query-volume
	// ranking instead of unique clients — the §7.2 ablation; the
	// default (false) matches the real mechanism.
	UmbrellaVolumeRanking bool
	// Injector adds external DNS activity (RIPE-Atlas-style) into
	// Umbrella's input.
	Injector *traffic.Injector
	// AlexaInjector adds synthetic panel activity (toolbar-API-style,
	// §7.1 / Le Pochat et al.) into Alexa's input: Clients are panel
	// visitors, Queries are page views.
	AlexaInjector *traffic.Injector
	// MajesticInjector adds synthetic backlinks (purchased-link-style,
	// §7.3) into Majestic's input: Clients are referring /24 subnets;
	// Queries are ignored.
	MajesticInjector *traffic.Injector
	// Enabled restricts which providers are generated (nil = all
	// three). The §7 experiments only need Umbrella and use this to
	// skip the other two.
	Enabled []string
}

func (o Options) enabled(name string) bool {
	if o.Enabled == nil {
		return true
	}
	for _, e := range o.Enabled {
		if e == name {
			return true
		}
	}
	return false
}

// DefaultOptions returns calibrated options for an archive of the given
// length: the Alexa change lands two-thirds through, mirroring its
// position inside the paper's JOINT window.
func DefaultOptions(days, listSize int) Options {
	return Options{
		ListSize:       listSize,
		BurnInDays:     120,
		AlexaChangeDay: days * 2 / 3,
		AlexaAlphaPre:  2.0 / 91.0,
		AlexaAlphaPost: 0.75,
		UmbrellaAlpha:  0.65,
		MajesticAlpha:  2.0 / 91.0,
	}
}

// Validate reports option errors.
func (o Options) Validate() error {
	if o.ListSize < 10 {
		return fmt.Errorf("providers: ListSize must be >= 10, got %d", o.ListSize)
	}
	for _, a := range []float64{o.AlexaAlphaPre, o.AlexaAlphaPost, o.UmbrellaAlpha, o.MajesticAlpha} {
		if a <= 0 || a > 1 {
			return fmt.Errorf("providers: EMA alpha %v outside (0,1]", a)
		}
	}
	if o.BurnInDays < 0 {
		return fmt.Errorf("providers: negative burn-in")
	}
	return nil
}

// Provider names used in archives.
const (
	Alexa    = "alexa"
	Umbrella = "umbrella"
	Majestic = "majestic"
)

// EnabledProviders returns the providers these options emit, in the
// fixed output order (Alexa, Umbrella, Majestic).
func (o Options) EnabledProviders() []string {
	out := make([]string, 0, 3)
	for _, p := range []string{Alexa, Umbrella, Majestic} {
		if o.enabled(p) {
			out = append(out, p)
		}
	}
	return out
}

// Generator produces daily snapshots for all three providers.
type Generator struct {
	Model *traffic.Model
	Opts  Options

	alexa    *webRanker
	majestic *webRanker
	umbrella *dnsRanker
}

// NewGenerator builds a generator; options are validated.
func NewGenerator(m *traffic.Model, opts Options) (*Generator, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{Model: m, Opts: opts}
	buckets := newBaseBuckets(m.W)
	g.alexa = newWebRanker(m, traffic.AxisWeb, opts.AlexaAlphaPre, opts.AlexaInjector, buckets)
	g.majestic = newWebRanker(m, traffic.AxisLink, opts.MajesticAlpha, opts.MajesticInjector, buckets)
	g.umbrella = newDNSRanker(m, opts)
	return g, nil
}

// EnabledProviders returns the providers this generator emits, in the
// fixed output order (Alexa, Umbrella, Majestic).
func (g *Generator) EnabledProviders() []string { return g.Opts.EnabledProviders() }

// Run generates the archive for days [0, days): burn-in first, then one
// snapshot per provider per day. It is the serial reference
// implementation; internal/engine drives the same stepping API
// concurrently and must stay byte-identical to it.
func (g *Generator) Run(days int) (*toplist.Archive, error) {
	if days < 1 {
		return nil, fmt.Errorf("providers: days must be >= 1")
	}
	for d := -g.Opts.BurnInDays; d < 0; d++ {
		g.StepDay(d, 1)
	}
	arch := toplist.NewArchive(0, toplist.Day(days-1))
	arch.Expect(g.EnabledProviders()...)
	for d := 0; d < days; d++ {
		g.StepDay(d, 1)
		for _, s := range g.Snapshots(toplist.Day(d), 1) {
			if err := arch.Put(s.Provider, s.Day, s.List); err != nil {
				return nil, err
			}
		}
	}
	return arch, nil
}

// StepDay advances all enabled providers to day d — the signal/EMA
// stepping phase of the day, with rank/top-K selection split out into
// Freeze(d).Snapshots. With workers > 1 the three providers step
// concurrently (their EMA states are fully independent) and each
// shards its per-domain loops across workers; the result is bitwise
// identical to workers == 1 because every score accumulator still sums
// the same values in the same order. The EMA state is double-buffered:
// StepDay(d+1) leaves day d's frozen rank view intact, and only
// StepDay(d+2) reclaims it.
func (g *Generator) StepDay(d, workers int) {
	if g.Opts.AlexaChangeDay >= 0 && d == g.Opts.AlexaChangeDay {
		g.alexa.alpha = g.Opts.AlexaAlphaPost
	}
	if workers <= 1 {
		// Closure-free serial path: the steady-state day allocates
		// nothing here.
		if g.Opts.enabled(Alexa) {
			g.alexa.step(d, 1)
		}
		if g.Opts.enabled(Majestic) {
			g.majestic.step(d, 1)
		}
		if g.Opts.enabled(Umbrella) {
			g.umbrella.step(d, 1)
		}
		return
	}
	tasks := make([]func(), 0, 3)
	if g.Opts.enabled(Alexa) {
		tasks = append(tasks, func() { g.alexa.step(d, workers) })
	}
	if g.Opts.enabled(Majestic) {
		tasks = append(tasks, func() { g.majestic.step(d, workers) })
	}
	if g.Opts.enabled(Umbrella) {
		tasks = append(tasks, func() { g.umbrella.step(d, workers) })
	}
	parallel.Do(tasks...)
}

// Snapshots generates the enabled providers' lists for day, in the
// fixed output order. With workers > 1 the per-provider top-K
// selections run concurrently. It is Freeze followed by an immediate
// rank — the barriered composition the pipelined engine splits apart.
func (g *Generator) Snapshots(day toplist.Day, workers int) []toplist.Snapshot {
	return g.Freeze(day).Snapshots(workers)
}

// RankView is a frozen view of the rank inputs for one day, captured
// by Freeze after StepDay(d): the EMA front buffers by reference
// (copy-free — they are double-buffered) plus a clone of the small
// injected-name states. The view stays valid while StepDay(d+1) runs
// and is invalidated by StepDay(d+2), which reclaims the buffers; the
// engine's pipeline enforces that ordering, giving it one full day of
// top-K selection overlapped with the next day's stepping.
type RankView struct {
	day      toplist.Day
	listSize int
	views    []providerView
}

// providerView is one provider's frozen rank input.
type providerView struct {
	provider string
	m        *traffic.Model
	ema      []float64
	extra    map[string]float64
	// scratch is the provider's persistent top-K selection scratch.
	// Only one rank view per generator may rank at a time (the pipeline
	// hands views over an unbuffered channel, which enforces exactly
	// that), so sharing the ranker-owned buffers across days is safe
	// and makes the steady-state rank phase allocation-free.
	scratch *rankScratch
}

func (pv *providerView) list(size int) *toplist.List {
	top := topIDsInto(&pv.scratch.cand, pv.ema, size)
	return mergeExtras(pv.m, top, pv.ema, pv.extra, size, pv.scratch)
}

// rankScratch holds one provider's reusable top-K selection buffers:
// the candidate-ID slice (previously a fresh len(scores) allocation per
// provider per day) and the rank-ordered name output (copied into the
// immutable List on construction, so reuse never aliases a published
// snapshot).
type rankScratch struct {
	cand  []uint32
	names []string
	ids   []uint32
}

func cloneExtra(extra map[string]float64) map[string]float64 {
	if len(extra) == 0 {
		return nil
	}
	out := make(map[string]float64, len(extra))
	for k, v := range extra {
		out[k] = v
	}
	return out
}

// Freeze captures the rank inputs for day — which must be the day of
// the latest StepDay — so top-K selection can run concurrently with
// the next day's stepping. See RankView for the validity window.
func (g *Generator) Freeze(day toplist.Day) *RankView {
	v := &RankView{day: day, listSize: g.Opts.ListSize, views: make([]providerView, 0, 3)}
	if g.Opts.enabled(Alexa) {
		v.views = append(v.views, providerView{Alexa, g.Model, g.alexa.ema.Front(), cloneExtra(g.alexa.extra), &g.alexa.scratch})
	}
	if g.Opts.enabled(Umbrella) {
		v.views = append(v.views, providerView{Umbrella, g.Model, g.umbrella.ema.Front(), cloneExtra(g.umbrella.extra), &g.umbrella.scratch})
	}
	if g.Opts.enabled(Majestic) {
		v.views = append(v.views, providerView{Majestic, g.Model, g.majestic.ema.Front(), cloneExtra(g.majestic.extra), &g.majestic.scratch})
	}
	return v
}

// Day returns the day the view was frozen at.
func (v *RankView) Day() toplist.Day { return v.day }

// Snapshots runs the rank/top-K selection phase over the frozen state,
// producing the day's lists in the fixed provider output order. With
// workers > 1 the per-provider selections run concurrently; with
// workers <= 1 they run inline, closure-free, so the serial steady
// state allocates nothing beyond the lists themselves.
func (v *RankView) Snapshots(workers int) []toplist.Snapshot {
	out := make([]toplist.Snapshot, len(v.views))
	if workers <= 1 {
		for i := range v.views {
			pv := &v.views[i]
			out[i] = toplist.Snapshot{Provider: pv.provider, Day: v.day, List: pv.list(v.listSize)}
		}
		return out
	}
	gen := make([]func(), 0, len(v.views))
	for i := range v.views {
		pv := &v.views[i]
		out[i] = toplist.Snapshot{Provider: pv.provider, Day: v.day}
		s := &out[i]
		gen = append(gen, func() { s.List = pv.list(v.listSize) })
	}
	parallel.Do(gen...)
	return out
}

// --- base-domain web/link ranker (Alexa, Majestic) --------------------

// baseBuckets maps every base-domain slot to its member record indices
// (the base itself plus its subdomains) in ascending order, in CSR
// form. It lets per-base aggregation be sharded across workers while
// reproducing the serial accumulation order exactly: each slot's sum
// visits the same record indices ascending, so the floating-point
// result is bitwise identical to the serial loop. The layout is a pure
// function of the immutable world and is shared by all rankers over it.
type baseBuckets struct {
	start   []int    // len = W.Len()+1; members of slot b are ids[start[b]:start[b+1]]
	members []uint32 // record indices, ascending within each slot
}

func newBaseBuckets(w *population.World) *baseBuckets {
	n := w.Len()
	start := make([]int, n+1)
	for i := range w.Domains {
		start[w.Domains[i].BaseID+1]++
	}
	for b := 0; b < n; b++ {
		start[b+1] += start[b]
	}
	members := make([]uint32, n)
	fill := make([]int, n)
	for i := range w.Domains {
		b := w.Domains[i].BaseID
		members[start[b]+fill[b]] = uint32(i)
		fill[b]++
	}
	return &baseBuckets{start: start, members: members}
}

// webRanker aggregates an axis signal per base domain and ranks bases
// by an EMA of it. An optional injector merges synthetic external
// activity (the §7 manipulation experiments) under the same window.
type webRanker struct {
	m       *traffic.Model
	axis    traffic.Axis
	alpha   float64
	inj     *traffic.Injector
	buckets *baseBuckets
	// convert maps injected client counts (panel visitors / referring
	// subnets) into the axis's latent signal units.
	convert func(float64) float64

	sig     []float64          // per-record scratch
	score   []float64          // per-base aggregated daily signal
	ema     *dualEMA           // per-base window state, double-buffered
	extra   map[string]float64 // injected names' EMA
	scratch rankScratch        // persistent top-K selection buffers
	started bool
}

func newWebRanker(m *traffic.Model, axis traffic.Axis, alpha float64, inj *traffic.Injector, buckets *baseBuckets) *webRanker {
	n := m.W.Len()
	convert := func(v float64) float64 { return v }
	switch axis {
	case traffic.AxisWeb:
		convert = m.WebSignalFor
	case traffic.AxisLink:
		convert = m.LinkSignalFor
	}
	return &webRanker{
		m:       m,
		axis:    axis,
		alpha:   alpha,
		inj:     inj,
		buckets: buckets,
		convert: convert,
		sig:     make([]float64, n),
		score:   make([]float64, n),
		ema:     newDualEMA(n),
		extra:   make(map[string]float64),
	}
}

func (r *webRanker) step(day, workers int) {
	n := len(r.sig)
	if workers <= 1 {
		r.m.SignalRange(r.axis, day, r.sig, 0, n)
	} else {
		parallel.For(workers, n, func(lo, hi int) {
			r.m.SignalRange(r.axis, day, r.sig, lo, hi)
		})
	}
	// The EMA advance reads yesterday's front buffer and writes the
	// back buffer, then flips — never in place, so the previous front
	// remains a valid frozen rank view while the next day steps.
	prev, next := r.ema.Front(), r.ema.Back()
	a := r.alpha
	started := r.started
	if workers <= 1 {
		// Serial reference path: direct accumulation over records,
		// then a separate EMA pass.
		for i := range r.score {
			r.score[i] = 0
		}
		for i := range r.m.W.Domains {
			bid := r.m.W.Domains[i].BaseID
			r.score[bid] += r.sig[i]
		}
		if !started {
			copy(next, r.score)
		} else {
			for i := range r.score {
				next[i] = (1-a)*prev[i] + a*r.score[i]
			}
		}
	} else {
		// Sharded over the base-slot space; each slot sums its members
		// in the same ascending order the serial loop visits them, and
		// the EMA advance is fused into the same pass (the operands are
		// the identical values, so the fusion changes no arithmetic —
		// it only saves one fan-out barrier per provider per day).
		parallel.For(workers, n, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				var s float64
				for _, i := range r.buckets.members[r.buckets.start[b]:r.buckets.start[b+1]] {
					s += r.sig[i]
				}
				r.score[b] = s
				if !started {
					next[b] = s
				} else {
					next[b] = (1-a)*prev[b] + a*s
				}
			}
		})
	}
	r.ema.Flip()
	r.started = true
	stepExtras(r.extra, r.injectionsFor(day), a, r.convert)
}

func (r *webRanker) injectionsFor(day int) map[string]traffic.Injection {
	if r.inj == nil {
		return nil
	}
	return r.inj.For(day)
}

// stepExtras advances injected names' EMA one day: today's injections
// contribute clients (visitors / subnets) plus a marginal page-view
// credit, converted into the ranker's signal units; names not injected
// today decay under the same window.
func stepExtras(extra map[string]float64, today map[string]traffic.Injection, alpha float64, convert func(float64) float64) {
	for name := range extra {
		if _, ok := today[name]; !ok {
			extra[name] *= (1 - alpha)
			if extra[name] < 1e-12 {
				delete(extra, name)
			}
		}
	}
	for name, inj := range today {
		score := convert(inj.Clients + inj.Queries/(queriesPerClient*100))
		extra[name] = (1-alpha)*extra[name] + alpha*score
	}
}

// mergeExtras merges the world's top IDs with injected names into one
// descending-rank list; injected names get synthetic IDs above the
// world range. Output is staged in sc's reusable buffers — the List
// constructor copies, so reuse never aliases a published snapshot.
func mergeExtras(m *traffic.Model, top []uint32, ema []float64, extra map[string]float64, size int, sc *rankScratch) *toplist.List {
	if len(extra) == 0 {
		names := sc.names[:0]
		for _, id := range top {
			names = append(names, m.W.Domains[id].Name)
		}
		sc.names = names
		return toplist.NewWithIDs(names, top)
	}
	type ext struct {
		name  string
		score float64
	}
	extras := make([]ext, 0, len(extra))
	for name, s := range extra {
		extras = append(extras, ext{name, s})
	}
	sort.Slice(extras, func(i, j int) bool {
		if extras[i].score != extras[j].score {
			return extras[i].score > extras[j].score
		}
		return extras[i].name < extras[j].name
	})
	names := sc.names[:0]
	ids := sc.ids[:0]
	wi, ei := 0, 0
	worldLen := uint32(m.W.Len())
	for len(names) < size && (wi < len(top) || ei < len(extras)) {
		useExtra := false
		switch {
		case wi >= len(top):
			useExtra = true
		case ei >= len(extras):
			useExtra = false
		default:
			useExtra = extras[ei].score > ema[top[wi]]
		}
		if useExtra {
			names = append(names, extras[ei].name)
			ids = append(ids, worldLen+uint32(ei))
			ei++
		} else {
			names = append(names, m.W.Domains[top[wi]].Name)
			ids = append(ids, top[wi])
			wi++
		}
	}
	sc.names, sc.ids = names, ids
	return toplist.NewWithIDs(names, ids)
}

// --- FQDN DNS ranker (Umbrella) ---------------------------------------

// dnsRanker ranks every FQDN record by an EMA of its estimated unique
// client count (or raw query volume under the ablation), merging in
// injected external activity.
type dnsRanker struct {
	m    *traffic.Model
	opts Options

	sig     []float64
	ema     *dualEMA           // per-record window state, double-buffered
	extra   map[string]float64 // injected names' EMA
	scratch rankScratch        // persistent top-K selection buffers
	started bool
}

func newDNSRanker(m *traffic.Model, opts Options) *dnsRanker {
	n := m.W.Len()
	return &dnsRanker{
		m:     m,
		opts:  opts,
		sig:   make([]float64, n),
		ema:   newDualEMA(n),
		extra: make(map[string]float64),
	}
}

// queriesPerClient is the mean daily query count a single client
// contributes for an ordinary domain; used to convert query volume to
// score under the volume-ranking ablation.
const queriesPerClient = 12.0

func (r *dnsRanker) step(day, workers int) {
	n := len(r.sig)
	// Signal fill and the per-record EMA update are elementwise, so
	// sharding them changes nothing about the arithmetic. As in
	// webRanker, the update reads the front buffer and writes the back
	// so a frozen rank view of yesterday survives this step.
	prev, next := r.ema.Front(), r.ema.Back()
	if workers <= 1 {
		r.stepRange(day, prev, next, 0, n)
	} else {
		parallel.For(workers, n, func(lo, hi int) {
			r.stepRange(day, prev, next, lo, hi)
		})
	}
	r.ema.Flip()
	r.stepExtras(day)
	r.started = true
}

// stepExtras advances the injected names' EMA one day; split out of step
// so the distributed merge path (Generator.MergeDay) can run the
// coordinator-owned extras update without touching the per-record state.
func (r *dnsRanker) stepExtras(day int) {
	a := r.opts.UmbrellaAlpha
	// Injected names: anything not injected today decays toward zero.
	var today map[string]traffic.Injection
	if r.opts.Injector != nil {
		today = r.opts.Injector.For(day)
	}
	for name := range r.extra {
		if _, ok := today[name]; !ok {
			r.extra[name] *= (1 - a)
			if r.extra[name] < 1e-6 {
				delete(r.extra, name)
			}
		}
	}
	for name, inj := range today {
		score := inj.Clients
		if r.opts.UmbrellaVolumeRanking {
			score = inj.Queries
		} else {
			// Unique-client ranking still credits volume marginally.
			score += inj.Queries / (queriesPerClient * 100)
		}
		r.extra[name] = (1-a)*r.extra[name] + a*score
	}
}

// stepRange fills signal and advances the EMA over records [lo, hi) —
// the shardable body of step, also callable directly so the serial
// path stays closure-free.
func (r *dnsRanker) stepRange(day int, prev, next []float64, lo, hi int) {
	a := r.opts.UmbrellaAlpha
	r.m.SignalRange(traffic.AxisDNS, day, r.sig, lo, hi)
	for i := lo; i < hi; i++ {
		clients := r.m.UniqueClients(r.sig[i])
		score := clients
		if r.opts.UmbrellaVolumeRanking {
			score = clients * queriesPerClient
		}
		if !r.started {
			next[i] = score
		} else {
			next[i] = (1-a)*prev[i] + a*score
		}
	}
}

// --- top-K selection ---------------------------------------------------

// topIDs returns the indexes of the size largest positive scores, in
// descending score order (ties broken by index for determinism).
func topIDs(scores []float64, size int) []uint32 {
	buf := make([]uint32, 0, len(scores))
	return topIDsInto(&buf, scores, size)
}

// topIDsInto is topIDs over a caller-owned candidate buffer: *buf is
// reset, grown as needed (and written back so the capacity persists),
// and the returned slice aliases it — valid until the next call with
// the same buffer. The steady-state day loop passes each provider's
// rankScratch here, eliminating the per-provider-per-day len(scores)
// candidate allocation.
func topIDsInto(buf *[]uint32, scores []float64, size int) []uint32 {
	cand := (*buf)[:0]
	for i, s := range scores {
		if s > 0 {
			cand = append(cand, uint32(i))
		}
	}
	*buf = cand
	if size > len(cand) {
		size = len(cand)
	}
	if size == 0 {
		return nil
	}
	less := func(a, b uint32) bool {
		sa, sb := scores[a], scores[b]
		if sa != sb {
			return sa > sb
		}
		return a < b
	}
	quickselect(cand, size, less)
	top := cand[:size]
	// The comparator is a strict total order (indices are distinct), so
	// the sorted result is unique — switching sort implementations can
	// never change the emitted order, and SortFunc avoids sort.Slice's
	// per-call reflection setup.
	slices.SortFunc(top, func(a, b uint32) int {
		if less(a, b) {
			return -1
		}
		return 1
	})
	return top
}

// quickselect partially orders xs so that the k elements that compare
// least under less occupy xs[:k] (in arbitrary order).
func quickselect(xs []uint32, k int, less func(a, b uint32) bool) {
	lo, hi := 0, len(xs)
	for hi-lo > 1 {
		// Median-of-three pivot for resilience on sorted inputs.
		mid := lo + (hi-lo)/2
		if less(xs[mid], xs[lo]) {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if less(xs[hi-1], xs[lo]) {
			xs[hi-1], xs[lo] = xs[lo], xs[hi-1]
		}
		if less(xs[hi-1], xs[mid]) {
			xs[hi-1], xs[mid] = xs[mid], xs[hi-1]
		}
		pivot := xs[mid]
		i, j := lo, hi-1
		for i <= j {
			for less(xs[i], pivot) {
				i++
			}
			for less(pivot, xs[j]) {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j + 1
		case k > i:
			lo = i
		default:
			return
		}
	}
}
