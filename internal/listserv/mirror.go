package listserv

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/toplist"
)

// Mirror rebuilds a multi-provider Archive by downloading one snapshot
// per provider per day — the paper's §4 collection process ("we source
// daily snapshots ... but only used periods with continuous daily
// data"). Days a provider failed to publish are recorded as gaps, and
// LongestContinuousRun recovers the paper's usable-period rule.
type Mirror struct {
	client    *Client
	providers []string
	workers   int

	mu      sync.Mutex
	archive *toplist.Archive
	gaps    map[string][]toplist.Day
}

// MirrorOption configures a Mirror.
type MirrorOption func(*Mirror)

// WithWorkers sets the per-day download parallelism (default: one
// goroutine per provider).
func WithWorkers(n int) MirrorOption {
	return func(m *Mirror) {
		if n > 0 {
			m.workers = n
		}
	}
}

// NewMirror collects the given providers through client.
func NewMirror(client *Client, providers []string, opts ...MirrorOption) *Mirror {
	m := &Mirror{
		client:    client,
		providers: append([]string(nil), providers...),
		workers:   len(providers),
		gaps:      make(map[string][]toplist.Day),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Collect downloads all snapshots in [first, last] and returns the
// assembled archive. Unpublished snapshots (404) become gaps; any
// other error aborts the collection.
func (m *Mirror) Collect(ctx context.Context, first, last toplist.Day) (*toplist.Archive, error) {
	if last < first {
		return nil, fmt.Errorf("listserv: collect range [%v,%v] is empty", first, last)
	}
	m.mu.Lock()
	m.archive = toplist.NewArchive(first, last)
	m.gaps = make(map[string][]toplist.Day)
	m.mu.Unlock()
	for d := first; d <= last; d++ {
		if err := m.CollectDay(ctx, d); err != nil {
			return nil, err
		}
	}
	return m.Archive(), nil
}

// CollectDay downloads one day across all providers, in parallel.
// It may be called repeatedly with increasing days to follow a live
// publisher (see Gatekeeper).
func (m *Mirror) CollectDay(ctx context.Context, day toplist.Day) error {
	type result struct {
		provider string
		list     *toplist.List
		err      error
	}
	jobs := make(chan string)
	results := make(chan result)
	var wg sync.WaitGroup
	for i := 0; i < m.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				l, err := m.client.FetchDay(ctx, p, day)
				results <- result{provider: p, list: l, err: err}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, p := range m.providers {
			select {
			case jobs <- p:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	var firstErr error
	for r := range results {
		switch {
		case r.err == nil:
			m.mu.Lock()
			err := m.archive.Put(r.provider, day, r.list)
			m.mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
		case IsNotFound(r.err):
			m.mu.Lock()
			m.gaps[r.provider] = append(m.gaps[r.provider], day)
			m.mu.Unlock()
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("listserv: %s day %v: %w", r.provider, day, r.err)
			}
		}
	}
	return firstErr
}

// Archive returns the collected archive (nil before Collect).
func (m *Mirror) Archive() *toplist.Archive {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.archive
}

// Gaps returns, per provider, the days that were not published, in
// ascending order.
func (m *Mirror) Gaps() map[string][]toplist.Day {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]toplist.Day, len(m.gaps))
	for p, days := range m.gaps {
		c := append([]toplist.Day(nil), days...)
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		out[p] = c
	}
	return out
}

// Run is a continuous day range within an archive.
type Run struct {
	First, Last toplist.Day
}

// Days returns the length of the run.
func (r Run) Days() int { return int(r.Last-r.First) + 1 }

// LongestContinuousRun returns the longest day range over which every
// provider in the archive has a snapshot — the paper's "only used
// periods with continuous daily data" selection rule. ok is false when
// no day is complete.
func LongestContinuousRun(a toplist.Source) (Run, bool) {
	providers := a.Providers()
	if len(providers) == 0 {
		return Run{}, false
	}
	var best, cur Run
	var inRun, found bool
	for d := a.First(); d <= a.Last(); d++ {
		complete := true
		for _, p := range providers {
			if a.Get(p, d) == nil {
				complete = false
				break
			}
		}
		if complete {
			if !inRun {
				cur = Run{First: d, Last: d}
				inRun = true
			} else {
				cur.Last = d
			}
			if !found || cur.Days() > best.Days() {
				best = cur
				found = true
			}
		} else {
			inRun = false
		}
	}
	return best, found
}
