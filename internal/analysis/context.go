// Package analysis implements the paper's §5 (structure) and §6
// (stability) analyses over a multi-provider snapshot archive: Table 2
// structure metrics, list intersections (Fig. 1a, Table 3), churn and
// growth (Figs. 1b–2c), weekend/weekday dynamics (Fig. 3), rank-order
// correlation (Fig. 4), and per-domain rank variation (Table 4).
package analysis

import (
	"repro/internal/domainname"
	"repro/internal/population"
	"repro/internal/toplist"
)

// Context caches per-domain parse results so the per-day analyses stay
// cheap. It is safe for sequential reuse across all analyses of one
// archive. Arch is the read-side interface, so the same analyses run
// unchanged against an in-memory Archive or a DiskStore reopened from
// a previous run.
type Context struct {
	W    *population.World
	Arch toplist.Source

	// Per world-record parse cache.
	info []nameInfo
	// base-domain string -> compact key, shared across providers.
	baseKeys map[string]uint32
}

type nameInfo struct {
	tld      string
	sldGroup string
	baseKey  uint32
	depth    uint8
	validTLD bool
}

// NewContext builds the cache for the world underlying arch.
func NewContext(w *population.World, arch toplist.Source) *Context {
	c := &Context{
		W:        w,
		Arch:     arch,
		info:     make([]nameInfo, w.Len()),
		baseKeys: make(map[string]uint32),
	}
	for i := range w.Domains {
		d := &w.Domains[i]
		n, err := domainname.Parse(d.Name)
		if err != nil {
			continue
		}
		base := n.Base
		if base == "" {
			base = n.FQDN
		}
		c.info[i] = nameInfo{
			tld:      n.TLD,
			sldGroup: domainname.SLDGroup(d.Name),
			baseKey:  c.baseKey(base),
			depth:    uint8(n.Depth),
			validTLD: n.ValidTLD,
		}
	}
	return c
}

func (c *Context) baseKey(base string) uint32 {
	if k, ok := c.baseKeys[base]; ok {
		return k
	}
	k := uint32(len(c.baseKeys))
	c.baseKeys[base] = k
	return k
}

// worldIDs returns the list's IDs restricted to world records (dropping
// injected synthetic IDs). A nil list yields nil, so analyses degrade
// gracefully on incomplete archives.
func (c *Context) worldIDs(l *toplist.List) []uint32 {
	if l == nil {
		return nil
	}
	ids := l.IDs()
	if ids == nil {
		// Fall back to name lookup for lists without IDs.
		names := l.Names()
		out := make([]uint32, 0, len(names))
		for _, n := range names {
			if id, ok := c.W.IDByName(n); ok {
				out = append(out, id)
			}
		}
		return out
	}
	n := uint32(c.W.Len())
	out := ids[:0]
	for _, id := range ids {
		if id < n {
			out = append(out, id)
		}
	}
	return out
}

// subset returns the provider's list for day, cut to top entries when
// top > 0.
func (c *Context) subset(provider string, day toplist.Day, top int) *toplist.List {
	l := c.Arch.Get(provider, day)
	if l == nil {
		return nil
	}
	if top > 0 {
		return l.Top(top)
	}
	return l
}

// baseKeySet returns the set of unique base-domain keys in the list —
// the paper's base-domain normalisation for intersections (§5.2).
func (c *Context) baseKeySet(l *toplist.List) map[uint32]struct{} {
	ids := c.worldIDs(l)
	set := make(map[uint32]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	out := make(map[uint32]struct{}, len(set))
	for id := range set {
		out[c.info[id].baseKey] = struct{}{}
	}
	return out
}
