package analysis

import (
	"testing"

	"repro/internal/population"
	"repro/internal/toplist"
)

// TestIncompleteArchive injects missing snapshots and verifies the
// analyses degrade gracefully instead of panicking — defensive
// behaviour for externally loaded (CSV) archives with gaps.
func TestIncompleteArchive(t *testing.T) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	arch := toplist.NewArchive(0, 9)
	names := make([]string, 50)
	ids := make([]uint32, 50)
	for i := range names {
		names[i] = w.Domains[i].Name
		ids[i] = uint32(i)
	}
	l := toplist.NewWithIDs(names, ids)
	// Only even days present for "gappy"; day 3 missing entirely for
	// the paired provider.
	for d := toplist.Day(0); d <= 9; d += 2 {
		if err := arch.Put("gappy", d, l); err != nil {
			t.Fatal(err)
		}
	}
	c := NewContext(w, arch)

	row := c.Table2("gappy", 0)
	if row.TLDMean <= 0 {
		t.Fatal("Table2 should still summarise present days")
	}
	if got := c.DailyRemoved("gappy", 0); len(got) == 0 {
		t.Fatal("DailyRemoved empty")
	}
	if got := c.CumulativeUnique("gappy", 0); got[len(got)-1] != 50 {
		t.Fatalf("cumulative %v", got)
	}
	// Analyses over an entirely absent provider should not panic.
	if got := c.DailyRemoved("absent", 0); len(got) != 0 {
		// Removed counts of empty sets are zero-size diffs.
		for _, v := range got {
			if v != 0 {
				t.Fatal("absent provider produced churn")
			}
		}
	}
	_ = c.CumulativeUnique("absent", 0)
	_ = c.KSWeekendDistances("gappy", 0, 100, false)
}

// TestTable4MissingAlexa exercises the nil-day0 guard.
func TestTable4MissingAlexa(t *testing.T) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	arch := toplist.NewArchive(0, 1)
	c := NewContext(w, arch)
	if rows := c.Table4([]string{"x"}, "x", []int{1}); rows != nil {
		t.Fatal("missing provider should yield nil")
	}
}
