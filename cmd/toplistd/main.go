// Command toplistd publishes simulated top-list snapshots over HTTP,
// the way the real providers publish their daily CSVs. It simulates
// the ecosystem at the requested scale and serves every provider's
// daily snapshot under
//
//	/v1/index
//	/v1/{provider}/latest/top-1m.csv[.gz|.zip]
//	/v1/{provider}/{date}/top-1m.csv[.gz|.zip]
//
// With -live, the daemon starts serving immediately and streams days
// out of the simulation engine as they are generated (at most one per
// -live-interval): nothing is visible at startup, each finished day is
// published the moment its snapshots exist, and a Mirror pointed at
// the daemon experiences a real longitudinal collection against a
// still-running simulation. The engine's day pipeline keeps working
// while publication paces: when EndDay waits on the interval ticker,
// the next day ranks and the one after steps, bounded at one day per
// stage — so each tick publishes a day that is typically already
// generated, and a cancelled daemon stops the engine at the next stage
// boundary rather than simulating unpublishable days.
//
// With -archive, no simulation runs at all: the daemon reopens a
// durable archive previously saved by `toplists -save` (or any
// toplist.DiskStore producer) and serves it straight from disk.
//
// With -serve-pack, the daemon serves a packed single-file archive
// (written by `toplists pack`) the same way — snapshots are read
// lazily out of the pack and each blob is verified against its
// directory hash before it is served.
//
// With -serve-archive, the daemon additionally mounts the structured
// archive wire API (internal/archived) under /archive/v1 beside the
// provider-style routes, so remote consumers can reopen the served
// archive as a toplist.Source with toplist.OpenRemote and run analyses
// against it without any local copy. In -live mode the wire API sees
// the same day-by-day visibility as the CSV routes: days appear in its
// manifest as they are published.
//
// Usage:
//
//	toplistd [-addr :8080] [-scale test|default] [-seed N] [-days N]
//	         [-workers N] [-live] [-live-interval 2s] [-archive DIR]
//	         [-serve-pack FILE] [-serve-archive]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/archived"
	"repro/internal/core"
	"repro/internal/listserv"
	"repro/internal/pack"
	"repro/internal/population"
	"repro/internal/toplist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "toplistd:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("toplistd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	scaleName := fs.String("scale", "test", "simulation scale: test or default")
	seed := fs.Uint64("seed", 1, "root seed")
	days := fs.Int("days", 0, "override the simulated window length (days)")
	workers := fs.Int("workers", 0, "engine parallelism (0 = all cores, 1 = serial)")
	live := fs.Bool("live", false, "stream days out of the engine as they are generated")
	liveInterval := fs.Duration("live-interval", 2*time.Second, "publication pacing in -live mode")
	archiveDir := fs.String("archive", "", "serve a saved archive from this directory (no simulation)")
	servePack := fs.String("serve-pack", "", "serve a packed archive file (no simulation)")
	serveArchive := fs.Bool("serve-archive", false, "also mount the archive wire API under "+toplist.RemoteAPIPrefix)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *archiveDir != "" && *servePack != "" {
		return fmt.Errorf("-archive and -serve-pack are mutually exclusive")
	}
	if (*archiveDir != "" || *servePack != "") && *live {
		return fmt.Errorf("-live cannot serve a saved archive")
	}

	scale := core.TestScale()
	switch *scaleName {
	case "test":
	case "default":
		scale = core.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q (want test or default)", *scaleName)
	}
	scale.Population.Seed = *seed
	scale.Workers = *workers
	if *days > 0 {
		scale.Population.Days = *days
	}

	log.SetOutput(out)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		handler *listserv.Server
		source  toplist.Source // what -serve-archive exposes
		liveRun func()
		simDays int
	)
	switch {
	case *archiveDir != "":
		// Serve a durable archive straight from disk — no world, no
		// engine, no resimulation.
		store, err := toplist.OpenArchive(*archiveDir)
		if err != nil {
			return err
		}
		if missing := store.Missing(); len(missing) > 0 {
			log.Printf("warning: archive %s has %d missing snapshots", *archiveDir, len(missing))
		}
		handler = listserv.NewServer(store)
		source = store
		log.Printf("archive %s ready: %d providers x %d days (served from disk)",
			*archiveDir, len(store.Providers()), store.Days())
	case *servePack != "":
		// Serve a packed single-file archive: the same Source contract,
		// read lazily out of one file.
		p, err := pack.OpenFile(*servePack)
		if err != nil {
			return err
		}
		defer p.Close()
		handler = listserv.NewServer(p)
		source = p
		log.Printf("pack %s ready: %d providers x %d days, %d snapshots (served from one file, %d bytes)",
			*servePack, len(p.Providers()), p.Days(), p.Snapshots(), p.Size())
	default:
		log.Printf("building world at scale %q (seed %d)...", *scaleName, *seed)
		world, eng, err := core.NewEngine(scale)
		if err != nil {
			return err
		}
		simDays = scale.Population.Days
		arch := toplist.NewArchive(0, toplist.Day(simDays-1))
		arch.Expect(eng.Providers()...)

		// In live mode nothing is visible yet and days stream in as the
		// engine produces them; otherwise materialise everything first.
		gk := listserv.NewGatekeeper(arch, -1)
		if !*live {
			if err := eng.Run(ctx, simDays, arch); err != nil {
				return err
			}
			if missing := arch.Missing(); len(missing) > 0 {
				return fmt.Errorf("engine left %d snapshots missing", len(missing))
			}
			gk.Advance(arch.Last())
			log.Printf("archive ready: %d providers x %d days", len(arch.Providers()), arch.Days())
		} else {
			liveRun = func() {
				sink := newLiveSink(ctx, gk, *liveInterval)
				defer sink.stop()
				if err := eng.Run(ctx, simDays, sink); err != nil && ctx.Err() == nil {
					log.Printf("live generation failed: %v", err)
					return
				}
				log.Printf("live generation complete: %d days published", simDays)
			}
		}
		handler = listserv.NewServerAt(gk).WithZones(worldZones{world})
		// The wire API sees exactly what the CSV routes see: in live
		// mode the gatekeeper's visibility frontier, otherwise the
		// fully materialised archive.
		source = gk.View()
	}

	var root http.Handler = handler
	if *serveArchive {
		root = withArchiveAPI(handler, source)
		log.Printf("archive wire API mounted at %s", toplist.RemoteAPIPrefix)
	}

	srv := &http.Server{
		Handler:           root,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("serving on http://%s/v1/index", ln.Addr())

	if liveRun != nil {
		go liveRun()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}

// withArchiveAPI mounts the structured archive wire API
// (internal/archived, under /archive/v1) beside the provider-style
// publication routes, so one daemon serves both humans-and-mirrors CSV
// downloads and archive-to-archive replication.
func withArchiveAPI(h http.Handler, src toplist.Source) http.Handler {
	mux := http.NewServeMux()
	mux.Handle(toplist.RemoteAPIPrefix+"/", archived.NewServer(src))
	mux.Handle("/", h)
	return mux
}

// worldZones publishes the simulated world's day-0 com/net/org zone
// files — the §8 general-population source — at /v1/zones/{tld}.zone.
type worldZones struct {
	w *population.World
}

func (z worldZones) ZoneTLDs() []string { return []string{"com", "net", "org"} }

func (z worldZones) ZoneDomains(tld string) []string { return z.w.ZoneDomains(0, tld) }

// liveSink streams engine output into a served archive: snapshots go
// into the gatekeeper's archive under its lock, and each completed day
// becomes visible to HTTP readers at most once per interval. It is the
// engine.DaySink wired up by -live. It runs on the engine's emit
// stage, so blocking here on the pacing ticker does not stall the
// pipeline: the engine ranks the next day and steps the one after
// while this sink waits, and publication latency per tick is just the
// archive insert.
type liveSink struct {
	ctx    context.Context
	gk     *listserv.Gatekeeper
	ticker *time.Ticker
}

func newLiveSink(ctx context.Context, gk *listserv.Gatekeeper, interval time.Duration) *liveSink {
	return &liveSink{ctx: ctx, gk: gk, ticker: time.NewTicker(interval)}
}

func (s *liveSink) stop() { s.ticker.Stop() }

// Put stores one snapshot; the day is not yet visible.
func (s *liveSink) Put(provider string, day toplist.Day, l *toplist.List) error {
	return s.gk.Put(provider, day, l)
}

// EndDay paces publication and then makes the finished day visible.
// Cancelling the context aborts the engine run via the returned error.
func (s *liveSink) EndDay(day toplist.Day) error {
	select {
	case <-s.ctx.Done():
		return s.ctx.Err()
	case <-s.ticker.C:
	}
	s.gk.Advance(day)
	log.Printf("published day %v", day)
	return nil
}
