// Manipulate: reproduce the paper's §7 controlled experiment — place an
// unused test domain into the Umbrella-style list with a RIPE
// Atlas-like probe fleet, and show that the ranking is driven by unique
// clients rather than query volume (and that TTLs don't matter).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/atlas"
	"repro/internal/providers"
)

func main() {
	scale := toplists.TestScale()
	lab := toplists.NewLab(toplists.WithScale(scale))
	study, err := lab.Study()
	if err != nil {
		log.Fatal(err)
	}

	const days = 17
	opts := providers.DefaultOptions(days, scale.ListSize)
	opts.BurnInDays = 30
	opts.AlexaChangeDay = -1

	fmt.Println("=== probe-count × query-frequency grid (Fig. 5) ===")
	cells, err := atlas.RunGrid(study.Model, atlas.GridConfig{
		Probes:      []int{100, 1000, 5000, 10000},
		Frequencies: []int{1, 10, 50, 100},
		Days:        days,
		Opts:        opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %12s %12s %12s\n", "probes", "queries/day", "friday rank", "sunday rank")
	for _, c := range cells {
		fr, sr := "-", "-"
		if c.FridayRank > 0 {
			fr = fmt.Sprint(c.FridayRank)
		}
		if c.SundayRank > 0 {
			sr = fmt.Sprint(c.SundayRank)
		}
		fmt.Printf("%8d %12d %12s %12s\n", c.Probes, c.Frequency, fr, sr)
	}

	fmt.Println("\n=== TTL influence (§7.2) ===")
	ttl, err := atlas.RunTTL(study.Model, atlas.TTLConfig{
		TTLs:            []uint32{60, 300, 900, 3600, 86400},
		Probes:          10000,
		IntervalSeconds: 900,
		Days:            12,
		Opts:            opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %16s %20s %8s\n", "TTL", "client queries", "authoritative q/day", "rank")
	for _, r := range ttl {
		fmt.Printf("%8d %16d %20d %8d\n", r.TTL, r.ClientQueries, r.UpstreamQueries, r.Rank)
	}
	fmt.Printf("max rank spread: %d places (paper: <1k of 1M)\n", atlas.MaxRankSpread(ttl))

	fmt.Println("\nTakeaway (paper §7): the number of unique query sources, not the")
	fmt.Println("query volume, determines an Umbrella rank — and caching/TTL choices")
	fmt.Println("have no measurable effect on it.")
}
