package simnet

import "strings"

// RCode is a DNS response code.
type RCode uint8

// Response codes used by the simulator.
const (
	RCodeNoError RCode = iota
	RCodeNXDomain
	RCodeServFail
	RCodeFormErr
)

// String returns the conventional RCODE name.
func (rc RCode) String() string {
	switch rc {
	case RCodeNoError:
		return "NOERROR"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeFormErr:
		return "FORMERR"
	default:
		return "SERVFAIL"
	}
}

// Response is the answer to a simulated resolution: the full CNAME
// chain (if any) plus terminal address/CAA data.
type Response struct {
	RCode RCode
	// Chain holds CNAME targets in order, from the queried name to the
	// terminal name; empty when the name maps directly to addresses.
	Chain []string
	// A is the terminal IPv4 address (0 if none).
	A uint32
	// AAAA reports whether a routed IPv6 address is present.
	AAAA bool
	// CAA reports whether a CAA record with an issue/issuewild set is
	// present at the base domain.
	CAA bool
	// TTL is the answer's time-to-live in seconds.
	TTL uint32
}

// Zone answers authoritative queries; the population's World implements
// it.
type Zone interface {
	// Lookup resolves name. Implementations must follow CNAME chains
	// themselves (the terminal data is in the response), mirroring what
	// a recursive resolver returns to a stub.
	Lookup(name string) Response
}

// CachingResolver is a recursive resolver model with a TTL-aware answer
// cache and a query counter — the piece needed to study whether TTL
// values bias a DNS-volume-based ranking (§7.2). Time is virtual and
// advanced by the caller.
type CachingResolver struct {
	zone Zone
	// cache maps name -> cached answer + absolute expiry (virtual
	// seconds).
	cache map[string]cachedAnswer
	now   uint64
	// UpstreamQueries counts cache misses per queried name, i.e. the
	// query volume the authoritative side (and a resolver-based ranking
	// like Umbrella's input) would observe.
	UpstreamQueries map[string]uint64
	// ClientQueries counts all client queries per name.
	ClientQueries map[string]uint64
}

type cachedAnswer struct {
	resp   Response
	expiry uint64
}

// NewCachingResolver builds a resolver over zone at virtual time 0.
func NewCachingResolver(zone Zone) *CachingResolver {
	return &CachingResolver{
		zone:            zone,
		cache:           make(map[string]cachedAnswer),
		UpstreamQueries: make(map[string]uint64),
		ClientQueries:   make(map[string]uint64),
	}
}

// Advance moves virtual time forward by seconds.
func (r *CachingResolver) Advance(seconds uint64) { r.now += seconds }

// Now returns the current virtual time in seconds.
func (r *CachingResolver) Now() uint64 { return r.now }

// Query resolves name through the cache, counting upstream traffic only
// on cache misses. Negative answers are cached briefly (60 s), as
// resolvers do.
func (r *CachingResolver) Query(name string) Response {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	r.ClientQueries[name]++
	if c, ok := r.cache[name]; ok && c.expiry > r.now {
		return c.resp
	}
	resp := r.zone.Lookup(name)
	r.UpstreamQueries[name]++
	ttl := uint64(resp.TTL)
	if resp.RCode != RCodeNoError {
		ttl = 60
	}
	if ttl == 0 {
		ttl = 1
	}
	r.cache[name] = cachedAnswer{resp: resp, expiry: r.now + ttl}
	return resp
}

// StaticZone is a Zone backed by a fixed map, convenient for tests and
// for the §7 controlled experiments where we register test domains.
type StaticZone struct {
	Records map[string]Response
	// Default is returned for unknown names; its zero value is an
	// NXDOMAIN.
	Default Response
}

// NewStaticZone builds an empty static zone whose default answer is
// NXDOMAIN.
func NewStaticZone() *StaticZone {
	return &StaticZone{
		Records: make(map[string]Response),
		Default: Response{RCode: RCodeNXDomain},
	}
}

// Add registers an answer for name.
func (z *StaticZone) Add(name string, resp Response) {
	z.Records[strings.ToLower(name)] = resp
}

// Lookup implements Zone.
func (z *StaticZone) Lookup(name string) Response {
	if resp, ok := z.Records[strings.ToLower(name)]; ok {
		return resp
	}
	return z.Default
}
