// Package dnsd serves the simulated DNS zones over real UDP and TCP
// sockets and provides the stub resolver that queries them.
//
// The paper's §8 campaigns resolve every listed name daily; the
// in-process substrate (simnet.Zone) answers those lookups as function
// calls. This package closes the remaining gap to a live measurement:
// queries travel as RFC 1035 wire messages over the loopback network,
// through a server that behaves like production DNS infrastructure —
// datagram handling with TC-bit truncation at the UDP payload limit,
// TCP transport with two-octet length framing (RFC 1035 §4.2.2),
// per-connection query pipelining, idle timeouts, and FORMERR replies
// to undecodable queries. The Resolver implements the matching stub
// behaviour: ID correlation, UDP retry on timeout, and automatic TCP
// fallback on truncation.
package dnsd

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
)

// MaxUDPPayload is the classic DNS datagram limit; answers that encode
// beyond it are truncated and flagged TC (we do not model EDNS0).
const MaxUDPPayload = 512

// maxTCPMessage bounds a framed TCP message (the length prefix allows
// 64 KiB - 1).
const maxTCPMessage = 0xFFFF

// Stats counts server activity. Values only grow.
type Stats struct {
	UDPQueries uint64 // well-formed queries answered over UDP
	TCPQueries uint64 // well-formed queries answered over TCP
	Truncated  uint64 // UDP answers sent with the TC bit
	Malformed  uint64 // datagrams/frames answered with FORMERR or dropped
	RRLDropped uint64 // UDP answers suppressed by response-rate limiting
	RRLSlipped uint64 // UDP answers converted to TC by RRL slip
}

// Server answers DNS queries for one Zone over UDP and TCP on the same
// address.
type Server struct {
	zone    simnet.Zone
	udp     *net.UDPConn
	tcp     net.Listener
	limiter *rrl // nil = no response-rate limiting

	idleTimeout time.Duration
	wg          sync.WaitGroup
	closed      atomic.Bool

	udpQueries atomic.Uint64
	tcpQueries atomic.Uint64
	truncated  atomic.Uint64
	malformed  atomic.Uint64
}

// Option configures a Server.
type Option func(*Server)

// WithIdleTimeout bounds how long an idle TCP connection is kept open
// between queries (default 5s).
func WithIdleTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.idleTimeout = d
		}
	}
}

// WithRRL enables per-source response-rate limiting on UDP answers
// (TCP is never limited — it is the designated fallback path).
func WithRRL(cfg RRLConfig) Option {
	return func(s *Server) {
		if cfg.RatePerSecond > 0 {
			s.limiter = newRRL(cfg)
		}
	}
}

// Listen starts a server for zone on addr (e.g. "127.0.0.1:0"),
// binding the same port for UDP and TCP. The returned server is
// already accepting; use Addr for the bound address and Close to stop.
func Listen(zone simnet.Zone, addr string, opts ...Option) (*Server, error) {
	s := &Server{zone: zone, idleTimeout: 5 * time.Second}
	for _, o := range opts {
		o(s)
	}
	// Bind TCP first, then UDP on the TCP port. Retry a few times in
	// case the kernel-chosen TCP port is taken on UDP.
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		tcp, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		port := tcp.Addr().(*net.TCPAddr).Port
		host := tcp.Addr().(*net.TCPAddr).IP.String()
		udpAddr, err := net.ResolveUDPAddr("udp", net.JoinHostPort(host, fmt.Sprint(port)))
		if err != nil {
			tcp.Close()
			return nil, err
		}
		udp, err := net.ListenUDP("udp", udpAddr)
		if err != nil {
			tcp.Close()
			lastErr = err
			continue
		}
		s.tcp, s.udp = tcp, udp
		break
	}
	if s.udp == nil {
		return nil, fmt.Errorf("dnsd: no port bindable on both transports: %w", lastErr)
	}
	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return s, nil
}

// Addr returns the bound address (identical port on UDP and TCP).
func (s *Server) Addr() string { return s.tcp.Addr().String() }

// Stats snapshots the activity counters.
func (s *Server) Stats() Stats {
	st := Stats{
		UDPQueries: s.udpQueries.Load(),
		TCPQueries: s.tcpQueries.Load(),
		Truncated:  s.truncated.Load(),
		Malformed:  s.malformed.Load(),
	}
	if s.limiter != nil {
		st.RRLDropped, st.RRLSlipped = s.limiter.counters()
	}
	return st
}

// Close stops both listeners and waits for in-flight handlers.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	uerr := s.udp.Close()
	terr := s.tcp.Close()
	s.wg.Wait()
	if uerr != nil {
		return uerr
	}
	return terr
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, MaxUDPPayload)
	for {
		n, peer, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			if s.closed.Load() {
				return
			}
			continue
		}
		query := append([]byte(nil), buf[:n]...)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			resp, counted := s.answer(query, true)
			if resp == nil {
				return
			}
			if s.limiter != nil && counted {
				switch s.limiter.check(peer.IP) {
				case dropAnswer:
					return
				case sendTruncated:
					if m, err := simnet.DecodeMessage(resp); err == nil {
						if t := truncate(m); t != nil {
							resp = t
						}
					}
				}
			}
			if _, err := s.udp.WriteToUDP(resp, peer); err == nil && counted {
				s.udpQueries.Add(1)
			}
		}()
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			if s.closed.Load() {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn answers length-framed queries on one TCP connection until
// the peer closes, an idle timeout passes, or the server shuts down.
func (s *Server) serveConn(conn net.Conn) {
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
			return
		}
		query, err := readFrame(conn)
		if err != nil {
			return // EOF, timeout, or oversized frame: drop the connection
		}
		resp, counted := s.answer(query, false)
		if resp == nil {
			return
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
		if counted {
			s.tcpQueries.Add(1)
		}
		if s.closed.Load() {
			return
		}
	}
}

// answer decodes one query and produces the encoded response. counted
// reports whether it was a well-formed query (for stats); a nil
// response means the input was too mangled even for a FORMERR echo.
func (s *Server) answer(query []byte, udp bool) (resp []byte, counted bool) {
	q, err := simnet.DecodeMessage(query)
	if err != nil || q.Response {
		s.malformed.Add(1)
		if len(query) < 2 {
			return nil, false
		}
		// Echo the ID with FORMERR, as real servers do when they can
		// at least read the header.
		id := uint16(query[0])<<8 | uint16(query[1])
		m := &simnet.Message{
			ID:       id,
			Response: true,
			RCode:    simnet.RCodeFormErr,
			Question: simnet.Question{Name: "invalid", Type: simnet.TypeA, Class: simnet.ClassIN},
		}
		b, encErr := m.Encode()
		if encErr != nil {
			return nil, false
		}
		return b, false
	}
	answer := simnet.BuildAnswer(q.ID, q.Question.Name, q.Question.Type, s.zone.Lookup(q.Question.Name))
	answer.Recursion = q.Recursion
	b, err := answer.Encode()
	if err != nil {
		s.malformed.Add(1)
		return nil, false
	}
	if udp && len(b) > MaxUDPPayload {
		b = truncate(answer)
		if b == nil {
			return nil, false
		}
		s.truncated.Add(1)
	}
	return b, true
}

// truncate rebuilds the answer with no answer records and the TC bit
// set, which is the minimal RFC-conformant truncation.
func truncate(m *simnet.Message) []byte {
	t := &simnet.Message{
		ID:        m.ID,
		Response:  true,
		Recursion: m.Recursion,
		Truncated: true,
		RCode:     m.RCode,
		Question:  m.Question,
	}
	b, err := t.Encode()
	if err != nil {
		return nil
	}
	return b
}

// readFrame reads one 2-byte-length-prefixed DNS message.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(hdr[0])<<8 | int(hdr[1])
	if n == 0 {
		return nil, errors.New("dnsd: zero-length frame")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFrame writes one 2-byte-length-prefixed DNS message.
func writeFrame(w io.Writer, msg []byte) error {
	if len(msg) > maxTCPMessage {
		return fmt.Errorf("dnsd: message %d bytes exceeds frame limit", len(msg))
	}
	frame := make([]byte, 2+len(msg))
	frame[0], frame[1] = byte(len(msg)>>8), byte(len(msg))
	copy(frame[2:], msg)
	_, err := w.Write(frame)
	return err
}
