package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws of 1000", same)
	}
}

func TestDeriveIndependentOfConsumption(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 100; i++ {
		a.Uint64() // consume from a only
	}
	ca, cb := a.Derive("child"), b.Derive("child")
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("Derive depends on parent consumption state")
		}
	}
}

func TestDeriveLabelSeparation(t *testing.T) {
	r := New(7)
	a, b := r.Derive("alpha"), r.Derive("beta")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("labels alpha/beta share %d of 1000 draws", same)
	}
}

func TestDeriveIndexedSeparation(t *testing.T) {
	r := New(7)
	a, b := r.DeriveIndexed("day", 1), r.DeriveIndexed("day", 2)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("indexed streams identical")
	}
	c, d := r.DeriveIndexed("day", 3), r.DeriveIndexed("day", 3)
	for i := 0; i < 50; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("identical (label,index) should yield identical streams")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64RangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 64; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for n := 1; n < 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func moments(n int, gen func() float64) (mean, variance float64) {
	var s, s2 float64
	for i := 0; i < n; i++ {
		v := gen()
		s += v
		s2 += v * v
	}
	mean = s / float64(n)
	variance = s2/float64(n) - mean*mean
	return
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	mean, variance := moments(200000, r.NormFloat64)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(19)
	mean, variance := moments(200000, r.ExpFloat64)
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean %v", mean)
	}
	if math.Abs(variance-1) > 0.06 {
		t.Fatalf("exp variance %v", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(23)
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.LogNormal(1.5, 0.8) < math.Exp(1.5) {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("log-normal median fraction %v", frac)
	}
}

func TestParetoSupportAndMedian(t *testing.T) {
	r := New(29)
	const xm, alpha = 2.0, 1.5
	below := 0
	median := xm * math.Pow(2, 1/alpha)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto below scale: %v", v)
		}
		if v < median {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("pareto median fraction %v", frac)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(31)
	for _, lambda := range []float64{0, 0.5, 3, 12, 80} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		tol := 0.05*lambda + 0.02
		if math.Abs(mean-lambda) > tol {
			t.Fatalf("poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestBinomialMeanAndBounds(t *testing.T) {
	r := New(37)
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {64, 0.5}, {1000, 0.01}, {500, 0.9}} {
		var sum float64
		const reps = 20000
		for i := 0; i < reps; i++ {
			k := r.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("binomial out of range: %d", k)
			}
			sum += float64(k)
		}
		want := float64(tc.n) * tc.p
		if math.Abs(sum/reps-want) > 0.05*want+0.1 {
			t.Fatalf("binomial(%d,%v) mean %v want %v", tc.n, tc.p, sum/reps, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(1)
	if r.Binomial(10, 0) != 0 || r.Binomial(0, 0.5) != 0 {
		t.Fatal("zero cases")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("p=1 case")
	}
}

func TestZipfBoundsAndMonotonicity(t *testing.T) {
	r := New(41)
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1001)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 1 || v > 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] < counts[10] || counts[10] < counts[100] {
		t.Fatalf("zipf not decreasing: c1=%d c10=%d c100=%d",
			counts[1], counts[10], counts[100])
	}
	// Zipf s=1: P(1)/P(2) = 2. Allow sampling noise.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("zipf rank1/rank2 ratio %v, want ~2", ratio)
	}
}

func TestZipfWeight(t *testing.T) {
	if ZipfWeight(1, 1.0) != 1 {
		t.Fatal("rank 1 weight must be 1")
	}
	if w := ZipfWeight(4, 0.5); math.Abs(w-0.5) > 1e-12 {
		t.Fatalf("ZipfWeight(4, 0.5) = %v", w)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(43)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	frac := float64(counts[2]) / n
	if math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("weight-3 index fraction %v, want 0.75", frac)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	r := New(47)
	w := []float64{5, 1, 0, 4}
	a := NewAlias(r, w)
	counts := make([]int, len(w))
	const n = 200000
	for i := 0; i < n; i++ {
		counts[a.Next()]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[2])
	}
	total := 0.0
	for _, x := range w {
		total += x
	}
	for i, x := range w {
		want := x / total
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("alias index %d: got %v want %v", i, got, want)
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for _, w := range [][]float64{nil, {0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewAlias(%v) should panic", w)
				}
			}()
			NewAlias(New(1), w)
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func BenchmarkAliasNext(b *testing.B) {
	r := New(1)
	w := make([]float64, 1024)
	for i := range w {
		w[i] = float64(i + 1)
	}
	a := NewAlias(r, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Next()
	}
}
