package analysis

import (
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/toplist"
)

// rankMatrix holds per-domain rank series for one provider subset.
// Absent days carry the sentinel rank 2×size ("beyond the list"), so a
// domain present only on weekends has fully disjoint weekday/weekend
// rank distributions — KS distance 1, the paper's Fig. 3a signature.
type rankMatrix struct {
	days  int
	size  int
	ranks map[uint32][]int32
}

// buildRankMatrix collects rank series for every domain ever present in
// the subset, deterministically down-sampled to at most maxDomains. The
// down-sampling admits domains by a hash filter during the build (so
// memory stays bounded even when the ever-seen union is many times the
// list size) and trims to the exact cap afterwards.
func (c *Context) buildRankMatrix(provider string, top, maxDomains int) *rankMatrix {
	days := c.Arch.Days()
	m := &rankMatrix{days: days, ranks: make(map[uint32][]int32)}
	admitThreshold := uint32(0xFFFFFFFF)
	first := c.subset(provider, c.Arch.First(), top)
	if maxDomains > 0 && first != nil {
		size := first.Len()
		// The ever-seen union is typically a small multiple of the list
		// size; admit with probability maxDomains/size capped at 1 and
		// floored so small subsets keep everything.
		p := float64(maxDomains) / float64(size)
		if p < 1 {
			admitThreshold = uint32(p * float64(0xFFFFFFFF))
		}
	}
	admit := func(id uint32) bool {
		h := id * 2654435761 // Knuth multiplicative hash
		h ^= h >> 16
		h *= 2246822519
		h ^= h >> 13
		return h <= admitThreshold
	}
	day := 0
	toplist.EachDay(c.Arch, func(d toplist.Day) {
		l := c.subset(provider, d, top)
		if l == nil {
			day++
			return
		}
		if m.size == 0 {
			m.size = l.Len()
		}
		for rank, id := range c.worldIDs(l) {
			if !admit(id) {
				continue
			}
			s, ok := m.ranks[id]
			if !ok {
				s = make([]int32, days)
				sentinel := int32(2 * m.size)
				for i := range s {
					s[i] = sentinel
				}
				m.ranks[id] = s
			}
			s[day] = int32(rank + 1)
		}
		day++
	})
	if maxDomains > 0 && len(m.ranks) > maxDomains {
		ids := make([]uint32, 0, len(m.ranks))
		for id := range m.ranks {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		keep := make(map[uint32][]int32, maxDomains)
		step := float64(len(ids)) / float64(maxDomains)
		for i := 0; i < maxDomains; i++ {
			id := ids[int(float64(i)*step)]
			keep[id] = m.ranks[id]
		}
		m.ranks = keep
	}
	return m
}

// KSWeekendDistances computes Fig. 3a: for each domain, the two-sample
// KS distance between its weekday and weekend rank distributions,
// using only the days the domain is actually ranked (the paper compares
// distributions of rank positions). With baseline true it instead
// splits the weekday samples into two alternating halves — the paper's
// weekday-vs-weekday reference, which should be near zero.
func (c *Context) KSWeekendDistances(provider string, top, maxDomains int, baseline bool) []float64 {
	m := c.buildRankMatrix(provider, top, maxDomains)
	weekend := make([]bool, m.days)
	for d := 0; d < m.days; d++ {
		weekend[d] = toplist.Day(d).IsWeekend()
	}
	sentinel := int32(2 * m.size)
	var out []float64
	for _, series := range m.ranks {
		var a, b []float64
		if baseline {
			k := 0
			for d, r := range series {
				if weekend[d] || r == sentinel {
					continue
				}
				if k%2 == 0 {
					a = append(a, float64(r))
				} else {
					b = append(b, float64(r))
				}
				k++
			}
		} else {
			for d, r := range series {
				if r == sentinel {
					continue
				}
				if weekend[d] {
					b = append(b, float64(r))
				} else {
					a = append(a, float64(r))
				}
			}
		}
		if len(a) < 4 || len(b) < 4 {
			continue
		}
		d := stats.KSDistance(a, b)
		if !math.IsNaN(d) {
			out = append(out, d)
		}
	}
	return out
}

// SLDGroupDynamic describes one Fig. 3b/3c group: an SLD whose daily
// presence in the list swings by more than the threshold between
// weekdays and weekends.
type SLDGroupDynamic struct {
	Group        string
	WeekdayMean  float64
	WeekendMean  float64
	SwingPercent float64 // |weekend-weekday| / weekday × 100
	Series       []float64
}

// SLDDynamics computes Fig. 3b/3c for a provider: daily counts of list
// entries per SLD group, returning groups with a weekday/weekend swing
// above swingPC percent (evaluated within [fromDay, toDay); pass 0,0
// for the full archive) and a mean daily count of at least minCount.
// The day window matters for Alexa, whose weekend swing only exists
// after its regime change (the paper's Fig. 3b shows exactly this).
func (c *Context) SLDDynamics(provider string, swingPC, minCount float64, fromDay, toDay int) []SLDGroupDynamic {
	days := c.Arch.Days()
	if toDay <= fromDay {
		fromDay, toDay = 0, days
	}
	counts := make(map[string][]float64)
	day := 0
	toplist.EachDay(c.Arch, func(d toplist.Day) {
		for _, id := range c.worldIDs(c.subset(provider, d, 0)) {
			g := c.info[id].sldGroup
			if g == "" {
				continue
			}
			s, ok := counts[g]
			if !ok {
				s = make([]float64, days)
				counts[g] = s
			}
			s[day]++
		}
		day++
	})
	var out []SLDGroupDynamic
	for g, series := range counts {
		var wd, we []float64
		for d, v := range series {
			if d < fromDay || d >= toDay {
				continue
			}
			if toplist.Day(d).IsWeekend() {
				we = append(we, v)
			} else {
				wd = append(wd, v)
			}
		}
		wdm, wem := stats.Mean(wd), stats.Mean(we)
		if (wdm+wem)/2 < minCount || wdm == 0 {
			continue
		}
		swing := 100 * math.Abs(wem-wdm) / wdm
		if swing < swingPC {
			continue
		}
		out = append(out, SLDGroupDynamic{
			Group:        g,
			WeekdayMean:  wdm,
			WeekendMean:  wem,
			SwingPercent: swing,
			Series:       series,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SwingPercent != out[j].SwingPercent {
			return out[i].SwingPercent > out[j].SwingPercent
		}
		return out[i].Group < out[j].Group
	})
	return out
}
