package hygiene

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/simnet"
	"repro/internal/toplist"
)

func TestValidTLDFilter(t *testing.T) {
	f := ValidTLD()
	keep := []string{"google.com", "bbc.co.uk", "example.org"}
	drop := []string{"router.localdomain", "printer.cpe", "host.instagram", "nonsense.notatld"}
	for _, n := range keep {
		if !f.Keep(n) {
			t.Errorf("%s should survive", n)
		}
	}
	for _, n := range drop {
		if f.Keep(n) {
			t.Errorf("%s should be dropped", n)
		}
	}
}

func TestMaxDepthFilter(t *testing.T) {
	f := MaxDepth(1)
	if !f.Keep("example.com") || !f.Keep("www.example.com") {
		t.Error("depth <= 1 should survive")
	}
	if f.Keep("a.b.example.com") {
		t.Error("depth 2 should be dropped")
	}
	deep := strings.Repeat("x.", 30) + "example.com"
	if MaxDepth(33).Keep(deep) != true {
		t.Error("depth 30 under limit 33 should survive")
	}
}

func TestWellFormedFilter(t *testing.T) {
	f := WellFormed()
	if !f.Keep("ok.example.net") {
		t.Error("well-formed name dropped")
	}
	for _, bad := range []string{"", "..", "-bad.example.com", "toolong" + strings.Repeat("a", 80) + ".com"} {
		if f.Keep(bad) {
			t.Errorf("%q should be dropped", bad)
		}
	}
}

func TestNoLocalhostFilter(t *testing.T) {
	f := NoLocalhost()
	for _, bad := range []string{"localhost", "db.localhost", "nas.local", "gw.localdomain"} {
		if f.Keep(bad) {
			t.Errorf("%q should be dropped", bad)
		}
	}
	if !f.Keep("localhost-studios.com") {
		t.Error("legitimate name containing 'localhost' dropped")
	}
}

func TestResolvableFilter(t *testing.T) {
	zone := simnet.NewStaticZone()
	zone.Add("alive.com", simnet.Response{RCode: simnet.RCodeNoError, A: 1, TTL: 60})
	zone.Add("flaky.com", simnet.Response{RCode: simnet.RCodeServFail})
	f := Resolvable(zone)
	if !f.Keep("alive.com") {
		t.Error("resolving name dropped")
	}
	if !f.Keep("flaky.com") {
		t.Error("SERVFAIL should be kept (exists, temporarily broken)")
	}
	if f.Keep("ghost.com") {
		t.Error("NXDOMAIN name kept")
	}
}

func TestPipelineAppliesInOrderWithAccounting(t *testing.T) {
	zone := simnet.NewStaticZone()
	zone.Add("a.com", simnet.Response{RCode: simnet.RCodeNoError, A: 1, TTL: 60})
	zone.Add("b.org", simnet.Response{RCode: simnet.RCodeNoError, A: 2, TTL: 60})
	l := toplist.New([]string{
		"a.com",            // survives everything
		"dead.com",         // dropped by resolvable
		"host.localdomain", // dropped by valid-tld (never reaches resolvable)
		"b.org",            // survives
		"nas.local",        // dropped by valid-tld
	})
	p := Recommended(zone)
	out, rep := p.Apply(l)

	want := []string{"a.com", "b.org"}
	got := out.Names()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("cleaned = %v, want %v", got, want)
	}
	if rep.Input != 5 || rep.Output != 2 {
		t.Errorf("report = %+v", rep)
	}
	byFilter := map[string]int{}
	for _, d := range rep.Drops {
		byFilter[d.Filter] = d.Dropped
	}
	if byFilter["valid-tld"] != 2 {
		t.Errorf("valid-tld dropped %d, want 2", byFilter["valid-tld"])
	}
	if byFilter["resolvable"] != 1 {
		t.Errorf("resolvable dropped %d, want 1 (locals were already gone)", byFilter["resolvable"])
	}
	if rep.DropShare() != 0.6 {
		t.Errorf("drop share = %v, want 0.6", rep.DropShare())
	}
	if !strings.Contains(rep.String(), "5 -> 2") {
		t.Errorf("report string = %q", rep.String())
	}
}

func TestPipelinePreservesRankOrder(t *testing.T) {
	l := toplist.New([]string{"z.com", "bad.notatld", "a.com", "m.com"})
	out, _ := NewPipeline(ValidTLD()).Apply(l)
	got := out.Names()
	want := []string{"z.com", "a.com", "m.com"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestApplyTopCleansBeforeCutting(t *testing.T) {
	// The whole point of clean-then-cut: junk at the head must not
	// consume top-N slots.
	l := toplist.New([]string{"junk.notatld", "a.com", "b.com", "c.com"})
	out, _ := NewPipeline(ValidTLD()).ApplyTop(l, 2)
	got := out.Names()
	if len(got) != 2 || got[0] != "a.com" || got[1] != "b.com" {
		t.Fatalf("top = %v, want [a.com b.com]", got)
	}
}

func TestEmptyPipelineIsNoOp(t *testing.T) {
	l := toplist.New([]string{"a.com", "weird.notatld"})
	var p Pipeline
	out, rep := p.Apply(l)
	if out.Len() != 2 || rep.DropShare() != 0 {
		t.Errorf("no-op pipeline mutated the list: %v %+v", out.Names(), rep)
	}
}

// flipFlopArchive alternates a volatile tail across days: names
// tail-A on even days, tail-B on odd days, under a stable head.
func flipFlopArchive(t *testing.T, days int) *toplist.Archive {
	t.Helper()
	arch := toplist.NewArchive(0, toplist.Day(days-1))
	for d := 0; d < days; d++ {
		names := []string{"stable1.com", "stable2.com", "stable3.com"}
		for i := 0; i < 3; i++ {
			if d%2 == 0 {
				names = append(names, fmt.Sprintf("even%d.com", i))
			} else {
				names = append(names, fmt.Sprintf("odd%d.com", i))
			}
		}
		names = append(names, fmt.Sprintf("junk%d.notatld", d)) // churning junk
		if err := arch.Put("prov", toplist.Day(d), toplist.New(names)); err != nil {
			t.Fatal(err)
		}
	}
	return arch
}

func TestPresenceFilterKeepsPersistentNames(t *testing.T) {
	arch := flipFlopArchive(t, 10)
	f := Presence(arch, "prov", 0.9)
	if !f.Keep("stable1.com") {
		t.Error("always-present name dropped")
	}
	if f.Keep("even0.com") || f.Keep("junk3.notatld") {
		t.Error("flip-flopping names kept at 90% presence")
	}
	half := Presence(arch, "prov", 0.5)
	if !half.Keep("even0.com") {
		t.Error("half-present name should survive a 0.5 threshold")
	}
}

func TestStabilityImpactReducesChurn(t *testing.T) {
	arch := flipFlopArchive(t, 12)
	p := NewPipeline(ValidTLD(), Presence(arch, "prov", 0.9))
	imp := StabilityImpact(arch, "prov", p, 0)
	if imp.Days != 12 {
		t.Fatalf("days = %d", imp.Days)
	}
	if imp.RawChurn == 0 {
		t.Fatal("raw churn should be non-zero for the flip-flop archive")
	}
	if imp.CleanChurn >= imp.RawChurn {
		t.Errorf("clean churn %v should be below raw %v", imp.CleanChurn, imp.RawChurn)
	}
	if imp.CleanChurn != 0 {
		t.Errorf("presence-cleaned flip-flop archive should be perfectly stable, churn %v", imp.CleanChurn)
	}
	if imp.MeanDrop <= 0 {
		t.Errorf("mean drop = %v, want > 0", imp.MeanDrop)
	}
}

func TestChurnHelper(t *testing.T) {
	a := toplist.New([]string{"a.com", "b.com"})
	b := toplist.New([]string{"b.com", "c.com"})
	if got := churn(a, b); got != 0.5 {
		t.Errorf("churn = %v, want 0.5", got)
	}
	if got := churn(nil, b); got != 0 {
		t.Errorf("nil prev churn = %v", got)
	}
	if got := churn(a, a); got != 0 {
		t.Errorf("self churn = %v", got)
	}
}
