package core
