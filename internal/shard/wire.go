// Package shard implements distributed archive generation: a
// coordinator splits each simulated day's per-domain EMA stepping into
// contiguous shards, farms them to worker processes over the versioned
// /shard/v1 HTTP API, and merges the partial results into its local
// Generator bitwise-identically to an in-process run.
//
// The determinism contract is inherited, not invented: shard boundaries
// are parallel.Shard of (shards, n) — a pure function — and the worker
// runs providers.ShardStepper, whose arithmetic mirrors the in-process
// rankers expression for expression. The wire format below moves those
// float64 slices without reinterpretation (Float64bits, little-endian),
// so a distributed archive hashes equal to the Workers=1 serial
// reference. TestDistributedEquivalence at the repo root pins exactly
// that, including across a mid-run worker kill.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire format of one partial-result frame (all integers little-endian):
//
//	magic    [8]byte  "TLSHRD1\n"
//	flags    uint32   bit 0: started (state follows a stepped/seeded day)
//	nfields  uint32
//	day      int64    the day the values represent (negative = burn-in)
//	lo, hi   uint64   record range [lo, hi) the values cover
//	fields × nfields:
//	  nameLen uint32
//	  name    [nameLen]byte   provider name, 1..64 bytes
//	  values  [(hi-lo)*8]byte Float64bits of the shard's EMA state
//	  sum     [16]byte        sha256(name ‖ values)[:16]
//	frame sum [16]byte        sha256(all preceding bytes)[:16]
//
// Everything is length-prefixed and bound-checked before allocation;
// the two hash layers make a bit flip in any field (or in the header)
// a typed ErrFrameHash instead of silently corrupted simulation state.
// Encoding is canonical: any frame Decode accepts re-encodes to the
// identical bytes, a property FuzzShardWireFormat hammers on.

const (
	frameMagic = "TLSHRD1\n"

	flagStarted = 1 << 0

	// maxFields bounds decoder allocation; the generator has three
	// providers, so anything past a small constant is garbage input.
	maxFields = 16
	// maxNameLen bounds provider-name allocation.
	maxNameLen = 64
	// maxSpan bounds hi-lo so a forged header cannot demand a huge
	// values allocation before any content hash is checked.
	maxSpan = 1 << 28

	hashLen   = 16
	headerLen = len(frameMagic) + 4 + 4 + 8 + 8 + 8
)

// ErrBadFrame is wrapped by every structural decode error: truncated
// input, bad magic, out-of-range lengths, trailing bytes.
var ErrBadFrame = errors.New("shard: malformed frame")

// ErrFrameHash is wrapped when structure parses but a content hash
// (per-field or whole-frame) does not match — corruption in transit.
var ErrFrameHash = errors.New("shard: frame hash mismatch")

// Field is one provider's partial EMA state within a frame.
type Field struct {
	Provider string
	Values   []float64
}

// Frame is one shard's partial result for one day: the EMA state of
// records [Lo, Hi) for each enabled provider after stepping Day.
type Frame struct {
	Day     int
	Lo, Hi  int
	Started bool
	Fields  []Field
}

// span returns the per-field value count.
func (f *Frame) span() int { return f.Hi - f.Lo }

// Field returns the named field's values, or nil.
func (f *Frame) Field(provider string) []float64 {
	for i := range f.Fields {
		if f.Fields[i].Provider == provider {
			return f.Fields[i].Values
		}
	}
	return nil
}

// validate checks the frame's own invariants before encoding.
func (f *Frame) validate() error {
	if f.Lo < 0 || f.Hi < f.Lo || f.Hi-f.Lo > maxSpan {
		return fmt.Errorf("%w: range [%d, %d)", ErrBadFrame, f.Lo, f.Hi)
	}
	if len(f.Fields) == 0 || len(f.Fields) > maxFields {
		return fmt.Errorf("%w: %d fields", ErrBadFrame, len(f.Fields))
	}
	for i := range f.Fields {
		fd := &f.Fields[i]
		if len(fd.Provider) == 0 || len(fd.Provider) > maxNameLen {
			return fmt.Errorf("%w: field %d name length %d", ErrBadFrame, i, len(fd.Provider))
		}
		if len(fd.Values) != f.span() {
			return fmt.Errorf("%w: field %q has %d values, header says %d",
				ErrBadFrame, fd.Provider, len(fd.Values), f.span())
		}
	}
	return nil
}

// Encode serializes the frame in canonical form.
func (f *Frame) Encode() ([]byte, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	span := f.span()
	size := headerLen
	for i := range f.Fields {
		size += 4 + len(f.Fields[i].Provider) + span*8 + hashLen
	}
	size += hashLen
	out := make([]byte, 0, size)

	out = append(out, frameMagic...)
	var flags uint32
	if f.Started {
		flags |= flagStarted
	}
	out = binary.LittleEndian.AppendUint32(out, flags)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Fields)))
	out = binary.LittleEndian.AppendUint64(out, uint64(f.Day))
	out = binary.LittleEndian.AppendUint64(out, uint64(f.Lo))
	out = binary.LittleEndian.AppendUint64(out, uint64(f.Hi))

	for i := range f.Fields {
		fd := &f.Fields[i]
		out = binary.LittleEndian.AppendUint32(out, uint32(len(fd.Provider)))
		fieldStart := len(out)
		out = append(out, fd.Provider...)
		for _, v := range fd.Values {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
		sum := sha256.Sum256(out[fieldStart:])
		out = append(out, sum[:hashLen]...)
	}
	sum := sha256.Sum256(out)
	out = append(out, sum[:hashLen]...)
	return out, nil
}

// Decode parses and verifies a frame. Errors wrap ErrBadFrame
// (structure) or ErrFrameHash (content); arbitrary input never panics
// and never allocates more than the input length implies.
func Decode(b []byte) (*Frame, error) {
	if len(b) < headerLen+hashLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(b))
	}
	if string(b[:len(frameMagic)]) != frameMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	// Whole-frame hash first: it covers everything, so any later parse
	// of hash-valid bytes is parsing exactly what the encoder produced.
	body, tail := b[:len(b)-hashLen], b[len(b)-hashLen:]
	sum := sha256.Sum256(body)
	if string(sum[:hashLen]) != string(tail) {
		return nil, fmt.Errorf("%w: frame sum", ErrFrameHash)
	}

	off := len(frameMagic)
	flags := binary.LittleEndian.Uint32(b[off:])
	nfields := binary.LittleEndian.Uint32(b[off+4:])
	day := int64(binary.LittleEndian.Uint64(b[off+8:]))
	lo := binary.LittleEndian.Uint64(b[off+16:])
	hi := binary.LittleEndian.Uint64(b[off+24:])
	off = headerLen

	if flags&^uint32(flagStarted) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrBadFrame, flags)
	}
	if nfields == 0 || nfields > maxFields {
		return nil, fmt.Errorf("%w: %d fields", ErrBadFrame, nfields)
	}
	if hi < lo || hi-lo > maxSpan || hi > 1<<62 {
		return nil, fmt.Errorf("%w: range [%d, %d)", ErrBadFrame, lo, hi)
	}
	span := int(hi - lo)

	f := &Frame{
		Day:     int(day),
		Lo:      int(lo),
		Hi:      int(hi),
		Started: flags&flagStarted != 0,
		Fields:  make([]Field, 0, nfields),
	}
	for i := 0; i < int(nfields); i++ {
		if len(body)-off < 4 {
			return nil, fmt.Errorf("%w: truncated field %d", ErrBadFrame, i)
		}
		nameLen := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if nameLen == 0 || nameLen > maxNameLen {
			return nil, fmt.Errorf("%w: field %d name length %d", ErrBadFrame, i, nameLen)
		}
		need := nameLen + span*8 + hashLen
		if len(body)-off < need {
			return nil, fmt.Errorf("%w: truncated field %d", ErrBadFrame, i)
		}
		fieldStart := off
		name := string(b[off : off+nameLen])
		off += nameLen
		vals := make([]float64, span)
		for j := range vals {
			vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
		fsum := sha256.Sum256(b[fieldStart:off])
		if string(fsum[:hashLen]) != string(b[off:off+hashLen]) {
			return nil, fmt.Errorf("%w: field %q", ErrFrameHash, name)
		}
		off += hashLen
		f.Fields = append(f.Fields, Field{Provider: name, Values: vals})
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(body)-off)
	}
	return f, nil
}
