package population

import (
	"fmt"
	"strings"

	"repro/internal/domainname"
	"repro/internal/rng"
)

// nameGen synthesises plausible domain names: pronounceable brand
// labels, realistic TLD mix, service subdomain labels, deep junk
// chains, and invalid-TLD device names.
type nameGen struct {
	r    *rng.Rand
	seen map[string]struct{}
	tlds *rng.Alias
	tldz []string
}

var consonants = []string{
	"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r",
	"s", "t", "v", "w", "z", "st", "tr", "ch", "sh", "br", "cl", "gr",
}

var vowels = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "oo"}

var brandSuffixes = []string{
	"", "", "", "", "hub", "lab", "ify", "ly", "io", "zone", "spot",
	"base", "box", "flow", "wave", "cast", "mart", "press", "works",
}

// tldMix approximates the TLD distribution of real top lists: heavy
// com, a band of other gTLDs and ccTLDs, and a tail across the whole
// registry.
var tldMix = []struct {
	tld string
	w   float64
}{
	{"com", 46}, {"net", 6.5}, {"org", 6}, {"de", 4}, {"ru", 3.5},
	{"co.uk", 2.5}, {"fr", 2}, {"nl", 1.5}, {"it", 1.5}, {"br", 0}, // br replaced by com.br below
	{"com.br", 1.8}, {"pl", 1.4}, {"io", 1.3}, {"co.jp", 1.2},
	{"es", 1.1}, {"ca", 1}, {"com.au", 1}, {"in", 1}, {"info", 0.9},
	{"eu", 0.8}, {"ch", 0.8}, {"se", 0.7}, {"cn", 0.7}, {"xyz", 0.7},
	{"biz", 0.5}, {"us", 0.5}, {"online", 0.4}, {"top", 0.4},
	{"site", 0.3}, {"shop", 0.3}, {"app", 0.3}, {"dev", 0.25},
	{"club", 0.25}, {"tv", 0.25}, {"me", 0.25}, {"co", 0.25},
	{"cz", 0.2}, {"at", 0.2}, {"be", 0.2}, {"dk", 0.2}, {"no", 0.2},
	{"fi", 0.2}, {"gr", 0.15}, {"ro", 0.15}, {"hu", 0.15},
	{"pt", 0.15}, {"sk", 0.1}, {"tw", 0.1}, {"vn", 0.1}, {"id", 0.1},
	{"ir", 0.3}, {"ua", 0.3}, {"kr", 0.15}, {"mx", 0.3}, {"tr", 0.3},
	{"ar", 0.15}, {"cl", 0.1}, {"co.in", 0.2}, {"co.za", 0.2},
	{"co.nz", 0.15}, {"news", 0.1}, {"blog", 0.1}, {"live", 0.1},
	{"media", 0.1}, {"tech", 0.15}, {"store", 0.1}, {"space", 0.1},
	{"world", 0.1}, {"today", 0.1}, {"life", 0.1}, {"guru", 0.05},
	{"ninja", 0.05}, {"rocks", 0.05}, {"icu", 0.1}, {"one", 0.05},
}

var serviceLabels = []string{
	"www", "mail", "api", "cdn", "static", "img", "m", "shop", "blog",
	"login", "app", "dev", "test", "ns1", "ns2", "smtp", "vpn", "ftp",
	"portal", "docs", "assets", "media", "video", "events", "beacon",
	"metrics", "ads", "track", "pixel", "sync", "edge", "push",
}

func newNameGen(r *rng.Rand) *nameGen {
	g := &nameGen{r: r, seen: make(map[string]struct{})}
	weights := make([]float64, 0, len(tldMix))
	g.tldz = make([]string, 0, len(tldMix))
	for _, e := range tldMix {
		if e.w <= 0 {
			continue
		}
		g.tldz = append(g.tldz, e.tld)
		weights = append(weights, e.w)
	}
	g.tlds = rng.NewAlias(r.Derive("tlds"), weights)
	return g
}

// brandLabel returns a pronounceable label of 2–4 syllables.
func (g *nameGen) brandLabel() string {
	var b strings.Builder
	n := 2 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		b.WriteString(consonants[g.r.Intn(len(consonants))])
		b.WriteString(vowels[g.r.Intn(len(vowels))])
	}
	b.WriteString(brandSuffixes[g.r.Intn(len(brandSuffixes))])
	return b.String()
}

// baseDomain returns a fresh base domain (eTLD+1), unique across the
// generator's lifetime.
func (g *nameGen) baseDomain() string {
	for {
		name := g.brandLabel() + "." + g.tldz[g.tlds.Next()]
		if _, dup := g.seen[name]; dup {
			continue
		}
		if _, err := domainname.Parse(name); err != nil {
			continue
		}
		g.seen[name] = struct{}{}
		return name
	}
}

// junkName returns a device-style name under an invalid TLD
// (printer.localdomain), unique across the generator's lifetime.
func (g *nameGen) junkName() string {
	devices := []string{
		"printer", "nas", "router", "camera", "tv", "thermostat",
		"desktop", "laptop", "phone", "hub", "sensor", "gateway",
		"dvr", "setupbox", "ap", "switch", "plc", "scanner",
	}
	invalid := domainname.InvalidTLDSamples()
	for {
		name := fmt.Sprintf("%s-%04d.%s",
			devices[g.r.Intn(len(devices))], g.r.Intn(10000),
			invalid[g.r.Intn(len(invalid))])
		if _, dup := g.seen[name]; dup {
			continue
		}
		g.seen[name] = struct{}{}
		return name
	}
}

// platformName returns a unique user-site name on a platform suffix,
// e.g. "blog-katora.blogspot.com".
func (g *nameGen) platformName(label, suffix string) string {
	for {
		name := fmt.Sprintf("%s-%s.%s", label, g.brandLabel(), suffix)
		if _, dup := g.seen[name]; dup {
			continue
		}
		g.seen[name] = struct{}{}
		return name
	}
}

// subdomainOf returns a subdomain of base at the given extra depth
// (>=1): depth 1 uses a service label, deeper names chain random
// labels. Uniqueness is guaranteed by suffixing a counter on collision.
func (g *nameGen) subdomainOf(base string, depth int) string {
	for attempt := 0; ; attempt++ {
		var labels []string
		labels = append(labels, serviceLabels[g.r.Intn(len(serviceLabels))])
		for i := 1; i < depth; i++ {
			l := g.brandLabel()
			k := 3 + g.r.Intn(3)
			if k > len(l) {
				k = len(l)
			}
			labels = append(labels, l[:k])
		}
		if attempt > 0 {
			labels[0] = fmt.Sprintf("%s%d", labels[0], attempt)
		}
		name := strings.Join(labels, ".") + "." + base
		if _, dup := g.seen[name]; dup {
			continue
		}
		if _, err := domainname.Parse(name); err != nil {
			continue
		}
		g.seen[name] = struct{}{}
		return name
	}
}

// oidChain returns an extreme-depth name (the paper observed subdomain
// levels up to 33 in Umbrella, e.g. '.'-separated OIDs).
func (g *nameGen) oidChain(base string, depth int) string {
	labels := make([]string, depth)
	for i := range labels {
		labels[i] = fmt.Sprintf("%d", g.r.Intn(40))
	}
	name := strings.Join(labels, ".") + "." + base
	g.seen[name] = struct{}{}
	return name
}
