package atlas

import (
	"fmt"

	"repro/internal/providers"
	"repro/internal/simnet"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

// TTLResult is one row of the §7.2 TTL-influence experiment: a test
// domain with the given record TTL, the DNS volume the authoritative
// side observed through the caching resolver, and the achieved Umbrella
// rank.
type TTLResult struct {
	TTL             uint32
	ClientQueries   uint64 // queries the resolver received
	UpstreamQueries uint64 // queries that reached the authoritative
	Rank            int
}

// TTLConfig parameterises the experiment: the paper used five TTL
// values queried from 1000 probes at a 900 s interval.
type TTLConfig struct {
	TTLs            []uint32
	Probes          int
	IntervalSeconds int
	Days            int
	Opts            providers.Options
}

// RunTTL runs the experiment: per TTL value, one test domain is queried
// by the probe fleet through a shared caching resolver (the OpenDNS
// stand-in). The resolver's cache thins the upstream volume by TTL, but
// the ranking input — unique clients — is identical for all domains, so
// ranks land close together (the paper: all five domains stayed within
// 1k list places).
func RunTTL(model *traffic.Model, cfg TTLConfig) ([]TTLResult, error) {
	if len(cfg.TTLs) == 0 {
		return nil, fmt.Errorf("atlas: no TTL values")
	}
	zone := simnet.NewStaticZone()
	targets := make([]string, len(cfg.TTLs))
	for i, ttl := range cfg.TTLs {
		targets[i] = fmt.Sprintf("ttl%d.atlas-exp.net", ttl)
		zone.Add(targets[i], simnet.Response{
			RCode: simnet.RCodeNoError,
			A:     0x0A000000 + uint32(i),
			TTL:   ttl,
		})
	}
	resolver := simnet.NewCachingResolver(zone)
	// One day of probe traffic through the resolver: every probe
	// queries every target each interval. The resolver is the OpenDNS
	// recursive; each probe query counts as a client query regardless
	// of the cache state.
	queriesPerProbePerDay := 86400 / cfg.IntervalSeconds
	for s := 0; s < 86400; s += cfg.IntervalSeconds {
		for _, t := range targets {
			for p := 0; p < cfg.Probes; p++ {
				resolver.Query(t)
			}
		}
		resolver.Advance(uint64(cfg.IntervalSeconds))
	}

	// Rank determination: inject each target's unique clients (the
	// probe count — TTL-independent) into Umbrella.
	inj := traffic.NewInjector()
	for d := 0; d < cfg.Days; d++ {
		for _, t := range targets {
			inj.Add(t, d, float64(cfg.Probes), float64(cfg.Probes*queriesPerProbePerDay))
		}
	}
	opts := cfg.Opts
	opts.Injector = inj
	opts.Enabled = []string{providers.Umbrella}
	g, err := providers.NewGenerator(model, opts)
	if err != nil {
		return nil, err
	}
	arch, err := g.Run(cfg.Days)
	if err != nil {
		return nil, err
	}
	final := arch.Get(providers.Umbrella, toplist.Day(cfg.Days-1))
	out := make([]TTLResult, len(cfg.TTLs))
	for i, ttl := range cfg.TTLs {
		out[i] = TTLResult{
			TTL:             ttl,
			ClientQueries:   resolver.ClientQueries[targets[i]],
			UpstreamQueries: resolver.UpstreamQueries[targets[i]],
			Rank:            final.RankOf(targets[i]),
		}
	}
	return out, nil
}

// MaxRankSpread returns the spread between the best and worst rank in
// the results (ignoring unlisted ones).
func MaxRankSpread(results []TTLResult) int {
	best, worst := 0, 0
	for _, r := range results {
		if r.Rank == 0 {
			continue
		}
		if best == 0 || r.Rank < best {
			best = r.Rank
		}
		if r.Rank > worst {
			worst = r.Rank
		}
	}
	return worst - best
}
