package analysis

import (
	"repro/internal/toplist"
)

// IntersectionPoint is one day of Fig. 1a: pairwise and triple
// intersections of the base-domain-normalised lists.
type IntersectionPoint struct {
	Day                                toplist.Day
	AlexaUmbrella, AlexaMajestic       int
	UmbrellaMajestic, AllThree         int
	AlexaBases, UmbrellaBases, MajBase int
}

// IntersectionSeries computes Fig. 1a over the archive for the three
// standard providers at the given subset size (0 = full list).
func (c *Context) IntersectionSeries(alexa, umbrella, majestic string, top int) []IntersectionPoint {
	var out []IntersectionPoint
	toplist.EachDay(c.Arch, func(d toplist.Day) {
		a := c.baseKeySet(c.subset(alexa, d, top))
		u := c.baseKeySet(c.subset(umbrella, d, top))
		m := c.baseKeySet(c.subset(majestic, d, top))
		p := IntersectionPoint{
			Day:           d,
			AlexaBases:    len(a),
			UmbrellaBases: len(u),
			MajBase:       len(m),
		}
		for k := range a {
			_, inU := u[k]
			_, inM := m[k]
			if inU {
				p.AlexaUmbrella++
			}
			if inM {
				p.AlexaMajestic++
			}
			if inU && inM {
				p.AllThree++
			}
		}
		for k := range u {
			if _, inM := m[k]; inM {
				p.UmbrellaMajestic++
			}
		}
		out = append(out, p)
	})
	return out
}

// DisjunctRow is one provider's row of Table 3: of the head domains
// found only in this provider's list over the final week, the share
// present on the advertising/tracking blacklist, associated with mobile
// traffic, and found in the other providers' full lists.
type DisjunctRow struct {
	Provider    string
	Disjunct    int
	BlacklistPC float64 // % hpHosts analog
	MobilePC    float64 // % Lumen analog
	OtherTopPC  float64 // % in the other lists' full Top lists
}

// Table3 classifies the one-week disjunct head domains (paper §5.3).
// head is the head subset size; the final seven archive days are
// aggregated.
func (c *Context) Table3(providers []string, head int) []DisjunctRow {
	last := c.Arch.Last()
	first := last - 6
	if first < c.Arch.First() {
		first = c.Arch.First()
	}
	// Weekly unions of head IDs and full-list IDs per provider.
	headU := make([]map[uint32]struct{}, len(providers))
	fullU := make([]map[uint32]struct{}, len(providers))
	for i, p := range providers {
		headU[i] = make(map[uint32]struct{})
		fullU[i] = make(map[uint32]struct{})
		for d := first; d <= last; d++ {
			for _, id := range c.worldIDs(c.subset(p, d, head)) {
				headU[i][id] = struct{}{}
			}
			for _, id := range c.worldIDs(c.subset(p, d, 0)) {
				fullU[i][id] = struct{}{}
			}
		}
	}
	rows := make([]DisjunctRow, len(providers))
	for i, p := range providers {
		row := DisjunctRow{Provider: p}
		var bl, mob, other int
		for id := range headU[i] {
			exclusive := true
			for j := range providers {
				if j == i {
					continue
				}
				if _, ok := headU[j][id]; ok {
					exclusive = false
					break
				}
			}
			if !exclusive {
				continue
			}
			row.Disjunct++
			cat := c.W.Domains[id].Category
			if cat.Blacklisted() {
				bl++
			}
			if cat.MobileTraffic() {
				mob++
			}
			inOther := false
			for j := range providers {
				if j == i {
					continue
				}
				if _, ok := fullU[j][id]; ok {
					inOther = true
					break
				}
			}
			if inOther {
				other++
			}
		}
		if row.Disjunct > 0 {
			n := float64(row.Disjunct)
			row.BlacklistPC = 100 * float64(bl) / n
			row.MobilePC = 100 * float64(mob) / n
			row.OtherTopPC = 100 * float64(other) / n
		}
		rows[i] = row
	}
	return rows
}
