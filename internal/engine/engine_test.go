package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/population"
	"repro/internal/providers"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

func testWorld(t testing.TB) (*traffic.Model, population.Config) {
	t.Helper()
	cfg := population.TestConfig()
	cfg.Days = 16
	cfg.Sites = 3000
	cfg.BirthsPerDay = 25
	w, err := population.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return traffic.NewModel(w), cfg
}

func testOpts(days int) providers.Options {
	opts := providers.DefaultOptions(days, 800)
	opts.BurnInDays = 25
	return opts
}

func generate(t testing.TB, m *traffic.Model, opts providers.Options, days, workers int) *toplist.Archive {
	t.Helper()
	g, err := providers.NewGenerator(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := Run(context.Background(), g, days, Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return arch
}

// assertIdentical fails unless the two archives hold byte-identical
// snapshots: same provider set, and for every provider and day the
// same names in the same rank order with the same IDs.
func assertIdentical(t *testing.T, want, got *toplist.Archive, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.SortedProviders(), got.SortedProviders()) {
		t.Fatalf("%s: providers %v vs %v", label, want.SortedProviders(), got.SortedProviders())
	}
	if want.Days() != got.Days() {
		t.Fatalf("%s: days %d vs %d", label, want.Days(), got.Days())
	}
	for _, p := range want.SortedProviders() {
		for d := want.First(); d <= want.Last(); d++ {
			wl, gl := want.Get(p, d), got.Get(p, d)
			if wl == nil || gl == nil {
				t.Fatalf("%s: %s %v: nil snapshot", label, p, d)
			}
			if !reflect.DeepEqual(wl.Names(), gl.Names()) {
				t.Fatalf("%s: %s %v: names differ", label, p, d)
			}
			if !reflect.DeepEqual(wl.IDs(), gl.IDs()) {
				t.Fatalf("%s: %s %v: IDs differ", label, p, d)
			}
		}
	}
}

// TestEquivalenceSerialVsConcurrent is the PR's core guarantee: the
// concurrent engine produces archives byte-identical to the Workers=1
// serial reference path, for every provider and every day.
func TestEquivalenceSerialVsConcurrent(t *testing.T) {
	m, cfg := testWorld(t)
	for _, workers := range []int{2, 3, 4, 8} {
		serial := generate(t, m, testOpts(cfg.Days), cfg.Days, 1)
		conc := generate(t, m, testOpts(cfg.Days), cfg.Days, workers)
		assertIdentical(t, serial, conc, fmt.Sprintf("workers=%d", workers))
		if !conc.Complete() {
			t.Fatalf("workers=%d: archive incomplete", workers)
		}
	}
}

// TestEquivalenceWithLegacyRun pins the engine to the pre-engine
// generator loop: providers.Generator.Run and the engine must agree.
func TestEquivalenceWithLegacyRun(t *testing.T) {
	m, cfg := testWorld(t)
	g, err := providers.NewGenerator(m, testOpts(cfg.Days))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := g.Run(cfg.Days)
	if err != nil {
		t.Fatal(err)
	}
	eng := generate(t, m, testOpts(cfg.Days), cfg.Days, 0)
	assertIdentical(t, legacy, eng, "legacy-vs-engine")
}

// TestEquivalenceWithInjector covers the §7 manipulation path on all
// three axes: the injected-name merge (DNS clients into Umbrella,
// panel visitors into Alexa, backlinks into Majestic) must also be
// independent of the worker count.
func TestEquivalenceWithInjector(t *testing.T) {
	m, cfg := testWorld(t)
	mkInj := func(clients, queries float64) *traffic.Injector {
		inj := traffic.NewInjector()
		for d := -25; d < cfg.Days; d++ {
			inj.Add("manipulated.example", d, clients, queries)
		}
		return inj
	}
	mkOpts := func() providers.Options {
		opts := testOpts(cfg.Days)
		opts.Injector = mkInj(9000, 90000)
		opts.AlexaInjector = mkInj(200000, 600000)
		opts.MajesticInjector = mkInj(150000, 0)
		return opts
	}
	serial := generate(t, m, mkOpts(), cfg.Days, 1)
	conc := generate(t, m, mkOpts(), cfg.Days, 4)
	assertIdentical(t, serial, conc, "injector")
	for _, p := range []string{providers.Alexa, providers.Umbrella, providers.Majestic} {
		found := false
		for d := toplist.Day(0); d <= serial.Last(); d++ {
			if serial.Get(p, d).Contains("manipulated.example") {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: injected name never entered the list", p)
		}
	}
}

// recordingSink records Put/EndDay order and can fail on demand.
type recordingSink struct {
	puts    []string
	days    []toplist.Day
	failPut int // fail the n-th Put (1-based; 0 = never)
}

func (s *recordingSink) Put(provider string, day toplist.Day, l *toplist.List) error {
	s.puts = append(s.puts, fmt.Sprintf("%s/%d", provider, int(day)))
	if s.failPut > 0 && len(s.puts) == s.failPut {
		return errors.New("sink full")
	}
	if l == nil {
		return errors.New("nil list")
	}
	return nil
}

func (s *recordingSink) EndDay(day toplist.Day) error {
	s.days = append(s.days, day)
	return nil
}

func TestStreamingOrderAndDayBarrier(t *testing.T) {
	m, cfg := testWorld(t)
	for _, workers := range []int{1, 4} {
		g, err := providers.NewGenerator(m, testOpts(cfg.Days))
		if err != nil {
			t.Fatal(err)
		}
		sink := &recordingSink{}
		if err := New(g, Config{Workers: workers}).Run(context.Background(), cfg.Days, sink); err != nil {
			t.Fatal(err)
		}
		if len(sink.days) != cfg.Days {
			t.Fatalf("workers=%d: EndDay fired %d times, want %d", workers, len(sink.days), cfg.Days)
		}
		want := make([]string, 0, 3*cfg.Days)
		for d := 0; d < cfg.Days; d++ {
			if sink.days[d] != toplist.Day(d) {
				t.Fatalf("workers=%d: day barrier order %v", workers, sink.days)
			}
			for _, p := range []string{providers.Alexa, providers.Umbrella, providers.Majestic} {
				want = append(want, fmt.Sprintf("%s/%d", p, d))
			}
		}
		if !reflect.DeepEqual(sink.puts, want) {
			t.Fatalf("workers=%d: put order differs:\n got %v\nwant %v", workers, sink.puts, want)
		}
	}
}

func TestSinkErrorStopsRun(t *testing.T) {
	m, cfg := testWorld(t)
	for _, workers := range []int{1, 4} {
		g, err := providers.NewGenerator(m, testOpts(cfg.Days))
		if err != nil {
			t.Fatal(err)
		}
		sink := &recordingSink{failPut: 5}
		err = New(g, Config{Workers: workers}).Run(context.Background(), cfg.Days, sink)
		if err == nil || err.Error() != "sink full" {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if len(sink.puts) != 5 {
			t.Fatalf("workers=%d: %d puts after failure", workers, len(sink.puts))
		}
	}
}

func TestRunValidation(t *testing.T) {
	m, cfg := testWorld(t)
	g, err := providers.NewGenerator(m, testOpts(cfg.Days))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), g, 0, Config{}); err == nil {
		t.Fatal("days=0 should fail")
	}
	if err := New(g, Config{}).Run(context.Background(), 1, nil); err == nil {
		t.Fatal("nil sink should fail")
	}
}

// cancellingSink cancels its context during the Put of a target day.
type cancellingSink struct {
	cancel    context.CancelFunc
	cancelDay toplist.Day
	lastDay   toplist.Day
}

func (s *cancellingSink) Put(provider string, day toplist.Day, l *toplist.List) error {
	if day > s.lastDay {
		s.lastDay = day
	}
	if day == s.cancelDay {
		s.cancel()
	}
	return nil
}

// TestCancellationStopsWithinOneDay: after ctx is cancelled during day
// N, the sink sees no snapshot for any day beyond N+1 and the run
// returns ctx.Err() — on both the serial and the concurrent path.
func TestCancellationStopsWithinOneDay(t *testing.T) {
	m, cfg := testWorld(t)
	const cancelDay = 4
	for _, workers := range []int{1, 4} {
		g, err := providers.NewGenerator(m, testOpts(cfg.Days))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		sink := &cancellingSink{cancel: cancel, cancelDay: cancelDay}
		err = New(g, Config{Workers: workers}).Run(ctx, cfg.Days, sink)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if sink.lastDay > cancelDay+1 {
			t.Fatalf("workers=%d: deliveries reached day %d after cancel at day %d",
				workers, sink.lastDay, cancelDay)
		}
	}
}

// TestCancelledContextRefusesBurnIn: a context cancelled up front stops
// the run before any stepping.
func TestCancelledContextRefusesBurnIn(t *testing.T) {
	m, cfg := testWorld(t)
	g, err := providers.NewGenerator(m, testOpts(cfg.Days))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := &recordingSink{}
	if err := New(g, Config{Workers: 1}).Run(ctx, cfg.Days, sink); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(sink.puts) != 0 {
		t.Fatalf("%d puts after pre-cancelled run", len(sink.puts))
	}
}

// TestTeeFansOut: a teed run fills two archives identically and
// forwards the day barrier to every DaySink.
func TestTeeFansOut(t *testing.T) {
	m, cfg := testWorld(t)
	g, err := providers.NewGenerator(m, testOpts(cfg.Days))
	if err != nil {
		t.Fatal(err)
	}
	a := toplist.NewArchive(0, toplist.Day(cfg.Days-1))
	b := toplist.NewArchive(0, toplist.Day(cfg.Days-1))
	barrier := &recordingSink{}
	if err := New(g, Config{}).Run(context.Background(), cfg.Days, Tee(a, nil, b, barrier)); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, a, b, "tee")
	if len(barrier.days) != cfg.Days {
		t.Fatalf("EndDay forwarded %d times, want %d", len(barrier.days), cfg.Days)
	}
	if Tee(a) != toplist.SnapshotSink(a) {
		t.Fatal("single-sink Tee should unwrap")
	}
	before := RunCount()
	if err := New(g, Config{}).Run(context.Background(), 1, a); err != nil {
		t.Fatal(err)
	}
	if RunCount() != before+1 {
		t.Fatal("RunCount did not advance with the run")
	}
}

// failingDaySink fails EndDay for a target day; the pipeline must
// return that error and deliver nothing past the failing day.
type failingDaySink struct {
	recordingSink
	failDay toplist.Day
}

func (s *failingDaySink) EndDay(day toplist.Day) error {
	s.days = append(s.days, day)
	if day == s.failDay {
		return fmt.Errorf("day barrier %v failed", day)
	}
	return nil
}

// TestEndDayErrorStopsRun: an error from the day barrier (not just
// Put) stops the run on both paths — the emit stage owns the error and
// the pipeline shuts down without delivering any later day.
func TestEndDayErrorStopsRun(t *testing.T) {
	m, cfg := testWorld(t)
	const failDay = 3
	for _, workers := range []int{1, 4} {
		g, err := providers.NewGenerator(m, testOpts(cfg.Days))
		if err != nil {
			t.Fatal(err)
		}
		sink := &failingDaySink{failDay: failDay}
		err = New(g, Config{Workers: workers}).Run(context.Background(), cfg.Days, sink)
		want := fmt.Sprintf("day barrier %v failed", toplist.Day(failDay))
		if err == nil || err.Error() != want {
			t.Fatalf("workers=%d: err = %v, want %q", workers, err, want)
		}
		if len(sink.days) != failDay+1 {
			t.Fatalf("workers=%d: EndDay fired %d times, want %d", workers, len(sink.days), failDay+1)
		}
		wantPuts := 3 * (failDay + 1)
		if len(sink.puts) != wantPuts {
			t.Fatalf("workers=%d: %d puts delivered after day-barrier failure, want %d",
				workers, len(sink.puts), wantPuts)
		}
	}
}

// lastDayCancelSink cancels the context during the final day's
// barrier — after every snapshot has been delivered.
type lastDayCancelSink struct {
	recordingSink
	cancel  context.CancelFunc
	lastDay toplist.Day
}

func (s *lastDayCancelSink) EndDay(day toplist.Day) error {
	s.days = append(s.days, day)
	if day == s.lastDay {
		s.cancel()
	}
	return nil
}

// TestCancelAfterLastDeliveryStillSucceeds: a cancellation racing the
// very last delivery must not retroactively fail a complete run — on
// the pipelined path exactly as on the serial reference path.
func TestCancelAfterLastDeliveryStillSucceeds(t *testing.T) {
	m, cfg := testWorld(t)
	for _, workers := range []int{1, 4} {
		g, err := providers.NewGenerator(m, testOpts(cfg.Days))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		sink := &lastDayCancelSink{cancel: cancel, lastDay: toplist.Day(cfg.Days - 1)}
		err = New(g, Config{Workers: workers}).Run(ctx, cfg.Days, sink)
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: complete run failed with %v", workers, err)
		}
		if len(sink.puts) != 3*cfg.Days {
			t.Fatalf("workers=%d: %d puts, want %d", workers, len(sink.puts), 3*cfg.Days)
		}
	}
}

// TestStatsPopulated: a completed run reports stage wall time and a
// non-oversubscribed worker split on both the serial and the pipelined
// path.
func TestStatsPopulated(t *testing.T) {
	m, cfg := testWorld(t)
	for _, workers := range []int{1, 2, 4} {
		g, err := providers.NewGenerator(m, testOpts(cfg.Days))
		if err != nil {
			t.Fatal(err)
		}
		e := New(g, Config{Workers: workers})
		arch := toplist.NewArchive(0, toplist.Day(cfg.Days-1))
		if err := e.Run(context.Background(), cfg.Days, arch); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		if st.StepTime <= 0 || st.RankTime <= 0 {
			t.Fatalf("workers=%d: zero stage time: %+v", workers, st)
		}
		if st.StepWorkers < 1 || st.RankWorkers < 1 {
			t.Fatalf("workers=%d: empty stage: %+v", workers, st)
		}
		if workers > 1 && st.StepWorkers+st.RankWorkers > workers {
			t.Fatalf("workers=%d: oversubscribed split: %+v", workers, st)
		}
		if workers == 1 && (st.StepWorkers != 1 || st.RankWorkers != 1) {
			t.Fatalf("serial split reported as %+v", st)
		}
	}
}

// TestKernelArchiveEquivalence is the tentpole's cross-option bitwise
// guarantee: archives generated through the precomputed signal kernel
// are identical to the retained reference implementation
// (traffic.Model with DisableKernel) across the ablation options, the
// Alexa regime change, all three injectors, and worker counts 1, 2,
// and GOMAXPROCS.
func TestKernelArchiveEquivalence(t *testing.T) {
	m, cfg := testWorld(t)
	mkInj := func(clients, queries float64) *traffic.Injector {
		inj := traffic.NewInjector()
		for d := -25; d < cfg.Days; d++ {
			inj.Add("kernel-equiv.example", d, clients, queries)
		}
		return inj
	}
	cases := []struct {
		name string
		opts func() providers.Options
	}{
		{"default", func() providers.Options { return testOpts(cfg.Days) }},
		{"umbrella-volume-ranking", func() providers.Options {
			opts := testOpts(cfg.Days)
			opts.UmbrellaVolumeRanking = true
			return opts
		}},
		{"alexa-regime-change", func() providers.Options {
			opts := testOpts(cfg.Days)
			opts.AlexaChangeDay = 3 // early flip: most days run post-regime
			return opts
		}},
		{"all-injectors", func() providers.Options {
			opts := testOpts(cfg.Days)
			opts.Injector = mkInj(9000, 90000)
			opts.AlexaInjector = mkInj(200000, 600000)
			opts.MajesticInjector = mkInj(150000, 0)
			return opts
		}},
	}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, c := range cases {
		m.DisableKernel = true
		ref := generate(t, m, c.opts(), cfg.Days, 1)
		m.DisableKernel = false
		for _, workers := range workerCounts {
			got := generate(t, m, c.opts(), cfg.Days, workers)
			assertIdentical(t, ref, got, fmt.Sprintf("%s/workers=%d", c.name, workers))
		}
	}
}
