package pack

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/archived"
	"repro/internal/toplist"
)

// BenchmarkPackServe pins the claim the pack backend makes: a packed
// archive served through archived is in the same performance class as
// the DiskStore it was packed from, because both hand the server the
// same raw gzip documents. Variants:
//
//   - pack/hot:  packed file behind archived, blob cache warm — the
//     steady state of a daemon on -serve-pack.
//   - pack/cold: packed file, effectively disabled blob cache — every
//     request is a ReaderAt slice + hash check.
//   - disk/hot:  the same data as a DiskStore, blob cache warm — the
//     baseline archived already gates in BenchmarkArchiveServe.
//   - disk/cold: DiskStore, cold blob cache — per-request file read +
//     hash check, the apples-to-apples cold comparison.
//
// The hot variants should be near-identical (both serve from the blob
// cache); the cold variants bound the pack's per-request overhead
// (one pread from a single file vs one open+read of a per-slot file).
func BenchmarkPackServe(b *testing.B) {
	dir := b.TempDir()
	store := benchStore(b, dir)
	packPath := packStore(b, store)

	for _, v := range []struct {
		name string
		src  func(b *testing.B) toplist.Source
		opts []archived.Option
	}{
		{"pack/hot", func(b *testing.B) toplist.Source { return benchOpenPack(b, packPath) }, nil},
		{"pack/cold", func(b *testing.B) toplist.Source { return benchOpenPack(b, packPath) }, []archived.Option{archived.WithBlobCache(1)}},
		{"disk/hot", func(b *testing.B) toplist.Source { return benchReopen(b, dir) }, nil},
		{"disk/cold", func(b *testing.B) toplist.Source { return benchReopen(b, dir) }, []archived.Option{archived.WithBlobCache(1)}},
	} {
		b.Run(v.name, func(b *testing.B) {
			ts := httptest.NewServer(archived.NewServer(v.src(b), v.opts...))
			defer ts.Close()
			paths := benchPaths(ts, store)
			client := ts.Client()
			for _, p := range paths { // warm caches and keepalives
				benchFetch(b, client, p)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchFetch(b, client, paths[i%len(paths)])
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
		})
	}
}

// benchStore builds the serving corpus: 2 providers × 8 days × 1000
// names, the same shape BenchmarkArchiveServe uses.
func benchStore(b *testing.B, dir string) *toplist.DiskStore {
	b.Helper()
	const days, listSize = 8, 1000
	store, err := toplist.CreateDiskStore(dir, 0, days-1)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, listSize)
	for _, p := range []string{"alexa", "umbrella"} {
		for d := 0; d < days; d++ {
			for i := range names {
				names[i] = fmt.Sprintf("%s-%d-site-%04d.example.com", p, d, i)
			}
			if err := store.Put(p, toplist.Day(d), toplist.New(names)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return store
}

func benchOpenPack(b *testing.B, path string) *Pack {
	b.Helper()
	p, err := OpenFile(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	return p
}

func benchReopen(b *testing.B, dir string) *toplist.DiskStore {
	b.Helper()
	store, err := toplist.OpenArchive(dir)
	if err != nil {
		b.Fatal(err)
	}
	return store
}

func benchPaths(ts *httptest.Server, src toplist.Source) []string {
	var paths []string
	for _, p := range src.Providers() {
		for d := src.First(); d <= src.Last(); d++ {
			if src.Get(p, d) != nil {
				paths = append(paths, ts.URL+toplist.RemoteSnapshotPath(p, d))
			}
		}
	}
	return paths
}

func benchFetch(b *testing.B, c *http.Client, url string) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := c.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
}
