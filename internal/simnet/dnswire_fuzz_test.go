package simnet

import (
	"bytes"
	"testing"
)

// seedMessages returns valid wire messages covering the encoder's
// shapes: plain A answer, CNAME chain with compression pointers,
// NXDOMAIN, CAA, and truncation.
func seedMessages(t interface{ Fatal(...any) }) [][]byte {
	msgs := []*Message{
		{
			ID: 1, Response: true, Recursion: true,
			Question: Question{Name: "a.example.com", Type: TypeA, Class: ClassIN},
			Answers: []ResourceRecord{{
				Name: "a.example.com", Type: TypeA, Class: ClassIN, TTL: 60,
				Data: []byte{10, 0, 0, 1},
			}},
		},
		{
			ID: 2, Response: true, RCode: RCodeNXDomain,
			Question: Question{Name: "nx.example.com", Type: TypeAAAA, Class: ClassIN},
		},
		{
			ID: 3, Recursion: true,
			Question: Question{Name: "query-only.example.org", Type: TypeCAA, Class: ClassIN},
		},
		{
			ID: 4, Response: true, Truncated: true,
			Question: Question{Name: "big.example.com", Type: TypeA, Class: ClassIN},
		},
	}
	chain := BuildAnswer(5, "www.chain.example.com", TypeA, Response{
		RCode: RCodeNoError,
		Chain: []string{"edge.cdn.net", "origin.cdn.net"},
		A:     0x0A000001, TTL: 300,
	})
	msgs = append(msgs, chain)
	caa := BuildAnswer(6, "caa.example.com", TypeCAA, Response{RCode: RCodeNoError, CAA: true, TTL: 30})
	msgs = append(msgs, caa)

	var out [][]byte
	for _, m := range msgs {
		b, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzDecodeMessage asserts the decoder never panics on arbitrary
// bytes and that anything it accepts survives an encode/decode round
// trip semantically intact.
func FuzzDecodeMessage(f *testing.F) {
	for _, seed := range seedMessages(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xC0}, 40)) // pointer storm
	f.Add(bytes.Repeat([]byte{0xFF}, 12))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		// Accepted messages must re-encode (the encoder may refuse
		// names the decoder tolerated, e.g. empty question names — but
		// if it encodes, the result must decode back to the same
		// semantics).
		enc, err := m.Encode()
		if err != nil {
			return
		}
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v (original %x)", err, data)
		}
		if m.ID != m2.ID || m.Response != m2.Response || m.RCode != m2.RCode ||
			m.Truncated != m2.Truncated || len(m.Answers) != len(m2.Answers) {
			t.Fatalf("round trip changed header/answers:\n%+v\n%+v", m, m2)
		}
		for i := range m.Answers {
			a, b := m.Answers[i], m2.Answers[i]
			if a.Type != b.Type || a.TTL != b.TTL || !bytes.Equal(a.Data, b.Data) {
				t.Fatalf("answer %d changed: %+v vs %+v", i, a, b)
			}
		}
	})
}

// FuzzDecodeCAA asserts CAA RDATA parsing never panics and accepted
// payloads round trip.
func FuzzDecodeCAA(f *testing.F) {
	f.Add(EncodeCAA(0, "issue", "ca.example"))
	f.Add(EncodeCAA(128, "issuewild", ";"))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		flags, tag, value, err := DecodeCAA(data)
		if err != nil {
			return
		}
		enc := EncodeCAA(flags, tag, value)
		f2, t2, v2, err := DecodeCAA(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if f2 != flags || t2 != tag || v2 != value {
			t.Fatalf("CAA round trip changed: (%d,%q,%q) vs (%d,%q,%q)",
				flags, tag, value, f2, t2, v2)
		}
	})
}
