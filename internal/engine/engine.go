// Package engine owns the simulation loop: burn the provider windows
// in, step each simulated day, and stream the day's snapshots into a
// SnapshotSink. It is the concurrent spine of the system — the loop
// that used to be hardcoded in core.Run and providers.Generator.Run —
// and is concurrent at three levels:
//
//  1. the hot per-domain loops (signal synthesis, per-base score
//     aggregation, EMA updates) are sharded across workers inside
//     providers.Generator.StepDay;
//  2. the three providers step and rank concurrently per day (their
//     window states are fully independent);
//  3. snapshots stream to the sink from a writer goroutine, so sink
//     I/O (in-memory archiving, HTTP publication, CSV writing)
//     overlaps the next day's stepping.
//
// Workers = 1 selects the legacy serial path, kept as the reference
// implementation; every concurrent level is constructed to be bitwise
// identical to it (fixed shard boundaries, per-accumulator addition
// order preserved, fixed provider emit order), which the equivalence
// tests assert.
//
// Runs are context-aware: cancellation is observed at day boundaries,
// so a cancelled run stops within one simulated day and the sink never
// sees a partial day beyond the one in flight.
package engine

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/providers"
	"repro/internal/toplist"
)

// Config tunes the engine.
type Config struct {
	// Workers is the parallelism level: 1 runs the legacy serial
	// reference path, anything < 1 means GOMAXPROCS.
	Workers int
}

// SnapshotSink is re-exported from toplist for callers wiring sinks to
// the engine; toplist.Archive is the materialising implementation and
// toplist.DiskStore the durable one.
type SnapshotSink = toplist.SnapshotSink

// DaySink is an optional SnapshotSink extension: after all of a day's
// snapshots have been Put, the engine calls EndDay once. Sinks use it
// as a day barrier — e.g. to publish the finished day to readers, or
// to pace a live collection.
type DaySink interface {
	SnapshotSink
	EndDay(day toplist.Day) error
}

// SinkFunc adapts a function to a SnapshotSink.
type SinkFunc func(provider string, day toplist.Day, l *toplist.List) error

// Put calls f.
func (f SinkFunc) Put(provider string, day toplist.Day, l *toplist.List) error {
	return f(provider, day, l)
}

// teeSink fans every snapshot (and day barrier) out to several sinks
// in order — how a generation run is archived in memory and persisted
// to disk at the same time.
type teeSink []toplist.SnapshotSink

func (t teeSink) Put(provider string, day toplist.Day, l *toplist.List) error {
	for _, s := range t {
		if err := s.Put(provider, day, l); err != nil {
			return err
		}
	}
	return nil
}

func (t teeSink) EndDay(day toplist.Day) error {
	for _, s := range t {
		if ds, ok := s.(DaySink); ok {
			if err := ds.EndDay(day); err != nil {
				return err
			}
		}
	}
	return nil
}

// Tee returns a sink that forwards every Put to each sink in order;
// EndDay is forwarded to the sinks that implement DaySink. Nil sinks
// are dropped, and a single remaining sink is returned unwrapped.
func Tee(sinks ...toplist.SnapshotSink) SnapshotSink {
	t := make(teeSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			t = append(t, s)
		}
	}
	if len(t) == 1 {
		return t[0]
	}
	return t
}

// runCount counts engine runs in-process (see RunCount).
var runCount atomic.Int64

// RunCount reports how many engine runs have started in this process.
// Resume-from-disk paths assert on it staying flat: a study served
// from a reopened archive must never invoke the engine.
func RunCount() int64 { return runCount.Load() }

// Engine drives one generator through the simulated calendar.
type Engine struct {
	g   *providers.Generator
	cfg Config
}

// New builds an engine around a generator.
func New(g *providers.Generator, cfg Config) *Engine {
	return &Engine{g: g, cfg: cfg}
}

// Providers returns the provider names the engine emits, in the fixed
// output order — what an archive sink should Expect.
func (e *Engine) Providers() []string { return e.g.EnabledProviders() }

// Run generates days [0, days), burn-in included, streaming every
// snapshot into sink in deterministic order: days ascending, and
// within a day the fixed provider order (Alexa, Umbrella, Majestic).
// The first sink error stops the run and is returned.
//
// Cancelling ctx stops the run at the next day boundary — the sink
// receives no snapshot for any day after the one being emitted when
// cancellation lands — and returns ctx.Err().
func (e *Engine) Run(ctx context.Context, days int, sink SnapshotSink) error {
	if days < 1 {
		return fmt.Errorf("engine: days must be >= 1, got %d", days)
	}
	if sink == nil {
		return fmt.Errorf("engine: nil sink")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	runCount.Add(1)
	workers := e.cfg.Workers
	if workers < 1 {
		workers = parallel.Workers(workers)
	}
	g := e.g
	for d := -g.Opts.BurnInDays; d < 0; d++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		g.StepDay(d, workers)
	}
	emit := func(day toplist.Day, batch []toplist.Snapshot) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, s := range batch {
			if err := sink.Put(s.Provider, s.Day, s.List); err != nil {
				return err
			}
		}
		if ds, ok := sink.(DaySink); ok {
			return ds.EndDay(day)
		}
		return nil
	}
	if workers <= 1 {
		for d := 0; d < days; d++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			g.StepDay(d, 1)
			if err := emit(toplist.Day(d), g.Snapshots(toplist.Day(d), 1)); err != nil {
				return err
			}
		}
		return nil
	}

	// Concurrent path: a writer goroutine drains finished days so the
	// sink's I/O overlaps stepping. The small channel buffer bounds
	// how far generation may run ahead of a slow sink; emit checks ctx
	// per day, so cancellation stops deliveries within one day even
	// while stepping runs ahead.
	type dayBatch struct {
		day   toplist.Day
		snaps []toplist.Snapshot
	}
	batches := make(chan dayBatch, 2)
	errc := make(chan error, 1)
	go func() {
		for b := range batches {
			if err := emit(b.day, b.snaps); err != nil {
				errc <- err
				for range batches { // release the producer
				}
				return
			}
		}
		errc <- nil
	}()
	for d := 0; d < days; d++ {
		select {
		case err := <-errc:
			// The writer only exits early on error; stop generating.
			close(batches)
			return err
		case <-ctx.Done():
			close(batches)
			<-errc // wait for the writer to drain and exit
			return ctx.Err()
		default:
		}
		g.StepDay(d, workers)
		batches <- dayBatch{toplist.Day(d), g.Snapshots(toplist.Day(d), workers)}
	}
	close(batches)
	return <-errc
}

// Run builds the archive for days [0, days) with a fresh generator
// drive — the drop-in replacement for providers.Generator.Run with a
// concurrency knob. The archive's expected provider set is declared,
// so Complete/Missing report absent providers too.
func Run(ctx context.Context, g *providers.Generator, days int, cfg Config) (*toplist.Archive, error) {
	if days < 1 {
		return nil, fmt.Errorf("engine: days must be >= 1, got %d", days)
	}
	arch := toplist.NewArchive(0, toplist.Day(days-1))
	arch.Expect(g.EnabledProviders()...)
	if err := New(g, cfg).Run(ctx, days, arch); err != nil {
		return nil, err
	}
	return arch, nil
}
