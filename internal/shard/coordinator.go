package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/parallel"
	"repro/internal/providers"
	"repro/internal/serve"
	"repro/internal/toplist"
)

// Coordinator farms a generation run's per-day stepping out to shard
// workers and merges their partial results into the local Generator.
// It implements engine.RemoteStepper, so the engine's serial and
// pipelined day loops drive it exactly like an in-process StepDay —
// and because shard boundaries are parallel.Shard of (shards, n) and
// every merge is a positional copy of worker-computed values, the
// resulting archive is byte-identical to a local run.
//
// Worker health flows through fleet.PeerSet: each shard is assigned to
// the healthiest available worker, a worker that fails its RPC budget
// is marked failed (entering the set's jittered exponential backoff)
// and its shard is reseeded on another worker from the coordinator's
// merged front state — within the same day, never double-merging, so a
// mid-day kill -9 costs latency, not correctness.
type Coordinator struct {
	g      *providers.Generator
	job    Job
	peers  *fleet.PeerSet
	shards int
	n      int

	httpc       *http.Client
	maxAttempts int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	jitter      func() float64
	sleep       func(ctx context.Context, d time.Duration) error
	logger      *log.Logger

	sessions []*shardSession
	merged   int  // days merged so far (burn-in included)
	lastDay  int  // last merged day
	haveDay  bool // whether lastDay is meaningful

	metrics        *serve.Metrics
	daysTotal      *serve.Counter
	reassigned     *serve.Counter
	workerFailures *serve.Counter
}

// shardSession tracks one shard's current assignment. Only the
// goroutine stepping that shard touches it during a day; the
// coordinator is not safe for concurrent StepDay calls (the engine
// never makes them).
type shardSession struct {
	index  int
	lo, hi int
	peer   *fleet.Peer // nil when unassigned
	id     string      // worker-side session ID
}

// CoordinatorOption configures a Coordinator.
type CoordinatorOption func(*Coordinator)

// WithShards overrides the shard count (default: one per worker URL).
// More shards than workers is legal and spreads reassignment cost;
// the count never changes output bytes.
func WithShards(n int) CoordinatorOption {
	return func(c *Coordinator) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithCoordinatorMetrics registers the coordinator's counters and
// per-worker lag gauges on m.
func WithCoordinatorMetrics(m *serve.Metrics) CoordinatorOption {
	return func(c *Coordinator) {
		c.metrics = m
		c.registerMetrics()
	}
}

// WithCoordinatorLogger routes coordinator logs (default: discarded).
func WithCoordinatorLogger(l *log.Logger) CoordinatorOption {
	return func(c *Coordinator) { c.logger = l }
}

// WithCoordinatorRetry tunes the per-request retry budget and backoff
// window — tests shrink these to keep failover fast.
func WithCoordinatorRetry(attempts int, base, max time.Duration) CoordinatorOption {
	return func(c *Coordinator) {
		if attempts > 0 {
			c.maxAttempts = attempts
		}
		if base > 0 {
			c.baseBackoff = base
		}
		if max > 0 {
			c.maxBackoff = max
		}
	}
}

// WithHTTPClient overrides the HTTP client (tests inject httptest
// clients and tight timeouts).
func WithHTTPClient(hc *http.Client) CoordinatorOption {
	return func(c *Coordinator) { c.httpc = hc }
}

// NewCoordinator builds a coordinator over workerURLs for the run
// described by (g, job). The job must describe exactly the generator's
// world and options; JobFor derives it.
func NewCoordinator(g *providers.Generator, job Job, workerURLs []string, opts ...CoordinatorOption) (*Coordinator, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		g:           g,
		job:         job,
		n:           g.Model.W.Len(),
		shards:      len(workerURLs),
		httpc:       &http.Client{Timeout: 2 * time.Minute},
		maxAttempts: 4,
		baseBackoff: 200 * time.Millisecond,
		maxBackoff:  5 * time.Second,
		jitter:      rand.Float64,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
		logger: log.New(io.Discard, "", 0),
	}
	// The peer set supplies health tracking and jittered backoff;
	// its Remote machinery goes unused (workers speak /shard/v1, not
	// /archive/v1).
	ps, err := fleet.NewPeerSet(workerURLs)
	if err != nil {
		return nil, err
	}
	c.peers = ps
	for _, o := range opts {
		o(c)
	}
	if c.metrics == nil {
		c.metrics = serve.NewMetrics()
		c.registerMetrics()
	}
	for _, b := range parallel.Shards(c.shards, c.n) {
		c.sessions = append(c.sessions, &shardSession{index: len(c.sessions), lo: b[0], hi: b[1]})
	}
	if len(c.sessions) == 0 {
		return nil, fmt.Errorf("shard: empty world, nothing to shard")
	}
	return c, nil
}

func (c *Coordinator) registerMetrics() {
	c.daysTotal = c.metrics.Counter("shard_days_total",
		"Simulated days stepped through shard workers (burn-in included).")
	c.reassigned = c.metrics.Counter("shard_reassigned_total",
		"Shard sessions reassigned to another worker after failures.")
	c.workerFailures = c.metrics.Counter("shard_worker_failures_total",
		"Worker RPC failures observed (post-retry).")
}

// workerLag returns (registering lazily) the worker's lag gauge.
func (c *Coordinator) workerLag(url string) *serve.Gauge {
	return c.metrics.Gauge(
		fmt.Sprintf("shard_worker_lag_days{worker=%q}", url),
		"Days the worker's last completed step trails the coordinator's current day.")
}

// Reassigned returns how many shard reassignments have happened.
func (c *Coordinator) Reassigned() int64 { return c.reassigned.Value() }

// DaysMerged returns how many days have been merged (burn-in included).
func (c *Coordinator) DaysMerged() int { return c.merged }

// StepDay steps every shard to day on its assigned worker and merges
// the partial results into the generator — the distributed equivalent
// of Generator.StepDay(day, 1). Days must be sequential, burn-in
// included, exactly as the engine drives them.
func (c *Coordinator) StepDay(ctx context.Context, day int) error {
	if c.haveDay && day != c.lastDay+1 {
		return fmt.Errorf("shard: out-of-order StepDay: %d after %d", day, c.lastDay)
	}
	frames := make([]*Frame, len(c.sessions))
	errs := make([]error, len(c.sessions))
	var wg sync.WaitGroup
	for i := range c.sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			frames[i], errs[i] = c.stepShard(ctx, c.sessions[i], day)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	err := c.g.MergeDay(day, func(provider string, dst []float64) error {
		for i, f := range frames {
			vals := f.Field(provider)
			if vals == nil {
				return fmt.Errorf("shard %d frame missing provider %s", i, provider)
			}
			copy(dst[f.Lo:f.Hi], vals)
		}
		return nil
	})
	if err != nil {
		return err
	}
	c.merged++
	c.lastDay = day
	c.haveDay = true
	c.daysTotal.Add(1)
	for _, s := range c.sessions {
		if s.peer != nil {
			c.workerLag(s.peer.URL()).Set(0)
		}
	}
	return nil
}

// stepShard produces shard s's frame for day, reassigning the session
// to other workers on failure. A frame is returned exactly once per
// (shard, day): either the assigned worker steps it, or the session is
// dropped unmerged and reseeded elsewhere — never both, so a value can
// never be double-merged.
func (c *Coordinator) stepShard(ctx context.Context, s *shardSession, day int) (*Frame, error) {
	// Total strike budget across reassignments: enough to visit every
	// worker through a full retry cycle before giving up.
	maxStrikes := c.maxAttempts * len(c.peers.Peers())
	var lastErr error
	for strikes := 0; strikes < maxStrikes; strikes++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.peer == nil {
			if err := c.assign(ctx, s, day); err != nil {
				lastErr = err
				c.workerFailures.Add(1)
				continue
			}
		}
		frame, err := c.stepOnce(ctx, s, day)
		if err == nil {
			s.peer.MarkOK()
			c.workerLag(s.peer.URL()).Set(int64(0))
			return frame, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
		c.logger.Printf("shard %d day %d on %s: %v", s.index, day, s.peer.URL(), err)
		c.workerFailures.Add(1)
		s.peer.MarkFailed()
		c.workerLag(s.peer.URL()).Set(int64(1))
		// Drop the session: whatever state the worker holds is now
		// unreachable or untrusted. Reassignment reseeds from the
		// coordinator's merged front state (day-1), which is exactly
		// what the dead worker had merged so far.
		s.peer, s.id = nil, ""
		c.reassigned.Add(1)
	}
	return nil, fmt.Errorf("shard: shard %d day %d failed on every worker: %w", s.index, day, lastErr)
}

// assign opens and seeds a session for s on the healthiest available
// worker. Seeding always uses the generator's front buffers — the
// merged state of day-1 — so a reassigned shard resumes bit-identically
// (proved by TestShardStepperSeedResume at the providers layer).
func (c *Coordinator) assign(ctx context.Context, s *shardSession, day int) error {
	avail := c.peers.Available()
	if len(avail) == 0 {
		// Everyone is in backoff; wait out roughly one base window
		// (jittered like the request backoff) and let the caller burn a
		// strike.
		d := time.Duration(float64(c.baseBackoff) * (0.5 + c.jitter()))
		if err := c.sleep(ctx, d); err != nil {
			return err
		}
		return fmt.Errorf("shard: no workers available for shard %d", s.index)
	}
	// Spread shards across the available set (healthiest-first order)
	// instead of piling every shard on the single healthiest worker.
	peer := avail[s.index%len(avail)]

	var req OpenRequest
	req.Job = c.job
	req.Shard.Index = s.index
	req.Shard.Count = len(c.sessions)
	body, err := jsonBody(req)
	if err != nil {
		return err
	}
	var open OpenResponse
	if err := c.doJSON(ctx, peer, "POST", peer.URL()+APIPrefix+"/open", body, &open); err != nil {
		return fmt.Errorf("open shard %d on %s: %w", s.index, peer.URL(), err)
	}
	if open.Lo != s.lo || open.Hi != s.hi {
		// Worker computed different boundaries: its world differs.
		peer.MarkFailed()
		return fmt.Errorf("shard: worker %s computed shard %d as [%d, %d), coordinator has [%d, %d)",
			peer.URL(), s.index, open.Lo, open.Hi, s.lo, s.hi)
	}

	seed := &Frame{Day: day - 1, Lo: s.lo, Hi: s.hi, Started: c.merged > 0}
	for _, p := range c.g.EnabledProviders() {
		vals := c.g.FrontValues(p)
		seed.Fields = append(seed.Fields, Field{Provider: p, Values: vals[s.lo:s.hi]})
	}
	frame, err := seed.Encode()
	if err != nil {
		return err
	}
	if _, err := c.doRaw(ctx, peer, "POST", peer.URL()+APIPrefix+"/seed/"+open.Session, frame); err != nil {
		return fmt.Errorf("seed shard %d on %s: %w", s.index, peer.URL(), err)
	}
	s.peer, s.id = peer, open.Session
	c.logger.Printf("shard %d assigned to %s (session %s, seed day %d)", s.index, peer.URL(), open.Session, day-1)
	return nil
}

// stepOnce asks s's assigned worker for day's frame and validates it.
func (c *Coordinator) stepOnce(ctx context.Context, s *shardSession, day int) (*Frame, error) {
	url := fmt.Sprintf("%s%s/step/%s/%d", s.peer.URL(), APIPrefix, s.id, day)
	body, err := c.doRaw(ctx, s.peer, "POST", url, nil)
	if err != nil {
		return nil, err
	}
	frame, err := Decode(body)
	if err != nil {
		return nil, err
	}
	if frame.Day != day || frame.Lo != s.lo || frame.Hi != s.hi {
		return nil, fmt.Errorf("shard: frame (day %d, [%d, %d)) does not match request (day %d, [%d, %d))",
			frame.Day, frame.Lo, frame.Hi, day, s.lo, s.hi)
	}
	providersWant := c.g.EnabledProviders()
	if len(frame.Fields) != len(providersWant) {
		return nil, fmt.Errorf("shard: frame has %d fields, want %d", len(frame.Fields), len(providersWant))
	}
	for _, p := range providersWant {
		if frame.Field(p) == nil {
			return nil, fmt.Errorf("shard: frame missing provider %s", p)
		}
	}
	return frame, nil
}

// Close releases every open worker session, best-effort.
func (c *Coordinator) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, s := range c.sessions {
		if s.peer == nil {
			continue
		}
		c.doRaw(ctx, s.peer, "DELETE", s.peer.URL()+APIPrefix+"/session/"+s.id, nil) //nolint:errcheck // best-effort cleanup
		s.peer, s.id = nil, ""
	}
}

// --- HTTP plumbing -----------------------------------------------------

// transientErr marks a failure worth retrying against the same worker.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// doRaw performs one HTTP exchange with per-request jittered
// exponential retry for transient failures — network errors and the
// same status classification /archive/v1 clients use
// (toplist.TransientStatus). Protocol-level refusals (4xx, including
// the 409 out-of-order/unseeded conflicts) are final: retrying cannot
// change a worker's verdict about a malformed request.
func (c *Coordinator) doRaw(ctx context.Context, peer *fleet.Peer, method, url string, body []byte) ([]byte, error) {
	var out []byte
	err := c.retry(ctx, func() error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return err
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			return &transientErr{err}
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			out, err = io.ReadAll(io.LimitReader(resp.Body, maxRequestBody+1))
			if err != nil {
				return &transientErr{err}
			}
			return nil
		case resp.StatusCode == http.StatusNoContent:
			out = nil
			return nil
		case toplist.TransientStatus(resp.StatusCode):
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck // drain for reuse
			return &transientErr{&toplist.RemoteStatusError{URL: url, Code: resp.StatusCode}}
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
			return fmt.Errorf("shard: %s %s: status %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(msg))
		}
	})
	return out, err
}

// doJSON is doRaw plus a JSON-decoded response.
func (c *Coordinator) doJSON(ctx context.Context, peer *fleet.Peer, method, url string, body []byte, v any) error {
	out, err := c.doRaw(ctx, peer, method, url, body)
	if err != nil {
		return err
	}
	return json.Unmarshal(out, v)
}

// retry runs op with the repo's standard jittered exponential backoff
// (mirroring toplist.Remote.retry): transient errors retry up to
// maxAttempts, anything else is final.
func (c *Coordinator) retry(ctx context.Context, op func() error) error {
	var lastErr error
	backoff := c.baseBackoff
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last error: %v)", err, lastErr)
			}
			return err
		}
		err := op()
		if err == nil {
			return nil
		}
		var te *transientErr
		if !errors.As(err, &te) {
			return err
		}
		lastErr = te.err
		if attempt >= c.maxAttempts {
			return fmt.Errorf("shard: giving up after %d attempts: %w", attempt, lastErr)
		}
		d := time.Duration(float64(backoff) * (0.5 + c.jitter()))
		if d > c.maxBackoff {
			d = c.maxBackoff
		}
		if err := c.sleep(ctx, d); err != nil {
			return fmt.Errorf("%w (last error: %v)", err, lastErr)
		}
		backoff *= 2
	}
}

func jsonBody(v any) ([]byte, error) {
	return json.Marshal(v)
}
