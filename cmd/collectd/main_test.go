package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/archived"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/listserv"
	"repro/internal/population"
	"repro/internal/providers"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

func publisher(t *testing.T, days int) (*httptest.Server, *toplist.Archive, *listserv.Gatekeeper) {
	t.Helper()
	arch := toplist.NewArchive(0, toplist.Day(days-1))
	for _, p := range []string{"alexa", "umbrella"} {
		for d := 0; d < days; d++ {
			names := []string{fmt.Sprintf("%s-top-%d.com", p, d), "second.com"}
			if err := arch.Put(p, toplist.Day(d), toplist.New(names)); err != nil {
				t.Fatal(err)
			}
		}
	}
	gk := listserv.NewGatekeeper(arch, 0)
	ts := httptest.NewServer(listserv.NewServerAt(gk))
	t.Cleanup(ts.Close)
	return ts, arch, gk
}

func quiet() *log.Logger { return log.New(io.Discard, "", 0) }

// peerSet builds a gap-fill peer set with a small retry budget so
// dead-peer tests fail over fast.
func peerSet(t *testing.T, urls ...string) *fleet.PeerSet {
	t.Helper()
	ps, err := fleet.NewPeerSet(urls,
		fleet.WithPeerRemoteOptions(toplist.WithRemoteMaxAttempts(2), toplist.WithRemoteBaseBackoff(time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// TestStoreStreamsFromEngine produces the collector's on-disk archive
// straight from the simulation engine — no HTTP hop — by handing the
// same toplist.DiskStore collectOnce writes to engine.Run as its
// streaming sink, then reopening it cold.
func TestStoreStreamsFromEngine(t *testing.T) {
	cfg := population.TestConfig()
	cfg.Days = 8
	cfg.Sites = 2000
	w, err := population.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := providers.DefaultOptions(cfg.Days, 500)
	opts.BurnInDays = 10
	g, err := providers.NewGenerator(traffic.NewModel(w), opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := openStore(dir, 0, toplist.Day(cfg.Days-1))
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.New(g, engine.Config{}).Run(context.Background(), cfg.Days, store); err != nil {
		t.Fatal(err)
	}
	reopened, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range g.EnabledProviders() {
		for d := 0; d < cfg.Days; d++ {
			l := reopened.Get(p, toplist.Day(d))
			if l == nil {
				t.Fatalf("%s day %d: missing after reopen", p, d)
			}
			if l.Len() != 500 {
				t.Fatalf("%s day %d: %d entries", p, d, l.Len())
			}
		}
	}
}

func TestCollectOnceWritesAndSkipsExisting(t *testing.T) {
	ts, _, gk := publisher(t, 4)
	dir := t.TempDir()
	client := listserv.NewClient(ts.URL)
	ctx := context.Background()

	n, err := collectOnce(ctx, client, dir, nil, nil, quiet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // day 0 visible, two providers
		t.Fatalf("wrote %d, want 2", n)
	}
	// Re-running collects nothing new.
	n, err = collectOnce(ctx, client, dir, nil, nil, quiet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("second pass wrote %d, want 0", n)
	}
	// Publisher advances two days; the collector catches up.
	gk.Advance(2)
	n, err = collectOnce(ctx, client, dir, nil, nil, quiet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("catch-up wrote %d, want 4", n)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*", "*.csv.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 6 {
		t.Fatalf("files = %d, want 6", len(matches))
	}
	// No temp leftovers.
	if tmp, _ := filepath.Glob(filepath.Join(dir, "*", "*.tmp")); len(tmp) != 0 {
		t.Fatalf("temp files left behind: %v", tmp)
	}
	// The collected archive reopens as a servable source covering the
	// extended day range.
	store, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.Days() != 3 || len(store.Providers()) != 2 {
		t.Fatalf("reopened store: %d days, providers %v", store.Days(), store.Providers())
	}
}

func TestCollectedSnapshotsRoundTrip(t *testing.T) {
	ts, arch, _ := publisher(t, 1)
	dir := t.TempDir()
	if _, err := collectOnce(context.Background(), listserv.NewClient(ts.URL), dir, nil, nil, quiet(), nil); err != nil {
		t.Fatal(err)
	}
	store, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := store.Get("alexa", 0)
	if got == nil {
		t.Fatal("alexa day 0 missing from reopened store")
	}
	want := arch.Get("alexa", 0)
	if got.Len() != want.Len() || got.Name(1) != want.Name(1) {
		t.Fatalf("round trip: got %v, want %v", got.Names(), want.Names())
	}
}

func TestCollectOnceRecordsGapsWithoutFailing(t *testing.T) {
	// umbrella misses day 1.
	arch := toplist.NewArchive(0, 1)
	arch.Put("alexa", 0, toplist.New([]string{"a.com"}))    //nolint:errcheck
	arch.Put("alexa", 1, toplist.New([]string{"a2.com"}))   //nolint:errcheck
	arch.Put("umbrella", 0, toplist.New([]string{"u.com"})) //nolint:errcheck
	ts := httptest.NewServer(listserv.NewServer(arch))
	defer ts.Close()

	dir := t.TempDir()
	n, err := collectOnce(context.Background(), listserv.NewClient(ts.URL), dir, nil, nil, quiet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("wrote %d, want 3 (gap skipped)", n)
	}
}

func TestRunOnceMode(t *testing.T) {
	ts, _, _ := publisher(t, 2)
	dir := t.TempDir()
	err := run([]string{"-url", ts.URL, "-out", dir, "-once"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*", "*.csv.gz"))
	if len(matches) == 0 {
		t.Fatal("once mode wrote nothing")
	}
}

// lockedBuffer lets the metrics test read run's log output while run
// is still writing to it.
type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestRunServesMetrics: with -metrics-addr the collector exposes its
// pass/snapshot counters on a second listener while following.
func TestRunServesMetrics(t *testing.T) {
	ts, _, _ := publisher(t, 2)
	dir := t.TempDir()
	var buf lockedBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-url", ts.URL, "-out", dir,
			"-interval", "1h", "-metrics-addr", "127.0.0.1:0"}, &buf)
	}()

	// The daemon logs its bound address; wait for it.
	re := regexp.MustCompile(`metrics on (http://[^/\s]+/metrics)`)
	var metricsURL string
	deadline := time.Now().Add(10 * time.Second)
	for metricsURL == "" && time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			metricsURL = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if metricsURL == "" {
		t.Fatalf("metrics address never logged:\n%s", buf.String())
	}

	// The first pass runs concurrently; wait for its counters to land.
	var body string
	for time.Now().Before(deadline) {
		resp, err := http.Get(metricsURL)
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			body = string(b)
			if strings.Contains(body, "collectd_passes_total 1") {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(body, "collectd_passes_total 1") {
		t.Fatalf("pass counter missing from exposition:\n%s", body)
	}
	if !strings.Contains(body, "collectd_snapshots_collected_total") {
		t.Fatalf("snapshot counter missing from exposition:\n%s", body)
	}

	// SIGTERM stops the follow loop and the metrics daemon cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop on SIGTERM")
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-url", "http://127.0.0.1:1", "-once", "-out", t.TempDir()}, io.Discard); err == nil {
		t.Fatal("unreachable publisher should fail in -once mode")
	}
}

// TestCollectOnceFillsGapsFromPeer: days the publisher never published
// are fetched from a peer archive server speaking the wire API, so two
// collectors with different outage windows converge on a complete
// dataset.
func TestCollectOnceFillsGapsFromPeer(t *testing.T) {
	// Publisher misses umbrella day 1.
	arch := toplist.NewArchive(0, 1)
	arch.Put("alexa", 0, toplist.New([]string{"a.com"}))    //nolint:errcheck
	arch.Put("alexa", 1, toplist.New([]string{"a2.com"}))   //nolint:errcheck
	arch.Put("umbrella", 0, toplist.New([]string{"u.com"})) //nolint:errcheck
	ts := httptest.NewServer(listserv.NewServer(arch))
	defer ts.Close()

	// The peer's archive has the day the publisher is missing.
	peerArch := toplist.NewArchive(0, 1)
	peerArch.Put("umbrella", 1, toplist.New([]string{"u2.com"})) //nolint:errcheck
	peer := httptest.NewServer(archived.NewServer(peerArch))
	defer peer.Close()

	dir := t.TempDir()
	n, err := collectOnce(context.Background(), listserv.NewClient(ts.URL), dir, peerSet(t, peer.URL), nil, quiet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // 3 from the publisher + 1 gap filled from the peer
		t.Fatalf("wrote %d, want 4", n)
	}
	store, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := store.Get("umbrella", 1)
	if got == nil || got.Name(1) != "u2.com" {
		t.Fatalf("peer-filled snapshot = %v", got)
	}
	if missing := store.Missing(); len(missing) != 0 {
		t.Fatalf("archive still missing %v after peer fill", missing)
	}
}

// TestCollectOnceSurvivesDeadPeer: an unreachable peer never fails the
// pass — the publisher's snapshots are stored and the gaps simply
// remain for the next pass.
func TestCollectOnceSurvivesDeadPeer(t *testing.T) {
	// The publisher covers two days but published only day 0, so the
	// pass records one gap and consults the (dead) peer for it.
	arch := toplist.NewArchive(0, 1)
	arch.Put("alexa", 0, toplist.New([]string{"a.com"})) //nolint:errcheck
	ts := httptest.NewServer(listserv.NewServer(arch))
	defer ts.Close()

	dir := t.TempDir()
	n, err := collectOnce(context.Background(), listserv.NewClient(ts.URL), dir,
		peerSet(t, "http://127.0.0.1:1"), nil, quiet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("wrote %d, want 1 (gap left open, pass not failed)", n)
	}
}

// TestVerifyRecollectsCorruptSnapshots: the -verify startup sweep turns
// corrupt slots into recollection work — the first pass refetches them
// from the publisher even though Has() reports them present, and the
// repaired archive passes a clean sweep.
func TestVerifyRecollectsCorruptSnapshots(t *testing.T) {
	ts, _, _ := publisher(t, 1)
	dir := t.TempDir()
	client := listserv.NewClient(ts.URL)
	ctx := context.Background()
	if _, err := collectOnce(ctx, client, dir, nil, nil, quiet(), nil); err != nil {
		t.Fatal(err)
	}
	// Rot one collected snapshot on disk.
	path := filepath.Join(dir, "alexa", toplist.Day(0).String()+".csv.gz")
	if err := os.WriteFile(path, []byte("rotted"), 0o644); err != nil {
		t.Fatal(err)
	}
	recollect, err := verifyArchive(dir, quiet())
	if err != nil {
		t.Fatal(err)
	}
	want := toplist.Snapshot{Provider: "alexa", Day: 0}
	if len(recollect) != 1 || !recollect[want] {
		t.Fatalf("verify sweep found %v, want {%v}", recollect, want)
	}
	// Without the recollect set the slot is skipped as present...
	n, err := collectOnce(ctx, client, dir, nil, nil, quiet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("pass without recollect wrote %d, want 0", n)
	}
	// ...with it, the corrupt slot is refetched and healed.
	n, err = collectOnce(ctx, client, dir, nil, recollect, quiet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recollect pass wrote %d, want 1", n)
	}
	store, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c := store.Verify(); len(c) != 0 {
		t.Fatalf("archive still corrupt after recollect: %v", c)
	}
	if got := store.Get("alexa", 0); got == nil || got.Name(1) != "alexa-top-0.com" {
		t.Fatalf("healed snapshot = %v", got)
	}
	// A fresh out dir has no manifest: the sweep is a quiet no-op.
	if m, err := verifyArchive(t.TempDir(), quiet()); err != nil || m != nil {
		t.Fatalf("sweep over empty dir = %v, %v", m, err)
	}
}

// TestRunOnceWithVerify is the wired-up flag: -verify -once on a
// tampered archive repairs it in the same invocation.
func TestRunOnceWithVerify(t *testing.T) {
	ts, _, _ := publisher(t, 1)
	dir := t.TempDir()
	if err := run([]string{"-url", ts.URL, "-out", dir, "-once"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "umbrella", toplist.Day(0).String()+".csv.gz")
	if err := os.WriteFile(path, []byte("rotted"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-url", ts.URL, "-out", dir, "-once", "-verify"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	store, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c := store.Verify(); len(c) != 0 {
		t.Fatalf("still corrupt after -verify run: %v", c)
	}
}

// TestCollectOnceFailsOverAcrossPeers: with several -peer URLs, a dead
// first peer is skipped (and backed off) and the gap is filled from
// the live one — the fleet peer-set machinery under the collector.
func TestCollectOnceFailsOverAcrossPeers(t *testing.T) {
	// Publisher misses umbrella day 1.
	arch := toplist.NewArchive(0, 1)
	arch.Put("alexa", 0, toplist.New([]string{"a.com"}))    //nolint:errcheck
	arch.Put("alexa", 1, toplist.New([]string{"a2.com"}))   //nolint:errcheck
	arch.Put("umbrella", 0, toplist.New([]string{"u.com"})) //nolint:errcheck
	ts := httptest.NewServer(listserv.NewServer(arch))
	defer ts.Close()

	peerArch := toplist.NewArchive(0, 1)
	peerArch.Put("umbrella", 1, toplist.New([]string{"u2.com"})) //nolint:errcheck
	peer := httptest.NewServer(archived.NewServer(peerArch))
	defer peer.Close()

	ps := peerSet(t, "http://127.0.0.1:1", peer.URL)
	dir := t.TempDir()
	n, err := collectOnce(context.Background(), listserv.NewClient(ts.URL), dir, ps, nil, quiet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // 3 from the publisher + 1 gap failed over to the live peer
		t.Fatalf("wrote %d, want 4", n)
	}
	store, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Get("umbrella", 1); got == nil || got.Name(1) != "u2.com" {
		t.Fatalf("peer-filled snapshot = %v", got)
	}
	if ps.Peers()[0].Failures() == 0 {
		t.Fatal("dead peer should have been marked unhealthy")
	}
}
