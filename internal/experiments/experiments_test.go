package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

var (
	sharedEnv  *Env
	sharedOnce sync.Once
)

func env(t *testing.T) *Env {
	t.Helper()
	sharedOnce.Do(func() {
		sharedEnv = NewEnv(core.TestScale())
	})
	return sharedEnv
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5",
		"fig1a", "fig1b", "fig1c", "fig2a", "fig2b", "fig2c",
		"fig3a", "fig3b", "fig3c", "fig4", "fig5",
		"fig6a", "fig6b", "fig6c",
		"fig7a", "fig7b", "fig7c", "fig7d", "fig8",
		"ttl", "ablation-volume", "aggregation", "similarity",
		"hygiene", "manipulation", "ablation-horizon",
	}
	ids := IDs()
	have := make(map[string]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Fatalf("experiment %q has no title", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run(context.Background(), env(t), "nope"); err == nil {
		t.Fatal("unknown id should fail")
	}
}

// TestAllExperimentsRun executes every registered experiment at test
// scale and sanity-checks the rendered output.
func TestAllExperimentsRun(t *testing.T) {
	e := env(t)
	for _, id := range IDs() {
		res, err := Run(context.Background(), e, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID != id {
			t.Fatalf("%s: result id %q", id, res.ID)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s: no rows", id)
		}
		if len(res.Header) == 0 {
			t.Fatalf("%s: no header", id)
		}
		out := res.Render()
		if !strings.Contains(out, id) {
			t.Fatalf("%s: render missing id", id)
		}
		if strings.Count(out, "\n") < 3 {
			t.Fatalf("%s: render too short:\n%s", id, out)
		}
	}
}

func TestRunAllOrder(t *testing.T) {
	// RunAll re-uses the shared env's study; results come back in ID
	// order.
	e := env(t)
	results, err := RunAll(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	ids := IDs()
	if len(results) != len(ids) {
		t.Fatalf("results %d", len(results))
	}
	for i, r := range results {
		if r.ID != ids[i] {
			t.Fatalf("order: %s at %d, want %s", r.ID, i, ids[i])
		}
	}

	// The pooled run must agree with a strictly serial run, driver by
	// driver: same IDs in the same order, same rendered artifacts.
	serial, err := RunAllWorkers(context.Background(), e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(results) {
		t.Fatalf("serial run returned %d results, pooled %d", len(serial), len(results))
	}
	for i := range serial {
		if serial[i].ID != results[i].ID {
			t.Fatalf("order diverges at %d: %s vs %s", i, serial[i].ID, results[i].ID)
		}
		if serial[i].Render() != results[i].Render() {
			t.Fatalf("%s: pooled and serial renders differ", serial[i].ID)
		}
	}
}

func TestRenderAlignment(t *testing.T) {
	r := &Result{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "longcolumn"},
		Rows:   [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:  []string{"a note"},
	}
	out := r.Render()
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "== x: demo ==") {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatal("note missing")
	}
	// Separator present.
	if !strings.Contains(out, "------") {
		t.Fatal("separator missing")
	}
}

func TestEnvStudyMemoised(t *testing.T) {
	e := env(t)
	s1, err := e.Study()
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := e.Study()
	if s1 != s2 {
		t.Fatal("study rebuilt")
	}
}
