package rng

import "math"

// LogNormal returns exp(mu + sigma*Z) with Z standard normal.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a Pareto(Type I) variate with scale xm > 0 and shape
// alpha > 0. The density is alpha*xm^alpha / x^(alpha+1) for x >= xm.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Poisson returns a Poisson variate with mean lambda >= 0. It uses
// Knuth's method for small lambda and a normal approximation (rounded,
// clamped at zero) for large lambda, which is sufficient for simulation
// workloads.
func (r *Rand) Poisson(lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		v := lambda + math.Sqrt(lambda)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
}

// Binomial returns a Binomial(n, p) variate. For small n it sums
// Bernoulli draws; for large n it uses a normal approximation, which is
// adequate for the traffic simulator.
func (r *Rand) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	v := mean + sd*r.NormFloat64()
	if v < 0 {
		return 0
	}
	if v > float64(n) {
		return n
	}
	return int(v + 0.5)
}

// Zipf samples integers in [1, n] with probability proportional to
// 1/k^s. Construct once with NewZipf; Next draws values.
type Zipf struct {
	r    *Rand
	n    int
	s    float64
	cdf  []float64 // cumulative normalised weights; len n
	norm float64
}

// NewZipf builds a bounded Zipf sampler over [1, n] with exponent s > 0.
// Construction is O(n); sampling is O(log n).
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n < 1 {
		panic("rng: NewZipf with n < 1")
	}
	z := &Zipf{r: r, n: n, s: s, cdf: make([]float64, n)}
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += math.Pow(float64(k), -s)
		z.cdf[k-1] = sum
	}
	z.norm = sum
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Next returns the next Zipf variate in [1, n].
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// ZipfWeight returns the unnormalised Zipf weight 1/rank^s; used to assign
// deterministic latent popularity by rank without sampling.
func ZipfWeight(rank int, s float64) float64 {
	return math.Pow(float64(rank), -s)
}

// WeightedChoice picks an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative and not all
// zero. O(n); use Alias for repeated sampling over large weight sets.
func (r *Rand) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Alias is Walker's alias method for O(1) sampling from a fixed discrete
// distribution.
type Alias struct {
	r     *Rand
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from non-negative weights (not all
// zero). Construction is O(n).
func NewAlias(r *Rand, weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("rng: NewAlias with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: NewAlias with negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("rng: NewAlias with all-zero weights")
	}
	a := &Alias{r: r, prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1
	}
	return a
}

// Next returns a sampled index.
func (a *Alias) Next() int {
	i := a.r.Intn(len(a.prob))
	if a.r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
