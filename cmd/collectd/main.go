// Command collectd is the longitudinal collector behind the paper's
// §4 dataset: pointed at a snapshot publisher (cmd/toplistd or any
// server speaking the same routes), it downloads every provider's
// daily CSV it has not stored yet and persists it into a durable
// toplist.DiskStore — gzip snapshots plus a manifest, the same layout
// `toplists -save` writes, so a collected archive reopens with
// toplist.OpenArchive and feeds experiments without any HTTP hop or
// resimulation. Run it with -interval to keep following a live
// publisher, or -once for a single catch-up pass.
//
// With -peer (repeatable), days the publisher has not published (gaps
// — the longitudinal reality the paper's §4 collection fought) are
// fetched from peer archive servers speaking the structured wire API
// (cmd/toplistd -serve-archive, cmd/mirrord), so a fleet of collectors
// can mirror each other's archives and converge on a complete dataset
// even when none of them observed every publication window. Peers ride
// the fleet peer-set machinery: health tracked, tried healthiest
// first, backed off with jitter when they fail — a dead peer never
// stalls a pass.
//
// With -verify, the existing archive is integrity-swept
// (toplist.DiskStore.Verify) before the first pass: corrupt snapshots
// are logged and recollected from the publisher or the peer, so a
// damaged archive heals instead of silently serving bad slots.
//
// With -metrics-addr, the collector serves the shared /metrics
// exposition (internal/serve) on a second listener: collection passes,
// snapshots stored, gaps observed, and gaps filled from the peer, so a
// collector fleet is observable the same way the publishers are.
//
// Usage:
//
//	collectd -url http://host:8080 -out archive [-once] [-interval 1h]
//	         [-peer http://other:8080 ...] [-verify] [-metrics-addr :9090]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fleet"
	"repro/internal/listserv"
	"repro/internal/serve"
	"repro/internal/toplist"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("collectd", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "publisher base URL")
	outDir := fs.String("out", "archive", "archive directory (toplist.DiskStore layout)")
	once := fs.Bool("once", false, "catch up and exit instead of following")
	interval := fs.Duration("interval", time.Hour, "poll interval in follow mode")
	var peerURLs peerList
	fs.Var(&peerURLs, "peer", "archive wire API base URL to fill publication gaps from (repeatable)")
	verify := fs.Bool("verify", false, "integrity-sweep the existing archive before collecting")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics on this address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(logw, "collectd: ", log.LstdFlags)

	var peers *fleet.PeerSet
	if len(peerURLs) > 0 {
		var perr error
		if peers, perr = fleet.NewPeerSet(peerURLs); perr != nil {
			return perr
		}
	}

	ctx, stop := serve.SignalContext(context.Background())
	defer stop()

	m := serve.NewMetrics()
	st := &stats{
		collected: m.Counter("collectd_snapshots_collected_total", "Snapshots fetched from the publisher and stored."),
		gaps:      m.Counter("collectd_gaps_observed_total", "Publisher 404s recorded as publication gaps."),
		gapFills:  m.Counter("collectd_gap_fills_total", "Gaps filled from the peer archive."),
	}
	passes := m.Counter("collectd_passes_total", "Collection passes completed.")
	failures := m.Counter("collectd_pass_failures_total", "Collection passes that failed.")

	var daemonErr chan error
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", m.Handler())
		d := &serve.Daemon{
			Addr:    *metricsAddr,
			Handler: serve.Chain(mux, m.Instrument(serve.RouteLabel), serve.Recover(logger, m)),
			Logger:  logger,
		}
		addr, err := d.Listen()
		if err != nil {
			return err
		}
		logger.Printf("metrics on http://%s/metrics", addr)
		daemonErr = make(chan error, 1)
		go func() { daemonErr <- d.Run(ctx) }()
	}

	var recollect map[toplist.Snapshot]bool
	if *verify {
		var err error
		if recollect, err = verifyArchive(*outDir, logger); err != nil {
			return err
		}
	}
	client := listserv.NewClient(*url, listserv.WithFormat(listserv.FormatZip))
	pass := func(ctx context.Context, recollect map[toplist.Snapshot]bool) error {
		_, err := collectOnce(ctx, client, *outDir, peers, recollect, logger, st)
		if err != nil {
			failures.Add(1)
			return err
		}
		passes.Add(1)
		return nil
	}

	err := pass(ctx, recollect)
	if err == nil && !*once {
		// A failed pass is not fatal in follow mode: the next tick
		// retries, like a cron-driven collector.
		serve.Poll(ctx, *interval, func(ctx context.Context) {
			if perr := pass(ctx, nil); perr != nil {
				logger.Printf("pass failed: %v", perr)
			}
		})
		logger.Print("stopping")
	}
	if daemonErr != nil {
		stop() // -once: release the metrics daemon too
		if derr := <-daemonErr; derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

// stats are the collector's domain counters on /metrics. A nil *stats
// (tests calling collectOnce directly) counts nothing.
type stats struct {
	collected, gaps, gapFills *serve.Counter
}

// peerList collects repeated -peer flags.
type peerList []string

func (p *peerList) String() string { return fmt.Sprint([]string(*p)) }

func (p *peerList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

// collectOnce downloads every published snapshot not yet on disk and
// returns how many it wrote. Because a live publisher streams days out
// of a still-running simulation, each pass picks up exactly the days
// published since the last one; the store's covered range extends as
// the publisher's index advances. Days the publisher 404s are recorded
// as gaps and — when a peer set is given — fetched from the healthiest
// peer holding them afterwards, so one collector's outage window heals
// from another's archive. Slots in recollect are refetched even though
// the store already has them: that is how a -verify sweep's corrupt
// findings get repaired (Put over a corrupt slot heals it).
func collectOnce(ctx context.Context, client *listserv.Client, outDir string, peers *fleet.PeerSet, recollect map[toplist.Snapshot]bool, logger *log.Logger, st *stats) (int, error) {
	idx, err := client.Index(ctx)
	if err != nil {
		return 0, err
	}
	first, err := toplist.ParseDay(idx.FirstDay)
	if err != nil {
		return 0, fmt.Errorf("bad index first_day: %w", err)
	}
	last, err := toplist.ParseDay(idx.LastDay)
	if err != nil {
		return 0, fmt.Errorf("bad index last_day: %w", err)
	}
	store, err := openStore(outDir, first, last)
	if err != nil {
		return 0, err
	}
	if err := store.Expect(idx.Providers...); err != nil {
		return 0, err
	}
	written := 0
	var gaps []toplist.Snapshot
	for _, provider := range idx.Providers {
		for d := first; d <= last; d++ {
			if store.Has(provider, d) && !recollect[toplist.Snapshot{Provider: provider, Day: d}] {
				continue // already collected
			}
			list, err := client.FetchDay(ctx, provider, d)
			if listserv.IsNotFound(err) {
				logger.Printf("gap: %s %s not published", provider, d)
				gaps = append(gaps, toplist.Snapshot{Provider: provider, Day: d})
				continue
			}
			if err != nil {
				return written, err
			}
			if err := store.Put(provider, d, list); err != nil {
				return written, err
			}
			written++
		}
	}
	if st != nil {
		st.collected.Add(int64(written))
		st.gaps.Add(int64(len(gaps)))
	}
	if len(gaps) > 0 && peers != nil {
		n, err := fillFromPeers(ctx, peers, store, gaps, logger)
		written += n
		if st != nil {
			st.gapFills.Add(int64(n))
		}
		if err != nil {
			// Peer trouble never fails the pass: the publisher's data
			// is safely stored, and the next pass retries the gaps.
			logger.Printf("peer fill: %v", err)
		}
	}
	if written > 0 {
		logger.Printf("collected %d new snapshots into %s", written, outDir)
	}
	return written, nil
}

// fillFromPeers fetches publication gaps from the peer set (archive
// servers speaking the structured wire API) and returns how many it
// stored. Peer manifests are revalidated once per pass — conditional
// GETs, 304 when nothing changed — so a peer that is itself still
// collecting contributes whatever it has so far, and each gap fails
// over to the healthiest peer holding it; gaps every peer is also
// missing stay gaps.
func fillFromPeers(ctx context.Context, peers *fleet.PeerSet, store *toplist.DiskStore, gaps []toplist.Snapshot, logger *log.Logger) (int, error) {
	peers.Revalidate(ctx)
	filled := 0
	for _, gap := range gaps {
		// A gap fill is a byte copy, not a decode+re-encode round trip:
		// the peer's compressed wire document goes straight to disk via
		// PutRaw, which validates it by decoding once before writing —
		// the only CSV parse in the whole replication path.
		raw, p, err := peers.FetchRaw(ctx, gap.Provider, gap.Day, "")
		if err != nil {
			return filled, err
		}
		if raw == nil {
			continue // every reachable peer has the same gap (or a corrupt copy)
		}
		if err := store.PutRaw(gap.Provider, gap.Day, raw.Data); err != nil {
			return filled, err
		}
		logger.Printf("gap filled from peer %s: %s %s", p.URL(), gap.Provider, gap.Day)
		filled++
	}
	return filled, nil
}

// verifyArchive runs DiskStore.Verify over an existing archive before
// the first collection pass: every stored snapshot is read back and
// checked, corrupt slots are logged up front, and the set is returned
// so the first pass recollects them (a Put over a corrupt slot repairs
// it). A directory with no archive yet is not an error; there is
// simply nothing to sweep.
func verifyArchive(dir string, logger *log.Logger) (map[toplist.Snapshot]bool, error) {
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	store, err := toplist.OpenArchive(dir)
	if err != nil {
		return nil, err
	}
	rep := store.VerifyReport()
	if rep.DecodeOnly > 0 {
		logger.Printf("verify: %d snapshots have no persisted hash (decode check only; a recollection rewrite upgrades them)", rep.DecodeOnly)
	}
	if len(rep.Corrupt) == 0 {
		logger.Printf("verify: %s clean (%d hash-verified, %d decode-only)", dir, rep.HashVerified, rep.DecodeOnly)
		return nil, nil
	}
	recollect := make(map[toplist.Snapshot]bool, len(rep.Corrupt))
	for _, s := range rep.Corrupt {
		logger.Printf("verify: corrupt snapshot %s %s", s.Provider, s.Day)
		recollect[s] = true
	}
	logger.Printf("verify: %d corrupt snapshots in %s (%d hash-verified, %d decode-only; will recollect)",
		len(rep.Corrupt), dir, rep.HashVerified, rep.DecodeOnly)
	return recollect, nil
}

// openStore opens the durable archive at dir, creating it on the first
// pass and extending its covered range as the publisher's index
// advances. The store is the same toplist.DiskStore the simulation
// engine can stream into directly, so the identical on-disk archive
// can also be produced without the HTTP hop by handing it to
// engine.Run — and either way it reopens with toplist.OpenArchive.
func openStore(dir string, first, last toplist.Day) (*toplist.DiskStore, error) {
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		if !os.IsNotExist(err) {
			return nil, err
		}
		return toplist.CreateDiskStore(dir, first, last)
	}
	store, err := toplist.OpenArchive(dir)
	if err != nil {
		return nil, err
	}
	if err := store.ExtendTo(last); err != nil {
		return nil, err
	}
	return store, nil
}
