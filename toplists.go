// Package toplists is the public API of the reproduction of "A Long
// Way to the Top: Significance, Structure, and Stability of Internet
// Top Lists" (IMC 2018).
//
// The library simulates the ecosystem the paper measures — a synthetic
// Internet population, daily Alexa/Umbrella/Majestic-style list
// generation, DNS/TLS/HTTP2 measurement infrastructure, and a RIPE
// Atlas-style probe fleet — and regenerates every table and figure of
// the paper's evaluation from it.
//
// # API v2
//
// The entry points are context-aware and option-driven, and every
// consumer reads snapshots through the Source interface rather than a
// concrete in-memory store, so a study can serve from a live
// simulation or from an archive reopened from disk:
//
//	ctx := context.Background()
//
//	// Simulate and keep the archive in memory.
//	study, err := toplists.Simulate(ctx, toplists.WithScale(toplists.TestScale()))
//	if err != nil { ... }
//	list := study.Archive.Get(toplists.Alexa, 0) // day-0 Alexa snapshot
//
//	// Simulate once, persisting every snapshot to a durable archive.
//	study, err = toplists.Simulate(ctx,
//		toplists.WithScale(toplists.TestScale()),
//		toplists.WithArchiveDir("joint"))
//
//	// Any later process: reopen the archive and rerun an experiment
//	// without resimulating.
//	src, err := toplists.OpenArchive("joint")
//	if err != nil { ... }
//	lab := toplists.NewLab(
//		toplists.WithScale(toplists.TestScale()),
//		toplists.WithSource(src))
//	res, err := lab.Run(ctx, "table5")
//	fmt.Print(res.Render())
//
//	// Or reopen it across the network from an archive server
//	// (`toplistd -serve-archive` or ArchiveHandler) — same Source,
//	// byte-identical results.
//	rsrc, err := toplists.OpenRemote(ctx, "http://archive-host:8080")
//
// Migration from v1:
//
//	v1                          v2
//	--------------------------  --------------------------------------------
//	Simulate(scale)             Simulate(ctx, WithScale(scale))
//	Stream(scale, sink)         Stream(ctx, sink, WithScale(scale))
//	NewLab(scale)               NewLab(WithScale(scale))
//	lab.Run(id)                 lab.Run(ctx, id)
//	lab.RunAll()                lab.RunAll(ctx)
//	scale.Workers = n           WithWorkers(n) (or still via the Scale)
//	(no equivalent)             WithArchiveDir(dir) — persist while simulating
//	(no equivalent)             WithSource(src) — serve from a loaded archive
//
// The v1 entry points survive as deprecated shims (SimulateScale,
// StreamScale, NewLabScale) for external callers migrating gradually;
// nothing inside this repository uses them (CI enforces that).
package toplists

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/archived"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/pack"
	"repro/internal/providers"
	"repro/internal/serve"
	"repro/internal/toplist"
)

// Scale bundles the simulation sizing knobs (population, list size,
// head subset, burn-in).
type Scale = core.Scale

// Study is a fully materialised simulation: world, model, archive, and
// the analysis/measurement layers. Study.Archive is a Source — an
// in-memory archive for simulated studies, or whatever WithSource
// provided for studies loaded from disk.
type Study = core.Study

// Experiment is a regenerated table or figure.
type Experiment = experiments.Result

// Provider names used throughout archives and reports.
const (
	Alexa    = providers.Alexa
	Umbrella = providers.Umbrella
	Majestic = providers.Majestic
)

// TestScale returns the fast scale used by tests and benchmarks.
func TestScale() Scale { return core.TestScale() }

// DefaultScale returns the EXPERIMENTS.md scale.
func DefaultScale() Scale { return core.DefaultScale() }

// SnapshotSink receives snapshots as the simulation engine produces
// them; see Stream.
type SnapshotSink = toplist.SnapshotSink

// Source is the read side of a snapshot archive: Get, First, Last,
// Days, Providers. Every analysis and server consumes this interface,
// so in-memory archives and durable on-disk stores are
// interchangeable.
type Source = toplist.Source

// DiskStore is a durable snapshot archive on disk: one gzip CSV per
// (provider, day) plus a JSON manifest recording the producing scale,
// the day range, and the expected provider set. It implements both
// SnapshotSink and Source.
type DiskStore = toplist.DiskStore

// SinkFunc adapts a function to a SnapshotSink.
type SinkFunc = engine.SinkFunc

// OpenArchive reopens the durable archive previously written at dir
// (by WithArchiveDir, CreateArchive, or cmd/collectd), ready to serve
// snapshots without resimulating.
func OpenArchive(dir string) (*DiskStore, error) { return toplist.OpenArchive(dir) }

// CreateArchive initialises an empty durable archive at dir spanning
// days [first, last] — the sink to hand to Stream when persisting a
// run shaped by something other than a Scale.
func CreateArchive(dir string, first, last toplist.Day) (*DiskStore, error) {
	return toplist.CreateDiskStore(dir, first, last)
}

// Remote is a Source served over HTTP by an archive server (see
// ArchiveHandler and `toplistd -serve-archive`): snapshots are fetched
// lazily with single-flight de-duplication, cached in a bounded LRU,
// and decode failures of corrupt payloads are memoized — the DiskStore
// read contract over the network.
type Remote = toplist.Remote

// RemoteOption configures OpenRemote (HTTP client, cache size, body
// cap).
type RemoteOption = toplist.RemoteOption

// OpenRemote opens the archive served at baseURL over the versioned
// archive wire API and returns it as a Source — the network
// counterpart of OpenArchive. Analyses and labs built over a Source
// run unchanged (and byte-identically) against the result:
//
//	src, err := toplists.OpenRemote(ctx, "http://archive-host:8080")
//	if err != nil { ... }
//	lab := toplists.NewLab(
//		toplists.WithScale(toplists.TestScale()),
//		toplists.WithSource(src))
//
// ctx governs the manifest fetch and becomes the base context for the
// Source-interface Get calls; per-call control uses Remote.GetContext.
func OpenRemote(ctx context.Context, baseURL string, opts ...RemoteOption) (*Remote, error) {
	return toplist.OpenRemote(ctx, baseURL, opts...)
}

// ArchiveHandler returns an http.Handler exposing src over the
// versioned read-only archive wire API (manifest, day and provider
// listings, gzipped snapshots) under toplist.RemoteAPIPrefix. Mount it
// at a server root and any OpenRemote pointed at that server reads the
// archive as a Source. `toplistd -serve-archive` mounts the same
// handler.
func ArchiveHandler(src Source) http.Handler {
	return archived.NewServer(src)
}

// SwappableSource is a Source holder whose backing Source can be
// replaced atomically while servers keep reading — the hot-reload
// primitive behind `toplistd`'s SIGHUP/-reload-poll handling. It
// implements Source (and passes through the raw fast-path contract
// when the current Source supports it), so it drops in anywhere a
// Source is accepted; handlers that resolve it through
// serve.Snapshot pin one generation per request.
type SwappableSource = serve.SwappableSource

// NewSwappableSource wraps src in an atomically swappable holder.
// Swap in a freshly opened archive after external repair or growth:
//
//	swap := toplists.NewSwappableSource(src)
//	handler := toplists.ArchiveHandler(swap)
//	...
//	next, err := toplists.OpenArchive(dir) // reopened, repaired, grown
//	if err != nil { ... }
//	swap.Swap(next)                        // in-flight requests unaffected
func NewSwappableSource(src Source) *SwappableSource {
	return serve.NewSwappableSource(src)
}

// Metrics is the serving core's metrics registry: per-route request
// counters, latency histograms, and operational gauges rendered in
// Prometheus text exposition format by its Handler. `toplistd` and
// `collectd -metrics-addr` expose one at /metrics.
type Metrics = serve.Metrics

// NewMetrics returns an empty metrics registry. Mount its Handler and
// wrap application handlers with its Instrument middleware:
//
//	m := toplists.NewMetrics()
//	mux.Handle("GET /metrics", m.Handler())
//	handler := toplists.ChainMiddleware(mux, m.Instrument(toplists.RouteLabel))
func NewMetrics() *Metrics { return serve.NewMetrics() }

// Middleware is a composable http.Handler wrapper; see
// ChainMiddleware.
type Middleware = serve.Middleware

// ChainMiddleware wraps h in mw, first middleware outermost — the
// composition `toplistd` runs in production (instrumentation, access
// log, load shedding, panic recovery, from Metrics.Instrument,
// AccessLog, LimitRequests, and RecoverPanics).
func ChainMiddleware(h http.Handler, mw ...Middleware) http.Handler {
	return serve.Chain(h, mw...)
}

// RouteLabel maps a request to a low-cardinality route label for
// Metrics.Instrument: list-serving and archive-API paths collapse to
// one label per route shape, everything else to "other".
func RouteLabel(r *http.Request) string { return serve.RouteLabel(r) }

// AccessLog logs one line per request (method, path, status, bytes,
// duration) to logger; a nil logger disables it at zero cost.
func AccessLog(logger *log.Logger) Middleware { return serve.AccessLog(logger) }

// LimitRequests caps concurrent in-flight requests at n; excess
// requests are shed immediately with 503 + Retry-After instead of
// queueing. n <= 0 disables the limiter. A non-nil m counts sheds.
func LimitRequests(n int, m *Metrics) Middleware { return serve.Limit(n, m) }

// RecoverPanics converts handler panics into 500s (except
// http.ErrAbortHandler, which propagates), logging the stack to
// logger and counting recoveries in m; both may be nil.
func RecoverPanics(logger *log.Logger, m *Metrics) Middleware {
	return serve.Recover(logger, m)
}

// Peer is one archive server in a replication fleet, with its health
// state: consecutive failures and the jittered-backoff deadline before
// it is tried again.
type Peer = fleet.Peer

// PeerSet is a fixed set of archive-server peers with per-peer health
// tracking, healthiest-first failover ordering, and hash-aware
// snapshot fetching — the multi-peer machinery behind cmd/mirrord and
// cmd/collectd's repeatable -peer flag.
type PeerSet = fleet.PeerSet

// PeerOption configures NewPeerSet (backoff window, wire-client
// options).
type PeerOption = fleet.PeerOption

// NewPeerSet builds a peer set over the given archive-server base URLs
// (duplicates dropped; at least one required).
func NewPeerSet(urls []string, opts ...PeerOption) (*PeerSet, error) {
	return fleet.NewPeerSet(urls, opts...)
}

// WithPeerBackoff sets the failing-peer backoff window: ~base after
// the first failure, doubling per consecutive failure up to max.
func WithPeerBackoff(base, max time.Duration) PeerOption {
	return fleet.WithPeerBackoff(base, max)
}

// WithPeerRemoteOptions passes opts to every wire client the peer set
// opens.
func WithPeerRemoteOptions(opts ...RemoteOption) PeerOption {
	return fleet.WithPeerRemoteOptions(opts...)
}

// Mirror continuously replicates a local archive from a PeerSet over
// the wire API: conditional manifest revalidation (304s in steady
// state), raw byte copies for missing slots, and healing of locally
// corrupt slots from the healthiest peer holding a hash-matching copy.
// cmd/mirrord wraps one in a daemon; embedders drive SyncOnce /
// VerifySweep / Loops directly.
type Mirror = fleet.Mirror

// MirrorOption configures NewMirror (logger, metrics registry).
type MirrorOption = fleet.MirrorOption

// NewMirror builds a mirror replicating store from peers.
func NewMirror(store *DiskStore, peers *PeerSet, opts ...MirrorOption) *Mirror {
	return fleet.NewMirror(store, peers, opts...)
}

// WithMirrorLogger sets the mirror's logger (default: silent).
func WithMirrorLogger(l *log.Logger) MirrorOption { return fleet.WithMirrorLogger(l) }

// WithMirrorMetrics registers the mirror's counters and per-peer lag
// gauges on reg (a shared /metrics registry) instead of a private one.
func WithMirrorMetrics(reg *Metrics) MirrorOption { return fleet.WithMirrorMetrics(reg) }

// BootstrapArchive opens the archive at dir, creating it from the
// first reachable peer's manifest (range, scale, expected providers)
// when none exists yet — how a brand-new mirror node joins a fleet.
func BootstrapArchive(ctx context.Context, dir string, peers *PeerSet) (*DiskStore, error) {
	return fleet.Bootstrap(ctx, dir, peers)
}

// Pack is a packed archive: every snapshot of a DiskStore-style
// archive in one file, read lazily through any io.ReaderAt — a local
// file (OpenPack) or a static file server via HTTP Range requests
// (OpenPackURL). It implements Source, so labs, analyses, and
// ArchiveHandler serve from it unchanged and byte-identically.
type Pack = pack.Pack

// PackOption configures pack readers (decode cache size, HTTP client,
// retry and chunking knobs for the Range backend).
type PackOption = pack.Option

// WritePack packs the archive src into a single file at path: gzip
// snapshot documents back to back, indexed by a trailing directory of
// per-slot offsets and content hashes. Stores that persist hashes
// (DiskStore) are packed without re-encoding, and the write refuses
// bytes that do not match their persisted hash. The file is written
// atomically (temp + rename).
func WritePack(path string, src Source) error { return pack.Write(path, src) }

// OpenPack opens the packed archive file at path as a Source. The
// directory is read eagerly (and checked against its hash); snapshots
// are read lazily and every blob is verified against its directory
// hash before it is served.
func OpenPack(path string, opts ...PackOption) (*Pack, error) {
	return pack.OpenFile(path, opts...)
}

// OpenPackURL opens a packed archive served by any static file server
// at url, reading it through HTTP Range requests — no archive-aware
// code on the remote side — with the retry discipline of OpenRemote.
func OpenPackURL(ctx context.Context, url string, opts ...PackOption) (*Pack, error) {
	return pack.OpenURL(ctx, url, opts...)
}

// Option configures the v2 entry points (Simulate, Stream, NewLab).
type Option func(*config)

type config struct {
	scale         Scale
	scaleSet      bool
	workers       int
	workersSet    bool
	archiveDir    string
	source        Source
	remoteWorkers []string
}

// WithScale selects the simulation scale (DefaultScale when omitted).
func WithScale(s Scale) Option {
	return func(c *config) {
		c.scale = s
		c.scaleSet = true
	}
}

// WithWorkers overrides the engine parallelism: 0 uses every core,
// 1 forces the serial reference path. The archive is bitwise identical
// either way; the knob only trades wall-clock.
func WithWorkers(n int) Option {
	return func(c *config) {
		c.workers = n
		c.workersSet = true
	}
}

// WithArchiveDir tees every generated snapshot into a durable
// DiskStore at dir (created fresh), so the simulation persists as it
// runs and a later OpenArchive(dir) can serve it without
// resimulating. The store's manifest records the scale name and the
// engine's expected provider set.
func WithArchiveDir(dir string) Option {
	return func(c *config) { c.archiveDir = dir }
}

// WithSource backs the study with an already-generated archive instead
// of simulating: the world and analysis layers are rebuilt
// deterministically from the scale (which must match the one that
// produced the source), and the engine is never invoked. Typical
// source: a DiskStore from OpenArchive.
func WithSource(src Source) Option {
	return func(c *config) { c.source = src }
}

// WithRemoteWorkers distributes the per-day simulation stepping across
// the shard workers (`shardd` daemons) at the given base URLs: a
// coordinator splits each day's per-domain computation into shards,
// farms them out over the /shard/v1 wire API, and merges the partial
// results — byte-identically to a local run, including across worker
// failures (dead workers' shards are reseeded on survivors mid-day).
// Composes with WithWorkers (which keeps tuning the local rank/emit
// pipeline) and WithArchiveDir; mutually exclusive with WithSource.
func WithRemoteWorkers(urls ...string) Option {
	return func(c *config) { c.remoteWorkers = append(c.remoteWorkers, urls...) }
}

func buildConfig(opts []Option) (config, error) {
	c := config{scale: DefaultScale()}
	for _, o := range opts {
		o(&c)
	}
	if c.workersSet {
		c.scale.Workers = c.workers
	}
	if c.source != nil && c.archiveDir != "" {
		return c, fmt.Errorf("toplists: WithSource and WithArchiveDir are mutually exclusive (nothing is generated from a source)")
	}
	if c.source != nil && len(c.remoteWorkers) > 0 {
		return c, fmt.Errorf("toplists: WithSource and WithRemoteWorkers are mutually exclusive (nothing is generated from a source)")
	}
	return c, nil
}

// newArchiveStore creates the durable store for WithArchiveDir, sized
// to the scale's day range, annotated with the scale name, and
// expecting the provider set the engine will emit — so the manifest's
// Complete/Missing contract mirrors the in-memory archive's.
func newArchiveStore(c config) (*DiskStore, error) {
	store, err := toplist.CreateDiskStore(c.archiveDir, 0, toplist.Day(c.scale.Population.Days-1))
	if err != nil {
		return nil, err
	}
	if err := store.SetScale(c.scale.Name); err != nil {
		return nil, err
	}
	expected := providers.DefaultOptions(c.scale.Population.Days, c.scale.ListSize).EnabledProviders()
	if err := store.Expect(expected...); err != nil {
		return nil, err
	}
	return store, nil
}

// Simulate builds the world and generates the daily snapshot archive.
// Generation runs on the concurrent engine (WithWorkers(1) forces the
// serial reference path; the output is identical); cancelling ctx
// stops the run at the next day boundary. With WithArchiveDir the run
// is additionally persisted to disk as it generates; with WithSource
// nothing is simulated at all — the study is rebuilt around the given
// archive and the engine is never invoked.
func Simulate(ctx context.Context, opts ...Option) (*Study, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if c.source != nil {
		return core.RunFrom(c.scale, c.source)
	}
	var tee toplist.SnapshotSink
	if c.archiveDir != "" {
		store, err := newArchiveStore(c)
		if err != nil {
			return nil, err
		}
		tee = store
	}
	if len(c.remoteWorkers) > 0 {
		return core.RunDistributed(ctx, c.scale, tee, c.remoteWorkers)
	}
	return core.RunContext(ctx, c.scale, tee)
}

// Stream builds the world and streams every daily snapshot into sink
// as it is generated — days ascending, providers in Alexa, Umbrella,
// Majestic order within a day — instead of materialising a Study.
// Consumers that want a day barrier can also implement
// EndDay(toplist.Day) error (see internal/engine.DaySink). Cancelling
// ctx stops the stream within one day boundary: no snapshot for any
// later day is delivered, and ctx.Err() is returned. WithArchiveDir
// tees the stream into a durable store as well.
func Stream(ctx context.Context, sink SnapshotSink, opts ...Option) error {
	c, err := buildConfig(opts)
	if err != nil {
		return err
	}
	if c.source != nil {
		return fmt.Errorf("toplists: Stream simulates; it cannot run from WithSource")
	}
	var eng *engine.Engine
	if len(c.remoteWorkers) > 0 {
		_, deng, coord, derr := core.NewDistributedEngine(c.scale, c.remoteWorkers)
		if derr != nil {
			return derr
		}
		defer coord.Close()
		eng = deng
	} else {
		_, leng, lerr := core.NewEngine(c.scale)
		if lerr != nil {
			return lerr
		}
		eng = leng
	}
	if c.archiveDir != "" {
		store, err := newArchiveStore(c)
		if err != nil {
			return err
		}
		sink = engine.Tee(sink, store)
	}
	return eng.Run(ctx, c.scale.Population.Days, sink)
}

// ExperimentIDs lists every reproducible table/figure ID.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitle returns the display title for an experiment ID.
func ExperimentTitle(id string) string { return experiments.Title(id) }

// Lab runs experiments against one shared simulation (or one shared
// loaded archive; see WithSource).
type Lab struct {
	env *experiments.Env
}

// NewLab prepares a lab from the given options. With WithSource the
// lab serves from the loaded archive and never simulates; otherwise
// the simulation runs on first use — persisted through WithArchiveDir
// when given — and is shared by all experiments.
func NewLab(opts ...Option) *Lab {
	c, err := buildConfig(opts)
	if err == nil && len(c.remoteWorkers) > 0 {
		// The lab's study materialises lazily, possibly long after the
		// caller's worker fleet is gone; run Simulate(WithRemoteWorkers)
		// eagerly and hand the study to the lab via WithSource instead.
		err = fmt.Errorf("toplists: NewLab does not support WithRemoteWorkers; Simulate first, then NewLab(WithSource(study.Archive))")
	}
	if err != nil {
		// Surface the configuration error through the lazy study,
		// where every Lab method can report it.
		return &Lab{env: experiments.NewEnvError(c.scale, err)}
	}
	if c.source != nil {
		return &Lab{env: experiments.NewEnvFrom(c.scale, c.source)}
	}
	env := experiments.NewEnv(c.scale)
	if c.archiveDir != "" {
		store, err := newArchiveStore(c)
		if err != nil {
			return &Lab{env: experiments.NewEnvError(c.scale, err)}
		}
		env.SetTee(store)
	}
	return &Lab{env: env}
}

// Study returns the lab's underlying study (materialising it if
// needed).
func (l *Lab) Study() (*Study, error) { return l.env.Study() }

// Run regenerates one table or figure. The context governs the shared
// study's one-time materialisation and is checked before the driver
// starts.
func (l *Lab) Run(ctx context.Context, id string) (*Experiment, error) {
	return experiments.Run(ctx, l.env, id)
}

// RunAll regenerates every table and figure, returned in ID order. The
// worker pool (sized to GOMAXPROCS) claims experiments
// longest-job-first, so the grid-heavy drivers that dominate the
// critical path start before the cheap table lookups.
func (l *Lab) RunAll(ctx context.Context) ([]*Experiment, error) {
	return experiments.RunAll(ctx, l.env)
}

// Deprecated v1 shims. These preserve the pre-v2 call shapes for
// external callers; inside this repository everything uses the
// context-aware option-driven API above (CI rejects in-repo shim use).

// SimulateScale is the v1 Simulate.
//
// Deprecated: use Simulate(ctx, WithScale(s)).
func SimulateScale(s Scale) (*Study, error) {
	return Simulate(context.Background(), WithScale(s))
}

// StreamScale is the v1 Stream.
//
// Deprecated: use Stream(ctx, sink, WithScale(s)).
func StreamScale(s Scale, sink SnapshotSink) error {
	return Stream(context.Background(), sink, WithScale(s))
}

// LegacyLab wraps a Lab with the v1 context-free method set.
//
// Deprecated: use NewLab(WithScale(s)) and the context-aware methods.
type LegacyLab struct{ lab *Lab }

// NewLabScale is the v1 NewLab.
//
// Deprecated: use NewLab(WithScale(s)).
func NewLabScale(s Scale) *LegacyLab {
	return &LegacyLab{lab: NewLab(WithScale(s))}
}

// Study returns the lab's underlying study.
//
// Deprecated: part of the v1 shim surface.
func (l *LegacyLab) Study() (*Study, error) { return l.lab.Study() }

// Run regenerates one table or figure.
//
// Deprecated: use Lab.Run(ctx, id).
func (l *LegacyLab) Run(id string) (*Experiment, error) {
	return l.lab.Run(context.Background(), id)
}

// RunAll regenerates every table and figure in ID order.
//
// Deprecated: use Lab.RunAll(ctx).
func (l *LegacyLab) RunAll() ([]*Experiment, error) {
	return l.lab.RunAll(context.Background())
}
