package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/population"
	"repro/internal/providers"
	"repro/internal/serve"
	"repro/internal/traffic"
)

// shardTestConfig is a deliberately tiny world: shard tests exercise
// protocol and failover machinery, not simulation scale.
func shardTestConfig() population.Config {
	c := population.TestConfig()
	c.Days = 10
	c.Sites = 2000
	c.BirthsPerDay = 20
	c.SmallASes = 50
	return c
}

var (
	testWorldOnce sync.Once
	testWorldMdl  *traffic.Model
)

func testModel(t testing.TB) *traffic.Model {
	t.Helper()
	testWorldOnce.Do(func() {
		w, err := population.Build(shardTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		testWorldMdl = traffic.NewModel(w)
	})
	return testWorldMdl
}

func testOpts() providers.Options {
	opts := providers.DefaultOptions(10, 50)
	opts.BurnInDays = 3
	return opts
}

func testJob(t testing.TB) Job {
	return JobFor(shardTestConfig(), testOpts(), testModel(t))
}

// newTestWorker boots a worker behind a real HTTP socket.
func newTestWorker(t *testing.T, opts ...WorkerOption) (*Worker, *httptest.Server) {
	t.Helper()
	w := NewWorker(opts...)
	mux := http.NewServeMux()
	w.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return w, srv
}

func openSession(t *testing.T, srv *httptest.Server, job Job, index, count int) OpenResponse {
	t.Helper()
	var req OpenRequest
	req.Job = job
	req.Shard.Index = index
	req.Shard.Count = count
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+APIPrefix+"/open", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open: status %d", resp.StatusCode)
	}
	var open OpenResponse
	if err := json.NewDecoder(resp.Body).Decode(&open); err != nil {
		t.Fatal(err)
	}
	return open
}

func postFrame(t *testing.T, url string, frame *Frame) *http.Response {
	t.Helper()
	b, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func zeroSeed(job Job, lo, hi, day int, started bool) *Frame {
	f := &Frame{Day: day, Lo: lo, Hi: hi, Started: started}
	for _, p := range job.Options().EnabledProviders() {
		f.Fields = append(f.Fields, Field{Provider: p, Values: make([]float64, hi-lo)})
	}
	return f
}

func stepHTTP(t *testing.T, srv *httptest.Server, session string, day int) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("%s%s/step/%s/%d", srv.URL, APIPrefix, session, day), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp, buf.Bytes()
}

func TestWorkerSessionLifecycle(t *testing.T) {
	m := testModel(t)
	job := testJob(t)
	_, srv := newTestWorker(t)

	open := openSession(t, srv, job, 0, 2)
	if open.Session == "" || open.Lo != 0 || open.Hi >= m.W.Len() {
		t.Fatalf("open: %+v", open)
	}

	// Stepping before seeding is a 409.
	resp, _ := stepHTTP(t, srv, open.Session, -job.BurnInDays)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unseeded step: status %d", resp.StatusCode)
	}

	seed := zeroSeed(job, open.Lo, open.Hi, -job.BurnInDays-1, false)
	sresp := postFrame(t, srv.URL+APIPrefix+"/seed/"+open.Session, seed)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusNoContent {
		t.Fatalf("seed: status %d", sresp.StatusCode)
	}

	// Step the whole run; frames must match an in-process stepper fed
	// identically.
	ref, err := providers.NewShardStepper(m, job.Options(), open.Lo, open.Hi)
	if err != nil {
		t.Fatal(err)
	}
	for d := -job.BurnInDays; d < 3; d++ {
		resp, body := stepHTTP(t, srv, open.Session, d)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step day %d: status %d", d, resp.StatusCode)
		}
		frame, err := Decode(body)
		if err != nil {
			t.Fatal(err)
		}
		ref.Step(d)
		for _, p := range ref.Providers() {
			if !providers.SameBits(frame.Field(p), ref.Partial(p)) {
				t.Fatalf("day %d provider %s differs from in-process stepper", d, p)
			}
		}
		// Idempotent replay: the same day again returns identical bytes.
		resp2, body2 := stepHTTP(t, srv, open.Session, d)
		if resp2.StatusCode != http.StatusOK || !bytes.Equal(body, body2) {
			t.Fatalf("day %d replay: status %d, identical %v", d, resp2.StatusCode, bytes.Equal(body, body2))
		}
	}

	// Out-of-order step is a 409.
	resp, _ = stepHTTP(t, srv, open.Session, 7)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("out-of-order step: status %d", resp.StatusCode)
	}

	// Close, then everything 404s.
	req, _ := http.NewRequest("DELETE", srv.URL+APIPrefix+"/session/"+open.Session, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("close: status %d", dresp.StatusCode)
	}
	resp, _ = stepHTTP(t, srv, open.Session, 3)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("step after close: status %d", resp.StatusCode)
	}
}

func TestWorkerRefusals(t *testing.T) {
	job := testJob(t)
	w, srv := newTestWorker(t)

	post := func(req OpenRequest) int {
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+APIPrefix+"/open", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	var req OpenRequest
	req.Job = job
	req.Shard.Count = 1

	bad := req
	bad.Job.Protocol = ProtocolVersion + 1
	if code := post(bad); code != http.StatusBadRequest {
		t.Fatalf("wrong protocol: status %d", code)
	}
	bad = req
	bad.Job.Model = "0000000000000000"
	if code := post(bad); code != http.StatusBadRequest {
		t.Fatalf("model mismatch: status %d", code)
	}
	bad = req
	bad.Shard.Index = 5
	bad.Shard.Count = 2
	if code := post(bad); code != http.StatusBadRequest {
		t.Fatalf("bad shard index: status %d", code)
	}
	bad = req
	bad.Job.UmbrellaAlpha = 40 // invalid options
	if code := post(bad); code != http.StatusBadRequest {
		t.Fatalf("invalid options: status %d", code)
	}

	// Malformed and wrong-range seed frames are rejected and counted.
	open := openSession(t, srv, job, 0, 2)
	resp, err := http.Post(srv.URL+APIPrefix+"/seed/"+open.Session, "application/octet-stream",
		bytes.NewReader([]byte("not a frame")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage seed: status %d", resp.StatusCode)
	}
	wrong := zeroSeed(job, open.Lo+1, open.Hi, -1, false)
	resp = postFrame(t, srv.URL+APIPrefix+"/seed/"+open.Session, wrong)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-range seed: status %d", resp.StatusCode)
	}
	if got := w.framesRejected.Value(); got != 2 {
		t.Fatalf("frames_rejected = %d, want 2", got)
	}
}

func TestWorkerManifestAndMetrics(t *testing.T) {
	job := testJob(t)
	reg := serve.NewMetrics()
	w, srv := newTestWorker(t, WithWorkerMetrics(reg), WithMaxWorlds(1))
	_ = w

	openSession(t, srv, job, 0, 1)
	resp, err := http.Get(srv.URL + APIPrefix + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var man ManifestResponse
	if err := json.NewDecoder(resp.Body).Decode(&man); err != nil {
		t.Fatal(err)
	}
	if man.Protocol != ProtocolVersion || man.Sessions != 1 {
		t.Fatalf("manifest: %+v", man)
	}
	if w.sessionsOpened.Value() != 1 {
		t.Fatalf("sessions_opened = %d", w.sessionsOpened.Value())
	}
}

func TestWorkerWorldCacheEviction(t *testing.T) {
	// maxWorlds=1 with two different populations: the second evicts the
	// first, yet sessions opened against the first keep working (they
	// hold the model pointer).
	w, srv := newTestWorker(t, WithMaxWorlds(1))

	jobA := testJob(t)
	openA := openSession(t, srv, jobA, 0, 1)

	cfgB := shardTestConfig()
	cfgB.Sites = 2500
	popB, err := population.Build(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	jobB := JobFor(cfgB, testOpts(), traffic.NewModel(popB))
	openSession(t, srv, jobB, 0, 1)

	if len(w.worlds) != 1 {
		t.Fatalf("world cache holds %d entries", len(w.worlds))
	}
	// Session A still steps fine.
	seed := zeroSeed(jobA, openA.Lo, openA.Hi, -jobA.BurnInDays-1, false)
	resp := postFrame(t, srv.URL+APIPrefix+"/seed/"+openA.Session, seed)
	resp.Body.Close()
	sresp, _ := stepHTTP(t, srv, openA.Session, -jobA.BurnInDays)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("step after eviction: status %d", sresp.StatusCode)
	}
}
