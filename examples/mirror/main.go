// Command mirror reproduces the paper's §4 dataset collection end to
// end over real HTTP: it publishes a simulated archive through the
// listserv server the way providers publish daily CSVs (zip-wrapped,
// with ETags), then drives a Mirror client that downloads every
// provider's snapshot day by day — with retries, conditional requests,
// and gap accounting — and verifies the rebuilt archive matches the
// original byte for byte.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/listserv"

	toplists "repro"
)

func main() {
	scale := toplists.TestScale()
	scale.Population.Days = 14 // two weeks of "collection"
	study, err := toplists.Simulate(context.Background(), toplists.WithScale(scale))
	if err != nil {
		log.Fatal(err)
	}
	source := study.Archive

	// Publish like a provider: day 0 visible at start, one more day
	// per publication tick.
	gate := listserv.NewGatekeeper(source, source.First())
	server := httptest.NewServer(listserv.NewServerAt(gate))
	defer server.Close()
	fmt.Printf("publisher on %s, %d providers x %d days\n",
		server.URL, len(source.Providers()), source.Days())

	client := listserv.NewClient(server.URL,
		listserv.WithFormat(listserv.FormatZip),
		listserv.WithHTTPClient(&http.Client{Timeout: 10 * time.Second}),
	)
	idx, err := client.Index(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: providers=%v first=%s\n\n", idx.Providers, idx.FirstDay)

	mirror := listserv.NewMirror(client, source.Providers())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Follow the live publisher: advance one day, collect the archive
	// so far (already-seen days are revalidated via ETag, costing only
	// 304s).
	for d := source.First(); d <= source.Last(); d++ {
		gate.Advance(d)
		if _, err := mirror.Collect(ctx, source.First(), d); err != nil {
			log.Fatal(err)
		}
	}
	got := mirror.Archive()

	mismatches := 0
	for _, p := range source.Providers() {
		for d := source.First(); d <= source.Last(); d++ {
			want := source.Get(p, d)
			have := got.Get(p, d)
			if have == nil || have.Len() != want.Len() || have.Name(1) != want.Name(1) {
				mismatches++
			}
		}
	}
	run, _ := listserv.LongestContinuousRun(got)
	fmt.Printf("collected %d days; longest continuous run %s..%s; mismatches=%d; gaps=%v\n",
		got.Days(), run.First, run.Last, mismatches, mirror.Gaps())
	if mismatches == 0 && got.Complete() {
		fmt.Println("rebuilt archive is identical to the published one ✔")
	}
}
