package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSpearmanRhoPerfectOrders(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := SpearmanRho(x, x); !almost(got, 1, 1e-12) {
		t.Errorf("identical: ρ = %v", got)
	}
	y := []float64{5, 4, 3, 2, 1}
	if got := SpearmanRho(x, y); !almost(got, -1, 1e-12) {
		t.Errorf("reversed: ρ = %v", got)
	}
}

func TestSpearmanRhoKnownValue(t *testing.T) {
	// Classic textbook example: ranks (1..10) vs a permutation;
	// ρ = 1 - 6Σd²/(n(n²-1)).
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	y := []float64{3, 1, 4, 2, 6, 5, 9, 7, 10, 8}
	var d2 float64
	for i := range x {
		d := x[i] - y[i]
		d2 += d * d
	}
	want := 1 - 6*d2/float64(10*(100-1))
	if got := SpearmanRho(x, y); !almost(got, want, 1e-12) {
		t.Errorf("ρ = %v, want %v", got, want)
	}
}

func TestSpearmanRhoTiesUseMidranks(t *testing.T) {
	// x has a tie; midranks keep ρ symmetric and bounded.
	x := []float64{1, 2, 2, 4}
	y := []float64{1, 2, 3, 4}
	got := SpearmanRho(x, y)
	if math.IsNaN(got) || got < 0.9 || got > 1 {
		t.Errorf("ρ with ties = %v, want close to 1", got)
	}
	if g2 := SpearmanRho(y, x); !almost(got, g2, 1e-12) {
		t.Errorf("asymmetric under ties: %v vs %v", got, g2)
	}
}

func TestSpearmanRhoDegenerate(t *testing.T) {
	if !math.IsNaN(SpearmanRho([]float64{1}, []float64{2})) {
		t.Error("n=1 should be NaN")
	}
	if !math.IsNaN(SpearmanRho([]float64{3, 3, 3}, []float64{1, 2, 3})) {
		t.Error("constant x should be NaN")
	}
}

func TestSpearmanAgreesWithKendallDirection(t *testing.T) {
	// Property: on random data, ρ and τ always share a sign (both are
	// monotone-association measures).
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 10 + r.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = 0.5*x[i] + r.NormFloat64() // positively related
		}
		rho, tau := SpearmanRho(x, y), KendallTau(x, y)
		if rho*tau < 0 && !almost(rho, 0, 0.05) && !almost(tau, 0, 0.05) {
			t.Fatalf("trial %d: sign disagreement ρ=%v τ=%v", trial, rho, tau)
		}
	}
}

func TestSpearmanFootrule(t *testing.T) {
	id := []int{1, 2, 3, 4}
	if got := SpearmanFootrule(id, id); got != 0 {
		t.Errorf("identity = %v", got)
	}
	rev := []int{4, 3, 2, 1}
	if got := SpearmanFootrule(id, rev); !almost(got, 1, 1e-12) {
		t.Errorf("reversal = %v, want 1 (maximal displacement)", got)
	}
	if !math.IsNaN(SpearmanFootrule([]int{1}, []int{1})) {
		t.Error("n=1 should be NaN")
	}
}

func TestRBOIdenticalAndDisjoint(t *testing.T) {
	a := []string{"g.com", "f.com", "n.com", "j.com"}
	for _, p := range []float64{0.5, 0.9, 0.98} {
		if got := RBO(a, a, p); !almost(got, 1, 1e-9) {
			t.Errorf("identical p=%v: %v", p, got)
		}
		b := []string{"w.com", "x.com", "y.com", "z.com"}
		if got := RBO(a, b, p); got != 0 {
			t.Errorf("disjoint p=%v: %v", p, got)
		}
	}
}

func TestRBOKnownSmallCase(t *testing.T) {
	// Hand-computed conjoint case, n=2, p=0.5:
	// S = [a b], T = [b a]. X_1 = 0, X_2 = 2.
	// sum1 = (0/1)p + (2/2)p² = 0.25
	// ext = (1-p)/p * sum1 + (X_2/2) p² = 1*0.25 + 1*0.25 = 0.5
	got := RBO([]string{"a", "b"}, []string{"b", "a"}, 0.5)
	if !almost(got, 0.5, 1e-12) {
		t.Errorf("RBO = %v, want 0.5", got)
	}
}

func TestRBOUnevenListsExtrapolate(t *testing.T) {
	// The shorter list being a strict prefix of the longer one is
	// perfect agreement under extrapolation.
	long := []string{"a", "b", "c", "d", "e", "f"}
	short := []string{"a", "b", "c"}
	got := RBO(short, long, 0.9)
	if !almost(got, 1, 1e-9) {
		t.Errorf("prefix RBO = %v, want 1", got)
	}
	// Symmetry in argument order.
	if g2 := RBO(long, short, 0.9); !almost(got, g2, 1e-12) {
		t.Errorf("asymmetric: %v vs %v", got, g2)
	}
}

func TestRBOHeadWeighting(t *testing.T) {
	// Agreement at the head must count more than agreement at the
	// tail: swap the top two vs swap the bottom two of a 10-list.
	base := make([]string, 10)
	for i := range base {
		base[i] = fmt.Sprintf("d%d.com", i)
	}
	headSwap := append([]string(nil), base...)
	headSwap[0], headSwap[1] = headSwap[1], headSwap[0]
	tailSwap := append([]string(nil), base...)
	tailSwap[8], tailSwap[9] = tailSwap[9], tailSwap[8]
	p := 0.9
	if h, tl := RBO(base, headSwap, p), RBO(base, tailSwap, p); h >= tl {
		t.Errorf("head swap %v should hurt more than tail swap %v", h, tl)
	}
}

func TestRBOBoundsProperty(t *testing.T) {
	// Property: RBO stays in [0,1] for arbitrary list pairs.
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed int64, na, nb uint8, pSel uint8) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func(n int) []string {
			out := make([]string, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, fmt.Sprintf("s%d.com", r.Intn(30)))
			}
			// de-dup preserving order (RBO assumes lists are sets)
			seen := map[string]bool{}
			ded := out[:0]
			for _, s := range out {
				if !seen[s] {
					seen[s] = true
					ded = append(ded, s)
				}
			}
			return ded
		}
		a, b := mk(int(na%40)+1), mk(int(nb%40)+1)
		p := []float64{0.5, 0.9, 0.98, 0.995}[pSel%4]
		v := RBO(a, b, p)
		return v >= 0 && v <= 1+1e-9
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRBOMonotoneInAgreementDepth(t *testing.T) {
	// Extending the shared prefix of two otherwise-disjoint lists must
	// not decrease RBO.
	p := 0.9
	prev := -1.0
	for shared := 0; shared <= 10; shared++ {
		a := make([]string, 10)
		b := make([]string, 10)
		for i := 0; i < 10; i++ {
			if i < shared {
				a[i] = fmt.Sprintf("common%d.com", i)
				b[i] = a[i]
			} else {
				a[i] = fmt.Sprintf("onlya%d.com", i)
				b[i] = fmt.Sprintf("onlyb%d.com", i)
			}
		}
		v := RBO(a, b, p)
		if v < prev-1e-12 {
			t.Fatalf("shared=%d: RBO %v < previous %v", shared, v, prev)
		}
		prev = v
	}
}

func TestRBOTopWeight(t *testing.T) {
	// Webber et al. report p=0.9 puts ~86% of the weight on the top
	// 10.
	if w := RBOTopWeight(0.9, 10); !almost(w, 0.8555854467473518, 1e-9) {
		t.Errorf("W(0.9,10) = %v", w)
	}
	if w := RBOTopWeight(0.9, 0); w != 0 {
		t.Errorf("W(_,0) = %v", w)
	}
	// Weight is monotone in depth and approaches 1.
	prev := 0.0
	for d := 1; d <= 200; d += 10 {
		w := RBOTopWeight(0.98, d)
		if w < prev-1e-12 {
			t.Fatalf("W not monotone at d=%d: %v < %v", d, w, prev)
		}
		prev = w
	}
	if prev < 0.9 {
		t.Errorf("W(0.98,191) = %v, want → 1", prev)
	}
}

func TestRBOEmptyLists(t *testing.T) {
	if got := RBO(nil, nil, 0.9); got != 1 {
		t.Errorf("both empty = %v, want 1 (vacuous agreement)", got)
	}
	if got := RBO(nil, []string{"a.com"}, 0.9); got != 0 {
		t.Errorf("one empty = %v, want 0", got)
	}
}

func TestRBOPanicsOnBadPersistence(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v: want panic", p)
				}
			}()
			RBO([]string{"a"}, []string{"a"}, p)
		}()
	}
}

func BenchmarkRBO(b *testing.B) {
	n := 1000
	s := make([]string, n)
	t := make([]string, n)
	r := rand.New(rand.NewSource(1))
	perm := r.Perm(n)
	for i := 0; i < n; i++ {
		s[i] = fmt.Sprintf("dom%d.com", i)
		t[i] = fmt.Sprintf("dom%d.com", perm[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RBO(s, t, 0.98)
	}
}

func BenchmarkSpearmanRho(b *testing.B) {
	n := 1000
	r := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i], y[i] = r.Float64(), r.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpearmanRho(x, y)
	}
}
