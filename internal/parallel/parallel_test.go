package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestShardPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{1, 2, 15, 16, 17, 1000} {
			if workers > n {
				continue
			}
			prev := 0
			for i := 0; i < workers; i++ {
				lo, hi := Shard(workers, n, i)
				if lo != prev {
					t.Fatalf("workers=%d n=%d shard %d: lo=%d want %d", workers, n, i, lo, prev)
				}
				if hi < lo {
					t.Fatalf("workers=%d n=%d shard %d: hi<lo", workers, n, i)
				}
				if d := hi - lo; d != n/workers && d != n/workers+1 {
					t.Fatalf("workers=%d n=%d shard %d: size %d", workers, n, i, d)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("workers=%d n=%d: shards end at %d", workers, n, prev)
			}
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 9} {
		const n = 257
		counts := make([]int32, n)
		For(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndOversubscribed(t *testing.T) {
	ran := false
	For(8, 0, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("For on empty range ran fn")
	}
	var total int32
	For(64, 3, func(lo, hi int) { atomic.AddInt32(&total, int32(hi-lo)) })
	if total != 3 {
		t.Fatalf("oversubscribed For covered %d items", total)
	}
}

func TestDo(t *testing.T) {
	Do() // no-op
	var total int32
	Do(
		func() { atomic.AddInt32(&total, 1) },
		func() { atomic.AddInt32(&total, 2) },
		func() { atomic.AddInt32(&total, 4) },
	)
	if total != 7 {
		t.Fatalf("Do total = %d", total)
	}
}

// TestGroupFirstErrorCancels: the first stage error fires the cancel
// hook exactly once and promptly unblocks stages waiting on it, and
// Wait reports that first error.
func TestGroupFirstErrorCancels(t *testing.T) {
	done := make(chan struct{})
	var cancels int32
	g := NewGroup(func() {
		atomic.AddInt32(&cancels, 1)
		close(done)
	})
	g.Go(func() error {
		<-done // unblocked only by the other stage's failure
		return nil
	})
	boom := errors.New("boom")
	g.Go(func() error { return boom })
	g.Do(func() error {
		<-done
		return errors.New("later, must not win")
	})
	if err := g.Wait(); err != boom {
		t.Fatalf("Wait() = %v, want the first error", err)
	}
	if n := atomic.LoadInt32(&cancels); n != 1 {
		t.Fatalf("cancel hook fired %d times", n)
	}
}

// TestGroupCleanRun: no errors, nil cancel hook allowed, Wait returns
// nil after every stage finishes.
func TestGroupCleanRun(t *testing.T) {
	g := NewGroup(nil)
	var total int32
	for i := 0; i < 4; i++ {
		g.Go(func() error { atomic.AddInt32(&total, 1); return nil })
	}
	g.Do(func() error { atomic.AddInt32(&total, 1); return nil })
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Fatalf("ran %d stages, want 5", total)
	}
}

// TestSplit pins the adaptive rank/step sizing: proportional to cost,
// both stages at least 1, rank capped by its useful parallelism, and
// the pair never exceeding the budget.
func TestSplit(t *testing.T) {
	cases := []struct {
		total, rankCap     int
		stepCost, rankCost float64
		wantStep, wantRank int
	}{
		// Unknown costs: quarter-of-the-day prior.
		{2, 3, 0, 0, 1, 1},
		{4, 3, 0, 0, 3, 1},
		{8, 3, 0, 0, 6, 2},
		// Rank negligible: step takes everything but one worker.
		{8, 3, 100, 1, 7, 1},
		// Balanced: proportional, but rank capped at rankCap.
		{8, 3, 1, 1, 5, 3},
		{4, 2, 1, 1, 2, 2},
		// Rank dominant: cap still binds.
		{8, 3, 1, 100, 5, 3},
		// Degenerate budgets.
		{1, 3, 5, 5, 1, 1},
		{0, 3, 5, 5, 1, 1},
		{2, 0, 1, 1, 1, 1},
	}
	for _, c := range cases {
		stepW, rankW := Split(c.total, c.rankCap, c.stepCost, c.rankCost)
		if stepW != c.wantStep || rankW != c.wantRank {
			t.Errorf("Split(%d, %d, %v, %v) = (%d, %d), want (%d, %d)",
				c.total, c.rankCap, c.stepCost, c.rankCost, stepW, rankW, c.wantStep, c.wantRank)
		}
		if c.total > 1 && stepW+rankW > c.total {
			t.Errorf("Split(%d, ...) oversubscribes: %d + %d", c.total, stepW, rankW)
		}
	}
}
