package providers

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestQuickselectProperty: for random score vectors and cut points, the
// selected prefix must contain exactly the k best elements.
func TestQuickselectProperty(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw)%n + 1
		r := rng.New(seed)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(r.Intn(40)) // force ties
		}
		ids := make([]uint32, n)
		for i := range ids {
			ids[i] = uint32(i)
		}
		less := func(a, b uint32) bool {
			if scores[a] != scores[b] {
				return scores[a] > scores[b]
			}
			return a < b
		}
		quickselect(ids, k, less)
		// Reference: full sort.
		ref := make([]uint32, n)
		for i := range ref {
			ref[i] = uint32(i)
		}
		sort.Slice(ref, func(i, j int) bool { return less(ref[i], ref[j]) })
		want := map[uint32]bool{}
		for _, id := range ref[:k] {
			want[id] = true
		}
		for _, id := range ids[:k] {
			if !want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTopIDsAllEqualScores: total tie-breaking by index keeps output
// deterministic.
func TestTopIDsAllEqualScores(t *testing.T) {
	scores := []float64{5, 5, 5, 5, 5}
	top := topIDs(scores, 3)
	for i, id := range top {
		if id != uint32(i) {
			t.Fatalf("tie break: %v", top)
		}
	}
}

// TestTopIDsSortedInput exercises the median-of-three pivot path on
// already-ordered data (the classic quickselect pathological case).
func TestTopIDsSortedInput(t *testing.T) {
	n := 5000
	asc := make([]float64, n)
	desc := make([]float64, n)
	for i := 0; i < n; i++ {
		asc[i] = float64(i + 1)
		desc[i] = float64(n - i)
	}
	topAsc := topIDs(asc, 100)
	if topAsc[0] != uint32(n-1) {
		t.Fatalf("ascending: best %d", topAsc[0])
	}
	topDesc := topIDs(desc, 100)
	if topDesc[0] != 0 {
		t.Fatalf("descending: best %d", topDesc[0])
	}
}
