// Command collectd is the longitudinal collector behind the paper's
// §4 dataset: pointed at a snapshot publisher (cmd/toplistd or any
// server speaking the same routes), it downloads every provider's
// daily CSV it has not stored yet and persists it into a durable
// toplist.DiskStore — gzip snapshots plus a manifest, the same layout
// `toplists -save` writes, so a collected archive reopens with
// toplist.OpenArchive and feeds experiments without any HTTP hop or
// resimulation. Run it with -interval to keep following a live
// publisher, or -once for a single catch-up pass.
//
// With -peer, days the publisher has not published (gaps — the
// longitudinal reality the paper's §4 collection fought) are fetched
// from a second archive server speaking the structured wire API
// (cmd/toplistd -serve-archive), so a fleet of collectors can mirror
// each other's archives and converge on a complete dataset even when
// none of them observed every publication window.
//
// Usage:
//
//	collectd -url http://host:8080 -out archive [-once] [-interval 1h]
//	         [-peer http://other:8080]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/listserv"
	"repro/internal/toplist"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("collectd", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "publisher base URL")
	outDir := fs.String("out", "archive", "archive directory (toplist.DiskStore layout)")
	once := fs.Bool("once", false, "catch up and exit instead of following")
	interval := fs.Duration("interval", time.Hour, "poll interval in follow mode")
	peer := fs.String("peer", "", "archive wire API base URL to fill publication gaps from")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(logw, "collectd: ", log.LstdFlags)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := listserv.NewClient(*url, listserv.WithFormat(listserv.FormatZip))

	if _, err := collectOnce(ctx, client, *outDir, *peer, logger); err != nil {
		return err
	}
	if *once {
		return nil
	}
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			logger.Print("stopping")
			return nil
		case <-t.C:
			if _, err := collectOnce(ctx, client, *outDir, *peer, logger); err != nil {
				// A failed pass is not fatal in follow mode: the next
				// tick retries, like a cron-driven collector.
				logger.Printf("pass failed: %v", err)
			}
		}
	}
}

// collectOnce downloads every published snapshot not yet on disk and
// returns how many it wrote. Because a live publisher streams days out
// of a still-running simulation, each pass picks up exactly the days
// published since the last one; the store's covered range extends as
// the publisher's index advances. Days the publisher 404s are recorded
// as gaps and — when peerURL names an archive wire API — fetched from
// the peer afterwards, so one collector's outage window heals from
// another's archive.
func collectOnce(ctx context.Context, client *listserv.Client, outDir, peerURL string, logger *log.Logger) (int, error) {
	idx, err := client.Index(ctx)
	if err != nil {
		return 0, err
	}
	first, err := toplist.ParseDay(idx.FirstDay)
	if err != nil {
		return 0, fmt.Errorf("bad index first_day: %w", err)
	}
	last, err := toplist.ParseDay(idx.LastDay)
	if err != nil {
		return 0, fmt.Errorf("bad index last_day: %w", err)
	}
	store, err := openStore(outDir, first, last)
	if err != nil {
		return 0, err
	}
	if err := store.Expect(idx.Providers...); err != nil {
		return 0, err
	}
	written := 0
	var gaps []toplist.Snapshot
	for _, provider := range idx.Providers {
		for d := first; d <= last; d++ {
			if store.Has(provider, d) {
				continue // already collected
			}
			list, err := client.FetchDay(ctx, provider, d)
			if listserv.IsNotFound(err) {
				logger.Printf("gap: %s %s not published", provider, d)
				gaps = append(gaps, toplist.Snapshot{Provider: provider, Day: d})
				continue
			}
			if err != nil {
				return written, err
			}
			if err := store.Put(provider, d, list); err != nil {
				return written, err
			}
			written++
		}
	}
	if len(gaps) > 0 && peerURL != "" {
		n, err := fillFromPeer(ctx, peerURL, store, gaps, logger)
		written += n
		if err != nil {
			// Peer trouble never fails the pass: the publisher's data
			// is safely stored, and the next pass retries the gaps.
			logger.Printf("peer %s: %v", peerURL, err)
		}
	}
	if written > 0 {
		logger.Printf("collected %d new snapshots into %s", written, outDir)
	}
	return written, nil
}

// fillFromPeer fetches publication gaps from a peer archive server
// (the structured wire API cmd/toplistd -serve-archive mounts) and
// returns how many it stored. The peer's manifest is fetched fresh per
// pass, so a peer that is itself still collecting contributes whatever
// it has so far; gaps the peer is also missing stay gaps.
func fillFromPeer(ctx context.Context, peerURL string, store *toplist.DiskStore, gaps []toplist.Snapshot, logger *log.Logger) (int, error) {
	peer, err := toplist.OpenRemote(ctx, peerURL)
	if err != nil {
		return 0, err
	}
	filled := 0
	for _, gap := range gaps {
		list, err := peer.GetContext(ctx, gap.Provider, gap.Day)
		if err != nil {
			return filled, err
		}
		if list == nil {
			continue // the peer has the same gap (or a corrupt copy)
		}
		if err := store.Put(gap.Provider, gap.Day, list); err != nil {
			return filled, err
		}
		logger.Printf("gap filled from peer: %s %s", gap.Provider, gap.Day)
		filled++
	}
	return filled, nil
}

// openStore opens the durable archive at dir, creating it on the first
// pass and extending its covered range as the publisher's index
// advances. The store is the same toplist.DiskStore the simulation
// engine can stream into directly, so the identical on-disk archive
// can also be produced without the HTTP hop by handing it to
// engine.Run — and either way it reopens with toplist.OpenArchive.
func openStore(dir string, first, last toplist.Day) (*toplist.DiskStore, error) {
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		if !os.IsNotExist(err) {
			return nil, err
		}
		return toplist.CreateDiskStore(dir, first, last)
	}
	store, err := toplist.OpenArchive(dir)
	if err != nil {
		return nil, err
	}
	if err := store.ExtendTo(last); err != nil {
		return nil, err
	}
	return store, nil
}
