package core

import (
	"testing"

	"repro/internal/providers"
	"repro/internal/stats"
	"repro/internal/toplist"
)

// TestSeedSweep runs tiny studies under several seeds and checks that
// the paper's headline orderings are not artifacts of one seed: churn
// ordering (Majestic < Umbrella < Alexa-post) and imperfect inter-list
// overlap must hold for every seed.
func TestSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	for _, seed := range []uint64{2, 3, 5, 8} {
		s := TestScale()
		s.Population.Seed = seed
		s.Population.Sites = 4000
		s.Population.BirthsPerDay = 25
		s.Population.Days = 22
		s.ListSize = 1200
		s.HeadSize = 50
		s.BurnInDays = 40
		st, err := Run(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		churn := func(p string, from, to int) float64 {
			var sum float64
			n := 0
			for d := from; d < to-1; d++ {
				cur := stats.NewIDSet(st.Archive.Get(p, toplist.Day(d)).IDs())
				next := stats.NewIDSet(st.Archive.Get(p, toplist.Day(d+1)).IDs())
				sum += float64(cur.RemovedCount(next))
				n++
			}
			return sum / float64(n)
		}
		change := st.ChangeDay()
		maj := churn(providers.Majestic, 2, st.Days())
		umb := churn(providers.Umbrella, 2, change)
		alexaPost := churn(providers.Alexa, change+1, st.Days())
		if !(maj < umb && umb < alexaPost) {
			t.Fatalf("seed %d: churn ordering broken: maj=%.1f umb=%.1f alexaPost=%.1f",
				seed, maj, umb, alexaPost)
		}
		a := stats.NewStringSet(st.Archive.Get(providers.Alexa, 5).BaseDomains().Names())
		m := stats.NewStringSet(st.Archive.Get(providers.Majestic, 5).BaseDomains().Names())
		overlap := float64(a.IntersectionCount(m)) / float64(a.Len())
		if overlap > 0.85 || overlap < 0.05 {
			t.Fatalf("seed %d: alexa∩majestic %.2f outside plausible band", seed, overlap)
		}
	}
}
