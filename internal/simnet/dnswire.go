package simnet

import (
	"errors"
	"fmt"
	"strings"
)

// DNS wire-format encoding (RFC 1035 subset). The measurement campaigns
// operate on parsed Response values, but the resolver substrate speaks
// the real message format so that archives of raw queries/answers can
// be produced and consumed — and so the substitution for live DNS
// measurement exercises genuine protocol code: header flags, label
// encoding, compression pointers, and the record types the paper
// measures (A, AAAA, CNAME, CAA).

// Record types used by the study.
const (
	TypeA     uint16 = 1
	TypeCNAME uint16 = 5
	TypeAAAA  uint16 = 28
	TypeCAA   uint16 = 257
)

// Class IN.
const ClassIN uint16 = 1

// Header flag bits (in the second 16-bit word).
const (
	flagQR uint16 = 1 << 15
	flagTC uint16 = 1 << 9
	flagRD uint16 = 1 << 8
	flagRA uint16 = 1 << 7
)

// Message is a DNS message (subset: one question, answer records).
type Message struct {
	ID        uint16
	Response  bool
	RCode     RCode
	Recursion bool
	// Truncated is the TC bit: set by a UDP server whose full answer
	// did not fit the datagram, telling the client to retry over TCP.
	Truncated bool
	Question  Question
	Answers   []ResourceRecord
}

// Question is the query section entry.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// ResourceRecord is one answer record.
type ResourceRecord struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	// Data holds the type-specific payload: 4 bytes for A, 16 for
	// AAAA, an encoded name for CNAME, flags+tag+value for CAA.
	Data []byte
}

// Errors returned by the decoder.
var (
	ErrShortMessage  = errors.New("simnet: short DNS message")
	ErrBadName       = errors.New("simnet: malformed DNS name")
	ErrPointerLoop   = errors.New("simnet: compression pointer loop")
	ErrTrailingJunk  = errors.New("simnet: trailing bytes after message")
	ErrNameTooLong   = errors.New("simnet: DNS name exceeds 255 octets")
	ErrLabelTooLong  = errors.New("simnet: DNS label exceeds 63 octets")
	ErrTooManyCounts = errors.New("simnet: unsupported section counts")
)

// Encode serialises the message. Answer owner names that repeat the
// question name are emitted as compression pointers to offset 12, as
// real servers do.
func (m *Message) Encode() ([]byte, error) {
	buf := make([]byte, 0, 64)
	put16 := func(v uint16) { buf = append(buf, byte(v>>8), byte(v)) }
	put16(m.ID)
	var flags uint16
	if m.Response {
		flags |= flagQR | flagRA
	}
	if m.Recursion {
		flags |= flagRD
	}
	if m.Truncated {
		flags |= flagTC
	}
	flags |= uint16(m.RCode) & 0xF
	put16(flags)
	put16(1) // QDCOUNT
	put16(uint16(len(m.Answers)))
	put16(0) // NSCOUNT
	put16(0) // ARCOUNT

	qname, err := encodeName(m.Question.Name)
	if err != nil {
		return nil, err
	}
	questionOffset := len(buf)
	buf = append(buf, qname...)
	put16(m.Question.Type)
	put16(m.Question.Class)

	for _, rr := range m.Answers {
		if strings.EqualFold(rr.Name, m.Question.Name) {
			// Compression pointer to the question name.
			buf = append(buf, 0xC0|byte(questionOffset>>8), byte(questionOffset))
		} else {
			n, err := encodeName(rr.Name)
			if err != nil {
				return nil, err
			}
			buf = append(buf, n...)
		}
		put16(rr.Type)
		put16(rr.Class)
		buf = append(buf, byte(rr.TTL>>24), byte(rr.TTL>>16), byte(rr.TTL>>8), byte(rr.TTL))
		put16(uint16(len(rr.Data)))
		buf = append(buf, rr.Data...)
	}
	return buf, nil
}

// DecodeMessage parses a wire-format message produced by Encode (or by
// a compatible implementation); it follows compression pointers.
func DecodeMessage(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrShortMessage
	}
	get16 := func(off int) uint16 { return uint16(b[off])<<8 | uint16(b[off+1]) }
	m := &Message{ID: get16(0)}
	flags := get16(2)
	m.Response = flags&flagQR != 0
	m.Recursion = flags&flagRD != 0
	m.Truncated = flags&flagTC != 0
	m.RCode = RCode(flags & 0xF)
	qd, an := get16(4), get16(6)
	if qd != 1 {
		return nil, ErrTooManyCounts
	}
	off := 12
	name, next, err := decodeName(b, off)
	if err != nil {
		return nil, err
	}
	off = next
	if off+4 > len(b) {
		return nil, ErrShortMessage
	}
	m.Question = Question{Name: name, Type: get16(off), Class: get16(off + 2)}
	off += 4
	for i := 0; i < int(an); i++ {
		name, next, err := decodeName(b, off)
		if err != nil {
			return nil, err
		}
		off = next
		if off+10 > len(b) {
			return nil, ErrShortMessage
		}
		rr := ResourceRecord{
			Name:  name,
			Type:  get16(off),
			Class: get16(off + 2),
			TTL: uint32(b[off+4])<<24 | uint32(b[off+5])<<16 |
				uint32(b[off+6])<<8 | uint32(b[off+7]),
		}
		rdlen := int(get16(off + 8))
		off += 10
		if off+rdlen > len(b) {
			return nil, ErrShortMessage
		}
		rr.Data = append([]byte(nil), b[off:off+rdlen]...)
		off += rdlen
		m.Answers = append(m.Answers, rr)
	}
	if off != len(b) {
		return nil, ErrTrailingJunk
	}
	return m, nil
}

// encodeName converts "www.example.com" to length-prefixed labels.
func encodeName(name string) ([]byte, error) {
	name = strings.TrimSuffix(strings.ToLower(name), ".")
	if name == "" {
		return []byte{0}, nil
	}
	if len(name) > 253 {
		return nil, ErrNameTooLong
	}
	var out []byte
	for _, label := range strings.Split(name, ".") {
		if label == "" {
			return nil, ErrBadName
		}
		if len(label) > 63 {
			return nil, ErrLabelTooLong
		}
		out = append(out, byte(len(label)))
		out = append(out, label...)
	}
	return append(out, 0), nil
}

// decodeName reads a (possibly compressed) name at off, returning the
// dotted name and the offset just past it in the original stream.
func decodeName(b []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	next := off
	hops := 0
	for {
		if off >= len(b) {
			return "", 0, ErrShortMessage
		}
		l := int(b[off])
		switch {
		case l == 0:
			if !jumped {
				next = off + 1
			}
			return strings.Join(labels, "."), next, nil
		case l&0xC0 == 0xC0:
			if off+1 >= len(b) {
				return "", 0, ErrShortMessage
			}
			ptr := (l&0x3F)<<8 | int(b[off+1])
			if !jumped {
				next = off + 2
			}
			jumped = true
			hops++
			if hops > 32 {
				return "", 0, ErrPointerLoop
			}
			off = ptr
		case l&0xC0 != 0:
			return "", 0, ErrBadName
		default:
			if off+1+l > len(b) {
				return "", 0, ErrShortMessage
			}
			labels = append(labels, string(b[off+1:off+1+l]))
			off += 1 + l
			if len(strings.Join(labels, ".")) > 253 {
				return "", 0, ErrNameTooLong
			}
		}
	}
}

// BuildAnswer converts a resolver Response into a wire message for the
// queried name/type, as the study's capture path would emit it.
func BuildAnswer(id uint16, name string, qtype uint16, resp Response) *Message {
	m := &Message{
		ID:        id,
		Response:  true,
		Recursion: true,
		RCode:     resp.RCode,
		Question:  Question{Name: name, Type: qtype, Class: ClassIN},
	}
	if resp.RCode != RCodeNoError {
		return m
	}
	owner := name
	for _, target := range resp.Chain {
		enc, err := encodeName(target)
		if err != nil {
			continue
		}
		m.Answers = append(m.Answers, ResourceRecord{
			Name: owner, Type: TypeCNAME, Class: ClassIN, TTL: resp.TTL, Data: enc,
		})
		owner = target
	}
	switch qtype {
	case TypeA:
		if resp.A != 0 {
			m.Answers = append(m.Answers, ResourceRecord{
				Name: owner, Type: TypeA, Class: ClassIN, TTL: resp.TTL,
				Data: []byte{byte(resp.A >> 24), byte(resp.A >> 16), byte(resp.A >> 8), byte(resp.A)},
			})
		}
	case TypeAAAA:
		if resp.AAAA {
			data := make([]byte, 16)
			data[0], data[1] = 0x20, 0x01 // synthetic 2001::/16 address
			data[15] = 0x01
			m.Answers = append(m.Answers, ResourceRecord{
				Name: owner, Type: TypeAAAA, Class: ClassIN, TTL: resp.TTL, Data: data,
			})
		}
	case TypeCAA:
		if resp.CAA {
			m.Answers = append(m.Answers, ResourceRecord{
				Name: owner, Type: TypeCAA, Class: ClassIN, TTL: resp.TTL,
				Data: EncodeCAA(0, "issue", "ca.example"),
			})
		}
	}
	return m
}

// EncodeCAA builds a CAA RDATA payload (RFC 6844): flags, tag length,
// tag, value.
func EncodeCAA(flags byte, tag, value string) []byte {
	out := []byte{flags, byte(len(tag))}
	out = append(out, tag...)
	return append(out, value...)
}

// DecodeCAA parses CAA RDATA.
func DecodeCAA(data []byte) (flags byte, tag, value string, err error) {
	if len(data) < 2 {
		return 0, "", "", ErrShortMessage
	}
	flags = data[0]
	tl := int(data[1])
	if 2+tl > len(data) {
		return 0, "", "", ErrShortMessage
	}
	return flags, string(data[2 : 2+tl]), string(data[2+tl:]), nil
}

// String renders a record type mnemonic.
func TypeString(t uint16) string {
	switch t {
	case TypeA:
		return "A"
	case TypeAAAA:
		return "AAAA"
	case TypeCNAME:
		return "CNAME"
	case TypeCAA:
		return "CAA"
	default:
		return fmt.Sprintf("TYPE%d", t)
	}
}
