package simnet

import "testing"

func TestParseHSTS(t *testing.T) {
	for _, tc := range []struct {
		header  string
		enabled bool
		maxAge  int
		subs    bool
	}{
		{"max-age=31536000", true, 31536000, false},
		{"max-age=31536000; includeSubDomains", true, 31536000, true},
		{"max-age=31536000; includeSubDomains; preload", true, 31536000, true},
		{"MAX-AGE=100", true, 100, false},
		{`max-age="600"`, true, 600, false},
		{"max-age=0", false, 0, false}, // valid header, but not "enabled"
		{"includeSubDomains", false, 0, true},
		{"", false, 0, false},
		{"max-age=abc", false, 0, false},
		{"max-age=-5", false, 0, false},
		{"max-age=10; max-age=20", false, 0, false}, // duplicate: invalid
		{"max-age=10; unknown-directive=x", true, 10, false},
		{" max-age = 500 ; includeSubDomains ", true, 500, true},
	} {
		p := ParseHSTS(tc.header)
		if p.Enabled() != tc.enabled {
			t.Fatalf("ParseHSTS(%q).Enabled() = %v, want %v", tc.header, p.Enabled(), tc.enabled)
		}
		if tc.enabled && p.MaxAge != tc.maxAge {
			t.Fatalf("ParseHSTS(%q).MaxAge = %d, want %d", tc.header, p.MaxAge, tc.maxAge)
		}
		if p.Valid && p.IncludeSubDomains != tc.subs {
			t.Fatalf("ParseHSTS(%q).IncludeSubDomains = %v", tc.header, p.IncludeSubDomains)
		}
	}
}

func TestParseHSTSMaxAgeZeroIsValid(t *testing.T) {
	// max-age=0 is a valid header (it *revokes* HSTS) but does not
	// count as HSTS-enabled under the paper's criterion.
	p := ParseHSTS("max-age=0")
	if !p.Valid {
		t.Fatal("max-age=0 should parse as valid")
	}
	if p.Enabled() {
		t.Fatal("max-age=0 must not count as enabled")
	}
}

func TestProbeResultUsesRawHeader(t *testing.T) {
	r := ProbeResult{TLS: true, HSTSHeader: "max-age=300"}
	if !r.HSTSEnabled() {
		t.Fatal("raw header should enable")
	}
	r.HSTSHeader = "max-age=banana"
	if r.HSTSEnabled() {
		t.Fatal("bad raw header should disable even with MaxAge set")
	}
}
