// Packed: publish an archive as one static file. Simulate the
// ecosystem once persisting to a durable archive, pack it into a
// single file, then read that file back two ways — from local disk,
// and over HTTP Range requests from a plain static file server that
// knows nothing about archives — and rerun an experiment against
// each. No resimulation, no unpacking, byte-identical output.
//
// This is the distribution story: `toplists pack` turns the JOINT
// dataset into something any object store or web host can serve, and
// toplists.OpenPackURL turns any URL of it back into a full
// toplists.Source.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()
	scale := toplists.TestScale()
	scale.Population.Days = 21
	scale.BurnInDays = 30

	work := filepath.Join(os.TempDir(), fmt.Sprintf("toplists-packed-%d", os.Getpid()))
	defer os.RemoveAll(work)
	dir := filepath.Join(work, "joint")
	packPath := filepath.Join(work, "joint.pack")

	// Pass 1: simulate, teeing every snapshot into the durable store,
	// and run the experiment for the reference output.
	simLab := toplists.NewLab(
		toplists.WithScale(scale),
		toplists.WithArchiveDir(dir))
	want, err := simLab.Run(ctx, "table5")
	if err != nil {
		log.Fatal(err)
	}

	// Pack the archive into one file — what `toplists pack` does.
	store, err := toplists.OpenArchive(dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := toplists.WritePack(packPath, store); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(packPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packed %d providers x %d days into %s (%d bytes)\n",
		len(store.Providers()), store.Days(), filepath.Base(packPath), info.Size())

	// Read path 1: the packed file from local disk.
	local, err := toplists.OpenPack(packPath)
	if err != nil {
		log.Fatal(err)
	}
	defer local.Close()
	localRes, err := toplists.NewLab(
		toplists.WithScale(scale),
		toplists.WithSource(local)).Run(ctx, "table5")
	if err != nil {
		log.Fatal(err)
	}

	// Read path 2: the same file behind a dumb static file server.
	// http.FileServer just answers byte-range requests; every
	// archive-aware thing happens client-side.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: http.FileServer(http.Dir(work))}
	go srv.Serve(ln) //nolint:errcheck // closed via Shutdown below
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx) //nolint:errcheck
	}()
	url := "http://" + ln.Addr().String() + "/joint.pack"
	fmt.Printf("serving the pack as a static file at %s\n", url)

	start := time.Now()
	remote, err := toplists.OpenPackURL(ctx, url)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened remote pack: scale %q, %d providers x %d days, %d snapshots\n",
		remote.Scale(), len(remote.Providers()), remote.Days(), remote.Snapshots())
	remoteRes, err := toplists.NewLab(
		toplists.WithScale(scale),
		toplists.WithSource(remote)).Run(ctx, "table5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(remoteRes.Render())
	fmt.Printf("\nrange-read rerun took %v\n", time.Since(start).Round(time.Millisecond))

	if want.Render() == localRes.Render() && want.Render() == remoteRes.Render() {
		fmt.Println("outputs are byte-identical: one static file is a full archive backend.")
	} else {
		log.Fatal("outputs differ — the pack backend is broken")
	}
}
