// Package toplist defines the list data model shared by the simulator
// and the analyses: ranked lists, daily snapshots, multi-provider
// archives, CSV encoding, and the simulated calendar. It owns both
// sides of the snapshot contract — SnapshotSink (write) and Source
// (read) — and its three Source backends: the in-memory Archive, the
// durable on-disk DiskStore (OpenArchive), and the HTTP-backed Remote
// (OpenRemote, with the archive wire protocol it shares with
// internal/archived).
package toplist

import "time"

// Epoch is day 0 of the simulated JOINT period. The paper's JOINT
// dataset starts 2017-06-06 (a Tuesday); we anchor to the same date so
// weekday semantics line up with the paper's figures.
var Epoch = time.Date(2017, time.June, 6, 0, 0, 0, 0, time.UTC)

// Day indexes a simulated day, counted from Epoch.
type Day int

// Date returns the calendar date of d.
func (d Day) Date() time.Time { return Epoch.AddDate(0, 0, int(d)) }

// Weekday returns the calendar weekday of d.
func (d Day) Weekday() time.Weekday { return d.Date().Weekday() }

// IsWeekend reports whether d falls on a Saturday or Sunday. The paper's
// data indicates prevailing Saturday/Sunday weekends (§6.2 footnote).
func (d Day) IsWeekend() bool {
	wd := d.Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// String formats d as its ISO date.
func (d Day) String() string { return d.Date().Format("2006-01-02") }

// ParseDay parses an ISO date ("2017-06-06") into a Day relative to
// Epoch. Dates before Epoch yield negative days, which callers treat as
// out of archive range.
func ParseDay(s string) (Day, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, err
	}
	return Day(t.Sub(Epoch) / (24 * time.Hour)), nil
}
