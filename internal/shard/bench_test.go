package shard

import (
	"fmt"
	"testing"
)

// BenchmarkShardMerge measures the coordinator-side cost of one merged
// day as a function of shard count: decoding every shard's frame
// (hash verification included) and copying the values into the
// full-length destination — the distributed path's per-day overhead on
// top of the workers' compute. The values are synthetic and fixed, so
// the work is identical across shard counts; what varies is framing
// overhead per shard. days/sec here is merge throughput alone, not
// end-to-end generation.
func BenchmarkShardMerge(b *testing.B) {
	const n = 120_000
	providerNames := []string{"alexa", "umbrella", "majestic"}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			// Pre-encode each shard's frame once; the benchmark body is
			// the coordinator's steady-state work (decode + merge), not
			// the worker's encode.
			var frames [][]byte
			for i := 0; i < shards; i++ {
				lo, hi := shardBounds(shards, n, i)
				f := &Frame{Day: 1, Lo: lo, Hi: hi, Started: true}
				for _, p := range providerNames {
					vals := make([]float64, hi-lo)
					for j := range vals {
						vals[j] = float64(lo+j) * 1.000001
					}
					f.Fields = append(f.Fields, Field{Provider: p, Values: vals})
				}
				enc, err := f.Encode()
				if err != nil {
					b.Fatal(err)
				}
				frames = append(frames, enc)
			}
			dst := map[string][]float64{}
			for _, p := range providerNames {
				dst[p] = make([]float64, n)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, enc := range frames {
					f, err := Decode(enc)
					if err != nil {
						b.Fatal(err)
					}
					for _, fd := range f.Fields {
						copy(dst[fd.Provider][f.Lo:f.Hi], fd.Values)
					}
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "days/sec")
		})
	}
}
