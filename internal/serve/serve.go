// Package serve is the shared serving core under every HTTP surface
// of the reproduction: the provider-style CSV publication routes
// (internal/listserv), the archive wire API (internal/archived), and
// the daemons composing them (cmd/toplistd, cmd/collectd).
//
// It owns three things the surfaces previously each reinvented or
// lacked:
//
//   - SwappableSource: an atomically hot-swappable toplist.Source
//     holder, so a daemon can reload a regrown archive or a repacked
//     file without dropping in-flight requests. Handlers take a
//     per-request snapshot (Snapshot), so one request observes one
//     archive even while operators swap underneath it.
//
//   - A composable middleware chain (Chain, Metrics.Instrument,
//     AccessLog, Limit, Recover) applied uniformly to every mux:
//     per-route request counters, latency and response-size
//     histograms, an in-flight gauge and shed counter exposed in
//     Prometheus text format at /metrics (Metrics.Handler — no
//     dependencies, hand-rolled exposition), access logging, panic
//     recovery, and a concurrency limiter that sheds load with 503 +
//     Retry-After once the in-flight bound is hit.
//
//   - Daemon: the shared listener / graceful-shutdown / drain
//     lifecycle (context cancel → Shutdown with deadline → hard
//     close) plus the signal plumbing (SignalContext, Reloader, Poll)
//     both daemons previously wired by hand.
package serve

import (
	"sync/atomic"

	"repro/internal/toplist"
)

// SwappableSource holds the currently-served toplist.Source behind an
// atomic pointer, so operators can replace it (SIGHUP, a reload
// watcher, an admin action) while requests are in flight. It
// implements toplist.Source and toplist.RawSource by delegating to the
// current holder per call; handlers that touch the source more than
// once per request should resolve Snapshot once instead, so the whole
// request is answered from one archive generation.
//
// The old source is not closed on swap — in-flight requests may still
// be reading from it. Backends whose resources need reclaiming (a
// pack's file handle) are released when the last reference is dropped;
// swaps are operator-paced, so at most a handful of generations are
// ever live at once.
type SwappableSource struct {
	cur atomic.Pointer[sourceBox]
}

// sourceBox gives the interface value a stable concrete type for
// atomic.Pointer.
type sourceBox struct {
	src toplist.Source
}

// NewSwappableSource starts the holder serving src.
func NewSwappableSource(src toplist.Source) *SwappableSource {
	s := &SwappableSource{}
	s.cur.Store(&sourceBox{src: src})
	return s
}

// Load returns the currently-served source.
func (s *SwappableSource) Load() toplist.Source { return s.cur.Load().src }

// Swap atomically replaces the served source and returns the previous
// one. Requests that already resolved a Snapshot keep reading the
// previous source; new requests see next.
func (s *SwappableSource) Swap(next toplist.Source) (prev toplist.Source) {
	return s.cur.Swap(&sourceBox{src: next}).src
}

// Snapshot resolves the source a request should be served from: the
// current holder of a SwappableSource, or src itself when it is not
// swappable. Handlers call it once at the top of a request so every
// read within the request hits one archive generation — the
// wire-manifest day range, the blob bytes, and the ETag all agree even
// when a swap lands mid-request.
func Snapshot(src toplist.Source) toplist.Source {
	if sw, ok := src.(*SwappableSource); ok {
		return sw.Load()
	}
	return src
}

// Get implements toplist.Source.
func (s *SwappableSource) Get(provider string, day toplist.Day) *toplist.List {
	return s.Load().Get(provider, day)
}

// First implements toplist.Source.
func (s *SwappableSource) First() toplist.Day { return s.Load().First() }

// Last implements toplist.Source.
func (s *SwappableSource) Last() toplist.Day { return s.Load().Last() }

// Days implements toplist.Source.
func (s *SwappableSource) Days() int { return s.Load().Days() }

// Providers implements toplist.Source.
func (s *SwappableSource) Providers() []string { return s.Load().Providers() }

// RawHash implements toplist.RawSource when the current source does;
// otherwise it reports "" ("no raw bytes"), routing readers to the
// decode path — the contract RawSource already defines for hashless
// slots.
func (s *SwappableSource) RawHash(provider string, day toplist.Day) string {
	if rs, ok := s.Load().(toplist.RawSource); ok {
		return rs.RawHash(provider, day)
	}
	return ""
}

// GetRaw implements toplist.RawSource; for a non-raw current source it
// returns (nil, nil) — "fall back to the decode path".
func (s *SwappableSource) GetRaw(provider string, day toplist.Day) (*toplist.RawSnapshot, error) {
	if rs, ok := s.Load().(toplist.RawSource); ok {
		return rs.GetRaw(provider, day)
	}
	return nil, nil
}

// Scale passes through the producing-scale name stores persist in
// their manifests (DiskStore, Pack), so a wire manifest served through
// a swappable holder still reports it.
func (s *SwappableSource) Scale() string {
	if sc, ok := s.Load().(interface{ Scale() string }); ok {
		return sc.Scale()
	}
	return ""
}
