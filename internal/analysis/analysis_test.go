package analysis

import (
	"testing"

	"repro/internal/population"
	"repro/internal/providers"
	"repro/internal/stats"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

var cachedCtx *Context

// ctx builds one shared world+archive at test scale.
func ctx(t *testing.T) *Context {
	t.Helper()
	if cachedCtx != nil {
		return cachedCtx
	}
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewModel(w)
	opts := providers.DefaultOptions(w.Cfg.Days, 3000)
	opts.BurnInDays = 60
	g, err := providers.NewGenerator(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := g.Run(w.Cfg.Days)
	if err != nil {
		t.Fatal(err)
	}
	cachedCtx = NewContext(w, arch)
	return cachedCtx
}

const headSize = 100

func TestTable2Shapes(t *testing.T) {
	c := ctx(t)
	alexa := c.Table2(providers.Alexa, 0)
	umb := c.Table2(providers.Umbrella, 0)
	maj := c.Table2(providers.Majestic, 0)

	// Umbrella: substantial subdomain share and invalid TLDs (Table 2).
	if umb.SD1 < 0.05 {
		t.Fatalf("umbrella SD1 %.3f too low", umb.SD1)
	}
	if umb.InvalidNameMean == 0 || umb.InvalidTLDMean == 0 {
		t.Fatal("umbrella must carry invalid TLDs")
	}
	if umb.SDM < 20 {
		t.Fatalf("umbrella SDM %d; paper observed 33", umb.SDM)
	}
	// Web lists: almost all base domains, no invalid TLDs, shallow.
	for _, row := range []Table2Row{alexa, maj} {
		if row.InvalidNameMean != 0 {
			t.Fatalf("%s invalid names %.1f", row.Provider, row.InvalidNameMean)
		}
		if row.SD1 > 0.2 {
			t.Fatalf("%s SD1 %.3f too high", row.Provider, row.SD1)
		}
		if row.SDM > 4 {
			t.Fatalf("%s SDM %d too deep", row.Provider, row.SDM)
		}
	}
	// Base-domain counts: Umbrella far fewer unique bases than size.
	if umb.BDMean >= alexa.BDMean {
		t.Fatalf("umbrella bases %.0f should be below alexa %.0f", umb.BDMean, alexa.BDMean)
	}
	// Churn ordering µ∆: majestic < alexa-mixed, umbrella in between
	// (alexa's archive average mixes pre and post regimes, so only
	// check majestic is smallest).
	if !(maj.Delta < umb.Delta && maj.Delta < alexa.Delta) {
		t.Fatalf("majestic µ∆ %.1f not smallest (alexa %.1f, umbrella %.1f)",
			maj.Delta, alexa.Delta, umb.Delta)
	}
	// µNEW below µ∆ (only a fraction of changers are first-timers).
	for _, row := range []Table2Row{alexa, umb, maj} {
		if row.New > row.Delta && row.Delta > 0 {
			t.Fatalf("%s µNEW %.1f exceeds µ∆ %.1f", row.Provider, row.New, row.Delta)
		}
	}
	// TLD coverage sane.
	if alexa.TLDMean < 10 || alexa.TLDStd < 0 {
		t.Fatalf("alexa TLD coverage %v ± %v", alexa.TLDMean, alexa.TLDStd)
	}
}

func TestTable2HeadVsFull(t *testing.T) {
	c := ctx(t)
	full := c.Table2(providers.Umbrella, 0)
	head := c.Table2(providers.Umbrella, headSize)
	if head.TLDMean >= full.TLDMean {
		t.Fatal("head covers fewer TLDs than the full list")
	}
	if head.Delta >= full.Delta {
		t.Fatal("head churns less than the full list in absolute terms")
	}
}

func TestIntersectionSeries(t *testing.T) {
	c := ctx(t)
	series := c.IntersectionSeries(providers.Alexa, providers.Umbrella, providers.Majestic, 0)
	if len(series) != c.Arch.Days() {
		t.Fatalf("series length %d", len(series))
	}
	for _, p := range series {
		if p.AllThree > p.AlexaUmbrella || p.AllThree > p.AlexaMajestic ||
			p.AllThree > p.UmbrellaMajestic {
			t.Fatal("triple intersection exceeds a pairwise one")
		}
		if p.AlexaUmbrella > p.AlexaBases || p.AlexaMajestic > p.MajBase {
			t.Fatal("intersection exceeds set size")
		}
	}
	// Core finding (§5.2): intersections well below list sizes.
	mid := series[len(series)/3]
	if f := float64(mid.AlexaMajestic) / float64(mid.AlexaBases); f > 0.8 {
		t.Fatalf("alexa∩majestic share %.2f too high", f)
	}
	// Alexa∩Majestic declines after the Alexa change.
	change := c.Arch.Days() * 2 / 3
	pre := stats.Mean(intersectSlice(series[10:change-1], func(p IntersectionPoint) float64 { return float64(p.AlexaMajestic) }))
	post := stats.Mean(intersectSlice(series[change+3:], func(p IntersectionPoint) float64 { return float64(p.AlexaMajestic) }))
	if post >= pre {
		t.Fatalf("alexa∩majestic should drop after the change: pre %.0f post %.0f", pre, post)
	}
}

func intersectSlice(ps []IntersectionPoint, f func(IntersectionPoint) float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = f(p)
	}
	return out
}

func TestTable3(t *testing.T) {
	c := ctx(t)
	rows := c.Table3([]string{providers.Alexa, providers.Umbrella, providers.Majestic}, headSize)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	var alexa, umb DisjunctRow
	for _, r := range rows {
		switch r.Provider {
		case providers.Alexa:
			alexa = r
		case providers.Umbrella:
			umb = r
		}
	}
	if umb.Disjunct == 0 || alexa.Disjunct == 0 {
		t.Fatalf("no disjunct domains: %+v", rows)
	}
	// Table 3 shape: Umbrella's exclusives are far more
	// blacklist/mobile-flavoured than Alexa's, and less present in the
	// other lists' Top 1M.
	if umb.MobilePC <= alexa.MobilePC {
		t.Fatalf("umbrella mobile %.1f%% should exceed alexa %.1f%%", umb.MobilePC, alexa.MobilePC)
	}
	if umb.OtherTopPC >= alexa.OtherTopPC {
		t.Fatalf("umbrella other-top %.1f%% should be below alexa %.1f%%", umb.OtherTopPC, alexa.OtherTopPC)
	}
}

func TestChurnByRank(t *testing.T) {
	c := ctx(t)
	sizes := []int{30, 100, 300, 1000, 3000}
	change := c.Arch.Days() * 2 / 3
	umb := c.ChurnByRank(providers.Umbrella, sizes, 7, change)
	if len(umb) != len(sizes) {
		t.Fatal("length")
	}
	// Fig. 1c: churn grows with subset size for Umbrella.
	if umb[0] >= umb[len(umb)-1] {
		t.Fatalf("umbrella churn not increasing with rank: %v", umb)
	}
	// Alexa post-change head churn exceeds pre-change head churn ~10x
	// (paper: 0.62% -> 7.7%; accept >3x).
	alexaPre := c.ChurnByRank(providers.Alexa, []int{headSize}, 7, change)
	alexaPost := c.ChurnByRank(providers.Alexa, []int{headSize}, change+1, c.Arch.Days())
	if alexaPost[0] < 3*alexaPre[0] {
		t.Fatalf("alexa head churn pre %.4f post %.4f; expected sharp rise", alexaPre[0], alexaPost[0])
	}
	// Majestic stays low across ranks.
	maj := c.ChurnByRank(providers.Majestic, sizes, 7, change)
	if maj[len(maj)-1] > umb[len(umb)-1] {
		t.Fatalf("majestic tail churn %.4f above umbrella %.4f", maj[len(maj)-1], umb[len(umb)-1])
	}
}

func TestCumulativeUnique(t *testing.T) {
	c := ctx(t)
	for _, p := range []string{providers.Alexa, providers.Umbrella, providers.Majestic} {
		series := c.CumulativeUnique(p, 0)
		if len(series) != c.Arch.Days() {
			t.Fatal("length")
		}
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1] {
				t.Fatalf("%s cumulative unique decreasing at %d", p, i)
			}
		}
		if series[len(series)-1] <= series[0] {
			t.Fatalf("%s no growth", p)
		}
	}
	// Majestic grows slowest (paper Fig. 2a).
	maj := c.CumulativeUnique(providers.Majestic, 0)
	umb := c.CumulativeUnique(providers.Umbrella, 0)
	last := len(maj) - 1
	majGrowth := float64(maj[last]-maj[0]) / float64(maj[0])
	umbGrowth := float64(umb[last]-umb[0]) / float64(umb[0])
	if majGrowth >= umbGrowth {
		t.Fatalf("majestic growth %.3f should be below umbrella %.3f", majGrowth, umbGrowth)
	}
}

func TestNewVsRejoin(t *testing.T) {
	c := ctx(t)
	for _, p := range []string{providers.Umbrella, providers.Majestic} {
		share := c.NewVsRejoin(p, 0)
		// Paper: 20–33% of daily changers are new; accept a wide band
		// but demand both mechanisms present.
		if share <= 0.02 || share >= 0.8 {
			t.Fatalf("%s first-timer share %.3f outside plausible band", p, share)
		}
	}
}

func TestDecayFromStart(t *testing.T) {
	c := ctx(t)
	dec := c.DecayFromStart(providers.Umbrella, 0)
	if len(dec) == 0 {
		t.Fatal("empty decay")
	}
	if dec[0] < 0.95 {
		t.Fatalf("day-0 self intersection %.3f", dec[0])
	}
	last := dec[len(dec)-1]
	if last >= dec[0] {
		t.Fatal("no decay")
	}
	// Majestic decays less than Umbrella.
	majDec := c.DecayFromStart(providers.Majestic, 0)
	if majDec[len(majDec)-1] <= last {
		t.Fatalf("majestic end %.3f should exceed umbrella end %.3f",
			majDec[len(majDec)-1], last)
	}
}

func TestDaysIncludedCDF(t *testing.T) {
	c := ctx(t)
	umb := c.DaysIncludedCDF(providers.Umbrella, 0)
	maj := c.DaysIncludedCDF(providers.Majestic, 0)
	if umb.Len() == 0 || maj.Len() == 0 {
		t.Fatal("empty CDFs")
	}
	// Fig. 2c: Majestic domains stay longer — the share of domains
	// present on at most half the days is larger for Umbrella.
	if umb.Eval(0.5) <= maj.Eval(0.5) {
		t.Fatalf("umbrella P(≤50%% days) %.3f should exceed majestic %.3f",
			umb.Eval(0.5), maj.Eval(0.5))
	}
	q := PresenceQuantiles(umb, []float64{0.1, 0.5, 0.99})
	if !(q[0] <= q[1] && q[1] <= q[2]) {
		t.Fatal("presence quantiles not monotone")
	}
}

func TestKSWeekendDistances(t *testing.T) {
	c := ctx(t)
	umb := c.KSWeekendDistances(providers.Umbrella, 0, 3000, false)
	umbBase := c.KSWeekendDistances(providers.Umbrella, 0, 3000, true)
	maj := c.KSWeekendDistances(providers.Majestic, 0, 3000, false)
	if len(umb) == 0 || len(umbBase) == 0 || len(maj) == 0 {
		t.Fatal("empty KS samples")
	}
	// Weekend-vs-weekday distances exceed the weekday-vs-weekday
	// baseline, and Majestic shows much less weekend structure.
	if stats.Mean(umb) <= stats.Mean(umbBase) {
		t.Fatalf("umbrella KS %.3f not above baseline %.3f",
			stats.Mean(umb), stats.Mean(umbBase))
	}
	if stats.Mean(maj) >= stats.Mean(umb) {
		t.Fatalf("majestic KS %.3f should be below umbrella %.3f",
			stats.Mean(maj), stats.Mean(umb))
	}
	// A mass of KS=1 domains exists for Umbrella (paper: >15%).
	ones := 0
	for _, d := range umb {
		if d == 1 {
			ones++
		}
	}
	if float64(ones)/float64(len(umb)) < 0.01 {
		t.Fatalf("only %d/%d umbrella domains at KS=1", ones, len(umb))
	}
}

func TestSLDDynamics(t *testing.T) {
	c := ctx(t)
	// Alexa's weekend swing only exists after its regime change. The
	// paper's threshold is 40% at 1M scale; the small test scale keeps
	// more of each group away from the list boundary, so use 30%.
	change := c.Arch.Days() * 2 / 3
	groups := c.SLDDynamics(providers.Alexa, 30, 3, change+1, c.Arch.Days())
	if len(groups) == 0 {
		t.Fatal("no weekend-swinging SLD groups found in alexa")
	}
	// Expect the engineered platforms to appear with the right
	// direction: a leisure group up on weekends, a work group down.
	var leisureUp, workDown bool
	for _, g := range groups {
		switch g.Group {
		case "blogspot", "tumblr":
			if g.WeekendMean > g.WeekdayMean {
				leisureUp = true
			}
		case "sharepoint":
			if g.WeekendMean < g.WeekdayMean {
				workDown = true
			}
		}
		if g.SwingPercent < 30 {
			t.Fatalf("group %s swing %.1f below threshold", g.Group, g.SwingPercent)
		}
		if len(g.Series) != c.Arch.Days() {
			t.Fatal("series length")
		}
	}
	if !leisureUp {
		t.Fatalf("no leisure platform up on weekends; groups: %v", groupNames(groups))
	}
	if !workDown {
		t.Fatalf("no work platform down on weekends; groups: %v", groupNames(groups))
	}
}

func groupNames(gs []SLDGroupDynamic) []string {
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = g.Group
	}
	return out
}

func TestKendall(t *testing.T) {
	c := ctx(t)
	change := c.Arch.Days() * 2 / 3
	dayToDay := func(p string) []float64 { return c.KendallDayToDay(p, headSize) }
	maj := dayToDay(providers.Majestic)
	umb := dayToDay(providers.Umbrella)
	if len(maj) == 0 || len(umb) == 0 {
		t.Fatal("no taus")
	}
	// Fig. 4: Majestic day-to-day order is the most similar.
	if stats.Mean(maj[:change-2]) <= stats.Mean(umb[:change-2]) {
		t.Fatalf("majestic mean tau %.3f not above umbrella %.3f",
			stats.Mean(maj), stats.Mean(umb))
	}
	if VeryStrongShare(maj[:change-2]) < VeryStrongShare(umb[:change-2]) {
		t.Fatal("very-strong share ordering violated")
	}
	// Vs-first-day correlation collapses over time.
	vsFirst := c.KendallVsFirst(providers.Umbrella, headSize)
	if len(vsFirst) < 10 {
		t.Fatal("short vs-first series")
	}
	early := stats.Mean(vsFirst[:3])
	late := stats.Mean(vsFirst[len(vsFirst)-3:])
	if late >= early {
		t.Fatalf("no long-term order decay: early %.3f late %.3f", early, late)
	}
}

func TestVeryStrongShare(t *testing.T) {
	if VeryStrongShare(nil) != 0 {
		t.Fatal("empty")
	}
	if got := VeryStrongShare([]float64{0.99, 0.90, 0.97, 0.30}); got != 0.5 {
		t.Fatalf("share %v", got)
	}
}

func TestTable4(t *testing.T) {
	c := ctx(t)
	ps := []string{providers.Alexa, providers.Umbrella, providers.Majestic}
	rows := c.Table4(ps, providers.Alexa, []int{1, 5, 50, 500, 1500, 2800})
	if len(rows) == 0 {
		t.Fatal("no example domains")
	}
	for _, rv := range rows {
		for _, p := range ps {
			hi, ok := rv.Highest[p]
			if !ok {
				continue
			}
			med, lo := rv.Median[p], rv.Lowest[p]
			if !(hi <= med && med <= lo) {
				t.Fatalf("%s/%s ranks not ordered: %d %d %d", rv.Domain, p, hi, med, lo)
			}
			if rv.Presence[p] <= 0 || rv.Presence[p] > 1 {
				t.Fatalf("presence %v", rv.Presence[p])
			}
		}
	}
	// The long-tail rows vary more than the head rows (paper: "the
	// ranks of top domains are fairly stable, while the ranks of bottom
	// domains vary drastically"). Compare absolute rank spreads.
	firstRow, lastRow := rows[0], rows[len(rows)-1]
	spread := func(rv RankVariation) float64 {
		return float64(rv.Lowest[providers.Alexa] - rv.Highest[providers.Alexa])
	}
	if spread(firstRow) >= spread(lastRow) {
		t.Fatalf("head spread %.0f should be below tail spread %.0f",
			spread(firstRow), spread(lastRow))
	}
}

func TestLogSizes(t *testing.T) {
	sizes := LogSizes(3000)
	if sizes[len(sizes)-1] != 3000 {
		t.Fatalf("last size %d", sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatal("sizes not increasing")
		}
	}
}

func TestRankMatrixSampling(t *testing.T) {
	c := ctx(t)
	m := c.buildRankMatrix(providers.Majestic, headSize, 50)
	if len(m.ranks) > 50 {
		t.Fatalf("sampling did not cap: %d", len(m.ranks))
	}
	for _, s := range m.ranks {
		if len(s) != c.Arch.Days() {
			t.Fatal("series length")
		}
	}
}

func TestWorldIDsFallback(t *testing.T) {
	c := ctx(t)
	// A list without IDs resolves via names.
	l := c.Arch.Get(providers.Alexa, 0)
	names := l.Top(50).Names()
	plain := toplist.New(names)
	ids := c.worldIDs(plain)
	if len(ids) != 50 {
		t.Fatalf("fallback resolved %d of 50", len(ids))
	}
}
