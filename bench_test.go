package toplists

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/population"
	"repro/internal/providers"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, each regenerating the artifact from a shared
// test-scale simulation. Run with:
//
//	go test -bench=. -benchmem
var (
	benchLab  *Lab
	benchOnce sync.Once
)

func lab(b *testing.B) *Lab {
	b.Helper()
	benchOnce.Do(func() {
		benchLab = NewLab(WithScale(TestScale()))
		if _, err := benchLab.Study(); err != nil {
			panic(err)
		}
	})
	return benchLab
}

func benchExperiment(b *testing.B, id string) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := l.Run(context.Background(), id)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s: empty result", id)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkFig1a(b *testing.B)  { benchExperiment(b, "fig1a") }
func BenchmarkFig1b(b *testing.B)  { benchExperiment(b, "fig1b") }
func BenchmarkFig1c(b *testing.B)  { benchExperiment(b, "fig1c") }
func BenchmarkFig2a(b *testing.B)  { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)  { benchExperiment(b, "fig2b") }
func BenchmarkFig2c(b *testing.B)  { benchExperiment(b, "fig2c") }
func BenchmarkFig3a(b *testing.B)  { benchExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)  { benchExperiment(b, "fig3b") }
func BenchmarkFig3c(b *testing.B)  { benchExperiment(b, "fig3c") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6a(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { benchExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)  { benchExperiment(b, "fig6c") }
func BenchmarkFig7a(b *testing.B)  { benchExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)  { benchExperiment(b, "fig7b") }
func BenchmarkFig7c(b *testing.B)  { benchExperiment(b, "fig7c") }
func BenchmarkFig7d(b *testing.B)  { benchExperiment(b, "fig7d") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkTTL(b *testing.B)    { benchExperiment(b, "ttl") }

// BenchmarkAblationVolume flips Umbrella to query-volume ranking and
// regenerates the Fig. 5 comparison (DESIGN.md ablation).
func BenchmarkAblationVolume(b *testing.B) { benchExperiment(b, "ablation-volume") }

// BenchmarkAggregation regenerates the §9 Tranco-style aggregation
// extension (churn of Dowdall aggregates vs single lists).
func BenchmarkAggregation(b *testing.B) { benchExperiment(b, "aggregation") }

// BenchmarkAblationSimilarity regenerates the rank-similarity metric
// ablation (τ vs ρ vs footrule vs RBO over the same archive).
func BenchmarkAblationSimilarity(b *testing.B) { benchExperiment(b, "similarity") }

// BenchmarkHygiene regenerates the §9.1 list-cleaning impact table.
func BenchmarkHygiene(b *testing.B) { benchExperiment(b, "hygiene") }

// BenchmarkManipulation regenerates the manipulation-cost and
// aggregate-resistance extension (binary search over generator runs).
func BenchmarkManipulation(b *testing.B) { benchExperiment(b, "manipulation") }

// BenchmarkAblationHorizon regenerates the window-length ablation
// (four full Alexa-mechanism regenerations).
func BenchmarkAblationHorizon(b *testing.B) { benchExperiment(b, "ablation-horizon") }

// BenchmarkSimulate measures a full end-to-end simulation (world +
// archive generation) at test scale.
func BenchmarkSimulate(b *testing.B) {
	scale := TestScale()
	scale.Population.Days = 14
	scale.BurnInDays = 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(context.Background(), WithScale(scale)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine measures archive generation alone (world build
// excluded), reporting simulated days (burn-in included) per second
// across three variants that all produce byte-identical archives (see
// internal/engine's equivalence tests):
//
//   - serial: the Workers=1 reference path;
//   - barriered-N: a fully synchronous day loop at N workers — step
//     the day, rank it, emit it, with a barrier between phases. This
//     is intra-phase parallelism only: it strips out ALL cross-phase
//     overlap, including the step-vs-emit writer overlap the engine
//     already had before the day pipeline, so it is the floor the
//     overlap machinery as a whole is measured against;
//   - pipelined-N: engine.Run at N workers, where day d+1 steps while
//     day d ranks and day d-1 emits.
//
// pipelined/barriered is the wall-clock value of cross-phase overlap
// (day pipeline + streaming emit); pipelined/serial is the end-to-end
// concurrent-engine speedup. Both ratios need real parallel hardware:
// on a single-core box all three variants coincide within noise, since
// overlapped CPU-bound stages just timeslice.
func BenchmarkEngine(b *testing.B) {
	scale := TestScale()
	scale.Population.Days = 14
	scale.BurnInDays = 20
	w, err := population.Build(scale.Population)
	if err != nil {
		b.Fatal(err)
	}
	m := traffic.NewModel(w)
	mkGen := func(b *testing.B) *providers.Generator {
		opts := providers.DefaultOptions(scale.Population.Days, scale.ListSize)
		opts.BurnInDays = scale.BurnInDays
		g, err := providers.NewGenerator(m, opts)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	reportDays := func(b *testing.B) {
		stepped := scale.BurnInDays + scale.Population.Days
		b.ReportMetric(float64(stepped)*float64(b.N)/b.Elapsed().Seconds(), "days/sec")
	}
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		b.ResetTimer()
		var st engine.Stats
		for i := 0; i < b.N; i++ {
			// Generator construction (state arrays + base buckets) is
			// untimed so days/sec reflects the stepping loop alone.
			b.StopTimer()
			g := mkGen(b)
			b.StartTimer()
			e := engine.New(g, engine.Config{Workers: workers})
			arch := toplist.NewArchive(0, toplist.Day(scale.Population.Days-1))
			arch.Expect(g.EnabledProviders()...)
			if err := e.Run(context.Background(), scale.Population.Days, arch); err != nil {
				b.Fatal(err)
			}
			st = e.Stats()
		}
		reportDays(b)
		// Stage observability: per-day step/rank wall time and the
		// adaptive split the run settled on, so the perf-trajectory
		// artifacts record where the day went, not just how fast it was.
		days := float64(scale.Population.Days)
		b.ReportMetric(st.StepTime.Seconds()*1e3/days, "step-ms/day")
		b.ReportMetric(st.RankTime.Seconds()*1e3/days, "rank-ms/day")
		b.ReportMetric(float64(st.StepWorkers), "step-workers")
		b.ReportMetric(float64(st.RankWorkers), "rank-workers")
	}
	// runBarriered reproduces the pre-pipeline day loop: every phase of
	// a day completes before the next begins, with intra-phase
	// parallelism only.
	runBarriered := func(b *testing.B, workers int) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := mkGen(b)
			b.StartTimer()
			days := scale.Population.Days
			arch := toplist.NewArchive(0, toplist.Day(days-1))
			arch.Expect(g.EnabledProviders()...)
			for d := -scale.BurnInDays; d < 0; d++ {
				g.StepDay(d, workers)
			}
			for d := 0; d < days; d++ {
				g.StepDay(d, workers)
				for _, s := range g.Snapshots(toplist.Day(d), workers) {
					if err := arch.Put(s.Provider, s.Day, s.List); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		reportDays(b)
	}
	n := runtime.GOMAXPROCS(0)
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run(fmt.Sprintf("barriered-%d", n), func(b *testing.B) { runBarriered(b, n) })
	b.Run(fmt.Sprintf("pipelined-%d", n), func(b *testing.B) { run(b, 0) })
}

// BenchmarkRunAll regenerates every table and figure through the
// pooled experiment runner over the shared study. Compare against
// `-cpu 1` (which collapses the pool to one worker) for the
// worker-pool gain.
func BenchmarkRunAll(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := l.RunAll(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(results) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkAblationWindow compares the EMA window approximation against
// the exact ring-buffer sliding window (DESIGN.md ablation: memory vs
// fidelity).
func BenchmarkAblationWindow(b *testing.B) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := traffic.NewModel(w)
	n := w.Len()
	b.Run("ema", func(b *testing.B) {
		ema := make([]float64, n)
		buf := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = m.Signal(traffic.AxisWeb, i%28, buf)
			const alpha = 2.0 / 91.0
			for j, v := range buf {
				ema[j] = (1-alpha)*ema[j] + alpha*v
			}
		}
	})
	b.Run("ring-window", func(b *testing.B) {
		sw := providers.NewSlidingWindow(n, 90)
		buf := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = m.Signal(traffic.AxisWeb, i%28, buf)
			sw.Push(buf)
		}
	})
}
