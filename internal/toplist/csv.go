package toplist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the list in the providers' publication format:
// "rank,domain" lines, rank ascending, no header — the same shape as the
// Alexa/Umbrella/Majestic CSV downloads.
func WriteCSV(w io.Writer, l *List) error {
	bw := bufio.NewWriter(w)
	for i, name := range l.names {
		if _, err := fmt.Fprintf(bw, "%d,%s\n", i+1, name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a "rank,domain" file. Ranks must be positive, strictly
// increasing, and start at 1; blank lines are ignored.
func ReadCSV(r io.Reader) (*List, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var names []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		comma := strings.IndexByte(line, ',')
		if comma < 0 {
			return nil, fmt.Errorf("toplist: line %d: missing comma: %q", lineNo, line)
		}
		rank, err := strconv.Atoi(line[:comma])
		if err != nil {
			return nil, fmt.Errorf("toplist: line %d: bad rank: %w", lineNo, err)
		}
		if rank != len(names)+1 {
			return nil, fmt.Errorf("toplist: line %d: rank %d out of order (want %d)", lineNo, rank, len(names)+1)
		}
		name := strings.TrimSpace(line[comma+1:])
		if name == "" {
			return nil, fmt.Errorf("toplist: line %d: empty domain", lineNo)
		}
		names = append(names, name)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(names), nil
}
