package providers

import (
	"math"
	"sort"
	"testing"

	"repro/internal/domainname"
	"repro/internal/population"
	"repro/internal/stats"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

// testArchive builds a small archive once; several tests share it.
var (
	cachedArchive *toplist.Archive
	cachedModel   *traffic.Model
)

func testArchive(t *testing.T) (*toplist.Archive, *traffic.Model) {
	t.Helper()
	if cachedArchive != nil {
		return cachedArchive, cachedModel
	}
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewModel(w)
	opts := DefaultOptions(w.Cfg.Days, 3000)
	opts.BurnInDays = 60
	g, err := NewGenerator(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := g.Run(w.Cfg.Days)
	if err != nil {
		t.Fatal(err)
	}
	cachedArchive, cachedModel = arch, m
	return arch, m
}

func TestOptionsValidate(t *testing.T) {
	opts := DefaultOptions(30, 1000)
	if err := opts.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := opts
	bad.ListSize = 1
	if bad.Validate() == nil {
		t.Fatal("tiny list should fail")
	}
	bad = opts
	bad.UmbrellaAlpha = 0
	if bad.Validate() == nil {
		t.Fatal("zero alpha should fail")
	}
	bad = opts
	bad.BurnInDays = -1
	if bad.Validate() == nil {
		t.Fatal("negative burn-in should fail")
	}
}

func TestArchiveShape(t *testing.T) {
	arch, m := testArchive(t)
	if !arch.Complete() {
		t.Fatal("incomplete archive")
	}
	days := m.W.Cfg.Days
	if arch.Days() != days {
		t.Fatalf("archive days %d", arch.Days())
	}
	for _, p := range []string{Alexa, Umbrella, Majestic} {
		l := arch.Get(p, 0)
		if l == nil || l.Len() != 3000 {
			t.Fatalf("%s day-0 list missing or short: %v", p, l)
		}
	}
}

func TestListsAreDistinct(t *testing.T) {
	arch, _ := testArchive(t)
	// The three lists measure different axes; their base-domain
	// overlap must be well below identity (paper §5.2: <50%).
	a := stats.NewStringSet(arch.Get(Alexa, 10).BaseDomains().Names())
	u := stats.NewStringSet(arch.Get(Umbrella, 10).BaseDomains().Names())
	mj := stats.NewStringSet(arch.Get(Majestic, 10).BaseDomains().Names())
	au := float64(a.IntersectionCount(u)) / float64(a.Len())
	am := float64(a.IntersectionCount(mj)) / float64(a.Len())
	um := float64(u.IntersectionCount(mj)) / float64(u.Len())
	if au > 0.75 || am > 0.75 || um > 0.75 {
		t.Fatalf("lists nearly identical: a∩u=%.2f a∩m=%.2f u∩m=%.2f", au, am, um)
	}
	if au < 0.02 || am < 0.02 {
		t.Fatalf("lists nearly disjoint: a∩u=%.2f a∩m=%.2f", au, am)
	}
}

func TestUmbrellaStructure(t *testing.T) {
	arch, m := testArchive(t)
	st := arch.Get(Umbrella, 5).Structure()
	// Umbrella carries subdomains and invalid TLDs (Table 2).
	if st.BaseShare > 0.9 {
		t.Fatalf("umbrella base share %.2f; expected substantial subdomain mass", st.BaseShare)
	}
	if st.InvalidNames == 0 {
		t.Fatal("umbrella should contain invalid-TLD names")
	}
	// Alexa and Majestic exclude junk entirely.
	for _, p := range []string{Alexa, Majestic} {
		stp := arch.Get(p, 5).Structure()
		if stp.InvalidNames != 0 {
			t.Fatalf("%s contains %d invalid-TLD names", p, stp.InvalidNames)
		}
		if stp.BaseShare < 0.9 {
			t.Fatalf("%s base share %.2f; web lists are almost all base domains", p, stp.BaseShare)
		}
	}
	_ = m
}

func TestChurnOrdering(t *testing.T) {
	arch, m := testArchive(t)
	churn := func(p string, from, to int) float64 {
		var total float64
		n := 0
		for d := from; d < to; d++ {
			cur := stats.NewIDSet(arch.Get(p, toplist.Day(d)).IDs())
			next := stats.NewIDSet(arch.Get(p, toplist.Day(d+1)).IDs())
			total += float64(cur.RemovedCount(next))
			n++
		}
		return total / float64(n)
	}
	change := m.W.Cfg.Days * 2 / 3
	maj := churn(Majestic, 7, change-1)
	alexaPre := churn(Alexa, 7, change-1)
	alexaPost := churn(Alexa, change+1, m.W.Cfg.Days-1)
	umb := churn(Umbrella, 7, change-1)
	// Paper Fig. 1b ordering: Majestic ≪ Alexa-pre < Umbrella ≪ Alexa-post.
	if !(maj < alexaPre && alexaPre < umb && umb < alexaPost) {
		t.Fatalf("churn ordering violated: maj=%.0f alexaPre=%.0f umb=%.0f alexaPost=%.0f",
			maj, alexaPre, umb, alexaPost)
	}
	// The change must be drastic (paper: 21k -> 483k, i.e. >10x).
	if alexaPost < 5*alexaPre {
		t.Fatalf("alexa regime change too mild: pre=%.0f post=%.0f", alexaPre, alexaPost)
	}
}

func TestAlexaChangeIsAbrupt(t *testing.T) {
	arch, m := testArchive(t)
	change := m.W.Cfg.Days * 2 / 3
	day := func(d int) stats.IDSet { return stats.NewIDSet(arch.Get(Alexa, toplist.Day(d)).IDs()) }
	before := day(change - 2).RemovedCount(day(change - 1))
	at := day(change - 1).RemovedCount(day(change))
	if at < 3*before+10 {
		t.Fatalf("no abrupt churn jump at change day: before=%d at=%d", before, at)
	}
}

func TestUmbrellaWeeklyPattern(t *testing.T) {
	arch, m := testArchive(t)
	// Day-over-day removals, grouped by whether the boundary crosses
	// into/out of a weekend; weekend boundaries churn more.
	var wkdayCh, boundaryCh []float64
	for d := 7; d < m.W.Cfg.Days-1; d++ {
		cur := stats.NewIDSet(arch.Get(Umbrella, toplist.Day(d)).IDs())
		next := stats.NewIDSet(arch.Get(Umbrella, toplist.Day(d+1)).IDs())
		c := float64(cur.RemovedCount(next))
		wd := toplist.Day(d).IsWeekend()
		wn := toplist.Day(d + 1).IsWeekend()
		if wd != wn {
			boundaryCh = append(boundaryCh, c)
		} else if !wd && !wn {
			wkdayCh = append(wkdayCh, c)
		}
	}
	if stats.Mean(boundaryCh) <= stats.Mean(wkdayCh) {
		t.Fatalf("no weekend churn pattern: boundary %.0f vs weekday %.0f",
			stats.Mean(boundaryCh), stats.Mean(wkdayCh))
	}
}

func TestMajesticNoWeeklyPattern(t *testing.T) {
	arch, m := testArchive(t)
	var boundary, weekday []float64
	for d := 7; d < m.W.Cfg.Days-1; d++ {
		cur := stats.NewIDSet(arch.Get(Majestic, toplist.Day(d)).IDs())
		next := stats.NewIDSet(arch.Get(Majestic, toplist.Day(d+1)).IDs())
		c := float64(cur.RemovedCount(next))
		if toplist.Day(d).IsWeekend() != toplist.Day(d+1).IsWeekend() {
			boundary = append(boundary, c)
		} else {
			weekday = append(weekday, c)
		}
	}
	b, w := stats.Mean(boundary), stats.Mean(weekday)
	if w == 0 {
		w = 1
	}
	if b/w > 2.0 {
		t.Fatalf("majestic shows weekly churn pattern: boundary %.1f vs other %.1f", b, w)
	}
}

func TestHeadMoreStableThanTail(t *testing.T) {
	arch, m := testArchive(t)
	head := 0.0
	tail := 0.0
	n := 0
	for d := 7; d < m.W.Cfg.Days/2; d++ {
		curL := arch.Get(Umbrella, toplist.Day(d))
		nextL := arch.Get(Umbrella, toplist.Day(d+1))
		curHead := stats.NewIDSet(curL.Top(100).IDs())
		nextHead := stats.NewIDSet(nextL.Top(100).IDs())
		head += float64(curHead.RemovedCount(nextHead)) / 100
		cur := stats.NewIDSet(curL.IDs())
		next := stats.NewIDSet(nextL.IDs())
		tail += float64(cur.RemovedCount(next)) / float64(curL.Len())
		n++
	}
	if head/float64(n) >= tail/float64(n) {
		t.Fatalf("head churn %.4f not below full-list churn %.4f", head/float64(n), tail/float64(n))
	}
}

func TestMajesticRanksOnlyBaseDomains(t *testing.T) {
	arch, _ := testArchive(t)
	l := arch.Get(Majestic, 3)
	subs := 0
	for _, name := range l.Names() {
		if domainname.DepthOf(name) > 0 {
			subs++
		}
	}
	// Platform user sites (tumblr/sharepoint) are PSL depth 1; they are
	// legitimate, but deep names must not appear.
	for _, name := range l.Names() {
		if domainname.DepthOf(name) > 1 {
			t.Fatalf("majestic lists deep subdomain %q", name)
		}
	}
	if subs > l.Len()/2 {
		t.Fatalf("majestic lists %d subdomain-ish names of %d", subs, l.Len())
	}
}

func TestDeterministicArchive(t *testing.T) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewModel(w)
	opts := DefaultOptions(10, 500)
	opts.BurnInDays = 10
	run := func() *toplist.Archive {
		g, err := NewGenerator(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		arch, err := g.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		return arch
	}
	a, b := run(), run()
	for d := 0; d < 10; d++ {
		la, lb := a.Get(Umbrella, toplist.Day(d)), b.Get(Umbrella, toplist.Day(d))
		na, nb := la.Names(), lb.Names()
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("day %d rank %d: %q vs %q", d, i+1, na[i], nb[i])
			}
		}
	}
}

func TestInjectedDomainEntersUmbrella(t *testing.T) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewModel(w)
	inj := traffic.NewInjector()
	for d := 0; d < 12; d++ {
		inj.Add("probe-test.dev", d, 10000, 10000)
	}
	opts := DefaultOptions(12, 2000)
	opts.BurnInDays = 20
	opts.Injector = inj
	g, err := NewGenerator(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := g.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	rank := arch.Get(Umbrella, 8).RankOf("probe-test.dev")
	if rank == 0 {
		t.Fatal("injected domain did not enter the list")
	}
	// After injection stops the domain must fall out within ~2 days
	// (paper: test domains disappeared within 1-2 days).
	// Day 10-11 still injected; check list NOT containing after decay:
	// re-run with injection stopping at day 6.
	inj2 := traffic.NewInjector()
	for d := 0; d < 6; d++ {
		inj2.Add("probe-test.dev", d, 10000, 10000)
	}
	opts.Injector = inj2
	g2, _ := NewGenerator(m, opts)
	arch2, _ := g2.Run(12)
	if arch2.Get(Umbrella, 5).RankOf("probe-test.dev") == 0 {
		t.Fatal("domain should be ranked while injected")
	}
	if arch2.Get(Umbrella, 10).RankOf("probe-test.dev") != 0 {
		t.Fatal("domain should leave the list within days of stopping")
	}
}

func TestMoreClientsBeatMoreQueries(t *testing.T) {
	// The Fig. 5 mechanism at the ranker level: 10k probes × 1 query
	// outranks 1k probes × 100 queries under unique-client ranking.
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewModel(w)
	inj := traffic.NewInjector()
	for d := 0; d < 10; d++ {
		inj.Add("many-probes.dev", d, 50000, 50000)
		inj.Add("many-queries.dev", d, 8000, 800000)
	}
	opts := DefaultOptions(10, 2000)
	opts.BurnInDays = 20
	opts.Injector = inj
	g, _ := NewGenerator(m, opts)
	arch, _ := g.Run(10)
	l := arch.Get(Umbrella, 8)
	rp, rq := l.RankOf("many-probes.dev"), l.RankOf("many-queries.dev")
	if rp == 0 || rq == 0 {
		t.Fatalf("injected domains missing: %d %d", rp, rq)
	}
	if rp >= rq {
		t.Fatalf("probes rank %d should beat queries rank %d", rp, rq)
	}
	// Ablation: under volume ranking the order flips.
	optsV := opts
	optsV.UmbrellaVolumeRanking = true
	gv, _ := NewGenerator(m, optsV)
	archV, _ := gv.Run(10)
	lv := archV.Get(Umbrella, 8)
	rpv, rqv := lv.RankOf("many-probes.dev"), lv.RankOf("many-queries.dev")
	if rpv != 0 && rqv != 0 && rqv >= rpv {
		t.Fatalf("volume ablation should favour queries: probes %d queries %d", rpv, rqv)
	}
}

func TestTopIDs(t *testing.T) {
	scores := []float64{0, 5, 3, 0, 9, 1, 9}
	top := topIDs(scores, 3)
	want := []uint32{4, 6, 1} // 9 (idx4), 9 (idx6, tie by index), 5
	if len(top) != 3 {
		t.Fatalf("len %d", len(top))
	}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("top %v want %v", top, want)
		}
	}
	// Requesting more than available positives clamps.
	if got := topIDs(scores, 100); len(got) != 5 {
		t.Fatalf("clamp: %d", len(got))
	}
	if topIDs([]float64{0, 0}, 3) != nil {
		t.Fatal("all-zero should be empty")
	}
}

func TestTopIDsMatchesSort(t *testing.T) {
	scores := make([]float64, 500)
	for i := range scores {
		scores[i] = math.Mod(float64(i)*2654435.761, 97)
	}
	top := topIDs(scores, 50)
	idx := make([]uint32, len(scores))
	for i := range idx {
		idx[i] = uint32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	for i := 0; i < 50; i++ {
		if top[i] != idx[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, top[i], idx[i])
		}
	}
}

func TestSlidingWindowMatchesNaive(t *testing.T) {
	w := NewSlidingWindow(3, 4)
	var pushed [][]float64
	for day := 0; day < 10; day++ {
		sig := []float64{float64(day), float64(day * 2), 1}
		w.Push(sig)
		pushed = append(pushed, append([]float64(nil), sig...))
		want := make([]float64, 3)
		lo := len(pushed) - 4
		if lo < 0 {
			lo = 0
		}
		for _, s := range pushed[lo:] {
			for i, v := range s {
				want[i] += v
			}
		}
		got := w.Sums()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("day %d sums %v want %v", day, got, want)
			}
		}
		if w.Filled() != (day >= 3) {
			t.Fatalf("filled wrong at day %d", day)
		}
	}
}

// TestEMAApproximatesWindow is the DESIGN.md ablation: an EMA with
// alpha=2/(N+1) tracks an exact N-day window sum (scaled by N) closely
// for slowly varying signals.
func TestEMAApproximatesWindow(t *testing.T) {
	const days = 200
	const window = 30
	alpha := 2.0 / float64(window+1)
	sw := NewSlidingWindow(1, window)
	ema := 0.0
	started := false
	for day := 0; day < days; day++ {
		// Slowly varying signal with daily noise.
		v := 100 + 30*math.Sin(float64(day)/20) + 5*math.Cos(float64(day)*1.7)
		sw.Push([]float64{v})
		if !started {
			ema = v
			started = true
		} else {
			ema = (1-alpha)*ema + alpha*v
		}
		if day > 2*window {
			windowMean := sw.Sums()[0] / window
			if math.Abs(ema-windowMean)/windowMean > 0.15 {
				t.Fatalf("day %d: EMA %.1f vs window mean %.1f", day, ema, windowMean)
			}
		}
	}
}

func BenchmarkGeneratorStep(b *testing.B) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := traffic.NewModel(w)
	opts := DefaultOptions(30, 3000)
	g, err := NewGenerator(m, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.StepDay(i, 1)
	}
}

func BenchmarkTopIDs(b *testing.B) {
	scores := make([]float64, 100000)
	for i := range scores {
		scores[i] = math.Mod(float64(i)*2654435.761, 9973)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topIDs(scores, 10000)
	}
}

// TestFreezeViewSurvivesNextStep is the double-buffering contract the
// pipelined engine relies on: a rank view frozen after StepDay(d)
// produces exactly the same lists after StepDay(d+1) has run as it
// would have produced immediately — the next step writes the back
// buffer, not the frozen front.
func TestFreezeViewSurvivesNextStep(t *testing.T) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewModel(w)
	mkGen := func() *Generator {
		opts := DefaultOptions(w.Cfg.Days, 800)
		opts.BurnInDays = 10
		inj := traffic.NewInjector()
		for d := -10; d < w.Cfg.Days; d++ {
			inj.Add("frozen.example", d, 5000, 60000)
		}
		opts.Injector = inj
		g, err := NewGenerator(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	// Reference: rank immediately after each step.
	ref := mkGen()
	for d := -10; d < 0; d++ {
		ref.StepDay(d, 1)
	}
	immediate := make(map[int][]toplist.Snapshot)
	for d := 0; d < 4; d++ {
		ref.StepDay(d, 1)
		immediate[d] = ref.Snapshots(toplist.Day(d), 1)
	}

	// Pipelined shape: freeze day d, step day d+1, then rank the view.
	pip := mkGen()
	for d := -10; d < 0; d++ {
		pip.StepDay(d, 1)
	}
	var pending *RankView
	deferred := make(map[int][]toplist.Snapshot)
	for d := 0; d < 4; d++ {
		pip.StepDay(d, 1)
		if pending != nil {
			deferred[int(pending.Day())] = pending.Snapshots(2)
		}
		pending = pip.Freeze(toplist.Day(d))
	}
	deferred[int(pending.Day())] = pending.Snapshots(2)

	for d := 0; d < 4; d++ {
		want, got := immediate[d], deferred[d]
		if len(want) != len(got) {
			t.Fatalf("day %d: %d vs %d snapshots", d, len(want), len(got))
		}
		for i := range want {
			if want[i].Provider != got[i].Provider || want[i].Day != got[i].Day {
				t.Fatalf("day %d: snapshot %d header mismatch", d, i)
			}
			wn, gn := want[i].List.Names(), got[i].List.Names()
			if len(wn) != len(gn) {
				t.Fatalf("day %d %s: list length %d vs %d", d, want[i].Provider, len(wn), len(gn))
			}
			for j := range wn {
				if wn[j] != gn[j] {
					t.Fatalf("day %d %s rank %d: %q vs %q (frozen view corrupted by next step)",
						d, want[i].Provider, j, wn[j], gn[j])
				}
			}
		}
	}
}

// TestSteadyStateDayAllocations is the allocation regression gate for
// the zero-alloc day-loop work: a steady-state serial step+rank day —
// after warm-up has sized every reusable scratch buffer — must stay
// within a small fixed allocation budget. The remaining allocations
// are the immutable Lists themselves (one struct + two copies per
// provider), the frozen RankView, and the snapshots slice; the former
// per-day candidate slices, name buffers, and eager rank maps are
// gone. A regression (a new per-domain or per-list-entry allocation on
// the day path) blows the budget immediately.
func TestSteadyStateDayAllocations(t *testing.T) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewModel(w)
	opts := DefaultOptions(w.Cfg.Days, 2000)
	opts.BurnInDays = 10
	g, err := NewGenerator(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	for d := -opts.BurnInDays; d < 0; d++ {
		g.StepDay(d, 1)
	}
	// Warm up: size the EMA state, scratch buffers, and kernel.
	day := 0
	for ; day < 5; day++ {
		g.StepDay(day, 1)
		g.Freeze(toplist.Day(day)).Snapshots(1)
	}
	avg := testing.AllocsPerRun(10, func() {
		g.StepDay(day, 1)
		if got := g.Freeze(toplist.Day(day)).Snapshots(1); len(got) != 3 {
			t.Fatalf("day %d: %d snapshots", day, len(got))
		}
		day++
	})
	// ~12 in practice; the headroom absorbs occasional scratch growth
	// as newborn domains enter the candidate set.
	const budget = 32
	if avg > budget {
		t.Fatalf("steady-state day allocates %.1f objects, budget %d", avg, budget)
	}
	t.Logf("steady-state step+rank day: %.1f allocs", avg)
}
