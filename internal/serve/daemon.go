package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// Daemon is the shared HTTP-daemon lifecycle: listen, serve, and on
// context cancellation drain gracefully — in-flight requests complete
// (bounded by ShutdownTimeout), new connections are refused, and only
// then does Run return. Background tasks (live generation, reload
// watchers, collection loops) run beside the server and are cancelled
// and awaited as part of shutdown. cmd/toplistd and cmd/collectd both
// run on it instead of wiring listeners and signal handling by hand.
type Daemon struct {
	// Addr is the listen address, ":8080" style. Ignored once Listen
	// was called explicitly.
	Addr string
	// Handler serves every request (typically a Chain around a mux).
	Handler http.Handler
	// Logger receives lifecycle messages; nil silences them.
	Logger *log.Logger
	// ShutdownTimeout bounds the graceful drain (default 5s); when it
	// expires remaining connections are hard-closed.
	ShutdownTimeout time.Duration
	// ReadHeaderTimeout guards against slowloris clients (default 10s).
	ReadHeaderTimeout time.Duration
	// Background tasks run for the daemon's lifetime; they must return
	// promptly when their context is cancelled, and Run waits for them.
	Background []func(context.Context)

	mu sync.Mutex
	ln net.Listener
}

// Listen binds the daemon's listener (idempotent), so callers can
// learn the bound address — ":0" tests, "serving on ..." logs —
// before Run.
func (d *Daemon) Listen() (net.Addr, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ln == nil {
		ln, err := net.Listen("tcp", d.Addr)
		if err != nil {
			return nil, err
		}
		d.ln = ln
	}
	return d.ln.Addr(), nil
}

// Run serves until ctx is cancelled or the listener fails, then drains
// and returns. A clean drain returns nil; exceeding ShutdownTimeout
// returns the drain error after hard-closing the remaining
// connections.
func (d *Daemon) Run(ctx context.Context) error {
	if _, err := d.Listen(); err != nil {
		return err
	}
	readHeader := d.ReadHeaderTimeout
	if readHeader == 0 {
		readHeader = 10 * time.Second
	}
	srv := &http.Server{Handler: d.Handler, ReadHeaderTimeout: readHeader}

	bgCtx, bgCancel := context.WithCancel(ctx)
	defer bgCancel()
	var wg sync.WaitGroup
	for _, bg := range d.Background {
		wg.Add(1)
		go func(fn func(context.Context)) {
			defer wg.Done()
			fn(bgCtx)
		}(bg)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(d.ln) }()

	select {
	case err := <-errc:
		bgCancel()
		wg.Wait()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		d.logf("shutting down")
		timeout := d.ShutdownTimeout
		if timeout == 0 {
			timeout = 5 * time.Second
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		err := srv.Shutdown(drainCtx)
		if err != nil {
			srv.Close()
			err = fmt.Errorf("serve: drain deadline exceeded: %w", err)
		}
		bgCancel()
		wg.Wait()
		return err
	}
}

func (d *Daemon) logf(format string, args ...any) {
	if d.Logger != nil {
		d.Logger.Printf(format, args...)
	}
}

// SignalContext returns a context cancelled on SIGINT/SIGTERM — the
// stop-signal wiring shared by the daemons.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Poll invokes fn every interval until ctx is cancelled — the follow
// loop shared by cmd/collectd and any other tick-driven task. fn is
// responsible for its own error handling; Poll just paces.
func Poll(ctx context.Context, interval time.Duration, fn func(context.Context)) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			fn(ctx)
		}
	}
}

// Reloader returns a Daemon background task that invokes reload on
// SIGHUP and — when poll > 0 — whenever stamp's value changes (an
// mtime/size fingerprint of the served archive, checked every poll).
// The signal is armed immediately, before the task runs, so a HUP
// delivered between construction and Run is not lost. Reload failures
// are logged and the previous source keeps serving; a poll-triggered
// reload only advances the remembered stamp when the reload succeeds,
// so a transiently failing reload is retried on the next tick.
func Reloader(poll time.Duration, stamp func() (string, error), reload func() error, logger *log.Logger) func(context.Context) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	logf := func(format string, args ...any) {
		if logger != nil {
			logger.Printf(format, args...)
		}
	}
	return func(ctx context.Context) {
		defer signal.Stop(hup)
		last := ""
		if stamp != nil {
			if s, err := stamp(); err == nil {
				last = s
			}
		}
		var tick <-chan time.Time
		if poll > 0 && stamp != nil {
			t := time.NewTicker(poll)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if err := reload(); err != nil {
					logf("reload (SIGHUP) failed, keeping current source: %v", err)
					continue
				}
				if stamp != nil {
					if s, err := stamp(); err == nil {
						last = s
					}
				}
				logf("reloaded on SIGHUP")
			case <-tick:
				s, err := stamp()
				if err != nil || s == last {
					continue
				}
				if err := reload(); err != nil {
					logf("reload (poll) failed, keeping current source: %v", err)
					continue
				}
				last = s
				logf("reloaded: source changed on disk")
			}
		}
	}
}

// FileStamp returns a stamp function for Reloader fingerprinting the
// file at path by modification time and size.
func FileStamp(path string) func() (string, error) {
	return func() (string, error) {
		fi, err := os.Stat(path)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d:%d", fi.ModTime().UnixNano(), fi.Size()), nil
	}
}
