// Command collectd is the longitudinal collector behind the paper's
// §4 dataset: pointed at a snapshot publisher (cmd/toplistd or any
// server speaking the same routes), it downloads every provider's
// daily CSV it has not stored yet and writes them to disk as
// <provider>-<date>.csv — exactly the archive layout researchers
// shared with the authors. Run it with -interval to keep following a
// live publisher, or -once for a single catch-up pass.
//
// Usage:
//
//	collectd -url http://host:8080 -out archive [-once] [-interval 1h]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/listserv"
	"repro/internal/toplist"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("collectd", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "publisher base URL")
	outDir := fs.String("out", "archive", "output directory for CSV snapshots")
	once := fs.Bool("once", false, "catch up and exit instead of following")
	interval := fs.Duration("interval", time.Hour, "poll interval in follow mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	logger := log.New(logw, "collectd: ", log.LstdFlags)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := listserv.NewClient(*url, listserv.WithFormat(listserv.FormatZip))

	if _, err := collectOnce(ctx, client, *outDir, logger); err != nil {
		return err
	}
	if *once {
		return nil
	}
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			logger.Print("stopping")
			return nil
		case <-t.C:
			if _, err := collectOnce(ctx, client, *outDir, logger); err != nil {
				// A failed pass is not fatal in follow mode: the next
				// tick retries, like a cron-driven collector.
				logger.Printf("pass failed: %v", err)
			}
		}
	}
}

// collectOnce downloads every published snapshot not yet on disk and
// returns how many files it wrote. Because a live publisher streams
// days out of a still-running simulation, each pass picks up exactly
// the days published since the last one.
func collectOnce(ctx context.Context, client *listserv.Client, outDir string, logger *log.Logger) (int, error) {
	idx, err := client.Index(ctx)
	if err != nil {
		return 0, err
	}
	first, err := toplist.ParseDay(idx.FirstDay)
	if err != nil {
		return 0, fmt.Errorf("bad index first_day: %w", err)
	}
	last, err := toplist.ParseDay(idx.LastDay)
	if err != nil {
		return 0, fmt.Errorf("bad index last_day: %w", err)
	}
	sink := dirSink{dir: outDir}
	written := 0
	for _, provider := range idx.Providers {
		for d := first; d <= last; d++ {
			if sink.has(provider, d) {
				continue // already collected
			}
			list, err := client.FetchDay(ctx, provider, d)
			if listserv.IsNotFound(err) {
				logger.Printf("gap: %s %s not published", provider, d)
				continue
			}
			if err != nil {
				return written, err
			}
			if err := sink.Put(provider, d, list); err != nil {
				return written, err
			}
			written++
		}
	}
	if written > 0 {
		logger.Printf("collected %d new snapshots into %s", written, outDir)
	}
	return written, nil
}

// dirSink is the collector's storage layer as a toplist.SnapshotSink:
// one <provider>-<date>.csv per snapshot, the archive layout
// researchers shared with the authors. Since it satisfies the same
// interface the simulation engine streams into, the identical on-disk
// archive can also be produced without the HTTP hop by handing a
// dirSink straight to engine.Run.
type dirSink struct {
	dir string
}

var _ toplist.SnapshotSink = dirSink{}

func (s dirSink) path(provider string, day toplist.Day) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%s.csv", provider, day))
}

// has reports whether the snapshot is already on disk.
func (s dirSink) has(provider string, day toplist.Day) bool {
	_, err := os.Stat(s.path(provider, day))
	return err == nil
}

// Put writes one snapshot atomically (temp file + rename), so a
// crashed pass never leaves a partial CSV visible.
func (s dirSink) Put(provider string, day toplist.Day, list *toplist.List) error {
	path := s.path(provider, day)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = toplist.WriteCSV(f, list)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	return os.Rename(tmp, path)
}
