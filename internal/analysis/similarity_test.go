package analysis

import (
	"math"
	"testing"

	"repro/internal/providers"
	"repro/internal/toplist"
)

func TestSimilarityBetweenIdenticalLists(t *testing.T) {
	c := ctx(t)
	l := c.Arch.Get(providers.Alexa, 0).Top(headSize)
	s := c.SimilarityBetween(l, l, 0.99)
	if s.Tau < 0.999 || s.Rho < 0.999 {
		t.Errorf("identical lists: τ=%v ρ=%v", s.Tau, s.Rho)
	}
	if s.Footrule != 0 {
		t.Errorf("identical lists: footrule=%v", s.Footrule)
	}
	if math.Abs(s.RBO-1) > 1e-9 {
		t.Errorf("identical lists: RBO=%v", s.RBO)
	}
	if s.Common != l.Len() {
		t.Errorf("common = %d, want %d", s.Common, l.Len())
	}
}

func TestSimilarityNilListsDegrade(t *testing.T) {
	c := ctx(t)
	l := c.Arch.Get(providers.Alexa, 0)
	s := c.SimilarityBetween(nil, l, 0.99)
	if !math.IsNaN(s.Tau) || !math.IsNaN(s.RBO) {
		t.Errorf("nil list should yield NaN metrics, got %+v", s)
	}
}

func TestSimilarityDayToDayShape(t *testing.T) {
	c := ctx(t)
	days := c.Arch.Days()
	for _, prov := range []string{providers.Alexa, providers.Umbrella, providers.Majestic} {
		series := c.SimilarityDayToDay(prov, headSize, 0.99)
		if len(series) != days-1 {
			t.Fatalf("%s: %d readings, want %d", prov, len(series), days-1)
		}
		for i, s := range series {
			if !math.IsNaN(s.RBO) && (s.RBO < 0 || s.RBO > 1) {
				t.Fatalf("%s day %d: RBO out of range: %v", prov, i, s.RBO)
			}
			if !math.IsNaN(s.Footrule) && (s.Footrule < 0 || s.Footrule > 1) {
				t.Fatalf("%s day %d: footrule out of range: %v", prov, i, s.Footrule)
			}
		}
	}
}

func TestSimilarityMajesticMostStable(t *testing.T) {
	// The paper's Fig. 4 ordering: Majestic ≫ Alexa > Umbrella in
	// day-to-day order stability. The RBO reading must preserve it for
	// Majestic vs the other two (Alexa/Umbrella may tie).
	c := ctx(t)
	mean := func(prov string) float64 {
		return SimilaritySummary(c.SimilarityDayToDay(prov, headSize, 0.99)).RBO
	}
	maj, alexa, umb := mean(providers.Majestic), mean(providers.Alexa), mean(providers.Umbrella)
	if maj <= alexa || maj <= umb {
		t.Errorf("majestic RBO %v should exceed alexa %v and umbrella %v", maj, alexa, umb)
	}
}

func TestSimilarityCrossProviderBelowWithinProvider(t *testing.T) {
	c := ctx(t)
	within := SimilaritySummary(c.SimilarityDayToDay(providers.Alexa, headSize, 0.99)).RBO
	across := SimilaritySummary(
		c.SimilarityAcrossProviders(providers.Alexa, providers.Umbrella, headSize, 0.99)).RBO
	if across >= within {
		t.Errorf("cross-provider RBO %v should be far below within-provider %v", across, within)
	}
}

func TestSimilarityAgreesWithKendallPath(t *testing.T) {
	// The τ field of SimilarityBetween must match the dedicated
	// kendallBetween used by Fig. 4, on the same list pair.
	c := ctx(t)
	a := c.Arch.Get(providers.Alexa, 0).Top(headSize)
	b := c.Arch.Get(providers.Alexa, 1).Top(headSize)
	want := c.kendallBetween(a, b)
	got := c.SimilarityBetween(a, b, 0.99).Tau
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("τ = %v via Similarity, %v via kendallBetween", got, want)
	}
}

func TestCompressRanks(t *testing.T) {
	got := compressRanks([]int{907, 3, 55})
	want := []int{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("compressRanks = %v, want %v", got, want)
		}
	}
}

func TestSimilaritySummaryIgnoresNaN(t *testing.T) {
	series := []Similarity{
		{Tau: 0.5, Rho: 0.5, Footrule: 0.1, RBO: 0.9, Common: 10},
		{Tau: math.NaN(), Rho: math.NaN(), Footrule: math.NaN(), RBO: 0.7, Common: 0},
	}
	s := SimilaritySummary(series)
	if s.Tau != 0.5 || s.RBO != 0.8 || s.Common != 5 {
		t.Errorf("summary = %+v", s)
	}
	empty := SimilaritySummary(nil)
	if !math.IsNaN(empty.Tau) || !math.IsNaN(empty.RBO) {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestSimilarityHandlesDuplicateNamesInLists(t *testing.T) {
	// Lists with repeated names (possible in malformed input) must not
	// double-count common pairs.
	c := ctx(t)
	names := c.Arch.Get(providers.Alexa, 0).Top(10).Names()
	dup := append(append([]string{}, names...), names[0], names[1])
	a := toplist.New(dup)
	s := c.SimilarityBetween(a, a, 0.9)
	if s.Common > len(names) {
		t.Errorf("common = %d exceeds unique name count %d", s.Common, len(names))
	}
}
