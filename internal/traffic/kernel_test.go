package traffic

import (
	"testing"

	"repro/internal/toplist"
)

// assertKernelMatchesReference compares the kernel fill against the
// retained per-domain reference for every domain, bitwise.
func assertKernelMatchesReference(t *testing.T, m *Model, axis Axis, day int) {
	t.Helper()
	n := m.W.Len()
	got := make([]float64, n)
	m.kernelFor().signalRange(axis, day, toplist.Day(day).IsWeekend(), got, 0, n)
	weekend := toplist.Day(day).IsWeekend()
	for i := 0; i < n; i++ {
		want := m.domainSignal(&m.W.Domains[i], axis, day, weekend)
		if got[i] != want {
			t.Fatalf("axis %v day %d domain %d (%s, cat %v): kernel %v != reference %v",
				axis, day, i, m.W.Domains[i].Name, m.W.Domains[i].Category, got[i], want)
		}
	}
}

// TestKernelBitwiseEquivalence pins the precomputed kernel to the
// reference implementation across all axes and a day sweep that covers
// burn-in (negative days), weekends, weekly link-noise boundaries, and
// days late enough for births and deaths to have happened.
func TestKernelBitwiseEquivalence(t *testing.T) {
	m := buildModel(t)
	days := []int{-25, -8, -7, -1, 0, 1, 4, 5, 6, 7, 13, 14, 20, 27, 34}
	for _, axis := range []Axis{AxisWeb, AxisDNS, AxisLink} {
		for _, day := range days {
			assertKernelMatchesReference(t, m, axis, day)
		}
	}
}

// TestKernelRebuildsOnParamChange: mutating a Model scalar after the
// kernel was built must not serve stale invariants — the fingerprint
// check rebuilds transparently.
func TestKernelRebuildsOnParamChange(t *testing.T) {
	m := buildModel(t)
	n := m.W.Len()
	before := make([]float64, n)
	m.SignalRange(AxisDNS, 9, before, 0, n)

	m.DeadDNSFactor = 0.05
	m.SigmaDNS = 0.2
	assertKernelMatchesReference(t, m, AxisDNS, 9)

	// And flipping back reproduces the original output exactly.
	m.DeadDNSFactor = 0.3
	m.SigmaDNS = 0.02
	after := make([]float64, n)
	m.SignalRange(AxisDNS, 9, after, 0, n)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("domain %d: signal drifted after param round-trip: %v vs %v", i, before[i], after[i])
		}
	}
}

// TestDisableKernelMatchesKernel: the DisableKernel switch selects the
// reference path and both paths agree through the public API.
func TestDisableKernelMatchesKernel(t *testing.T) {
	m := buildModel(t)
	kern := m.Signal(AxisWeb, 12, nil)
	m.DisableKernel = true
	ref := m.Signal(AxisWeb, 12, nil)
	m.DisableKernel = false
	for i := range kern {
		if kern[i] != ref[i] {
			t.Fatalf("domain %d: kernel %v != reference %v", i, kern[i], ref[i])
		}
	}
}
