// Package fleet composes the per-node replication pieces — the
// versioned /archive/v1 wire API, persisted-hash ETags and conditional
// requests, DiskStore.Verify, and raw byte copies — into a
// self-healing archive fleet: every node runs a Mirror that
// continuously replicates archive-to-archive from a PeerSet, any
// member of which may be down, lagging, or serving corrupted slots,
// and all surviving nodes converge to byte-identical archives.
//
// The package is deliberately thin glue: health tracking and failover
// live in PeerSet, the sync/heal loops in Mirror, and everything else
// — conditional revalidation, retry with jittered backoff, corrupt
// refusal, decode-validated byte copies — is the toplist wire client
// and DiskStore doing what they already do.
package fleet

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/toplist"
)

// Peer is one archive server a Mirror replicates from, with its health
// state: consecutive failures and the jittered-backoff deadline before
// it is tried again. A peer in backoff is simply skipped — a dead or
// flapping peer never stalls the sync loop, it just stops being asked
// until its backoff expires.
type Peer struct {
	url string
	set *PeerSet

	mu       sync.Mutex
	remote   *toplist.Remote
	failures int
	until    time.Time // in backoff until this instant
}

// URL returns the peer's base URL.
func (p *Peer) URL() string { return p.url }

// Failures returns the peer's consecutive-failure count (0 = healthy).
func (p *Peer) Failures() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failures
}

// Remote returns the peer's wire client, opening it lazily on first
// use. An open failure counts against the peer's health (the manifest
// fetch inside OpenRemote is the probe); the next attempt after the
// backoff expires retries the open.
func (p *Peer) Remote(ctx context.Context) (*toplist.Remote, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.remote != nil {
		return p.remote, nil
	}
	rem, err := toplist.OpenRemote(ctx, p.url, p.set.remoteOpts...)
	if err != nil {
		p.failLocked()
		return nil, err
	}
	p.okLocked()
	p.remote = rem
	return rem, nil
}

// fail records one failed interaction: the consecutive-failure count
// grows and the peer enters jittered exponential backoff
// (base<<(failures-1), capped, ±50% decorrelation — the same shape the
// wire client uses between retries, applied here between whole
// conversations).
// MarkFailed records an externally observed failure against the peer,
// advancing its backoff exactly as the set's own fetch path would. The
// shard coordinator uses it to fold worker-RPC outcomes into the same
// health state that drives healthiest-first assignment.
func (p *Peer) MarkFailed() { p.fail() }

// MarkOK records an externally observed success, clearing the peer's
// failure count and backoff window. Counterpart of MarkFailed.
func (p *Peer) MarkOK() { p.ok() }

func (p *Peer) fail() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failLocked()
}

func (p *Peer) failLocked() {
	p.failures++
	d := p.set.baseBackoff << (p.failures - 1)
	if d > p.set.maxBackoff || d <= 0 { // <=0: shift overflow
		d = p.set.maxBackoff
	}
	d = time.Duration(float64(d) * (0.5 + p.set.jitter()))
	p.until = p.set.now().Add(d)
	if p.set.onFail != nil {
		p.set.onFail(p.url)
	}
}

// ok records one successful conversation, resetting the peer's health.
func (p *Peer) ok() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.okLocked()
}

func (p *Peer) okLocked() {
	p.failures = 0
	p.until = time.Time{}
}

// available reports whether the peer is out of backoff at now.
func (p *Peer) available(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !now.Before(p.until)
}

// PeerSet is a fixed set of archive-server peers with per-peer health
// tracking. It is safe for concurrent use.
type PeerSet struct {
	peers       []*Peer
	baseBackoff time.Duration
	maxBackoff  time.Duration
	jitter      func() float64
	now         func() time.Time
	remoteOpts  []toplist.RemoteOption
	onFail      func(url string) // Mirror's failure counter hook
}

// PeerOption configures NewPeerSet.
type PeerOption func(*PeerSet)

// WithPeerBackoff sets the backoff window for a failing peer: the
// first failure backs off ~base, doubling per consecutive failure up
// to max (defaults 1s and 2m).
func WithPeerBackoff(base, max time.Duration) PeerOption {
	return func(ps *PeerSet) {
		if base > 0 {
			ps.baseBackoff = base
		}
		if max > 0 {
			ps.maxBackoff = max
		}
	}
}

// WithPeerRemoteOptions passes opts to every OpenRemote the set
// performs (HTTP client, retry budget, cache size).
func WithPeerRemoteOptions(opts ...toplist.RemoteOption) PeerOption {
	return func(ps *PeerSet) { ps.remoteOpts = append(ps.remoteOpts, opts...) }
}

// NewPeerSet builds a set over the given base URLs (duplicates are
// dropped). At least one peer is required — a mirror with nothing to
// mirror from is a configuration error worth failing loudly.
func NewPeerSet(urls []string, opts ...PeerOption) (*PeerSet, error) {
	ps := &PeerSet{
		baseBackoff: time.Second,
		maxBackoff:  2 * time.Minute,
		jitter:      rand.Float64,
		now:         time.Now,
	}
	for _, o := range opts {
		o(ps)
	}
	seen := make(map[string]bool)
	for _, u := range urls {
		u = normalizeURL(u)
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		ps.peers = append(ps.peers, &Peer{url: u, set: ps})
	}
	if len(ps.peers) == 0 {
		return nil, errors.New("fleet: peer set needs at least one peer URL")
	}
	return ps, nil
}

func normalizeURL(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// Peers returns every peer, healthy or not, in configuration order.
func (ps *PeerSet) Peers() []*Peer { return append([]*Peer(nil), ps.peers...) }

// Available returns the peers currently out of backoff, healthiest
// first (fewest consecutive failures; configuration order breaks
// ties). This is the failover order: callers walk it until one peer
// answers.
func (ps *PeerSet) Available() []*Peer {
	now := ps.now()
	var out []*Peer
	for _, p := range ps.peers {
		if p.available(now) {
			out = append(out, p)
		}
	}
	// Insertion sort: peer sets are tiny and the sort must be stable.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Failures() < out[j-1].Failures(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Revalidate conditionally refreshes every available peer's manifest
// (opening clients lazily), so later FetchRaw calls see each peer's
// current day range and provider set — the cheap pre-pass a gap-filler
// runs once per collection round. Failures are recorded against the
// peers and otherwise ignored; a 304 costs nothing and changes
// nothing.
func (ps *PeerSet) Revalidate(ctx context.Context) {
	for _, p := range ps.Available() {
		if ctx.Err() != nil {
			return
		}
		rem, err := p.Remote(ctx)
		if err != nil {
			continue // Remote already recorded the failure
		}
		if _, err := rem.Revalidate(ctx); err != nil {
			p.fail()
			continue
		}
		p.ok()
	}
}

// FetchRaw fetches one snapshot document from the healthiest peer that
// holds it, failing over peer by peer. When wantHash is non-empty, a
// copy whose content hash matches is preferred — the heal path passes
// the local persisted hash, so a peer serving the byte-identical
// document wins over one serving a different (re-encoded or stale)
// copy — but any decodable copy is returned as a fallback when no peer
// matches. Returns (nil, nil, nil) when no available peer has the
// slot; per-peer failures are recorded against the peers, not
// surfaced, unless ctx itself is done.
func (ps *PeerSet) FetchRaw(ctx context.Context, provider string, day toplist.Day, wantHash string) (*toplist.RawSnapshot, *Peer, error) {
	var fallback *toplist.RawSnapshot
	var fallbackPeer *Peer
	for _, p := range ps.Available() {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		rem, err := p.Remote(ctx)
		if err != nil {
			continue // Remote already recorded the failure
		}
		raw, err := rem.GetRawContext(ctx, provider, day)
		if err != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			if isCorruptRefusal(err) {
				// The peer is up but refuses this one slot (its copy is
				// corrupt): a slot-level verdict, not peer-level trouble.
				continue
			}
			p.fail()
			continue
		}
		if raw == nil {
			continue // the peer has the same gap
		}
		p.ok()
		if wantHash == "" || raw.Hash == wantHash {
			return raw, p, nil
		}
		if fallback == nil {
			fallback, fallbackPeer = raw, p
		}
	}
	return fallback, fallbackPeer, nil
}

// isCorruptRefusal reports whether err is an archive server refusing a
// corrupt slot (the raw fast path's plain 500 — final by protocol).
func isCorruptRefusal(err error) bool {
	var se *toplist.RemoteStatusError
	return errors.As(err, &se) && se.Code == http.StatusInternalServerError
}
