// Quickstart: simulate the top-list ecosystem at test scale, look at a
// snapshot, and quantify the paper's headline instability finding.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	scale := toplists.TestScale()
	scale.Population.Days = 21 // three weeks is enough for a first look
	scale.BurnInDays = 30

	study, err := toplists.Simulate(context.Background(), toplists.WithScale(scale))
	if err != nil {
		log.Fatal(err)
	}

	// Day 0: the three lists disagree even at the very top.
	fmt.Println("=== day-0 top 10 per provider ===")
	for _, p := range study.Providers() {
		fmt.Printf("%-9s:", p)
		for _, name := range study.ListNames(p, 0, true)[:10] {
			fmt.Printf(" %s", name)
		}
		fmt.Println()
	}

	// Daily churn: how much of each list is replaced day over day?
	fmt.Println("\n=== mean daily churn (domains removed per day) ===")
	for _, p := range study.Providers() {
		removed := study.Analysis.DailyRemoved(p, 0)
		sum := 0
		for _, r := range removed {
			sum += r
		}
		mean := float64(sum) / float64(len(removed))
		fmt.Printf("%-9s: %6.0f of %d (%.1f%%)\n",
			p, mean, scale.ListSize, 100*mean/float64(scale.ListSize))
	}

	fmt.Println("\nNext: examples/stability, examples/bias, examples/manipulate.")
}
