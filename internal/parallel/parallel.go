// Package parallel provides the small deterministic fan-out primitives
// the concurrent simulation engine is built from: contiguous range
// sharding (For) and independent task groups (Do). Shard boundaries
// depend only on (workers, n), never on scheduling, so callers that
// merge per-shard partial results in shard order get run-to-run
// deterministic output.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: values < 1 mean "use
// GOMAXPROCS", anything else is returned unchanged.
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Shard returns the half-open range [lo, hi) of the i-th of workers
// contiguous shards over n items. Shards differ in size by at most one
// and depend only on (workers, n, i).
func Shard(workers, n, i int) (lo, hi int) {
	q, r := n/workers, n%workers
	lo = i*q + min(i, r)
	hi = lo + q
	if i < r {
		hi++
	}
	return lo, hi
}

// For splits [0, n) into at most workers contiguous shards and runs fn
// on each concurrently, returning when all shards are done. With
// workers <= 1 (or n too small to split) fn runs inline over the whole
// range, making the serial reference path allocation- and
// scheduling-free.
func For(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for i := 1; i < workers; i++ {
		lo, hi := Shard(workers, n, i)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	lo, hi := Shard(workers, n, 0)
	fn(lo, hi)
	wg.Wait()
}

// Do runs the given tasks concurrently and returns when all are done.
// With one task (or fewer) it runs inline.
func Do(tasks ...func()) {
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks) - 1)
	for _, t := range tasks[1:] {
		go func() {
			defer wg.Done()
			t()
		}()
	}
	tasks[0]()
	wg.Wait()
}
