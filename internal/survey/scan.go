package survey

import "strings"

// The survey's keywords (paper footnote 2).
var keywords = []string{"alexa", "umbrella", "majestic"}

// Scan returns the IDs of papers whose text matches any keyword,
// case-insensitively — the paper's automated first pass.
func Scan(corpus []Paper) []int {
	var out []int
	for _, p := range corpus {
		text := strings.ToLower(p.Title + " " + p.Body)
		for _, kw := range keywords {
			if strings.Contains(text, kw) {
				out = append(out, p.ID)
				break
			}
		}
	}
	return out
}

// FilterFalsePositives drops keyword matches that context rules
// identify as non-uses: the Amazon Alexa assistant, substring matches
// inside longer words (Alexander, Alexandria), umbrella sampling, and
// venue names. This corresponds to the paper's manual removal of false
// positives.
func FilterFalsePositives(corpus []Paper, ids []int) []int {
	byID := make(map[int]*Paper, len(corpus))
	for i := range corpus {
		byID[corpus[i].ID] = &corpus[i]
	}
	var out []int
	for _, id := range ids {
		p := byID[id]
		if p == nil {
			continue
		}
		if hasGenuineMatch(strings.ToLower(p.Title + " " + p.Body)) {
			out = append(out, id)
		}
	}
	return out
}

// hasGenuineMatch applies the context rules to every keyword
// occurrence.
func hasGenuineMatch(text string) bool {
	for _, kw := range keywords {
		for idx := 0; ; {
			j := strings.Index(text[idx:], kw)
			if j < 0 {
				break
			}
			pos := idx + j
			idx = pos + len(kw)
			if genuineAt(text, pos, kw) {
				return true
			}
		}
	}
	return false
}

func genuineAt(text string, pos int, kw string) bool {
	end := pos + len(kw)
	// Whole-word check: reject Alexander/Alexandria-style substrings.
	if end < len(text) && isWordChar(text[end]) {
		return false
	}
	if pos > 0 && isWordChar(text[pos-1]) {
		return false
	}
	before := text[:pos]
	after := text[end:]
	switch kw {
	case "alexa":
		// The Amazon voice assistant.
		if strings.HasSuffix(before, "amazon ") || strings.HasPrefix(after, " skill") ||
			strings.HasPrefix(after, " home assistant") || strings.HasPrefix(after, " echo") {
			return false
		}
	case "umbrella":
		// Statistical-physics umbrella sampling.
		if strings.HasPrefix(after, " sampling") {
			return false
		}
	case "majestic":
		// Venues, hotels.
		if strings.HasPrefix(after, " hotel") {
			return false
		}
	}
	return true
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}

// ManualReview keeps only candidates whose ground-truth annotation
// confirms actual list use — the paper's final manual inspection, which
// also removed papers that merely mention a list without using it.
func ManualReview(corpus []Paper, ids []int) []int {
	byID := make(map[int]bool, len(corpus))
	for _, p := range corpus {
		byID[p.ID] = p.UsesTopList
	}
	var out []int
	for _, id := range ids {
		if byID[id] {
			out = append(out, id)
		}
	}
	return out
}

// Pipeline runs the full survey: scan, filter, review. It returns the
// intermediate candidate counts for reporting.
func Pipeline(corpus []Paper) (used []int, scanned, filtered int) {
	s := Scan(corpus)
	f := FilterFalsePositives(corpus, s)
	u := ManualReview(corpus, f)
	return u, len(s), len(f)
}
