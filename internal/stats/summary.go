// Package stats implements the statistical machinery the paper relies
// on: descriptive summaries, empirical CDFs, the two-sample
// Kolmogorov–Smirnov distance (§6.2), Kendall's τ-b rank correlation
// (§6.3), and set/churn utilities for list comparison.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs (0 for fewer than
// two values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanStd returns both the mean and population standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), Std(xs)
}

// Median returns the median of xs (0 for empty input). xs is not
// modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs using linear interpolation
// between order statistics. q is clamped to [0, 1]; empty input yields 0.
// xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MinMax returns the minimum and maximum of xs; (0, 0) for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// IntsToFloats converts an int slice for use with the float summaries.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
