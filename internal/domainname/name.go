// Package domainname implements DNS name parsing as used by the paper's
// analyses: public-suffix-aware base-domain extraction, subdomain depth,
// TLD validity against an IANA-style registry, and SLD grouping.
//
// Terminology follows the paper (§5): for www.net.in.tum.de, "de" is the
// public suffix (and TLD), "tum.de" is the base domain, and the name is a
// third-level subdomain (depth 3). The SLD (second-level domain) group of
// a name is the label left of its public suffix ("tum").
package domainname

import (
	"fmt"
	"strings"
)

// Name is a parsed domain name.
type Name struct {
	// FQDN is the normalised (lower-case, no trailing dot) input.
	FQDN string
	// Labels are the DNS labels, least significant (TLD) last.
	Labels []string
	// TLD is the rightmost label.
	TLD string
	// PublicSuffix is the effective TLD per the embedded PSL (may span
	// multiple labels, e.g. "co.uk").
	PublicSuffix string
	// Base is the base domain (public suffix plus one label,
	// a.k.a. eTLD+1). Empty if the name is itself a public suffix.
	Base string
	// SLD is the label immediately left of the public suffix.
	SLD string
	// Depth is the subdomain depth below the base domain: 0 for a base
	// domain, 1 for a first-level subdomain, and so on.
	Depth int
	// ValidTLD reports whether TLD is in the embedded registry of
	// delegated TLDs.
	ValidTLD bool
}

// Parse normalises and parses a domain name. It rejects empty names,
// names with empty labels, and syntactically invalid labels; it accepts
// (and strips) one trailing dot.
func Parse(s string) (Name, error) {
	n := strings.ToLower(strings.TrimSpace(s))
	n = strings.TrimSuffix(n, ".")
	if n == "" {
		return Name{}, fmt.Errorf("domainname: empty name")
	}
	if len(n) > 253 {
		return Name{}, fmt.Errorf("domainname: name exceeds 253 octets: %q", s)
	}
	labels := strings.Split(n, ".")
	for _, l := range labels {
		if err := checkLabel(l); err != nil {
			return Name{}, fmt.Errorf("domainname: %q: %w", s, err)
		}
	}
	out := Name{FQDN: n, Labels: labels, TLD: labels[len(labels)-1]}
	out.ValidTLD = IsValidTLD(out.TLD)
	suffixLabels := publicSuffixLabels(labels)
	out.PublicSuffix = strings.Join(labels[len(labels)-suffixLabels:], ".")
	if len(labels) > suffixLabels {
		out.Base = strings.Join(labels[len(labels)-suffixLabels-1:], ".")
		out.SLD = labels[len(labels)-suffixLabels-1]
		out.Depth = len(labels) - suffixLabels - 1
	}
	return out, nil
}

// MustParse is Parse for known-good inputs; it panics on error.
func MustParse(s string) Name {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

func checkLabel(l string) error {
	if l == "" {
		return fmt.Errorf("empty label")
	}
	if len(l) > 63 {
		return fmt.Errorf("label exceeds 63 octets: %q", l)
	}
	for i := 0; i < len(l); i++ {
		c := l[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '-' || c == '_':
			// Underscore occurs in real DNS traffic (service labels,
			// misconfigured hosts); the paper's lists contain such names.
			if c == '-' && (i == 0 || i == len(l)-1) {
				return fmt.Errorf("label begins or ends with hyphen: %q", l)
			}
		default:
			return fmt.Errorf("invalid character %q in label %q", c, l)
		}
	}
	return nil
}

// BaseOf returns the base domain of s, or s itself if s is already a
// public suffix or unparseable. Convenient for bulk normalisation.
func BaseOf(s string) string {
	n, err := Parse(s)
	if err != nil {
		return s
	}
	if n.Base == "" {
		return n.FQDN
	}
	return n.Base
}

// DepthOf returns the subdomain depth of s, or 0 if unparseable.
func DepthOf(s string) int {
	n, err := Parse(s)
	if err != nil {
		return 0
	}
	return n.Depth
}

// SLDGroup returns the paper's §6.2 grouping key for a name: the label
// left of the public suffix, with all blogspot.* variants collapsed into
// the single group "blogspot" (the paper groups blogspot country domains
// together). Empty for public suffixes and unparseable names.
func SLDGroup(s string) string {
	n, err := Parse(s)
	if err != nil {
		return ""
	}
	if n.SLD == "blogspot" || strings.HasPrefix(n.PublicSuffix, "blogspot.") {
		return "blogspot"
	}
	return n.SLD
}
