package toplist

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
)

// This file defines the raw read side of the serving fast path: a
// Source that can hand out the stored snapshot document — the gzip CSV
// bytes a DiskStore keeps on disk — without decompressing it, plus the
// content-hash convention that lets a server answer conditional
// requests for those bytes without ever decoding them. The archive
// server (internal/archived) probes for RawSource and, when present,
// serves snapshots as a plain byte copy instead of a decode+re-encode
// round trip.

// ErrCorruptSnapshot marks a raw read of a slot whose stored bytes are
// known not to decode — memoized by a failed Get, flagged by Verify,
// or caught by the persisted-hash check at read time. Raw readers must
// treat it as "refuse to serve", never as "serve what is there": the
// whole point of hashing is that raw serving cannot 200-with-garbage.
var ErrCorruptSnapshot = errors.New("toplist: snapshot is corrupt")

// RawSnapshot is one stored snapshot document: the exact gzip CSV
// bytes on disk (and on the wire — the archive API serves snapshot
// documents verbatim) plus their content hash.
type RawSnapshot struct {
	Data []byte // gzip-compressed CSV, as stored
	Hash string // ContentHash(Data)
}

// RawSource is the optional fast-path extension of Source: a store
// that can serve its snapshot documents as raw bytes. DiskStore
// implements it; in-memory archives and gatekept views do not (they
// have no stored bytes), and consumers fall back to encoding from the
// decoded list.
//
// Both methods must be safe for concurrent use, like Source.
type RawSource interface {
	Source
	// RawHash returns the content hash persisted for the slot at write
	// time, or "" when the slot is absent or predates persisted hashes
	// — the no-I/O probe a server keys its conditional requests and
	// blob cache on.
	RawHash(provider string, day Day) string
	// GetRaw returns the stored document and its hash. A (nil, nil)
	// return means "no raw bytes to serve" (absent, or no persisted
	// hash to validate against) and the caller should fall back to the
	// decode path. An error wrapping ErrCorruptSnapshot means the slot
	// is present but must not be served.
	GetRaw(provider string, day Day) (*RawSnapshot, error)
}

// DecodeSnapshot decodes one stored snapshot document — the gzip CSV
// bytes a RawSnapshot carries — back into a List. It is the exact
// decode Get runs on a stored file and PutRaw runs for validation;
// blob backends (internal/pack) use it so "does this document decode"
// has one definition everywhere bytes are trusted.
func DecodeSnapshot(data []byte) (*List, error) {
	return decodeSnapshotDoc(data)
}

// ContentHash returns the hex content hash of a stored snapshot
// document: the first 16 bytes of its SHA-256. It is persisted in the
// DiskStore manifest at Put time and, quoted, is the wire ETag — the
// two ends of the fast path agree on bytes by agreeing on this value.
func ContentHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}
