package pack

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/toplist"
)

// Write packs every snapshot src holds into a single archive file at
// path: header, concatenated per-(provider,day) gzip CSV blobs in
// provider insertion order (days ascending within a provider), then
// the central directory and footer. The write is atomic — the file is
// built as path+".tmp" and renamed into place only after everything,
// directory included, is durably written — so a crashed pack never
// leaves a half-file that Open might trust.
//
// When src is a toplist.RawSource (a DiskStore, a Remote, another
// Pack), each blob is the source's stored document taken verbatim with
// its persisted content hash — no decode, no re-encode — after
// re-hashing the bytes in hand: a mismatch between bytes and claimed
// hash aborts the pack rather than baking corruption into an archive
// whose whole point is end-to-end verifiability. Slots without raw
// bytes (hashless v1-upgrade slots, plain in-memory archives) fall
// back to encoding the decoded list with the same deterministic
// encoder a DiskStore Put uses, so the packed bytes are identical
// either way. A slot the source refuses as corrupt
// (toplist.ErrCorruptSnapshot) aborts the pack; absent slots are
// simply skipped, mirroring the gaps of the source.
func Write(path string, src toplist.Source) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = writePack(f, src)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	return os.Rename(tmp, path)
}

func writePack(f *os.File, src toplist.Source) error {
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.Write(packMagic[:]); err != nil {
		return err
	}
	dir := directory{
		Version:   directoryVersion,
		FirstDay:  src.First().String(),
		LastDay:   src.Last().String(),
		Providers: src.Providers(),
	}
	if sc, ok := src.(interface{ Scale() string }); ok {
		dir.Scale = sc.Scale()
	}
	if ex, ok := src.(interface{ Expected() []string }); ok {
		dir.Expected = ex.Expected()
	}
	if dir.Providers == nil {
		dir.Providers = []string{}
	}

	raw, _ := src.(toplist.RawSource)
	offset := int64(headerSize)
	var encodeBuf bytes.Buffer
	for _, provider := range dir.Providers {
		for day := src.First(); day <= src.Last(); day++ {
			data, hash, err := snapshotDoc(src, raw, &encodeBuf, provider, day)
			if err != nil {
				return err
			}
			if data == nil {
				continue // absent slot: the pack keeps the gap
			}
			if _, err := bw.Write(data); err != nil {
				return err
			}
			dir.Snapshots = append(dir.Snapshots, record{
				Provider: provider,
				Day:      day.String(),
				Offset:   offset,
				Length:   int64(len(data)),
				Hash:     hash,
			})
			offset += int64(len(data))
		}
	}
	if dir.Snapshots == nil {
		dir.Snapshots = []record{}
	}

	rawDir, err := json.Marshal(&dir)
	if err != nil {
		return err
	}
	if _, err := bw.Write(rawDir); err != nil {
		return err
	}
	dirHash := sha256.Sum256(rawDir)
	var hash16 [16]byte
	copy(hash16[:], dirHash[:16])
	if _, err := bw.Write(encodeFooter(offset, int64(len(rawDir)), hash16)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The rename that publishes the file must not beat the data to the
	// platters: sync before the caller renames.
	return f.Sync()
}

// snapshotDoc produces one slot's blob bytes and content hash: the
// source's stored document when raw bytes exist (verified against the
// claimed hash), a deterministic encode of the decoded list otherwise,
// nil for an absent slot.
func snapshotDoc(src toplist.Source, raw toplist.RawSource, buf *bytes.Buffer, provider string, day toplist.Day) ([]byte, string, error) {
	if raw != nil {
		rs, err := raw.GetRaw(provider, day)
		if err != nil {
			return nil, "", fmt.Errorf("pack: %s %v: %w", provider, day, err)
		}
		if rs != nil {
			if got := toplist.ContentHash(rs.Data); got != rs.Hash {
				return nil, "", fmt.Errorf("pack: %s %v: raw bytes hash %s, source claims %s: refusing to pack", provider, day, got, rs.Hash)
			}
			return rs.Data, rs.Hash, nil
		}
		// No raw bytes for this slot (absent, or no persisted hash):
		// fall through to the decode path, which settles which it is.
	}
	l := src.Get(provider, day)
	if l == nil {
		return nil, "", nil
	}
	buf.Reset()
	zw := gzip.NewWriter(buf)
	err := toplist.WriteCSV(zw, l)
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, "", fmt.Errorf("pack: encode %s %v: %w", provider, day, err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	return data, toplist.ContentHash(data), nil
}
