package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/parallel"
	"repro/internal/population"
	"repro/internal/providers"
	"repro/internal/serve"
	"repro/internal/traffic"
)

// Protocol constants for the /shard/v1 worker API. Same idiom as
// /archive/v1: the version lives in the path, a worker refuses jobs
// from a different protocol, and every partial-result payload is
// content-hashed (see wire.go).
const (
	// ProtocolVersion is the wire protocol generation; bump on any
	// incompatible change to the job spec, routes, or frame format.
	ProtocolVersion = 1
	// APIPrefix is the path prefix every worker route lives under.
	APIPrefix = "/shard/v1"
)

// maxRequestBody caps how much of a frame-carrying HTTP body either
// side will buffer. A frame for the default experiment scale (250k
// records, one shard, three providers) is ~6 MB; 1 GiB leaves room for
// populations two orders of magnitude larger while still bounding a
// hostile Content-Length.
const maxRequestBody int64 = 1 << 30

// session is one shard assignment: a stepper plus replay state.
type session struct {
	mu      sync.Mutex
	stepper *providers.ShardStepper
	seeded  bool
	// last successfully stepped day and its encoded frame, kept for
	// idempotent replay: a coordinator that timed out waiting for a
	// step response retries it, and must get the same bytes back
	// instead of double-stepping the shard.
	lastDay   int
	lastFrame []byte
}

// world is a cached deterministic rebuild, keyed by population config.
type world struct {
	key   string
	model *traffic.Model
}

// Worker executes shard assignments for coordinators: it rebuilds the
// world described by a job, steps a providers.ShardStepper per session,
// and serves partial-result frames. All state is in-memory; a worker
// that restarts simply loses its sessions and the coordinator reseeds
// elsewhere (that failover is what TestDistributedEquivalence and
// scripts/shard-chaos.sh kill workers to prove).
type Worker struct {
	logger    *log.Logger
	maxWorlds int

	mu       sync.Mutex
	worlds   []*world // FIFO cache, newest last
	sessions map[string]*session
	nextID   uint64

	// metrics; registered on a private throwaway registry unless
	// WithWorkerMetrics points them at the daemon's.
	sessionsOpened *serve.Counter
	daysStepped    *serve.Counter
	framesRejected *serve.Counter
}

// WorkerOption configures a Worker.
type WorkerOption func(*Worker)

// WithWorkerLogger routes worker logs (default: discarded).
func WithWorkerLogger(l *log.Logger) WorkerOption {
	return func(w *Worker) { w.logger = l }
}

// WithWorkerMetrics registers the worker's counters on m:
// shard_sessions_opened_total, shard_days_stepped_total, and
// shard_frames_rejected_total.
func WithWorkerMetrics(m *serve.Metrics) WorkerOption {
	return func(w *Worker) {
		w.sessionsOpened = m.Counter("shard_sessions_opened_total",
			"Shard sessions opened by coordinators.")
		w.daysStepped = m.Counter("shard_days_stepped_total",
			"Shard-days stepped across all sessions.")
		w.framesRejected = m.Counter("shard_frames_rejected_total",
			"Seed frames rejected (malformed, hash mismatch, or out of protocol).")
	}
}

// WithMaxWorlds bounds the worker's world cache (default 4). Each
// cached world holds a full population + model; sessions keep their
// model alive regardless of eviction, so shrinking the cache is always
// safe.
func WithMaxWorlds(n int) WorkerOption {
	return func(w *Worker) {
		if n > 0 {
			w.maxWorlds = n
		}
	}
}

// NewWorker returns an idle worker.
func NewWorker(opts ...WorkerOption) *Worker {
	w := &Worker{
		logger:    log.New(io.Discard, "", 0),
		maxWorlds: 4,
		sessions:  make(map[string]*session),
	}
	WithWorkerMetrics(serve.NewMetrics())(w)
	for _, o := range opts {
		o(w)
	}
	return w
}

// Mount registers the /shard/v1 routes on mux.
func (w *Worker) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET "+APIPrefix+"/manifest", w.handleManifest)
	mux.HandleFunc("POST "+APIPrefix+"/open", w.handleOpen)
	mux.HandleFunc("POST "+APIPrefix+"/seed/{session}", w.handleSeed)
	mux.HandleFunc("POST "+APIPrefix+"/step/{session}/{day}", w.handleStep)
	mux.HandleFunc("DELETE "+APIPrefix+"/session/{session}", w.handleClose)
}

// modelFor returns the cached model for cfg, building (and caching) it
// on miss. Builds run outside the lock would be nicer, but worlds are
// only built once per job spec and coordinators open sessions
// sequentially per worker, so the simple critical section wins.
func (w *Worker) modelFor(cfg population.Config) (*traffic.Model, error) {
	key := fingerprintJSON(cfg)
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, cached := range w.worlds {
		if cached.key == key {
			return cached.model, nil
		}
	}
	pop, err := population.Build(cfg)
	if err != nil {
		return nil, err
	}
	m := traffic.NewModel(pop)
	w.worlds = append(w.worlds, &world{key: key, model: m})
	if len(w.worlds) > w.maxWorlds {
		w.worlds = w.worlds[1:]
	}
	return m, nil
}

func fingerprintJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// OpenRequest is the POST /shard/v1/open body.
type OpenRequest struct {
	Job   Job `json:"job"`
	Shard struct {
		Index int `json:"index"`
		Count int `json:"count"`
	} `json:"shard"`
}

// OpenResponse is the open reply: the session ID to step against and
// the record range the shard covers (informative — the coordinator
// computed the same boundaries from the same pure function).
type OpenResponse struct {
	Session string `json:"session"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
}

// ManifestResponse describes the worker for health checks.
type ManifestResponse struct {
	Protocol int `json:"protocol"`
	Sessions int `json:"sessions"`
}

func (w *Worker) handleManifest(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	n := len(w.sessions)
	w.mu.Unlock()
	writeJSON(rw, ManifestResponse{Protocol: ProtocolVersion, Sessions: n})
}

func (w *Worker) handleOpen(rw http.ResponseWriter, r *http.Request) {
	var req OpenRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(rw, "bad open request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.Job.Validate(); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	m, err := w.modelFor(req.Job.Population)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if got := m.Fingerprint(); got != req.Job.Model {
		// The worker's build produces different model parameters than
		// the coordinator's: stepping would yield a silently different
		// archive, so refuse loudly instead.
		http.Error(rw, fmt.Sprintf("shard: model fingerprint mismatch: worker %s, job %s", got, req.Job.Model),
			http.StatusBadRequest)
		return
	}
	count, index := req.Shard.Count, req.Shard.Index
	if count < 1 || index < 0 || index >= count {
		http.Error(rw, fmt.Sprintf("shard: bad shard %d/%d", index, count), http.StatusBadRequest)
		return
	}
	n := m.W.Len()
	lo, hi := shardBounds(count, n, index)
	stepper, err := providers.NewShardStepper(m, req.Job.Options(), lo, hi)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	w.nextID++
	id := fmt.Sprintf("s%d", w.nextID)
	w.sessions[id] = &session{stepper: stepper}
	w.mu.Unlock()
	w.sessionsOpened.Add(1)
	w.logger.Printf("shard: opened session %s shard %d/%d [%d, %d)", id, index, count, lo, hi)
	writeJSON(rw, OpenResponse{Session: id, Lo: lo, Hi: hi})
}

func (w *Worker) session(rw http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("session")
	w.mu.Lock()
	s := w.sessions[id]
	w.mu.Unlock()
	if s == nil {
		http.Error(rw, "shard: no such session "+id, http.StatusNotFound)
	}
	return s
}

func (w *Worker) handleSeed(rw http.ResponseWriter, r *http.Request) {
	s := w.session(rw, r)
	if s == nil {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		http.Error(rw, "shard: reading seed: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > maxRequestBody {
		http.Error(rw, "shard: seed frame too large", http.StatusRequestEntityTooLarge)
		return
	}
	frame, err := Decode(body)
	if err != nil {
		w.framesRejected.Add(1)
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	lo, hi := s.stepper.Bounds()
	if frame.Lo != lo || frame.Hi != hi {
		w.framesRejected.Add(1)
		http.Error(rw, fmt.Sprintf("shard: seed range [%d, %d), session holds [%d, %d)",
			frame.Lo, frame.Hi, lo, hi), http.StatusBadRequest)
		return
	}
	for _, fd := range frame.Fields {
		if err := s.stepper.Seed(fd.Provider, fd.Values); err != nil {
			w.framesRejected.Add(1)
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
	}
	s.stepper.SetState(frame.Day, frame.Started)
	s.seeded = true
	s.lastDay = frame.Day
	s.lastFrame = nil
	rw.WriteHeader(http.StatusNoContent)
}

func (w *Worker) handleStep(rw http.ResponseWriter, r *http.Request) {
	s := w.session(rw, r)
	if s == nil {
		return
	}
	day, err := strconv.Atoi(r.PathValue("day"))
	if err != nil {
		http.Error(rw, "shard: bad day: "+r.PathValue("day"), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.seeded {
		http.Error(rw, "shard: session not seeded", http.StatusConflict)
		return
	}
	if day == s.lastDay && s.lastFrame != nil {
		// Idempotent replay: the coordinator lost our response and
		// retried. Return the cached bytes — never re-step.
		rw.Header().Set("Content-Type", "application/octet-stream")
		rw.Write(s.lastFrame)
		return
	}
	if day != s.lastDay+1 {
		http.Error(rw, fmt.Sprintf("shard: out-of-order step: want day %d, got %d", s.lastDay+1, day),
			http.StatusConflict)
		return
	}
	s.stepper.Step(day)
	lo, hi := s.stepper.Bounds()
	frame := &Frame{Day: day, Lo: lo, Hi: hi, Started: true}
	for _, p := range s.stepper.Providers() {
		frame.Fields = append(frame.Fields, Field{Provider: p, Values: s.stepper.Partial(p)})
	}
	out, err := frame.Encode()
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	s.lastDay = day
	s.lastFrame = out
	w.daysStepped.Add(1)
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Write(out)
}

func (w *Worker) handleClose(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("session")
	w.mu.Lock()
	_, ok := w.sessions[id]
	delete(w.sessions, id)
	w.mu.Unlock()
	if !ok {
		http.Error(rw, "shard: no such session "+id, http.StatusNotFound)
		return
	}
	rw.WriteHeader(http.StatusNoContent)
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(v) //nolint:errcheck // best-effort response write
}

// shardBounds is parallel.Shard under a local name: the coordinator
// and worker both call the same pure function, so the shard plan is
// shared by construction rather than negotiated.
func shardBounds(count, n, index int) (lo, hi int) {
	return parallel.Shard(count, n, index)
}
