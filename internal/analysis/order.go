package analysis

import (
	"math"

	"repro/internal/stats"
	"repro/internal/toplist"
)

// kendallBetween computes Kendall's τ-b between the ranks two lists
// assign to their common domains.
func (c *Context) kendallBetween(a, b *toplist.List) float64 {
	if a == nil || b == nil {
		return math.NaN()
	}
	idsA := c.worldIDs(a)
	rankB := make(map[uint32]int, b.Len())
	for r, id := range c.worldIDs(b) {
		rankB[id] = r + 1
	}
	var xs, ys []float64
	for r, id := range idsA {
		if rb, ok := rankB[id]; ok {
			xs = append(xs, float64(r+1))
			ys = append(ys, float64(rb))
		}
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	return stats.KendallTau(xs, ys)
}

// KendallDayToDay computes Fig. 4's day-to-day series: τ between each
// consecutive day pair of the provider's top subset.
func (c *Context) KendallDayToDay(provider string, top int) []float64 {
	var out []float64
	var prev *toplist.List
	toplist.EachDay(c.Arch, func(d toplist.Day) {
		cur := c.subset(provider, d, top)
		if prev != nil {
			if tau := c.kendallBetween(prev, cur); !math.IsNaN(tau) {
				out = append(out, tau)
			}
		}
		prev = cur
	})
	return out
}

// KendallVsFirst computes Fig. 4's static series: τ between day 0's
// subset and every later day.
func (c *Context) KendallVsFirst(provider string, top int) []float64 {
	first := c.subset(provider, c.Arch.First(), top)
	var out []float64
	toplist.EachDay(c.Arch, func(d toplist.Day) {
		if d == c.Arch.First() {
			return
		}
		if tau := c.kendallBetween(first, c.subset(provider, d, top)); !math.IsNaN(tau) {
			out = append(out, tau)
		}
	})
	return out
}

// VeryStrongShare reports the fraction of τ values above the paper's
// "very strong correlation" threshold of 0.95 (§6.3).
func VeryStrongShare(taus []float64) float64 {
	if len(taus) == 0 {
		return 0
	}
	n := 0
	for _, t := range taus {
		if t > 0.95 {
			n++
		}
	}
	return float64(n) / float64(len(taus))
}
