package aggregate

import (
	"fmt"
	"sort"

	"repro/internal/toplist"
)

// Manipulation resistance of the aggregate (the property Le Pochat et
// al. designed Tranco around, and the reason the paper's §9 recommends
// combining providers): an attacker who controls their domain's rank
// in a *subset* of the input lists contributes only those lists'
// Dowdall points, while honest popular domains collect points from
// every provider on every window day.

// InsertionRank reports the rank a synthetic domain would achieve in
// the aggregate list for `day` if it held `listRank` in `nProviders`
// of the input lists on every day of the window. It returns 0 when the
// domain would not make a list of cfg.Size at all.
//
// The computation scores the real archive, then places the synthetic
// score among the honest scores; the one-slot shift this ignores is
// below rank granularity for any realistic configuration.
func InsertionRank(arch toplist.Source, day toplist.Day, cfg Config, listRank, nProviders int) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if listRank < 1 {
		return 0, fmt.Errorf("aggregate: bad list rank %d", listRank)
	}
	provs := cfg.Providers
	if len(provs) == 0 {
		provs = arch.Providers()
	}
	if nProviders < 1 || nProviders > len(provs) {
		return 0, fmt.Errorf("aggregate: nProviders %d outside [1,%d]", nProviders, len(provs))
	}
	scores, windowDays, err := windowScores(arch, day, cfg)
	if err != nil {
		return 0, err
	}
	synthetic := float64(windowDays*nProviders) / float64(listRank)

	// Rank = 1 + number of honest scores strictly above the synthetic
	// one (ties go to the attacker, the optimistic bound).
	rank := 1
	for _, s := range scores {
		if s > synthetic {
			rank++
		}
	}
	if rank > cfg.Size {
		return 0, nil
	}
	return rank, nil
}

// RequiredListRank inverts InsertionRank: the worst (highest-numbered)
// single-list rank that still lands the attacker inside the aggregate
// top `aggTarget`, holding rank in nProviders providers across the
// whole window. Returns 0 when even rank 1 in those providers cannot
// reach the target.
func RequiredListRank(arch toplist.Source, day toplist.Day, cfg Config, aggTarget, nProviders int) (int, error) {
	if aggTarget < 1 || aggTarget > cfg.Size {
		return 0, fmt.Errorf("aggregate: target %d outside [1,%d]", aggTarget, cfg.Size)
	}
	provs := cfg.Providers
	if len(provs) == 0 {
		provs = arch.Providers()
	}
	if nProviders < 1 || nProviders > len(provs) {
		return 0, fmt.Errorf("aggregate: nProviders %d outside [1,%d]", nProviders, len(provs))
	}
	scores, windowDays, err := windowScores(arch, day, cfg)
	if err != nil {
		return 0, err
	}
	// The attacker beats the honest domain at aggregate rank aggTarget
	// iff synthetic >= that score (ties to the attacker). Honest score
	// at position aggTarget (1-based, descending):
	if aggTarget > len(scores) {
		// Aggregate is under-full: any listing at all gets in.
		return 1 << 30, nil
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	threshold := scores[aggTarget-1]
	// synthetic = windowDays*nProviders/listRank >= threshold
	// ⇔ listRank <= windowDays*nProviders/threshold.
	listRank := int(float64(windowDays*nProviders) / threshold)
	if listRank < 1 {
		return 0, nil
	}
	return listRank, nil
}

// windowScores computes the honest Dowdall scores contributing to the
// aggregate of `day` and the number of days actually inside the
// window.
func windowScores(arch toplist.Source, day toplist.Day, cfg Config) ([]float64, int, error) {
	if day > arch.Last() || day < arch.First() {
		return nil, 0, fmt.Errorf("aggregate: day %v outside archive", day)
	}
	provs := cfg.Providers
	if len(provs) == 0 {
		provs = arch.Providers()
	}
	from := day - toplist.Day(cfg.Window) + 1
	if from < arch.First() {
		from = arch.First()
	}
	scores := make(map[string]float64)
	days := 0
	for d := from; d <= day; d++ {
		days++
		for _, p := range provs {
			l := arch.Get(p, d)
			if l == nil {
				continue
			}
			if cfg.BaseDomains {
				l = l.BaseDomains()
			}
			for rank, name := range l.Names() {
				scores[name] += 1.0 / float64(rank+1)
			}
		}
	}
	if len(scores) == 0 {
		return nil, 0, fmt.Errorf("aggregate: no snapshots in window ending %v", day)
	}
	out := make([]float64, 0, len(scores))
	for _, s := range scores {
		out = append(out, s)
	}
	return out, days, nil
}
