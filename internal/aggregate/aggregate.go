// Package aggregate implements the paper's §9 recommendation —
// stabilising top lists by combining providers and days — as a
// Tranco-style rank-aggregated list (the paper's conclusions directly
// motivated Tranco, Le Pochat et al., NDSS 2019).
//
// The aggregation uses the Dowdall rule: each (provider, day) snapshot
// contributes 1/rank to every domain it lists; domains are re-ranked by
// total score. Aggregating across a multi-day window and all providers
// suppresses both the day-to-day churn and the single-provider biases
// quantified in §6 and §8.
package aggregate

import (
	"fmt"
	"sort"

	"repro/internal/toplist"
)

// Config controls aggregation.
type Config struct {
	// Providers to combine (all archive providers when empty).
	Providers []string
	// Window is the number of trailing days to combine (>= 1).
	Window int
	// Size is the output list length.
	Size int
	// BaseDomains normalises every input list to unique base domains
	// before scoring, so FQDN-based lists (Umbrella) don't fragment
	// their weight across subdomains.
	BaseDomains bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Window < 1 {
		return fmt.Errorf("aggregate: window must be >= 1, got %d", c.Window)
	}
	if c.Size < 1 {
		return fmt.Errorf("aggregate: size must be >= 1, got %d", c.Size)
	}
	return nil
}

// Build computes the aggregated list as of `day`, combining the window
// days [day-Window+1, day] for every configured provider.
func Build(arch toplist.Source, day toplist.Day, cfg Config) (*toplist.List, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	providers := cfg.Providers
	if len(providers) == 0 {
		providers = arch.Providers()
	}
	if len(providers) == 0 {
		return nil, fmt.Errorf("aggregate: archive has no providers")
	}
	from := day - toplist.Day(cfg.Window) + 1
	if from < arch.First() {
		from = arch.First()
	}
	if day > arch.Last() {
		return nil, fmt.Errorf("aggregate: day %v beyond archive end %v", day, arch.Last())
	}
	scores := make(map[string]float64)
	snapshots := 0
	for d := from; d <= day; d++ {
		for _, p := range providers {
			l := arch.Get(p, d)
			if l == nil {
				continue
			}
			if cfg.BaseDomains {
				l = l.BaseDomains()
			}
			snapshots++
			for rank, name := range l.Names() {
				scores[name] += 1.0 / float64(rank+1) // Dowdall
			}
		}
	}
	if snapshots == 0 {
		return nil, fmt.Errorf("aggregate: no snapshots in window ending %v", day)
	}
	type entry struct {
		name  string
		score float64
	}
	all := make([]entry, 0, len(scores))
	for name, s := range scores {
		all = append(all, entry{name, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].name < all[j].name
	})
	n := cfg.Size
	if n > len(all) {
		n = len(all)
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = all[i].name
	}
	return toplist.New(names), nil
}

// Series builds the aggregated list for every day in [from, to],
// returning one list per day — the input for stability comparisons.
func Series(arch toplist.Source, from, to toplist.Day, cfg Config) ([]*toplist.List, error) {
	if to < from {
		return nil, fmt.Errorf("aggregate: empty day range")
	}
	out := make([]*toplist.List, 0, int(to-from)+1)
	for d := from; d <= to; d++ {
		l, err := Build(arch, d, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

// Slider maintains the Dowdall scores of a sliding day window
// incrementally: adding a day costs O(providers × size) instead of
// rebuilding the whole window, which makes long aggregated series
// cheap. Feed it pre-normalised lists (apply BaseDomains upstream once
// per snapshot if desired).
type Slider struct {
	size   int
	window int
	scores map[string]float64
	ring   [][]*toplist.List // per in-window day: the contributing lists
	head   int
	filled int
}

// NewSlider builds a slider over the given window length producing
// lists of the given size.
func NewSlider(window, size int) (*Slider, error) {
	if window < 1 || size < 1 {
		return nil, fmt.Errorf("aggregate: bad slider parameters %d/%d", window, size)
	}
	return &Slider{
		size:   size,
		window: window,
		scores: make(map[string]float64),
		ring:   make([][]*toplist.List, window),
	}, nil
}

// Push adds one day's snapshots (one list per provider) and evicts the
// oldest day once the window is full.
func (s *Slider) Push(lists ...*toplist.List) {
	if old := s.ring[s.head]; old != nil {
		for _, l := range old {
			for rank, name := range l.Names() {
				s.scores[name] -= 1.0 / float64(rank+1)
				if s.scores[name] < 1e-12 {
					delete(s.scores, name)
				}
			}
		}
	}
	day := append([]*toplist.List(nil), lists...)
	for _, l := range day {
		for rank, name := range l.Names() {
			s.scores[name] += 1.0 / float64(rank+1)
		}
	}
	s.ring[s.head] = day
	s.head = (s.head + 1) % s.window
	if s.filled < s.window {
		s.filled++
	}
}

// List materialises the current aggregated ranking.
func (s *Slider) List() *toplist.List {
	type entry struct {
		name  string
		score float64
	}
	all := make([]entry, 0, len(s.scores))
	for name, sc := range s.scores {
		all = append(all, entry{name, sc})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].name < all[j].name
	})
	n := s.size
	if n > len(all) {
		n = len(all)
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = all[i].name
	}
	return toplist.New(names)
}

// Filled reports whether the window has seen at least `window` pushes.
func (s *Slider) Filled() bool { return s.filled == s.window }

// MeanChurn reports the mean daily removed-domain share across a list
// series — the stability metric the aggregation is meant to improve.
func MeanChurn(lists []*toplist.List) float64 {
	if len(lists) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(lists); i++ {
		prev := lists[i-1].NameSet()
		cur := lists[i].NameSet()
		removed := 0
		for name := range prev {
			if _, ok := cur[name]; !ok {
				removed++
			}
		}
		total += float64(removed) / float64(lists[i-1].Len())
	}
	return total / float64(len(lists)-1)
}
