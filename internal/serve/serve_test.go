package serve

import (
	"testing"

	"repro/internal/toplist"
)

// rawArchive wraps an in-memory Archive with a RawSource face and a
// scale name, to exercise the holder's interface pass-through.
type rawArchive struct {
	*toplist.Archive
	raw   map[string]*toplist.RawSnapshot
	scale string
}

func (a *rawArchive) RawHash(provider string, day toplist.Day) string {
	if rs, ok := a.raw[key(provider, day)]; ok {
		return rs.Hash
	}
	return ""
}

func (a *rawArchive) GetRaw(provider string, day toplist.Day) (*toplist.RawSnapshot, error) {
	return a.raw[key(provider, day)], nil
}

func (a *rawArchive) Scale() string { return a.scale }

func key(provider string, day toplist.Day) string {
	return provider + "/" + day.String()
}

func newArchive(t *testing.T, provider string, last toplist.Day, names ...string) *toplist.Archive {
	t.Helper()
	arch := toplist.NewArchive(0, last)
	for d := toplist.Day(0); d <= last; d++ {
		if err := arch.Put(provider, d, toplist.New(names)); err != nil {
			t.Fatal(err)
		}
	}
	return arch
}

func TestSwappableSourceDelegatesAndSwaps(t *testing.T) {
	first := newArchive(t, "alexa", 1, "a.com", "b.org")
	second := newArchive(t, "umbrella", 4, "c.net")

	sw := NewSwappableSource(first)
	if sw.Last() != 1 || sw.Days() != 2 || len(sw.Providers()) != 1 || sw.Providers()[0] != "alexa" {
		t.Fatalf("holder does not mirror first source: last=%v days=%d providers=%v",
			sw.Last(), sw.Days(), sw.Providers())
	}
	if l := sw.Get("alexa", 0); l == nil || l.Len() != 2 {
		t.Fatalf("Get through holder = %v", l)
	}

	prev := sw.Swap(second)
	if prev != toplist.Source(first) {
		t.Fatal("Swap did not return the previous source")
	}
	if sw.Last() != 4 || sw.Providers()[0] != "umbrella" {
		t.Fatalf("holder does not mirror swapped source: last=%v providers=%v", sw.Last(), sw.Providers())
	}
	// The previous generation still answers for whoever holds it.
	if l := prev.Get("alexa", 1); l == nil || l.Len() != 2 {
		t.Fatal("previous source unusable after swap")
	}
}

func TestSnapshotPinsOneGeneration(t *testing.T) {
	first := newArchive(t, "alexa", 1, "a.com")
	second := newArchive(t, "alexa", 9, "a.com")
	sw := NewSwappableSource(first)

	snap := Snapshot(sw)
	sw.Swap(second)
	// The snapshot still reads the generation it resolved; the holder
	// reads the new one.
	if snap.Last() != 1 {
		t.Fatalf("snapshot drifted to new generation: Last=%v", snap.Last())
	}
	if sw.Last() != 9 {
		t.Fatalf("holder did not advance: Last=%v", sw.Last())
	}

	// Snapshot of a plain source is the source itself.
	if Snapshot(first) != toplist.Source(first) {
		t.Fatal("Snapshot of a plain source must be identity")
	}
}

func TestSwappableSourceRawDegradation(t *testing.T) {
	plain := newArchive(t, "alexa", 0, "a.com")
	raw := &rawArchive{
		Archive: newArchive(t, "alexa", 0, "a.com"),
		raw: map[string]*toplist.RawSnapshot{
			key("alexa", 0): {Data: []byte("gz"), Hash: "abc123"},
		},
		scale: "test",
	}

	sw := NewSwappableSource(plain)
	// A non-raw current source degrades per the RawSource contract:
	// hashless slot, nil raw bytes, no error.
	if h := sw.RawHash("alexa", 0); h != "" {
		t.Fatalf("RawHash over plain source = %q, want empty", h)
	}
	if rs, err := sw.GetRaw("alexa", 0); rs != nil || err != nil {
		t.Fatalf("GetRaw over plain source = %v, %v; want nil, nil", rs, err)
	}
	if sc := sw.Scale(); sc != "" {
		t.Fatalf("Scale over plain source = %q, want empty", sc)
	}

	sw.Swap(raw)
	if h := sw.RawHash("alexa", 0); h != "abc123" {
		t.Fatalf("RawHash over raw source = %q", h)
	}
	rs, err := sw.GetRaw("alexa", 0)
	if err != nil || rs == nil || string(rs.Data) != "gz" {
		t.Fatalf("GetRaw over raw source = %v, %v", rs, err)
	}
	if sc := sw.Scale(); sc != "test" {
		t.Fatalf("Scale over raw source = %q", sc)
	}
}
