package toolbar

import (
	"math"
	"strings"
	"testing"
)

func TestInstallAssignsUniqueAIDs(t *testing.T) {
	c := NewCollector()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		cl := c.Install(Demographics{Age: 30})
		if seen[cl.AID] {
			t.Fatalf("duplicate aid %d", cl.AID)
		}
		seen[cl.AID] = true
	}
}

func TestDemographicsLinkedToAID(t *testing.T) {
	c := NewCollector()
	cl := c.Install(Demographics{
		Age: 42, Gender: "f", HouseholdIncome: "50-75k",
		Ethnicity: "x", Education: "msc", InstallLocation: "work",
	})
	demo, ok := c.DemographicsOf(cl.AID)
	if !ok || demo.Age != 42 || demo.InstallLocation != "work" {
		t.Fatalf("demographics %+v %v", demo, ok)
	}
	if _, ok := c.DemographicsOf(9999); ok {
		t.Fatal("unknown aid")
	}
}

func TestFullURLTransmittedForOrdinarySites(t *testing.T) {
	c := NewCollector()
	cl := c.Install(Demographics{})
	rep, sent := cl.Visit(0, "https://example.com/cart?item=42&session=secret", "https://other.com/page", true)
	if !sent {
		t.Fatal("visit should be sent")
	}
	if rep.Anonymised {
		t.Fatal("ordinary site should not be anonymised")
	}
	// The paper's finding: the entire URL including GET parameters is
	// transmitted.
	if !strings.Contains(rep.URL, "session=secret") {
		t.Fatalf("GET parameters missing from %q", rep.URL)
	}
	if rep.Referer != "https://other.com/page" {
		t.Fatalf("referer %q", rep.Referer)
	}
}

func TestAnonymisedHosts(t *testing.T) {
	c := NewCollector()
	cl := c.Install(Demographics{})
	for _, url := range []string{
		"https://google.com/search?q=private+query",
		"https://www.google.com/search?q=private+query", // subdomain of listed host
		"https://search.yahoo.com/search?p=x",
		"https://shop.rewe.de/p/12345",
	} {
		rep, sent := cl.Visit(0, url, "https://google.com/other?q=1", true)
		if !sent {
			t.Fatalf("visit to %s should be sent", url)
		}
		if !rep.Anonymised {
			t.Fatalf("%s should be anonymised", url)
		}
		if strings.Contains(rep.URL, "q=") || strings.Contains(rep.URL, "/search") {
			t.Fatalf("anonymised URL leaks path: %q", rep.URL)
		}
		if strings.Contains(rep.Referer, "?") || strings.Contains(rep.Referer, "/") {
			t.Fatalf("anonymised referer leaks: %q", rep.Referer)
		}
	}
}

func TestUnloadedPagesNotReported(t *testing.T) {
	c := NewCollector()
	cl := c.Install(Demographics{})
	_, sent := cl.Visit(0, "https://nonexistent.example/", "", false)
	if sent {
		t.Fatal("failed loads must not be transmitted (JS never ran)")
	}
	if c.Stats(0, "nonexistent.example") != nil {
		t.Fatal("no aggregate for unreported visit")
	}
}

func TestAggregation(t *testing.T) {
	c := NewCollector()
	a := c.Install(Demographics{})
	b := c.Install(Demographics{})
	// Two visitors; a visits twice (www + raw host collapse to base).
	a.Visit(3, "https://www.shop-site.com/a", "", true)
	a.Visit(3, "https://shop-site.com/b", "", true)
	b.Visit(3, "https://shop-site.com/", "", true)
	st := c.Stats(3, "shop-site.com")
	if st == nil {
		t.Fatal("missing stats")
	}
	if st.PageViews != 3 {
		t.Fatalf("page views %d", st.PageViews)
	}
	if st.Visitors() != 2 {
		t.Fatalf("visitors %d", st.Visitors())
	}
	// Day isolation.
	if c.Stats(4, "shop-site.com") != nil {
		t.Fatal("day leakage")
	}
}

func TestScore(t *testing.T) {
	c := NewCollector()
	a := c.Install(Demographics{})
	b := c.Install(Demographics{})
	// many-visitors beats one heavy visitor at equal page views.
	for i := 0; i < 16; i++ {
		a.Visit(0, "https://heavy.com/x", "", true)
	}
	a.Visit(0, "https://broad.com/x", "", true)
	b.Visit(0, "https://broad.com/x", "", true)
	heavy := c.Score(0, "heavy.com") // sqrt(1*16) = 4
	broad := c.Score(0, "broad.com") // sqrt(2*2) = 2
	if math.Abs(heavy-4) > 1e-9 || math.Abs(broad-2) > 1e-9 {
		t.Fatalf("scores %v %v", heavy, broad)
	}
	// Sub-linearity: 16 views from one visitor score like 4 views from
	// 4 visitors would in page views alone.
	if c.Score(0, "absent.com") != 0 {
		t.Fatal("absent domain score")
	}
}

func TestSplitURL(t *testing.T) {
	for _, tc := range []struct{ in, host string }{
		{"https://Example.COM/path?q=1", "example.com"},
		{"http://a.b.c/", "a.b.c"},
		{"a.b.c", "a.b.c"},
		{"https://host.com?x=1", "host.com"},
		{"", ""},
		{"https://", ""},
	} {
		host, _ := splitURL(tc.in)
		if host != tc.host {
			t.Fatalf("splitURL(%q) host = %q, want %q", tc.in, host, tc.host)
		}
	}
}

func TestReportString(t *testing.T) {
	c := NewCollector()
	cl := c.Install(Demographics{})
	rep, _ := cl.Visit(0, "https://google.com/search?q=x", "", true)
	s := rep.String()
	if !strings.Contains(s, "anonymised") || !strings.Contains(s, "aid=") {
		t.Fatalf("report string %q", s)
	}
}
