// Package simnet provides the simulated Internet infrastructure the
// measurement campaigns run against: an AS registry with an IPv4
// longest-prefix-match route table (substituting for Route Views BGP
// data), a CDN registry with CNAME-pattern detection (substituting for
// the WebPagetest cdn.h list), generic DNS response types with a
// TTL-aware caching resolver (substituting for live resolution), and
// HTTPS/HTTP2 probe result types (substituting for zgrab/nghttp2).
package simnet

import (
	"fmt"
	"sort"
)

// AS describes an autonomous system in the registry.
type AS struct {
	Number uint32
	Name   string
	// Role influences which domains the population generator places in
	// this AS.
	Role ASRole
	// Prefixes are the IPv4 CIDR prefixes announced by this AS.
	Prefixes []Prefix
}

// ASRole classifies an AS for the population generator.
type ASRole uint8

// AS roles.
const (
	RoleMassHosting ASRole = iota // shared hosting for the long tail (GoDaddy-like)
	RoleCloud                     // hyperscale cloud (Google/Amazon/Microsoft-like)
	RoleCDN                       // content delivery network
	RoleSmall                     // small/regional hosting
)

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr uint32 // network address, host byte order
	Bits int    // prefix length
}

// String formats the prefix in dotted CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		byte(p.Addr>>24), byte(p.Addr>>16), byte(p.Addr>>8), byte(p.Addr), p.Bits)
}

// Contains reports whether ip falls within the prefix.
func (p Prefix) Contains(ip uint32) bool {
	if p.Bits == 0 {
		return true
	}
	mask := ^uint32(0) << (32 - uint(p.Bits))
	return ip&mask == p.Addr&mask
}

// ASRegistry holds the simulated AS ecosystem.
type ASRegistry struct {
	list  []AS
	byNum map[uint32]*AS
}

// wellKnownASes mirrors the ASes named in the paper's Fig. 7d plus a
// CDN/cloud set; a long tail of small hosting ASes is appended by
// NewASRegistry.
var wellKnownASes = []AS{
	{Number: 26496, Name: "GoDaddy", Role: RoleMassHosting},
	{Number: 16276, Name: "OVH", Role: RoleMassHosting},
	{Number: 8560, Name: "1&1", Role: RoleMassHosting},
	{Number: 40034, Name: "Confluence", Role: RoleMassHosting},
	{Number: 46606, Name: "Unified Layer", Role: RoleMassHosting},
	{Number: 15169, Name: "Google", Role: RoleCloud},
	{Number: 16509, Name: "Amazon-16509", Role: RoleCloud},
	{Number: 14618, Name: "Amazon-14618", Role: RoleCloud},
	{Number: 8075, Name: "Microsoft", Role: RoleCloud},
	{Number: 14061, Name: "DigitalOcean", Role: RoleCloud},
	{Number: 20940, Name: "Akamai", Role: RoleCDN},
	{Number: 13335, Name: "Cloudflare", Role: RoleCDN},
	{Number: 54113, Name: "Fastly", Role: RoleCDN},
	{Number: 19551, Name: "Incapsula", Role: RoleCDN},
	{Number: 33438, Name: "Highwinds", Role: RoleCDN},
	{Number: 32934, Name: "Facebook", Role: RoleCDN},
	{Number: 4837, Name: "CHN Net", Role: RoleCDN},
}

// NewASRegistry builds the registry: the well-known ASes plus smallCount
// synthetic small hosting ASes. Each AS gets deterministic prefixes
// carved out of 10.0.0.0/8-style blocks (addresses are synthetic; only
// LPM behaviour matters).
func NewASRegistry(smallCount int) *ASRegistry {
	r := &ASRegistry{byNum: make(map[uint32]*AS)}
	next := uint32(1) << 24 // start carving at 1.0.0.0
	for _, as := range wellKnownASes {
		// Big players get a /10 plus a more-specific /16 to exercise
		// longest-prefix matching.
		as.Prefixes = []Prefix{
			{Addr: next, Bits: 10},
			{Addr: next + (1 << 14), Bits: 16},
		}
		next += 1 << 22 // advance by /10
		r.list = append(r.list, as)
	}
	for i := 0; i < smallCount; i++ {
		as := AS{
			Number: 60000 + uint32(i),
			Name:   fmt.Sprintf("Hosting-%04d", i),
			Role:   RoleSmall,
			Prefixes: []Prefix{
				{Addr: next, Bits: 18},
			},
		}
		next += 1 << 14 // advance by /18
		r.list = append(r.list, as)
	}
	for i := range r.list {
		r.byNum[r.list[i].Number] = &r.list[i]
	}
	return r
}

// All returns the registry's ASes.
func (r *ASRegistry) All() []AS { return r.list }

// ByNumber returns the AS with the given number, or nil.
func (r *ASRegistry) ByNumber(n uint32) *AS { return r.byNum[n] }

// ByRole returns all ASes with the given role.
func (r *ASRegistry) ByRole(role ASRole) []AS {
	var out []AS
	for _, as := range r.list {
		if as.Role == role {
			out = append(out, as)
		}
	}
	return out
}

// Label formats an AS as "Name (number)" as in the paper's Fig. 7d
// legend.
func (r *ASRegistry) Label(n uint32) string {
	if as := r.byNum[n]; as != nil {
		return fmt.Sprintf("%s (%d)", as.Name, as.Number)
	}
	return fmt.Sprintf("AS%d", n)
}

// SortedNumbers returns all AS numbers ascending (stable iteration for
// reports).
func (r *ASRegistry) SortedNumbers() []uint32 {
	out := make([]uint32, len(r.list))
	for i, as := range r.list {
		out[i] = as.Number
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
