package aggregate

import (
	"fmt"
	"testing"

	"repro/internal/toplist"
)

// stableArchive builds a 3-provider archive whose lists are identical
// across days (maximally honest scores), with distinct per-provider
// orderings.
func stableArchive(t *testing.T, days, size int) *toplist.Archive {
	t.Helper()
	arch := toplist.NewArchive(0, toplist.Day(days-1))
	for p, prov := range []string{"alexa", "umbrella", "majestic"} {
		names := make([]string, size)
		for i := 0; i < size; i++ {
			// Rotate each provider's order a little so the aggregate
			// has realistic partial agreement.
			names[i] = fmt.Sprintf("site%03d.com", (i+p*3)%size)
		}
		l := toplist.New(names)
		for d := 0; d < days; d++ {
			if err := arch.Put(prov, toplist.Day(d), l); err != nil {
				t.Fatal(err)
			}
		}
	}
	return arch
}

func TestInsertionRankSingleVsAllProviders(t *testing.T) {
	arch := stableArchive(t, 7, 100)
	cfg := Config{Window: 7, Size: 100}

	// Holding rank 1 in one list vs in all three lists.
	one, err := InsertionRank(arch, 6, cfg, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	all, err := InsertionRank(arch, 6, cfg, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if all == 0 || one == 0 {
		t.Fatalf("rank-1 attacker must enter the aggregate: one=%d all=%d", one, all)
	}
	if all > one {
		t.Errorf("controlling all lists (rank %d) must beat controlling one (rank %d)", all, one)
	}
	// A single-list rank-1 attacker cannot reach aggregate rank 1:
	// honest head domains hold top ranks in all three lists.
	if one == 1 {
		t.Error("single-list attacker reached aggregate rank 1 against 3-provider head")
	}
	// Controlling all three lists at rank 1 is unbeatable.
	if all != 1 {
		t.Errorf("all-list rank-1 attacker = aggregate rank %d, want 1", all)
	}
}

func TestInsertionRankDeepListRankStaysOut(t *testing.T) {
	arch := stableArchive(t, 7, 100)
	cfg := Config{Window: 7, Size: 50} // aggregate is half the list size
	got, err := InsertionRank(arch, 6, cfg, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("bottom-rank single-list attacker entered aggregate at %d", got)
	}
}

func TestInsertionRankMonotoneInListRank(t *testing.T) {
	arch := stableArchive(t, 7, 100)
	cfg := Config{Window: 7, Size: 100}
	prev := 0
	for _, lr := range []int{1, 2, 5, 10, 25, 50} {
		got, err := InsertionRank(arch, 6, cfg, lr, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 && got < prev {
			t.Fatalf("aggregate rank %d at list rank %d improved on %d", got, lr, prev)
		}
		if got != 0 {
			prev = got
		}
	}
}

func TestInsertionRankValidation(t *testing.T) {
	arch := stableArchive(t, 3, 10)
	cfg := Config{Window: 3, Size: 10}
	if _, err := InsertionRank(arch, 2, cfg, 0, 1); err == nil {
		t.Error("list rank 0 accepted")
	}
	if _, err := InsertionRank(arch, 2, cfg, 1, 4); err == nil {
		t.Error("nProviders beyond archive accepted")
	}
	if _, err := InsertionRank(arch, 99, cfg, 1, 1); err == nil {
		t.Error("day beyond archive accepted")
	}
}

func TestRequiredListRankInvertsInsertionRank(t *testing.T) {
	arch := stableArchive(t, 7, 100)
	cfg := Config{Window: 7, Size: 100}
	for _, target := range []int{1, 5, 20, 80} {
		need, err := RequiredListRank(arch, 6, cfg, target, 1)
		if err != nil {
			t.Fatal(err)
		}
		if need == 0 {
			continue // unreachable with one list: consistent if target is tiny
		}
		got, err := InsertionRank(arch, 6, cfg, need, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got == 0 || got > target {
			t.Errorf("target %d: required rank %d only achieves %d", target, need, got)
		}
		// One rank worse must miss the target.
		miss, err := InsertionRank(arch, 6, cfg, need+1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if miss != 0 && miss <= target {
			t.Errorf("target %d: rank %d should be insufficient but achieves %d", target, need+1, miss)
		}
	}
}

func TestRequiredListRankTightensWithFewerProviders(t *testing.T) {
	arch := stableArchive(t, 7, 100)
	cfg := Config{Window: 7, Size: 100}
	const target = 10
	one, err := RequiredListRank(arch, 6, cfg, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	three, err := RequiredListRank(arch, 6, cfg, target, 3)
	if err != nil {
		t.Fatal(err)
	}
	if three != 0 && one != 0 && three < one {
		t.Errorf("controlling 3 providers (rank %d needed) should be easier than 1 (rank %d)", three, one)
	}
	t.Logf("aggregate top-%d: need list rank %d with 1 provider, %d with all 3", target, one, three)
}

func TestRequiredListRankUnderfullAggregate(t *testing.T) {
	// Tiny archive: fewer names than cfg.Size — anything gets in.
	arch := toplist.NewArchive(0, 0)
	arch.Put("p", 0, toplist.New([]string{"a.com", "b.com"})) //nolint:errcheck
	cfg := Config{Window: 1, Size: 100}
	need, err := RequiredListRank(arch, 0, cfg, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if need != 1<<30 {
		t.Errorf("under-full aggregate: need = %d, want any-rank sentinel", need)
	}
}
