package webd

import (
	"context"
	"crypto/x509"
	"testing"

	"repro/internal/population"
	"repro/internal/simnet"
)

// staticProber is a fixed-table WebProber for tests.
type staticProber map[string]simnet.ProbeResult

func (s staticProber) Probe(name string) simnet.ProbeResult { return s[name] }

func testEndpoints() staticProber {
	return staticProber{
		"h2.example.com": {
			Reachable: true, TLS: true, HTTP2: true,
			HSTSHeader: "max-age=31536000; includeSubDomains", HSTSMaxAge: 31536000,
		},
		"h1.example.com": {
			Reachable: true, TLS: true, HTTP2: false,
		},
		"redirects.example.com": {
			Reachable: true, TLS: true, HTTP2: true, Redirects: 3,
		},
		"toomany.example.com": {
			Reachable: true, TLS: true, HTTP2: true, Redirects: simnet.MaxRedirects + 5,
		},
		"plain.example.com": {
			Reachable: true, TLS: false,
		},
		// "gone.example.com" absent: unreachable.
	}
}

func startWebd(t *testing.T, p simnet.WebProber) (*Server, *Prober) {
	t.Helper()
	s, err := Listen(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, NewProber(s.Addr(), s.CertPool())
}

func TestProbeHTTP2Endpoint(t *testing.T) {
	_, p := startWebd(t, testEndpoints())
	res, err := p.Probe(context.Background(), "h2.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || !res.TLS || !res.HTTP2 {
		t.Errorf("res = %+v, want TLS+h2", res)
	}
	if !res.HSTSEnabled() || res.HSTSMaxAge != 31536000 {
		t.Errorf("HSTS = %q / %d", res.HSTSHeader, res.HSTSMaxAge)
	}
}

func TestProbeHTTP1Endpoint(t *testing.T) {
	_, p := startWebd(t, testEndpoints())
	res, err := p.Probe(context.Background(), "h1.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !res.TLS || res.HTTP2 {
		t.Errorf("res = %+v, want TLS over HTTP/1.1 (ALPN must exclude h2)", res)
	}
	if res.HSTSEnabled() {
		t.Error("h1 endpoint should not advertise HSTS")
	}
}

func TestProbeFollowsRedirectChain(t *testing.T) {
	_, p := startWebd(t, testEndpoints())
	res, err := p.Probe(context.Background(), "redirects.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if res.Redirects != 3 {
		t.Errorf("redirects = %d, want 3", res.Redirects)
	}
	if !res.HTTP2 {
		t.Error("landing page after redirects should still be h2")
	}
}

func TestProbeRedirectLimit(t *testing.T) {
	_, p := startWebd(t, testEndpoints())
	res, err := p.Probe(context.Background(), "toomany.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || !res.TLS {
		t.Errorf("res = %+v, want reachable+TLS", res)
	}
	if res.HTTP2 {
		t.Error("no landing page within 10 redirects must not count as HTTP/2-enabled")
	}
}

func TestProbeTLSRefusal(t *testing.T) {
	_, p := startWebd(t, testEndpoints())
	res, err := p.Probe(context.Background(), "plain.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || res.TLS {
		t.Errorf("res = %+v, want reachable but TLS=false", res)
	}
	// Unreachable domains also fail the handshake (no cert minted).
	res, err = p.Probe(context.Background(), "gone.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if res.TLS {
		t.Errorf("unreachable domain reported TLS: %+v", res)
	}
}

func TestProberRejectsUntrustedCA(t *testing.T) {
	s, _ := startWebd(t, testEndpoints())
	// A prober without the CA pool must fail verification — and the
	// refusal classifier must NOT mistake that for "no TLS support"
	// on the client side... it does classify CertificateVerification
	// as refusal, so instead verify a correctly-trusting prober works
	// while an empty-pool prober sees no successful handshake.
	bad := NewProber(s.Addr(), nil) // nil pool = system roots, which lack our CA
	res, err := bad.Probe(context.Background(), "h2.example.com")
	if err == nil && res.TLS {
		t.Error("prober accepted a certificate from an untrusted CA")
	}
}

func TestProbeAllAgainstWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("network campaign")
	}
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	const day = 0
	direct := w.ProberAt(day)
	_, p := startWebd(t, direct)

	var names []string
	for i := 0; i < w.Len() && len(names) < 200; i += 1 + w.Len()/200 {
		names = append(names, w.Domains[i].Name)
	}
	results, err := ProbeAll(context.Background(), p, names, 8)
	if err != nil {
		t.Fatal(err)
	}
	var tlsN, h2N, hstsN int
	for i, res := range results {
		want := direct.Probe(names[i])
		if !want.Reachable || !want.TLS {
			if res.TLS {
				t.Fatalf("%s: wire says TLS, world says %+v", names[i], want)
			}
			continue
		}
		if !res.TLS {
			t.Fatalf("%s: world says TLS, wire handshake failed", names[i])
		}
		if res.HTTP2 != (want.HTTP2 && want.Redirects <= simnet.MaxRedirects) {
			t.Fatalf("%s: wire h2=%v, world %+v", names[i], res.HTTP2, want)
		}
		if res.HSTSEnabled() != want.HSTSEnabled() {
			t.Fatalf("%s: wire HSTS=%v, world %v", names[i], res.HSTSEnabled(), want.HSTSEnabled())
		}
		tlsN++
		if res.HTTP2 {
			h2N++
		}
		if res.HSTSEnabled() {
			hstsN++
		}
	}
	if tlsN == 0 || h2N == 0 {
		t.Errorf("campaign lacks diversity: tls=%d h2=%d hsts=%d", tlsN, h2N, hstsN)
	}
	t.Logf("probed %d names over TLS loopback: tls=%d h2=%d hsts=%d", len(results), tlsN, h2N, hstsN)
}

func TestProbeAllPropagatesErrors(t *testing.T) {
	s, p := startWebd(t, testEndpoints())
	s.Close()
	_, err := ProbeAll(context.Background(), p, []string{"h2.example.com"}, 2)
	if err == nil {
		t.Fatal("want transport error from closed server")
	}
}

func TestAuthorityIssuesVerifiableChain(t *testing.T) {
	ca, err := newAuthority()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.issue("verify.example.org")
	if err != nil {
		t.Fatal(err)
	}
	pool := testPool(ca)
	if _, err := leaf.Leaf.Verify(verifyOpts("verify.example.org", pool)); err != nil {
		t.Fatalf("chain does not verify: %v", err)
	}
	if _, err := leaf.Leaf.Verify(verifyOpts("other.example.org", pool)); err == nil {
		t.Fatal("hostname mismatch accepted")
	}
}

func testPool(ca *authority) *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.cert)
	return pool
}

func verifyOpts(name string, pool *x509.CertPool) x509.VerifyOptions {
	return x509.VerifyOptions{
		DNSName:   name,
		Roots:     pool,
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
}
