package pack

import (
	"container/list"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/toplist"
)

// Pack is a packed archive opened for reading: a toplist.Source (and
// toplist.RawSource) over one immutable file reachable through any
// io.ReaderAt. Only the central directory is parsed eagerly; snapshot
// blobs are fetched lazily, every fetched blob is verified against the
// content hash its directory record carries, and decoded lists are
// held in a bounded LRU cache with single-flight decodes — concurrent
// readers of one uncached slot share a single fetch+gunzip+parse, the
// DiskStore.Get discipline over a blob.
//
// A blob that fails its hash check or does not decode is memoized as
// corrupt (one read, not one per call, like DiskStore): Get answers
// nil, GetRaw refuses with toplist.ErrCorruptSnapshot, and Corrupt
// lists the slot. Backend read errors — an HTTP Range fetch that
// exhausted its retries, a vanished file — are never memoized; Get
// reports nil for that call (the only answer Source allows) and the
// next reader retries, while GetRaw and Verify surface the error.
//
// All methods are safe for concurrent use.
type Pack struct {
	r      io.ReaderAt
	size   int64
	closer io.Closer

	first     toplist.Day
	last      toplist.Day
	scale     string
	providers []string
	expected  []string
	slots     map[slotKey]record

	mu       sync.Mutex
	cache    map[slotKey]*cacheEntry
	order    *list.List // LRU: front = most recent; values are slotKey
	capacity int
	corrupt  map[slotKey]bool // settled hash/decode failures
}

type slotKey struct {
	provider string
	day      toplist.Day
}

// cacheEntry is one slot's decode slot: the first Get installs it and
// fetches+decodes outside the lock, concurrent readers wait on ready.
type cacheEntry struct {
	ready chan struct{}
	list  *toplist.List // nil until settled; nil after any failure
	elem  *list.Element
}

var (
	_ toplist.Source    = (*Pack)(nil)
	_ toplist.RawSource = (*Pack)(nil)
)

// options collects the knobs shared by Open, OpenFile, and OpenURL;
// the HTTP-specific ones are consumed by NewHTTPRangeReaderAt.
type options struct {
	decodeCache int
	http        httpOptions
}

// Option configures Open, OpenFile, and OpenURL.
type Option func(*options)

func buildOptions(opts []Option) options {
	o := options{decodeCache: 64, http: defaultHTTPOptions()}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithDecodeCache bounds the decoded-snapshot LRU to n lists (default
// 64). Analyses sweep day ranges per provider, so the default covers a
// test-scale JOINT window; shrink it when lists are huge, grow it to
// pin a whole archive's decoded form in memory.
func WithDecodeCache(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.decodeCache = n
		}
	}
}

// Open reads the packed archive available through r (size bytes long)
// and returns it as a Source. Only the header, footer, and central
// directory are read here — O(directory), not O(archive) — so opening
// a pack over a remote ReaderAt costs a few small range reads. Opening
// validates everything it touches: magic, footer geometry against
// size, the directory's content hash, and every slot record's bounds,
// so a truncated, corrupted, or hostile file fails cleanly at Open
// instead of surfacing as a bad read later.
//
// The caller keeps ownership of r; OpenFile and OpenURL wrap Open with
// backends the returned Pack owns (Close releases them).
func Open(r io.ReaderAt, size int64, opts ...Option) (*Pack, error) {
	o := buildOptions(opts)
	if size < headerSize+footerSize {
		return nil, fmt.Errorf("%w: %d bytes is smaller than header+footer", ErrNotPack, size)
	}
	var header [headerSize]byte
	if _, err := r.ReadAt(header[:], 0); err != nil {
		return nil, fmt.Errorf("pack: read header: %w", err)
	}
	if header != packMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrNotPack)
	}
	var footer [footerSize]byte
	if _, err := r.ReadAt(footer[:], size-footerSize); err != nil {
		return nil, fmt.Errorf("pack: read footer: %w", err)
	}
	dirOff, dirLen, dirHash, err := parseFooter(footer[:], size)
	if err != nil {
		return nil, err
	}
	// dirLen is bounded by the file size (parseFooter), so this
	// allocation cannot exceed the input.
	rawDir := make([]byte, dirLen)
	if _, err := r.ReadAt(rawDir, dirOff); err != nil {
		return nil, fmt.Errorf("pack: read central directory: %w", err)
	}
	dir, first, last, err := parseDirectory(rawDir, dirHash)
	if err != nil {
		return nil, err
	}

	p := &Pack{
		r:         r,
		size:      size,
		first:     first,
		last:      last,
		scale:     dir.Scale,
		providers: dir.Providers,
		expected:  dir.Expected,
		slots:     make(map[slotKey]record, len(dir.Snapshots)),
		cache:     make(map[slotKey]*cacheEntry),
		order:     list.New(),
		capacity:  o.decodeCache,
		corrupt:   make(map[slotKey]bool),
	}
	known := make(map[string]bool, len(dir.Providers))
	for _, prov := range dir.Providers {
		if prov == "" || known[prov] {
			return nil, fmt.Errorf("%w: empty or duplicate provider %q", ErrNotPack, prov)
		}
		known[prov] = true
	}
	for _, rec := range dir.Snapshots {
		day, err := toplist.ParseDay(rec.Day)
		if err != nil {
			return nil, fmt.Errorf("%w: slot %s/%s: bad day: %v", ErrNotPack, rec.Provider, rec.Day, err)
		}
		if day < first || day > last {
			return nil, fmt.Errorf("%w: slot %s %v outside archive range", ErrNotPack, rec.Provider, day)
		}
		if !known[rec.Provider] {
			return nil, fmt.Errorf("%w: slot for unlisted provider %q", ErrNotPack, rec.Provider)
		}
		// Blobs live strictly between the header and the directory.
		// Length-first ordering keeps the sum from overflowing.
		if rec.Length < 0 || rec.Offset < headerSize || rec.Length > dirOff || rec.Offset > dirOff-rec.Length {
			return nil, fmt.Errorf("%w: slot %s %v has impossible extent", ErrNotPack, rec.Provider, day)
		}
		if rec.Hash == "" {
			return nil, fmt.Errorf("%w: slot %s %v has no content hash", ErrNotPack, rec.Provider, day)
		}
		key := slotKey{rec.Provider, day}
		if _, dup := p.slots[key]; dup {
			return nil, fmt.Errorf("%w: duplicate slot %s %v", ErrNotPack, rec.Provider, day)
		}
		p.slots[key] = rec
	}
	return p, nil
}

// OpenFile opens the packed archive at path. Close releases the file.
func OpenFile(path string, opts ...Option) (*Pack, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	p, err := Open(f, st.Size(), opts...)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pack: open %s: %w", path, err)
	}
	p.closer = f
	return p, nil
}

// Close releases the backend Open was wrapped around (the file for
// OpenFile; a no-op for a caller-owned ReaderAt).
func (p *Pack) Close() error {
	if p.closer != nil {
		return p.closer.Close()
	}
	return nil
}

// Size returns the pack file's length in bytes.
func (p *Pack) Size() int64 { return p.size }

// Scale returns the scale name the packed archive recorded ("" when
// the producer did not record one).
func (p *Pack) Scale() string { return p.scale }

// Expected returns the provider set the packed archive's producer
// declared (nil when none was declared) — carried so an unpack
// restores the DiskStore's Complete/Missing contract.
func (p *Pack) Expected() []string {
	return append([]string(nil), p.expected...)
}

// First returns the first day covered.
func (p *Pack) First() toplist.Day { return p.first }

// Last returns the last day covered.
func (p *Pack) Last() toplist.Day { return p.last }

// Days returns the number of days covered.
func (p *Pack) Days() int { return toplist.DayCount(p.first, p.last) }

// Providers returns provider names in insertion order.
func (p *Pack) Providers() []string {
	return append([]string(nil), p.providers...)
}

// Has reports whether the pack holds a blob for the slot, without
// reading it.
func (p *Pack) Has(provider string, day toplist.Day) bool {
	_, ok := p.slots[slotKey{provider, day}]
	return ok
}

// Snapshots returns the number of stored snapshots.
func (p *Pack) Snapshots() int { return len(p.slots) }

// Get returns the snapshot for provider on day, or nil if absent. The
// blob is fetched and decoded at most once while it stays in the LRU
// (single-flight, like DiskStore.Get); hash-check and decode failures
// are memoized as corrupt, backend read failures are not (the next Get
// retries). It implements toplist.Source.
func (p *Pack) Get(provider string, day toplist.Day) *toplist.List {
	key := slotKey{provider, day}
	rec, ok := p.slots[key]
	if !ok {
		return nil
	}
	p.mu.Lock()
	if p.corrupt[key] {
		p.mu.Unlock()
		return nil
	}
	if e, ok := p.cache[key]; ok {
		p.order.MoveToFront(e.elem)
		p.mu.Unlock()
		<-e.ready
		return e.list
	}
	e := &cacheEntry{ready: make(chan struct{})}
	e.elem = p.order.PushFront(key)
	p.cache[key] = e
	p.evictLocked()
	p.mu.Unlock()

	l, readErr, corrupt := p.loadSlot(key, rec)
	if corrupt {
		p.settleCorrupt(key, e)
	} else if readErr != nil {
		// Transient backend failure: uncache so the next reader
		// retries; waiters on this entry observe nil for this attempt.
		p.dropEntry(key, e)
	}
	e.list = l
	close(e.ready)
	return l
}

// loadSlot fetches and decodes one blob: (list, nil, false) on
// success, (nil, err, false) on a backend read failure, and
// (nil, err, true) when the bytes are settled corrupt (hash mismatch
// or undecodable).
func (p *Pack) loadSlot(key slotKey, rec record) (*toplist.List, error, bool) {
	data, err := p.readBlob(rec)
	if err != nil {
		return nil, err, false
	}
	if got := toplist.ContentHash(data); got != rec.Hash {
		return nil, fmt.Errorf("pack: %s %v: stored bytes do not match directory hash: %w", key.provider, key.day, toplist.ErrCorruptSnapshot), true
	}
	l, err := toplist.DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("pack: %s %v: %v: %w", key.provider, key.day, err, toplist.ErrCorruptSnapshot), true
	}
	return l, nil, false
}

// readBlob fetches one blob's bytes from the backend.
func (p *Pack) readBlob(rec record) ([]byte, error) {
	data := make([]byte, rec.Length)
	if _, err := p.r.ReadAt(data, rec.Offset); err != nil {
		return nil, err
	}
	return data, nil
}

// settleCorrupt memoizes a hash/decode failure and retires the slot's
// cache entry (corrupt slots are answered from the corrupt set, not
// the LRU, so eviction cannot forget the verdict).
func (p *Pack) settleCorrupt(key slotKey, e *cacheEntry) {
	p.mu.Lock()
	p.corrupt[key] = true
	if cur, ok := p.cache[key]; ok && cur == e {
		delete(p.cache, key)
		p.order.Remove(e.elem)
	}
	p.mu.Unlock()
}

// dropEntry removes e if it is still installed for key.
func (p *Pack) dropEntry(key slotKey, e *cacheEntry) {
	p.mu.Lock()
	if cur, ok := p.cache[key]; ok && cur == e {
		delete(p.cache, key)
		p.order.Remove(e.elem)
	}
	p.mu.Unlock()
}

// evictLocked trims the LRU to capacity; callers hold p.mu. Evicting
// an in-flight entry is safe: waiters hold the entry pointer and
// settle against it, the slot just becomes refetchable.
func (p *Pack) evictLocked() {
	for len(p.cache) > p.capacity {
		back := p.order.Back()
		if back == nil {
			return
		}
		key := back.Value.(slotKey)
		p.order.Remove(back)
		delete(p.cache, key)
	}
}

// RawHash returns the content hash the directory records for the
// slot, or "" when the slot is absent — the no-I/O probe the archive
// server keys its ETags and blob cache on. It implements
// toplist.RawSource; every packed slot has a hash by construction.
func (p *Pack) RawHash(provider string, day toplist.Day) string {
	return p.slots[slotKey{provider, day}].Hash
}

// GetRaw returns the stored blob and its directory hash, verifying the
// bytes before handing them out — a pack served over a network backend
// must never relay bytes the directory does not vouch for. Absent
// slots return (nil, nil); a slot that fails its hash check (now or in
// any earlier read) returns an error wrapping
// toplist.ErrCorruptSnapshot; backend read failures return their own
// error and are not memoized. It implements toplist.RawSource.
func (p *Pack) GetRaw(provider string, day toplist.Day) (*toplist.RawSnapshot, error) {
	key := slotKey{provider, day}
	rec, ok := p.slots[key]
	if !ok {
		return nil, nil
	}
	p.mu.Lock()
	corrupt := p.corrupt[key]
	p.mu.Unlock()
	if corrupt {
		return nil, fmt.Errorf("pack: %s %v: %w", provider, day, toplist.ErrCorruptSnapshot)
	}
	data, err := p.readBlob(rec)
	if err != nil {
		return nil, err
	}
	if got := toplist.ContentHash(data); got != rec.Hash {
		p.mu.Lock()
		p.corrupt[key] = true
		p.mu.Unlock()
		return nil, fmt.Errorf("pack: %s %v: stored bytes do not match directory hash: %w", provider, day, toplist.ErrCorruptSnapshot)
	}
	return &toplist.RawSnapshot{Data: data, Hash: rec.Hash}, nil
}

// Verify eagerly sweeps the whole pack: every stored blob is fetched,
// hash-checked, and fully decoded, without retaining the decoded lists
// — O(1) memory over an arbitrarily large archive, the
// DiskStore.Verify contract over a blob backend. Hash and decode
// failures are memoized (Corrupt lists them; both read paths refuse
// them). A backend read failure aborts the sweep with its error — over
// HTTP a network fault is not corruption, and must not be recorded as
// one. Returns the accumulated Corrupt listing.
func (p *Pack) Verify() ([]toplist.Snapshot, error) {
	for key, rec := range p.slots {
		p.mu.Lock()
		done := p.corrupt[key]
		p.mu.Unlock()
		if done {
			continue
		}
		_, readErr, corrupt := p.loadSlot(key, rec)
		if corrupt {
			p.mu.Lock()
			p.corrupt[key] = true
			p.mu.Unlock()
			continue
		}
		if readErr != nil {
			return p.Corrupt(), fmt.Errorf("pack: verify %s %v: %w", key.provider, key.day, readErr)
		}
	}
	return p.Corrupt(), nil
}

// Corrupt returns one stub Snapshot per slot whose bytes failed their
// directory hash or did not decode — the memoized verdicts Get,
// GetRaw, and Verify have accumulated — ordered by provider (directory
// order) and day ascending. Unlike a DiskStore, a pack is immutable:
// nothing repairs a slot short of re-packing, so the listing only
// grows.
func (p *Pack) Corrupt() []toplist.Snapshot {
	p.mu.Lock()
	keys := make([]slotKey, 0, len(p.corrupt))
	for key := range p.corrupt {
		keys = append(keys, key)
	}
	p.mu.Unlock()
	if len(keys) == 0 {
		return nil
	}
	rank := make(map[string]int, len(p.providers))
	for i, prov := range p.providers {
		rank[prov] = i
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].provider != keys[j].provider {
			return rank[keys[i].provider] < rank[keys[j].provider]
		}
		return keys[i].day < keys[j].day
	})
	out := make([]toplist.Snapshot, len(keys))
	for i, key := range keys {
		out[i] = toplist.Snapshot{Provider: key.provider, Day: key.day}
	}
	return out
}
