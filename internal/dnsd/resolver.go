package dnsd

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/simnet"
)

// Resolver is a stub resolver for a dnsd.Server (or any DNS server
// speaking the simnet wire subset). It sends over UDP first, retries
// lost datagrams, and falls back to TCP when an answer arrives with
// the TC bit — the standard stub algorithm.
type Resolver struct {
	addr       string
	timeout    time.Duration // per network attempt
	udpTries   int
	mu         sync.Mutex
	rng        *rand.Rand
	queries    uint64
	tcpUpgrade uint64
}

// ResolverOption configures a Resolver.
type ResolverOption func(*Resolver)

// WithTimeout sets the per-attempt I/O timeout (default 2s).
func WithTimeout(d time.Duration) ResolverOption {
	return func(r *Resolver) {
		if d > 0 {
			r.timeout = d
		}
	}
}

// WithUDPTries sets how many UDP attempts are made before giving up
// (default 2).
func WithUDPTries(n int) ResolverOption {
	return func(r *Resolver) {
		if n > 0 {
			r.udpTries = n
		}
	}
}

// WithSeed makes query-ID generation deterministic, for tests.
func WithSeed(seed int64) ResolverOption {
	return func(r *Resolver) { r.rng = rand.New(rand.NewSource(seed)) }
}

// NewResolver builds a stub resolver pointed at addr ("host:port").
func NewResolver(addr string, opts ...ResolverOption) *Resolver {
	r := &Resolver{
		addr:     addr,
		timeout:  2 * time.Second,
		udpTries: 2,
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// TCPUpgrades reports how many queries were retried over TCP after a
// truncated UDP answer.
func (r *Resolver) TCPUpgrades() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tcpUpgrade
}

func (r *Resolver) nextID() uint16 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries++
	return uint16(r.rng.Intn(1 << 16))
}

// Exchange sends one query and returns the decoded answer, upgrading
// to TCP on truncation.
func (r *Resolver) Exchange(ctx context.Context, name string, qtype uint16) (*simnet.Message, error) {
	q := &simnet.Message{
		ID:        r.nextID(),
		Recursion: true,
		Question:  simnet.Question{Name: name, Type: qtype, Class: simnet.ClassIN},
	}
	wire, err := q.Encode()
	if err != nil {
		return nil, fmt.Errorf("dnsd: encode query for %q: %w", name, err)
	}
	resp, err := r.exchangeUDP(ctx, q, wire)
	if err != nil {
		return nil, err
	}
	if resp.Truncated {
		r.mu.Lock()
		r.tcpUpgrade++
		r.mu.Unlock()
		return r.exchangeTCP(ctx, q, wire)
	}
	return resp, nil
}

func (r *Resolver) exchangeUDP(ctx context.Context, q *simnet.Message, wire []byte) (*simnet.Message, error) {
	var lastErr error
	for attempt := 0; attempt < r.udpTries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := r.oneUDP(ctx, q, wire)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		// Only timeouts are worth a datagram retry.
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			return nil, err
		}
	}
	return nil, fmt.Errorf("dnsd: %s: no UDP answer after %d tries: %w", q.Question.Name, r.udpTries, lastErr)
}

func (r *Resolver) oneUDP(ctx context.Context, q *simnet.Message, wire []byte) (*simnet.Message, error) {
	d := net.Dialer{Timeout: r.timeout}
	conn, err := d.DialContext(ctx, "udp", r.addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(r.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, MaxUDPPayload)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := simnet.DecodeMessage(buf[:n])
		if err != nil {
			continue // garbled datagram: keep listening until deadline
		}
		if !r.matches(q, resp) {
			continue // stray or spoofed answer: ignore, as stubs must
		}
		return resp, nil
	}
}

func (r *Resolver) exchangeTCP(ctx context.Context, q *simnet.Message, wire []byte) (*simnet.Message, error) {
	d := net.Dialer{Timeout: r.timeout}
	conn, err := d.DialContext(ctx, "tcp", r.addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(r.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := writeFrame(conn, wire); err != nil {
		return nil, err
	}
	raw, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	resp, err := simnet.DecodeMessage(raw)
	if err != nil {
		return nil, err
	}
	if !r.matches(q, resp) {
		return nil, fmt.Errorf("dnsd: TCP answer ID/question mismatch for %q", q.Question.Name)
	}
	return resp, nil
}

// matches applies the stub acceptance rule: same ID, response bit set,
// same question.
func (r *Resolver) matches(q, resp *simnet.Message) bool {
	return resp.Response &&
		resp.ID == q.ID &&
		resp.RCode != simnet.RCodeFormErr &&
		strings.EqualFold(resp.Question.Name, q.Question.Name) &&
		resp.Question.Type == q.Question.Type
}

// Result summarises one resolution the way the §8 measurement
// campaigns consume it.
type Result struct {
	Name  string
	RCode simnet.RCode
	Chain []string // CNAME chain from the queried name, in order
	HasA  bool
	AAAA  bool
	CAA   bool
	TTL   uint32
}

// Resolve performs the study's standard per-name probe: an A query,
// then AAAA and CAA queries, folded into one Result.
func (r *Resolver) Resolve(ctx context.Context, name string) (Result, error) {
	res := Result{Name: name}
	a, err := r.Exchange(ctx, name, simnet.TypeA)
	if err != nil {
		return res, err
	}
	res.RCode = a.RCode
	res.Chain, res.HasA, res.TTL = summariseA(a)
	if a.RCode != simnet.RCodeNoError {
		return res, nil
	}
	aaaa, err := r.Exchange(ctx, name, simnet.TypeAAAA)
	if err != nil {
		return res, err
	}
	res.AAAA = hasType(aaaa, simnet.TypeAAAA)
	caa, err := r.Exchange(ctx, name, simnet.TypeCAA)
	if err != nil {
		return res, err
	}
	res.CAA = hasType(caa, simnet.TypeCAA)
	return res, nil
}

// summariseA walks the answer section, extracting the CNAME chain in
// owner order and whether a terminal A record exists.
func summariseA(m *simnet.Message) (chain []string, hasA bool, ttl uint32) {
	owner := strings.ToLower(m.Question.Name)
	// CNAMEs may appear in any order on the wire; follow owner links.
	targets := make(map[string]string)
	for _, rr := range m.Answers {
		if rr.TTL > ttl {
			ttl = rr.TTL
		}
		switch rr.Type {
		case simnet.TypeCNAME:
			if t, ok := decodeNameData(rr.Data); ok {
				targets[strings.ToLower(rr.Name)] = t
			}
		case simnet.TypeA:
			if len(rr.Data) == 4 {
				hasA = true
			}
		}
	}
	for i := 0; i < len(targets)+1; i++ {
		t, ok := targets[owner]
		if !ok {
			break
		}
		chain = append(chain, t)
		owner = strings.ToLower(t)
	}
	return chain, hasA, ttl
}

func hasType(m *simnet.Message, t uint16) bool {
	for _, rr := range m.Answers {
		if rr.Type == t {
			return true
		}
	}
	return false
}

// decodeNameData parses an uncompressed encoded name in RDATA.
func decodeNameData(data []byte) (string, bool) {
	var labels []string
	off := 0
	for off < len(data) {
		l := int(data[off])
		if l == 0 {
			return strings.Join(labels, "."), true
		}
		if l&0xC0 != 0 || off+1+l > len(data) {
			return "", false
		}
		labels = append(labels, string(data[off+1:off+1+l]))
		off += 1 + l
	}
	return "", false
}

// ResolveAll resolves names through a bounded worker pool, preserving
// input order in the result slice. The first transport error cancels
// the rest.
func ResolveAll(ctx context.Context, r *Resolver, names []string, workers int) ([]Result, error) {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]Result, len(names))
	errs := make(chan error, workers)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := r.Resolve(ctx, names[i])
				if err != nil {
					select {
					case errs <- err:
						cancel()
					default:
					}
					return
				}
				results[i] = res
			}
		}()
	}
	go func() {
		defer close(idx)
		for i := range names {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return results, nil
}
