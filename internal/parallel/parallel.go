// Package parallel provides the small deterministic fan-out primitives
// the concurrent simulation engine is built from: contiguous range
// sharding (For), independent task groups (Do), and fail-fast stage
// groups for pipelines (Group). Shard boundaries depend only on
// (workers, n), never on scheduling, so callers that merge per-shard
// partial results in shard order get run-to-run deterministic output.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: values < 1 mean "use
// GOMAXPROCS", anything else is returned unchanged.
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Shard returns the half-open range [lo, hi) of the i-th of workers
// contiguous shards over n items. Shards differ in size by at most one
// and depend only on (workers, n, i).
func Shard(workers, n, i int) (lo, hi int) {
	q, r := n/workers, n%workers
	lo = i*q + min(i, r)
	hi = lo + q
	if i < r {
		hi++
	}
	return lo, hi
}

// Shards returns every Shard boundary as [lo, hi) pairs, in shard
// order, dropping empty shards (workers > n). Distributed generation
// uses it to enumerate the shard plan once: the boundaries are the same
// pure function of (workers, n) the in-process engine shards by, which
// is what keeps a distributed run byte-identical to a local one.
func Shards(workers, n int) [][2]int {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	out := make([][2]int, 0, workers)
	for i := 0; i < workers; i++ {
		lo, hi := Shard(workers, n, i)
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// For splits [0, n) into at most workers contiguous shards and runs fn
// on each concurrently, returning when all shards are done. With
// workers <= 1 (or n too small to split) fn runs inline over the whole
// range, making the serial reference path allocation- and
// scheduling-free.
func For(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for i := 1; i < workers; i++ {
		lo, hi := Shard(workers, n, i)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	lo, hi := Shard(workers, n, 0)
	fn(lo, hi)
	wg.Wait()
}

// Split sizes two concurrently running stages — a sharded "step" stage
// and a bounded-parallelism "rank" stage — over a shared budget of
// total workers, proportionally to their measured CPU costs. It is the
// sizing function behind the engine's adaptive rank/step split: on
// small core counts, giving both stages the full worker count
// oversubscribes the machine (every fan-out barrier then waits on a
// core the other stage holds), which is how a pipelined run ends up
// slower than the serial one.
//
// stepCost and rankCost are recent per-day CPU costs (wall × workers,
// any common unit); rankCap bounds the rank stage's useful parallelism
// (one worker per provider). Unknown costs (either <= 0) fall back to a
// rank-is-a-quarter-of-the-day prior. Both stages always get at least
// one worker, and the two never exceed total combined, so the split is
// work-conserving without oversubscription. Worker counts never affect
// output — shard boundaries change, accumulation order does not — so
// adapting the split day by day preserves bitwise determinism.
func Split(total, rankCap int, stepCost, rankCost float64) (stepW, rankW int) {
	if total <= 1 {
		return 1, 1
	}
	if rankCap < 1 {
		rankCap = 1
	}
	share := 0.25
	if stepCost > 0 && rankCost > 0 {
		share = rankCost / (stepCost + rankCost)
	}
	rankW = int(share*float64(total) + 0.5)
	if hi := min(rankCap, total-1); rankW > hi {
		rankW = hi
	}
	if rankW < 1 {
		rankW = 1
	}
	return total - rankW, rankW
}

// Group runs a set of cooperating stage functions and collects the
// first error — the pipeline primitive behind the engine's day
// overlap. Unlike Do, the stages are long-lived, may fail, and a
// failure must promptly unblock the others: the first non-nil error
// (from a goroutine started with Go or an inline stage run with Do)
// fires the group's cancel hook exactly once, so stages selecting on
// the matching Done channel observe the failure at their next stage
// boundary instead of running useless work to completion.
type Group struct {
	cancel func()
	wg     sync.WaitGroup
	once   sync.Once
	err    error
}

// NewGroup returns a group whose cancel hook fires on the first stage
// error (nil is allowed for groups that only collect errors).
func NewGroup(cancel func()) *Group { return &Group{cancel: cancel} }

// Go runs fn on its own goroutine.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.fail(err)
		}
	}()
}

// Do runs fn inline on the caller's goroutine — how the caller makes
// itself one of the group's stages without a goroutine handoff.
func (g *Group) Do(fn func() error) {
	if err := fn(); err != nil {
		g.fail(err)
	}
}

// Wait blocks until every Go'd stage has returned and reports the
// first error any stage (including inline Do stages) returned.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}

func (g *Group) fail(err error) {
	g.once.Do(func() {
		g.err = err
		if g.cancel != nil {
			g.cancel()
		}
	})
}

// Do runs the given tasks concurrently and returns when all are done.
// With one task (or fewer) it runs inline.
func Do(tasks ...func()) {
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks) - 1)
	for _, t := range tasks[1:] {
		go func() {
			defer wg.Done()
			t()
		}()
	}
	tasks[0]()
	wg.Wait()
}
