package pack

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the remote blob backend: an io.ReaderAt over HTTP Range
// requests, which makes any static file server — nginx in front of a
// disk, an object store, http.FileServer in a test — an archive
// backend, because pack.Open only ever asks for byte ranges. It
// borrows toplist.Remote's transport discipline wholesale: transient
// failures (connection errors, 502/503/504, 429, truncated bodies) are
// retried with jittered exponential backoff; everything else is final.
//
// Two problems are specific to range-reading one large file:
//
//   - The file must not change under the reader: a pack's directory
//     holds absolute offsets, so mixing ranges of two versions of the
//     file yields garbage that the per-slot hashes would catch only
//     after a confusing partial read. The validator (ETag, or
//     Last-Modified when the server sends no ETag) captured when the
//     reader opens is sent as If-Range with every request, so a
//     changed file makes the server answer 200-with-full-body instead
//     of a stale 206 — which the reader refuses. A 206 carrying a
//     different ETag is refused the same way.
//
//   - Chatty small reads: opening a pack reads a header, a footer, and
//     a directory; slot reads then walk blobs in order. Adjacent small
//     reads are coalesced into aligned chunk fetches (default 128 KiB)
//     held in a small LRU, so the open sequence and a day-range sweep
//     cost a handful of requests instead of one per read. Reads at
//     least one chunk long bypass the chunk cache with a single exact
//     range request — one request per blob, no double buffering.
//
// A server that ignores Range and answers 200 with the full body is
// tolerated once (the body is read through and the requested window
// kept), because some ad-hoc servers do exactly that for small files;
// a second full-body answer fails the read — re-downloading the
// archive per read is pathological, and the caller should fetch the
// file and use OpenFile instead.

// ErrChangedMidRead reports that the served file's validator (ETag or
// Last-Modified) changed between opening the reader and a later range
// read. The pack's offsets are no longer trustworthy; reopen with
// OpenURL to read the new version.
var ErrChangedMidRead = errors.New("pack: remote file changed mid-read")

// errRangeIgnored reports a server that answered 200-with-full-body to
// a ranged request more than once.
var errRangeIgnored = errors.New("pack: server ignores Range requests")

// httpOptions are the HTTPRangeReaderAt knobs, folded into the shared
// Option set.
type httpOptions struct {
	client      *http.Client
	maxAttempts int
	baseBackoff time.Duration
	chunkSize   int64
	chunkCache  int
	jitter      func() float64
	sleep       func(context.Context, time.Duration) error
}

func defaultHTTPOptions() httpOptions {
	return httpOptions{
		client:      &http.Client{Timeout: 30 * time.Second},
		maxAttempts: 4,
		baseBackoff: 250 * time.Millisecond,
		chunkSize:   128 << 10,
		chunkCache:  32,
		jitter:      rand.Float64,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
}

// WithHTTPClient substitutes the *http.Client used for range requests
// (timeouts, transports, test doubles).
func WithHTTPClient(c *http.Client) Option {
	return func(o *options) { o.http.client = c }
}

// WithMaxAttempts bounds the tries per range request (default 4);
// transient failures are retried with jittered exponential backoff,
// mirroring toplist.Remote.
func WithMaxAttempts(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.http.maxAttempts = n
		}
	}
}

// WithBaseBackoff sets the first retry delay (default 250ms; doubled
// per attempt with ±50% jitter).
func WithBaseBackoff(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.http.baseBackoff = d
		}
	}
}

// WithChunkSize sets the aligned fetch granularity small reads are
// coalesced into (default 128 KiB).
func WithChunkSize(n int64) Option {
	return func(o *options) {
		if n > 0 {
			o.http.chunkSize = n
		}
	}
}

// WithChunkCache bounds the coalescing chunk LRU to n chunks (default
// 32).
func WithChunkCache(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.http.chunkCache = n
		}
	}
}

// HTTPRangeReaderAt reads a remote file through HTTP Range requests —
// the blob backend that turns any static file server into a pack
// archive store. It is safe for concurrent ReadAt calls; see the file
// comment for the transport discipline.
type HTTPRangeReaderAt struct {
	url  string
	ctx  context.Context
	opt  httpOptions
	size int64
	// validator is the If-Range guard captured at open: the ETag when
	// the server sent one, else its Last-Modified, else "" (no guard —
	// per-slot hashes remain the backstop).
	validator string

	mu         sync.Mutex
	chunks     map[int64]*chunkEntry // aligned chunk start → entry
	order      *list.List            // LRU: front = most recent; values are int64 starts
	fullBodyOK bool                  // the one-shot 200-tolerance has been spent
}

// chunkEntry is one aligned chunk's fetch slot; fetches are
// single-flight like every other cache in this codebase.
type chunkEntry struct {
	ready chan struct{}
	data  []byte
	err   error
	elem  *list.Element
}

// NewHTTPRangeReaderAt probes the file at url (HEAD, falling back to a
// one-byte range GET for servers that mishandle HEAD), capturing its
// size and validator, and returns a ReaderAt over it. ctx bounds the
// probe and every later ReadAt issued through the returned reader.
func NewHTTPRangeReaderAt(ctx context.Context, url string, opts ...Option) (*HTTPRangeReaderAt, error) {
	o := buildOptions(opts)
	h := &HTTPRangeReaderAt{
		url:    url,
		ctx:    ctx,
		opt:    o.http,
		chunks: make(map[int64]*chunkEntry),
		order:  list.New(),
	}
	if err := h.probe(ctx); err != nil {
		return nil, err
	}
	return h, nil
}

// Size returns the remote file's length as reported at open.
func (h *HTTPRangeReaderAt) Size() int64 { return h.size }

// URL returns the file's URL.
func (h *HTTPRangeReaderAt) URL() string { return h.url }

// probe learns the file's size and validator.
func (h *HTTPRangeReaderAt) probe(ctx context.Context) error {
	err := h.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodHead, h.url, nil)
		if err != nil {
			return err
		}
		resp, err := h.opt.client.Do(req)
		if err != nil {
			return &transientError{err}
		}
		defer drainClose(resp.Body)
		if err := classifyStatus(h.url, resp.StatusCode); err != nil {
			return err
		}
		if resp.ContentLength < 0 {
			return &probeFallback{}
		}
		h.size = resp.ContentLength
		h.adoptValidator(resp)
		return nil
	})
	var fb *probeFallback
	if errors.As(err, &fb) {
		err = h.probeRange(ctx)
	}
	// Servers that reject HEAD outright (405/501) also fall back.
	var se *StatusError
	if errors.As(err, &se) && (se.Code == http.StatusMethodNotAllowed || se.Code == http.StatusNotImplemented) {
		err = h.probeRange(ctx)
	}
	if err != nil {
		return fmt.Errorf("pack: probe %s: %w", h.url, err)
	}
	return nil
}

// probeRange sizes the file with a one-byte range GET, for servers
// whose HEAD responses carry no length.
func (h *HTTPRangeReaderAt) probeRange(ctx context.Context) error {
	return h.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.url, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Range", "bytes=0-0")
		resp, err := h.opt.client.Do(req)
		if err != nil {
			return &transientError{err}
		}
		defer drainClose(resp.Body)
		switch resp.StatusCode {
		case http.StatusPartialContent:
			total, ok := contentRangeTotal(resp.Header.Get("Content-Range"))
			if !ok {
				return fmt.Errorf("pack: GET %s: unparseable Content-Range %q", h.url, resp.Header.Get("Content-Range"))
			}
			h.size = total
		case http.StatusOK:
			if resp.ContentLength < 0 {
				return fmt.Errorf("pack: GET %s: server reports no file size", h.url)
			}
			h.size = resp.ContentLength
		default:
			return classifyStatus(h.url, resp.StatusCode)
		}
		h.adoptValidator(resp)
		return nil
	})
}

func (h *HTTPRangeReaderAt) adoptValidator(resp *http.Response) {
	if et := resp.Header.Get("ETag"); et != "" {
		h.validator = et
	} else {
		h.validator = resp.Header.Get("Last-Modified")
	}
}

// probeFallback signals that HEAD succeeded but carried no usable
// length.
type probeFallback struct{}

func (*probeFallback) Error() string { return "pack: HEAD carried no Content-Length" }

// ReadAt implements io.ReaderAt: reads shorter than one chunk are
// served from the coalescing chunk cache; longer reads issue a single
// exact range request.
func (h *HTTPRangeReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pack: negative read offset %d", off)
	}
	if off >= h.size {
		return 0, io.EOF
	}
	end := off + int64(len(p))
	atEOF := false
	if end > h.size {
		end, atEOF = h.size, true
	}
	want := end - off
	if want >= h.opt.chunkSize {
		if err := h.fetchRange(h.ctx, p[:want], off); err != nil {
			return 0, err
		}
	} else {
		for cur := off; cur < end; {
			start := cur - cur%h.opt.chunkSize
			data, err := h.chunk(start)
			if err != nil {
				return int(cur - off), err
			}
			if int64(len(data)) <= cur-start {
				return int(cur - off), io.ErrUnexpectedEOF
			}
			cur += int64(copy(p[cur-off:want], data[cur-start:]))
		}
	}
	if atEOF {
		return int(want), io.EOF
	}
	return int(want), nil
}

// chunk returns the aligned chunk starting at start, fetching it
// single-flight and caching it in the LRU.
func (h *HTTPRangeReaderAt) chunk(start int64) ([]byte, error) {
	h.mu.Lock()
	if e, ok := h.chunks[start]; ok {
		h.order.MoveToFront(e.elem)
		h.mu.Unlock()
		<-e.ready
		return e.data, e.err
	}
	e := &chunkEntry{ready: make(chan struct{})}
	e.elem = h.order.PushFront(start)
	h.chunks[start] = e
	for len(h.chunks) > h.opt.chunkCache {
		back := h.order.Back()
		if back == nil {
			break
		}
		evict := back.Value.(int64)
		h.order.Remove(back)
		delete(h.chunks, evict)
	}
	h.mu.Unlock()

	end := start + h.opt.chunkSize
	if end > h.size {
		end = h.size
	}
	buf := make([]byte, end-start)
	e.err = h.fetchRange(h.ctx, buf, start)
	if e.err != nil {
		// Fetch failures are never memoized: drop the entry so the
		// next reader retries.
		h.mu.Lock()
		if cur, ok := h.chunks[start]; ok && cur == e {
			delete(h.chunks, start)
			h.order.Remove(e.elem)
		}
		h.mu.Unlock()
	} else {
		e.data = buf
	}
	close(e.ready)
	return e.data, e.err
}

// fetchRange fills buf with the bytes at [off, off+len(buf)), retrying
// transient failures, guarding against the file changing, and
// tolerating exactly one Range-ignoring 200.
func (h *HTTPRangeReaderAt) fetchRange(ctx context.Context, buf []byte, off int64) error {
	if len(buf) == 0 {
		return nil
	}
	return h.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.url, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+int64(len(buf))-1))
		if h.validator != "" {
			req.Header.Set("If-Range", h.validator)
		}
		resp, err := h.opt.client.Do(req)
		if err != nil {
			return &transientError{err}
		}
		defer drainClose(resp.Body)
		switch resp.StatusCode {
		case http.StatusPartialContent:
			if et := resp.Header.Get("ETag"); et != "" && h.validator != "" && et != h.validator {
				return fmt.Errorf("%w: ETag %s at open, %s now", ErrChangedMidRead, h.validator, et)
			}
			if start, ok := contentRangeStart(resp.Header.Get("Content-Range")); ok && start != off {
				return fmt.Errorf("pack: GET %s: asked for offset %d, server answered %d", h.url, off, start)
			}
			if _, err := io.ReadFull(resp.Body, buf); err != nil {
				return &transientError{fmt.Errorf("truncated range body: %w", err)}
			}
			return nil
		case http.StatusOK:
			// Either the file changed (If-Range mismatch makes a server
			// answer with the full current body) or the server ignores
			// Range entirely. Distinguish by validator.
			if h.validator != "" && h.responseValidator(resp) != h.validator {
				return fmt.Errorf("%w: full-body answer with a new validator", ErrChangedMidRead)
			}
			return h.readFromFullBody(resp, buf, off)
		case http.StatusRequestedRangeNotSatisfiable:
			// We only ask for ranges inside the size captured at open,
			// so a 416 means the file shrank or was replaced.
			return fmt.Errorf("%w: range %d+%d rejected with 416", ErrChangedMidRead, off, len(buf))
		default:
			return classifyStatus(h.url, resp.StatusCode)
		}
	})
}

func (h *HTTPRangeReaderAt) responseValidator(resp *http.Response) string {
	if et := resp.Header.Get("ETag"); et != "" {
		return et
	}
	return resp.Header.Get("Last-Modified")
}

// readFromFullBody salvages a ranged read from a 200-with-full-body
// answer, at most once per reader (see the file comment).
func (h *HTTPRangeReaderAt) readFromFullBody(resp *http.Response, buf []byte, off int64) error {
	h.mu.Lock()
	spent := h.fullBodyOK
	h.fullBodyOK = true
	h.mu.Unlock()
	if spent {
		return fmt.Errorf("%w (%s): fetch the file and use OpenFile instead", errRangeIgnored, h.url)
	}
	if resp.ContentLength >= 0 && resp.ContentLength != h.size {
		return fmt.Errorf("%w: full body is %d bytes, was %d at open", ErrChangedMidRead, resp.ContentLength, h.size)
	}
	if _, err := io.CopyN(io.Discard, resp.Body, off); err != nil {
		return &transientError{fmt.Errorf("truncated full body: %w", err)}
	}
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		return &transientError{fmt.Errorf("truncated full body: %w", err)}
	}
	return nil
}

// contentRangeTotal parses the total length out of a Content-Range
// header ("bytes 0-0/12345").
func contentRangeTotal(v string) (int64, bool) {
	_, after, ok := strings.Cut(v, "/")
	if !ok || after == "*" {
		return 0, false
	}
	n, err := strconv.ParseInt(after, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// contentRangeStart parses the range start out of a Content-Range
// header ("bytes 100-199/12345").
func contentRangeStart(v string) (int64, bool) {
	v = strings.TrimPrefix(v, "bytes ")
	before, _, ok := strings.Cut(v, "-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(before, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// StatusError reports a final HTTP failure from the blob server.
type StatusError struct {
	URL  string
	Code int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("pack: GET %s: status %d", e.URL, e.Code)
}

// transientError marks failures worth retrying — the same set
// toplist.Remote retries.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// classifyStatus maps a status to nil (200), a transient error
// (502/503/504, 429), or a final StatusError — toplist.Remote's
// classification applied to blob reads.
func classifyStatus(url string, code int) error {
	switch {
	case code == http.StatusOK:
		return nil
	case code == http.StatusBadGateway || code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout || code == http.StatusTooManyRequests:
		return &transientError{&StatusError{URL: url, Code: code}}
	default:
		return &StatusError{URL: url, Code: code}
	}
}

// retry runs op with jittered exponential backoff on transient
// failures, honouring ctx between attempts — toplist.Remote.retry's
// shape.
func (h *HTTPRangeReaderAt) retry(ctx context.Context, op func() error) error {
	var lastErr error
	backoff := h.opt.baseBackoff
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last error: %v)", err, lastErr)
			}
			return err
		}
		err := op()
		if err == nil {
			return nil
		}
		var te *transientError
		if !errors.As(err, &te) {
			return err
		}
		lastErr = te.err
		if attempt >= h.opt.maxAttempts {
			return fmt.Errorf("pack: giving up after %d attempts: %w", attempt, lastErr)
		}
		d := time.Duration(float64(backoff) * (0.5 + h.opt.jitter()))
		if err := h.opt.sleep(ctx, d); err != nil {
			return fmt.Errorf("%w (last error: %v)", err, lastErr)
		}
		backoff *= 2
	}
}

// drainClose consumes and closes a response body so the connection can
// be reused.
func drainClose(rc io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(rc, 1<<20)) //nolint:errcheck // best-effort keepalive drain
	rc.Close()
}

// OpenURL opens the packed archive served at url over HTTP Range
// requests — the object-store-style backend: any static file server
// holding the pack file becomes an archive server, with no
// archive-aware code on the remote side. The returned Pack reads
// lazily (directory at open, blobs on demand) and verifies every blob
// against its directory hash, so a lying or bit-flipping transport is
// caught per read. ctx bounds the size/validator probe and every
// later range read.
func OpenURL(ctx context.Context, url string, opts ...Option) (*Pack, error) {
	ra, err := NewHTTPRangeReaderAt(ctx, url, opts...)
	if err != nil {
		return nil, err
	}
	p, err := Open(ra, ra.Size(), opts...)
	if err != nil {
		return nil, fmt.Errorf("pack: open %s: %w", url, err)
	}
	return p, nil
}
