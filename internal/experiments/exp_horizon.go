package experiments

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/providers"
	"repro/internal/toplist"
)

func init() {
	register("ablation-horizon",
		"Ablation: ranking-window length vs list stability (§9.2 long-term/short-term lists)",
		runHorizon)
}

// runHorizon regenerates the Alexa-mechanism list under several window
// lengths from the same traffic model — the §9.2 recommendation that
// providers publish both a long-term (e.g. 90-day) and a short-term
// list, and the mechanism behind the January-2018 Alexa change: the
// paper's observed churn jump (21k → 483k/day) is what happens when
// the window collapses from ~90 days to ~1 day.
func runHorizon(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	days := st.Days()
	res := &Result{
		Paper:  "§9.2 + §6.1: Alexa churn was 21k/day under the long window and 483k/day after the change; recommendation: offer 90-day and most-recent versions.",
		Header: []string{"window (days)", "full churn/day", "head churn/day", "head τ day-to-day", "weekend amplification"},
	}
	for _, window := range []int{1, 7, 30, 90} {
		opts := providers.DefaultOptions(days, st.Scale.ListSize)
		opts.BurnInDays = st.Scale.BurnInDays
		opts.AlexaChangeDay = -1
		opts.AlexaAlphaPre = 2.0 / (float64(window) + 1)
		opts.AlexaAlphaPost = opts.AlexaAlphaPre
		opts.Enabled = []string{providers.Alexa}
		g, err := providers.NewGenerator(st.Model, opts)
		if err != nil {
			return nil, err
		}
		arch, err := g.Run(days)
		if err != nil {
			return nil, err
		}
		ctx := analysis.NewContext(st.World, arch)

		fullChurn := meanChurnShare(arch, providers.Alexa, 0)
		headChurn := meanChurnShare(arch, providers.Alexa, st.Scale.HeadSize)
		taus := ctx.KendallDayToDay(providers.Alexa, st.Scale.HeadSize)
		amp := weekendAmplification(arch, providers.Alexa)

		res.Rows = append(res.Rows, []string{
			d(window), pct(fullChurn), pct(headChurn), f3(mean(taus)), fmt.Sprintf("%.2fx", amp),
		})
	}
	res.Notes = append(res.Notes,
		"each row is a full Alexa-mechanism regeneration over the same traffic with EMA window = 2/(w+1)",
		"weekend amplification = mean churn into weekend days / mean churn into weekdays",
		"the 1-day row is the paper's post-January-2018 Alexa; the 90-day row is the pre-change list",
	)
	return res, nil
}

// meanChurnShare is the mean share of the (top-N) list replaced per
// day.
func meanChurnShare(arch toplist.Source, provider string, top int) float64 {
	var prev *toplist.List
	var sum float64
	n := 0
	toplist.EachDay(arch, func(day toplist.Day) {
		cur := arch.Get(provider, day)
		if cur == nil {
			return
		}
		if top > 0 {
			cur = cur.Top(top)
		}
		if prev != nil && prev.Len() > 0 {
			removed := 0
			for _, name := range prev.Names() {
				if !cur.Contains(name) {
					removed++
				}
			}
			sum += float64(removed) / float64(prev.Len())
			n++
		}
		prev = cur
	})
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// weekendAmplification compares churn into weekend days against churn
// into weekdays; 1.0 means no weekly pattern.
func weekendAmplification(arch toplist.Source, provider string) float64 {
	var prev *toplist.List
	var wkndSum, weekSum float64
	var wkndN, weekN int
	toplist.EachDay(arch, func(day toplist.Day) {
		cur := arch.Get(provider, day)
		if cur == nil {
			return
		}
		if prev != nil && prev.Len() > 0 {
			removed := 0
			for _, name := range prev.Names() {
				if !cur.Contains(name) {
					removed++
				}
			}
			share := float64(removed) / float64(prev.Len())
			if day.IsWeekend() {
				wkndSum += share
				wkndN++
			} else {
				weekSum += share
				weekN++
			}
		}
		prev = cur
	})
	if wkndN == 0 || weekN == 0 || weekSum == 0 {
		return math.NaN()
	}
	return (wkndSum / float64(wkndN)) / (weekSum / float64(weekN))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
