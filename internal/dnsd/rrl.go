package dnsd

import (
	"net"
	"sync"
	"time"
)

// Response-rate limiting (RRL). Authoritative servers answer spoofable
// UDP, so production deployments bound the per-source answer rate and
// convert part of the overflow into truncated answers instead of
// silence — a legitimate client retries over TCP (which is not
// spoofable), while an amplification victim stops receiving traffic.
// This is the BIND/NSD "slip" scheme in miniature, and it matters
// here because §7's manipulation experiments are exactly the kind of
// high-volume single-source query streams RRL is tuned to notice.

// RRLConfig parameterises the limiter.
type RRLConfig struct {
	// RatePerSecond is the sustained per-source answer budget.
	RatePerSecond float64
	// Burst is the bucket depth (instantaneous overshoot allowance).
	Burst float64
	// Slip answers every Slip-th over-limit query with a truncated
	// (TC) response instead of dropping it; 0 drops everything over
	// the limit.
	Slip int
}

// DefaultRRL matches common authoritative defaults (scaled for tests:
// production uses ~10-100 qps).
func DefaultRRL() RRLConfig {
	return RRLConfig{RatePerSecond: 20, Burst: 40, Slip: 2}
}

// rrl is a per-source token bucket table with lazy refill.
type rrl struct {
	cfg RRLConfig
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
	dropped uint64
	slipped uint64
}

type bucket struct {
	tokens   float64
	last     time.Time
	overflow int // consecutive over-limit queries, for slip
}

func newRRL(cfg RRLConfig) *rrl {
	return &rrl{
		cfg:     cfg,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// verdict is the limiter's decision for one answer.
type verdict int

const (
	sendFull verdict = iota
	sendTruncated
	dropAnswer
)

// check spends one token for src and returns the verdict.
func (r *rrl) check(src net.IP) verdict {
	key := src.String()
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.buckets[key]
	if !ok {
		b = &bucket{tokens: r.cfg.Burst, last: now}
		r.buckets[key] = b
		// Opportunistic table bound: recycle when the table grows
		// past ~64k sources (flood of spoofed /32s).
		if len(r.buckets) > 1<<16 {
			r.buckets = map[string]*bucket{key: b}
		}
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * r.cfg.RatePerSecond
		if b.tokens > r.cfg.Burst {
			b.tokens = r.cfg.Burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		b.overflow = 0
		return sendFull
	}
	b.overflow++
	if r.cfg.Slip > 0 && b.overflow%r.cfg.Slip == 0 {
		r.slipped++
		return sendTruncated
	}
	r.dropped++
	return dropAnswer
}

// counters snapshots drop/slip totals.
func (r *rrl) counters() (dropped, slipped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped, r.slipped
}
