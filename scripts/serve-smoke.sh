#!/bin/sh
# Operational smoke test for the serving core (internal/serve): start
# toplistd over a tiny saved archive, then assert the /metrics
# exposition is live, its request counters move with traffic, and a
# saturated concurrency limiter sheds with 503 instead of queueing.
# Run from the repository root: sh scripts/serve-smoke.sh
set -eu

addr="127.0.0.1:18572"
base="http://$addr"
workdir="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "==> building a tiny archive"
go run ./cmd/toplists rank example.com -scale test -days 8 \
    -save "$workdir/archive" >/dev/null

echo "==> starting toplistd -serve-archive -limit 1"
go build -o "$workdir/toplistd" ./cmd/toplistd
"$workdir/toplistd" -addr "$addr" -archive "$workdir/archive" \
    -serve-archive -limit 1 -access-log=false >"$workdir/toplistd.log" 2>&1 &
pid=$!

up=0
for _ in $(seq 1 100); do
    if curl -fs "$base/v1/index" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.1
done
if [ "$up" != 1 ]; then
    echo "FAIL: daemon never came up" >&2
    cat "$workdir/toplistd.log" >&2
    exit 1
fi

metric() { # metric <pattern> — print the value of the matching series
    curl -fs "$base/metrics" | grep "$1" | awk '{print $NF}' | head -n 1
}

echo "==> /metrics counters move with traffic"
before="$(metric '^http_requests_total{route="/v1/index"')"
: "${before:=0}"
curl -fs "$base/v1/index" >/dev/null
curl -fs "$base/archive/v1/manifest" >/dev/null
after="$(metric '^http_requests_total{route="/v1/index"')"
if [ -z "$after" ] || [ "$after" -le "${before:-0}" ]; then
    echo "FAIL: /v1/index request counter did not move ($before -> ${after:-none})" >&2
    exit 1
fi
if ! curl -fs "$base/metrics" | grep -q '^http_request_duration_seconds_count'; then
    echo "FAIL: latency histogram missing from exposition" >&2
    exit 1
fi
echo "    request counter: $before -> $after"

echo "==> saturated limiter sheds with 503"
codes="$workdir/codes"
shed=0
for _ in $(seq 1 30); do
    : >"$codes"
    storm=""
    for _ in $(seq 1 24); do
        curl -s -o /dev/null -w '%{http_code}\n' \
            "$base/v1/alexa/latest/top-1m.csv.gz" >>"$codes" &
        storm="$storm $!"
    done
    # Wait on the curls only — a bare `wait` would also wait on the
    # daemon job and never return.
    wait $storm
    if grep -q '^503$' "$codes"; then shed=1; break; fi
done
if [ "$shed" != 1 ]; then
    echo "FAIL: limiter never returned 503 under a 24-way storm" >&2
    exit 1
fi
shedcount="$(metric '^http_requests_shed_total')"
if [ -z "$shedcount" ] || [ "$shedcount" -lt 1 ]; then
    echo "FAIL: 503 seen but http_requests_shed_total is ${shedcount:-absent}" >&2
    exit 1
fi
echo "    shed $shedcount request(s) with 503"

echo "==> serving still healthy after the storm"
curl -fs "$base/v1/index" >/dev/null

echo "PASS: serve smoke"
