package toplist

import "sort"

// Source is the read side of a snapshot archive — the counterpart of
// SnapshotSink. Everything that consumes a multi-provider day range
// (the analyses, the experiment drivers, the HTTP publishers) depends
// on this interface rather than on a concrete store, so the same study
// can run against an in-memory Archive, a DiskStore reopened from a
// previous run, or a Remote served over HTTP from another machine
// (OpenRemote) — byte-identically, as the equivalence tests pin.
//
// Get returns nil for absent snapshots; implementations must be safe
// for concurrent readers (the experiment pool fans out over one
// Source).
type Source interface {
	// Get returns the snapshot for provider on day, or nil if absent.
	Get(provider string, day Day) *List
	// First returns the first day covered.
	First() Day
	// Last returns the last day covered.
	Last() Day
	// Days returns the number of days covered.
	Days() int
	// Providers returns provider names in insertion order.
	Providers() []string
}

// Store is a snapshot archive usable from both sides: the engine
// streams into it as a SnapshotSink and readers consume it as a
// Source. Archive and DiskStore are the two implementations.
type Store interface {
	SnapshotSink
	Source
}

// DayCount returns the number of days in the inclusive range
// [first, last], or 0 when the range is empty (last < first — e.g. a
// live archive that has not published its first day yet). Sources with
// possibly-empty ranges (Remote, gatekept views) share this so the
// empty-range convention has one definition.
func DayCount(first, last Day) int {
	if d := int(last-first) + 1; d > 0 {
		return d
	}
	return 0
}

// EachDay calls fn for every day the source covers, in order.
func EachDay(s Source, fn func(Day)) {
	for d := s.First(); d <= s.Last(); d++ {
		fn(d)
	}
}

// SortedProviders returns the source's provider names sorted
// alphabetically (stable presentation order for reports).
func SortedProviders(s Source) []string {
	out := s.Providers()
	sort.Strings(out)
	return out
}
