package listserv

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

func zoneServer(t *testing.T) (*httptest.Server, StaticZones) {
	t.Helper()
	zones := StaticZones{
		"com": {"alpha.com", "beta.com", "gamma.com"},
		"net": {"delta.net"},
		"org": {},
	}
	arch := testArchive(t, 1)
	srv := NewServer(arch).WithZones(zones)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, zones
}

func TestFetchZoneRoundTrip(t *testing.T) {
	ts, zones := zoneServer(t)
	c := NewClient(ts.URL, instantSleep())
	ctx := context.Background()

	got, err := c.FetchZone(ctx, "com")
	if err != nil {
		t.Fatal(err)
	}
	// WriteZone sorts; compare as sorted sets.
	want := []string{"alpha.com", "beta.com", "gamma.com"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("com zone = %v, want %v", got, want)
	}
	net, err := c.FetchZone(ctx, "net")
	if err != nil {
		t.Fatal(err)
	}
	if len(net) != 1 || net[0] != "delta.net" {
		t.Errorf("net zone = %v", net)
	}
	_ = zones
}

func TestFetchZoneEmptyZone(t *testing.T) {
	ts, _ := zoneServer(t)
	c := NewClient(ts.URL, instantSleep())
	got, err := c.FetchZone(context.Background(), "org")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("org zone = %v, want empty", got)
	}
}

func TestFetchZoneUnknownTLD(t *testing.T) {
	ts, _ := zoneServer(t)
	c := NewClient(ts.URL, instantSleep())
	if _, err := c.FetchZone(context.Background(), "dev"); !IsNotFound(err) {
		t.Fatalf("err = %v, want 404", err)
	}
}

func TestZoneEndpointServesETag(t *testing.T) {
	ts, _ := zoneServer(t)
	resp, err := http.Get(ts.URL + ZonePath("com"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("zone response lacks ETag")
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+ZonePath("com"), nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional zone GET = %d, want 304", resp2.StatusCode)
	}
}

func TestZoneEndpointRejectsNonZoneFiles(t *testing.T) {
	ts, _ := zoneServer(t)
	for _, path := range []string{"/v1/zones/com.txt", "/v1/zones/.zone", "/v1/zones/com"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestStaticZonesSource(t *testing.T) {
	z := StaticZones{"org": {"a.org"}, "com": {"b.com"}}
	if got := z.ZoneTLDs(); !reflect.DeepEqual(got, []string{"com", "org"}) {
		t.Errorf("tlds = %v", got)
	}
	if got := z.ZoneDomains("org"); len(got) != 1 {
		t.Errorf("org = %v", got)
	}
}
