package experiments

import (
	"fmt"

	"repro/internal/providers"
)

func init() {
	register("fig1a", "Intersection between full lists over time (Fig. 1a)", runFig1a)
	register("fig1b", "Daily removed-domain counts (Fig. 1b)", runFig1b)
	register("fig1c", "Average daily change over rank (Fig. 1c)", runFig1c)
	register("fig2a", "Cumulative unique domains ever listed (Fig. 2a)", runFig2a)
	register("fig2b", "Intersection with a fixed starting day (Fig. 2b)", runFig2b)
	register("fig2c", "CDF of days spent in the list (Fig. 2c)", runFig2c)
}

// seriesStep picks a readable sampling interval for day series.
func seriesStep(days int) int {
	step := days / 26
	if step < 1 {
		step = 1
	}
	return step
}

func runFig1a(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	series := st.Analysis.IntersectionSeries(providers.Alexa, providers.Umbrella, providers.Majestic, 0)
	res := &Result{
		Paper:  "Fig. 1a: of 1M, Alexa∩Majestic 285k, Alexa∩Umbrella 150k, Umbrella∩Majestic 113k, all three 99k; Alexa∩Majestic drops to 240k after the January 2018 change",
		Header: []string{"day", "alexa∩umbrella", "alexa∩majestic", "umbrella∩majestic", "all three"},
	}
	step := seriesStep(len(series))
	for i := 0; i < len(series); i += step {
		p := series[i]
		res.Rows = append(res.Rows, []string{
			p.Day.String(), d(p.AlexaUmbrella), d(p.AlexaMajestic),
			d(p.UmbrellaMajestic), d(p.AllThree),
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf("base-domain normalised; Alexa change at day %d", st.ChangeDay()))
	return res, nil
}

func runFig1b(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper:  "Fig. 1b: Majestic ~6k/day, Alexa 21k before its change then 483k with a weekly pattern, Umbrella ~118k with a weekly pattern (per 1M)",
		Header: []string{"day", "alexa", "umbrella", "majestic"},
	}
	byP := map[string][]int{}
	for _, p := range st.Providers() {
		byP[p] = st.Analysis.DailyRemoved(p, 0)
	}
	n := len(byP[providers.Alexa])
	step := seriesStep(n)
	for i := 0; i < n; i += step {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d->%d", i, i+1),
			d(byP[providers.Alexa][i]), d(byP[providers.Umbrella][i]), d(byP[providers.Majestic][i]),
		})
	}
	return res, nil
}

func runFig1c(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	sizes := []int{}
	for _, s := range []int{10, 30, 100, 300, 1000, 3000, 10000, 30000} {
		if s <= st.Scale.ListSize {
			sizes = append(sizes, s)
		}
	}
	if sizes[len(sizes)-1] != st.Scale.ListSize {
		sizes = append(sizes, st.Scale.ListSize)
	}
	change := st.ChangeDay()
	res := &Result{
		Paper:  "Fig. 1c: churn increases with rank for Alexa and Umbrella but stays flat for Majestic; Alexa head churn jumps 0.62% -> 7.7% after its change",
		Header: []string{"subset", "alexa-pre", "alexa-post", "umbrella", "majestic"},
	}
	pre := st.Analysis.ChurnByRank(providers.Alexa, sizes, 7, change)
	post := st.Analysis.ChurnByRank(providers.Alexa, sizes, change+1, st.Days())
	umb := st.Analysis.ChurnByRank(providers.Umbrella, sizes, 7, st.Days())
	maj := st.Analysis.ChurnByRank(providers.Majestic, sizes, 7, st.Days())
	for i, s := range sizes {
		res.Rows = append(res.Rows, []string{
			d(s), pct(pre[i]), pct(post[i]), pct(umb[i]), pct(maj[i]),
		})
	}
	return res, nil
}

func runFig2a(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper:  "Fig. 2a: roughly linear growth; after one year Majestic 1.7M, Umbrella 7.3M, Alexa 13.5M distinct domains (per 1M list); 20-33% of daily changers are new",
		Header: []string{"day", "alexa", "umbrella", "majestic"},
	}
	a := st.Analysis.CumulativeUnique(providers.Alexa, 0)
	u := st.Analysis.CumulativeUnique(providers.Umbrella, 0)
	m := st.Analysis.CumulativeUnique(providers.Majestic, 0)
	step := seriesStep(len(a))
	for i := 0; i < len(a); i += step {
		res.Rows = append(res.Rows, []string{d(i), d(a[i]), d(u[i]), d(m[i])})
	}
	for _, p := range st.Providers() {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: %.0f%% of daily changers are first-time entries", p,
			100*st.Analysis.NewVsRejoin(p, 0)))
	}
	return res, nil
}

func runFig2b(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper:  "Fig. 2b: non-monotonic decay with weekly rejoin for Alexa/Umbrella; slow monotone decay for Majestic (median over 7 start days)",
		Header: []string{"offset-days", "alexa", "umbrella", "majestic"},
	}
	a := st.Analysis.DecayFromStart(providers.Alexa, 0)
	u := st.Analysis.DecayFromStart(providers.Umbrella, 0)
	m := st.Analysis.DecayFromStart(providers.Majestic, 0)
	step := seriesStep(len(a))
	for i := 0; i < len(a); i += step {
		res.Rows = append(res.Rows, []string{d(i), pct(a[i]), pct(u[i]), pct(m[i])})
	}
	return res, nil
}

func runFig2c(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper:  "Fig. 2c: ~90% of Alexa 1M domains present on ≤50 of 333 days; 40% of Majestic 1M domains present the whole year; Majestic 1k most stable",
		Header: []string{"list", "top", "P(≤10% days)", "P(≤50% days)", "P(<100% days)"},
	}
	for _, top := range []int{0, st.Scale.HeadSize} {
		for _, p := range st.Providers() {
			cdf := st.Analysis.DaysIncludedCDF(p, top)
			label := "full"
			if top > 0 {
				label = d(top)
			}
			res.Rows = append(res.Rows, []string{
				p, label,
				pct(cdf.Eval(0.10)), pct(cdf.Eval(0.50)), pct(cdf.Eval(0.999)),
			})
		}
	}
	return res, nil
}
