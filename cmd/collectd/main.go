// Command collectd is the longitudinal collector behind the paper's
// §4 dataset: pointed at a snapshot publisher (cmd/toplistd or any
// server speaking the same routes), it downloads every provider's
// daily CSV it has not stored yet and persists it into a durable
// toplist.DiskStore — gzip snapshots plus a manifest, the same layout
// `toplists -save` writes, so a collected archive reopens with
// toplist.OpenArchive and feeds experiments without any HTTP hop or
// resimulation. Run it with -interval to keep following a live
// publisher, or -once for a single catch-up pass.
//
// Usage:
//
//	collectd -url http://host:8080 -out archive [-once] [-interval 1h]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/listserv"
	"repro/internal/toplist"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("collectd", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "publisher base URL")
	outDir := fs.String("out", "archive", "archive directory (toplist.DiskStore layout)")
	once := fs.Bool("once", false, "catch up and exit instead of following")
	interval := fs.Duration("interval", time.Hour, "poll interval in follow mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(logw, "collectd: ", log.LstdFlags)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := listserv.NewClient(*url, listserv.WithFormat(listserv.FormatZip))

	if _, err := collectOnce(ctx, client, *outDir, logger); err != nil {
		return err
	}
	if *once {
		return nil
	}
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			logger.Print("stopping")
			return nil
		case <-t.C:
			if _, err := collectOnce(ctx, client, *outDir, logger); err != nil {
				// A failed pass is not fatal in follow mode: the next
				// tick retries, like a cron-driven collector.
				logger.Printf("pass failed: %v", err)
			}
		}
	}
}

// collectOnce downloads every published snapshot not yet on disk and
// returns how many it wrote. Because a live publisher streams days out
// of a still-running simulation, each pass picks up exactly the days
// published since the last one; the store's covered range extends as
// the publisher's index advances.
func collectOnce(ctx context.Context, client *listserv.Client, outDir string, logger *log.Logger) (int, error) {
	idx, err := client.Index(ctx)
	if err != nil {
		return 0, err
	}
	first, err := toplist.ParseDay(idx.FirstDay)
	if err != nil {
		return 0, fmt.Errorf("bad index first_day: %w", err)
	}
	last, err := toplist.ParseDay(idx.LastDay)
	if err != nil {
		return 0, fmt.Errorf("bad index last_day: %w", err)
	}
	store, err := openStore(outDir, first, last)
	if err != nil {
		return 0, err
	}
	if err := store.Expect(idx.Providers...); err != nil {
		return 0, err
	}
	written := 0
	for _, provider := range idx.Providers {
		for d := first; d <= last; d++ {
			if store.Has(provider, d) {
				continue // already collected
			}
			list, err := client.FetchDay(ctx, provider, d)
			if listserv.IsNotFound(err) {
				logger.Printf("gap: %s %s not published", provider, d)
				continue
			}
			if err != nil {
				return written, err
			}
			if err := store.Put(provider, d, list); err != nil {
				return written, err
			}
			written++
		}
	}
	if written > 0 {
		logger.Printf("collected %d new snapshots into %s", written, outDir)
	}
	return written, nil
}

// openStore opens the durable archive at dir, creating it on the first
// pass and extending its covered range as the publisher's index
// advances. The store is the same toplist.DiskStore the simulation
// engine can stream into directly, so the identical on-disk archive
// can also be produced without the HTTP hop by handing it to
// engine.Run — and either way it reopens with toplist.OpenArchive.
func openStore(dir string, first, last toplist.Day) (*toplist.DiskStore, error) {
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		if !os.IsNotExist(err) {
			return nil, err
		}
		return toplist.CreateDiskStore(dir, first, last)
	}
	store, err := toplist.OpenArchive(dir)
	if err != nil {
		return nil, err
	}
	if err := store.ExtendTo(last); err != nil {
		return nil, err
	}
	return store, nil
}
