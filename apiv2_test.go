package toplists

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/toplist"
)

// smallScale is the reduced scale shared by the API v2 tests: big
// enough for every provider to publish, small enough to simulate twice
// in a test run.
func smallScale() Scale {
	scale := TestScale()
	scale.Population.Days = 10
	scale.BurnInDays = 15
	return scale
}

// TestStreamCancellationStopsWithinOneDay pins the v2 cancellation
// contract: after ctx is cancelled during day N, no snapshot for any
// day after N+1 is delivered and the stream returns ctx.Err() — for
// the serial reference path and the concurrent engine alike.
func TestStreamCancellationStopsWithinOneDay(t *testing.T) {
	const cancelDay = 3
	for _, workers := range []int{1, 0} {
		scale := smallScale()
		scale.Workers = workers
		ctx, cancel := context.WithCancel(context.Background())
		var lastDay toplist.Day
		err := Stream(ctx, SinkFunc(func(provider string, day toplist.Day, l *toplist.List) error {
			if day > lastDay {
				lastDay = day
			}
			if day == cancelDay {
				cancel()
			}
			return nil
		}), WithScale(scale))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if lastDay > cancelDay+1 {
			t.Fatalf("workers=%d: snapshots delivered through day %d after cancelling at day %d",
				workers, lastDay, cancelDay)
		}
	}
}

// TestSimulateTeesToDurableArchive: WithArchiveDir persists the run as
// it generates, and the reopened store is bitwise identical to the
// in-memory archive, including Complete/Missing via the manifest.
func TestSimulateTeesToDurableArchive(t *testing.T) {
	scale := smallScale()
	dir := filepath.Join(t.TempDir(), "joint")
	study, err := Simulate(context.Background(), WithScale(scale), WithArchiveDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !src.Complete() {
		t.Fatalf("reopened archive incomplete: %d missing", len(src.Missing()))
	}
	if src.Scale() != scale.Name {
		t.Fatalf("manifest scale %q, want %q", src.Scale(), scale.Name)
	}
	if !reflect.DeepEqual(src.Expected(), []string{Alexa, Umbrella, Majestic}) {
		t.Fatalf("manifest expected providers %v", src.Expected())
	}
	if !reflect.DeepEqual(src.Providers(), study.Archive.Providers()) {
		t.Fatalf("providers %v vs %v", src.Providers(), study.Archive.Providers())
	}
	for _, p := range study.Archive.Providers() {
		toplist.EachDay(study.Archive, func(d toplist.Day) {
			want := study.Archive.Get(p, d).Names()
			got := src.Get(p, d)
			if got == nil || !reflect.DeepEqual(want, got.Names()) {
				t.Fatalf("%s %v: persisted snapshot differs", p, d)
			}
		})
	}
}

// TestResumeFromDiskIsByteIdenticalWithoutResimulation is the
// acceptance scenario: simulate once persisting to disk, reopen the
// archive, run an experiment through WithSource, and get byte-
// identical output to the in-memory run — with the engine provably
// never invoked on the resumed path.
func TestResumeFromDiskIsByteIdenticalWithoutResimulation(t *testing.T) {
	scale := smallScale()
	dir := filepath.Join(t.TempDir(), "joint")
	ctx := context.Background()

	// Simulate once, teeing to disk, and render the reference result.
	memLab := NewLab(WithScale(scale), WithArchiveDir(dir))
	memRes, err := memLab.Run(ctx, "table5")
	if err != nil {
		t.Fatal(err)
	}

	// Reopen and rerun from disk: the engine must not run again.
	src, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	runsBefore := engine.RunCount()
	diskLab := NewLab(WithScale(scale), WithSource(src))
	diskRes, err := diskLab.Run(ctx, "table5")
	if err != nil {
		t.Fatal(err)
	}
	if got := engine.RunCount(); got != runsBefore {
		t.Fatalf("engine invoked %d times on the resumed path", got-runsBefore)
	}
	if memRes.Render() != diskRes.Render() {
		t.Fatalf("resumed output differs:\n--- in-memory ---\n%s\n--- from disk ---\n%s",
			memRes.Render(), diskRes.Render())
	}

	// The study built from the source serves the source itself.
	st, err := diskLab.Study()
	if err != nil {
		t.Fatal(err)
	}
	if st.Archive != Source(src) {
		t.Fatal("study from WithSource does not serve the given source")
	}

	// Simulate(WithSource) is the study-only variant of the same path.
	runsBefore = engine.RunCount()
	st2, err := Simulate(ctx, WithScale(scale), WithSource(src))
	if err != nil {
		t.Fatal(err)
	}
	if engine.RunCount() != runsBefore {
		t.Fatal("Simulate(WithSource) invoked the engine")
	}
	if st2.Archive.Get(Alexa, 0) == nil {
		t.Fatal("study from source serves no snapshots")
	}
}

// TestOptionValidation covers the option conflicts and the deferred
// Lab construction error.
func TestOptionValidation(t *testing.T) {
	ctx := context.Background()
	scale := smallScale()
	src, err := CreateArchive(filepath.Join(t.TempDir(), "a"), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(ctx, WithScale(scale), WithSource(src), WithArchiveDir(t.TempDir())); err == nil {
		t.Fatal("WithSource + WithArchiveDir should fail")
	}
	if err := Stream(ctx, SinkFunc(func(string, toplist.Day, *toplist.List) error { return nil }),
		WithScale(scale), WithSource(src)); err == nil {
		t.Fatal("Stream from a source should fail")
	}
	// Archive days not matching the scale's window fails RunFrom.
	if _, err := Simulate(ctx, WithScale(scale), WithSource(src)); err == nil {
		t.Fatal("mismatched source window should fail")
	}
	// A cancelled context fails Lab.Run before any simulation.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	lab := NewLab(WithScale(scale))
	if _, err := lab.Run(cancelled, "table1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled lab run: err = %v", err)
	}
	// A Lab built from conflicting options surfaces the real
	// configuration error at first use, not a downstream symptom.
	bad := NewLab(WithScale(scale), WithSource(src), WithArchiveDir(t.TempDir()))
	if _, err := bad.Study(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("conflicting lab options surfaced %v", err)
	}
}

// TestDeprecatedShimsStillWork keeps the v1 surface alive for external
// callers: the shims must behave exactly like their v2 equivalents.
func TestDeprecatedShimsStillWork(t *testing.T) {
	scale := smallScale()
	st, err := SimulateScale(scale)
	if err != nil {
		t.Fatal(err)
	}
	if st.Archive.Get(Alexa, 0) == nil {
		t.Fatal("shim simulate produced no archive")
	}
	days := 0
	if err := StreamScale(scale, SinkFunc(func(p string, d toplist.Day, l *toplist.List) error {
		days++
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if days != 3*scale.Population.Days {
		t.Fatalf("shim stream delivered %d snapshots", days)
	}
	lab := NewLabScale(scale)
	res, err := lab.Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "table1" {
		t.Fatalf("shim lab ran %q", res.ID)
	}
	if _, err := lab.Study(); err != nil {
		t.Fatal(err)
	}
}
