package serve

import (
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/toplist"
)

// Middleware wraps an http.Handler with one serving concern.
type Middleware func(http.Handler) http.Handler

// Chain applies mw to h with mw[0] outermost. The daemons compose the
// standard stack as
//
//	Chain(mux,
//	    metrics.Instrument(RouteLabel), // outermost: counts everything, sheds included
//	    AccessLog(logger),              // logs everything, sheds included
//	    Limit(n, metrics),              // sheds before any handler work
//	    Recover(logger, metrics))       // innermost: a panicking handler still yields a 500
//
// so the metrics and the access log observe shed requests, and the
// limiter bounds only real handler work.
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// RouteLabel normalises a request path to its route — the label
// cardinality /metrics series are keyed by. Snapshot routes collapse
// over provider and day (one series per route, not per blob).
func RouteLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/metrics" || p == "/v1/index":
		return p
	case strings.HasPrefix(p, "/v1/zones/"):
		return "/v1/zones"
	case strings.HasPrefix(p, toplist.RemoteAPIPrefix+"/snapshots/"):
		return toplist.RemoteAPIPrefix + "/snapshots"
	case p == toplist.RemoteManifestPath() || p == toplist.RemoteDaysPath() || p == toplist.RemoteProvidersPath():
		return p
	case strings.HasPrefix(p, "/v1/"):
		return "/v1/snapshot"
	case strings.HasPrefix(p, "/shard/v1/"):
		// Shard worker API (internal/shard mounts it; the literal prefix
		// avoids a serve → shard import cycle). Collapse per-session and
		// per-day paths onto the operation segment so label cardinality
		// stays bounded: /shard/v1/step/<session>/<day> → /shard/v1/step.
		rest := strings.TrimPrefix(p, "/shard/v1/")
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		return "/shard/v1/" + rest
	default:
		return "other"
	}
}

// statusWriter captures the status code and body size a handler
// produced, for the metrics and access-log middleware. Flush is passed
// through so streaming handlers keep working behind the chain.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// Instrument returns the middleware feeding m: per-route request
// counters by status class, latency histograms, response bytes, and
// the in-flight gauge. label maps a request to its route series (use
// RouteLabel unless the mux has custom routes).
func (m *Metrics) Instrument(label func(*http.Request) string) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			m.inFlight.Add(1)
			defer m.inFlight.Add(-1)
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			m.Observe(label(r), sw.code(), sw.bytes, time.Since(start))
		})
	}
}

// AccessLog returns a middleware writing one line per request:
// method, path, status, body bytes, and wall time. A nil logger
// disables it (the middleware becomes a no-op), so benchmarks and
// tests can run the production chain silently.
func AccessLog(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			logger.Printf("%s %s %d %dB %s", r.Method, r.URL.Path, sw.code(), sw.bytes, time.Since(start).Round(time.Microsecond))
		})
	}
}

// Limit returns a concurrency limiter with load shedding: at most n
// requests run concurrently; a request arriving with all n slots taken
// is refused immediately with 503 + Retry-After rather than queued —
// under overload a bounded daemon stays responsive for the requests it
// does admit instead of letting every request time out together. Shed
// requests are counted on m (which may be nil). n <= 0 disables the
// limit.
func Limit(n int, m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		if n <= 0 {
			return next
		}
		sem := make(chan struct{}, n)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				next.ServeHTTP(w, r)
			default:
				if m != nil {
					m.Shed()
				}
				w.Header().Set("Retry-After", "1")
				http.Error(w, "overloaded, retry later", http.StatusServiceUnavailable)
			}
		})
	}
}

// Recover returns a middleware converting handler panics into 500s:
// the daemon keeps serving, the panic is logged and counted, and the
// connection-abort sentinel (http.ErrAbortHandler) keeps its contract
// of killing just the connection. m and logger may be nil.
func Recover(logger *log.Logger, m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				if p == http.ErrAbortHandler {
					panic(p)
				}
				if m != nil {
					m.panics.Add(1)
				}
				if logger != nil {
					logger.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, p)
				}
				// Best effort: if the handler already wrote headers this
				// is a no-op superfluous-WriteHeader, and the truncated
				// body is the client's signal.
				http.Error(w, "internal error", http.StatusInternalServerError)
			}()
			next.ServeHTTP(w, r)
		})
	}
}
