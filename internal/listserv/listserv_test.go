package listserv

import (
	"archive/zip"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/toplist"
)

// testArchive builds a deterministic 3-provider archive over days
// [0, days). Lists differ per provider and per day so equality checks
// are meaningful.
func testArchive(t *testing.T, days int) *toplist.Archive {
	t.Helper()
	a := toplist.NewArchive(0, toplist.Day(days-1))
	for _, p := range []string{"alexa", "umbrella", "majestic"} {
		for d := 0; d < days; d++ {
			names := make([]string, 0, 20)
			for i := 0; i < 20; i++ {
				names = append(names, fmt.Sprintf("%s-d%d-r%d.example.com", p, d, i))
			}
			if err := a.Put(p, toplist.Day(d), toplist.New(names)); err != nil {
				t.Fatalf("Put(%s,%d): %v", p, d, err)
			}
		}
	}
	return a
}

func sameList(a, b *toplist.List) bool {
	return a != nil && b != nil && reflect.DeepEqual(a.Names(), b.Names())
}

func instantSleep() ClientOption {
	return withSleep(func(ctx context.Context, d time.Duration) error { return ctx.Err() })
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	list := toplist.New([]string{"google.com", "facebook.com", "netflix.com"})
	for _, f := range sortedFormats() {
		data, err := Encode(list, f)
		if err != nil {
			t.Fatalf("Encode(%v): %v", f, err)
		}
		got, err := Decode(data, f)
		if err != nil {
			t.Fatalf("Decode(%v): %v", f, err)
		}
		if !sameList(list, got) {
			t.Errorf("format %v: round trip mismatch: %v", f, got.Names())
		}
	}
}

func TestEncodeFormatsDiffer(t *testing.T) {
	list := toplist.New([]string{"a.com", "b.com"})
	csv, _ := Encode(list, FormatCSV)
	gz, _ := Encode(list, FormatGzip)
	zp, _ := Encode(list, FormatZip)
	if string(csv) == string(gz) || string(csv) == string(zp) {
		t.Fatal("compressed formats should not equal bare CSV")
	}
	if !strings.HasPrefix(string(csv), "1,a.com\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, f := range []Format{FormatGzip, FormatZip} {
		if _, err := Decode([]byte("not an archive"), f); err == nil {
			t.Errorf("Decode garbage as %v: want error", f)
		}
	}
	if _, err := Decode([]byte("1;semicolons.com\n"), FormatCSV); err == nil {
		t.Error("Decode malformed CSV: want error")
	}
}

func TestDecodeZipWithoutCSVMember(t *testing.T) {
	// A zip archive without a .csv member must be rejected, not
	// silently decoded as an empty list.
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	f, err := zw.Create("README.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("no list here")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(buf.Bytes(), FormatZip); err == nil {
		t.Fatal("zip without .csv member accepted")
	}
	// A non-zip payload is rejected at the container level.
	gz, _ := Encode(toplist.New([]string{"x.com"}), FormatGzip)
	if _, err := Decode(gz, FormatZip); err == nil {
		t.Fatal("want error decoding gzip payload as zip")
	}
}

func TestFormatStringsAndPaths(t *testing.T) {
	if FormatZip.String() != "top-1m.csv.zip" {
		t.Fatalf("zip suffix = %q", FormatZip.String())
	}
	p := SnapshotPath("alexa", 0, FormatCSV)
	if p != "/v1/alexa/2017-06-06/top-1m.csv" {
		t.Fatalf("SnapshotPath = %q", p)
	}
	if LatestPath("umbrella", FormatGzip) != "/v1/umbrella/latest/top-1m.csv.gz" {
		t.Fatalf("LatestPath = %q", LatestPath("umbrella", FormatGzip))
	}
}

func TestServerIndex(t *testing.T) {
	arch := testArchive(t, 5)
	ts := httptest.NewServer(NewServer(arch))
	defer ts.Close()

	c := NewClient(ts.URL, instantSleep())
	idx, err := c.Index(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alexa", "majestic", "umbrella"}
	if !reflect.DeepEqual(idx.Providers, want) {
		t.Errorf("providers = %v, want %v", idx.Providers, want)
	}
	if idx.Days != 5 || idx.FirstDay != "2017-06-06" || idx.LastDay != "2017-06-10" {
		t.Errorf("index = %+v", idx)
	}
}

func TestServerServesEveryFormat(t *testing.T) {
	arch := testArchive(t, 2)
	ts := httptest.NewServer(NewServer(arch))
	defer ts.Close()

	for _, f := range sortedFormats() {
		c := NewClient(ts.URL, WithFormat(f), instantSleep())
		got, err := c.FetchDay(context.Background(), "alexa", 1)
		if err != nil {
			t.Fatalf("FetchDay(%v): %v", f, err)
		}
		if !sameList(got, arch.Get("alexa", 1)) {
			t.Errorf("format %v: wrong list", f)
		}
	}
}

func TestServerLatestFollowsGatekeeper(t *testing.T) {
	arch := testArchive(t, 4)
	gk := NewGatekeeper(arch, 1)
	ts := httptest.NewServer(NewServerAt(gk))
	defer ts.Close()

	c := NewClient(ts.URL, instantSleep())
	ctx := context.Background()

	got, err := c.FetchLatest(ctx, "alexa")
	if err != nil {
		t.Fatal(err)
	}
	if !sameList(got, arch.Get("alexa", 1)) {
		t.Error("latest should be day 1 before Advance")
	}
	if _, err := c.FetchDay(ctx, "alexa", 3); !IsNotFound(err) {
		t.Errorf("day 3 before Advance: want 404, got %v", err)
	}

	gk.Advance(3)
	got, err = c.FetchLatest(ctx, "alexa")
	if err != nil {
		t.Fatal(err)
	}
	if !sameList(got, arch.Get("alexa", 3)) {
		t.Error("latest should be day 3 after Advance")
	}
	// Advance never retracts.
	gk.Advance(0)
	if gk.LastVisible() != 3 {
		t.Errorf("LastVisible = %v after backwards Advance", gk.LastVisible())
	}
}

func TestServerNotFoundCases(t *testing.T) {
	arch := testArchive(t, 2)
	ts := httptest.NewServer(NewServer(arch))
	defer ts.Close()

	cases := []struct {
		path string
		code int
	}{
		{"/v1/nosuch/latest/top-1m.csv", http.StatusNotFound},
		{"/v1/alexa/2019-01-01/top-1m.csv", http.StatusNotFound},  // beyond range
		{"/v1/alexa/2017-06-06/top-1m.tsv", http.StatusNotFound},  // unknown file
		{"/v1/alexa/yesterday/top-1m.csv", http.StatusBadRequest}, // bad date
		{"/v1/alexa/2016-01-01/top-1m.csv", http.StatusNotFound},  // before epoch range
		{"/v2/alexa/latest/top-1m.csv", http.StatusNotFound},      // wrong version
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.code)
		}
	}
}

func TestServerConditionalGet(t *testing.T) {
	arch := testArchive(t, 1)
	ts := httptest.NewServer(NewServer(arch))
	defer ts.Close()

	url := ts.URL + SnapshotPath("alexa", 0, FormatCSV)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on snapshot response")
	}
	if lm := resp.Header.Get("Last-Modified"); lm == "" {
		t.Fatal("no Last-Modified on snapshot response")
	}
	if day := resp.Header.Get("X-Toplist-Day"); day != "2017-06-06" {
		t.Fatalf("X-Toplist-Day = %q", day)
	}

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET = %d, want 304", resp2.StatusCode)
	}
}

func TestServerRangeRequest(t *testing.T) {
	arch := testArchive(t, 1)
	ts := httptest.NewServer(NewServer(arch))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+SnapshotPath("alexa", 0, FormatCSV), nil)
	req.Header.Set("Range", "bytes=0-9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range GET = %d, want 206", resp.StatusCode)
	}
}

func TestClientETagCacheAvoidsRedownload(t *testing.T) {
	arch := testArchive(t, 1)
	var hits, notModified atomic.Int64
	inner := NewServer(arch)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		if rec.Code == http.StatusNotModified {
			notModified.Add(1)
		}
		for k, v := range rec.Header() {
			w.Header()[k] = v
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes()) //nolint:errcheck
	}))
	defer ts.Close()

	c := NewClient(ts.URL, WithFormat(FormatCSV), instantSleep())
	ctx := context.Background()
	first, err := c.FetchDay(ctx, "alexa", 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.FetchDay(ctx, "alexa", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameList(first, second) {
		t.Fatal("cached fetch returned different list")
	}
	if hits.Load() != 2 {
		t.Fatalf("requests = %d, want 2", hits.Load())
	}
	if notModified.Load() != 1 {
		t.Fatalf("304 responses = %d, want 1", notModified.Load())
	}
}

// flakyHandler fails n requests with the given code before delegating.
func flakyHandler(n int, code int, next http.Handler) http.Handler {
	var remaining atomic.Int64
	remaining.Store(int64(n))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if remaining.Add(-1) >= 0 {
			http.Error(w, "synthetic outage", code)
			return
		}
		next.ServeHTTP(w, r)
	})
}

func TestClientRetriesTransientFailures(t *testing.T) {
	arch := testArchive(t, 1)
	ts := httptest.NewServer(flakyHandler(2, http.StatusServiceUnavailable, NewServer(arch)))
	defer ts.Close()

	var delays []time.Duration
	var mu sync.Mutex
	c := NewClient(ts.URL,
		WithFormat(FormatCSV),
		WithMaxAttempts(4),
		WithBaseBackoff(100*time.Millisecond),
		withSleep(func(ctx context.Context, d time.Duration) error {
			mu.Lock()
			delays = append(delays, d)
			mu.Unlock()
			return ctx.Err()
		}))
	got, err := c.FetchDay(context.Background(), "alexa", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameList(got, arch.Get("alexa", 0)) {
		t.Error("wrong list after retries")
	}
	if len(delays) != 2 {
		t.Fatalf("sleeps = %d, want 2", len(delays))
	}
	// Jittered exponential backoff: attempt 2 base 100ms (50–150ms),
	// attempt 3 base 200ms (100–300ms).
	if delays[0] < 50*time.Millisecond || delays[0] > 150*time.Millisecond {
		t.Errorf("delay[0] = %v outside jitter window", delays[0])
	}
	if delays[1] < 100*time.Millisecond || delays[1] > 300*time.Millisecond {
		t.Errorf("delay[1] = %v outside jitter window", delays[1])
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	arch := testArchive(t, 1)
	ts := httptest.NewServer(flakyHandler(100, http.StatusInternalServerError, NewServer(arch)))
	defer ts.Close()

	c := NewClient(ts.URL, WithFormat(FormatCSV), WithMaxAttempts(3), instantSleep())
	_, err := c.FetchDay(context.Background(), "alexa", 0)
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("err = %v, want wrapped 500 StatusError", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("err = %v, want attempt count", err)
	}
}

func TestClientDoesNotRetry404(t *testing.T) {
	arch := testArchive(t, 1)
	var hits atomic.Int64
	inner := NewServer(arch)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, WithFormat(FormatCSV), WithMaxAttempts(5), instantSleep())
	_, err := c.FetchDay(context.Background(), "nosuch", 0)
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want 404", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("requests = %d, want exactly 1 (no retries on 404)", hits.Load())
	}
}

func TestClientRetriesCorruptBody(t *testing.T) {
	arch := testArchive(t, 1)
	var n atomic.Int64
	inner := NewServer(arch)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Header().Set("Content-Type", "text/csv")
			fmt.Fprint(w, "1,ok.com\n7,out-of-order.com\n")
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, WithFormat(FormatCSV), instantSleep())
	got, err := c.FetchDay(context.Background(), "alexa", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameList(got, arch.Get("alexa", 0)) {
		t.Error("wrong list after corrupt-body retry")
	}
	if n.Load() != 2 {
		t.Fatalf("requests = %d, want 2", n.Load())
	}
}

func TestClientBodyLimit(t *testing.T) {
	arch := testArchive(t, 1)
	ts := httptest.NewServer(NewServer(arch))
	defer ts.Close()

	c := NewClient(ts.URL, WithFormat(FormatCSV), WithMaxBodyBytes(16), WithMaxAttempts(1), instantSleep())
	if _, err := c.FetchDay(context.Background(), "alexa", 0); err == nil {
		t.Fatal("want error for oversized body")
	}
}

func TestClientContextCancellation(t *testing.T) {
	arch := testArchive(t, 1)
	ts := httptest.NewServer(flakyHandler(100, http.StatusBadGateway, NewServer(arch)))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := NewClient(ts.URL, WithFormat(FormatCSV), WithMaxAttempts(10),
		withSleep(func(ctx context.Context, d time.Duration) error {
			cancel() // cancel during the first backoff
			return ctx.Err()
		}))
	_, err := c.FetchDay(ctx, "alexa", 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "502") {
		t.Errorf("err should retain last transient cause, got %v", err)
	}
}

func TestMirrorCollectRebuildsArchive(t *testing.T) {
	arch := testArchive(t, 6)
	ts := httptest.NewServer(NewServer(arch))
	defer ts.Close()

	c := NewClient(ts.URL, instantSleep())
	m := NewMirror(c, []string{"alexa", "umbrella", "majestic"})
	got, err := m.Collect(context.Background(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Complete() {
		t.Fatal("mirrored archive incomplete")
	}
	for _, p := range arch.Providers() {
		for d := toplist.Day(0); d <= 5; d++ {
			if !sameList(got.Get(p, d), arch.Get(p, d)) {
				t.Fatalf("mismatch at %s day %v", p, d)
			}
		}
	}
	if len(m.Gaps()) != 0 {
		t.Errorf("gaps = %v, want none", m.Gaps())
	}
}

func TestMirrorRecordsGaps(t *testing.T) {
	// umbrella misses days 2 and 3 (provider outage).
	arch := toplist.NewArchive(0, 4)
	for _, p := range []string{"alexa", "umbrella"} {
		for d := toplist.Day(0); d <= 4; d++ {
			if p == "umbrella" && (d == 2 || d == 3) {
				continue
			}
			arch.Put(p, d, toplist.New([]string{fmt.Sprintf("%s-%d.com", p, d)})) //nolint:errcheck
		}
	}
	ts := httptest.NewServer(NewServer(arch))
	defer ts.Close()

	m := NewMirror(NewClient(ts.URL, instantSleep()), []string{"alexa", "umbrella"})
	got, err := m.Collect(context.Background(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	gaps := m.Gaps()
	if !reflect.DeepEqual(gaps["umbrella"], []toplist.Day{2, 3}) {
		t.Errorf("umbrella gaps = %v, want [2 3]", gaps["umbrella"])
	}
	if len(gaps["alexa"]) != 0 {
		t.Errorf("alexa gaps = %v, want none", gaps["alexa"])
	}
	run, ok := LongestContinuousRun(got)
	if !ok || run != (Run{First: 0, Last: 1}) {
		t.Errorf("longest run = %+v ok=%v, want days [0,1]", run, ok)
	}
}

func TestMirrorAbortsOnPersistentError(t *testing.T) {
	arch := testArchive(t, 2)
	ts := httptest.NewServer(flakyHandler(1000, http.StatusInternalServerError, NewServer(arch)))
	defer ts.Close()

	m := NewMirror(NewClient(ts.URL, WithMaxAttempts(2), instantSleep()), []string{"alexa"})
	if _, err := m.Collect(context.Background(), 0, 1); err == nil {
		t.Fatal("want error from persistent outage")
	}
}

func TestMirrorFollowsLivePublisher(t *testing.T) {
	arch := testArchive(t, 4)
	gk := NewGatekeeper(arch, 0)
	ts := httptest.NewServer(NewServerAt(gk))
	defer ts.Close()

	c := NewClient(ts.URL, instantSleep())
	m := NewMirror(c, []string{"alexa", "umbrella", "majestic"})
	// Day-by-day: publish, then collect, like a daily cron.
	got, err := m.Collect(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = got
	for d := toplist.Day(1); d <= 3; d++ {
		gk.Advance(d)
		t.Logf("collecting day %v", d)
		// CollectDay on the original archive window fails (window is
		// [0,0]); re-collect the full range instead, exercising the
		// conditional-request cache for already-seen days.
		if _, err := m.Collect(context.Background(), 0, d); err != nil {
			t.Fatal(err)
		}
	}
	final := m.Archive()
	if !final.Complete() {
		t.Fatal("live-followed archive incomplete")
	}
	if final.Days() != 4 {
		t.Fatalf("days = %d, want 4", final.Days())
	}
}

func TestLongestContinuousRunEdgeCases(t *testing.T) {
	// Empty archive: no providers at all.
	a := toplist.NewArchive(0, 3)
	if _, ok := LongestContinuousRun(a); ok {
		t.Error("empty archive should have no run")
	}
	// Run at the end wins over a shorter run at the start.
	a.Put("p", 0, toplist.New([]string{"a.com"})) //nolint:errcheck
	a.Put("p", 2, toplist.New([]string{"b.com"})) //nolint:errcheck
	a.Put("p", 3, toplist.New([]string{"c.com"})) //nolint:errcheck
	run, ok := LongestContinuousRun(a)
	if !ok || run != (Run{First: 2, Last: 3}) {
		t.Errorf("run = %+v, want [2,3]", run)
	}
}

func TestEncodeDecodePropertyQuick(t *testing.T) {
	// Round-trip property over arbitrary small domain lists.
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed uint32, n uint8, fpick uint8) bool {
		count := int(n%50) + 1
		names := make([]string, 0, count)
		for i := 0; i < count; i++ {
			names = append(names, fmt.Sprintf("d%d-%d.example.org", seed, i))
		}
		list := toplist.New(names)
		f := sortedFormats()[int(fpick)%3]
		data, err := Encode(list, f)
		if err != nil {
			return false
		}
		got, err := Decode(data, f)
		if err != nil {
			return false
		}
		return sameList(list, got)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
