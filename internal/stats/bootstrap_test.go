package stats

import (
	"math/rand"
	"testing"
)

func normalSample(r *rand.Rand, n int, mu, sigma float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mu + sigma*r.NormFloat64()
	}
	return xs
}

func TestMeanCICoversTrueMean(t *testing.T) {
	// Coverage check: across independent samples from N(10, 2), the
	// 95% interval should contain the true mean most of the time.
	r := rand.New(rand.NewSource(11))
	covered := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		xs := normalSample(r, 80, 10, 2)
		ci := MeanCI(xs, 400, 0.95, uint64(i+1))
		if ci.Contains(10) {
			covered++
		}
		if ci.Lo > ci.Point || ci.Hi < ci.Point {
			t.Fatalf("trial %d: interval %v does not bracket its own point", i, ci)
		}
	}
	if covered < trials*80/100 {
		t.Errorf("coverage %d/%d below expectation for a 95%% CI", covered, trials)
	}
}

func TestBootstrapDeterministicInSeed(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := MeanCI(xs, 200, 0.9, 42)
	b := MeanCI(xs, 200, 0.9, 42)
	if a != b {
		t.Errorf("same seed, different CI: %v vs %v", a, b)
	}
	c := MeanCI(xs, 200, 0.9, 43)
	if a == c {
		t.Error("different seeds produced identical intervals (suspicious)")
	}
}

func TestBootstrapIntervalNarrowsWithSampleSize(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	small := MeanCI(normalSample(r, 20, 0, 1), 500, 0.95, 1)
	large := MeanCI(normalSample(r, 2000, 0, 1), 500, 0.95, 1)
	if (large.Hi - large.Lo) >= (small.Hi - small.Lo) {
		t.Errorf("2000-sample interval %v not narrower than 20-sample %v", large, small)
	}
}

func TestBootstrapArbitraryStatistic(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 100} // median robust to the outlier
	ci := Bootstrap(xs, func(v []float64) float64 {
		s := append([]float64(nil), v...)
		return Median(s)
	}, 300, 0.95, 7)
	if ci.Point != 1 {
		t.Errorf("median point = %v", ci.Point)
	}
	if ci.Hi > 100 || ci.Lo < 1 {
		t.Errorf("median CI = %v out of data range", ci)
	}
}

func TestDifferenceCISeparatesDistinctMeans(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	list := normalSample(r, 100, 22, 2)      // "IPv6 share on the list"
	population := normalSample(r, 100, 4, 1) // "IPv6 share in the population"
	ci := DifferenceCI(list, population, Mean, 500, 0.95, 3)
	if ci.Contains(0) {
		t.Errorf("clearly separated means yield CI containing 0: %v", ci)
	}
	if ci.Point < 15 || ci.Point > 21 {
		t.Errorf("difference point = %v, want ≈ 18", ci.Point)
	}
}

func TestDifferenceCIOverlappingMeansContainsZero(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	a := normalSample(r, 50, 5, 3)
	b := normalSample(r, 50, 5, 3)
	ci := DifferenceCI(a, b, Mean, 500, 0.95, 4)
	if !ci.Contains(0) {
		t.Errorf("identical distributions should usually contain 0: %v", ci)
	}
}

func TestBootstrapPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { MeanCI(nil, 10, 0.95, 1) })
	mustPanic("level", func() { MeanCI([]float64{1}, 10, 1.5, 1) })
	mustPanic("diff-empty", func() { DifferenceCI(nil, []float64{1}, Mean, 10, 0.9, 1) })
}

func TestPercentileSorted(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := percentileSorted(xs, 0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := percentileSorted(xs, 1); got != 40 {
		t.Errorf("p1 = %v", got)
	}
	if got := percentileSorted(xs, 0.5); got != 25 {
		t.Errorf("p50 = %v, want 25 (interpolated)", got)
	}
	if got := percentileSorted([]float64{7}, 0.3); got != 7 {
		t.Errorf("singleton = %v", got)
	}
}

func TestCIString(t *testing.T) {
	ci := CI{Point: 1.5, Lo: 1.0, Hi: 2.0}
	if got := ci.String(); got != "1.5 [1, 2]" {
		t.Errorf("String = %q", got)
	}
}
