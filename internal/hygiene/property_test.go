package hygiene

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/toplist"
)

// randomList builds a list mixing clean names, invalid TLDs, deep
// subdomains, and local junk.
func randomList(r *rand.Rand, n int) *toplist.List {
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0:
			names = append(names, fmt.Sprintf("site%d.com", r.Intn(1000)))
		case 1:
			names = append(names, fmt.Sprintf("host%d.notatld", r.Intn(100)))
		case 2:
			names = append(names, fmt.Sprintf("a%d.b.c.d.example.org", r.Intn(100)))
		case 3:
			names = append(names, fmt.Sprintf("nas%d.local", r.Intn(100)))
		default:
			names = append(names, fmt.Sprintf("www.site%d.net", r.Intn(1000)))
		}
	}
	return toplist.New(names)
}

// TestPipelinePropertyOutputSubsetAndOrdered: for arbitrary inputs and
// filter combinations, the output is a subset of the input, preserves
// relative order, and the per-filter drops sum to input-output.
func TestPipelinePropertyOutputSubsetAndOrdered(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	prop := func(seed int64, n uint8, mask uint8) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomList(r, int(n%60)+1)
		var filters []Filter
		if mask&1 != 0 {
			filters = append(filters, WellFormed())
		}
		if mask&2 != 0 {
			filters = append(filters, ValidTLD())
		}
		if mask&4 != 0 {
			filters = append(filters, MaxDepth(int(mask%3)+1))
		}
		if mask&8 != 0 {
			filters = append(filters, NoLocalhost())
		}
		out, rep := NewPipeline(filters...).Apply(l)

		// Subset + order: walk the input once, matching output in order.
		in := l.Names()
		got := out.Names()
		j := 0
		for _, name := range in {
			if j < len(got) && got[j] == name {
				j++
			}
		}
		if j != len(got) {
			return false // output not an ordered subsequence of input
		}
		// Accounting: drops sum to the size difference.
		dropped := 0
		for _, d := range rep.Drops {
			dropped += d.Dropped
		}
		if dropped != rep.Input-rep.Output || rep.Input != l.Len() || rep.Output != out.Len() {
			return false
		}
		// Idempotence: re-applying the pipeline changes nothing.
		again, rep2 := NewPipeline(filters...).Apply(out)
		return again.Len() == out.Len() && rep2.DropShare() == 0
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
