package toolbar

import "repro/internal/traffic"

// FeedInjector converts the collector's panel aggregates for one base
// domain into provider-input injections: distinct panel visitors
// become the client signal, page views the volume signal. This closes
// the §7.1 loop — synthetic toolbar traffic (the Le Pochat et al.
// attack surface) flowing into the Alexa-style ranker exactly where
// organic panel traffic would.
func FeedInjector(c *Collector, inj *traffic.Injector, baseDomain string, firstDay, lastDay int) {
	for day := firstDay; day <= lastDay; day++ {
		st := c.Stats(day, baseDomain)
		if st == nil {
			continue
		}
		inj.Add(baseDomain, day, float64(st.Visitors()), float64(st.PageViews))
	}
}
