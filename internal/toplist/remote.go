package toplist

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file defines the archive wire protocol — the versioned
// read-only HTTP API that makes a Source servable across machines —
// and the client side of it, OpenRemote. The server side lives in
// internal/archived and is mounted by `toplistd -serve-archive`; both
// halves share the path helpers and the RemoteManifest document below,
// so the protocol has exactly one definition.
//
// The protocol (all endpoints GET/HEAD, rooted at RemoteAPIPrefix):
//
//	GET /archive/v1/manifest                    RemoteManifest (JSON)
//	GET /archive/v1/days                        ["2017-06-06", ...] (JSON)
//	GET /archive/v1/providers                   ["alexa", ...] (JSON)
//	GET /archive/v1/snapshots/{provider}/{day}  gzip-compressed CSV
//
// Snapshot responses are the same gzip CSV a DiskStore keeps on disk.
// A server with raw access to those bytes (toplist.RawSource) serves
// them as a verbatim copy with Content-Encoding: gzip; one without
// (in-memory archives, gatekept views) re-encodes from the decoded
// list — the same deterministic encoder, so the bytes match either
// way. This client always requests the stored encoding (it sets
// Accept-Encoding: gzip itself, which also disables the transport's
// transparent decompression) and treats the body as the compressed
// document under both response shapes.
//
// An absent snapshot is a plain 404 — the nil Source.Get already
// returns for it. A slot the server knows is corrupt is a 500 on the
// raw path (it refuses to serve bytes that cannot decode) and a 404 on
// the decode path (its own Get is nil); the client maps both to nil.

// RemoteAPIVersion is the archive wire-protocol version this build
// speaks. The manifest carries it; OpenRemote refuses any other
// version outright, mirroring OpenArchive's manifest-version check.
const RemoteAPIVersion = 1

// RemoteAPIPrefix roots every archive-API route. The version is part
// of the path, so a future incompatible protocol mounts beside this
// one instead of redefining it.
const RemoteAPIPrefix = "/archive/v1"

// RemoteManifestPath returns the server-relative path of the manifest
// document.
func RemoteManifestPath() string { return RemoteAPIPrefix + "/manifest" }

// RemoteDaysPath returns the server-relative path of the day listing.
func RemoteDaysPath() string { return RemoteAPIPrefix + "/days" }

// RemoteProvidersPath returns the server-relative path of the provider
// listing.
func RemoteProvidersPath() string { return RemoteAPIPrefix + "/providers" }

// RemoteSnapshotPath returns the server-relative path of one
// (provider, day) snapshot document. The provider segment is
// path-escaped, so sources with unusual provider names round-trip
// (the server's PathValue decodes it back).
func RemoteSnapshotPath(provider string, day Day) string {
	return RemoteAPIPrefix + "/snapshots/" + url.PathEscape(provider) + "/" + day.String()
}

// RemoteManifest is the JSON document at RemoteManifestPath describing
// a served archive: the protocol version, the producing scale (when
// recorded), the covered day range, and the provider set. It is the
// wire analog of a DiskStore's manifest.json.
//
// Snapshots and Content are the replication extension (both optional —
// older servers omit them): the count of stored snapshot documents and
// a fingerprint over every stored slot's content hash. They exist so
// the manifest document — and therefore its ETag — changes whenever
// ANY slot changes, not just when the day range or provider set grows:
// a gap filled or a corrupt slot repaired mid-range alters the
// fingerprint even though first/last days stay put. That is what makes
// conditional revalidation (Revalidate) a sound "anything to copy?"
// probe for mirrors: a 304 genuinely means byte-for-byte nothing
// changed.
type RemoteManifest struct {
	Version   int      `json:"version"`
	Scale     string   `json:"scale,omitempty"`
	FirstDay  string   `json:"first_day"`
	LastDay   string   `json:"last_day"`
	Days      int      `json:"days"`
	Providers []string `json:"providers"` // insertion order
	// Snapshots counts the snapshot documents the server currently
	// stores (0 when the source cannot enumerate them cheaply).
	Snapshots int `json:"snapshots,omitempty"`
	// Content fingerprints the stored snapshot set: a content hash over
	// every slot's (provider, day, hash) triple, empty when the source
	// cannot enumerate per-slot hashes. Two archives with equal
	// fingerprints hold byte-identical snapshot sets.
	Content string `json:"content,omitempty"`
}

// Remote is a Source served over HTTP by an archive server
// (internal/archived). It mirrors DiskStore.Get's read semantics
// across the network hop: snapshots are fetched lazily and held in a
// bounded LRU cache; concurrent readers of the same uncached snapshot
// share one in-flight fetch; and a payload that arrives but does not
// decode is memoized as nil (one fetch per corrupt snapshot, not one
// per call) for as long as it stays cached. Absent snapshots (404) are
// memoized the same way.
//
// The cache holds snapshots in their compressed wire form; a slot pays
// gunzip+parse lazily, once, on its first Get. That keeps client
// memory near the on-disk archive size rather than the decoded size,
// and slots that are only ever byte-copied onward — GetRawContext,
// collectd's peer gap-fill — never decode at all.
//
// The day range and provider set are snapshotted from the manifest at
// OpenRemote time — First, Last, Days, and Providers never touch the
// network — and can be re-synchronised against a still-growing archive
// with Refresh. All methods are safe for concurrent use.
//
// The Source methods carry no context, so Get runs requests under the
// context OpenRemote was given; callers that need per-call deadlines
// or cancellation use GetContext.
type Remote struct {
	baseURL string
	httpc   *http.Client
	base    context.Context
	maxBody int64

	maxAttempts int
	baseBackoff time.Duration
	jitter      func() float64
	sleep       func(context.Context, time.Duration) error

	mu        sync.Mutex
	synced    bool   // first manifest fetch folded in
	manETag   string // ETag of the last manifest fetched (Revalidate sends it back)
	snapshots int    // stored-snapshot count from the last manifest (0 when not reported)
	content   string // snapshot-set fingerprint from the last manifest ("" when not reported)
	first     Day
	last      Day
	scale     string
	providers []string
	known     map[string]bool
	cache     map[storeKey]*remoteEntry
	order     *list.List // LRU: front = most recent; values are storeKey
	capacity  int
}

// remoteEntry is one snapshot's fetch slot, the network analog of
// DiskStore's cacheEntry. The first reader of a key installs the entry
// and fetches outside the lock; concurrent readers wait on ready. A
// settled entry holds the compressed wire document (raw == nil
// memoizes an absent slot); a failed transfer records err and is
// removed from the cache so the next reader retries instead of
// inheriting a transient failure.
//
// Decoding is lazy and memoized separately from the fetch: decode()
// runs gunzip+parse at most once (sync.Once), so the LRU stores
// compressed bytes and only slots a Get actually touches pay the
// decode. decoded is an atomic flag observers that must not trigger a
// decode (Corrupt, Refresh) read; decodeOnce alone orders the fields
// for decode() callers.
type remoteEntry struct {
	ready chan struct{} // closed once the fetch settles
	elem  *list.Element
	raw   []byte // compressed wire document; nil memoizes absent (404)
	hash  string // content hash from the wire ETag ("" when not sent)
	err   error  // transfer failed; entry was uncached

	decodeOnce sync.Once
	decoded    atomic.Bool
	list       *List
	corrupt    bool // payload arrived but did not decode
}

// decode lazily decompresses and parses the entry's document, at most
// once; callers must have observed ready closed. Returns the decoded
// list (nil for absent or corrupt slots).
func (e *remoteEntry) decode() *List {
	e.decodeOnce.Do(func() {
		if e.raw != nil {
			if l, err := decodeSnapshotDoc(e.raw); err != nil {
				// The document transferred intact (the HTTP layer said
				// 200 and the body completed) but is not a snapshot —
				// the wire analog of a corrupt file on disk. Final and
				// memoized, like DiskStore; deliberately not retried.
				e.corrupt = true
			} else {
				e.list = l
			}
		}
		e.decoded.Store(true)
	})
	return e.list
}

var _ Source = (*Remote)(nil)

// RemoteOption configures OpenRemote.
type RemoteOption func(*Remote)

// WithRemoteHTTPClient substitutes the underlying *http.Client
// (timeouts, transports, test doubles).
func WithRemoteHTTPClient(h *http.Client) RemoteOption {
	return func(r *Remote) { r.httpc = h }
}

// WithRemoteCacheSize bounds the client's snapshot LRU cache to n
// entries (default 256). Entries hold the compressed wire document
// plus, once a Get has touched the slot, its decoded list. Analyses
// typically sweep day ranges per provider, so the default comfortably
// covers a test-scale JOINT window; shrink it when lists are huge,
// grow it to pin a whole archive in memory.
func WithRemoteCacheSize(n int) RemoteOption {
	return func(r *Remote) {
		if n > 0 {
			r.capacity = n
		}
	}
}

// WithRemoteMaxBodyBytes caps accepted response bodies (default
// 256 MiB), bounding what a misbehaving server can make the client
// buffer.
func WithRemoteMaxBodyBytes(n int64) RemoteOption {
	return func(r *Remote) {
		if n > 0 {
			r.maxBody = n
		}
	}
}

// WithRemoteMaxAttempts bounds the tries per transfer (default 4).
// Transient failures — connection errors, 502/503/504, 429 — are
// retried with jittered exponential backoff before a fetch is declared
// failed; 404s, plain 500s (a raw-serving archive refusing a corrupt
// slot), undecodable payloads, and cancellation are never retried.
func WithRemoteMaxAttempts(n int) RemoteOption {
	return func(r *Remote) {
		if n > 0 {
			r.maxAttempts = n
		}
	}
}

// WithRemoteBaseBackoff sets the first retry delay (default 250ms;
// doubled per attempt with ±50% jitter).
func WithRemoteBaseBackoff(d time.Duration) RemoteOption {
	return func(r *Remote) {
		if d > 0 {
			r.baseBackoff = d
		}
	}
}

// OpenRemote opens the archive served at baseURL (the host root — the
// wire API lives under RemoteAPIPrefix), fetches its manifest, and
// returns a Source reading through the wire API. It is the network
// counterpart of OpenArchive: analyses, labs, and servers built over a
// Source run unchanged against the returned Remote.
//
// ctx governs the manifest fetch and becomes the base context for
// context-free Get calls; cancelling it fails every later fetch, so
// tie it to the consumer's lifetime (or just use
// context.Background()).
func OpenRemote(ctx context.Context, baseURL string, opts ...RemoteOption) (*Remote, error) {
	r := &Remote{
		baseURL:     strings.TrimRight(baseURL, "/"),
		httpc:       &http.Client{Timeout: 30 * time.Second},
		base:        ctx,
		maxBody:     256 << 20,
		maxAttempts: 4,
		baseBackoff: 250 * time.Millisecond,
		jitter:      rand.Float64,
		known:       make(map[string]bool),
		cache:       make(map[storeKey]*remoteEntry),
		order:       list.New(),
		capacity:    256,
	}
	r.sleep = func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	for _, o := range opts {
		o(r)
	}
	if err := r.Refresh(ctx); err != nil {
		return nil, fmt.Errorf("toplist: open remote %s: %w", baseURL, err)
	}
	return r, nil
}

// Refresh re-fetches the manifest and folds it in: the covered day
// range only ever grows (mirroring DiskStore.ExtendTo) and new
// providers are appended in server order, so a Remote following a
// still-publishing archive sees days appear without reopening. It
// also forgets memoized-nil snapshots (absent and corrupt slots), so
// days the server filled or repaired since the last sync become
// readable; cached present snapshots are immutable and survive.
// Transient transport failures are retried like any other fetch.
func (r *Remote) Refresh(ctx context.Context) error {
	_, err := r.revalidate(ctx, false)
	return err
}

// Revalidate is the conditional Refresh: the manifest is requested
// with If-None-Match carrying the ETag of the last manifest this
// client folded in, and a 304 answer — the server's document is
// byte-identical, so (given a server reporting the Content
// fingerprint) nothing about the archive changed — returns (false,
// nil) without touching any client state and without transferring a
// body. A 200 folds the new manifest in exactly as Refresh would
// (range growth, new providers, memoized-nil slots forgotten) and
// returns (true, nil). Mirrors poll with this: steady state costs one
// conditional GET per peer per round, nothing more.
//
// Servers that send no manifest ETag degrade gracefully: every
// Revalidate behaves like Refresh and reports changed.
func (r *Remote) Revalidate(ctx context.Context) (changed bool, err error) {
	return r.revalidate(ctx, true)
}

// revalidate is the shared Refresh/Revalidate implementation; when
// conditional is false the If-None-Match header is never sent, so the
// fetch is unconditional and always folds in (Refresh's historical
// "assume changed" semantics, which consumers rely on to drop
// memoized-nil slots).
func (r *Remote) revalidate(ctx context.Context, conditional bool) (bool, error) {
	r.mu.Lock()
	etag := r.manETag
	r.mu.Unlock()
	var man RemoteManifest
	var newTag string
	unchanged := false
	err := r.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.baseURL+RemoteManifestPath(), nil)
		if err != nil {
			return err
		}
		if conditional && etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		resp, err := r.httpc.Do(req)
		if err != nil {
			return &remoteTransient{err}
		}
		defer drainBody(resp.Body)
		if conditional && etag != "" && resp.StatusCode == http.StatusNotModified {
			unchanged = true
			return nil
		}
		if err := classifyRemoteStatus(req.URL.String(), resp.StatusCode); err != nil {
			return err
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, r.maxBody))
		if err != nil {
			return &remoteTransient{err}
		}
		man, unchanged = RemoteManifest{}, false
		if err := json.Unmarshal(raw, &man); err != nil {
			return fmt.Errorf("toplist: remote manifest: %w", err)
		}
		newTag = resp.Header.Get("ETag")
		return nil
	})
	if err != nil {
		return false, err
	}
	if unchanged {
		return false, nil
	}
	if man.Version != RemoteAPIVersion {
		return false, fmt.Errorf("toplist: remote archive speaks protocol version %d (this build speaks %d); refusing to half-open it",
			man.Version, RemoteAPIVersion)
	}
	first, err := ParseDay(man.FirstDay)
	if err != nil {
		return false, fmt.Errorf("toplist: remote manifest: bad first_day: %w", err)
	}
	last, err := ParseDay(man.LastDay)
	if err != nil {
		return false, fmt.Errorf("toplist: remote manifest: bad last_day: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.synced {
		// First sync (OpenRemote): adopt the server's range verbatim,
		// including an empty one (last < first — a live publisher that
		// has not published its first day yet).
		r.first, r.last = first, last
		r.synced = true
	} else {
		if first < r.first {
			r.first = first
		}
		if last > r.last {
			r.last = last
		}
	}
	r.scale = man.Scale
	r.manETag = newTag
	r.snapshots = man.Snapshots
	r.content = man.Content
	for _, p := range man.Providers {
		if !r.known[p] {
			r.known[p] = true
			r.providers = append(r.providers, p)
		}
	}
	// Drop memoized-nil entries (absent 404s and payloads that decoded
	// as corrupt): a refresh declares "the archive may have changed",
	// and a slot the server has since filled or repaired must become
	// fetchable again — the client-side analog of Put invalidating a
	// DiskStore's memoized decode failure. Present snapshots are
	// immutable and stay cached (decoded or not); in-flight fetches
	// settle against their own entry either way.
	for key, e := range r.cache {
		select {
		case <-e.ready:
			if e.raw == nil || (e.decoded.Load() && e.corrupt) {
				delete(r.cache, key)
				r.order.Remove(e.elem)
			}
		default:
		}
	}
	return true, nil
}

// Snapshots returns the stored-snapshot count the server's manifest
// last reported (0 when the server does not report one — older servers,
// or sources that cannot enumerate slots cheaply).
func (r *Remote) Snapshots() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshots
}

// ContentFingerprint returns the snapshot-set fingerprint the server's
// manifest last reported ("" when not reported). Two archives with
// equal fingerprints hold byte-identical snapshot sets — the
// convergence check the fleet tooling polls.
func (r *Remote) ContentFingerprint() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.content
}

// BaseURL returns the archive server's root URL.
func (r *Remote) BaseURL() string { return r.baseURL }

// Scale returns the scale name the server's manifest reported ("" when
// the producing archive did not record one).
func (r *Remote) Scale() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scale
}

// First returns the first day covered.
func (r *Remote) First() Day {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.first
}

// Last returns the last day covered.
func (r *Remote) Last() Day {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// Days returns the number of days covered (0 for an archive that has
// not published its first day yet).
func (r *Remote) Days() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return DayCount(r.first, r.last)
}

// Providers returns provider names in the server's insertion order.
func (r *Remote) Providers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.providers...)
}

// Get returns the snapshot for provider on day, or nil if absent,
// running any fetch under the OpenRemote context. It implements
// Source. Transient transport failures are retried (see
// WithRemoteMaxAttempts) before a fetch is abandoned; a failure that
// exhausts the retry budget is reported as nil — the only answer the
// Source contract allows — so consumers that must distinguish a dead
// server from a genuine gap use GetContext, which surfaces the error
// (and never memoizes it: the next call retries fresh).
func (r *Remote) Get(provider string, day Day) *List {
	l, _ := r.GetContext(r.base, provider, day)
	return l
}

// GetContext returns the snapshot for provider on day, fetching it
// over the wire if it is not cached and decoding it if this is the
// slot's first Get (the cache holds compressed documents; see Remote).
// Absent snapshots return (nil, nil). A payload that arrives but does
// not decode also returns (nil, nil) and is memoized — the DiskStore
// corrupt-snapshot contract over HTTP (see Corrupt). Transfer failures
// (connection errors, non-404 error statuses, cancellation) return a
// non-nil error and are never memoized: the next call retries.
func (r *Remote) GetContext(ctx context.Context, provider string, day Day) (*List, error) {
	e, err := r.entryFor(ctx, provider, day)
	if e == nil || err != nil {
		return nil, err
	}
	return e.decode(), nil
}

// GetRawContext returns the compressed snapshot document for provider
// on day — the same bytes GetContext would decode — without decoding
// it: a cache hit or one wire fetch, then a byte handoff. It is the
// client half of the serving fast path; collectd's peer gap-fill pairs
// it with DiskStore.PutRaw so replicating a snapshot never touches a
// CSV codec. Absent snapshots and slots already memoized as corrupt
// return (nil, nil). The bytes are not validated here — a consumer
// that stores them must decode-check (PutRaw does).
func (r *Remote) GetRawContext(ctx context.Context, provider string, day Day) (*RawSnapshot, error) {
	e, err := r.entryFor(ctx, provider, day)
	if e == nil || err != nil {
		return nil, err
	}
	if e.raw == nil || (e.decoded.Load() && e.corrupt) {
		return nil, nil
	}
	return &RawSnapshot{Data: e.raw, Hash: e.hash}, nil
}

// entryFor returns the settled cache entry for (provider, day),
// fetching the document if the slot is uncached — the shared
// single-flight core of GetContext and GetRawContext. A nil entry with
// nil error means the slot is outside the known range or provider set.
func (r *Remote) entryFor(ctx context.Context, provider string, day Day) (*remoteEntry, error) {
	key := storeKey{provider, day}
	for {
		r.mu.Lock()
		if day < r.first || day > r.last || !r.known[provider] {
			r.mu.Unlock()
			return nil, nil
		}
		if e, ok := r.cache[key]; ok {
			r.order.MoveToFront(e.elem)
			r.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.err != nil {
				// The in-flight fetch we piggybacked on failed and was
				// uncached; fetch with our own context instead of
				// inheriting a failure we might not share (theirs may
				// simply have been cancelled).
				continue
			}
			return e, nil
		}
		e := &remoteEntry{ready: make(chan struct{})}
		e.elem = r.order.PushFront(key)
		r.cache[key] = e
		r.evictLocked()
		r.mu.Unlock()

		raw, hash, err := r.fetchSnapshot(ctx, provider, day)
		if err != nil {
			e.err = err
			r.mu.Lock()
			// Only remove our own entry: a concurrent Put-like Refresh
			// cannot replace entries, but eviction may already have
			// dropped it.
			if cur, ok := r.cache[key]; ok && cur == e {
				delete(r.cache, key)
				r.order.Remove(e.elem)
			}
			r.mu.Unlock()
			close(e.ready)
			return nil, err
		}
		e.raw, e.hash = raw, hash
		close(e.ready)
		return e, nil
	}
}

// evictLocked trims the LRU cache to capacity; callers hold r.mu.
// Evicting an in-flight entry is safe: its waiters hold the entry
// pointer and still complete against it, the slot just becomes
// refetchable for later readers.
func (r *Remote) evictLocked() {
	for len(r.cache) > r.capacity {
		back := r.order.Back()
		if back == nil {
			return
		}
		key := back.Value.(storeKey)
		r.order.Remove(back)
		delete(r.cache, key)
	}
}

// Corrupt returns one stub Snapshot per cached (provider, day) whose
// payload arrived over the wire but did not decode — the client-side
// analog of DiskStore.Corrupt. Entries are ordered by provider (server
// order) and day ascending. The listing is advisory twice over: it
// only covers slots still in the LRU cache (an evicted corrupt slot is
// simply refetched — the server may have repaired it meanwhile), and
// since decoding is lazy, only slots some Get has actually decoded can
// appear (an undecoded cached document has not been judged yet).
func (r *Remote) Corrupt() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var found []storeKey
	for key, e := range r.cache {
		select {
		case <-e.ready:
			if e.decoded.Load() && e.corrupt {
				found = append(found, key)
			}
		default:
		}
	}
	return corruptSnapshots(found, r.providers)
}

// corruptSnapshots converts the settled-corrupt keys of a snapshot
// cache into Missing-style stub Snapshots, ordered by provider (in the
// given order, with unknown providers last, alphabetically) and day
// ascending. Shared by DiskStore.Corrupt and Remote.Corrupt.
func corruptSnapshots(found []storeKey, providerOrder []string) []Snapshot {
	if len(found) == 0 {
		return nil
	}
	rank := make(map[string]int, len(providerOrder))
	for i, p := range providerOrder {
		rank[p] = i
	}
	sort.Slice(found, func(i, j int) bool {
		a, b := found[i], found[j]
		ra, aok := rank[a.provider]
		rb, bok := rank[b.provider]
		switch {
		case aok && bok && ra != rb:
			return ra < rb
		case aok != bok:
			return aok // known providers first
		case !aok && a.provider != b.provider:
			return a.provider < b.provider
		}
		return a.day < b.day
	})
	out := make([]Snapshot, len(found))
	for i, key := range found {
		out[i] = Snapshot{Provider: key.provider, Day: key.day}
	}
	return out
}

// RemoteStatusError reports a non-404 HTTP failure from an archive
// server.
type RemoteStatusError struct {
	URL  string
	Code int
}

func (e *RemoteStatusError) Error() string {
	return fmt.Sprintf("toplist: GET %s: status %d", e.URL, e.Code)
}

// fetchSnapshot downloads one snapshot document without decoding it:
// (body, hash, nil) on success (hash is the bare content hash from the
// wire ETag, "" when the server sent none), (nil, "", nil) for an
// absent snapshot (404), and (nil, "", err) for transfer failures the
// caller must not memoize. Transient failures (connection errors,
// 502/503/504, 429, truncated bodies) are retried with jittered
// exponential backoff before the error is surfaced; a plain 500 is
// final — it is how a raw-serving archive refuses a slot it knows is
// corrupt, and hammering that slot with retries cannot change the
// verdict.
func (r *Remote) fetchSnapshot(ctx context.Context, provider string, day Day) ([]byte, string, error) {
	url := r.baseURL + RemoteSnapshotPath(provider, day)
	var body []byte
	var hash string
	err := r.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		// Ask for the stored encoding explicitly. The raw fast path
		// answers with Content-Encoding: gzip, and setting the header
		// ourselves keeps the transport from transparently gunzipping
		// the body — which would hand us CSV where the cache, the hash,
		// and PutRaw all want the compressed document. Older servers
		// label the same bytes application/gzip; the body is the
		// compressed document either way.
		req.Header.Set("Accept-Encoding", "gzip")
		resp, err := r.httpc.Do(req)
		if err != nil {
			return &remoteTransient{err}
		}
		defer drainBody(resp.Body)
		if resp.StatusCode == http.StatusNotFound {
			body, hash = nil, ""
			return nil
		}
		if err := classifyRemoteStatus(url, resp.StatusCode); err != nil {
			return err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, r.maxBody+1))
		if err != nil {
			return &remoteTransient{err} // truncated transfer
		}
		if int64(len(data)) > r.maxBody {
			return fmt.Errorf("toplist: GET %s: body exceeds %d bytes", url, r.maxBody)
		}
		body, hash = data, etagHash(resp.Header.Get("ETag"))
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	return body, hash, nil
}

// etagHash extracts the bare content hash from a wire ETag ("" when
// absent or not a quoted tag).
func etagHash(etag string) string {
	etag = strings.TrimPrefix(etag, "W/")
	if len(etag) >= 2 && etag[0] == '"' && etag[len(etag)-1] == '"' {
		return etag[1 : len(etag)-1]
	}
	return ""
}

// remoteTransient marks failures worth retrying.
type remoteTransient struct{ err error }

func (e *remoteTransient) Error() string { return e.err.Error() }
func (e *remoteTransient) Unwrap() error { return e.err }

// classifyRemoteStatus maps a non-404 status to nil (200), a transient
// error (502/503/504 and 429 — server or gateway trouble a retry can
// outlive), or a final RemoteStatusError. A plain 500 is deliberately
// final: the archive server uses it to refuse raw-serving a slot its
// store knows is corrupt, a verdict retries cannot change (a repair is
// picked up by the next fetch after the slot leaves the cache or a
// Refresh drops it).
func classifyRemoteStatus(url string, code int) error {
	switch {
	case code == http.StatusOK:
		return nil
	case TransientStatus(code):
		return &remoteTransient{&RemoteStatusError{URL: url, Code: code}}
	default:
		return &RemoteStatusError{URL: url, Code: code}
	}
}

// TransientStatus reports whether an HTTP status is worth retrying
// under this package's classification: 502/503/504 and 429 — server or
// gateway trouble a retry can outlive. Exported so other versioned HTTP
// clients in the repo (the shard coordinator's /shard/v1 client) apply
// the identical transient/final split instead of drifting their own.
func TransientStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout || code == http.StatusTooManyRequests
}

// retry runs op, retrying transient failures with jittered exponential
// backoff up to maxAttempts, and honouring ctx between attempts — so a
// single network blip does not degrade a Source read into a spurious
// nil (which an analysis would misread as a gap).
func (r *Remote) retry(ctx context.Context, op func() error) error {
	var lastErr error
	backoff := r.baseBackoff
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last error: %v)", err, lastErr)
			}
			return err
		}
		err := op()
		if err == nil {
			return nil
		}
		var te *remoteTransient
		if !errors.As(err, &te) {
			return err
		}
		lastErr = te.err
		if attempt >= r.maxAttempts {
			return fmt.Errorf("toplist: remote: giving up after %d attempts: %w", attempt, lastErr)
		}
		// ±50% jitter decorrelates the retry storms a fleet of remote
		// readers would otherwise synchronise into.
		d := time.Duration(float64(backoff) * (0.5 + r.jitter()))
		if err := r.sleep(ctx, d); err != nil {
			return fmt.Errorf("%w (last error: %v)", err, lastErr)
		}
		backoff *= 2
	}
}

// decodeSnapshotDoc decodes one wire snapshot document (gzip CSV).
func decodeSnapshotDoc(data []byte) (*List, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return ReadCSV(zr)
}

// drainBody consumes and closes a response body so the underlying
// connection can be reused.
func drainBody(rc io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(rc, 1<<20)) //nolint:errcheck // best-effort keepalive drain
	rc.Close()
}
