package analysis

import (
	"sort"

	"repro/internal/stats"
	"repro/internal/toplist"
)

// DailyRemoved returns Fig. 1b's series: the count of domains present
// on day n but absent on day n+1, for each consecutive day pair.
func (c *Context) DailyRemoved(provider string, top int) []int {
	var out []int
	var prev stats.IDSet
	toplist.EachDay(c.Arch, func(d toplist.Day) {
		cur := stats.NewIDSet(c.worldIDs(c.subset(provider, d, top)))
		if prev != nil {
			out = append(out, prev.RemovedCount(cur))
		}
		prev = cur
	})
	return out
}

// ChurnByRank computes Fig. 1c: for each subset size, the mean share of
// the subset replaced per day within [fromDay, toDay).
func (c *Context) ChurnByRank(provider string, sizes []int, fromDay, toDay int) []float64 {
	out := make([]float64, len(sizes))
	counts := make([]int, len(sizes))
	for d := fromDay; d < toDay-1; d++ {
		cur := c.Arch.Get(provider, toplist.Day(d))
		next := c.Arch.Get(provider, toplist.Day(d+1))
		if cur == nil || next == nil {
			continue
		}
		for si, size := range sizes {
			a := stats.NewIDSet(c.worldIDs(cur.Top(size)))
			b := stats.NewIDSet(c.worldIDs(next.Top(size)))
			out[si] += float64(a.RemovedCount(b)) / float64(size)
			counts[si]++
		}
	}
	for i := range out {
		if counts[i] > 0 {
			out[i] /= float64(counts[i])
		}
	}
	return out
}

// LogSizes returns log-spaced subset sizes up to max, for the Fig. 1c
// x-axis.
func LogSizes(max int) []int {
	var out []int
	for _, s := range []int{10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1000000} {
		if s < max {
			out = append(out, s)
		}
	}
	return append(out, max)
}

// CumulativeUnique returns Fig. 2a's series: the running count of
// distinct domains ever seen in the list.
func (c *Context) CumulativeUnique(provider string, top int) []int {
	union := make(map[uint32]struct{})
	var out []int
	toplist.EachDay(c.Arch, func(d toplist.Day) {
		for _, id := range c.worldIDs(c.subset(provider, d, top)) {
			union[id] = struct{}{}
		}
		out = append(out, len(union))
	})
	return out
}

// DecayFromStart computes Fig. 2b: the intersection share between a
// fixed starting day's list and each later day, medianed over the
// first seven starting days.
func (c *Context) DecayFromStart(provider string, top int) []float64 {
	days := c.Arch.Days()
	const starts = 7
	if days <= starts {
		return nil
	}
	horizon := days - starts
	series := make([][]float64, starts)
	for s := 0; s < starts; s++ {
		start := stats.NewIDSet(c.worldIDs(c.subset(provider, toplist.Day(s), top)))
		n := float64(len(start))
		series[s] = make([]float64, horizon)
		for k := 0; k < horizon; k++ {
			cur := stats.NewIDSet(c.worldIDs(c.subset(provider, toplist.Day(s+k), top)))
			series[s][k] = float64(start.IntersectionCount(cur)) / n
		}
	}
	out := make([]float64, horizon)
	buf := make([]float64, starts)
	for k := 0; k < horizon; k++ {
		for s := 0; s < starts; s++ {
			buf[s] = series[s][k]
		}
		out[k] = stats.Median(buf)
	}
	return out
}

// DaysIncludedCDF returns Fig. 2c's CDF input: for every domain ever
// present in the (sub)list, the fraction of archive days it was
// included.
func (c *Context) DaysIncludedCDF(provider string, top int) *stats.ECDF {
	counts := make(map[uint32]int)
	days := 0
	toplist.EachDay(c.Arch, func(d toplist.Day) {
		for _, id := range c.worldIDs(c.subset(provider, d, top)) {
			counts[id]++
		}
		days++
	})
	vals := make([]float64, 0, len(counts))
	for _, n := range counts {
		vals = append(vals, float64(n)/float64(days))
	}
	return stats.NewECDF(vals)
}

// NewVsRejoin splits daily changers into first-timers and rejoining
// domains (paper §6.1: 20–33 % of daily changing domains are new).
// Returns the mean daily share of changers that are first-appearances,
// measured after the startup transient.
func (c *Context) NewVsRejoin(provider string, top int) float64 {
	union := make(map[uint32]struct{})
	var prev stats.IDSet
	var shares []float64
	day := 0
	toplist.EachDay(c.Arch, func(d toplist.Day) {
		ids := c.worldIDs(c.subset(provider, d, top))
		cur := stats.NewIDSet(ids)
		if prev != nil && day >= 8 {
			var added, fresh int
			for id := range cur {
				if !prev.Has(id) {
					added++
					if _, seen := union[id]; !seen {
						fresh++
					}
				}
			}
			if added > 0 {
				shares = append(shares, float64(fresh)/float64(added))
			}
		}
		for _, id := range ids {
			union[id] = struct{}{}
		}
		prev = cur
		day++
	})
	return stats.Mean(shares)
}

// PresenceQuantiles summarises a DaysIncludedCDF for reporting: the
// share of domains present at most the given fractions of days.
func PresenceQuantiles(e *stats.ECDF, fractions []float64) []float64 {
	out := make([]float64, len(fractions))
	for i, f := range fractions {
		out[i] = e.Eval(f)
	}
	return out
}

// SortedSizes returns sizes ascending (helper for rendering).
func SortedSizes(sizes []int) []int {
	out := append([]int(nil), sizes...)
	sort.Ints(out)
	return out
}
