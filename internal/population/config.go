package population

import "fmt"

// Config controls world generation. The zero value is not usable; start
// from DefaultConfig or TestConfig.
type Config struct {
	// Seed is the root seed; everything in the world and the downstream
	// simulation derives from it.
	Seed uint64
	// Days is the simulation horizon (the JOINT window length).
	Days int
	// Sites is the number of base domains existing at day 0.
	Sites int
	// BirthsPerDay is how many new base domains appear each day; they
	// drive the linear growth of the ever-seen domain count (Fig. 2a).
	BirthsPerDay int
	// TrendingFraction is the share of newborn domains that receive a
	// temporary popularity boost large enough to enter lists.
	TrendingFraction float64
	// DeathFraction is the share of day-0 sites that go NXDOMAIN at a
	// uniformly random day during the horizon.
	DeathFraction float64
	// ZipfExponent shapes the latent popularity tail.
	ZipfExponent float64
	// AxisSigma is the log-normal divergence between the three signal
	// axes; it is the primary knob for inter-list intersection (§5.2).
	AxisSigma float64
	// CategoryMix gives the probability of each category for day-0
	// sites. Must sum to ~1.
	CategoryMix [numCategories]float64
	// SmallASes is the size of the synthetic small-hosting AS tail.
	SmallASes int
	// SubdomainMean is the mean subdomain count for ordinary sites
	// (DNS-heavy categories get a higher mean).
	SubdomainMean float64
}

// DefaultConfig is the experiment scale used by EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Days:             180,
		Sites:            250_000,
		BirthsPerDay:     400,
		TrendingFraction: 0.25,
		DeathFraction:    0.02,
		ZipfExponent:     0.95,
		AxisSigma:        1.15,
		CategoryMix:      defaultMix(),
		SmallASes:        1500,
		SubdomainMean:    0.9,
	}
}

// TestConfig is a small, fast scale for unit tests.
func TestConfig() Config {
	c := DefaultConfig()
	c.Days = 35
	c.Sites = 12_000
	c.BirthsPerDay = 60
	c.SmallASes = 200
	return c
}

func defaultMix() [numCategories]float64 {
	var m [numCategories]float64
	m[CatWeb] = 0.26
	m[CatLeisure] = 0.13
	m[CatWork] = 0.10
	m[CatMedia] = 0.07
	m[CatShopping] = 0.09
	m[CatTracker] = 0.07
	m[CatMobile] = 0.08
	m[CatCDNAsset] = 0.05
	m[CatIoT] = 0.05
	m[CatJunk] = 0.06
	m[CatGhost] = 0.04
	return m
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Days < 8 {
		return fmt.Errorf("population: Days must be >= 8 (weekly analyses need full weeks), got %d", c.Days)
	}
	if c.Sites < 100 {
		return fmt.Errorf("population: Sites must be >= 100, got %d", c.Sites)
	}
	if c.BirthsPerDay < 0 || c.DeathFraction < 0 || c.DeathFraction > 1 {
		return fmt.Errorf("population: invalid birth/death parameters")
	}
	if c.ZipfExponent <= 0 {
		return fmt.Errorf("population: ZipfExponent must be positive")
	}
	if c.AxisSigma < 0 {
		return fmt.Errorf("population: AxisSigma must be non-negative")
	}
	sum := 0.0
	for _, p := range c.CategoryMix {
		if p < 0 {
			return fmt.Errorf("population: negative category probability")
		}
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		return fmt.Errorf("population: CategoryMix sums to %v, want 1", sum)
	}
	return nil
}
