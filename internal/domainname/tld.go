package domainname

// The embedded registry of delegated (valid) TLDs, modelled on the IANA
// TLD directory the paper checks against (§5.1). It contains the legacy
// gTLDs, the ccTLDs used by the embedded PSL, and a sample of new gTLDs.
// Names whose rightmost label is not listed here count as "invalid TLD"
// domains — the paper found 1,347 such TLDs in the Umbrella list
// (examples: instagram, localdomain, server, cpe, 0, big, cs).
var validTLDs = []string{
	// Legacy gTLDs.
	"com", "net", "org", "info", "biz", "edu", "gov", "mil", "int",
	"arpa",
	// ccTLDs.
	"ac", "ar", "at", "au", "be", "br", "by", "ca", "cc", "ch", "ck",
	"cl", "cn", "co", "cz", "de", "dk", "es", "eu", "fi", "fr", "gr",
	"hk", "hu", "id", "in", "io", "ir", "it", "jp", "kr", "kz", "me",
	"mx", "my", "nl", "no", "nz", "pe", "pl", "pt", "ro", "ru", "se",
	"sg", "sk", "th", "tr", "tv", "tw", "ua", "uk", "us", "vn", "za",
	// New gTLDs (post-2013 programme).
	"app", "blog", "cloud", "club", "dev", "online", "shop", "site",
	"space", "store", "top", "xyz", "agency", "art", "bank", "casino",
	"city", "design", "digital", "email", "expert", "fun", "games",
	"guru", "health", "host", "icu", "land", "life", "live", "ltd",
	"media", "money", "network", "news", "ninja", "one", "page",
	"party", "press", "pro", "review", "rocks", "run", "science",
	"services", "social", "solutions", "stream", "studio", "team",
	"tech", "today", "tools", "travel", "vip", "website", "wiki",
	"work", "world", "zone",
}

// invalidTLDSamples are rightmost labels seen in real DNS query traffic
// that are not delegated TLDs; the population generator uses them for
// junk names, mirroring the paper's Umbrella findings.
var invalidTLDSamples = []string{
	"localdomain", "local", "server", "cpe", "lan", "home", "corp",
	"internal", "intranet", "localhost", "belkin", "dlink", "router",
	"gateway", "workgroup", "domain", "invalid", "example", "test",
	"big", "cs", "0", "1", "instagram", "youtube_edu", "wpad", "mail1",
	"dhcp", "fritz", "box", "站点", // keep ASCII-only below; see init
}

var validTLDSet map[string]bool

func init() {
	validTLDSet = make(map[string]bool, len(validTLDs))
	for _, t := range validTLDs {
		validTLDSet[t] = true
	}
	// Drop any non-ASCII sample (synthetic names are ASCII-only).
	clean := invalidTLDSamples[:0]
	for _, t := range invalidTLDSamples {
		ascii := true
		for i := 0; i < len(t); i++ {
			if t[i] >= 0x80 {
				ascii = false
				break
			}
		}
		if ascii && !validTLDSet[t] {
			clean = append(clean, t)
		}
	}
	invalidTLDSamples = clean
}

// IsValidTLD reports whether tld is a delegated TLD in the embedded
// registry.
func IsValidTLD(tld string) bool { return validTLDSet[tld] }

// ValidTLDs returns a copy of the registry.
func ValidTLDs() []string {
	out := make([]string, len(validTLDs))
	copy(out, validTLDs)
	return out
}

// InvalidTLDSamples returns labels usable as junk TLDs, none of which are
// delegated.
func InvalidTLDSamples() []string {
	out := make([]string, len(invalidTLDSamples))
	copy(out, invalidTLDSamples)
	return out
}

// TLDCount reports the size of the registry (the paper's analog is
// IANA's 1,543 TLDs as of May 2018).
func TLDCount() int { return len(validTLDs) }
