#!/bin/sh
# Chaos smoke test for distributed generation (internal/shard,
# cmd/shardd, toplistd -shard-worker): render a local-run table5
# reference, then boot the real binaries — two shardd workers and a
# live toplistd distributing its per-day stepping across them — and
# kill -9 one worker after the first days publish. The run must
# complete anyway (the dead worker's shard is reseeded on the
# survivor), the coordinator's reassignment counter must move, and
# table5 rendered from the distributed archive over the wire API must
# be byte-identical to the local reference. Run from the repository
# root: sh scripts/shard-chaos.sh
set -eu

days=8
addr_d="127.0.0.1:18611"
addr_a="127.0.0.1:18612"
addr_b="127.0.0.1:18613"
url_d="http://$addr_d"
url_a="http://$addr_a"
url_b="http://$addr_b"
workdir="$(mktemp -d)"
pid_d=""
pid_a=""
pid_b=""
cleanup() {
    for p in "$pid_d" "$pid_a" "$pid_b"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "==> rendering the local-run table5 reference"
go run ./cmd/toplists experiment table5 -scale test -days "$days" \
    >"$workdir/ref.txt"

echo "==> building toplistd and shardd"
go build -o "$workdir/toplistd" ./cmd/toplistd
go build -o "$workdir/shardd" ./cmd/shardd

echo "==> starting two shard workers and a distributing toplistd"
"$workdir/shardd" -addr "$addr_a" -access-log=false \
    >"$workdir/a.log" 2>&1 &
pid_a=$!
"$workdir/shardd" -addr "$addr_b" -access-log=false \
    >"$workdir/b.log" 2>&1 &
pid_b=$!
"$workdir/toplistd" -addr "$addr_d" -scale test -days "$days" \
    -live -live-interval 250ms -serve-archive \
    -shard-worker "$url_a" -shard-worker "$url_b" -access-log=false \
    >"$workdir/d.log" 2>&1 &
pid_d=$!

metric() { # metric <base-url> <series> — value, or empty
    curl -fs "$1/metrics" 2>/dev/null | awk -v s="$2" '$1 == s {print $2; exit}'
}

wait_for() { # wait_for <what> <seconds> <cmd...>
    what="$1"; tries="$2"; shift 2
    i=0
    while [ "$i" -lt "$tries" ]; do
        if "$@"; then return 0; fi
        sleep 1
        i=$((i + 1))
    done
    echo "FAIL: timed out waiting for $what" >&2
    for log in "$workdir"/d.log "$workdir"/a.log "$workdir"/b.log; do
        echo "--- $log ---" >&2
        tail -n 20 "$log" >&2 || true
    done
    exit 1
}

published() { # published <n> — at least n days visible to readers
    n="$(grep -c 'published day' "$workdir/d.log" 2>/dev/null || true)"
    [ -n "$n" ] && [ "$n" -ge "$1" ]
}

echo "==> waiting for the first days to publish (both workers alive)"
wait_for "2 published days" 120 published 2
echo "    workers stepped: A=$(metric "$url_a" shard_days_stepped_total) B=$(metric "$url_b" shard_days_stepped_total)"

echo "==> chaos: kill -9 worker B mid-run"
kill -9 "$pid_b"
pid_b=""

complete() {
    grep -q 'live generation complete' "$workdir/d.log" 2>/dev/null
}
wait_for "the distributed run to complete on the survivor" 120 complete

reassigned="$(metric "$url_d" shard_reassigned_total)"
if [ -z "$reassigned" ] || [ "$reassigned" -lt 1 ]; then
    echo "FAIL: worker B was killed but shard_reassigned_total is ${reassigned:-absent}" >&2
    tail -n 20 "$workdir/d.log" >&2 || true
    exit 1
fi
failures="$(metric "$url_d" shard_worker_failures_total)"
echo "    reassigned=$reassigned worker-failures=${failures:-0}"

echo "==> table5 from the distributed archive matches the local reference"
go run ./cmd/toplists experiment table5 -scale test -days "$days" \
    -remote "$url_d" >"$workdir/dist.txt"
if ! diff -q "$workdir/ref.txt" "$workdir/dist.txt" >/dev/null; then
    echo "FAIL: distributed run renders a different table5" >&2
    diff "$workdir/ref.txt" "$workdir/dist.txt" >&2 || true
    exit 1
fi

echo "PASS: shard chaos"
