package main

import (
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/archived"
	"repro/internal/toplist"
)

func TestFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no archive", []string{"-peer", "http://x:1"}},
		{"no peers", []string{"-archive", "a"}},
		{"bad sync", []string{"-archive", "a", "-peer", "http://x:1", "-sync-every", "0s"}},
		{"bad verify", []string{"-archive", "a", "-peer", "http://x:1", "-verify-every", "-1s"}},
		{"bad limit", []string{"-archive", "a", "-peer", "http://x:1", "-limit", "-1"}},
		{"positional", []string{"-archive", "a", "-peer", "http://x:1", "extra"}},
		{"unknown flag", []string{"-archive", "a", "-nope"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args)
			var ue *usageError
			if !errors.As(err, &ue) {
				t.Fatalf("want usageError, got %v", err)
			}
		})
	}
}

func TestRunOnceBootstrapsAndReplicates(t *testing.T) {
	src, err := toplist.CreateDiskStore(t.TempDir(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SetScale("test"); err != nil {
		t.Fatal(err)
	}
	for d := toplist.Day(0); d <= 2; d++ {
		if err := src.Put("alexa", d, toplist.New([]string{fmt.Sprintf("d%d.com", d)})); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(archived.NewServer(src))
	defer ts.Close()

	dir := filepath.Join(t.TempDir(), "mirror")
	if err := run([]string{"-archive", dir, "-peer", ts.URL, "-once"}, io.Discard); err != nil {
		t.Fatal(err)
	}

	got, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scale() != "test" {
		t.Fatalf("scale %q, want test", got.Scale())
	}
	for d := toplist.Day(0); d <= 2; d++ {
		if got.RawHash("alexa", d) != src.RawHash("alexa", d) {
			t.Fatalf("day %s not byte-replicated", d)
		}
	}

	// A second -once run against an unchanged peer copies nothing — it
	// revalidates and sees a 304 (steady state is visible even across
	// process restarts, because the manifest ETag is content-derived).
	if err := run([]string{"-archive", dir, "-peer", ts.URL, "-once"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}
