package simnet

import (
	"strconv"
	"strings"
)

// HSTSPolicy is a parsed Strict-Transport-Security header (RFC 6797).
type HSTSPolicy struct {
	MaxAge            int
	IncludeSubDomains bool
	Preload           bool
	Valid             bool
}

// ParseHSTS parses a Strict-Transport-Security header value. Following
// RFC 6797 §6.1: directives are ';'-separated, names are
// case-insensitive, max-age is required, and a duplicated directive
// invalidates the header. The paper counts a domain HSTS-enabled when
// the header is valid with max-age > 0.
func ParseHSTS(header string) HSTSPolicy {
	var p HSTSPolicy
	if strings.TrimSpace(header) == "" {
		return p
	}
	seen := map[string]bool{}
	hasMaxAge := false
	for _, part := range strings.Split(header, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, value := part, ""
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			name = strings.TrimSpace(part[:eq])
			value = strings.TrimSpace(part[eq+1:])
		}
		name = strings.ToLower(name)
		if seen[name] {
			return HSTSPolicy{} // duplicate directive: invalid header
		}
		seen[name] = true
		switch name {
		case "max-age":
			value = strings.Trim(value, `"`)
			secs, err := strconv.Atoi(value)
			if err != nil || secs < 0 {
				return HSTSPolicy{}
			}
			p.MaxAge = secs
			hasMaxAge = true
		case "includesubdomains":
			p.IncludeSubDomains = true
		case "preload":
			p.Preload = true
		default:
			// Unknown directives are permitted and ignored.
		}
	}
	if !hasMaxAge {
		return HSTSPolicy{}
	}
	p.Valid = true
	return p
}

// Enabled applies the paper's criterion: valid header with max-age > 0.
func (p HSTSPolicy) Enabled() bool { return p.Valid && p.MaxAge > 0 }
