package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics collects the serving-side counters every daemon exposes at
// /metrics: per-route request counts by status class, per-route
// latency histograms, bytes served, an in-flight gauge, the load-shed
// counter, recovered panics, and any daemon-specific counters
// (Counter). The exposition is the Prometheus text format, hand-rolled
// so the repository stays dependency-free; any Prometheus-compatible
// scraper (or curl) reads it.
//
// All updates are atomic; Observe and the middleware are safe for
// concurrent use and cheap enough for the raw serving fast path (the
// archived benchmark gates the whole chain at <5% req/sec).
type Metrics struct {
	mu     sync.RWMutex
	routes map[string]*routeStats
	extra  []*Counter
	gauges []*Gauge

	inFlight atomic.Int64
	shed     atomic.Int64
	panics   atomic.Int64
}

// latencyBuckets are the histogram upper bounds in seconds, spanning
// cache-hit microseconds to pathological multi-second requests.
var latencyBuckets = [nBuckets]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

const nBuckets = 12

// routeStats is one route's counters. Buckets are per-bucket counts;
// the cumulative sums Prometheus wants are computed at render time.
type routeStats struct {
	byClass [6]atomic.Int64 // index status/100; 0 = unclassifiable
	bytes   atomic.Int64
	buckets [nBuckets + 1]atomic.Int64 // +1: +Inf
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Counter is a named monotonic counter rendered on /metrics beside the
// HTTP series — the hook daemons use for domain counters (snapshots
// collected, gaps filled, reloads).
type Counter struct {
	name string
	help string
	n    atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a named instantaneous value rendered on /metrics beside the
// counters — the hook daemons use for state that moves both ways
// (per-peer replication lag, consecutive peer failures, queue depths).
//
// Counter and Gauge names may carry a Prometheus label suffix
// (`fleet_peer_lag_days{peer="http://other:8801"}`): the exposition
// groups all series sharing the base name under one HELP/TYPE header,
// so per-peer series render as one labelled metric family.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (gauges go both ways).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{routes: make(map[string]*routeStats)}
}

// Counter registers (or returns the existing) named counter.
func (m *Metrics) Counter(name, help string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.extra {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name, help: help}
	m.extra = append(m.extra, c)
	return c
}

// Gauge registers (or returns the existing) named gauge.
func (m *Metrics) Gauge(name, help string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, g := range m.gauges {
		if g.name == name {
			return g
		}
	}
	g := &Gauge{name: name, help: help}
	m.gauges = append(m.gauges, g)
	return g
}

// Shed counts one load-shed request (the Limit middleware calls it).
func (m *Metrics) Shed() { m.shed.Add(1) }

// ShedCount returns how many requests were shed.
func (m *Metrics) ShedCount() int64 { return m.shed.Load() }

// InFlight returns the number of requests currently being served.
func (m *Metrics) InFlight() int64 { return m.inFlight.Load() }

// Observe records one served request.
func (m *Metrics) Observe(route string, status int, bytes int64, d time.Duration) {
	rs := m.route(route)
	class := status / 100
	if class < 0 || class >= len(rs.byClass) {
		class = 0
	}
	rs.byClass[class].Add(1)
	rs.bytes.Add(bytes)
	rs.count.Add(1)
	rs.sumNs.Add(int64(d))
	sec := d.Seconds()
	for i, bound := range latencyBuckets {
		if sec <= bound {
			rs.buckets[i].Add(1)
			return
		}
	}
	rs.buckets[nBuckets].Add(1)
}

// RequestCount returns the total requests observed for route (all
// status classes) — the counter the operational smoke tests assert on.
func (m *Metrics) RequestCount(route string) int64 {
	m.mu.RLock()
	rs, ok := m.routes[route]
	m.mu.RUnlock()
	if !ok {
		return 0
	}
	return rs.count.Load()
}

func (m *Metrics) route(route string) *routeStats {
	m.mu.RLock()
	rs, ok := m.routes[route]
	m.mu.RUnlock()
	if ok {
		return rs
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if rs, ok = m.routes[route]; ok {
		return rs
	}
	rs = &routeStats{}
	m.routes[route] = rs
	return rs
}

// Handler serves the registry in Prometheus text exposition format.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache")
		w.Write(m.render())
	})
}

// render produces the exposition document. Routes are sorted so the
// output is deterministic (tests and diff-based scrapes rely on it).
func (m *Metrics) render() []byte {
	m.mu.RLock()
	names := make([]string, 0, len(m.routes))
	for name := range m.routes {
		names = append(names, name)
	}
	extra := m.extra
	gauges := m.gauges
	sort.Strings(names)
	routes := make([]*routeStats, len(names))
	for i, name := range names {
		routes[i] = m.routes[name]
	}
	m.mu.RUnlock()

	var b []byte
	b = append(b, "# HELP http_requests_total Requests served, by route and status class.\n"...)
	b = append(b, "# TYPE http_requests_total counter\n"...)
	classes := [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}
	for i, name := range names {
		for class, label := range classes {
			if n := routes[i].byClass[class].Load(); n > 0 {
				b = fmt.Appendf(b, "http_requests_total{route=%q,class=%q} %d\n", name, label, n)
			}
		}
	}
	b = append(b, "# HELP http_response_bytes_total Response body bytes written, by route.\n"...)
	b = append(b, "# TYPE http_response_bytes_total counter\n"...)
	for i, name := range names {
		b = fmt.Appendf(b, "http_response_bytes_total{route=%q} %d\n", name, routes[i].bytes.Load())
	}
	b = append(b, "# HELP http_request_duration_seconds Request latency, by route.\n"...)
	b = append(b, "# TYPE http_request_duration_seconds histogram\n"...)
	for i, name := range names {
		cum := int64(0)
		for j, bound := range latencyBuckets {
			cum += routes[i].buckets[j].Load()
			b = fmt.Appendf(b, "http_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += routes[i].buckets[nBuckets].Load()
		b = fmt.Appendf(b, "http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", name, cum)
		b = fmt.Appendf(b, "http_request_duration_seconds_sum{route=%q} %g\n",
			name, float64(routes[i].sumNs.Load())/1e9)
		b = fmt.Appendf(b, "http_request_duration_seconds_count{route=%q} %d\n", name, routes[i].count.Load())
	}
	b = append(b, "# HELP http_in_flight_requests Requests currently being served.\n"...)
	b = append(b, "# TYPE http_in_flight_requests gauge\n"...)
	b = fmt.Appendf(b, "http_in_flight_requests %d\n", m.inFlight.Load())
	b = append(b, "# HELP http_requests_shed_total Requests refused by the concurrency limiter.\n"...)
	b = append(b, "# TYPE http_requests_shed_total counter\n"...)
	b = fmt.Appendf(b, "http_requests_shed_total %d\n", m.shed.Load())
	b = append(b, "# HELP http_panics_recovered_total Handler panics converted to 500s.\n"...)
	b = append(b, "# TYPE http_panics_recovered_total counter\n"...)
	b = fmt.Appendf(b, "http_panics_recovered_total %d\n", m.panics.Load())
	scalars := make([]scalarSeries, 0, len(extra)+len(gauges))
	for _, c := range extra {
		scalars = append(scalars, scalarSeries{c.name, c.help, "counter", c.n.Load()})
	}
	for _, g := range gauges {
		scalars = append(scalars, scalarSeries{g.name, g.help, "gauge", g.v.Load()})
	}
	return appendScalars(b, scalars)
}

// scalarSeries is one registered Counter or Gauge flattened for
// rendering.
type scalarSeries struct {
	name  string // may carry a {label="..."} suffix
	help  string
	typ   string
	value int64
}

// appendScalars renders registered counters and gauges, grouping
// series that share a base metric name (the part before any label
// suffix) under a single HELP/TYPE header, in first-registration
// order — the Prometheus text format requires one header per family
// even when a family has many labelled series.
func appendScalars(b []byte, series []scalarSeries) []byte {
	order := make([]string, 0, len(series))
	groups := make(map[string][]scalarSeries, len(series))
	for _, s := range series {
		base := s.name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if _, ok := groups[base]; !ok {
			order = append(order, base)
		}
		groups[base] = append(groups[base], s)
	}
	for _, base := range order {
		g := groups[base]
		if g[0].help != "" {
			b = fmt.Appendf(b, "# HELP %s %s\n", base, g[0].help)
		}
		b = fmt.Appendf(b, "# TYPE %s %s\n", base, g[0].typ)
		for _, s := range g {
			b = fmt.Appendf(b, "%s %d\n", s.name, s.value)
		}
	}
	return b
}
