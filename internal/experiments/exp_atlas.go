package experiments

import (
	"fmt"

	"repro/internal/atlas"
	"repro/internal/providers"
)

func init() {
	register("fig5", "Umbrella rank by probe count and query frequency (Fig. 5)", runFig5)
	register("ttl", "TTL influence on Umbrella rank (§7.2)", runTTL)
	register("ablation-volume", "Ablation: Umbrella ranked by query volume instead of unique clients", runAblationVolume)
}

// atlasOpts builds a lean Umbrella-only option set for the injection
// experiments at the environment's scale.
func (e *Env) atlasOpts(days int) providers.Options {
	opts := providers.DefaultOptions(days, e.Scale.ListSize)
	opts.BurnInDays = 30
	opts.AlexaChangeDay = -1
	return opts
}

const atlasDays = 17 // stabilises in a few days, covers a weekend pair

var gridProbes = []int{100, 1000, 5000, 10000}
var gridFreqs = []int{1, 10, 50, 100}

func runFig5(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	cells, err := atlas.RunGrid(st.Model, atlas.GridConfig{
		Probes:      gridProbes,
		Frequencies: gridFreqs,
		Days:        atlasDays,
		Opts:        e.atlasOpts(atlasDays),
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper:  "Fig. 5: probe count dominates query volume — 10k probes × 1 query reach rank 38k while 1k probes × 100 queries only reach 199k (of 1M); weekend ranks slightly better; empty cells did not enter the list",
		Header: []string{"probes", "queries/probe/day", "friday rank", "sunday rank"},
	}
	for _, c := range cells {
		fr, sr := "-", "-"
		if c.FridayRank > 0 {
			fr = d(c.FridayRank)
		}
		if c.SundayRank > 0 {
			sr = d(c.SundayRank)
		}
		res.Rows = append(res.Rows, []string{d(c.Probes), d(c.Frequency), fr, sr})
	}
	gone, err := atlas.Disappearance(st.Model, e.atlasOpts(atlasDays), 20000, atlasDays, atlasDays-6)
	if err == nil {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"after stopping the measurement the test domain left the list within %d day(s) (paper: 1-2 days)", gone))
	}
	return res, nil
}

func runTTL(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	results, err := atlas.RunTTL(st.Model, atlas.TTLConfig{
		TTLs:            []uint32{60, 300, 900, 3600, 86400},
		Probes:          10000,
		IntervalSeconds: 900,
		Days:            12,
		Opts:            e.atlasOpts(12),
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper:  "§7.2: five TTL variants stay within 1k list places of each other — TTL caching thins authoritative volume but not the unique-client count the ranking uses",
		Header: []string{"TTL (s)", "client queries/day", "authoritative queries/day", "rank"},
	}
	for _, r := range results {
		res.Rows = append(res.Rows, []string{
			d(int(r.TTL)), d(int(r.ClientQueries)), d(int(r.UpstreamQueries)), d(r.Rank),
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"max rank spread %d places (list size %d)", atlas.MaxRankSpread(results), e.Scale.ListSize))
	return res, nil
}

func runAblationVolume(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper:  "DESIGN.md ablation: with volume-based ranking, heavy queriers would dominate — Fig. 5's probe-count dominance inverts",
		Header: []string{"ranking", "10k probes × 1 q/d", "1k probes × 100 q/d", "winner"},
	}
	for _, volume := range []bool{false, true} {
		opts := e.atlasOpts(atlasDays)
		opts.UmbrellaVolumeRanking = volume
		cells, err := atlas.RunGrid(st.Model, atlas.GridConfig{
			Probes:      []int{1000, 10000},
			Frequencies: []int{1, 100},
			Days:        atlasDays,
			Opts:        opts,
		})
		if err != nil {
			return nil, err
		}
		var rProbes, rQueries int
		for _, c := range cells {
			if c.Probes == 10000 && c.Frequency == 1 {
				rProbes = c.FridayRank
			}
			if c.Probes == 1000 && c.Frequency == 100 {
				rQueries = c.FridayRank
			}
		}
		mode := "unique clients (real mechanism)"
		if volume {
			mode = "query volume (ablation)"
		}
		winner := "probes"
		if rProbes == 0 || (rQueries != 0 && rQueries < rProbes) {
			winner = "queries"
		}
		fp, fq := "-", "-"
		if rProbes > 0 {
			fp = d(rProbes)
		}
		if rQueries > 0 {
			fq = d(rQueries)
		}
		res.Rows = append(res.Rows, []string{mode, fp, fq, winner})
	}
	return res, nil
}
