// Package toolbar models the Alexa browser-extension data collection
// the paper reverse-engineers in §7.1: on installation the extension
// fetches a unique identifier (the "aid") and demographic attributes;
// for every visited page it transmits the full URL (including GET
// parameters), referer, window/tab identifiers, screen sizes, and
// loading metrics — except for a short list of search/shopping sites
// whose URLs are anonymised to their host name. A visit is only
// transmitted if the page actually loaded (the reporting JavaScript is
// injected into the page).
//
// The Collector aggregates the reports into the per-domain
// visitor/page-view counts that drive a panel-based ranking — the
// upstream of the Alexa provider model.
package toolbar

import (
	"fmt"
	"strings"

	"repro/internal/domainname"
)

// anonymisedHosts is the §7.1 list of sites whose URL and referer are
// reduced to the host name before transmission (as of 2018-05-17 in the
// paper).
var anonymisedHosts = map[string]bool{
	"google.com":       true,
	"instacart.com":    true,
	"shop.rewe.de":     true,
	"youtube.com":      true,
	"search.yahoo.com": true,
	"jet.com":          true,
	"ocado.com":        true,
}

// Demographics are the attributes the extension requests during
// installation, all linked to the aid.
type Demographics struct {
	Age             int
	Gender          string
	HouseholdIncome string
	Ethnicity       string
	Education       string
	InstallLocation string // "home" or "work"
}

// Client is one installed extension instance.
type Client struct {
	AID   uint64
	Demo  Demographics
	colls *Collector
}

// VisitReport is the per-page payload the extension transmits.
type VisitReport struct {
	AID        uint64
	URL        string // full URL, or host name only for anonymised sites
	Referer    string
	Host       string
	ScreenW    int
	ScreenH    int
	WindowID   int
	TabID      int
	LoadTimeMs int
	Anonymised bool
}

// Collector is the data.alexa.com-style backend: it issues aids and
// aggregates visit reports into daily per-domain panel statistics.
type Collector struct {
	nextAID uint64
	// days -> base domain -> stats
	days map[int]map[string]*DomainStats
	// clients by aid, for the demographic linkage the paper describes.
	clients map[uint64]Demographics
}

// DomainStats is the per-domain daily aggregate: page views and the
// distinct-visitor count that, combined, form Alexa's traffic rank
// input.
type DomainStats struct {
	PageViews int
	visitors  map[uint64]struct{}
}

// Visitors returns the distinct panel visitors counted.
func (s *DomainStats) Visitors() int { return len(s.visitors) }

// NewCollector builds an empty backend.
func NewCollector() *Collector {
	return &Collector{
		days:    make(map[int]map[string]*DomainStats),
		clients: make(map[uint64]Demographics),
	}
}

// Install registers a new extension instance: the backend assigns a
// fresh aid (stored in the browser's local storage, per the paper) and
// records the demographics against it.
func (c *Collector) Install(demo Demographics) *Client {
	c.nextAID++
	aid := c.nextAID
	c.clients[aid] = demo
	return &Client{AID: aid, Demo: demo, colls: c}
}

// DemographicsOf returns the attributes linked to an aid.
func (c *Collector) DemographicsOf(aid uint64) (Demographics, bool) {
	d, ok := c.clients[aid]
	return d, ok
}

// Visit reports a page visit on the given day. loaded=false (the page
// did not exist or failed to render) suppresses the report entirely,
// because the reporting JavaScript never ran. It returns the payload
// that was (or would have been) transmitted, and whether it was sent.
func (cl *Client) Visit(day int, rawURL, referer string, loaded bool) (VisitReport, bool) {
	host, path := splitURL(rawURL)
	if host == "" {
		return VisitReport{}, false
	}
	rep := VisitReport{
		AID:        cl.AID,
		Host:       host,
		URL:        rawURL,
		Referer:    referer,
		ScreenW:    1920,
		ScreenH:    1080,
		WindowID:   1,
		TabID:      1,
		LoadTimeMs: 300 + int(cl.AID%700),
	}
	if isAnonymised(host) {
		rep.URL = host
		refHost, _ := splitURL(referer)
		rep.Referer = refHost
		rep.Anonymised = true
	}
	_ = path
	if !loaded {
		return rep, false
	}
	cl.colls.record(day, host, cl.AID)
	return rep, true
}

// record aggregates one loaded visit.
func (c *Collector) record(day int, host string, aid uint64) {
	base := domainname.BaseOf(host)
	m := c.days[day]
	if m == nil {
		m = make(map[string]*DomainStats)
		c.days[day] = m
	}
	st := m[base]
	if st == nil {
		st = &DomainStats{visitors: make(map[uint64]struct{})}
		m[base] = st
	}
	st.PageViews++
	st.visitors[aid] = struct{}{}
}

// Stats returns the aggregate for a base domain on a day (nil if no
// panel traffic).
func (c *Collector) Stats(day int, baseDomain string) *DomainStats {
	return c.days[day][baseDomain]
}

// Score computes the panel score Alexa-style ranking would use for a
// domain-day: the geometric-mean-like combination of distinct visitors
// and page views the paper describes ("visitor and page view
// statistics").
func (c *Collector) Score(day int, baseDomain string) float64 {
	st := c.Stats(day, baseDomain)
	if st == nil {
		return 0
	}
	v := float64(st.Visitors())
	pv := float64(st.PageViews)
	// sqrt(v*pv): symmetric in both inputs, sub-linear in heavy
	// single-user activity.
	return sqrt(v * pv)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations; avoids importing math for one call site and
	// keeps the package dependency-free beyond domainname.
	z := x
	for i := 0; i < 24; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// isAnonymised reports whether the host (or a parent domain on the
// list) has its URLs reduced to the host name.
func isAnonymised(host string) bool {
	h := strings.ToLower(host)
	for {
		if anonymisedHosts[h] {
			return true
		}
		dot := strings.IndexByte(h, '.')
		if dot < 0 {
			return false
		}
		h = h[dot+1:]
	}
}

// splitURL extracts host and path from a URL-ish string without
// net/url's generality: scheme://host/path?query.
func splitURL(raw string) (host, rest string) {
	s := raw
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if s == "" {
		return "", ""
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		return strings.ToLower(s[:i]), s[i:]
	}
	return strings.ToLower(s), ""
}

// String renders a report the way a capture would log it.
func (r VisitReport) String() string {
	anon := ""
	if r.Anonymised {
		anon = " (anonymised)"
	}
	return fmt.Sprintf("aid=%d host=%s url=%s referer=%s load=%dms%s",
		r.AID, r.Host, r.URL, r.Referer, r.LoadTimeMs, anon)
}
