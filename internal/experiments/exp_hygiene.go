package experiments

import (
	"fmt"

	"repro/internal/hygiene"
)

func init() {
	register("hygiene",
		"Extension: list-hygiene pipeline impact on volume and churn (§9.1 recommendations)",
		runHygiene)
}

// runHygiene applies the recommended cleaning pipeline (well-formed,
// valid TLD, no local junk, resolvable) to every provider's archive
// and quantifies what §9.1's advice buys: how much of each list is
// junk, and how much day-to-day churn cleaning plus a presence
// requirement removes.
func runHygiene(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	// Resolvability is checked against the mid-window zone: one
	// authoritative snapshot, like a cleaning pass run once during a
	// collection campaign.
	zone := st.World.ZoneAt(st.Days() / 2)

	res := &Result{
		Paper:  "§5.1/§8.1: Umbrella carries 2.3% invalid-TLD names and 11.5% NXDOMAIN (population: 0.8%); Majestic 2.7% NXDOMAIN; Alexa ~0.1%. §9.1 recommends cleaning and repeated measurements; this table quantifies both.",
		Header: []string{"provider", "pipeline", "dropped/day", "raw churn", "clean churn", "churn cut"},
	}

	for _, prov := range st.Providers() {
		basic := hygiene.Recommended(zone)
		impBasic := hygiene.StabilityImpact(st.Archive, prov, basic, 0)

		withPresence := hygiene.NewPipeline(
			hygiene.WellFormed(), hygiene.ValidTLD(), hygiene.NoLocalhost(),
			hygiene.Resolvable(zone), hygiene.Presence(st.Archive, prov, 0.5),
		)
		impPresence := hygiene.StabilityImpact(st.Archive, prov, withPresence, 0)

		for _, r := range []struct {
			label string
			imp   hygiene.Impact
		}{
			{"clean", impBasic},
			{"clean+presence50", impPresence},
		} {
			cut := 0.0
			if r.imp.RawChurn > 0 {
				cut = 1 - r.imp.CleanChurn/r.imp.RawChurn
			}
			res.Rows = append(res.Rows, []string{
				prov, r.label,
				pct(r.imp.MeanDrop), pct(r.imp.RawChurn), pct(r.imp.CleanChurn), pct(cut),
			})
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("resolvability checked against the day-%d zone snapshot", st.Days()/2),
		"presence-50% keeps names listed on at least half the days — the longitudinal-measurement recommendation as a membership rule",
	)
	return res, nil
}
