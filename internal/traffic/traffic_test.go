package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/population"
	"repro/internal/toplist"
)

func buildModel(t *testing.T) *Model {
	t.Helper()
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewModel(w)
}

func TestSignalDeterministic(t *testing.T) {
	m := buildModel(t)
	a := m.Signal(AxisWeb, 3, nil)
	b := m.Signal(AxisWeb, 3, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("signal not deterministic at %d", i)
		}
	}
}

func TestSignalNonNegativeAndFinite(t *testing.T) {
	m := buildModel(t)
	for _, axis := range []Axis{AxisWeb, AxisDNS, AxisLink} {
		s := m.Signal(axis, 10, nil)
		for i, v := range s {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("axis %v domain %d: bad signal %v", axis, i, v)
			}
		}
	}
}

func TestUnbornHaveNoSignal(t *testing.T) {
	m := buildModel(t)
	s := m.Signal(AxisDNS, 0, nil)
	for i := range m.W.Domains {
		d := &m.W.Domains[i]
		if d.BirthDay > 0 && s[i] != 0 {
			t.Fatalf("unborn %q has day-0 signal %v", d.Name, s[i])
		}
	}
}

func TestDeadDomainsAxisBehaviour(t *testing.T) {
	m := buildModel(t)
	var dead *population.Domain
	var id uint32
	for i := range m.W.Domains {
		d := &m.W.Domains[i]
		if d.DeathDay > 0 && d.DeathDay < 20 && d.Depth == 0 &&
			d.Category == population.CatWeb {
			dead = d
			id = uint32(i)
			break
		}
	}
	if dead == nil {
		t.Skip("no suitable dead domain at this scale/seed")
	}
	after := int(dead.DeathDay) + 1
	if got := m.DomainSignal(id, AxisWeb, after); got != 0 {
		t.Fatalf("dead domain has web signal %v", got)
	}
	dns := m.DomainSignal(id, AxisDNS, after)
	if dns <= 0 {
		t.Fatal("dead domain should keep residual DNS traffic")
	}
	link := m.DomainSignal(id, AxisLink, after)
	if link <= 0 {
		t.Fatal("dead domain should keep link signal (Majestic lag)")
	}
}

func TestWeekendModulation(t *testing.T) {
	m := buildModel(t)
	// Compare the noise-free seasonal component by averaging many
	// weekdays vs weekends for leisure and work categories.
	var leisureID, workID uint32
	foundL, foundW := false, false
	for i := range m.W.Domains {
		d := &m.W.Domains[i]
		if d.BirthDay > 0 || d.Depth != 0 {
			continue
		}
		if d.Category == population.CatLeisure && !foundL {
			leisureID, foundL = uint32(i), true
		}
		if d.Category == population.CatWork && !foundW {
			workID, foundW = uint32(i), true
		}
	}
	if !foundL || !foundW {
		t.Fatal("fixtures missing")
	}
	avg := func(id uint32, weekend bool) float64 {
		var sum float64
		n := 0
		for day := 0; day < m.W.Cfg.Days; day++ {
			if toplist.Day(day).IsWeekend() != weekend {
				continue
			}
			sum += m.DomainSignal(id, AxisWeb, day)
			n++
		}
		return sum / float64(n)
	}
	if avg(leisureID, true) <= avg(leisureID, false) {
		t.Fatal("leisure domain should be busier on weekends")
	}
	if avg(workID, true) >= avg(workID, false) {
		t.Fatal("work domain should be quieter on weekends")
	}
}

func TestLinkAxisIgnoresWeekends(t *testing.T) {
	m := buildModel(t)
	id := m.W.BaseIDs()[0]
	// Within one week the weekly link noise is constant; daily noise is
	// tiny. Saturday/weekday ratio must stay near 1.
	sat := m.DomainSignal(id, AxisLink, 4) // day 4 = Saturday
	wed := m.DomainSignal(id, AxisLink, 1)
	if sat == 0 || wed == 0 {
		t.Skip("domain link-invisible")
	}
	ratio := sat / wed
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("link signal moved %.3f across weekdays of one week", ratio)
	}
}

func TestLinkAxisMoreStableThanWeb(t *testing.T) {
	m := buildModel(t)
	// Day-to-day relative change averaged over domains: link ≪ web.
	w1 := m.Signal(AxisWeb, 7, nil)
	w2 := m.Signal(AxisWeb, 8, nil)
	l1 := m.Signal(AxisLink, 7, nil)
	l2 := m.Signal(AxisLink, 8, nil)
	relChange := func(a, b []float64) float64 {
		var sum float64
		n := 0
		for i := range a {
			if a[i] > 0 && b[i] > 0 {
				sum += math.Abs(math.Log(b[i] / a[i]))
				n++
			}
		}
		return sum / float64(n)
	}
	wChange := relChange(w1, w2)
	lChange := relChange(l1, l2)
	if lChange*3 > wChange {
		t.Fatalf("link axis not stable: web change %.3f, link change %.3f", wChange, lChange)
	}
}

func TestTrendingBoostDecays(t *testing.T) {
	m := buildModel(t)
	var id uint32
	var d *population.Domain
	for i := range m.W.Domains {
		c := &m.W.Domains[i]
		if c.TrendBoost > 3 && c.Depth == 0 {
			d = c
			id = uint32(i)
			break
		}
	}
	if d == nil {
		t.Skip("no strongly trending domain at this scale")
	}
	// Average out noise by comparing expected envelope: signal right
	// after birth should exceed signal far later by roughly the boost.
	birth := int(d.BirthDay)
	if birth+30 >= m.W.Cfg.Days {
		// Evaluate beyond the archive horizon; the model itself has no
		// day limit.
	}
	early := 0.0
	late := 0.0
	for k := 0; k < 3; k++ {
		early += m.DomainSignal(id, AxisDNS, birth+k)
		late += m.DomainSignal(id, AxisDNS, birth+200+k)
	}
	if early <= late {
		t.Fatalf("trend boost did not decay: early %v late %v", early, late)
	}
}

func TestUniqueClientsMonotone(t *testing.T) {
	m := buildModel(t)
	if m.UniqueClients(0) != 0 {
		t.Fatal("zero signal, zero clients")
	}
	prev := 0.0
	for _, s := range []float64{1e-6, 1e-4, 1e-2, 1, 100} {
		c := m.UniqueClients(s)
		if c <= prev {
			t.Fatalf("UniqueClients not increasing at %v", s)
		}
		prev = c
	}
	// Sub-linear: doubling the signal less than doubles clients.
	if m.UniqueClients(2) >= 2*m.UniqueClients(1) {
		t.Fatal("UniqueClients should be sub-linear")
	}
}

func TestInvNormProperties(t *testing.T) {
	// Median and symmetry.
	if math.Abs(invNorm(0.5)) > 1e-9 {
		t.Fatalf("invNorm(0.5) = %v", invNorm(0.5))
	}
	for _, u := range []float64{0.01, 0.1, 0.25, 0.4} {
		if math.Abs(invNorm(u)+invNorm(1-u)) > 1e-6 {
			t.Fatalf("invNorm not antisymmetric at %v", u)
		}
	}
	// Known quantiles.
	if math.Abs(invNorm(0.975)-1.959964) > 1e-4 {
		t.Fatalf("invNorm(0.975) = %v", invNorm(0.975))
	}
	if math.Abs(invNorm(0.8413)-1.0) > 1e-3 {
		t.Fatalf("invNorm(0.8413) = %v", invNorm(0.8413))
	}
}

func TestInvNormMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		u1 := (float64(a%100000) + 1) / 100002
		u2 := (float64(b%100000) + 1) / 100002
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return invNorm(u1) <= invNorm(u2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashNormDistribution(t *testing.T) {
	var sum, sum2 float64
	const n = 200000
	for i := 0; i < n; i++ {
		z := hashNorm(12345, uint64(i), 0)
		sum += z
		sum2 += z * z
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("hashNorm mean %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("hashNorm variance %v", variance)
	}
}

func TestHashNormStreamsIndependent(t *testing.T) {
	// Correlation between streams 0 and 1 should be ~0.
	var sxy, sx, sy float64
	const n = 50000
	for i := 0; i < n; i++ {
		x := hashNorm(7, uint64(i), 0)
		y := hashNorm(7, uint64(i), 1)
		sxy += x * y
		sx += x
		sy += y
	}
	corr := (sxy/n - sx/n*sy/n)
	if math.Abs(corr) > 0.02 {
		t.Fatalf("streams correlated: %v", corr)
	}
}

func TestInjector(t *testing.T) {
	in := NewInjector()
	if in.For(3) != nil {
		t.Fatal("empty injector")
	}
	in.Add("test.dev", 3, 100, 1000)
	in.Add("test.dev", 3, 50, 500)
	got := in.For(3)["test.dev"]
	if got.Clients != 150 || got.Queries != 1500 {
		t.Fatalf("accumulate %+v", got)
	}
	if _, ok := in.For(4)["test.dev"]; ok {
		t.Fatal("day isolation")
	}
	in.Clear()
	if in.For(3) != nil {
		t.Fatal("clear")
	}
}

func BenchmarkSignalDay(b *testing.B) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := NewModel(w)
	buf := make([]float64, w.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Signal(AxisDNS, i%30, buf)
	}
}
