package population

import "math"

// anchor is a point on an adoption curve: at popularity quantile q
// (fraction of domains more popular, so q→0 is the head), the
// probability of the attribute is p.
type anchor struct{ q, p float64 }

// curve interpolates adoption probability piecewise-linearly in
// log10(q) between anchors. Anchors must be ordered by ascending q.
type curve []anchor

// eval returns the adoption probability at quantile q (clamped to the
// anchor range).
func (c curve) eval(q float64) float64 {
	if len(c) == 0 {
		return 0
	}
	if q <= c[0].q {
		return c[0].p
	}
	last := c[len(c)-1]
	if q >= last.q {
		return last.p
	}
	lq := math.Log10(q)
	for i := 1; i < len(c); i++ {
		if q <= c[i].q {
			lo, hi := c[i-1], c[i]
			t := (lq - math.Log10(lo.q)) / (math.Log10(hi.q) - math.Log10(lo.q))
			return lo.p + t*(hi.p-lo.p)
		}
	}
	return last.p
}

// Adoption curves, calibrated so that the population-level shares and
// the head/tail contrast land near the paper's Table 5 values. The
// measured per-list shares then emerge from which domains each list
// samples.
var (
	curveIPv6 = curve{{1e-5, 0.25}, {1e-4, 0.21}, {1e-3, 0.17}, {1e-2, 0.12}, {1e-1, 0.07}, {1, 0.035}}
	curveCAA  = curve{{1e-5, 0.30}, {1e-4, 0.17}, {1e-3, 0.06}, {1e-2, 0.015}, {1e-1, 0.003}, {1, 0.0008}}
	curveTLS  = curve{{1e-5, 0.93}, {1e-4, 0.89}, {1e-3, 0.85}, {1e-2, 0.76}, {1e-1, 0.56}, {1, 0.33}}
	curveHSTS = curve{{1e-5, 0.28}, {1e-3, 0.18}, {1e-2, 0.13}, {1e-1, 0.09}, {1, 0.07}}
	curveH2   = curve{{1e-5, 0.52}, {1e-4, 0.44}, {1e-3, 0.34}, {1e-2, 0.25}, {1e-1, 0.14}, {1, 0.06}}
	curveCDN  = curve{{1e-5, 0.38}, {1e-4, 0.30}, {1e-3, 0.16}, {1e-2, 0.06}, {1e-1, 0.025}, {1, 0.011}}
)

// attrScale multiplies the curve probability per category (capped at
// 0.97). Junk/ghost/IoT domains have no web infrastructure; trackers,
// mobile backends, and embedded-content hosts run on progressive
// CDN-hosted stacks.
type attrScale struct{ ipv6, caa, tls, hsts, h2, cdn float64 }

var categoryAttr = [numCategories]attrScale{
	CatWeb:      {1, 1, 1, 1, 1, 1},
	CatLeisure:  {1, 1, 1, 1, 1, 1},
	CatWork:     {1, 1.2, 1.05, 1.2, 0.9, 0.8},
	CatMedia:    {1.1, 1, 1.05, 1, 1.3, 1.8},
	CatShopping: {0.9, 1.1, 1.1, 1.2, 1, 1},
	CatTracker:  {1.3, 0.6, 1.1, 1.1, 1.7, 3.5},
	CatMobile:   {1.2, 0.5, 1.05, 0.9, 1.5, 2.5},
	CatCDNAsset: {1.4, 0.5, 1.05, 0.8, 1.9, 4.5},
	CatIoT:      {0.6, 0.1, 0.25, 0.2, 0.05, 0.05},
	CatJunk:     {0, 0, 0, 0, 0, 0},
	CatGhost:    {0, 0, 0, 0, 0, 0},
}

func scaled(p, factor float64) float64 {
	v := p * factor
	if v > 0.97 {
		v = 0.97
	}
	return v
}

// cdnHeadWeights and cdnTailWeights give the CDN market shares at the
// popularity head and tail; the tail is dominated by Google
// (private Google-hosted sites, the paper's 71 % population share) and
// WordPress, the head by classic commercial CDNs (Fig. 7b). Indexed by
// CDN ID 1..12; index 0 unused.
var (
	cdnHeadWeights = []float64{0, 30, 13, 11, 7, 10, 3, 5, 3, 2, 3, 4, 9}
	cdnTailWeights = []float64{0, 3, 66, 2, 1, 5, 16, 1, 0.5, 0.5, 1, 1, 3}
)

// cdnChoiceWeights interpolates the market share vector at quantile q.
func cdnChoiceWeights(q float64) []float64 {
	// Blend in log space between head (q=1e-5) and tail (q=1).
	t := (math.Log10(clampQ(q)) + 5) / 5 // 0 at head, 1 at tail
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	out := make([]float64, len(cdnHeadWeights))
	for i := range out {
		out[i] = (1-t)*cdnHeadWeights[i] + t*cdnTailWeights[i]
	}
	return out
}

func clampQ(q float64) float64 {
	if q < 1e-6 {
		return 1e-6
	}
	if q > 1 {
		return 1
	}
	return q
}

// Hosting-AS role shares by quantile: the tail lives on mass hosting
// (GoDaddy-like, the paper's 26 % population share), the head on cloud
// and diverse small ASes (Fig. 7d).
func hostingRoleWeights(q float64) (mass, cloud, small float64) {
	t := (math.Log10(clampQ(q)) + 5) / 5
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	mass = 0.03 + t*(0.45-0.03)
	cloud = 0.35 - t*(0.35-0.13)
	small = 1 - mass - cloud
	return
}

// TTL buckets by quantile: popular (often CDN-fronted) domains use
// short TTLs; the tail uses long registrar defaults.
var ttlBuckets = []uint32{30, 60, 300, 900, 3600, 86400}

func ttlWeights(q float64) []float64 {
	t := (math.Log10(clampQ(q)) + 5) / 5
	head := []float64{25, 25, 30, 12, 6, 2}
	tail := []float64{1, 2, 10, 15, 40, 32}
	out := make([]float64, len(head))
	for i := range out {
		out[i] = (1-t)*head[i] + t*tail[i]
	}
	return out
}
