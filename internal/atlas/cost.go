package atlas

import (
	"fmt"
	"math"

	"repro/internal/providers"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

// Manipulation-cost search (§7 extension). The paper demonstrates that
// Umbrella rank is manipulable with modest unique-source counts
// (Fig. 5) and cites Le Pochat et al. for Alexa (toolbar API) and
// Majestic (purchased backlinks). With injection hooks in all three
// generators, the natural follow-up question is quantitative: what is
// the *minimal* sustained daily signal that places an attacker's
// domain at a given rank in each list? MinimalClients answers it by
// binary search over end-to-end generator runs.

// CostConfig parameterises one minimal-cost search.
type CostConfig struct {
	// Provider is the list under attack (providers.Alexa, .Umbrella,
	// or .Majestic).
	Provider string
	// TargetRank is the rank to reach (rank <= TargetRank on the final
	// day counts as success).
	TargetRank int
	// Days is the sustained injection duration; the rank is read on
	// day Days-1.
	Days int
	// MaxClients bounds the search; the search fails if even this
	// signal cannot reach the target.
	MaxClients float64
	// Tolerance stops the search when hi/lo falls below 1+Tolerance
	// (default 0.05).
	Tolerance float64
	// Opts is the generation baseline (list size, alphas, burn-in).
	Opts providers.Options
}

// CostResult reports a minimal-cost search outcome.
type CostResult struct {
	Provider   string
	TargetRank int
	// Clients is the minimal clients/day found: unique DNS sources for
	// Umbrella, panel visitors for Alexa, referring /24 subnets for
	// Majestic.
	Clients float64
	// EntryDay is the first day the domain reached the target at the
	// found cost (measures the mechanism's inertia: Majestic's 90-day
	// window makes this large).
	EntryDay int
	// FinalRank is the rank achieved on the last day at the found
	// cost.
	FinalRank int
	// Evaluations counts generator runs spent by the search.
	Evaluations int
}

// attackOutcome is one generator run under a fixed injected signal.
type attackOutcome struct {
	finalRank int // 0 = not listed on the final day
	entryDay  int // first day with rank <= target, -1 if never
}

func runAttack(model *traffic.Model, cfg CostConfig, clients float64) (attackOutcome, error) {
	const target = "attacker.cost-exp.net"
	inj := traffic.NewInjector()
	for d := 0; d < cfg.Days; d++ {
		inj.Add(target, d, clients, clients) // one query per client per day
	}
	opts := cfg.Opts
	opts.Enabled = []string{cfg.Provider}
	switch cfg.Provider {
	case providers.Alexa:
		opts.AlexaInjector = inj
	case providers.Majestic:
		opts.MajesticInjector = inj
	case providers.Umbrella:
		opts.Injector = inj
	default:
		return attackOutcome{}, fmt.Errorf("atlas: unknown provider %q", cfg.Provider)
	}
	g, err := providers.NewGenerator(model, opts)
	if err != nil {
		return attackOutcome{}, err
	}
	arch, err := g.Run(cfg.Days)
	if err != nil {
		return attackOutcome{}, err
	}
	out := attackOutcome{entryDay: -1}
	for d := 0; d < cfg.Days; d++ {
		r := arch.Get(cfg.Provider, toplist.Day(d)).RankOf(target)
		if r != 0 && r <= cfg.TargetRank && out.entryDay < 0 {
			out.entryDay = d
		}
		if d == cfg.Days-1 {
			out.finalRank = r
		}
	}
	return out, nil
}

func (o attackOutcome) success(target int) bool {
	return o.finalRank != 0 && o.finalRank <= target
}

// MinimalClients binary-searches the smallest sustained clients/day
// that reaches cfg.TargetRank by the final day.
func MinimalClients(model *traffic.Model, cfg CostConfig) (CostResult, error) {
	if cfg.Days < 3 {
		return CostResult{}, fmt.Errorf("atlas: need >= 3 days, got %d", cfg.Days)
	}
	if cfg.TargetRank < 1 {
		return CostResult{}, fmt.Errorf("atlas: bad target rank %d", cfg.TargetRank)
	}
	if cfg.MaxClients <= 1 {
		return CostResult{}, fmt.Errorf("atlas: MaxClients must exceed 1")
	}
	tol := cfg.Tolerance
	if tol <= 0 {
		tol = 0.05
	}
	res := CostResult{Provider: cfg.Provider, TargetRank: cfg.TargetRank}

	eval := func(clients float64) (attackOutcome, error) {
		res.Evaluations++
		return runAttack(model, cfg, clients)
	}

	hiOut, err := eval(cfg.MaxClients)
	if err != nil {
		return res, err
	}
	if !hiOut.success(cfg.TargetRank) {
		return res, fmt.Errorf("atlas: %s rank %d unreachable with %.0f clients/day in %d days (final rank %d)",
			cfg.Provider, cfg.TargetRank, cfg.MaxClients, cfg.Days, hiOut.finalRank)
	}
	lo, hi := 1.0, cfg.MaxClients
	best := hiOut
	for hi/lo > 1+tol {
		mid := geoMid(lo, hi)
		out, err := eval(mid)
		if err != nil {
			return res, err
		}
		if out.success(cfg.TargetRank) {
			hi = mid
			best = out
		} else {
			lo = mid
		}
	}
	res.Clients = hi
	res.EntryDay = best.entryDay
	res.FinalRank = best.finalRank
	return res, nil
}

// geoMid is the geometric midpoint: the signal scale spans orders of
// magnitude, so we bisect in log space.
func geoMid(lo, hi float64) float64 { return math.Sqrt(lo * hi) }
