package stats

import (
	"math"
	"sort"
)

// KendallTau returns Kendall's τ-b rank correlation coefficient between
// paired observations (x[i], y[i]), with the tie correction. τ-b is the
// statistic the paper uses to compare list orderings day-to-day (§6.3):
// 1 for identical orders, -1 for fully reversed orders.
//
// The implementation sorts by x and counts discordant pairs with a
// merge-sort inversion count, giving O(n log n) overall. It returns NaN
// for fewer than two pairs or when either variable is constant.
func KendallTau(x, y []float64) float64 {
	n := len(x)
	if n != len(y) {
		panic("stats: KendallTau length mismatch")
	}
	if n < 2 {
		return math.NaN()
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort by x, breaking ties by y so that equal-x runs are grouped and
	// y is sorted within them (required for correct joint-tie counting).
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if x[ia] != x[ib] {
			return x[ia] < x[ib]
		}
		return y[ia] < y[ib]
	})

	ys := make([]float64, n)
	for i, id := range idx {
		ys[i] = y[id]
	}

	total := float64(n) * float64(n-1) / 2

	// Ties in x (n1) and joint ties (n3) from the sorted order.
	var n1, n3 float64
	for i := 0; i < n; {
		j := i
		for j < n && x[idx[j]] == x[idx[i]] {
			j++
		}
		run := float64(j - i)
		n1 += run * (run - 1) / 2
		// Joint ties within the x-run (y sorted inside the run).
		for k := i; k < j; {
			m := k
			for m < j && ys[m] == ys[k] {
				m++
			}
			jr := float64(m - k)
			n3 += jr * (jr - 1) / 2
			k = m
		}
		i = j
	}

	// Ties in y (n2).
	ysorted := make([]float64, n)
	copy(ysorted, ys)
	sort.Float64s(ysorted)
	var n2 float64
	for i := 0; i < n; {
		j := i
		for j < n && ysorted[j] == ysorted[i] {
			j++
		}
		run := float64(j - i)
		n2 += run * (run - 1) / 2
		i = j
	}

	// Discordant pairs = inversions of ys, excluding pairs tied in x
	// (those were sorted by y within the run, contributing no
	// inversions) — the merge-sort count therefore counts exactly the
	// x-distinct discordant pairs. Pairs tied in y are never counted as
	// inversions (strict >).
	discordant := float64(countInversions(ys))

	concordant := total - n1 - n2 + n3 - discordant

	denom := math.Sqrt((total - n1) * (total - n2))
	if denom == 0 {
		return math.NaN()
	}
	return (concordant - discordant) / denom
}

// countInversions returns the number of pairs i<j with xs[i] > xs[j]
// using bottom-up merge sort; xs is clobbered.
func countInversions(xs []float64) int64 {
	n := len(xs)
	buf := make([]float64, n)
	var inv int64
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n-width; lo += 2 * width {
			mid := lo + width
			hi := mid + width
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if xs[i] <= xs[j] {
					buf[k] = xs[i]
					i++
				} else {
					buf[k] = xs[j]
					j++
					inv += int64(mid - i)
				}
				k++
			}
			for i < mid {
				buf[k] = xs[i]
				i++
				k++
			}
			for j < hi {
				buf[k] = xs[j]
				j++
				k++
			}
			copy(xs[lo:hi], buf[lo:hi])
		}
	}
	return inv
}

// KendallTauRanks is a convenience wrapper for integer rank vectors.
func KendallTauRanks(x, y []int) float64 {
	return KendallTau(IntsToFloats(x), IntsToFloats(y))
}
