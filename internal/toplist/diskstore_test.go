package toplist

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// randomList builds a small list with names derived deterministically
// from the rng.
func randomList(rng *rand.Rand) *List {
	n := 1 + rng.Intn(20)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("d%04d-%02d.example.com", rng.Intn(5000), i)
	}
	return New(names)
}

// TestDiskStoreRoundTripProperty is the round-trip property pinning
// DiskStore to Archive: for random day ranges, provider subsets, and
// gap patterns, Put into both stores, reopen the disk store cold, and
// require bitwise-equal Get results plus Missing()/Complete() parity
// via the manifest.
func TestDiskStoreRoundTripProperty(t *testing.T) {
	providers := []string{"alexa", "umbrella", "majestic", "quantcast"}
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		first := Day(rng.Intn(40) - 20)
		days := 1 + rng.Intn(12)
		last := first + Day(days-1)

		dir := t.TempDir()
		disk, err := CreateDiskStore(dir, first, last)
		if err != nil {
			t.Fatal(err)
		}
		mem := NewArchive(first, last)

		nProviders := 1 + rng.Intn(len(providers))
		expected := providers[:1+rng.Intn(nProviders)]
		if err := disk.Expect(expected...); err != nil {
			t.Fatal(err)
		}
		mem.Expect(expected...)

		for _, p := range providers[:nProviders] {
			for d := first; d <= last; d++ {
				if rng.Float64() < 0.25 {
					continue // leave a gap
				}
				l := randomList(rng)
				if err := disk.Put(p, d, l); err != nil {
					t.Fatalf("trial %d: disk put: %v", trial, err)
				}
				if err := mem.Put(p, d, l); err != nil {
					t.Fatalf("trial %d: mem put: %v", trial, err)
				}
			}
		}

		// Reopen cold so every read decodes from disk, not the write
		// cache.
		reopened, err := OpenArchive(dir)
		if err != nil {
			t.Fatalf("trial %d: reopen: %v", trial, err)
		}
		for _, src := range []Source{disk, reopened} {
			if src.First() != mem.First() || src.Last() != mem.Last() || src.Days() != mem.Days() {
				t.Fatalf("trial %d: range (%v,%v,%d) vs (%v,%v,%d)", trial,
					src.First(), src.Last(), src.Days(), mem.First(), mem.Last(), mem.Days())
			}
			if !reflect.DeepEqual(src.Providers(), mem.Providers()) {
				t.Fatalf("trial %d: providers %v vs %v", trial, src.Providers(), mem.Providers())
			}
			for _, p := range providers {
				for d := first - 2; d <= last+2; d++ {
					want, got := mem.Get(p, d), src.Get(p, d)
					if (want == nil) != (got == nil) {
						t.Fatalf("trial %d: %s %v: nil mismatch (mem %v, disk %v)", trial, p, d, want != nil, got != nil)
					}
					if want != nil && !reflect.DeepEqual(want.Names(), got.Names()) {
						t.Fatalf("trial %d: %s %v: names differ", trial, p, d)
					}
				}
			}
		}
		if !reflect.DeepEqual(reopened.Expected(), mem.Expected()) {
			t.Fatalf("trial %d: expected set %v vs %v after reopen", trial, reopened.Expected(), mem.Expected())
		}
		if !reflect.DeepEqual(reopened.Missing(), mem.Missing()) {
			t.Fatalf("trial %d: Missing differs after reopen:\n disk %v\n mem  %v", trial, reopened.Missing(), mem.Missing())
		}
		if reopened.Complete() != mem.Complete() {
			t.Fatalf("trial %d: Complete %v vs %v", trial, reopened.Complete(), mem.Complete())
		}
	}
}

func TestDiskStoreRejectsBadPuts(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 4, New([]string{"a.com"})); err == nil {
		t.Fatal("day beyond range accepted")
	}
	if err := ds.Put("alexa", -1, New([]string{"a.com"})); err == nil {
		t.Fatal("day before range accepted")
	}
	if err := ds.Put("alexa", 0, nil); err == nil {
		t.Fatal("nil list accepted")
	}
}

func TestDiskStoreCreateOverExistingFails(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateDiskStore(dir, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateDiskStore(dir, 0, 1); err == nil {
		t.Fatal("second create over the same dir should fail")
	}
	if _, err := OpenArchive(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("open of a dir without a manifest should fail")
	}
}

func TestDiskStoreExtendTo(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 0, New([]string{"a.com"})); err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 2, New([]string{"late.com"})); err == nil {
		t.Fatal("day 2 accepted before extend")
	}
	if err := ds.ExtendTo(4); err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 2, New([]string{"late.com"})); err != nil {
		t.Fatal(err)
	}
	// Extending never shrinks.
	if err := ds.ExtendTo(1); err != nil {
		t.Fatal(err)
	}
	if ds.Last() != 4 || ds.Days() != 5 {
		t.Fatalf("range after extend: last %v, days %d", ds.Last(), ds.Days())
	}
	reopened, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Days() != 5 || reopened.Get("alexa", 2) == nil {
		t.Fatal("extension not durable")
	}
	if !reopened.Has("alexa", 0) || reopened.Has("alexa", 1) {
		t.Fatal("Has disagrees with stored set")
	}
}

// TestDiskStoreAtomicity: a leftover temp file (simulating a crash
// mid-write) is neither served nor counted as present after reopen.
func TestDiskStoreCrashLeftoversIgnored(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 0, New([]string{"a.com"})); err != nil {
		t.Fatal(err)
	}
	// Fake an interrupted write of day 1.
	tmp := filepath.Join(dir, "alexa", Day(1).String()+snapshotExt+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Has("alexa", 1) || reopened.Get("alexa", 1) != nil {
		t.Fatal("partial temp file served as a snapshot")
	}
	if len(reopened.Missing()) != 1 {
		t.Fatalf("Missing = %v, want exactly day 1", reopened.Missing())
	}
}

// TestDiskStoreConcurrentGet exercises the read cache under parallel
// readers (the experiment pool fans out over one Source).
func TestDiskStoreConcurrentGet(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[Day][]string)
	for d := Day(0); d <= 9; d++ {
		l := New([]string{fmt.Sprintf("rank1-%d.com", d), fmt.Sprintf("rank2-%d.com", d)})
		if err := ds.Put("alexa", d, l); err != nil {
			t.Fatal(err)
		}
		want[d] = l.Names()
	}
	reopened, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 4; pass++ {
				for d := Day(0); d <= 9; d++ {
					l := reopened.Get("alexa", d)
					if l == nil || !reflect.DeepEqual(l.Names(), want[d]) {
						errs <- fmt.Errorf("day %v: wrong snapshot", d)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDiskStoreCorruptSnapshot pins the corruption semantics: a
// snapshot whose file cannot be decoded serves nil from Get while Has
// still reports it and Missing does NOT list it — present-but-corrupt
// is distinguishable from absent by comparing the two. The decode
// failure is memoized (no re-read per call) until a Put replaces the
// snapshot and makes the slot readable again.
func TestDiskStoreCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := New([]string{"a.com", "b.com"})
	for d := Day(0); d <= 2; d++ {
		if err := ds.Put("alexa", d, good); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt day 1 behind the store's back.
	path := filepath.Join(dir, "alexa", Day(1).String()+snapshotExt)
	if err := os.WriteFile(path, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Get("alexa", 1); got != nil {
		t.Fatal("corrupt snapshot decoded")
	}
	if !reopened.Has("alexa", 1) {
		t.Fatal("Has lost the corrupt-but-present snapshot")
	}
	if missing := reopened.Missing(); len(missing) != 0 {
		t.Fatalf("Missing reports corrupt snapshot as absent: %v", missing)
	}

	// The failure is memoized: fixing the bytes behind the store's
	// back is NOT picked up (no disk re-read per call)...
	ds2, err := CreateDiskStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds2.Put("alexa", 0, good); err != nil {
		t.Fatal(err)
	}
	fixed, err := os.ReadFile(filepath.Join(ds2.Dir(), "alexa", Day(0).String()+snapshotExt))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fixed, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := reopened.Get("alexa", 1); got != nil {
		t.Fatal("memoized decode failure was silently dropped")
	}
	// ...while a Put through the store invalidates the memo.
	repl := New([]string{"replaced.com"})
	if err := reopened.Put("alexa", 1, repl); err != nil {
		t.Fatal(err)
	}
	got := reopened.Get("alexa", 1)
	if got == nil || !reflect.DeepEqual(got.Names(), repl.Names()) {
		t.Fatal("Put did not make the corrupt slot readable again")
	}
}

// TestDiskStoreGetSingleFlight: concurrent readers of the same
// uncached snapshot share one decode — every caller gets the same
// *List, not a private copy from a duplicated open+gunzip+parse.
func TestDiskStoreGetSingleFlight(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 0, New([]string{"a.com", "b.com", "c.com"})); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	const readers = 16
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		got   [readers]*List
	)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got[i] = reopened.Get("alexa", 0)
		}()
	}
	close(start)
	wg.Wait()
	for i := 1; i < readers; i++ {
		if got[i] == nil || got[i] != got[0] {
			t.Fatalf("reader %d decoded its own copy (%p vs %p)", i, got[i], got[0])
		}
	}
}

// TestDiskStoreConcurrentMixedOps hammers Get/Put/ExtendTo/Complete/
// Missing from many goroutines; run under -race this pins the locking
// (notably Complete's single-RLock evaluation) and the single-flight
// cache against data races.
func TestDiskStoreConcurrentMixedOps(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Expect("alexa", "umbrella"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(3)
		go func() { // writer: fills and extends
			defer wg.Done()
			for i := 0; i < 30; i++ {
				d := Day(i % 8)
				if err := ds.ExtendTo(d); err != nil {
					t.Error(err)
					return
				}
				if d <= ds.Last() {
					l := New([]string{fmt.Sprintf("w%d-%d.com", w, i)})
					p := "alexa"
					if i%2 == 1 {
						p = "umbrella"
					}
					if err := ds.Put(p, d%5, l); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
		go func() { // reader
			defer wg.Done()
			for i := 0; i < 60; i++ {
				for d := Day(0); d <= 7; d++ {
					ds.Get("alexa", d)
					ds.Get("umbrella", d)
				}
			}
		}()
		go func() { // completeness observer
			defer wg.Done()
			for i := 0; i < 60; i++ {
				complete := ds.Complete()
				missing := ds.Missing()
				// Complete and a Missing scan race with writers, but
				// Complete itself must be internally consistent: it can
				// never be true while its own evaluation saw gaps.
				if complete && len(missing) > 0 && ds.Complete() && len(ds.Missing()) > 0 {
					// Re-check once to filter genuine interleavings.
					t.Error("Complete() true while Missing() persistently non-empty")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestOpenArchiveRejectsUnknownVersion: a manifest from a future
// format fails loudly at open instead of half-opening.
func TestOpenArchiveRejectsUnknownVersion(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateDiskStore(dir, 0, 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	futur := []byte(strings.Replace(string(raw), fmt.Sprintf(`"version": %d`, manifestVersion), `"version": 99`, 1))
	if reflect.DeepEqual(raw, futur) {
		t.Fatal("test did not rewrite the version field")
	}
	if err := os.WriteFile(path, futur, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenArchive(dir)
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future-version archive opened: err = %v", err)
	}
}

// TestDiskStoreTimingsRoundTrip: observed experiment wall times
// recorded into the manifest survive a reopen.
func TestDiskStoreTimingsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Timings() != nil {
		t.Fatal("fresh store reports timings")
	}
	if err := ds.RecordTiming("fig5", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ds.RecordTiming("table1", 1500*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := reopened.Timings()
	want := map[string]time.Duration{
		"fig5":   90 * time.Second,
		"table1": 1500 * time.Microsecond,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("timings after reopen: %v, want %v", got, want)
	}
}

// TestDiskStoreCorruptListing: Corrupt() surfaces exactly the memoized
// decode failures — nothing before a probe, each corrupt slot after
// its Get, ordered by provider (manifest order) then day — and a Put
// repairing a slot removes it from the listing. This is the
// Verify()-lite operators pair with Missing(): absent vs unreadable
// without probing Get per day themselves.
func TestDiskStoreCorruptListing(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"umbrella", "alexa"} { // manifest order: umbrella first
		for d := Day(0); d <= 1; d++ {
			if err := ds.Put(p, d, New([]string{p + ".com"})); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Corrupt three slots behind the store's back.
	for _, s := range []Snapshot{{Provider: "alexa", Day: 1}, {Provider: "alexa", Day: 0}, {Provider: "umbrella", Day: 1}} {
		path := filepath.Join(dir, s.Provider, s.Day.String()+snapshotExt)
		if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reopened, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing probed yet: the listing is empty (decodes are lazy).
	if c := reopened.Corrupt(); len(c) != 0 {
		t.Fatalf("Corrupt() before any Get = %v", c)
	}
	// Sweep every slot, then read the listing.
	for _, p := range reopened.Providers() {
		for d := reopened.First(); d <= reopened.Last(); d++ {
			reopened.Get(p, d)
		}
	}
	want := []Snapshot{
		{Provider: "umbrella", Day: 1},
		{Provider: "alexa", Day: 0},
		{Provider: "alexa", Day: 1},
	}
	got := reopened.Corrupt()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Corrupt() = %v, want %v", got, want)
	}
	// Missing stays empty: corrupt is present-but-unreadable.
	if m := reopened.Missing(); len(m) != 0 {
		t.Fatalf("Missing() = %v, want none", m)
	}
	// Repairing one slot clears its entry.
	if err := reopened.Put("alexa", 0, New([]string{"fixed.com"})); err != nil {
		t.Fatal(err)
	}
	if reopened.Get("alexa", 0) == nil {
		t.Fatal("repaired slot still nil")
	}
	got = reopened.Corrupt()
	want = []Snapshot{{Provider: "umbrella", Day: 1}, {Provider: "alexa", Day: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Corrupt() after repair = %v, want %v", got, want)
	}
}

// TestDiskStoreRawReadRoundTrip: Put persists a content hash in the
// manifest, GetRaw returns the exact on-disk bytes with that hash, and
// both survive a cold reopen — the contract the serving fast path's
// restart-stable ETags are built on.
func TestDiskStoreRawReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	l := New([]string{"a.com", "b.org", "c.net"})
	if err := ds.Put("alexa", 0, l); err != nil {
		t.Fatal(err)
	}
	hash := ds.RawHash("alexa", 0)
	if hash == "" {
		t.Fatal("Put did not persist a content hash")
	}
	disk, err := os.ReadFile(filepath.Join(dir, "alexa", Day(0).String()+snapshotExt))
	if err != nil {
		t.Fatal(err)
	}
	if got := ContentHash(disk); got != hash {
		t.Fatalf("persisted hash %s != ContentHash(disk bytes) %s", hash, got)
	}
	raw, err := ds.GetRaw("alexa", 0)
	if err != nil {
		t.Fatal(err)
	}
	if raw == nil || !reflect.DeepEqual(raw.Data, disk) || raw.Hash != hash {
		t.Fatal("GetRaw does not return the on-disk bytes + persisted hash")
	}
	// Absent slots have no raw read and no hash.
	if h := ds.RawHash("alexa", 1); h != "" {
		t.Fatalf("absent slot has hash %q", h)
	}
	if raw, err := ds.GetRaw("alexa", 1); raw != nil || err != nil {
		t.Fatalf("absent slot GetRaw = %v, %v; want nil, nil", raw, err)
	}
	// Cold reopen: same hash, same bytes.
	reopened, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h := reopened.RawHash("alexa", 0); h != hash {
		t.Fatalf("hash after reopen = %q, want %q", h, hash)
	}
	raw2, err := reopened.GetRaw("alexa", 0)
	if err != nil || raw2 == nil || !reflect.DeepEqual(raw2.Data, disk) {
		t.Fatalf("GetRaw after reopen = %v, %v", raw2, err)
	}
}

// TestDiskStorePutRaw: an encoded document round-trips byte-for-byte
// through PutRaw (the peer gap-fill path), while a document that does
// not decode is rejected before anything touches disk.
func TestDiskStorePutRaw(t *testing.T) {
	src := t.TempDir()
	from, err := CreateDiskStore(src, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := New([]string{"x.com", "y.org"})
	if err := from.Put("alexa", 0, l); err != nil {
		t.Fatal(err)
	}
	raw, err := from.GetRaw("alexa", 0)
	if err != nil || raw == nil {
		t.Fatalf("GetRaw = %v, %v", raw, err)
	}

	dst := t.TempDir()
	to, err := CreateDiskStore(dst, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := to.PutRaw("alexa", 0, raw.Data); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(filepath.Join(src, "alexa", Day(0).String()+snapshotExt))
	b, _ := os.ReadFile(filepath.Join(dst, "alexa", Day(0).String()+snapshotExt))
	if !reflect.DeepEqual(a, b) || len(a) == 0 {
		t.Fatal("PutRaw did not replicate the document byte-for-byte")
	}
	if to.RawHash("alexa", 0) != from.RawHash("alexa", 0) {
		t.Fatal("replicated slot's persisted hash differs")
	}
	got := to.Get("alexa", 0)
	if got == nil || got.Len() != l.Len() || got.Name(1) != l.Name(1) {
		t.Fatalf("replicated slot decodes to %v", got)
	}

	if err := to.PutRaw("alexa", 0, []byte("not a gzip document")); err == nil {
		t.Fatal("PutRaw accepted an undecodable document")
	}
	if to.Get("alexa", 0) == nil {
		t.Fatal("rejected PutRaw destroyed the existing slot")
	}
}

// TestDiskStoreVerifySweep is the eager-integrity acceptance scenario:
// corruption injected behind the store's back is detected by Verify()
// before any reader ever requests the slot, and both read paths then
// refuse it until a Put repairs it.
func TestDiskStoreVerifySweep(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for d := Day(0); d <= 2; d++ {
		if err := ds.Put("alexa", d, New([]string{fmt.Sprintf("day%d.com", d)})); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt day 1 on disk and reopen cold: no reader has touched
	// anything yet.
	path := filepath.Join(dir, "alexa", Day(1).String()+snapshotExt)
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err = OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c := ds.Corrupt(); len(c) != 0 {
		t.Fatalf("Corrupt() before any read = %v", c)
	}
	corrupt := ds.Verify()
	if len(corrupt) != 1 || corrupt[0].Provider != "alexa" || corrupt[0].Day != 1 {
		t.Fatalf("Verify() = %v, want [alexa 1]", corrupt)
	}
	if _, err := ds.GetRaw("alexa", 1); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("GetRaw after Verify = %v, want corrupt error", err)
	}
	if ds.Get("alexa", 1) != nil {
		t.Fatal("Get served a slot Verify flagged")
	}
	// Healthy slots are untouched — and Verify did not materialise
	// them into the decode cache (a second Verify re-reads nothing
	// settled, and Get still works).
	if ds.Get("alexa", 0) == nil || ds.Get("alexa", 2) == nil {
		t.Fatal("Verify broke healthy slots")
	}
	// A Put over the corrupt slot repairs it.
	if err := ds.Put("alexa", 1, New([]string{"repaired.com"})); err != nil {
		t.Fatal(err)
	}
	if c := ds.Verify(); len(c) != 0 {
		t.Fatalf("Verify after repair = %v", c)
	}
	if got := ds.Get("alexa", 1); got == nil || got.Name(1) != "repaired.com" {
		t.Fatalf("repaired slot = %v", got)
	}
}

// TestDiskStoreVerifyCatchesHashMismatch: a snapshot replaced on disk
// by a different but well-formed document decodes fine — only the
// persisted hash can tell it is not what was stored. This is the
// tamper/bit-rot case hashing exists for.
func TestDiskStoreVerifyCatchesHashMismatch(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 0, New([]string{"original.com"})); err != nil {
		t.Fatal(err)
	}
	// Forge a valid document in place, bypassing the store.
	other := t.TempDir()
	forge, err := CreateDiskStore(other, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := forge.Put("alexa", 0, New([]string{"forged.com"})); err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(filepath.Join(other, "alexa", Day(0).String()+snapshotExt))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "alexa", Day(0).String()+snapshotExt), doc, 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err = OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c := ds.Verify(); len(c) != 1 {
		t.Fatalf("Verify() = %v, want the hash-mismatched slot", c)
	}
	if _, err := ds.GetRaw("alexa", 0); err == nil {
		t.Fatal("GetRaw served bytes whose hash does not match the manifest")
	}
}

// TestOpenArchiveV1ManifestUpgrade: an archive written by the previous
// manifest format (version 1, no hashes) still opens and reads, raw
// access reports "no hash" rather than failing, and the first write
// upgrades the manifest in place — new slots get hashes, old slots
// keep serving through the decode path.
func TestOpenArchiveV1ManifestUpgrade(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 0, New([]string{"old.com"})); err != nil {
		t.Fatal(err)
	}
	// Rewrite the manifest as the version-1 format: drop the hashes,
	// set the old version number.
	manPath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	if _, ok := fields["hashes"]; !ok {
		t.Fatal("manifest has no hashes block to strip")
	}
	delete(fields, "hashes")
	fields["version"] = manifestVersionNoHashes
	v1, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, v1, 0o644); err != nil {
		t.Fatal(err)
	}

	ds, err = OpenArchive(dir)
	if err != nil {
		t.Fatalf("version-1 archive did not open: %v", err)
	}
	if got := ds.Get("alexa", 0); got == nil || got.Name(1) != "old.com" {
		t.Fatalf("v1 slot reads as %v", got)
	}
	if h := ds.RawHash("alexa", 0); h != "" {
		t.Fatalf("v1 slot reports hash %q, want none", h)
	}
	if raw, err := ds.GetRaw("alexa", 0); raw != nil || err != nil {
		t.Fatalf("v1 slot GetRaw = %v, %v; want nil, nil (decode-path fallback)", raw, err)
	}
	if c := ds.Verify(); len(c) != 0 {
		t.Fatalf("Verify over v1 archive = %v (decode check should still pass)", c)
	}

	// First write upgrades: manifest flushes as the current version and
	// the new slot is raw-readable; the old slot still has no hash.
	if err := ds.Put("alexa", 1, New([]string{"new.com"})); err != nil {
		t.Fatal(err)
	}
	if h := ds.RawHash("alexa", 1); h == "" {
		t.Fatal("post-upgrade write has no hash")
	}
	upgraded, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(upgraded), fmt.Sprintf(`"version": %d`, manifestVersion)) {
		t.Fatal("manifest not upgraded to the current version on write")
	}
	reopened, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.RawHash("alexa", 0) != "" || reopened.RawHash("alexa", 1) == "" {
		t.Fatal("upgrade changed the wrong slots' hashes")
	}
}

// TestVerifyReportCounts: the sweep's report splits healthy slots into
// hash-verified and decode-only (hashless v1-upgrade) counts, excludes
// corrupt slots from both, and Verify() stays the report's corrupt
// listing.
func TestVerifyReportCounts(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDiskStore(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for d := Day(0); d <= 2; d++ {
		if err := ds.Put("alexa", d, New([]string{"a.com", "b.org"})); err != nil {
			t.Fatal(err)
		}
	}
	// Strip day 0's hash from the manifest — the post-v1-upgrade state:
	// present, decodable, but nothing to hash-check against.
	manPath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	hashes := fields["hashes"].(map[string]any)["alexa"].(map[string]any)
	delete(hashes, Day(0).String())
	stripped, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, stripped, 0o644); err != nil {
		t.Fatal(err)
	}
	// Rot day 2's file behind the store's back.
	if err := os.WriteFile(filepath.Join(dir, "alexa", Day(2).String()+".csv.gz"), []byte("rotted"), 0o644); err != nil {
		t.Fatal(err)
	}

	ds, err = OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := ds.VerifyReport()
	if rep.HashVerified != 1 {
		t.Fatalf("HashVerified = %d, want 1", rep.HashVerified)
	}
	if rep.DecodeOnly != 1 {
		t.Fatalf("DecodeOnly = %d, want 1", rep.DecodeOnly)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0].Day != 2 {
		t.Fatalf("Corrupt = %v, want alexa day 2", rep.Corrupt)
	}
	if got := ds.Verify(); len(got) != 1 || got[0] != rep.Corrupt[0] {
		t.Fatalf("Verify() = %v, want the report's corrupt listing", got)
	}
}
