package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/providers"
	"repro/internal/stats"
)

func init() {
	register("fig3a", "KS distance between weekend and weekday rank distributions (Fig. 3a)", runFig3a)
	register("fig3b", "Weekend/weekday SLD dynamics in Alexa (Fig. 3b)", runFig3b)
	register("fig3c", "Weekend/weekday SLD dynamics in Umbrella (Fig. 3c)", runFig3c)
	register("fig4", "CDF of Kendall's tau between lists (Fig. 4)", runFig4)
}

const ksSample = 20000

func runFig3a(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper:  "Fig. 3a: ~35% of Alexa 1M and >15% of Umbrella 1M domains at KS distance 1; Majestic near 0; weekday-vs-weekday baseline <0.05 for 90% of domains",
		Header: []string{"list", "top", "mean KS", "P(KS=1)", "P(KS<0.05)", "baseline mean KS"},
	}
	for _, top := range []int{0, st.Scale.HeadSize} {
		for _, p := range st.Providers() {
			ds := st.Analysis.KSWeekendDistances(p, top, ksSample, false)
			base := st.Analysis.KSWeekendDistances(p, top, ksSample, true)
			ones, small := 0, 0
			for _, v := range ds {
				if v == 1 {
					ones++
				}
				if v < 0.05 {
					small++
				}
			}
			n := float64(len(ds))
			if n == 0 {
				n = 1
			}
			label := "full"
			if top > 0 {
				label = d(top)
			}
			res.Rows = append(res.Rows, []string{
				p, label, f3(stats.Mean(ds)),
				pct(float64(ones) / n), pct(float64(small) / n),
				f3(stats.Mean(base)),
			})
		}
	}
	return res, nil
}

func runSLD(e *Env, provider, paper string, postChangeOnly bool) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	from, to := 0, st.Days()
	if postChangeOnly {
		from = st.ChangeDay() + 1
	}
	groups := st.Analysis.SLDDynamics(provider, 25, 3, from, to)
	res := &Result{
		Paper:  paper,
		Header: []string{"SLD group", "weekday mean", "weekend mean", "swing"},
	}
	max := 12
	if len(groups) < max {
		max = len(groups)
	}
	for _, g := range groups[:max] {
		res.Rows = append(res.Rows, []string{
			g.Group, f1(g.WeekdayMean), f1(g.WeekendMean),
			fmt.Sprintf("%.1f%%", g.SwingPercent),
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d groups above threshold; window days %d..%d", len(groups), from, to))
	return res, nil
}

func runFig3b(e *Env) (*Result, error) {
	return runSLD(e, providers.Alexa,
		"Fig. 3b: blogspot.*/tumblr.com more popular on weekends, sharepoint.com on weekdays; dynamics only appear after Alexa's change",
		true)
}

func runFig3c(e *Env) (*Result, error) {
	return runSLD(e, providers.Umbrella,
		"Fig. 3c: ampproject.org and nflxso.net up on weekends, nessus.org during the week",
		false)
}

func runFig4(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper:  "Fig. 4: day-to-day tau>0.95 for 99% of Majestic, 72% of Alexa, 40% of Umbrella days; vs a fixed reference day, very strong correlation drops below 5% for all",
		Header: []string{"list", "mode", "mean tau", "median tau", "share tau>0.95"},
	}
	for _, p := range st.Providers() {
		d2d := st.Analysis.KendallDayToDay(p, st.Scale.HeadSize)
		vsFirst := st.Analysis.KendallVsFirst(p, st.Scale.HeadSize)
		res.Rows = append(res.Rows, []string{
			p, "day-to-day", f3(stats.Mean(d2d)), f3(stats.Median(d2d)),
			pct(analysis.VeryStrongShare(d2d)),
		})
		res.Rows = append(res.Rows, []string{
			p, "vs day 0", f3(stats.Mean(vsFirst)), f3(stats.Median(vsFirst)),
			pct(analysis.VeryStrongShare(vsFirst)),
		})
	}
	return res, nil
}
