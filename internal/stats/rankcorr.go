package stats

import (
	"math"
	"sort"
)

// Rank-similarity measures beyond Kendall's τ. The paper compares list
// orderings with τ (§6.3); the follow-up top-list literature (notably
// the Tranco work this paper motivated) prefers Rank-Biased Overlap,
// which handles the two properties τ lacks for top lists: it accepts
// *non-conjoint* lists (domains present in one list and absent from
// the other) and it weights agreement at the head more than in the
// tail. We implement both RBO and the classical Spearman measures so
// the order-stability analysis can be ablated across metrics.

// SpearmanRho returns Spearman's rank correlation coefficient ρ
// between paired observations, i.e. the Pearson correlation of their
// (mid-)ranks. Ties receive average ranks. Returns NaN for fewer than
// two pairs or constant input.
func SpearmanRho(x, y []float64) float64 {
	n := len(x)
	if n != len(y) {
		panic("stats: SpearmanRho length mismatch")
	}
	if n < 2 {
		return math.NaN()
	}
	rx := midRanks(x)
	ry := midRanks(y)
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += rx[i]
		sy += ry[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := rx[i]-mx, ry[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	denom := math.Sqrt(vx * vy)
	if denom == 0 {
		return math.NaN()
	}
	return cov / denom
}

// SpearmanRhoRanks is a convenience wrapper for integer rank vectors.
func SpearmanRhoRanks(x, y []int) float64 {
	return SpearmanRho(IntsToFloats(x), IntsToFloats(y))
}

// midRanks assigns 1-based ranks with ties sharing their average rank.
func midRanks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && x[idx[j]] == x[idx[i]] {
			j++
		}
		// Average of 1-based positions i+1 .. j.
		avg := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}
	return ranks
}

// SpearmanFootrule returns the normalised Spearman footrule distance
// between two permutations given as paired rank vectors: the sum of
// |rx - ry| divided by its maximum, so 0 means identical order and 1
// means maximal displacement. Inputs must be genuine permutations of
// the same length (no ties); n < 2 returns NaN.
func SpearmanFootrule(rx, ry []int) float64 {
	n := len(rx)
	if n != len(ry) {
		panic("stats: SpearmanFootrule length mismatch")
	}
	if n < 2 {
		return math.NaN()
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Abs(float64(rx[i] - ry[i]))
	}
	// Maximum displacement of two permutations of [1..n]: ⌊n²/2⌋.
	max := float64((n * n) / 2)
	return sum / max
}

// RBO returns the extrapolated Rank-Biased Overlap (Webber, Moffat,
// Zobel 2010, eq. 32) between two ranked lists with persistence
// parameter p in (0,1). Higher p weights deeper ranks more; the
// top-list literature typically uses p = 0.9 (top-10-dominated) to
// p ≈ 0.999 (top-1000-dominated).
//
// The lists need not be conjoint or equally long — exactly the
// situation of two top lists from different providers. The result is
// in [0,1]: 1 for identical lists, 0 for fully disjoint ones.
func RBO(s, t []string, p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: RBO persistence must be in (0,1)")
	}
	if len(s) == 0 && len(t) == 0 {
		return 1
	}
	if len(s) == 0 || len(t) == 0 {
		return 0
	}
	// Ensure s is the shorter list (the formulation below assumes it).
	if len(s) > len(t) {
		s, t = t, s
	}
	sLen, tLen := len(s), len(t)

	seenS := make(map[string]struct{}, sLen)
	seenT := make(map[string]struct{}, tLen)
	var overlap int // |S_d ∩ T_d| at current depth

	// A_d = overlap/d at each depth; accumulate the weighted sum.
	sum1 := 0.0 // Σ_{d=1..tLen} (X_d / d) p^d
	xAtS := 0   // overlap at depth sLen (fixed once d > sLen)
	pd := 1.0
	for d := 1; d <= tLen; d++ {
		pd *= p
		if d <= sLen {
			addToOverlap(s[d-1], seenS, seenT, &overlap)
		}
		addToOverlap(t[d-1], seenT, seenS, &overlap)
		if d == sLen {
			xAtS = overlap
		}
		sum1 += float64(overlap) / float64(d) * pd
	}
	if sLen == tLen {
		xAtS = overlap
	}
	xAtT := overlap

	// Extrapolation terms for the region beyond the evaluated prefixes.
	// eq. 32: RBO_ext = (1-p)/p [ Σ_{d=1}^{l} (X_d/d) p^d +
	//                             Σ_{d=s+1}^{l} X_s (d-s)/(s d) p^d ] +
	//                   [ (X_l - X_s)/l + X_s/s ] p^l
	pT := math.Pow(p, float64(tLen))
	sum2 := 0.0
	pd = math.Pow(p, float64(sLen))
	for d := sLen + 1; d <= tLen; d++ {
		pd *= p
		sum2 += float64(xAtS) * float64(d-sLen) / (float64(sLen) * float64(d)) * pd
	}
	ext := (1 - p) / p * (sum1 + sum2)
	ext += (float64(xAtT-xAtS)/float64(tLen) + float64(xAtS)/float64(sLen)) * pT
	if ext > 1 {
		ext = 1 // guard against float drift at p close to 1
	}
	return ext
}

// addToOverlap records that name was seen in one list and bumps the
// overlap if the other list has already shown it.
func addToOverlap(name string, mine, other map[string]struct{}, overlap *int) {
	if _, dup := mine[name]; dup {
		return
	}
	mine[name] = struct{}{}
	if _, ok := other[name]; ok {
		*overlap++
	}
}

// RBOTopWeight returns the share of RBO weight carried by the first d
// ranks for persistence p (Webber et al., eq. 21) — used to pick a p
// matched to the subset a study cares about, e.g. p=0.9 puts ~86% of
// the weight on the top 10.
func RBOTopWeight(p float64, d int) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: RBO persistence must be in (0,1)")
	}
	if d < 1 {
		return 0
	}
	// W(d) = 1 - p^(d-1) + d (1-p)/p (ln 1/(1-p) - Σ_{i=1}^{d-1} p^i/i)
	sum := 0.0
	pi := 1.0
	for i := 1; i <= d-1; i++ {
		pi *= p
		sum += pi / float64(i)
	}
	w := 1 - math.Pow(p, float64(d-1)) +
		float64(d)*(1-p)/p*(math.Log(1/(1-p))-sum)
	if w < 0 {
		return 0
	}
	if w > 1 {
		return 1
	}
	return w
}
