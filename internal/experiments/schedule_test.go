package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/toplist"
)

// TestScheduleLongestJobFirst: with no observations, the static cost
// classes put the grid-heavy drivers at the front of the queue and
// keep the cheap unranked majority in deterministic ID order.
func TestScheduleLongestJobFirst(t *testing.T) {
	e := NewEnv(core.TestScale())
	ids := IDs()
	q := schedule(e, ids)
	if len(q) != len(ids) {
		t.Fatalf("queue has %d ids, want %d", len(q), len(ids))
	}
	if q[0] != "fig5" || q[1] != "ttl" {
		t.Fatalf("queue head %v, want fig5 then ttl (the dominating grids)", q[:4])
	}
	pos := make(map[string]int, len(q))
	for i, id := range q {
		pos[id] = i
	}
	for _, heavy := range []string{"manipulation", "ablation-horizon", "ablation-volume", "table5"} {
		if pos[heavy] > pos["table1"] {
			t.Fatalf("%s scheduled after the trivial survey table: %v", heavy, q)
		}
	}
	// The unranked tail stays ID-sorted (stable, deterministic).
	var tail []string
	for _, id := range q {
		if costClass[id] == 0 {
			tail = append(tail, id)
		}
	}
	for i := 1; i < len(tail); i++ {
		if tail[i-1] > tail[i] {
			t.Fatalf("unranked tail not ID-ordered: %v", tail)
		}
	}
}

// TestScheduleUsesObservedElapsed: wall times recorded on the Env
// override the static classes on the next round, while never-observed
// heavy jobs keep their generous static estimate.
func TestScheduleUsesObservedElapsed(t *testing.T) {
	e := NewEnv(core.TestScale())
	e.noteElapsed("table1", 500*time.Second) // observed pathological
	e.noteElapsed("fig5", 10*time.Millisecond)
	q := schedule(e, IDs())
	pos := make(map[string]int, len(q))
	for i, id := range q {
		pos[id] = i
	}
	if pos["table1"] != 0 {
		t.Fatalf("observed-slow table1 at position %d: %v", pos["table1"], q)
	}
	if pos["fig5"] < pos["ttl"] {
		t.Fatalf("observed-fast fig5 still ahead of unobserved ttl: %v", q)
	}
	// Partial information must not demote the critical path: one cheap
	// observation cannot push the never-observed grids behind it.
	e2 := NewEnv(core.TestScale())
	e2.noteElapsed("table5", 3*time.Millisecond)
	q2 := schedule(e2, IDs())
	pos2 := make(map[string]int, len(q2))
	for i, id := range q2 {
		pos2[id] = i
	}
	if pos2["fig5"] > pos2["table5"] || pos2["ttl"] > pos2["table5"] {
		t.Fatalf("observed-cheap table5 outranks unobserved grids: %v", q2)
	}
}

// TestRunAllRespectsCancelledContext: a cancelled context fails fast
// without materialising the study.
func TestRunAllRespectsCancelledContext(t *testing.T) {
	e := NewEnv(core.TestScale())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAll(ctx, e); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := RunAllWorkers(ctx, e, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial err = %v, want context.Canceled", err)
	}
}

// TestRunRecordsElapsed: every Run stamps a wall time onto the result
// and the Env remembers it for scheduling.
func TestRunRecordsElapsed(t *testing.T) {
	e := env(t)
	res, err := Run(context.Background(), e, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("Run did not record elapsed wall time")
	}
	if e.observedElapsed("table1") != res.Elapsed {
		t.Fatal("Env did not retain the observed elapsed time")
	}
}

// TestStudyRetriesAfterCancelledMaterialisation: a materialisation
// aborted by a context deadline is not cached as the Env's permanent
// error — a later call with a live context succeeds.
func TestStudyRetriesAfterCancelledMaterialisation(t *testing.T) {
	scale := core.TestScale()
	scale.Population.Days = 10
	scale.BurnInDays = 15
	e := NewEnv(scale)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := Run(ctx, e, "table2"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline run: err = %v, want DeadlineExceeded", err)
	}
	res, err := Run(context.Background(), e, "table2")
	if err != nil {
		t.Fatalf("retry after cancelled materialisation failed: %v", err)
	}
	if res.ID != "table2" {
		t.Fatalf("retry ran %q", res.ID)
	}
}

// TestPersistedTimingsCalibrateFreshEnv: wall times recorded into a
// durable archive by an earlier process preload a fresh Env built from
// that archive, so its first pooled round is already ordered by real
// observations — and new observations are persisted back.
func TestPersistedTimingsCalibrateFreshEnv(t *testing.T) {
	dir := t.TempDir()
	store, err := toplist.CreateDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A "previous process" observed table1 to be pathologically slow
	// and fig5 (statically the heaviest grid) to be cheap here.
	if err := store.RecordTiming("table1", 500*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := store.RecordTiming("fig5", 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	reopened, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnvFrom(core.TestScale(), reopened)
	if e.observedElapsed("table1") != 500*time.Second {
		t.Fatal("persisted timing not preloaded into the fresh Env")
	}
	q := schedule(e, IDs())
	pos := make(map[string]int, len(q))
	for i, id := range q {
		pos[id] = i
	}
	if pos["table1"] != 0 {
		t.Fatalf("persisted-slow table1 at position %d: %v", pos["table1"], q)
	}
	if pos["fig5"] < pos["ttl"] {
		t.Fatalf("persisted-fast fig5 still ahead of unobserved ttl: %v", q)
	}

	// A new observation on this Env lands back in the archive for the
	// next process.
	e.noteElapsed("fig8", 2*time.Second)
	again, err := toplist.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Timings()["fig8"]; got != 2*time.Second {
		t.Fatalf("new observation not persisted: fig8 = %v", got)
	}
}

// TestTeeStoreRecordsTimings: an Env persisting its simulation through
// SetTee(DiskStore) records wall times into the same archive.
func TestTeeStoreRecordsTimings(t *testing.T) {
	dir := t.TempDir()
	store, err := toplist.CreateDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnv(core.TestScale())
	e.SetTee(store)
	e.noteElapsed("table2", 7*time.Second)
	if got := store.Timings()["table2"]; got != 7*time.Second {
		t.Fatalf("tee store timing = %v, want 7s", got)
	}
}
