package toplist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the snapshot parser never panics on arbitrary
// input and that accepted documents survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,google.com\n2,facebook.com\n")
	f.Add("1,a.com\n\n\n2,b.com\n")
	f.Add("")
	f.Add("1;semicolon.com\n")
	f.Add("0,zero-rank.com\n")
	f.Add("1,\n")
	f.Add("notanumber,x.com\n")
	f.Add("1," + strings.Repeat("x", 300) + ".com\n")

	f.Fuzz(func(t *testing.T, input string) {
		l, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, l); err != nil {
			t.Fatalf("WriteCSV of accepted list: %v", err)
		}
		l2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read of written list: %v\n%s", err, buf.String())
		}
		if l.Len() != l2.Len() {
			t.Fatalf("round trip changed length: %d vs %d", l.Len(), l2.Len())
		}
		for r := 1; r <= l.Len(); r++ {
			if l.Name(r) != l2.Name(r) {
				t.Fatalf("round trip changed rank %d: %q vs %q", r, l.Name(r), l2.Name(r))
			}
		}
	})
}
