// Package population generates the synthetic Internet the study runs
// against: a universe of domains with names, categories, correlated
// latent popularity along the three signal axes the list providers
// measure (web visits, DNS resolutions, backlinks), weekday/weekend
// usage factors, birth/death dynamics, and hosting-infrastructure
// attributes. It substitutes for the paper's proprietary data sources
// (Alexa panel, OpenDNS query logs, Majestic crawl, zone files).
package population

// Category classifies a domain's role; it drives the per-axis
// popularity factors, weekend behaviour, and infrastructure attributes.
type Category uint8

// Categories.
const (
	// CatWeb is a general-purpose website.
	CatWeb Category = iota
	// CatLeisure is entertainment/user-generated content, more popular
	// on weekends (the paper's blogspot/tumblr examples).
	CatLeisure
	// CatWork is business/productivity, more popular on weekdays (the
	// paper's sharepoint/nessus examples).
	CatWork
	// CatMedia is news/streaming.
	CatMedia
	// CatShopping is e-commerce.
	CatShopping
	// CatTracker is third-party advertising/tracking infrastructure —
	// resolved by browsers and apps, rarely visited deliberately; the
	// hpHosts-style blacklist flags these (Table 3).
	CatTracker
	// CatMobile is a mobile-app backend — DNS-visible but not web; the
	// Lumen-style mobile dataset flags these (Table 3).
	CatMobile
	// CatCDNAsset hosts embedded content (the ampproject/nflxso
	// examples).
	CatCDNAsset
	// CatIoT is device telemetry.
	CatIoT
	// CatJunk is a misconfigured-client name under an invalid TLD
	// (printer.localdomain); it never resolves.
	CatJunk
	// CatGhost is a discontinued service under a valid TLD, still
	// queried by legacy clients and still linked to, but NXDOMAIN (the
	// paper's teredo.ipv6.microsoft.com example).
	CatGhost

	numCategories
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case CatWeb:
		return "web"
	case CatLeisure:
		return "leisure"
	case CatWork:
		return "work"
	case CatMedia:
		return "media"
	case CatShopping:
		return "shopping"
	case CatTracker:
		return "tracker"
	case CatMobile:
		return "mobile"
	case CatCDNAsset:
		return "cdn-asset"
	case CatIoT:
		return "iot"
	case CatJunk:
		return "junk"
	case CatGhost:
		return "ghost"
	default:
		return "unknown"
	}
}

// axisFactors scales the shared latent popularity into the three signal
// axes: how strongly the category shows up in web-visit panels, DNS
// resolver query streams, and crawler link graphs. These asymmetries
// are what drive the low inter-list intersection (§5.3): trackers,
// mobile backends, and embedded-content hosts are DNS-heavy but nearly
// invisible to web panels and crawlers.
type axisFactors struct{ web, dns, link float64 }

var categoryAxis = [numCategories]axisFactors{
	CatWeb:      {1.0, 1.0, 1.0},
	CatLeisure:  {1.25, 1.0, 0.8},
	CatWork:     {1.0, 1.15, 0.9},
	CatMedia:    {1.3, 1.1, 1.2},
	CatShopping: {1.0, 0.9, 0.95},
	CatTracker:  {0.02, 3.5, 0.4},
	CatMobile:   {0.05, 2.6, 0.15},
	CatCDNAsset: {0.08, 3.0, 0.6},
	CatIoT:      {0.005, 1.3, 0.01},
	CatJunk:     {0, 0.9, 0},
	CatGhost:    {0.005, 1.6, 0.3},
}

// categoryWeekend gives the mean weekend multiplier per category
// (jittered per domain). >1 = leisure-shaped, <1 = work-shaped; this is
// the cause of the weekly list patterns (§6.2).
var categoryWeekend = [numCategories]float64{
	CatWeb:      1.0,
	CatLeisure:  2.0,
	CatWork:     0.45,
	CatMedia:    1.5,
	CatShopping: 1.15,
	CatTracker:  0.95,
	CatMobile:   1.25,
	CatCDNAsset: 1.2,
	CatIoT:      1.0,
	CatJunk:     0.8,
	CatGhost:    0.9,
}

// NeverResolves reports whether the category is NXDOMAIN by
// construction.
func (c Category) NeverResolves() bool { return c == CatJunk || c == CatGhost }

// Blacklisted reports whether the hpHosts-style advertising/tracking
// blacklist contains domains of this category.
func (c Category) Blacklisted() bool { return c == CatTracker }

// MobileTraffic reports whether the Lumen-style mobile dataset
// associates this category with mobile app traffic.
func (c Category) MobileTraffic() bool {
	return c == CatMobile || c == CatTracker || c == CatCDNAsset
}
